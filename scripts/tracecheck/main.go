// Command tracecheck validates the JSONL event-trace schema emitted by
// `commlat trace -json` (and -jsonl): one JSON object per line, with
// the fields internal/telemetry's WriteJSONL documents. CI runs it on a
// small boruvka workload so schema drift in the exporter fails the
// build instead of silently breaking downstream tooling.
//
// Usage:
//
//	go run ./scripts/tracecheck trace.jsonl
//	commlat trace -app boruvka -json | go run ./scripts/tracecheck
//	go run ./scripts/tracecheck -chrome trace.json
//	go run ./scripts/tracecheck -snapshot telemetry.json
//	commlat flightrec -app cluster -json | go run ./scripts/tracecheck -flight
//	go run ./scripts/tracecheck -percentiles percentiles.json
//	go run ./scripts/tracecheck -audit audit.json
//
// It exits non-zero on empty input, malformed JSON, unknown event
// kinds, missing required fields, or a non-monotonic timeline. With
// -chrome it instead checks that the file is a Chrome trace_event
// document: a JSON object whose traceEvents array is non-empty and
// whose entries all carry a phase and a timestamp. With -snapshot it
// checks a telemetry snapshot document (`commlat -telemetry-out` or the
// /debug/telemetry endpoint): every detector row must carry id, kind,
// and adt, unknown fields are rejected (so the cascade stage counters —
// cascade_fast_admits through cascade_fallbacks — stay in lockstep
// between exporter and consumers), and per-pair attribution must not
// exceed the detector totals it decomposes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type event struct {
	TS       *int64 `json:"ts_ns"`
	Kind     string `json:"kind"`
	Worker   *int   `json:"worker"`
	Tx       uint64 `json:"tx"`
	Item     *int64 `json:"item"`
	Detector string `json:"detector"`
	M1       string `json:"m1"`
	M2       string `json:"m2"`
	Epoch    *int64 `json:"epoch"`
}

var lifecycle = map[string]bool{"begin": true, "commit": true, "abort": true}

func check(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		lineNo int
		lastTS int64
		counts = map[string]int{}
	)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			return fmt.Errorf("line %d: empty line", lineNo)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e event
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if e.TS == nil {
			return fmt.Errorf("line %d: missing ts_ns", lineNo)
		}
		if *e.TS < 0 {
			return fmt.Errorf("line %d: negative ts_ns %d", lineNo, *e.TS)
		}
		if *e.TS < lastTS {
			return fmt.Errorf("line %d: ts_ns %d out of order (previous %d)", lineNo, *e.TS, lastTS)
		}
		lastTS = *e.TS
		if e.Worker == nil {
			return fmt.Errorf("line %d: missing worker", lineNo)
		}
		if *e.Worker < 0 {
			return fmt.Errorf("line %d: negative worker %d", lineNo, *e.Worker)
		}
		switch {
		case lifecycle[e.Kind]:
			if e.Tx == 0 {
				return fmt.Errorf("line %d: %s event without tx", lineNo, e.Kind)
			}
		case e.Kind == "conflict":
			if e.Tx == 0 {
				return fmt.Errorf("line %d: conflict event without tx", lineNo)
			}
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: conflict event needs detector, m1, m2", lineNo)
			}
		case e.Kind == "decision":
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: decision event needs detector, m1, m2", lineNo)
			}
		default:
			return fmt.Errorf("line %d: unknown kind %q", lineNo, e.Kind)
		}
		counts[e.Kind]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("no events: input is empty")
	}
	if counts["begin"] == 0 {
		return fmt.Errorf("no begin events in %d lines", lineNo)
	}
	if counts["commit"] == 0 {
		return fmt.Errorf("no commit events in %d lines", lineNo)
	}
	fmt.Printf("ok: %d events (%d begin, %d commit, %d abort, %d conflict, %d decision)\n",
		lineNo, counts["begin"], counts["commit"], counts["abort"], counts["conflict"], counts["decision"])
	return nil
}

// checkChrome validates the Chrome trace_event document shape: phases
// are single characters, timestamps are present on every event, and
// complete ("X") events carry durations.
func checkChrome(r io.Reader) error {
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return err
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		if len(e.Ph) != 1 {
			return fmt.Errorf("traceEvents[%d]: bad phase %q", i, e.Ph)
		}
		if e.Ph != "M" && e.TS == nil {
			return fmt.Errorf("traceEvents[%d]: missing ts", i)
		}
		if e.Ph == "X" && e.Dur == nil {
			return fmt.Errorf("traceEvents[%d]: complete event missing dur", i)
		}
		if e.Name == "" {
			return fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		counts[e.Ph]++
	}
	fmt.Printf("ok: %d chrome events (%d complete, %d instant, %d metadata)\n",
		len(doc.TraceEvents), counts["X"], counts["i"], counts["M"])
	return nil
}

// snapshotDoc mirrors internal/telemetry's Snapshot JSON schema field
// for field; DisallowUnknownFields turns any exporter drift — a renamed
// cascade counter, a new stage left out of this mirror — into a CI
// failure here instead of a silent break in downstream consumers.
type snapshotDoc struct {
	Engine struct {
		TxBegun     uint64 `json:"tx_begun"`
		TxCommitted uint64 `json:"tx_committed"`
		TxAborted   uint64 `json:"tx_aborted"`
	} `json:"engine"`
	Detectors []struct {
		ID               uint16 `json:"id"`
		Kind             string `json:"kind"`
		ADT              string `json:"adt"`
		Invocations      uint64 `json:"invocations"`
		Checks           uint64 `json:"checks"`
		Conflicts        uint64 `json:"conflicts"`
		Rollbacks        uint64 `json:"rollbacks"`
		LogEntries       uint64 `json:"log_entries"`
		Probes           uint64 `json:"probes"`
		Collisions       uint64 `json:"collisions"`
		FallbackScans    uint64 `json:"fallback_scans"`
		FastAdmits       uint64 `json:"cascade_fast_admits"`
		FilterHits       uint64 `json:"cascade_filter_hits"`
		OptScans         uint64 `json:"cascade_opt_scans"`
		OptRetries       uint64 `json:"cascade_opt_retries"`
		CascadeFallbacks uint64 `json:"cascade_fallbacks"`
		BatchesWhole     uint64 `json:"batches_whole"`
		BatchesSplit     uint64 `json:"batches_split"`
		BatchesSerial    uint64 `json:"batches_serialized"`
		Shard            int64  `json:"shard"`
		ShardLocal       uint64 `json:"shard_local"`
		ShardCross       uint64 `json:"shard_cross"`
		ActiveHighWater  int64  `json:"active_high_water"`
		JournalHighWater int64  `json:"journal_high_water"`
		Pairs            []struct {
			M1        string `json:"m1"`
			M2        string `json:"m2"`
			Checks    uint64 `json:"checks"`
			Conflicts uint64 `json:"conflicts"`
		} `json:"pairs"`
		Modes []struct {
			Mode     string `json:"mode"`
			Acquired uint64 `json:"acquired"`
			Waits    uint64 `json:"waits"`
		} `json:"modes"`
	} `json:"detectors"`
}

func checkSnapshot(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc snapshotDoc
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	e := doc.Engine
	if e.TxBegun < e.TxCommitted+e.TxAborted {
		return fmt.Errorf("engine: %d txs begun but %d resolved", e.TxBegun, e.TxCommitted+e.TxAborted)
	}
	var fastAdmits, filterHits uint64
	for i, d := range doc.Detectors {
		if d.ID == 0 {
			return fmt.Errorf("detectors[%d]: missing id", i)
		}
		if d.Kind == "" || d.ADT == "" {
			return fmt.Errorf("detectors[%d]: missing kind or adt", i)
		}
		var pairChecks, pairConflicts uint64
		for j, p := range d.Pairs {
			if p.M1 == "" || p.M2 == "" {
				return fmt.Errorf("detectors[%d].pairs[%d]: missing m1 or m2", i, j)
			}
			pairChecks += p.Checks
			pairConflicts += p.Conflicts
		}
		// Per-pair rows decompose the totals (attribution may drop rows,
		// never invent them).
		if pairChecks > d.Checks {
			return fmt.Errorf("detectors[%d] (%s): pair checks %d exceed total %d", i, d.Kind, pairChecks, d.Checks)
		}
		if pairConflicts > d.Conflicts {
			return fmt.Errorf("detectors[%d] (%s): pair conflicts %d exceed total %d", i, d.Kind, pairConflicts, d.Conflicts)
		}
		for j, m := range d.Modes {
			if m.Mode == "" {
				return fmt.Errorf("detectors[%d].modes[%d]: missing mode", i, j)
			}
		}
		fastAdmits += d.FastAdmits
		filterHits += d.FilterHits
	}
	fmt.Printf("ok: snapshot with %d detectors (%d tx begun; cascade: %d fast admits, %d filter hits)\n",
		len(doc.Detectors), e.TxBegun, fastAdmits, filterHits)
	return nil
}

// flightDoc mirrors internal/telemetry's FlightDoc JSON schema, same
// lockstep discipline as snapshotDoc.
type flightDoc struct {
	Epoch   uint64 `json:"epoch"`
	Dropped uint64 `json:"dropped"`
	Records []struct {
		TS       *int64   `json:"ts_ns"`
		Tx       uint64   `json:"tx"`
		Epoch    uint64   `json:"epoch"`
		Worker   *int     `json:"worker"`
		Detector string   `json:"detector"`
		Method   string   `json:"method"`
		Verdict  string   `json:"verdict"`
		Retries  int      `json:"retries"`
		N        int      `json:"n"`
		Shards   []int    `json:"shards"`
		Stages   []string `json:"stages"`
		StageNS  struct {
			SigFilterNS    uint32 `json:"sig_filter_ns"`
			OptIndexNS     uint32 `json:"opt_index_ns"`
			PreciseNS      uint32 `json:"precise_ns"`
			RendezvousNS   uint32 `json:"rendezvous_ns"`
			BatchPublishNS uint32 `json:"batch_publish_ns"`
			BatchProbeNS   uint32 `json:"batch_probe_ns"`
			CommitNS       uint32 `json:"commit_release_ns"`
		} `json:"stage_ns"`
	} `json:"records"`
}

var flightVerdicts = map[string]bool{
	"admitted": true, "conflict": true,
	"batch_whole": true, "batch_split": true, "batch_serial": true,
}

var flightStages = map[string]bool{
	"sig_filter": true, "opt_index": true, "precise": true, "rendezvous": true,
	"batch_publish": true, "batch_probe": true, "commit_release": true,
}

// checkFlight validates a flight-recorder document (`commlat flightrec
// -json` or /debug/commlat/flightrec): every record needs a timestamp,
// a worker and a known verdict; stage spellings must come from the
// pipeline vocabulary; the timeline is oldest-first; and a run that
// recorded anything must have buffered at least one record.
func checkFlight(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc flightDoc
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	if len(doc.Records) == 0 {
		return fmt.Errorf("flight document has no records")
	}
	var lastTS int64
	verdicts := map[string]int{}
	for i, rec := range doc.Records {
		if rec.TS == nil {
			return fmt.Errorf("records[%d]: missing ts_ns", i)
		}
		if *rec.TS < lastTS {
			return fmt.Errorf("records[%d]: ts_ns %d out of order (previous %d)", i, *rec.TS, lastTS)
		}
		lastTS = *rec.TS
		if rec.Worker == nil || *rec.Worker < 0 {
			return fmt.Errorf("records[%d]: missing or negative worker", i)
		}
		if !flightVerdicts[rec.Verdict] {
			return fmt.Errorf("records[%d]: unknown verdict %q", i, rec.Verdict)
		}
		if rec.Epoch > doc.Epoch {
			return fmt.Errorf("records[%d]: record epoch %d past document epoch %d", i, rec.Epoch, doc.Epoch)
		}
		for _, st := range rec.Stages {
			if !flightStages[st] {
				return fmt.Errorf("records[%d]: unknown stage %q", i, st)
			}
		}
		for _, sh := range rec.Shards {
			if sh < 0 || sh > 63 {
				return fmt.Errorf("records[%d]: shard %d out of range", i, sh)
			}
		}
		verdicts[rec.Verdict]++
	}
	fmt.Printf("ok: %d flight records (epoch %d, %d reclaimed; %d admitted, %d conflict)\n",
		len(doc.Records), doc.Epoch, doc.Dropped, verdicts["admitted"], verdicts["conflict"])
	return nil
}

// percentilesDoc mirrors internal/telemetry's LatencySnapshot schema.
type percentilesDoc struct {
	Enabled bool `json:"enabled"`
	Stages  []struct {
		Stage   string  `json:"stage"`
		Count   *uint64 `json:"count"`
		SumNS   uint64  `json:"sum_ns"`
		P50NS   float64 `json:"p50_ns"`
		P90NS   float64 `json:"p90_ns"`
		P99NS   float64 `json:"p99_ns"`
		P999NS  float64 `json:"p999_ns"`
		Buckets []struct {
			LeNS  uint64 `json:"le_ns"`
			Count uint64 `json:"count"`
		} `json:"buckets"`
	} `json:"stages"`
}

// checkPercentiles validates a stage-latency percentile document
// (`commlat flightrec -percentiles` or /debug/commlat/percentiles):
// stage names from the pipeline vocabulary, monotone percentiles, and
// bucket counts that decompose each stage's total.
func checkPercentiles(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc percentilesDoc
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	if len(doc.Stages) == 0 {
		return fmt.Errorf("percentile document has no stage rows")
	}
	var total uint64
	for i, st := range doc.Stages {
		if !flightStages[st.Stage] {
			return fmt.Errorf("stages[%d]: unknown stage %q", i, st.Stage)
		}
		if st.Count == nil || *st.Count == 0 {
			return fmt.Errorf("stages[%d] (%s): missing or zero count", i, st.Stage)
		}
		if !(st.P50NS <= st.P90NS && st.P90NS <= st.P99NS && st.P99NS <= st.P999NS) {
			return fmt.Errorf("stages[%d] (%s): percentiles not monotone: p50 %g p90 %g p99 %g p99.9 %g",
				i, st.Stage, st.P50NS, st.P90NS, st.P99NS, st.P999NS)
		}
		var n uint64
		lastLe := int64(-1)
		for j, b := range st.Buckets {
			if int64(b.LeNS) <= lastLe {
				return fmt.Errorf("stages[%d] (%s): buckets[%d] le_ns %d out of order", i, st.Stage, j, b.LeNS)
			}
			lastLe = int64(b.LeNS)
			n += b.Count
		}
		if n != *st.Count {
			return fmt.Errorf("stages[%d] (%s): bucket counts sum to %d, want %d", i, st.Stage, n, *st.Count)
		}
		total += *st.Count
	}
	fmt.Printf("ok: %d latency stages, %d observations\n", len(doc.Stages), total)
	return nil
}

// auditDoc mirrors internal/telemetry's AuditDoc schema.
type auditDoc struct {
	Entries []struct {
		TS           *int64  `json:"ts_ns"`
		Controller   string  `json:"controller"`
		Det          uint16  `json:"detector_id"`
		Window       int     `json:"window"`
		ConflictRate float64 `json:"conflict_rate"`
		CrossRate    float64 `json:"crossing_rate"`
		Lo           float64 `json:"lo"`
		Hi           float64 `json:"hi"`
		FromRung     int     `json:"from_rung"`
		ToRung       int     `json:"to_rung"`
		Moved        bool    `json:"moved"`
		Reason       string  `json:"reason"`
	} `json:"entries"`
}

var auditReasons = map[string]bool{"climb": true, "backoff": true, "hold": true, "pinned": true}

// checkAudit validates a controller audit document (`commlat flightrec
// -audit` or /debug/commlat/audit): known reasons, rates in [0,1],
// moves consistent with from/to rungs.
func checkAudit(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc auditDoc
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	if len(doc.Entries) == 0 {
		return fmt.Errorf("audit document has no entries")
	}
	moves := 0
	for i, e := range doc.Entries {
		if e.TS == nil {
			return fmt.Errorf("entries[%d]: missing ts_ns", i)
		}
		if e.Controller == "" {
			return fmt.Errorf("entries[%d]: missing controller", i)
		}
		if !auditReasons[e.Reason] {
			return fmt.Errorf("entries[%d]: unknown reason %q", i, e.Reason)
		}
		if e.ConflictRate < 0 || e.ConflictRate > 1 || e.CrossRate < 0 || e.CrossRate > 1 {
			return fmt.Errorf("entries[%d]: rate outside [0,1]: conflict %g crossing %g", i, e.ConflictRate, e.CrossRate)
		}
		if e.Moved != (e.FromRung != e.ToRung) {
			return fmt.Errorf("entries[%d]: moved=%v but rung %d -> %d", i, e.Moved, e.FromRung, e.ToRung)
		}
		if e.Moved {
			moves++
		}
	}
	fmt.Printf("ok: %d audit entries (%d rung moves)\n", len(doc.Entries), moves)
	return nil
}

func main() {
	args := os.Args[1:]
	validate := check
	if len(args) > 0 && args[0] == "-chrome" {
		validate = checkChrome
		args = args[1:]
	}
	if len(args) > 0 && args[0] == "-snapshot" {
		validate = checkSnapshot
		args = args[1:]
	}
	if len(args) > 0 && args[0] == "-flight" {
		validate = checkFlight
		args = args[1:]
	}
	if len(args) > 0 && args[0] == "-percentiles" {
		validate = checkPercentiles
		args = args[1:]
	}
	if len(args) > 0 && args[0] == "-audit" {
		validate = checkAudit
		args = args[1:]
	}
	in := io.Reader(os.Stdin)
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := validate(in); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
}
