// Command tracecheck validates the JSONL event-trace schema emitted by
// `commlat trace -json` (and -jsonl): one JSON object per line, with
// the fields internal/telemetry's WriteJSONL documents. CI runs it on a
// small boruvka workload so schema drift in the exporter fails the
// build instead of silently breaking downstream tooling.
//
// Usage:
//
//	go run ./scripts/tracecheck trace.jsonl
//	commlat trace -app boruvka -json | go run ./scripts/tracecheck
//	go run ./scripts/tracecheck -chrome trace.json
//
// It exits non-zero on empty input, malformed JSON, unknown event
// kinds, missing required fields, or a non-monotonic timeline. With
// -chrome it instead checks that the file is a Chrome trace_event
// document: a JSON object whose traceEvents array is non-empty and
// whose entries all carry a phase and a timestamp.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type event struct {
	TS       *int64 `json:"ts_ns"`
	Kind     string `json:"kind"`
	Worker   *int   `json:"worker"`
	Tx       uint64 `json:"tx"`
	Item     *int64 `json:"item"`
	Detector string `json:"detector"`
	M1       string `json:"m1"`
	M2       string `json:"m2"`
	Epoch    *int64 `json:"epoch"`
}

var lifecycle = map[string]bool{"begin": true, "commit": true, "abort": true}

func check(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		lineNo int
		lastTS int64
		counts = map[string]int{}
	)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			return fmt.Errorf("line %d: empty line", lineNo)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e event
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if e.TS == nil {
			return fmt.Errorf("line %d: missing ts_ns", lineNo)
		}
		if *e.TS < 0 {
			return fmt.Errorf("line %d: negative ts_ns %d", lineNo, *e.TS)
		}
		if *e.TS < lastTS {
			return fmt.Errorf("line %d: ts_ns %d out of order (previous %d)", lineNo, *e.TS, lastTS)
		}
		lastTS = *e.TS
		if e.Worker == nil {
			return fmt.Errorf("line %d: missing worker", lineNo)
		}
		if *e.Worker < 0 {
			return fmt.Errorf("line %d: negative worker %d", lineNo, *e.Worker)
		}
		switch {
		case lifecycle[e.Kind]:
			if e.Tx == 0 {
				return fmt.Errorf("line %d: %s event without tx", lineNo, e.Kind)
			}
		case e.Kind == "conflict":
			if e.Tx == 0 {
				return fmt.Errorf("line %d: conflict event without tx", lineNo)
			}
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: conflict event needs detector, m1, m2", lineNo)
			}
		case e.Kind == "decision":
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: decision event needs detector, m1, m2", lineNo)
			}
		default:
			return fmt.Errorf("line %d: unknown kind %q", lineNo, e.Kind)
		}
		counts[e.Kind]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("no events: input is empty")
	}
	if counts["begin"] == 0 {
		return fmt.Errorf("no begin events in %d lines", lineNo)
	}
	if counts["commit"] == 0 {
		return fmt.Errorf("no commit events in %d lines", lineNo)
	}
	fmt.Printf("ok: %d events (%d begin, %d commit, %d abort, %d conflict, %d decision)\n",
		lineNo, counts["begin"], counts["commit"], counts["abort"], counts["conflict"], counts["decision"])
	return nil
}

// checkChrome validates the Chrome trace_event document shape: phases
// are single characters, timestamps are present on every event, and
// complete ("X") events carry durations.
func checkChrome(r io.Reader) error {
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return err
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		if len(e.Ph) != 1 {
			return fmt.Errorf("traceEvents[%d]: bad phase %q", i, e.Ph)
		}
		if e.Ph != "M" && e.TS == nil {
			return fmt.Errorf("traceEvents[%d]: missing ts", i)
		}
		if e.Ph == "X" && e.Dur == nil {
			return fmt.Errorf("traceEvents[%d]: complete event missing dur", i)
		}
		if e.Name == "" {
			return fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		counts[e.Ph]++
	}
	fmt.Printf("ok: %d chrome events (%d complete, %d instant, %d metadata)\n",
		len(doc.TraceEvents), counts["X"], counts["i"], counts["M"])
	return nil
}

func main() {
	args := os.Args[1:]
	validate := check
	if len(args) > 0 && args[0] == "-chrome" {
		validate = checkChrome
		args = args[1:]
	}
	in := io.Reader(os.Stdin)
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := validate(in); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
}
