// Command tracecheck validates the JSONL event-trace schema emitted by
// `commlat trace -json` (and -jsonl): one JSON object per line, with
// the fields internal/telemetry's WriteJSONL documents. CI runs it on a
// small boruvka workload so schema drift in the exporter fails the
// build instead of silently breaking downstream tooling.
//
// Usage:
//
//	go run ./scripts/tracecheck trace.jsonl
//	commlat trace -app boruvka -json | go run ./scripts/tracecheck
//	go run ./scripts/tracecheck -chrome trace.json
//	go run ./scripts/tracecheck -snapshot telemetry.json
//
// It exits non-zero on empty input, malformed JSON, unknown event
// kinds, missing required fields, or a non-monotonic timeline. With
// -chrome it instead checks that the file is a Chrome trace_event
// document: a JSON object whose traceEvents array is non-empty and
// whose entries all carry a phase and a timestamp. With -snapshot it
// checks a telemetry snapshot document (`commlat -telemetry-out` or the
// /debug/telemetry endpoint): every detector row must carry id, kind,
// and adt, unknown fields are rejected (so the cascade stage counters —
// cascade_fast_admits through cascade_fallbacks — stay in lockstep
// between exporter and consumers), and per-pair attribution must not
// exceed the detector totals it decomposes.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type event struct {
	TS       *int64 `json:"ts_ns"`
	Kind     string `json:"kind"`
	Worker   *int   `json:"worker"`
	Tx       uint64 `json:"tx"`
	Item     *int64 `json:"item"`
	Detector string `json:"detector"`
	M1       string `json:"m1"`
	M2       string `json:"m2"`
	Epoch    *int64 `json:"epoch"`
}

var lifecycle = map[string]bool{"begin": true, "commit": true, "abort": true}

func check(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var (
		lineNo int
		lastTS int64
		counts = map[string]int{}
	)
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			return fmt.Errorf("line %d: empty line", lineNo)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e event
		if err := dec.Decode(&e); err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if e.TS == nil {
			return fmt.Errorf("line %d: missing ts_ns", lineNo)
		}
		if *e.TS < 0 {
			return fmt.Errorf("line %d: negative ts_ns %d", lineNo, *e.TS)
		}
		if *e.TS < lastTS {
			return fmt.Errorf("line %d: ts_ns %d out of order (previous %d)", lineNo, *e.TS, lastTS)
		}
		lastTS = *e.TS
		if e.Worker == nil {
			return fmt.Errorf("line %d: missing worker", lineNo)
		}
		if *e.Worker < 0 {
			return fmt.Errorf("line %d: negative worker %d", lineNo, *e.Worker)
		}
		switch {
		case lifecycle[e.Kind]:
			if e.Tx == 0 {
				return fmt.Errorf("line %d: %s event without tx", lineNo, e.Kind)
			}
		case e.Kind == "conflict":
			if e.Tx == 0 {
				return fmt.Errorf("line %d: conflict event without tx", lineNo)
			}
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: conflict event needs detector, m1, m2", lineNo)
			}
		case e.Kind == "decision":
			if e.Detector == "" || e.M1 == "" || e.M2 == "" {
				return fmt.Errorf("line %d: decision event needs detector, m1, m2", lineNo)
			}
		default:
			return fmt.Errorf("line %d: unknown kind %q", lineNo, e.Kind)
		}
		counts[e.Kind]++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lineNo == 0 {
		return fmt.Errorf("no events: input is empty")
	}
	if counts["begin"] == 0 {
		return fmt.Errorf("no begin events in %d lines", lineNo)
	}
	if counts["commit"] == 0 {
		return fmt.Errorf("no commit events in %d lines", lineNo)
	}
	fmt.Printf("ok: %d events (%d begin, %d commit, %d abort, %d conflict, %d decision)\n",
		lineNo, counts["begin"], counts["commit"], counts["abort"], counts["conflict"], counts["decision"])
	return nil
}

// checkChrome validates the Chrome trace_event document shape: phases
// are single characters, timestamps are present on every event, and
// complete ("X") events carry durations.
func checkChrome(r io.Reader) error {
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			TS   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			PID  *int     `json:"pid"`
			TID  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return err
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("traceEvents is empty")
	}
	counts := map[string]int{}
	for i, e := range doc.TraceEvents {
		if len(e.Ph) != 1 {
			return fmt.Errorf("traceEvents[%d]: bad phase %q", i, e.Ph)
		}
		if e.Ph != "M" && e.TS == nil {
			return fmt.Errorf("traceEvents[%d]: missing ts", i)
		}
		if e.Ph == "X" && e.Dur == nil {
			return fmt.Errorf("traceEvents[%d]: complete event missing dur", i)
		}
		if e.Name == "" {
			return fmt.Errorf("traceEvents[%d]: missing name", i)
		}
		counts[e.Ph]++
	}
	fmt.Printf("ok: %d chrome events (%d complete, %d instant, %d metadata)\n",
		len(doc.TraceEvents), counts["X"], counts["i"], counts["M"])
	return nil
}

// snapshotDoc mirrors internal/telemetry's Snapshot JSON schema field
// for field; DisallowUnknownFields turns any exporter drift — a renamed
// cascade counter, a new stage left out of this mirror — into a CI
// failure here instead of a silent break in downstream consumers.
type snapshotDoc struct {
	Engine struct {
		TxBegun     uint64 `json:"tx_begun"`
		TxCommitted uint64 `json:"tx_committed"`
		TxAborted   uint64 `json:"tx_aborted"`
	} `json:"engine"`
	Detectors []struct {
		ID               uint16 `json:"id"`
		Kind             string `json:"kind"`
		ADT              string `json:"adt"`
		Invocations      uint64 `json:"invocations"`
		Checks           uint64 `json:"checks"`
		Conflicts        uint64 `json:"conflicts"`
		Rollbacks        uint64 `json:"rollbacks"`
		LogEntries       uint64 `json:"log_entries"`
		Probes           uint64 `json:"probes"`
		Collisions       uint64 `json:"collisions"`
		FallbackScans    uint64 `json:"fallback_scans"`
		FastAdmits       uint64 `json:"cascade_fast_admits"`
		FilterHits       uint64 `json:"cascade_filter_hits"`
		OptScans         uint64 `json:"cascade_opt_scans"`
		OptRetries       uint64 `json:"cascade_opt_retries"`
		CascadeFallbacks uint64 `json:"cascade_fallbacks"`
		ActiveHighWater  int64  `json:"active_high_water"`
		JournalHighWater int64  `json:"journal_high_water"`
		Pairs            []struct {
			M1        string `json:"m1"`
			M2        string `json:"m2"`
			Checks    uint64 `json:"checks"`
			Conflicts uint64 `json:"conflicts"`
		} `json:"pairs"`
		Modes []struct {
			Mode     string `json:"mode"`
			Acquired uint64 `json:"acquired"`
			Waits    uint64 `json:"waits"`
		} `json:"modes"`
	} `json:"detectors"`
}

func checkSnapshot(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var doc snapshotDoc
	if err := dec.Decode(&doc); err != nil {
		return err
	}
	e := doc.Engine
	if e.TxBegun < e.TxCommitted+e.TxAborted {
		return fmt.Errorf("engine: %d txs begun but %d resolved", e.TxBegun, e.TxCommitted+e.TxAborted)
	}
	var fastAdmits, filterHits uint64
	for i, d := range doc.Detectors {
		if d.ID == 0 {
			return fmt.Errorf("detectors[%d]: missing id", i)
		}
		if d.Kind == "" || d.ADT == "" {
			return fmt.Errorf("detectors[%d]: missing kind or adt", i)
		}
		var pairChecks, pairConflicts uint64
		for j, p := range d.Pairs {
			if p.M1 == "" || p.M2 == "" {
				return fmt.Errorf("detectors[%d].pairs[%d]: missing m1 or m2", i, j)
			}
			pairChecks += p.Checks
			pairConflicts += p.Conflicts
		}
		// Per-pair rows decompose the totals (attribution may drop rows,
		// never invent them).
		if pairChecks > d.Checks {
			return fmt.Errorf("detectors[%d] (%s): pair checks %d exceed total %d", i, d.Kind, pairChecks, d.Checks)
		}
		if pairConflicts > d.Conflicts {
			return fmt.Errorf("detectors[%d] (%s): pair conflicts %d exceed total %d", i, d.Kind, pairConflicts, d.Conflicts)
		}
		for j, m := range d.Modes {
			if m.Mode == "" {
				return fmt.Errorf("detectors[%d].modes[%d]: missing mode", i, j)
			}
		}
		fastAdmits += d.FastAdmits
		filterHits += d.FilterHits
	}
	fmt.Printf("ok: snapshot with %d detectors (%d tx begun; cascade: %d fast admits, %d filter hits)\n",
		len(doc.Detectors), e.TxBegun, fastAdmits, filterHits)
	return nil
}

func main() {
	args := os.Args[1:]
	validate := check
	if len(args) > 0 && args[0] == "-chrome" {
		validate = checkChrome
		args = args[1:]
	}
	if len(args) > 0 && args[0] == "-snapshot" {
		validate = checkSnapshot
		args = args[1:]
	}
	in := io.Reader(os.Stdin)
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	if err := validate(in); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck: FAIL:", err)
		os.Exit(1)
	}
}
