// Command allocgate is the CI allocation-regression gate: it compares a
// BENCH_detectors.json report (written by `commlat bench -json`) against
// the checked-in allocation budget BENCH_budget.json and exits non-zero
// if any budgeted benchmark allocates more per operation than allowed.
//
// The budgeted benchmarks are the detector fast paths the tagged value
// representation made allocation-free; a violation means a change
// reintroduced boxing or per-operation garbage on a hot path. Raise a
// budget only deliberately, in the same change that explains why.
//
// Usage (as CI runs it):
//
//	go run ./cmd/commlat bench -json -q -o BENCH_fresh.json
//	go run ./scripts/allocgate -report BENCH_fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"commlat/internal/bench"
)

func main() {
	report := flag.String("report", "BENCH_detectors.json", "benchmark report from `commlat bench -json`")
	budgetPath := flag.String("budget", "BENCH_budget.json", "allocation budget (benchmark name -> max allocs/op)")
	flag.Parse()

	var rep bench.MicroReport
	if err := readJSON(*report, &rep); err != nil {
		fail(err)
	}
	var budget bench.Budget
	if err := readJSON(*budgetPath, &budget); err != nil {
		fail(err)
	}
	violations, err := bench.CheckBudget(rep.Benchmarks, budget)
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "allocgate: FAIL:", v)
	}
	if err != nil {
		fail(err)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	fmt.Printf("allocgate: %d budgeted benchmarks within budget\n", len(budget))
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "allocgate:", err)
	os.Exit(1)
}
