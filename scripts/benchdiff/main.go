// Command benchdiff is the CI timing-regression gate: it compares a
// freshly measured benchmark report (`commlat bench -json -o
// BENCH_fresh.json`) against the committed baseline BENCH_detectors.json
// and exits non-zero if any benchmark present in both slowed down by
// more than the tolerance.
//
// The tolerance is deliberately loose (15% plus an absolute floor) —
// shared CI runners are noisy — so a failure means a real regression on
// a detector hot path, not jitter. Benchmarks only in the fresh report
// (newly added) are reported but never fail the gate; refresh the
// baseline in the change that adds them. Benchmarks only in the
// baseline (renamed or removed
// without a baseline refresh) DO fail the gate — a silently vanished
// benchmark is indistinguishable from an unmeasured regression. Pass
// -allow-missing in the change that intentionally retires one.
//
// Usage (as CI runs it):
//
//	go run ./cmd/commlat bench -json -q -o BENCH_fresh.json
//	go run ./scripts/benchdiff -base BENCH_detectors.json -fresh BENCH_fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"commlat/internal/bench"
)

func main() {
	basePath := flag.String("base", "BENCH_detectors.json", "committed baseline report")
	freshPath := flag.String("fresh", "BENCH_fresh.json", "freshly measured report from `commlat bench -json`")
	tolerance := flag.Float64("tolerance", 0.15, "allowed fractional ns/op increase before failing")
	floor := flag.Float64("floor", 25, "absolute ns/op increase always tolerated (noise floor)")
	allowMissing := flag.Bool("allow-missing", false, "tolerate baseline benchmarks absent from the fresh report (intentional rename/removal)")
	commvetPath := flag.String("commvet", "", "commvet -json report; its analyzer-suite runtime is printed as an informational line (never gates)")
	flag.Parse()

	if *commvetPath != "" {
		reportCommvetRuntime(*commvetPath)
	}

	var base, fresh bench.MicroReport
	if err := readJSON(*basePath, &base); err != nil {
		fail(err)
	}
	if err := readJSON(*freshPath, &fresh); err != nil {
		fail(err)
	}

	baseline := map[string]bench.MicroResult{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	seen := map[string]bool{}
	var regressions []string
	logSum, logN := 0.0, 0
	for _, f := range fresh.Benchmarks {
		seen[f.Name] = true
		b, ok := baseline[f.Name]
		if !ok {
			fmt.Printf("benchdiff: new benchmark %s (%.1f ns/op), no baseline\n", f.Name, f.NsPerOp)
			continue
		}
		if b.NsPerOp > 0 && f.NsPerOp > 0 {
			logSum += math.Log(f.NsPerOp / b.NsPerOp)
			logN++
		}
		limit := b.NsPerOp*(1+*tolerance) + *floor
		switch {
		case f.NsPerOp > limit:
			regressions = append(regressions, fmt.Sprintf(
				"%s: %.1f ns/op vs baseline %.1f ns/op (+%.1f%%, limit %.1f)",
				f.Name, f.NsPerOp, b.NsPerOp, 100*(f.NsPerOp-b.NsPerOp)/b.NsPerOp, limit))
		default:
			fmt.Printf("benchdiff: ok   %-44s %10.1f ns/op (baseline %10.1f)\n", f.Name, f.NsPerOp, b.NsPerOp)
		}
	}
	var stale []string
	for name := range baseline {
		if !seen[name] {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		b := baseline[name]
		if *allowMissing {
			fmt.Printf("benchdiff: note: baseline benchmark %s (%.1f ns/op) not in fresh report, tolerated by -allow-missing\n",
				name, b.NsPerOp)
			continue
		}
		regressions = append(regressions, fmt.Sprintf(
			"%s: in baseline (%.1f ns/op) but missing from fresh report — renamed or removed without refreshing the baseline? (rerun with -allow-missing if intentional)",
			name, b.NsPerOp))
	}
	if logN > 0 {
		// One line for sweep-wide drift: a geomean creeping up while every
		// row stays inside its individual tolerance is still a regression
		// worth noticing.
		geomean := math.Exp(logSum / float64(logN))
		fmt.Printf("benchdiff: geomean fresh/baseline over %d shared benchmarks: %.3f (%+.1f%%)\n",
			logN, geomean, 100*(geomean-1))
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchdiff: FAIL:", r)
	}
	if len(regressions) > 0 {
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %.0f%% of baseline\n", len(seen), 100**tolerance)
}

// reportCommvetRuntime prints the static-analysis suite's wall-clock
// time from a commvet -json report, so the bench job's log tracks how
// long the vet stage costs alongside the benchmark rows. Informational
// only: a missing or unreadable report is noted, never a failure.
func reportCommvetRuntime(path string) {
	var rep struct {
		ElapsedNS int64 `json:"elapsed_ns"`
		Packages  int   `json:"go_packages"`
		SpecFiles int   `json:"spec_files"`
	}
	if err := readJSON(path, &rep); err != nil {
		fmt.Printf("benchdiff: note: commvet report unavailable (%v)\n", err)
		return
	}
	fmt.Printf("benchdiff: info: commvet analyzed %d packages + %d spec files in %.2fs\n",
		rep.Packages, rep.SpecFiles, float64(rep.ElapsedNS)/1e9)
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
