// Command commvet runs the commlat static-analysis suite: the AST/type
// analyzers of internal/analysis (atomicfield, seqlock, poolzero,
// padcheck, gatecheck) over the module's packages, plus specvet over the
// spectext files in -specs. It exits nonzero when anything is found, so
// CI can require it; -json writes a machine-readable report (including
// the suite's own runtime, which scripts/benchdiff surfaces so CI time
// creep stays visible).
//
// Usage:
//
//	go run ./scripts/commvet [-json out.json] [-specs dir] [-root dir] [patterns...]
//
// Patterns default to ./... against the module root (found by walking up
// from the working directory to the nearest go.mod).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"commlat/internal/analysis"
)

type report struct {
	Schema    string             `json:"schema"`
	ElapsedNS int64              `json:"elapsed_ns"`
	Packages  int                `json:"go_packages"`
	SpecFiles int                `json:"spec_files"`
	Analyzers []string           `json:"analyzers"`
	Findings  []analysis.Finding `json:"findings"`
}

func main() {
	var (
		jsonOut = flag.String("json", "", "write a JSON report to this file ('-' for stdout)")
		specs   = flag.String("specs", "", "directory of .spec files to vet (default <root>/examples/specs)")
		root    = flag.String("root", "", "module root (default: nearest go.mod above the working directory)")
	)
	flag.Parse()

	start := time.Now()
	moduleRoot := *root
	if moduleRoot == "" {
		var err error
		moduleRoot, err = findModuleRoot()
		if err != nil {
			fatal(err)
		}
	}
	specDir := *specs
	if specDir == "" {
		specDir = filepath.Join(moduleRoot, "examples", "specs")
	}

	loader, err := analysis.NewLoader(moduleRoot)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Load(flag.Args()...)
	if err != nil {
		fatal(err)
	}
	findings := analysis.Run(pkgs, loader.Sizes())

	specFiles := 0
	if st, err := os.Stat(specDir); err == nil && st.IsDir() {
		specFindings, err := analysis.VetSpecDir(specDir)
		if err != nil {
			fatal(err)
		}
		findings = append(findings, specFindings...)
		entries, _ := os.ReadDir(specDir)
		for _, e := range entries {
			if !e.IsDir() && filepath.Ext(e.Name()) == ".spec" {
				specFiles++
			}
		}
	}

	rep := report{
		Schema:    "commvet/v1",
		ElapsedNS: time.Since(start).Nanoseconds(),
		Packages:  len(pkgs),
		SpecFiles: specFiles,
		Findings:  findings,
	}
	for _, a := range analysis.Suite {
		rep.Analyzers = append(rep.Analyzers, a.Name)
	}
	rep.Analyzers = append(rep.Analyzers, "specvet")

	if *jsonOut != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(data)
		} else if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
	}

	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", f.Pos, f.Analyzer, f.Message)
	}
	fmt.Fprintf(os.Stderr, "commvet: %d finding(s) across %d package(s), %d spec file(s) in %s\n",
		len(findings), len(pkgs), specFiles, time.Since(start).Round(time.Millisecond))
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("commvet: no go.mod above the working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commvet:", err)
	os.Exit(2)
}
