// MST: the general-gatekeeping case study (§5). Runs Borůvka's algorithm
// on a random mesh under memory-level union-find (uf-ml, where path
// compression makes finds collide) and under the paper's concrete
// general gatekeeper (uf-gk, with its find-reps and loser-rep logs),
// validating both against Kruskal.
package main

import (
	"flag"
	"fmt"

	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

func main() {
	n := flag.Int("n", 40, "mesh side (paper: 1000)")
	workers := flag.Int("workers", 4, "speculative workers")
	seed := flag.Int64("seed", 1, "weight seed")
	flag.Parse()

	nodes, edges := workload.Mesh(*n, *n, *seed)
	fmt.Printf("Boruvka on a %dx%d mesh: %d nodes, %d edges\n", *n, *n, nodes, len(edges))

	wantW, wantE := boruvka.Kruskal(nodes, edges)
	fmt.Printf("Kruskal oracle: weight=%.2f edges=%d\n", wantW, wantE)

	variants := []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
	}
	for _, v := range variants {
		res, err := boruvka.Run(v.mk(), nodes, edges, engine.Options{Workers: *workers})
		if err != nil {
			panic(err)
		}
		status := "OK"
		if res.Edges != wantE || res.Weight-wantW > 1e-6 || wantW-res.Weight > 1e-6 {
			status = "MISMATCH"
		}
		fmt.Printf("%-6s weight=%.2f edges=%d  commits=%d aborts=%d (%.1f%%)  %v  [%s]\n",
			v.name, res.Weight, res.Edges, res.Stats.Committed, res.Stats.Aborts,
			res.Stats.AbortRatio()*100, res.Stats.Elapsed.Round(1e6), status)

		prof, err := boruvka.Profile(v.mk(), nodes, edges)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s critical path=%d  avg parallelism=%.2f\n",
			"", prof.CriticalPath, prof.AvgParallelism)
	}
}
