// Adaptive: the future-work system sketched at the end of the paper's
// §5 — "an automated system to adaptively and dynamically select from
// these implementations as run-time needs change, given observations of
// parallelism and overhead." The controller hill-climbs the set's
// detector ladder (global lock → exclusive locks → r/w locks → forward
// gatekeeper), migrating the abstract state between implementations at
// epoch boundaries, and settles on the rung with the best observed
// throughput for the workload at hand.
package main

import (
	"flag"
	"fmt"

	"commlat/internal/adaptive"
	"commlat/internal/workload"
)

func main() {
	ops := flag.Int("ops", 80000, "operations")
	classes := flag.Int("classes", 10, "equivalence classes (contention knob)")
	epoch := flag.Int("epoch", 5000, "operations per epoch")
	window := flag.Int("window", 4, "overlap window (live transactions)")
	seed := flag.Int64("seed", 1, "stream seed")
	flag.Parse()

	ladder := adaptive.DefaultLadder()
	stream := workload.SetOpsClasses(*ops, *classes, *seed)
	fmt.Printf("adaptive selection over %d ops, %d classes, window %d\n", *ops, *classes, *window)

	trace, err := adaptive.Run(ladder, stream, *epoch, *window, 0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-7s %-12s %9s %12s\n", "epoch", "rung", "abort %", "ops/s")
	for i, s := range trace.Samples {
		fmt.Printf("%-7d %-12s %9.2f %12.0f\n", i, ladder[s.Rung].Name, s.AbortRatio*100, s.Throughput)
	}
	last := trace.Samples[len(trace.Samples)-1]
	fmt.Printf("\nsettled on %q after %d switches; final set has %d elements\n",
		ladder[last.Rung].Name, trace.Switches, len(trace.Final.Snapshot()))
}
