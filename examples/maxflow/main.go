// Maxflow: the preflow-push case study (§5). Builds a GENRMF network and
// computes its maximum flow sequentially and then speculatively under the
// three lattice points of the flow graph's specification — read/write
// node locks (ml), exclusive node locks (ex) and 32-partition locks
// (part) — reporting flow values, abort statistics and parallelism
// profiles.
package main

import (
	"flag"
	"fmt"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/apps/preflow"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

func main() {
	a := flag.Int("a", 6, "GENRMF frame side")
	b := flag.Int("b", 6, "GENRMF frame count")
	workers := flag.Int("workers", 4, "speculative workers")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	mk := func() *flowgraph.Net { return workload.GenRMF(*a, *b, 1, 1000, *seed) }
	fmt.Printf("GENRMF %dx%dx%d: %d nodes\n", *a, *a, *b, mk().Len())

	want := preflow.Sequential(mk())
	fmt.Println("sequential max flow:", want)

	variants := []struct {
		name string
		mk   func() *flowgraph.Graph
	}{
		{"ml (r/w locks)", func() *flowgraph.Graph { return flowgraph.NewRW(mk()) }},
		{"ex (exclusive)", func() *flowgraph.Graph { return flowgraph.NewExclusive(mk()) }},
		{"part (32 parts)", func() *flowgraph.Graph { return flowgraph.NewPartitioned(mk(), 32) }},
	}
	for _, v := range variants {
		flow, stats, err := preflow.Run(v.mk(), engine.Options{Workers: *workers})
		if err != nil {
			panic(err)
		}
		status := "OK"
		if flow != want {
			status = fmt.Sprintf("MISMATCH (want %d)", want)
		}
		fmt.Printf("%-16s flow=%d  commits=%d aborts=%d (%.1f%%)  %v  [%s]\n",
			v.name, flow, stats.Committed, stats.Aborts, stats.AbortRatio()*100, stats.Elapsed.Round(1e6), status)

		prof, err := preflow.Profile(v.mk())
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-16s critical path=%d  avg parallelism=%.2f\n",
			"", prof.CriticalPath, prof.AvgParallelism)
	}
}
