// Clustering: the forward-gatekeeping case study (§5). Agglomeratively
// clusters random points over a kd-tree under memory-level conflict
// detection (kd-ml) and under the forward gatekeeper built from figure
// 4's precise specification (kd-gk), showing the gatekeeper's order-of-
// magnitude critical-path advantage.
package main

import (
	"flag"
	"fmt"

	"commlat/internal/adt/kdtree"
	"commlat/internal/apps/cluster"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

func main() {
	n := flag.Int("n", 1000, "points to cluster (paper: 100k profile, 500k timing)")
	workers := flag.Int("workers", 4, "speculative workers")
	seed := flag.Int64("seed", 1, "point seed")
	flag.Parse()

	pts := workload.RandomPoints(*n, 1000, *seed)
	fmt.Printf("clustering %d random points (%d merges expected)\n", *n, *n-1)

	variants := []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
	}
	for _, v := range variants {
		idx := v.mk()
		d, res, err := cluster.Run(idx, pts, engine.Options{Workers: *workers})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s merges=%d  commits=%d aborts=%d (%.1f%%)  %v\n",
			v.name, len(d.Merges()), res.Stats.Committed, res.Stats.Aborts,
			res.Stats.AbortRatio()*100, res.Stats.Elapsed.Round(1e6))
		if gk, ok := idx.(*kdtree.GKTree); ok {
			gs := gk.GateStats()
			fmt.Printf("%-6s gatekeeper: %d invocations, %d checks, %d logged, %d conflicts\n",
				"", gs.Invocations, gs.Checks, gs.LogEntries, gs.Conflicts)
		}

		prof, err := cluster.Profile(v.mk(), pts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s critical path=%d  avg parallelism=%.2f\n",
			"", prof.CriticalPath, prof.AvgParallelism)
	}
}
