// Quickstart: define a commutativity specification, place it in the
// lattice, synthesize its abstract-locking conflict detector, and run
// speculative transactions against it — the complete §2–§3 pipeline on
// the paper's accumulator running example plus the set of figures 2/3.
package main

import (
	"fmt"

	"commlat/internal/abslock"
	"commlat/internal/adt/intset"
	"commlat/internal/core"
	"commlat/internal/engine"
)

func main() {
	// 1. An ADT signature: the accumulator of figure 7.
	sig := &core.ADTSig{Name: "accumulator", Methods: []core.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "read", HasRet: true},
	}}

	// 2. Its commutativity specification: increments commute with
	// increments, reads with reads, and never with each other.
	spec := core.NewSpec(sig)
	spec.Set("inc", "inc", core.True())
	spec.Set("inc", "read", core.False())
	spec.Set("read", "read", core.True())
	fmt.Printf("specification (%s):\n%s\n", spec.Classify(), spec)

	// 3. SIMPLE specifications synthesize into abstract locking schemes
	// (Theorem 1); the reduction drops superfluous modes (figure 8).
	scheme, err := abslock.Synthesize(spec)
	if err != nil {
		panic(err)
	}
	reduced := scheme.Reduce()
	fmt.Println("reduced compatibility matrix (figure 8b):")
	fmt.Println(reduced.MatrixString())

	// 4. Run transactions against the synthesized detector.
	mgr := abslock.NewManager(reduced, nil)
	total := 0
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := mgr.Invoke(tx1, "inc", core.Args1(core.VInt(5)), func() core.Value {
		total += 5
		tx1.OnUndo(func() { total -= 5 })
		return core.Value{}
	}); err != nil {
		panic(err)
	}
	// A concurrent increment commutes...
	if _, err := mgr.Invoke(tx2, "inc", core.Args1(core.VInt(3)), func() core.Value {
		total += 3
		tx2.OnUndo(func() { total -= 3 })
		return core.Value{}
	}); err != nil {
		panic(err)
	}
	fmt.Println("two concurrent increments: no conflict, total =", total)
	// ...but a read under a live increment conflicts.
	tx3 := engine.NewTx()
	_, err = mgr.Invoke(tx3, "read", core.Vec{}, func() core.Value { return core.VInt(int64(total)) })
	fmt.Println("concurrent read conflicts:", engine.IsConflict(err))
	tx3.Abort()
	tx1.Commit()
	tx2.Commit()

	// 5. The lattice in action: the set's precise spec (figure 2) sits
	// above the SIMPLE one (figure 3), which sits above exclusive locks
	// and ⊥ — and each point picks a different detector.
	precise, rw, ex, bot := intset.PreciseSpec(), intset.RWSpec(), intset.ExclusiveSpec(), intset.BottomSpec()
	fmt.Println("\nthe set's lattice chain (⊥ ≤ ex ≤ rw ≤ precise):")
	fmt.Println("  bottom ≤ exclusive:", bot.LE(ex))
	fmt.Println("  exclusive ≤ rw:    ", ex.LE(rw))
	fmt.Println("  rw ≤ precise:      ", rw.LE(precise))
	fmt.Println("  classes:            ", bot.Classify(), "/", rw.Classify(), "/", precise.Classify())

	// 6. The precise spec needs a forward gatekeeper: two non-mutating
	// adds of the same element proceed concurrently — something no
	// locking scheme can allow.
	set := intset.NewGatekept(intset.NewHashRep())
	seed := engine.NewTx()
	if _, err := set.Add(seed, 42); err != nil {
		panic(err)
	}
	seed.Commit()
	ta, tb := engine.NewTx(), engine.NewTx()
	ra, _ := set.Add(ta, 42)
	rb, errB := set.Add(tb, 42)
	fmt.Printf("\ngatekept set: concurrent add(42)/add(42) on {42}: %v/%v, conflict=%v\n",
		ra, rb, engine.IsConflict(errB))
	ta.Commit()
	tb.Commit()
}
