package commlat_test

import (
	"testing"

	"commlat"
)

// TestFacade exercises the public façade end to end: build a spec,
// classify it, order it in the lattice, synthesize locks, and run
// transactions — the README's advertised API.
func TestFacade(t *testing.T) {
	sig := &commlat.ADTSig{Name: "counter", Methods: []commlat.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "get", HasRet: true},
	}}
	spec := commlat.NewSpec(sig)
	spec.Set("inc", "inc", commlat.True())
	spec.Set("inc", "get", commlat.False())
	spec.Set("get", "get", commlat.True())

	if got := spec.Classify(); got != commlat.ClassSimple {
		t.Fatalf("class = %v", got)
	}
	if !commlat.Bottom(sig).LE(spec) {
		t.Error("⊥ should be below every spec")
	}
	if !commlat.Implies(commlat.False(), commlat.Ne(commlat.Arg1(0), commlat.Arg2(0))) {
		t.Error("false should imply anything")
	}

	scheme, err := commlat.Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	mgr := commlat.NewLockManager(scheme.Reduce(), nil)

	total := 0
	tx1 := commlat.NewTx()
	if _, err := mgr.Invoke(tx1, "inc", commlat.MakeArgs(commlat.V(int64(1))), func() commlat.Value {
		total++
		tx1.OnUndo(func() { total-- })
		return commlat.Value{}
	}); err != nil {
		t.Fatal(err)
	}
	tx2 := commlat.NewTx()
	_, err = mgr.Invoke(tx2, "get", commlat.Args{}, func() commlat.Value { return commlat.V(int64(total)) })
	if !commlat.IsConflict(err) {
		t.Fatalf("get under live inc should conflict, got %v", err)
	}
	tx2.Abort()
	tx1.Abort()
	if total != 0 {
		t.Errorf("undo failed: total = %d", total)
	}
}

// TestFacadeGatekeepers builds both gatekeeper kinds through the façade.
func TestFacadeGatekeepers(t *testing.T) {
	sig := &commlat.ADTSig{Name: "reg", Methods: []commlat.MethodSig{
		{Name: "put", Params: []string{"k"}, HasRet: true},
		{Name: "get", Params: []string{"k"}, HasRet: true},
	}}
	online := commlat.NewSpec(sig)
	online.Set("put", "put", commlat.Ne(commlat.Arg1(0), commlat.Arg2(0)))
	online.Set("put", "get", commlat.Or(commlat.Ne(commlat.Arg1(0), commlat.Arg2(0)), commlat.Eq(commlat.Ret1(), commlat.Lit(false))))
	online.Set("get", "get", commlat.True())
	if _, err := commlat.NewForwardGatekeeper(online, nil); err != nil {
		t.Fatalf("forward gatekeeper: %v", err)
	}

	general := commlat.NewSpec(sig)
	general.Set("put", "put", commlat.False())
	general.Set("put", "get", commlat.Ne(commlat.Fn1("lookup", commlat.Arg2(0)), commlat.Lit(0)))
	general.Set("get", "get", commlat.True())
	if _, err := commlat.NewForwardGatekeeper(general, nil); err == nil {
		t.Error("forward gatekeeper should reject the general spec")
	}
	if _, err := commlat.NewGeneralGatekeeper(general, nil); err != nil {
		t.Fatalf("general gatekeeper: %v", err)
	}
}
