package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseThreads(t *testing.T) {
	got, err := parseThreads("1, 2,8")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parseThreads = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "a", "1,,2", "-3"} {
		if _, err := parseThreads(bad); err == nil {
			t.Errorf("parseThreads(%q) should fail", bad)
		}
	}
}

func TestCmdMatricesAllSpecs(t *testing.T) {
	for _, which := range []string{"accumulator", "set", "flowgraph"} {
		if err := cmdMatrices([]string{"-spec", which}); err != nil {
			t.Errorf("matrices %s: %v", which, err)
		}
	}
	if err := cmdMatrices([]string{"-spec", "nope"}); err == nil {
		t.Error("unknown spec should fail")
	}
}

func TestCmdSpecsAndStrengthen(t *testing.T) {
	if err := cmdSpecs(nil); err != nil {
		t.Errorf("specs: %v", err)
	}
	for _, which := range []string{"set", "kdtree", "unionfind"} {
		if err := cmdStrengthen([]string{"-spec", which}); err != nil {
			t.Errorf("strengthen %s: %v", which, err)
		}
	}
	if err := cmdStrengthen([]string{"-spec", "nope"}); err == nil {
		t.Error("unknown spec should fail")
	}
}

func TestCmdCheckFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.spec")
	src := `
adt reg
method put(k) ret
method get(k) ret
put ~ put: v1.k != v2.k
put ~ get: v1.k != v2.k
get ~ get: true
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdCheck([]string{"-file", path}); err != nil {
		t.Errorf("check: %v", err)
	}
	if err := cmdCheck([]string{"-file", filepath.Join(dir, "missing.spec")}); err == nil {
		t.Error("missing file should fail")
	}
	if err := cmdCheck(nil); err == nil {
		t.Error("missing -file should fail")
	}
}

func TestCmdCheckShippedSpecs(t *testing.T) {
	// The example spec files must stay parseable.
	for _, name := range []string{"set.spec", "kv.spec", "unionfind.spec"} {
		path := filepath.Join("..", "..", "examples", "specs", name)
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("missing example spec %s: %v", name, err)
		}
		if err := cmdCheck([]string{"-file", path}); err != nil {
			t.Errorf("check %s: %v", name, err)
		}
	}
}

func TestCmdTable2Small(t *testing.T) {
	if err := cmdTable2([]string{"-ops", "2000", "-ext"}); err != nil {
		t.Errorf("table2: %v", err)
	}
}

func TestCmdAdaptiveSmall(t *testing.T) {
	if err := cmdAdaptive([]string{"-ops", "4000", "-epoch", "1000"}); err != nil {
		t.Errorf("adaptive: %v", err)
	}
}
