package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// cmdFlightrec runs one application with the stage-latency histograms
// and the flight recorder enabled, then prints the percentile table,
// the most recent admission records, and the controller audit trail —
// the offline twin of the /debug/commlat/ endpoints.
func cmdFlightrec(args []string) error {
	fs := flag.NewFlagSet("flightrec", flag.ExitOnError)
	app := fs.String("app", "boruvka", "boruvka | preflow | cluster")
	detector := fs.String("detector", "", "detector variant (boruvka: gk|generic|ml; preflow: rw|ex|part; cluster: gk|ml); default is the app's gatekept variant")
	threads := fs.Int("threads", 4, "worker goroutines")
	mesh := fs.Int("mesh", 16, "Boruvka mesh side")
	rmfa := fs.Int("rmfa", 6, "GENRMF frame side (preflow)")
	rmfb := fs.Int("rmfb", 6, "GENRMF frame count (preflow)")
	parts := fs.Int("parts", 32, "preflow partitions (detector=part)")
	points := fs.Int("points", 400, "clustering points")
	seed := fs.Int64("seed", 1, "generator seed")
	ring := fs.Int("ring", 1<<10, "per-worker flight ring capacity in records (rounded up to a power of two)")
	jsonMode := fs.Bool("json", false, "write the flight-recorder document as JSON to stdout (tables go to stderr)")
	out := fs.String("o", "", "also write the flight-recorder document as JSON to this file (- for stdout)")
	percentiles := fs.String("percentiles", "", "write the stage-latency percentile document as JSON to this file (- for stdout)")
	heatmap := fs.String("heatmap", "", "write the shard-load heatmap document as JSON to this file (- for stdout)")
	auditOut := fs.String("audit", "", "write the controller audit trail as JSON to this file (- for stdout)")
	max := fs.Int("max", 32, "flight records shown in the table (<=0 shows all)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	telemetry.EnableLatency()
	telemetry.EnableFlight(*ring)
	defer telemetry.DisableLatency()
	defer telemetry.DisableFlight()
	telemetry.ResetAudit()

	opts := engine.Options{Workers: *threads, Seed: *seed}
	if err := prof.start(); err != nil {
		return err
	}
	summary, err := runTraced(*app, *detector, opts, traceSizes{
		mesh: *mesh, rmfa: *rmfa, rmfb: *rmfb, parts: *parts, points: *points, seed: *seed,
	})
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}

	doc := telemetry.Default.FlightSnapshot()
	lat := telemetry.SnapshotLatency()
	audit := telemetry.AuditTrail()

	report := io.Writer(os.Stdout)
	if *jsonMode || *out == "-" || *percentiles == "-" || *heatmap == "-" || *auditOut == "-" {
		report = os.Stderr
	}
	if *jsonMode {
		if err := telemetry.Default.WriteFlightJSON(os.Stdout); err != nil {
			return err
		}
	}
	writeDoc := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return write(os.Stdout)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	if err := writeDoc(*out, telemetry.Default.WriteFlightJSON); err != nil {
		return err
	}
	if err := writeDoc(*percentiles, telemetry.WritePercentilesJSON); err != nil {
		return err
	}
	if err := writeDoc(*heatmap, telemetry.Default.WriteHeatmapJSON); err != nil {
		return err
	}
	if err := writeDoc(*auditOut, telemetry.WriteAuditJSON); err != nil {
		return err
	}

	fmt.Fprintln(report, summary)
	fmt.Fprintln(report)
	fmt.Fprint(report, telemetry.FormatLatencyTable(lat))
	fmt.Fprintln(report)
	fmt.Fprint(report, telemetry.FormatFlightTable(doc, *max))
	fmt.Fprintln(report)
	fmt.Fprint(report, telemetry.FormatAuditTable(audit))
	return nil
}
