// Command commlat regenerates the tables and figures of "Exploiting the
// Commutativity Lattice" (PLDI 2011) and prints the synthesized
// abstract-locking artifacts.
//
// Usage:
//
//	commlat table1  [-rmfa N -rmfb N -mesh N -points N -parts N -seed S]
//	commlat table2  [-ops N -classes K -threads T -seed S]
//	commlat fig10   [-threads list -rmfa N -rmfb N -parts N -seed S]
//	commlat fig11   [-threads list -points N -seed S]
//	commlat fig12   [-threads list -mesh N -seed S]
//	commlat matrices [-spec accumulator|set|flowgraph]
//	commlat model   [-app Preflow-push|Boruvka|Clustering -procs list ...]
//	commlat specs
//
// Paper-scale inputs are a matter of flags (e.g. -points 500000
// -mesh 1000 -ops 1000000); defaults finish in seconds on a laptop.
//
// The global flags -cpuprofile and -memprofile, given before the
// command, write pprof profiles covering the whole run:
//
//	commlat -cpuprofile cpu.out table2 -ops 1000000
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"commlat/internal/abslock"
	"commlat/internal/analysis"
	"commlat/internal/adaptive"
	"commlat/internal/adt/accum"
	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/intset"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/bench"
	"commlat/internal/core"
	"commlat/internal/spectext"
	"commlat/internal/telemetry"
	"commlat/internal/workload"
)

func main() {
	global := flag.NewFlagSet("commlat", flag.ExitOnError)
	global.Usage = usage
	cpuProfile := global.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := global.String("memprofile", "", "write a heap profile to this file on exit")
	listen := global.String("listen", "", "serve live telemetry (/metrics, /debug/telemetry, /debug/vars) on this address for the run's duration")
	telemetryOut := global.String("telemetry-out", "", "write a final telemetry snapshot (JSON, cascade stage counters included) to this file on exit")
	if err := global.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if global.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	var srv *http.Server
	var srvDone chan struct{}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commlat:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "commlat: telemetry on http://%s/\n", ln.Addr())
		srv = &http.Server{Handler: telemetry.Handler(telemetry.Default)}
		srvDone = make(chan struct{})
		go func() {
			defer close(srvDone)
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "commlat: telemetry server:", err)
			}
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commlat:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "commlat:", err)
			os.Exit(1)
		}
	}
	// Teardown runs exactly once, from whichever path gets there first —
	// the subcommand returning or a termination signal — so an
	// interrupted run still flushes its profiles, drains in-flight
	// telemetry scrapes, and writes its final snapshot.
	var teardownOnce sync.Once
	var teardownErr error
	teardown := func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if srv != nil {
			// Drain in-flight scrapes before exiting: a Prometheus poll
			// that raced the run's end still gets its complete response.
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			if serr := srv.Shutdown(ctx); serr != nil {
				fmt.Fprintln(os.Stderr, "commlat: telemetry server shutdown:", serr)
			}
			cancel()
			<-srvDone
		}
		if *telemetryOut != "" {
			if werr := writeTelemetrySnapshot(*telemetryOut); werr != nil {
				fmt.Fprintln(os.Stderr, "commlat:", werr)
				teardownErr = werr
			}
		}
		if *memProfile != "" {
			f, ferr := os.Create(*memProfile)
			if ferr != nil {
				fmt.Fprintln(os.Stderr, "commlat:", ferr)
				teardownErr = ferr
				return
			}
			runtime.GC() // capture the retained heap, not transient garbage
			if ferr := pprof.WriteHeapProfile(f); ferr != nil {
				fmt.Fprintln(os.Stderr, "commlat:", ferr)
				teardownErr = ferr
			}
			f.Close()
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigCh
		fmt.Fprintf(os.Stderr, "commlat: %v: shutting down\n", s)
		teardownOnce.Do(teardown)
		code := 130 // 128 + SIGINT
		if s == syscall.SIGTERM {
			code = 143
		}
		os.Exit(code)
	}()

	err := dispatch(global.Arg(0), global.Args()[1:])
	teardownOnce.Do(teardown)
	if err == nil {
		err = teardownErr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "commlat:", err)
		os.Exit(1)
	}
}

// writeTelemetrySnapshot dumps the default registry's counters — the
// same JSON the /debug/telemetry endpoint serves — so batch runs can
// keep per-stage cascade statistics without a live HTTP listener.
func writeTelemetrySnapshot(path string) error {
	data, err := json.MarshalIndent(telemetry.Default.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func dispatch(cmd string, args []string) error {
	var err error
	switch cmd {
	case "table1":
		err = cmdTable1(args)
	case "table2":
		err = cmdTable2(args)
	case "bench":
		err = cmdBench(args)
	case "fig10", "fig11", "fig12":
		err = cmdFig(cmd, args)
	case "matrices":
		err = cmdMatrices(args)
	case "model":
		err = cmdModel(args)
	case "specs":
		err = cmdSpecs(args)
	case "strengthen":
		err = cmdStrengthen(args)
	case "adaptive":
		err = cmdAdaptive(args)
	case "trace":
		err = cmdTrace(args)
	case "flightrec":
		err = cmdFlightrec(args)
	case "check":
		err = cmdCheck(args)
	case "all":
		err = cmdAll(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "commlat: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr, `commlat — reproduce "Exploiting the Commutativity Lattice" (PLDI 2011)

commands:
  table1    critical path / parallelism / overhead per app and variant
  table2    set microbenchmark abort ratios and times
  bench     detector micro-benchmarks (ns/op, allocs/op), serial and
            batched admission rows (DetectorCascadeBatch*, CascadeBatch);
            -json writes BENCH_detectors.json for the CI allocation gate
  fig10     preflow-push run time vs threads (ml, ex, part)
  fig11     clustering run time vs threads (kd-gk vs kd-ml)
  fig12     Boruvka run time vs threads (uf-gk vs uf-ml)
  matrices  synthesized lock modes and compatibility matrices (fig. 8)
  model     the §5 T·o/min(a,p) scheme-selection model on measured data
  specs     print every commutativity specification and its class
  strengthen  derive the strongest SIMPLE spec below a given one (§4.1)
  adaptive  run the §5 future-work adaptive scheme selector on the set
            (-shards N overrides the cascade-sharded rung's shard count)
  trace     run one app with the telemetry event trace enabled; writes a
            Chrome trace_event JSON (and optionally JSONL) plus the
            per-method-pair conflict attribution table
  flightrec run one app with stage-latency histograms and the flight
            recorder enabled; prints the percentile table, recent
            admission records and the controller audit trail (-json,
            -percentiles/-heatmap/-audit write the JSON documents)
  check     parse a textual specification file, classify and synthesize it
  all       run every quick experiment (tables, matrices, model, adaptive)

global flags (before the command):
  -cpuprofile FILE  write a pprof CPU profile of the whole run
  -memprofile FILE  write a pprof heap profile at exit
  -listen ADDR      serve live telemetry over HTTP while the command runs
                    (/metrics Prometheus text, /debug/telemetry JSON,
                    /debug/vars expvar)
  -telemetry-out FILE  write the final telemetry snapshot as JSON on exit
                    (engine counters plus per-detector stats, cascade
                    stage counters included; same schema as
                    /debug/telemetry, checked by scripts/tracecheck)
table1, table2, fig10-12, model, adaptive and bench also accept
-cpuprofile/-memprofile after the command, scoping the profile to that
command's measured work.

run "commlat <command> -h" for flags.`)
}

func parseThreads(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad thread list %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// profileFlags registers -cpuprofile/-memprofile on a subcommand's flag
// set, so profiles can be scoped to one command's work (the global
// pre-command flags still cover whole runs). Call start after parsing
// and the returned stop when the command's work is done.
type profileFlags struct {
	cpu, mem *string
	f        *os.File
}

func addProfileFlags(fs *flag.FlagSet) *profileFlags {
	p := &profileFlags{}
	p.cpu = fs.String("cpuprofile", "", "write a pprof CPU profile of this command")
	p.mem = fs.String("memprofile", "", "write a pprof heap profile when this command ends")
	return p
}

func (p *profileFlags) start() error {
	if *p.cpu == "" {
		return nil
	}
	f, err := os.Create(*p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.f = f
	return nil
}

func (p *profileFlags) stop() error {
	if p.f != nil {
		pprof.StopCPUProfile()
		p.f.Close()
		p.f = nil
	}
	if *p.mem == "" {
		return nil
	}
	f, err := os.Create(*p.mem)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // capture the retained heap, not transient garbage
	return pprof.WriteHeapProfile(f)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "write the results as JSON to -o")
	out := fs.String("o", "BENCH_detectors.json", "output path for -json (- for stdout)")
	run := fs.String("run", "", "regexp selecting benchmarks to run (default all)")
	quiet := fs.Bool("q", false, "suppress the progress table")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var filter *regexp.Regexp
	if *run != "" {
		var err error
		if filter, err = regexp.Compile(*run); err != nil {
			return fmt.Errorf("bad -run regexp: %w", err)
		}
	}
	if err := prof.start(); err != nil {
		return err
	}
	progress := io.Writer(os.Stderr)
	if *quiet {
		progress = nil
	}
	results := bench.RunMicros(filter, progress)
	if err := prof.stop(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmarks match %q", *run)
	}
	if !*jsonOut {
		return nil
	}
	rep := bench.Report(results)
	if *out == "-" {
		return bench.WriteJSON(os.Stdout, rep)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	if err := bench.WriteJSON(f, rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdTable1(args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	cfg := bench.DefaultTable1()
	fs.IntVar(&cfg.RMFa, "rmfa", cfg.RMFa, "GENRMF frame side")
	fs.IntVar(&cfg.RMFb, "rmfb", cfg.RMFb, "GENRMF frame count")
	fs.IntVar(&cfg.MeshN, "mesh", cfg.MeshN, "Boruvka mesh side (paper: 1000)")
	fs.IntVar(&cfg.Points, "points", cfg.Points, "clustering points (paper: 100000)")
	fs.IntVar(&cfg.Parts, "parts", cfg.Parts, "preflow partitions (paper: 32)")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	rows, err := bench.Table1(cfg)
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable1(rows))
	return nil
}

func cmdTable2(args []string) error {
	fs := flag.NewFlagSet("table2", flag.ExitOnError)
	cfg := bench.DefaultTable2()
	fs.IntVar(&cfg.Ops, "ops", cfg.Ops, "operations (paper: 1000000)")
	fs.IntVar(&cfg.Classes, "classes", cfg.Classes, "equivalence classes (paper: 10)")
	fs.IntVar(&cfg.Threads, "threads", cfg.Threads, "overlap window / threads (paper: 4)")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "stream seed")
	fs.BoolVar(&cfg.Extended, "ext", false, "add extension rows (liberal locks, object STM)")
	stats := fs.Bool("stats", false, "print gatekeeper work counters (probes, collisions, fallbacks)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	rows, err := bench.Table2(cfg)
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Print(bench.FormatTable2(rows))
	if *stats {
		fmt.Println()
		fmt.Print(bench.FormatTable2Stats(rows))
	}
	return nil
}

func cmdFig(name string, args []string) error {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	cfg := bench.DefaultFig()
	threads := fs.String("threads", "1,2,4,8", "comma-separated thread counts")
	fs.IntVar(&cfg.RMFa, "rmfa", cfg.RMFa, "GENRMF frame side")
	fs.IntVar(&cfg.RMFb, "rmfb", cfg.RMFb, "GENRMF frame count")
	fs.IntVar(&cfg.Parts, "parts", cfg.Parts, "preflow partitions")
	fs.IntVar(&cfg.Points, "points", cfg.Points, "clustering points (paper: 500000)")
	fs.IntVar(&cfg.MeshN, "mesh", cfg.MeshN, "Boruvka mesh side (paper: 1000)")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var err error
	cfg.Threads, err = parseThreads(*threads)
	if err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	var fig bench.Figure
	switch name {
	case "fig10":
		fig, err = bench.Fig10(cfg)
	case "fig11":
		fig, err = bench.Fig11(cfg)
	default:
		fig, err = bench.Fig12(cfg)
	}
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Print(fig.String())
	return nil
}

func cmdMatrices(args []string) error {
	fs := flag.NewFlagSet("matrices", flag.ExitOnError)
	which := fs.String("spec", "accumulator", "accumulator | set | flowgraph")
	if err := fs.Parse(args); err != nil {
		return err
	}
	specs := map[string][]*core.Spec{
		"accumulator": {accum.Spec()},
		"set":         {intset.RWSpec(), intset.ExclusiveSpec(), intset.BottomSpec()},
		"flowgraph":   {flowgraph.RWSpec(), flowgraph.ExclusiveSpec()},
	}
	list, ok := specs[*which]
	if !ok {
		return fmt.Errorf("unknown spec %q", *which)
	}
	for _, spec := range list {
		fmt.Printf("=== %s (%s)\n%s\n", spec.Sig.Name, spec.Classify(), spec)
		scheme, err := abslock.Synthesize(spec)
		if err != nil {
			return err
		}
		fmt.Println("full compatibility matrix (figure 8a):")
		fmt.Println(scheme.MatrixString())
		fmt.Println("reduced compatibility matrix (figure 8b):")
		fmt.Println(scheme.Reduce().MatrixString())
	}
	return nil
}

func cmdModel(args []string) error {
	fs := flag.NewFlagSet("model", flag.ExitOnError)
	app := fs.String("app", "Preflow-push", "Preflow-push | Boruvka | Clustering")
	procs := fs.String("procs", "1,2,4,8,64,1024", "processor counts")
	cfg := bench.DefaultTable1()
	fs.IntVar(&cfg.RMFa, "rmfa", cfg.RMFa, "GENRMF frame side")
	fs.IntVar(&cfg.RMFb, "rmfb", cfg.RMFb, "GENRMF frame count")
	fs.IntVar(&cfg.MeshN, "mesh", cfg.MeshN, "Boruvka mesh side")
	fs.IntVar(&cfg.Points, "points", cfg.Points, "clustering points")
	fs.Int64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	ps, err := parseThreads(*procs)
	if err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	rows, err := bench.Table1(cfg)
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	entries := bench.ModelFromTable1(rows, *app)
	if len(entries) == 0 {
		return fmt.Errorf("no Table 1 rows for app %q", *app)
	}
	fmt.Print(bench.FormatModel(entries, ps))
	return nil
}

func cmdSpecs(args []string) error {
	all := []*core.Spec{
		intset.PreciseSpec(), intset.RWSpec(), intset.ExclusiveSpec(),
		intset.PartitionedSpec(), intset.BottomSpec(),
		kdtree.Spec(), unionfind.Spec(),
		flowgraph.RWSpec(), flowgraph.ExclusiveSpec(), flowgraph.PartitionedSpec(),
		accum.Spec(),
	}
	for _, s := range all {
		fmt.Printf("— %s [%s]\n%s\n", s.Sig.Name, s.Classify(), s)
	}
	return nil
}

func cmdStrengthen(args []string) error {
	fs := flag.NewFlagSet("strengthen", flag.ExitOnError)
	which := fs.String("spec", "set", "set | kdtree | unionfind")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var spec *core.Spec
	switch *which {
	case "set":
		spec = intset.PreciseSpec()
	case "kdtree":
		spec = kdtree.Spec()
	case "unionfind":
		spec = unionfind.Spec()
	default:
		return fmt.Errorf("unknown spec %q", *which)
	}
	fmt.Printf("original (%s):\n%s\n", spec.Classify(), spec)
	simple := core.StrengthenToSimple(spec)
	fmt.Printf("strongest SIMPLE specification below it (§4.1):\n%s\n", simple)
	fmt.Println("ordering check: strengthened ≤ original:", simple.LE(spec))
	scheme, err := abslock.Synthesize(simple)
	if err != nil {
		return err
	}
	fmt.Println("synthesized reduced lock matrix:")
	fmt.Println(scheme.Reduce().MatrixString())
	return nil
}

func cmdAdaptive(args []string) error {
	fs := flag.NewFlagSet("adaptive", flag.ExitOnError)
	ops := fs.Int("ops", 60000, "operations")
	classes := fs.Int("classes", 10, "equivalence classes")
	epoch := fs.Int("epoch", 5000, "epoch size")
	window := fs.Int("window", 4, "overlap window (threads)")
	seed := fs.Int64("seed", 1, "stream seed")
	start := fs.String("start", "", "starting rung by name (default: the bottom of the ladder)")
	shards := fs.Int("shards", 0, "shard count for the cascade-sharded rung (0: pick from the ShardController ladder for this GOMAXPROCS)")
	auditOut := fs.String("audit", "", "write the controller decision audit trail as JSON to this file (- for stdout)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := prof.start(); err != nil {
		return err
	}
	ladder := adaptive.DefaultLadder()
	nShards := *shards
	if nShards <= 0 {
		nShards = adaptive.NewShardController(0).Shards()
	}
	for i := range ladder {
		if ladder[i].Name == "cascade-sharded" {
			ladder[i] = adaptive.ShardedRung(nShards)
		}
	}
	startRung := 0
	if *start != "" {
		startRung = -1
		for i, r := range ladder {
			if r.Name == *start {
				startRung = i
				break
			}
		}
		if startRung < 0 {
			names := make([]string, len(ladder))
			for i, r := range ladder {
				names[i] = r.Name
			}
			return fmt.Errorf("unknown rung %q (ladder: %s)", *start, strings.Join(names, ", "))
		}
	}
	stream := workload.SetOpsClasses(*ops, *classes, *seed)
	telemetry.ResetAudit()
	trace, err := adaptive.Run(ladder, stream, *epoch, *window, startRung)
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %10s %12s\n", "epoch", "rung", "abort %", "ops/s")
	for i, s := range trace.Samples {
		fmt.Printf("%-8d %-12s %10.2f %12.0f\n", i, ladder[s.Rung].Name, s.AbortRatio*100, s.Throughput)
	}
	fmt.Printf("switches: %d; final set size: %d\n", trace.Switches, len(trace.Final.Snapshot()))
	if *auditOut != "" {
		w := io.Writer(os.Stdout)
		if *auditOut != "-" {
			f, err := os.Create(*auditOut)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := telemetry.WriteAuditJSON(w); err != nil {
			return err
		}
	}
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	file := fs.String("file", "", "specification file (see internal/spectext); - for stdin")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file == "" {
		return fmt.Errorf("usage: commlat check -file <spec.txt>")
	}
	var src []byte
	var err error
	if *file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(*file)
	}
	if err != nil {
		return err
	}
	spec, err := spectext.Parse(string(src))
	if err != nil {
		return err
	}
	// Static verification first: a spec that is ill-formed, covertly
	// asymmetric, or lattice-broken should fail check before anything
	// is synthesized from it.
	specName := *file
	if specName != "-" {
		specName = filepath.Base(specName)
	}
	if findings := analysis.VetSpec(specName, spec); len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintf(os.Stderr, "%s: %s\n", f.Pos, f.Message)
		}
		return fmt.Errorf("specvet: %d finding(s)", len(findings))
	}
	fmt.Printf("parsed %s: %d methods, class %s (specvet: verified)\n\n", spec.Sig.Name, len(spec.Sig.Methods), spec.Classify())
	fmt.Print(spectext.Format(spec))
	fmt.Println()
	switch spec.Classify() {
	case core.ClassSimple:
		scheme, err := abslock.Synthesize(spec)
		if err != nil {
			return err
		}
		fmt.Println("SIMPLE: synthesized abstract locking scheme (reduced):")
		fmt.Println(scheme.Reduce().MatrixString())
	case core.ClassOnline:
		fmt.Println("ONLINE-CHECKABLE: implementable by a forward gatekeeper (§3.3.1).")
		if scheme, err := abslock.SynthesizeLiberal(spec); err == nil {
			fmt.Println("...and GUARDED-SIMPLE: liberal locking (footnote 6) also applies:")
			fmt.Println(scheme.Reduce().MatrixString())
		}
	default:
		fmt.Println("GENERAL: requires a general gatekeeper (§3.3.2).")
	}
	simple := core.StrengthenToSimple(spec)
	if spec.Classify() != core.ClassSimple {
		fmt.Println("\nstrongest SIMPLE specification below it (§4.1):")
		fmt.Print(spectext.Format(simple))
	}
	return nil
}

func cmdAll(args []string) error {
	steps := []struct {
		title string
		run   func([]string) error
	}{
		{"figure 8 — synthesized matrices", cmdMatrices},
		{"table 1 — path / parallelism / overhead", cmdTable1},
		{"table 2 — set microbenchmark", cmdTable2},
		{"§5 model — scheme selection (preflow-push)", cmdModel},
		{"§4.1 — strengthening figure 2 to figure 3", cmdStrengthen},
		{"§5 future work — adaptive selection", cmdAdaptive},
	}
	for _, st := range steps {
		fmt.Printf("\n════ %s ════\n", st.title)
		if err := st.run(nil); err != nil {
			return fmt.Errorf("%s: %w", st.title, err)
		}
	}
	return nil
}
