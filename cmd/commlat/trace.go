package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/apps/cluster"
	"commlat/internal/apps/preflow"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
	"commlat/internal/workload"
)

// cmdTrace runs one application with the telemetry event trace enabled
// and writes the transaction timeline (Chrome trace_event JSON and/or
// JSONL) plus the per-method-pair conflict attribution table.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	app := fs.String("app", "boruvka", "boruvka | preflow | cluster")
	detector := fs.String("detector", "", "detector variant (boruvka: gk|generic|ml; preflow: rw|ex|part; cluster: gk|ml); default is the app's gatekept variant")
	threads := fs.Int("threads", 4, "worker goroutines")
	mesh := fs.Int("mesh", 16, "Boruvka mesh side")
	rmfa := fs.Int("rmfa", 6, "GENRMF frame side (preflow)")
	rmfb := fs.Int("rmfb", 6, "GENRMF frame count (preflow)")
	parts := fs.Int("parts", 32, "preflow partitions (detector=part)")
	points := fs.Int("points", 400, "clustering points")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("o", "trace.json", "Chrome trace_event output path (- for stdout)")
	jsonlPath := fs.String("jsonl", "", "also write the event trace as JSONL to this path")
	jsonMode := fs.Bool("json", false, "write JSONL events to stdout and the attribution table to stderr (skips the Chrome file unless -o is given explicitly)")
	sample := fs.Int("sample", 1, "keep every Nth transaction's events (conflict decisions are never sampled out)")
	buf := fs.Int("buf", 1<<14, "per-worker ring capacity in events (rounded up to a power of two)")
	prof := addProfileFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	explicitOut := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "o" {
			explicitOut = true
		}
	})

	telemetry.EnableTrace(*buf, *sample)
	defer telemetry.DisableTrace()

	opts := engine.Options{Workers: *threads, Seed: *seed}
	if err := prof.start(); err != nil {
		return err
	}
	summary, err := runTraced(*app, *detector, opts, traceSizes{
		mesh: *mesh, rmfa: *rmfa, rmfb: *rmfb, parts: *parts, points: *points, seed: *seed,
	})
	if perr := prof.stop(); err == nil {
		err = perr
	}
	if err != nil {
		return err
	}

	evs := telemetry.TraceEvents()
	snap := telemetry.Default.Snapshot()

	report := io.Writer(os.Stdout)
	if *jsonMode {
		report = os.Stderr
		if err := telemetry.Default.WriteJSONL(os.Stdout, evs); err != nil {
			return err
		}
	}
	if !*jsonMode || explicitOut {
		if err := writeChrome(*out, evs); err != nil {
			return err
		}
		fmt.Fprintf(report, "wrote %d events to %s (chrome://tracing, perfetto.dev)\n", len(evs), *out)
	}
	if *jsonlPath != "" {
		f, err := os.Create(*jsonlPath)
		if err != nil {
			return err
		}
		if err := telemetry.Default.WriteJSONL(f, evs); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(report, "wrote %d events to %s (JSONL)\n", len(evs), *jsonlPath)
	}
	if dropped := telemetry.TraceDropped(); dropped > 0 {
		fmt.Fprintf(report, "ring overwrote %d events; raise -buf to keep the full run\n", dropped)
	}
	fmt.Fprintln(report)
	fmt.Fprintln(report, summary)
	fmt.Fprintln(report)
	fmt.Fprint(report, telemetry.FormatAttribution(snap))
	return nil
}

type traceSizes struct {
	mesh, rmfa, rmfb, parts, points int
	seed                            int64
}

func fmtStats(st engine.Stats) string {
	return fmt.Sprintf("committed %d, aborts %d (%.2f%%), elapsed %v, busy %v",
		st.Committed, st.Aborts, st.AbortRatio()*100, st.Elapsed, st.Busy)
}

// runTraced builds the requested app/detector pair and runs it under the
// already-enabled trace, returning a one-line human summary.
func runTraced(app, detector string, opts engine.Options, sz traceSizes) (string, error) {
	switch app {
	case "boruvka":
		nodes, edges := workload.Mesh(sz.mesh, sz.mesh, sz.seed)
		var uf unionfind.Sets
		switch detector {
		case "", "gk":
			uf = unionfind.NewGK(nodes)
		case "generic":
			uf = unionfind.NewGeneric(nodes)
		case "ml":
			uf = unionfind.NewML(nodes)
		default:
			return "", fmt.Errorf("trace: unknown boruvka detector %q (gk|generic|ml)", detector)
		}
		res, err := boruvka.Run(uf, nodes, edges, opts)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("boruvka: mesh %dx%d, MST weight %.0f over %d edges; %s",
			sz.mesh, sz.mesh, res.Weight, res.Edges, fmtStats(res.Stats)), nil
	case "preflow":
		net := workload.GenRMF(sz.rmfa, sz.rmfb, 1, 1000, sz.seed)
		var g *flowgraph.Graph
		switch detector {
		case "", "rw":
			g = flowgraph.NewRW(net)
		case "ex":
			g = flowgraph.NewExclusive(net)
		case "part":
			g = flowgraph.NewPartitioned(net, sz.parts)
		default:
			return "", fmt.Errorf("trace: unknown preflow detector %q (rw|ex|part)", detector)
		}
		flow, stats, err := preflow.Run(g, opts)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("preflow: genrmf %dx%d, max flow %d; %s",
			sz.rmfa, sz.rmfb, flow, fmtStats(stats)), nil
	case "cluster":
		pts := workload.RandomPoints(sz.points, 1000, sz.seed)
		var idx kdtree.Index
		switch detector {
		case "", "gk":
			idx = kdtree.NewGK()
		case "ml":
			idx = kdtree.NewML()
		default:
			return "", fmt.Errorf("trace: unknown cluster detector %q (gk|ml)", detector)
		}
		_, res, err := cluster.Run(idx, pts, opts)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("cluster: %d points, %d merges; %s",
			sz.points, res.Merges, fmtStats(res.Stats)), nil
	default:
		return "", fmt.Errorf("trace: unknown app %q (boruvka|preflow|cluster)", app)
	}
}

func writeChrome(path string, evs []telemetry.Event) error {
	if path == "-" {
		return telemetry.Default.WriteChromeTrace(os.Stdout, evs)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.Default.WriteChromeTrace(f, evs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
