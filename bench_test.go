// Benchmarks regenerating the paper's tables and figures (§5), one bench
// family per artifact, plus detector micro-benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// Table1 rows correspond to BenchmarkTable1/*, Table 2 to
// BenchmarkTable2/*, and figures 10–12 to BenchmarkFig10/11/12 with
// sub-benchmarks per variant and thread count. cmd/commlat prints the
// same experiments in the paper's tabular format.
package commlat_test

import (
	"fmt"
	"testing"

	"commlat/internal/abslock"
	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/intset"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/apps/cluster"
	"commlat/internal/apps/preflow"
	"commlat/internal/bench"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

// --- Table 1: single-threaded guarded runs (the overhead column) ---------

func BenchmarkTable1PreflowSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := workload.GenRMF(6, 6, 1, 1000, 1)
		b.StartTimer()
		preflow.Sequential(net)
	}
}

func benchPreflow(b *testing.B, mk func() *flowgraph.Graph) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := mk()
		b.StartTimer()
		if _, _, err := preflow.Run(g, engine.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Preflow(b *testing.B) {
	mkNet := func() *flowgraph.Net { return workload.GenRMF(6, 6, 1, 1000, 1) }
	b.Run("part", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), 32) })
	})
	b.Run("ex", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) })
	})
	b.Run("ml", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) })
	})
}

func BenchmarkTable1BoruvkaSequential(b *testing.B) {
	nodes, edges := workload.Mesh(24, 24, 1)
	for i := 0; i < b.N; i++ {
		boruvka.Sequential(nodes, edges)
	}
}

func BenchmarkTable1Boruvka(b *testing.B) {
	nodes, edges := workload.Mesh(24, 24, 1)
	for _, v := range []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				uf := v.mk()
				b.StartTimer()
				if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1ClusteringSequential(b *testing.B) {
	pts := workload.RandomPoints(600, 1000, 1)
	for i := 0; i < b.N; i++ {
		cluster.Sequential(pts)
	}
}

func BenchmarkTable1Clustering(b *testing.B) {
	pts := workload.RandomPoints(600, 1000, 1)
	for _, v := range []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				idx := v.mk()
				b.StartTimer()
				if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: the set microbenchmark --------------------------------------

func BenchmarkTable2(b *testing.B) {
	const ops = 20000
	distinct := workload.SetOpsDistinct(ops, 1)
	repeats := workload.SetOpsClasses(ops, 10, 1)
	inputs := []struct {
		name string
		ops  []workload.SetOp
	}{{"distinct", distinct}, {"repeats", repeats}}
	schemes := []struct {
		name string
		mk   func() intset.Set
	}{
		{"global", func() intset.Set { return intset.NewGlobalLock(intset.NewHashRep()) }},
		{"exclusive", func() intset.Set { return intset.NewExclusiveLocked(intset.NewHashRep()) }},
		{"rw", func() intset.Set { return intset.NewRWLocked(intset.NewHashRep()) }},
		{"gatekeeper", func() intset.Set { return intset.NewGatekept(intset.NewHashRep()) }},
	}
	for _, in := range inputs {
		for _, sc := range schemes {
			b.Run(fmt.Sprintf("%s/%s", in.name, sc.name), func(b *testing.B) {
				var lastAborts float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := sc.mk()
					b.StartTimer()
					stats, _, err := bench.RunSetMicro(s, in.ops, 4)
					if err != nil {
						b.Fatal(err)
					}
					lastAborts = stats.AbortRatio()
				}
				b.ReportMetric(lastAborts*100, "abort%")
			})
		}
	}
}

// --- Figures 10–12: thread sweeps -----------------------------------------

func threadAxis() []int { return []int{1, 2, 4} }

func BenchmarkFig10(b *testing.B) {
	mkNet := func() *flowgraph.Net { return workload.GenRMF(6, 6, 1, 1000, 1) }
	variants := []struct {
		name string
		mk   func() *flowgraph.Graph
	}{
		{"ml", func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) }},
		{"ex", func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) }},
		{"part", func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), 32) }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := v.mk()
					b.StartTimer()
					if _, _, err := preflow.Run(g, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	pts := workload.RandomPoints(800, 1000, 1)
	variants := []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					idx := v.mk()
					b.StartTimer()
					if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	nodes, edges := workload.Mesh(32, 32, 1)
	variants := []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					uf := v.mk()
					b.StartTimer()
					if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- detector micro-benchmarks (ablation: raw cost per guarded op) -------

func BenchmarkDetectorAbslockRW(b *testing.B) {
	s := intset.NewRWLocked(intset.NewHashRep())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := s.Add(tx, int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorGlobalLock(b *testing.B) {
	s := intset.NewGlobalLock(intset.NewHashRep())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := s.Add(tx, int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorLiberalLock(b *testing.B) {
	// The footnote-6 guarded-mode scheme implementing figure 2 with locks.
	s := intset.NewLiberalLocked(intset.NewHashRep())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := s.Add(tx, int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorForwardGatekeeper(b *testing.B) {
	s := intset.NewGatekept(intset.NewHashRep())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := s.Add(tx, int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorGeneralGatekeeper(b *testing.B) {
	uf := unionfind.NewGK(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := uf.Union(tx, int64(i%(1<<15)), int64(i%(1<<15))+1); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorUnionFindGeneric(b *testing.B) {
	// Ablation: the spec-interpreting generic engine vs the hand-built
	// concrete gatekeeper above (same conditions, different machinery).
	uf := unionfind.NewGeneric(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := uf.Union(tx, int64(i%(1<<15)), int64(i%(1<<15))+1); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkDetectorUnionFindML(b *testing.B) {
	uf := unionfind.NewML(1 << 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tx := engine.NewTx()
		if _, err := uf.Union(tx, int64(i%(1<<15)), int64(i%(1<<15))+1); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
}

func BenchmarkSynthesize(b *testing.B) {
	spec := flowgraph.RWSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scheme, err := abslock.Synthesize(spec)
		if err != nil {
			b.Fatal(err)
		}
		scheme.Reduce()
	}
}

func BenchmarkCondEval(b *testing.B) {
	cond := intset.PreciseSpec().Cond("add", "contains")
	env := &core.PairEnv{
		Inv1: core.NewInvocation("add", []core.Value{int64(1)}, true),
		Inv2: core.NewInvocation("contains", []core.Value{int64(2)}, false),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Eval(cond, env); err != nil {
			b.Fatal(err)
		}
	}
}
