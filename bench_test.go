// Benchmarks regenerating the paper's tables and figures (§5), one bench
// family per artifact, plus detector micro-benchmarks. Run with
//
//	go test -bench=. -benchmem
//
// Table1 rows correspond to BenchmarkTable1/*, Table 2 to
// BenchmarkTable2/*, and figures 10–12 to BenchmarkFig10/11/12 with
// sub-benchmarks per variant and thread count. cmd/commlat prints the
// same experiments in the paper's tabular format.
package commlat_test

import (
	"fmt"
	"sync/atomic"
	"testing"

	"commlat/internal/abslock"
	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/intset"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/apps/cluster"
	"commlat/internal/apps/preflow"
	"commlat/internal/bench"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/workload"
)

// --- Table 1: single-threaded guarded runs (the overhead column) ---------

func BenchmarkTable1PreflowSequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		net := workload.GenRMF(6, 6, 1, 1000, 1)
		b.StartTimer()
		preflow.Sequential(net)
	}
}

func benchPreflow(b *testing.B, mk func() *flowgraph.Graph) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := mk()
		b.StartTimer()
		if _, _, err := preflow.Run(g, engine.Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Preflow(b *testing.B) {
	mkNet := func() *flowgraph.Net { return workload.GenRMF(6, 6, 1, 1000, 1) }
	b.Run("part", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), 32) })
	})
	b.Run("ex", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) })
	})
	b.Run("ml", func(b *testing.B) {
		benchPreflow(b, func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) })
	})
}

func BenchmarkTable1BoruvkaSequential(b *testing.B) {
	nodes, edges := workload.Mesh(24, 24, 1)
	for i := 0; i < b.N; i++ {
		boruvka.Sequential(nodes, edges)
	}
}

func BenchmarkTable1Boruvka(b *testing.B) {
	nodes, edges := workload.Mesh(24, 24, 1)
	for _, v := range []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				uf := v.mk()
				b.StartTimer()
				if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTable1ClusteringSequential(b *testing.B) {
	pts := workload.RandomPoints(600, 1000, 1)
	for i := 0; i < b.N; i++ {
		cluster.Sequential(pts)
	}
}

func BenchmarkTable1Clustering(b *testing.B) {
	pts := workload.RandomPoints(600, 1000, 1)
	for _, v := range []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
	} {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				idx := v.mk()
				b.StartTimer()
				if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Table 2: the set microbenchmark --------------------------------------

func BenchmarkTable2(b *testing.B) {
	const ops = 20000
	distinct := workload.SetOpsDistinct(ops, 1)
	repeats := workload.SetOpsClasses(ops, 10, 1)
	inputs := []struct {
		name string
		ops  []workload.SetOp
	}{{"distinct", distinct}, {"repeats", repeats}}
	schemes := []struct {
		name string
		mk   func() intset.Set
	}{
		{"global", func() intset.Set { return intset.NewGlobalLock(intset.NewHashRep()) }},
		{"exclusive", func() intset.Set { return intset.NewExclusiveLocked(intset.NewHashRep()) }},
		{"rw", func() intset.Set { return intset.NewRWLocked(intset.NewHashRep()) }},
		{"gatekeeper", func() intset.Set { return intset.NewGatekept(intset.NewHashRep()) }},
	}
	for _, in := range inputs {
		for _, sc := range schemes {
			b.Run(fmt.Sprintf("%s/%s", in.name, sc.name), func(b *testing.B) {
				var lastAborts float64
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := sc.mk()
					b.StartTimer()
					stats, _, err := bench.RunSetMicro(s, in.ops, 4)
					if err != nil {
						b.Fatal(err)
					}
					lastAborts = stats.AbortRatio()
				}
				b.ReportMetric(lastAborts*100, "abort%")
			})
		}
	}
}

// --- Figures 10–12: thread sweeps -----------------------------------------

func threadAxis() []int { return []int{1, 2, 4} }

func BenchmarkFig10(b *testing.B) {
	mkNet := func() *flowgraph.Net { return workload.GenRMF(6, 6, 1, 1000, 1) }
	variants := []struct {
		name string
		mk   func() *flowgraph.Graph
	}{
		{"ml", func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) }},
		{"ex", func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) }},
		{"part", func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), 32) }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					g := v.mk()
					b.StartTimer()
					if _, _, err := preflow.Run(g, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	pts := workload.RandomPoints(800, 1000, 1)
	variants := []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					idx := v.mk()
					b.StartTimer()
					if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	nodes, edges := workload.Mesh(32, 32, 1)
	variants := []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
	}
	for _, v := range variants {
		for _, th := range threadAxis() {
			b.Run(fmt.Sprintf("%s/threads=%d", v.name, th), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					uf := v.mk()
					b.StartTimer()
					if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: th}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- detector micro-benchmarks (ablation: raw cost per guarded op) -------
//
// Bodies live in internal/bench/micro.go, shared with `commlat bench
// -json` (which emits BENCH_detectors.json for the CI allocation gate).
// The wrappers pin the historical benchmark names.

func BenchmarkDetectorAbslockRW(b *testing.B)         { bench.DetectorAbslockRW(b) }
func BenchmarkDetectorGlobalLock(b *testing.B)        { bench.DetectorGlobalLock(b) }
func BenchmarkDetectorLiberalLock(b *testing.B)       { bench.DetectorLiberalLock(b) }
func BenchmarkDetectorForwardGatekeeper(b *testing.B) { bench.DetectorForwardGatekeeper(b) }
func BenchmarkDetectorCascadeGatekeeper(b *testing.B) { bench.DetectorCascadeGatekeeper(b) }
func BenchmarkDetectorGeneralGatekeeper(b *testing.B) { bench.DetectorGeneralGatekeeper(b) }
func BenchmarkDetectorUnionFindGeneric(b *testing.B)  { bench.DetectorUnionFindGeneric(b) }
func BenchmarkDetectorUnionFindML(b *testing.B)       { bench.DetectorUnionFindML(b) }

// Traced variants run with the telemetry event trace enabled
// (unsampled); the allocation gate holds them to 0 allocs/op too.
func BenchmarkDetectorForwardGatekeeperTraced(b *testing.B) {
	bench.DetectorForwardGatekeeperTraced(b)
}
func BenchmarkDetectorCascadeGatekeeperTraced(b *testing.B) {
	bench.DetectorCascadeGatekeeperTraced(b)
}
func BenchmarkDetectorGeneralGatekeeperTraced(b *testing.B) {
	bench.DetectorGeneralGatekeeperTraced(b)
}
func BenchmarkTelemetryEmit(b *testing.B) { bench.TelemetryEmit(b) }

// Batched admission: groups of adds share one representation lock
// acquisition, one combined-signature probe, and one group commit. The
// acceptance target is Batch32 at ≥2× BenchmarkDetectorCascadeGatekeeper.
func BenchmarkDetectorCascadeBatch8(b *testing.B)   { bench.DetectorCascadeBatch8(b) }
func BenchmarkDetectorCascadeBatch32(b *testing.B)  { bench.DetectorCascadeBatch32(b) }
func BenchmarkDetectorCascadeBatch128(b *testing.B) { bench.DetectorCascadeBatch128(b) }

// Sharded admission: 8 workers, each batching keys that route to its
// own shard, so every admission takes the contention-free single-shard
// path. The acceptance target is ≥1.5× the best batched-cascade row.
// The Cross row drives the two-key rendezvous path (every admission
// spans shards); its bar is graceful degradation versus the PairSerial
// plain-cascade baseline.
func BenchmarkDetectorCascadeSharded(b *testing.B)      { bench.DetectorCascadeSharded(b) }
func BenchmarkDetectorCascadeShardedCross(b *testing.B) { bench.DetectorCascadeShardedCross(b) }
func BenchmarkDetectorCascadePairSerial(b *testing.B)   { bench.DetectorCascadePairSerial(b) }

// BenchmarkCascadeSlowPath forces every op through all three cascade
// stages (filter hit → optimistic scan → precise check).
func BenchmarkCascadeSlowPath(b *testing.B) { bench.CascadeSlowPath(b) }

// BenchmarkForwardScanFallback isolates the forward gatekeeper's
// scan-fallback path (a pair condition the disequality index rejects).
func BenchmarkForwardScanFallback(b *testing.B) { bench.ForwardScanFallback(b) }

func BenchmarkSynthesize(b *testing.B) {
	spec := flowgraph.RWSpec()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		scheme, err := abslock.Synthesize(spec)
		if err != nil {
			b.Fatal(err)
		}
		scheme.Reduce()
	}
}

func BenchmarkCondEval(b *testing.B) { bench.CondEval(b) }

// --- Detector-runtime contention (§3.4 overhead under parallelism) ------
//
// The paper's detectors only pay off when their own runtime cost does not
// become the serial bottleneck (the o term of the §5 T·o/min(a,p)
// model). These two benches stress the hot paths of the two runtime
// detectors under parallel load with semantically disjoint operations —
// every conflict decision is "allow", so all measured cost is detector
// overhead. Run with -cpu 1,2,4 -benchmem to see scaling and allocation
// behaviour (EXPERIMENTS.md records before/after numbers).

// BenchmarkManagerContention exercises the abstract-lock manager's
// acquire/commit/release cycle: one write acquisition plus one read
// acquisition per iteration, on keys private to each worker.
func BenchmarkManagerContention(b *testing.B) {
	scheme, err := abslock.Synthesize(intset.RWSpec())
	if err != nil {
		b.Fatal(err)
	}
	mgr := abslock.NewManager(scheme.Reduce(), nil)
	var gid atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := gid.Add(1) << 32
		var i int64
		for pb.Next() {
			i++
			tx := engine.GetTx()
			k := base | (i & 1023)
			if err := mgr.PreAcquire(tx, "add", core.Args1(core.VInt(k))); err != nil {
				b.Error(err)
				tx.Abort()
				engine.PutTx(tx)
				continue
			}
			if err := mgr.PreAcquire(tx, "contains", core.Args1(core.VInt(k+(1<<20)))); err != nil {
				b.Error(err)
				tx.Abort()
				engine.PutTx(tx)
				continue
			}
			tx.Commit()
			engine.PutTx(tx)
		}
	})
}

func benchForwardHotPath(b *testing.B, activeMethod string, nActive int) {
	b.Helper()
	g, err := gatekeeper.NewForward(intset.PreciseSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	// A long-lived transaction keeps nActive invocations in the log, so
	// every benchmark invocation is checked against all of them ("checks")
	// or skips them via the trivially-true pair condition ("trivial").
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(1); i <= int64(nActive); i++ {
		if _, err := g.Invoke(holder, activeMethod, core.Args1(core.VInt(-i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(activeMethod == "add")}
		}); err != nil {
			b.Fatal(err)
		}
	}
	var gid atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		base := gid.Add(1) << 32
		var i int64
		for pb.Next() {
			i++
			tx := engine.GetTx()
			k := base | (i & 1023)
			if _, err := g.Invoke(tx, "contains", core.Args1(core.VInt(k)), func() gatekeeper.Effect {
				return gatekeeper.Effect{Ret: core.VBool(false)}
			}); err != nil {
				b.Error(err)
			}
			tx.Commit()
			engine.PutTx(tx)
		}
	})
}

// BenchmarkForwardHotPath exercises the forward gatekeeper's per-check
// path: "checks" evaluates a non-trivial condition against every active
// invocation, "trivial" measures the cost of skipping pairs whose
// condition is the constant true.
func BenchmarkForwardHotPath(b *testing.B) {
	b.Run("checks", func(b *testing.B) { benchForwardHotPath(b, "add", 8) })
	b.Run("trivial", func(b *testing.B) { benchForwardHotPath(b, "contains", 64) })
}

// --- Disequality-index window sweeps --------------------------------------
//
// A long-lived holder transaction keeps `window` adds on distinct keys
// active; each measured invocation adds yet another distinct key. With
// the disequality index every probe misses and the cost is flat in the
// window; with the index disabled (the seed behaviour) every active
// entry is scanned and checked, so cost grows linearly.

func BenchmarkForwardIndexed(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"indexed", false}, {"scan", true}} {
		for _, w := range []int{64, 512, 4096} {
			b.Run(fmt.Sprintf("%s/window=%d", mode.name, w), func(b *testing.B) {
				bench.ForwardWindow(b, mode.disable, w)
			})
		}
	}
}

// BenchmarkCascadeIndexed is ForwardIndexed's window sweep under the
// cascade: the incoming key's filter cell stays empty, so cost is flat
// in the window and no per-invocation lock is ever taken.
func BenchmarkCascadeIndexed(b *testing.B) {
	for _, w := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("window=%d", w), func(b *testing.B) {
			bench.CascadeWindow(b, w)
		})
	}
}

// BenchmarkCascadeBatch sweeps batch size against window size under the
// batched admission path (EXPERIMENTS.md throughput-vs-batch-size
// table): cost per op falls with batch and stays flat in the window.
func BenchmarkCascadeBatch(b *testing.B) {
	for _, n := range []int{8, 32, 128} {
		for _, w := range []int{64, 512, 4096} {
			b.Run(fmt.Sprintf("batch=%d/window=%d", n, w), func(b *testing.B) {
				bench.CascadeBatchWindow(b, n, w)
			})
		}
	}
}

func benchGeneralUFWindow(b *testing.B, window int) {
	b.Helper()
	uf := unionfind.NewGeneric(1 << 20)
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(0); i < int64(window); i++ {
		if _, err := uf.Find(holder, i); err != nil {
			b.Fatal(err)
		}
	}
	base := int64(1) << 16
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		a := base + int64(n%(1<<18))*2
		if _, err := uf.Union(tx, a, a+1); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

func BenchmarkGeneralIndexed(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"indexed", false}, {"scan", true}} {
		for _, w := range []int{64, 512, 4096} {
			b.Run(fmt.Sprintf("set/%s/window=%d", mode.name, w), func(b *testing.B) {
				bench.GeneralSetWindow(b, mode.disable, w)
			})
		}
	}
	for _, w := range []int{64, 256} {
		b.Run(fmt.Sprintf("unionfind-fallback/window=%d", w), func(b *testing.B) {
			benchGeneralUFWindow(b, w)
		})
	}
}
