package gatekeeper

import (
	"commlat/internal/core"
)

// This file implements the disequality-keyed active-set index shared by
// both gatekeepers. core.DecomposeDiseq proves, per ordered method
// pair, that the pair condition is implied whenever a set of
// disequality guards x ≠ y all hold; the gatekeeper then buckets active
// invocations by the canonical key (core.MapKey) of each guard's
// x-value, and an incoming invocation probes with its y-values. Only
// colliding entries — those that might falsify a guard — reach the full
// compiled checker, so on workloads over distinct keys the per-check
// cost is O(1) expected in the active-window size instead of linear.
// This realizes, for gatekeepers, the same hashing idea the paper's
// abstract locks use for SIMPLE conditions (§3.2).
//
// Buckets are recycled through a per-slot free list so steady-state
// insert/remove cycles over fresh keys allocate nothing: the map entry
// reuses a pooled bucket whose element slice keeps its capacity.

// keySlot is one distinct guard key term of a method: the bucket map
// from canonical key values to the active entries whose x-value hashed
// there, plus the entries whose x-value the index could not key
// (core.MapKey rejected it) and which therefore collide with every
// probe. E is the gatekeeper's entry type.
type keySlot[E comparable] struct {
	term    core.Term // the guard's x term, for dedup and diagnostics
	extract termFn    // compiled x evaluator, run at insert time
	index   map[core.Value]*bucket[E]
	unkeyed []E
	free    []*bucket[E] // recycled empty buckets
}

// bucket holds the active entries of one canonical key. The slice keeps
// its capacity across recycling, so a hot key churns with zero
// allocations after warm-up.
type bucket[E comparable] struct {
	es []E
}

func (s *keySlot[E]) getBucket() *bucket[E] {
	if n := len(s.free); n > 0 {
		b := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return b
	}
	return &bucket[E]{}
}

// insert buckets e under key k; insertUnkeyed records an entry whose
// key could not be canonicalized.
func (s *keySlot[E]) insert(k core.Value, e E) {
	b := s.index[k]
	if b == nil {
		b = s.getBucket()
		s.index[k] = b
	}
	b.es = append(b.es, e)
}

func (s *keySlot[E]) insertUnkeyed(e E) { s.unkeyed = append(s.unkeyed, e) }

// remove drops e from the slot. k must be the key insert was called
// with (entries remember their keys); the unset sentinel means e was
// recorded unkeyed.
func (s *keySlot[E]) remove(k core.Value, e E) {
	if k.IsUnset() {
		removeElem(&s.unkeyed, e)
		return
	}
	b := s.index[k]
	if b == nil {
		return
	}
	removeElem(&b.es, e)
	if len(b.es) == 0 {
		delete(s.index, k)
		b.es = b.es[:0]
		s.free = append(s.free, b)
	}
}

// probe returns the entries bucketed under k (nil when none).
func (s *keySlot[E]) probe(k core.Value) []E {
	if b := s.index[k]; b != nil {
		return b.es
	}
	return nil
}

func removeElem[E comparable](xs *[]E, e E) {
	s := *xs
	for i, x := range s {
		if x == e {
			var zero E
			s[i] = s[len(s)-1]
			s[len(s)-1] = zero
			*xs = s[:len(s)-1]
			return
		}
	}
}

// indexKey is one compiled guard of a pair plan: the first method's key
// slot to probe and the compiled evaluator of the guard's y term, run
// against the incoming (second) invocation.
type indexKey[E comparable] struct {
	slot  *keySlot[E]
	probe termFn
}

// compileIndex decomposes a pair condition into disequality guards and
// compiles them. bind resolves recorded first-side values exactly as
// for the pair checker (log slots for forward gatekeepers, nothing for
// general ones). When allowStatefulX is false, guards whose x term
// applies a non-pure state function are rejected — a gatekeeper without
// logs cannot reproduce the insert-time state later, and here cannot
// even capture it meaningfully at insert time relative to rollback
// evaluation. slotFor interns x terms into per-method key slots.
//
// Results: the compiled guards, whether the condition is purely their
// conjunction (collision ⟹ conflict), whether any probe needs the
// incoming invocation's return value (probe must wait until after
// execution), and whether the pair is indexable at all.
func compileIndex[E comparable](
	cond core.Cond,
	pure map[string]bool,
	bind map[string]slotBinding,
	res core.StateFn,
	allowStatefulX bool,
	slotFor func(x core.Term, extract termFn) *keySlot[E],
) (keys []indexKey[E], pureDiseq, probePost, ok bool) {
	dec := core.DecomposeDiseq(cond, pure)
	if !dec.Indexable {
		return nil, false, false, false
	}
	for _, gd := range dec.Guards {
		if !allowStatefulX && (containsNonPureFn(gd.X, core.First, pure) || containsNonPureFn(gd.X, core.Second, pure)) {
			return nil, false, false, false
		}
		if mentionsRet(gd.Y, core.Second) {
			probePost = true
		}
		keys = append(keys, indexKey[E]{
			slot:  slotFor(gd.X, compileTerm(gd.X, bind, res)),
			probe: compileTerm(gd.Y, bind, res),
		})
	}
	return keys, dec.Pure, probePost, true
}
