package gatekeeper

// This file implements the key-affinity sharded cascade: N independent
// Cascade instances behind a router that hash-partitions admissions by
// their conflict-key values.
//
// The cascade's conflict discovery is entirely key-directed: an incoming
// invocation can only collide with a live one if some disequality
// guard's two sides evaluate to equal values — and equal values hash
// equally, so both parties land in the same shard. Routing every
// publication and probe of an invocation to the shards its key hashes
// name therefore preserves the detector's verdict exactly, while
// invocations whose keys all fall in one shard touch only that shard's
// filter, slot table and chains.
//
// Each shard additionally carries a ticket (a pad-separated parking
// mutex) serializing admissions into it. Single-shard invocations take their
// home ticket alone; multi-shard invocations (several key hashes in
// different shards, or methods whose conflicts are not key-directed)
// rendezvous: they acquire every affected ticket in ascending shard
// order and publish their full key vector into each affected shard. The
// canonical order makes deadlock impossible — any cycle among ticket
// holders would need some holder acquiring a lower shard than one it
// already holds, which the ascending discipline forbids — and because
// admissions within a shard are ticket-serialized, the racing
// publish/probe window the single-cascade protocol defends against
// cannot even open between admissions of the same shard.
//
// Rendezvous publications are exactly-once in effect: only the lowest
// affected shard's record carries the invocation's undo closure (the
// others hold nil, which UndoTx skips), so an abort undoes the effect
// once no matter how many shards republished the keys. Spilled argument
// vectors are deep-copied for the ghost records, since each shard's
// release returns its record's spill to the pool independently.

import (
	"fmt"
	"runtime"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// maxRouteTerms bounds how many distinct key/probe terms the router
// evaluates per invocation; methods beyond it (or with scan plans, or
// context-dependent terms) always rendezvous over every shard.
const maxRouteTerms = 16

// maxShards caps the shard count; the mixer takes the shard index from
// the top byte region of the golden-ratio product.
const maxShards = 256

// shardRoute is the per-method routing plan: the simple terms whose
// value hashes decide the affected shard set.
type shardRoute struct {
	// keyed marks methods whose conflicts are entirely key-directed
	// (all publish keys and probe terms simple, no method-chain scan
	// plans): the affected shards are exactly the terms' hash shards.
	keyed bool
	// argOnly marks keyed methods routable before execution (no term
	// reads the return value) — the KeyOf / batch routing precondition.
	argOnly bool
	minArgs int
	// terms[:nPubs] are the published key terms in publication order;
	// the rest are probe terms not coinciding with a published key.
	terms []simpleTerm
	nPubs int
}

// shardTicket serializes admissions into one shard. A parking mutex,
// not a spin loop: single-shard admissions are uncontended by design,
// so the fast path is one CAS either way, while a rendezvous waiting on
// a busy shard parks instead of burning the preempted holder's quantum
// on oversubscribed schedulers. Padded so neighboring shards' tickets
// never share a cache line.
type shardTicket struct {
	mu sync.Mutex
	_  [56]byte
}

func (t *shardTicket) lock()   { t.mu.Lock() }
func (t *shardTicket) unlock() { t.mu.Unlock() }

// ShardedCascade routes cascade admissions to key-affine shards. Invoke
// and InvokeBatch are safe for concurrent use; verdicts are identical
// to a single Cascade over the same specification.
type ShardedCascade struct {
	shards  []*Cascade
	tickets []shardTicket
	mask    uint32
	mids    map[string]uint16
	routes  []shardRoute
	tele    *telemetry.Detector
}

// DefaultShards picks the shard count for NewSharded: the smallest
// power of two covering GOMAXPROCS, capped at maxShards.
func DefaultShards() int {
	n := 1
	for n < runtime.GOMAXPROCS(0) && n < maxShards {
		n <<= 1
	}
	return n
}

// NewSharded constructs a sharded cascade with default configuration;
// shards <= 0 means DefaultShards. The count rounds up to a power of
// two and is capped at 256.
func NewSharded(spec *core.Spec, res core.StateFn, shards int) (*ShardedCascade, error) {
	return NewShardedConfig(spec, res, CascadeConfig{}, shards)
}

// NewShardedConfig is NewSharded with explicit per-shard configuration.
func NewShardedConfig(spec *core.Spec, res core.StateFn, cfg CascadeConfig, shards int) (*ShardedCascade, error) {
	if shards <= 0 {
		shards = DefaultShards()
	}
	n := 1
	for n < shards && n < maxShards {
		n <<= 1
	}
	s := &ShardedCascade{
		shards:  make([]*Cascade, n),
		tickets: make([]shardTicket, n),
		mask:    uint32(n - 1),
	}
	for i := range s.shards {
		c, err := NewCascadeConfig(spec, res, cfg)
		if err != nil {
			return nil, err
		}
		c.tele.SetShard(i + 1)
		s.shards[i] = c
	}
	c0 := s.shards[0]
	s.mids = c0.mids
	s.routes = make([]shardRoute, len(c0.mtab))
	for mid := range c0.mtab {
		mt := &c0.mtab[mid]
		rt := &s.routes[mid]
		rt.minArgs = mt.minArgs
		if !mt.allSimple || len(mt.scanM1s) > 0 {
			continue // keyed=false: rendezvous over every shard
		}
		for i := range c0.pubs[mid] {
			rt.terms = append(rt.terms, c0.pubs[mid][i].simple)
		}
		rt.nPubs = len(rt.terms)
		for i := range mt.fastProbes {
			if mt.probeKey[i] >= 0 {
				continue // probe term coincides with a published key
			}
			rt.terms = append(rt.terms, mt.fastProbes[i].simple)
		}
		if len(rt.terms) > maxRouteTerms {
			rt.terms = nil
			rt.nPubs = 0
			continue
		}
		rt.keyed = true
		rt.argOnly = true
		for _, t := range rt.terms {
			if t.kind == stRet {
				rt.argOnly = false
				break
			}
		}
	}
	s.tele = telemetry.Register("cascade-sharded", spec.Sig.Name, c0.names)
	return s, nil
}

// shardOf maps a key hash to its owning shard. The filter cells and
// bucket chains inside each shard consume the hash's low bits, so the
// shard index comes from high bits of a golden-ratio mix — shard choice
// and cell choice stay independent even for sequential integer keys.
func (s *ShardedCascade) shardOf(h uint64) uint32 {
	return uint32((h*0x9E3779B97F4A7C15)>>48) & s.mask
}

// Shards reports the shard count.
func (s *ShardedCascade) Shards() int { return len(s.shards) }

// Shard exposes one underlying cascade (telemetry, stats).
func (s *ShardedCascade) Shard(i int) *Cascade { return s.shards[i] }

// Telemetry exposes the router's telemetry handle (local/crossing
// admission counters; per-shard counters live on each Shard(i)).
func (s *ShardedCascade) Telemetry() *telemetry.Detector { return s.tele }

// ActiveInvocations sums the live invocations across shards. A
// single-shard admission holds one record; a rendezvous admission holds
// one per affected shard.
func (s *ShardedCascade) ActiveInvocations() int {
	n := 0
	for _, c := range s.shards {
		n += c.ActiveInvocations()
	}
	return n
}

// KeyOf maps an invocation, before execution, to its owning shard. The
// second result is false when the invocation cannot be routed from its
// arguments alone: the method's routing needs the return value or a
// compiled evaluation, a key value is unhashable, or the key hashes
// straddle shards. Engine worklists use it to give batches shard
// affinity so InvokeBatch's single-shard fast path fires.
func (s *ShardedCascade) KeyOf(method string, args core.Vec) (int, bool) {
	mid, ok := s.mids[method]
	if !ok {
		return 0, false
	}
	return s.routeArgs(mid, &args)
}

// routeArgs is KeyOf after method lookup: single-shard pre-execution
// routing, usable only for argOnly methods.
func (s *ShardedCascade) routeArgs(mid uint16, args *core.Vec) (int, bool) {
	rt := &s.routes[mid]
	if !rt.keyed || !rt.argOnly || args.Len() < rt.minArgs {
		return 0, false
	}
	var ret core.Value // argOnly: never read
	sh := uint32(0)
	for i := range rt.terms {
		ev := rt.terms[i].eval(args, &ret)
		h, kok := ev.KeyHash()
		if !kok {
			return 0, false
		}
		t := s.shardOf(h)
		if i == 0 {
			sh = t
		} else if t != sh {
			return 0, false
		}
	}
	return int(sh), true
}

// Invoke runs one guarded invocation through the router: execute, hash
// the method's key terms, then admit in the single affected shard under
// its ticket — or rendezvous across the affected set. The verdict
// matches Cascade.Invoke over the same specification exactly.
func (s *ShardedCascade) Invoke(tx *engine.Tx, method string, args core.Vec, exec func() Effect) (core.Value, error) {
	mid, ok := s.mids[method]
	if !ok {
		return core.Value{}, fmt.Errorf("gatekeeper: cascade-sharded: unknown method %q", method)
	}
	eff := exec()
	rt := &s.routes[mid]
	if !rt.keyed || args.Len() < rt.minArgs {
		return s.rendezvous(tx, mid, args, eff, nil, nil)
	}
	var keys [maxCascadeKeys]uint64
	var set [maxRouteTerms]uint32
	nset := 0
	for i := range rt.terms {
		ev := rt.terms[i].eval(&args, &eff.Ret)
		h, kok := ev.KeyHash()
		if !kok {
			return s.rendezvous(tx, mid, args, eff, nil, nil)
		}
		if i < rt.nPubs {
			keys[i] = h
		}
		sh := s.shardOf(h)
		dup := false
		for k := 0; k < nset; k++ {
			if set[k] == sh {
				dup = true
				break
			}
		}
		if !dup {
			set[nset] = sh
			nset++
		}
	}
	if nset == 0 {
		// No key or probe terms at all: the method conflicts with
		// nothing key-directed; any single home shard is correct.
		set[0] = 0
		nset = 1
	}
	if nset == 1 {
		s.tele.ShardLocal()
		t := &s.tickets[set[0]]
		t.lock()
		ret, err := s.shards[set[0]].admitKeyed(tx, mid, args, eff, keys[:rt.nPubs])
		t.unlock()
		return ret, err
	}
	sortShardSet(set[:nset])
	return s.rendezvous(tx, mid, args, eff, set[:nset], keys[:rt.nPubs])
}

// sortShardSet sorts a small shard set ascending (insertion sort; the
// set is at most maxRouteTerms entries).
func sortShardSet(set []uint32) {
	for i := 1; i < len(set); i++ {
		v := set[i]
		j := i - 1
		for j >= 0 && set[j] > v {
			set[j+1] = set[j]
			j--
		}
		set[j+1] = v
	}
}

// rendezvous admits one invocation into every shard of set (nil means
// all shards), ticket-locked in ascending order. The lowest shard's
// record is the owner and carries the real undo; the others are ghosts
// republishing the same keys so probes anywhere still meet them. On
// refusal the effect is undone once and every publication retracted.
// keys, when non-nil, are the invocation's already-evaluated publish
// hashes (the router computed them for shard selection); each shard
// then admits through the keyed word path instead of re-extracting.
func (s *ShardedCascade) rendezvous(tx *engine.Tx, mid uint16, args core.Vec, eff Effect, set []uint32, keys []uint64) (core.Value, error) {
	s.tele.ShardCross()
	t0 := telemetry.LatClock()
	if set == nil {
		var all [maxShards]uint32
		for i := range s.shards {
			all[i] = uint32(i)
		}
		set = all[:len(s.shards)]
	}
	for _, sh := range set {
		s.tickets[sh].lock()
	}
	var words [maxShards]uint64
	n := 0
	var err error
	for _, sh := range set {
		e := Effect{Ret: eff.Ret}
		a := args
		if n == 0 {
			e.Undo = eff.Undo
		} else if args.Len() > core.MaxInlineArgs {
			// Ghost records release their spill independently at
			// teardown; they must not share the owner's backing array.
			var cp core.Vec
			for j := 0; j < args.Len(); j++ {
				cp.Append(args.At(j))
			}
			a = cp
		}
		var w uint64
		if keys != nil {
			w, err = s.shards[sh].admitKeyedWord(tx, mid, a, e, keys, n == 0)
		} else {
			w, err = s.shards[sh].admitWordNoAttach(tx, mid, a, e, n == 0)
		}
		if err != nil {
			// The refused shard already retracted its publication
			// (releasing the published copy's spill); nothing to free.
			break
		}
		words[n] = w
		n++
	}
	if err != nil {
		if eff.Undo != nil {
			eff.Undo()
		}
		for i := n - 1; i >= 0; i-- {
			s.shards[set[i]].retractWord(words[i])
		}
		for i := len(set) - 1; i >= 0; i-- {
			s.tickets[set[i]].unlock()
		}
		if obsInstrumented(t0) {
			obsRendezvous(tx, s.tele, mid, t0, shardMask(set), err)
		}
		return eff.Ret, err
	}
	for i, sh := range set {
		s.shards[sh].attach(tx, words[i])
	}
	for i := len(set) - 1; i >= 0; i-- {
		s.tickets[set[i]].unlock()
	}
	if obsInstrumented(t0) {
		obsRendezvous(tx, s.tele, mid, t0, shardMask(set), nil)
	}
	return eff.Ret, nil
}

// shardMask packs a shard set into the flight record's 64-bit bitmask
// (shard IDs mod 64).
func shardMask(set []uint32) uint64 {
	var m uint64
	for _, sh := range set {
		m |= 1 << (sh & 63)
	}
	return m
}

// InvokeBatch admits a batch through the router: ops are split into
// maximal runs routable to one shard, and each run delegates to that
// shard's batched admission under its ticket — batches arriving
// pre-sorted by shard affinity (see engine.NewWorklistAffinity) admit
// as one single-writer run. An op that cannot be routed from its
// arguments, or a run the shard admits short, bounds the admitted
// prefix; the caller re-runs the remainder serially through Invoke,
// exactly as with Cascade.InvokeBatch.
func (s *ShardedCascade) InvokeBatch(ops []BatchOp, exec func(run []BatchOp)) int {
	// Batches are near-always single-method; memoize the method lookup
	// so run scanning costs one map probe per method change, not per op.
	memoMethod := ""
	memoMid := uint16(0)
	memoOK := false
	route := func(op *BatchOp) (int, bool) {
		if op.Method != memoMethod {
			memoMid, memoOK = s.mids[op.Method]
			memoMethod = op.Method
		}
		if !memoOK {
			return 0, false
		}
		return s.routeArgs(memoMid, &op.Args)
	}
	done := 0
	for done < len(ops) {
		sh, ok := route(&ops[done])
		if !ok {
			break
		}
		j := done + 1
		for j < len(ops) {
			sh2, ok2 := route(&ops[j])
			if !ok2 || sh2 != sh {
				break
			}
			j++
		}
		s.tele.ShardLocalN(j - done)
		t := &s.tickets[uint32(sh)]
		t.lock()
		p := s.shards[sh].InvokeBatch(ops[done:j], exec)
		t.unlock()
		done += p
		if done < j {
			return done
		}
	}
	return done
}

// --- Cascade admission entry points for the router -----------------------

// admitKeyed is Invoke's simple-route tail with the key hashes already
// evaluated (the router needed them for shard selection). The caller
// holds the shard's ticket.
func (c *Cascade) admitKeyed(tx *engine.Tx, mid uint16, args core.Vec, eff Effect, keys []uint64) (core.Value, error) {
	c.tele.IncInvocation()
	t0 := telemetry.LatClock()
	mt := &c.mtab[mid]
	slot, slotOK := c.free.Pop()
	if !slotOK {
		return c.admitGeneral(tx, mid, args, eff)
	}
	c.publishSlot(slot, tx, mid, &args, eff.Ret, eff.Undo, keys)
	c.observeActive(c.nActive.Add(1))
	if c.ovCount.Load() == 0 && c.probeFast(mt, &args, eff.Ret, keys) {
		c.tele.CascadeFastAdmit()
		c.attach(tx, uint64(slot)+1)
		if obsInstrumented(t0) {
			c.obsFast(tx, mid, t0)
		}
		return eff.Ret, nil
	}
	c.tele.CascadeFilterHit()
	t1 := telemetry.StageObserve(tx.Worker(), telemetry.StageSigFilter, t0)
	sc := cascadeScratchPool.Get().(*cascadeScratch)
	inv := c.bindCtx(sc, mid, args, eff.Ret)
	err := c.slowCheck(tx, mid, inv, sc)
	if obsInstrumented(t1) {
		c.obsSlow(tx, mid, t0, t1, sc, err)
	}
	sc.reset()
	cascadeScratchPool.Put(sc)
	if err != nil {
		if eff.Undo != nil {
			eff.Undo()
		}
		c.retractSlot(slot)
		return eff.Ret, err
	}
	c.attach(tx, uint64(slot)+1)
	return eff.Ret, nil
}

// admitKeyedWord is the keyed rendezvous admission into one shard: the
// publish hashes are already evaluated (the router needed them for
// shard selection), so publication and the fast probe skip the scratch
// extraction entirely. Like admitWordNoAttach it neither attaches the
// record nor runs the undo on refusal; owner gates the invocation
// count. The caller holds the shard's ticket.
func (c *Cascade) admitKeyedWord(tx *engine.Tx, mid uint16, args core.Vec, eff Effect, keys []uint64, owner bool) (uint64, error) {
	if owner {
		c.tele.IncInvocation()
	}
	mt := &c.mtab[mid]
	slot, slotOK := c.free.Pop()
	if !slotOK {
		sc := cascadeScratchPool.Get().(*cascadeScratch)
		inv := c.bindCtx(sc, mid, args, eff.Ret)
		w, err := c.admitOverflowWord(tx, mid, inv, eff, sc)
		sc.reset()
		cascadeScratchPool.Put(sc)
		return w, err
	}
	c.publishSlot(slot, tx, mid, &args, eff.Ret, eff.Undo, keys)
	c.observeActive(c.nActive.Add(1))
	if c.ovCount.Load() == 0 && c.probeFast(mt, &args, eff.Ret, keys) {
		c.tele.CascadeFastAdmit()
		return uint64(slot) + 1, nil
	}
	c.tele.CascadeFilterHit()
	sc := cascadeScratchPool.Get().(*cascadeScratch)
	inv := c.bindCtx(sc, mid, args, eff.Ret)
	err := c.slowCheck(tx, mid, inv, sc)
	sc.reset()
	cascadeScratchPool.Put(sc)
	if err != nil {
		c.retractSlot(slot)
		return 0, err
	}
	return uint64(slot) + 1, nil
}

// admitWordNoAttach is the rendezvous admission into one shard: the
// scratch-backed route of admitGeneral, but it neither attaches the
// record to the transaction nor runs the undo on refusal — the router
// attaches all shards' words after every shard admits, and undoes the
// effect exactly once itself. A refused publication (including its
// argument spill) is retracted before returning. owner marks the one
// shard whose telemetry counts the invocation.
func (c *Cascade) admitWordNoAttach(tx *engine.Tx, mid uint16, args core.Vec, eff Effect, owner bool) (uint64, error) {
	if owner {
		c.tele.IncInvocation()
	}
	sc := cascadeScratchPool.Get().(*cascadeScratch)
	defer func() {
		sc.reset()
		cascadeScratchPool.Put(sc)
	}()
	inv := c.bindCtx(sc, mid, args, eff.Ret)

	sc.keys = sc.keys[:0]
	keyable := true
	for i := range c.pubs[mid] {
		v, err := c.pubs[mid][i].extract(&sc.ctx)
		if err != nil {
			keyable = false
			break
		}
		k, kok := core.MapKey(v)
		if !kok {
			keyable = false
			break
		}
		sc.keys = append(sc.keys, k.Hash())
	}

	var slot uint32
	slotOK := false
	if keyable {
		slot, slotOK = c.free.Pop()
	}
	if !slotOK {
		return c.admitOverflowWord(tx, mid, inv, eff, sc)
	}
	c.publishSlot(slot, tx, mid, &args, eff.Ret, eff.Undo, sc.keys)
	c.observeActive(c.nActive.Add(1))

	if c.ovCount.Load() == 0 && c.probeCtx(&c.mtab[mid], sc) {
		c.tele.CascadeFastAdmit()
		return uint64(slot) + 1, nil
	}
	c.tele.CascadeFilterHit()
	if err := c.slowCheck(tx, mid, inv, sc); err != nil {
		c.retractSlot(slot)
		return 0, err
	}
	return uint64(slot) + 1, nil
}

// admitOverflowWord is admitOverflow without the undo-on-refusal and
// the attach, for the rendezvous path.
func (c *Cascade) admitOverflowWord(tx *engine.Tx, mid uint16, inv core.Invocation, eff Effect, sc *cascadeScratch) (uint64, error) {
	c.tele.CascadeFallback()
	c.ovMu.Lock()
	var idx uint32
	if n := len(c.ovFree); n > 0 {
		idx = c.ovFree[n-1]
		c.ovFree = c.ovFree[:n-1]
	} else {
		c.ovs = append(c.ovs, ovRecord{})
		idx = uint32(len(c.ovs) - 1)
	}
	c.ovs[idx] = ovRecord{used: true, txid: tx.ID(), mid: mid, args: inv.Args, ret: inv.Ret, undo: eff.Undo}
	c.ovCount.Add(1)
	c.ovMu.Unlock()
	c.observeActive(c.nActive.Add(1))

	if err := c.slowCheck(tx, mid, inv, sc); err != nil {
		c.retractOverflow(idx)
		return 0, err
	}
	return ovTag | uint64(idx+1), nil
}

// retractWord withdraws one not-yet-attached admission word.
func (c *Cascade) retractWord(w uint64) {
	if w&ovTag == 0 {
		c.retractSlot(uint32(w - 1))
	} else {
		c.retractOverflow(uint32(w&^ovTag) - 1)
	}
}
