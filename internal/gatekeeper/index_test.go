package gatekeeper

import (
	"math"
	"math/rand"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// rwSetSpec is a purely-disequality set specification (the figure 3
// read/write regime): every non-trivial pair commutes iff the keys
// differ, with no residual over return values.
func rwSetSpec() *core.Spec {
	ne := core.Ne(core.Arg1(0), core.Arg2(0))
	s := core.NewSpec(setSig())
	s.Set("add", "add", ne)
	s.Set("add", "remove", ne)
	s.Set("add", "contains", ne)
	s.Set("remove", "remove", ne)
	s.Set("remove", "contains", ne)
	s.Set("contains", "contains", core.True())
	return s
}

func TestForwardIndexPlanShapes(t *testing.T) {
	s := newGSet(t)
	for _, tc := range []struct {
		m1, m2    string
		indexed   bool
		pureDiseq bool
	}{
		{"add", "add", true, false},      // Ne ∨ (r1=false ∧ r2=false): guarded residual
		{"add", "contains", true, false}, // Ne ∨ r1=false
		{"contains", "add", true, false}, // swapped: Ne ∨ r2=false
		{"remove", "remove", true, false},
	} {
		plan := s.g.pairs[[2]string{tc.m1, tc.m2}]
		if plan.indexed != tc.indexed || plan.pureDiseq != tc.pureDiseq {
			t.Errorf("(%s,%s): indexed=%v pureDiseq=%v, want %v/%v",
				tc.m1, tc.m2, plan.indexed, plan.pureDiseq, tc.indexed, tc.pureDiseq)
		}
	}
	if plan := s.g.pairs[[2]string{"contains", "contains"}]; !plan.trivial || plan.indexed {
		t.Errorf("contains~contains should be trivial and unindexed")
	}
	// One shared key slot per method: every guard is on argument 0.
	for _, m := range []string{"add", "remove", "contains"} {
		if n := len(s.g.slots[m]); n != 1 {
			t.Errorf("%s: %d key slots, want 1 (shared across pairs)", m, n)
		}
	}

	rw := newGSetCfg(t, rwSetSpec(), Config{})
	if plan := rw.g.pairs[[2]string{"add", "add"}]; !plan.indexed || !plan.pureDiseq {
		t.Errorf("rw add~add should be indexed and pureDiseq: %+v", plan)
	}

	off := newGSetCfg(t, preciseSetSpec(), Config{DisableIndex: true})
	if plan := off.g.pairs[[2]string{"add", "add"}]; plan.indexed {
		t.Errorf("DisableIndex must leave plans unindexed")
	}
}

func TestForwardIndexMaintenance(t *testing.T) {
	s := newGSet(t)
	tx := engine.NewTx()
	for _, x := range []int64{1, 2, 3} {
		if _, err := s.invoke(tx, "add", x); err != nil {
			t.Fatal(err)
		}
	}
	slot := s.g.slots["add"][0]
	if len(slot.index) != 3 || len(slot.unkeyed) != 0 {
		t.Fatalf("index holds %d keys / %d unkeyed, want 3/0", len(slot.index), len(slot.unkeyed))
	}
	tx.Commit()
	if len(slot.index) != 0 || len(slot.unkeyed) != 0 {
		t.Fatalf("index not emptied on release: %d keys / %d unkeyed", len(slot.index), len(slot.unkeyed))
	}
	if n := s.g.ActiveInvocations(); n != 0 {
		t.Fatalf("%d active after commit", n)
	}
}

func TestForwardIndexDistinctKeysSkipChecker(t *testing.T) {
	s := newGSet(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	for i := int64(0); i < 50; i++ {
		if _, err := s.invoke(tx1, "add", i); err != nil {
			t.Fatal(err)
		}
	}
	before := s.g.Stats()
	if _, err := s.invoke(tx2, "add", 1000); err != nil {
		t.Fatal(err)
	}
	after := s.g.Stats()
	if d := after.Checks - before.Checks; d != 0 {
		t.Errorf("distinct-key probe ran %d checks, want 0", d)
	}
	if after.Probes == before.Probes {
		t.Errorf("no probes recorded")
	}
	if d := after.FallbackScans - before.FallbackScans; d != 0 {
		t.Errorf("distinct-key probe fell back to %d scans, want 0", d)
	}
}

func TestForwardPureDiseqImmediateConflict(t *testing.T) {
	s := newGSetCfg(t, rwSetSpec(), Config{})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := s.invoke(tx1, "add", 5); err != nil {
		t.Fatal(err)
	}
	if _, err := s.invoke(tx2, "add", 5); !engine.IsConflict(err) {
		t.Fatalf("same-key adds must conflict under rw spec, got %v", err)
	}
	st := s.g.Stats()
	if st.Checks != 0 {
		t.Errorf("pure-disequality collision evaluated %d checkers, want 0", st.Checks)
	}
	if st.Collisions == 0 {
		t.Errorf("no collisions recorded")
	}
}

func TestForwardMixedIntFloatKeyCollision(t *testing.T) {
	// int64(5) and float64(5.0) are ValueEq-equal but not ==-equal: if
	// the index hashed them to different buckets the conflict below
	// would be missed (the map-canonicalization trap).
	for _, spec := range []*core.Spec{preciseSetSpec(), rwSetSpec()} {
		s := newGSetCfg(t, spec, Config{})
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		if _, err := s.invoke(tx1, "add", 5); err != nil { // mutating: ret true
			t.Fatal(err)
		}
		if _, err := s.invokeV(tx2, "add", 5, core.VFloat(5.0)); !engine.IsConflict(err) {
			t.Fatalf("add(5.0) must conflict with active add(5), got %v", err)
		}
		tx1.Abort()
		tx2.Abort()
	}
}

func TestForwardNaNKeysStayConservative(t *testing.T) {
	// ValueEq(NaN, NaN) is false, so Ne(NaN, NaN) holds and two NaN
	// adds commute under the rw spec. The index files all NaNs in one
	// bucket (over-approximating collision) but must not treat the
	// collision as an immediate conflict.
	s := newGSetCfg(t, rwSetSpec(), Config{})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := s.g.Invoke(tx1, "add", core.MakeVec(core.V(math.NaN())), func() Effect { return Effect{Ret: core.VBool(true)} }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.g.Invoke(tx2, "add", core.MakeVec(core.V(math.NaN())), func() Effect { return Effect{Ret: core.VBool(true)} }); err != nil {
		t.Fatalf("NaN adds commute (NaN != NaN): %v", err)
	}
	st := s.g.Stats()
	if st.Collisions == 0 {
		t.Errorf("NaN probe should collide conservatively")
	}
	if st.Checks == 0 {
		t.Errorf("NaN collision must run the checker, not conflict immediately")
	}
}

func TestForwardUnkeyableValuesFallBack(t *testing.T) {
	type pt struct{ x, y int64 }
	s := newGSetCfg(t, rwSetSpec(), Config{})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	exec := func() Effect { return Effect{Ret: core.VBool(true)} }
	if _, err := s.g.Invoke(tx1, "add", core.MakeVec(core.V(pt{1, 2})), exec); err != nil {
		t.Fatal(err)
	}
	// Distinct struct key: unkeyable probe falls back to the scan and
	// the checker admits it.
	if _, err := s.g.Invoke(tx2, "add", core.MakeVec(core.V(pt{3, 4})), exec); err != nil {
		t.Fatalf("distinct struct keys commute: %v", err)
	}
	// Equal struct key: the scan fallback must still catch the
	// conflict.
	if _, err := s.g.Invoke(tx2, "add", core.MakeVec(core.V(pt{1, 2})), exec); !engine.IsConflict(err) {
		t.Fatalf("equal struct keys must conflict, got %v", err)
	}
	if st := s.g.Stats(); st.FallbackScans == 0 {
		t.Errorf("unkeyable probes should count fallback scans")
	}
	// Huge integral floats are ValueEq-hazardous and must also take the
	// fallback, still reaching the right decision.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if _, err := s.g.Invoke(tx3, "add", core.MakeVec(core.V(float64(1<<53))), exec); err != nil {
		t.Fatalf("2^53 float vs struct keys commute: %v", err)
	}
}

func TestForwardDisableIndexEquivalence(t *testing.T) {
	on := newGSet(t)
	off := newGSetCfg(t, preciseSetSpec(), Config{DisableIndex: true})
	r := rand.New(rand.NewSource(7))
	methods := []string{"add", "remove", "contains"}
	const nTx = 3
	txOn, txOff := make([]*engine.Tx, nTx), make([]*engine.Tx, nTx)
	for i := range txOn {
		txOn[i], txOff[i] = engine.NewTx(), engine.NewTx()
	}
	for step := 0; step < 400; step++ {
		i := r.Intn(nTx)
		if r.Intn(12) == 0 {
			txOn[i].Commit()
			txOff[i].Commit()
			txOn[i], txOff[i] = engine.NewTx(), engine.NewTx()
			continue
		}
		m := methods[r.Intn(len(methods))]
		x := int64(r.Intn(6))
		retOn, errOn := on.invoke(txOn[i], m, x)
		retOff, errOff := off.invoke(txOff[i], m, x)
		if (errOn == nil) != (errOff == nil) || retOn != retOff {
			t.Fatalf("step %d %s(%d): indexed (%v,%v) vs scan (%v,%v)", step, m, x, retOn, errOn, retOff, errOff)
		}
	}
	for i := range txOn {
		txOn[i].Commit()
		txOff[i].Commit()
	}
	if on.key() != off.key() {
		t.Fatalf("final states diverge: %s vs %s", on.key(), off.key())
	}
}

// --- general gatekeeper ---------------------------------------------------

func TestGeneralIndexPlanShapes(t *testing.T) {
	u := newGUF(t, 4)
	// union~union and union~find guard on rep@s1(v2.*) — first-state
	// functions of second-invocation values admit no side split, so the
	// general gatekeeper keeps the scan for them.
	if plan := u.g.pairs[[2]string{"union", "union"}]; plan.indexed {
		t.Errorf("union~union must not be indexed")
	}
	if plan := u.g.pairs[[2]string{"union", "find"}]; plan.indexed {
		t.Errorf("union~find must not be indexed")
	}
	if plan := u.g.pairs[[2]string{"find", "find"}]; !plan.trivial {
		t.Errorf("find~find should be trivial")
	}

	// A value-only spec under the general gatekeeper indexes fully.
	g, err := NewGeneral(rwSetSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan := g.pairs[[2]string{"add", "add"}]; !plan.indexed || !plan.pureDiseq {
		t.Errorf("general add~add should be indexed pure: %+v", plan)
	}
}

// genSet guards the gset state machine with a General gatekeeper so the
// same interpreted oracle can cross-check its decisions.
type genSet struct {
	g     *General
	elems map[int64]bool
}

func newGenSet(t *testing.T, cfg Config) *genSet {
	t.Helper()
	s := &genSet{elems: map[int64]bool{}}
	g, err := NewGeneralConfig(preciseSetSpec(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.g = g
	return s
}

func (s *genSet) invokeV(tx *engine.Tx, method string, x int64, arg core.Value) (bool, error) {
	ret, err := s.g.Invoke(tx, method, core.MakeVec(core.V(arg)), func() GEffect {
		switch method {
		case "add":
			if s.elems[x] {
				return GEffect{Ret: core.VBool(false)}
			}
			s.elems[x] = true
			return GEffect{Ret: core.VBool(true), Undo: func() { delete(s.elems, x) }, Redo: func() { s.elems[x] = true }}
		case "remove":
			if !s.elems[x] {
				return GEffect{Ret: core.VBool(false)}
			}
			delete(s.elems, x)
			return GEffect{Ret: core.VBool(true), Undo: func() { s.elems[x] = true }, Redo: func() { delete(s.elems, x) }}
		default:
			return GEffect{Ret: core.VBool(s.elems[x])}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

func TestGeneralIndexedMatchesInterpretedOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newGenSet(t, Config{})
		o := &oracleGK{spec: preciseSetSpec(), elems: map[int64]bool{}}
		const nTx = 4
		txs := make([]*engine.Tx, nTx)
		for i := range txs {
			txs[i] = engine.NewTx()
		}
		methods := []string{"add", "remove", "contains"}
		for step := 0; step < 400; step++ {
			i := r.Intn(nTx)
			if r.Intn(15) == 0 {
				txs[i].Commit()
				o.commit(i)
				txs[i] = engine.NewTx()
				continue
			}
			method := methods[r.Intn(len(methods))]
			x := int64(r.Intn(8))
			arg := core.VInt(x)
			if r.Intn(3) == 0 {
				arg = core.VFloat(float64(x)) // ValueEq-equal, not ==-equal
			}
			wantRet, wantOK := o.step(t, i, method, x, arg)
			ret, err := s.invokeV(txs[i], method, x, arg)
			if gotOK := err == nil; gotOK != wantOK {
				t.Fatalf("seed %d step %d: %s(%v) by tx%d: general ok=%v oracle ok=%v (err=%v)",
					seed, step, method, arg, i, gotOK, wantOK, err)
			}
			if err == nil && ret != wantRet.Bool() {
				t.Fatalf("seed %d step %d: %s(%v) returned %v, oracle %v", seed, step, method, arg, ret, wantRet)
			}
		}
		for i := range txs {
			txs[i].Commit()
			o.commit(i)
		}
		for x := int64(0); x < 8; x++ {
			if s.elems[x] != o.elems[x] {
				t.Fatalf("seed %d: state divergence at %d", seed, x)
			}
		}
		if st := s.g.Stats(); st.Probes == 0 {
			t.Fatalf("seed %d: index never probed", seed)
		}
	}
}
