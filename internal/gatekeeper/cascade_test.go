package gatekeeper

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// cset is the cascade twin of gset: a tiny set guarded by the
// lattice-cascade detector. The representation map is protected by its
// own mutex because the cascade, unlike Forward, takes no detector-wide
// lock around the exec closure.
type cset struct {
	c     *Cascade
	mu    sync.Mutex
	elems map[int64]bool
}

func newCSet(t *testing.T, init ...int64) *cset {
	t.Helper()
	return newCSetCfg(t, CascadeConfig{}, init...)
}

func newCSetCfg(t *testing.T, cfg CascadeConfig, init ...int64) *cset {
	t.Helper()
	s := &cset{elems: map[int64]bool{}}
	for _, v := range init {
		s.elems[v] = true
	}
	c, err := NewCascadeConfig(preciseSetSpec(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.c = c
	return s
}

func (s *cset) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	return s.invokeV(tx, method, x, core.VInt(x))
}

func (s *cset) invokeV(tx *engine.Tx, method string, x int64, arg core.Value) (bool, error) {
	ret, err := s.c.Invoke(tx, method, core.MakeVec(core.V(arg)), func() Effect {
		s.mu.Lock()
		defer s.mu.Unlock()
		switch method {
		case "add":
			if s.elems[x] {
				return Effect{Ret: core.VBool(false)}
			}
			s.elems[x] = true
			return Effect{Ret: core.VBool(true), Undo: func() {
				s.mu.Lock()
				delete(s.elems, x)
				s.mu.Unlock()
			}}
		case "remove":
			if !s.elems[x] {
				return Effect{Ret: core.VBool(false)}
			}
			delete(s.elems, x)
			return Effect{Ret: core.VBool(true), Undo: func() {
				s.mu.Lock()
				s.elems[x] = true
				s.mu.Unlock()
			}}
		default:
			return Effect{Ret: core.VBool(s.elems[x])}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

func (s *cset) key() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ks []int64
	for k := range s.elems {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return fmt.Sprint(ks)
}

func TestCascadeRejectsNonPureSpec(t *testing.T) {
	sig := &core.ADTSig{Name: "uf", Methods: []core.MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	// rep is stateful and not declared pure: the cascade keeps no logs,
	// so it cannot evaluate rep against the first invocation's pre-state.
	s.Set("union", "find", core.Ne(core.Fn1("rep", core.Arg2(0)), core.Fn1("loser", core.Arg1(0), core.Arg1(1))))
	s.Set("union", "union", core.False())
	s.Set("find", "find", core.True())
	if _, err := NewCascade(s, nil); err == nil {
		t.Error("NewCascade must reject specs with non-pure state functions")
	}
}

// TestCascadeMatchesOracle mirrors TestForwardMatchesOracle: for every
// pair of invocations from two transactions the cascade must admit the
// second exactly when the interpreted pair condition holds — agreement
// with the forward gatekeeper is invocation-for-invocation.
func TestCascadeMatchesOracle(t *testing.T) {
	spec := preciseSetSpec()
	methods := []string{"add", "remove", "contains"}
	vals := []int64{1, 2}
	states := [][]int64{{}, {1}, {1, 2}, {2}}
	for _, st := range states {
		for _, m1 := range methods {
			for _, v1 := range vals {
				for _, m2 := range methods {
					for _, v2 := range vals {
						s := newCSet(t, st...)
						preKey := s.key()
						tx1, tx2 := engine.NewTx(), engine.NewTx()
						r1, err := s.invoke(tx1, m1, v1)
						if err != nil {
							t.Fatalf("first invocation conflicted on empty window: %v", err)
						}
						midKey := s.key()
						expR2 := oracleApply(st, m1, v1, m2, v2)
						env := &core.PairEnv{
							Inv1: core.NewInvocation(m1, []core.Value{core.V(v1)}, core.VBool(r1)),
							Inv2: core.NewInvocation(m2, []core.Value{core.V(v2)}, core.VBool(expR2)),
						}
						want, oerr := core.Eval(spec.Cond(m1, m2), env)
						if oerr != nil {
							t.Fatal(oerr)
						}
						r2, err := s.invoke(tx2, m2, v2)
						got := err == nil
						if got != want {
							t.Fatalf("state %v: %s(%d)/%v then %s(%d): cascade=%v oracle=%v",
								st, m1, v1, r1, m2, v2, got, want)
						}
						if got && r2 != expR2 {
							t.Fatalf("r2 = %v, oracle %v", r2, expR2)
						}
						if !got && s.key() != midKey {
							t.Fatalf("conflicting invocation left state dirty: %s vs %s", s.key(), midKey)
						}
						tx2.Abort()
						tx1.Abort()
						if s.key() != preKey {
							t.Fatalf("aborts did not restore initial state: %s vs %s", s.key(), preKey)
						}
						if n := s.c.ActiveInvocations(); n != 0 {
							t.Fatalf("window leaked %d invocations", n)
						}
					}
				}
			}
		}
	}
}

func TestCascadeSameTxNeverConflicts(t *testing.T) {
	s := newCSet(t)
	tx := engine.NewTx()
	defer tx.Abort()
	for i := 0; i < 5; i++ {
		if _, err := s.invoke(tx, "add", 3); err != nil {
			t.Fatalf("self-conflict on iteration %d: %v", i, err)
		}
		if _, err := s.invoke(tx, "remove", 3); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCascadeMutatingConflictAndUndo(t *testing.T) {
	s := newCSet(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx2.Abort()
	if r1, err := s.invoke(tx1, "add", 7); err != nil || r1 != true {
		t.Fatalf("add(7) = %v, %v", r1, err)
	}
	if _, err := s.invoke(tx2, "contains", 7); !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// The conflicting remove must be undone inside the detector.
	if _, err := s.invoke(tx2, "remove", 7); !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	if s.key() != "[7]" {
		t.Error("conflicting remove was not undone by the cascade")
	}
	if _, err := s.invoke(tx2, "add", 8); err != nil {
		t.Fatal(err)
	}
	tx1.Commit()
	if c, err := s.invoke(tx2, "contains", 7); err != nil || c != true {
		t.Fatalf("after commit contains(7) = %v, %v", c, err)
	}
}

func TestCascadeAbortRollsBack(t *testing.T) {
	s := newCSet(t, 1)
	before := s.key()
	tx := engine.NewTx()
	if _, err := s.invoke(tx, "add", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.invoke(tx, "remove", 1); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if s.key() != before {
		t.Errorf("abort did not restore state: %s vs %s", s.key(), before)
	}
	if n := s.c.ActiveInvocations(); n != 0 {
		t.Errorf("window leaked %d invocations", n)
	}
}

// TestCascadeOverflow exercises the mutex-guarded overflow list: with a
// one-slot table every additional live invocation spills, verdicts stay
// identical, and releases recycle both slots and overflow records.
func TestCascadeOverflow(t *testing.T) {
	s := newCSetCfg(t, CascadeConfig{SlotCapacity: 1})
	tx1, tx2, tx3 := engine.NewTx(), engine.NewTx(), engine.NewTx()
	if _, err := s.invoke(tx1, "add", 1); err != nil {
		t.Fatal(err)
	}
	// Disjoint key, but the table is full: this goes through overflow
	// and must still be admitted.
	if _, err := s.invoke(tx2, "add", 2); err != nil {
		t.Fatalf("disjoint add should commute through overflow: %v", err)
	}
	// A conflicting mutation must be caught whether its counterpart
	// lives in the slot table or the overflow list.
	if _, err := s.invoke(tx3, "remove", 1); !engine.IsConflict(err) {
		t.Fatalf("expected conflict against slot-resident add, got %v", err)
	}
	if _, err := s.invoke(tx3, "remove", 2); !engine.IsConflict(err) {
		t.Fatalf("expected conflict against overflow-resident add, got %v", err)
	}
	if st := s.c.Stats(); st.CascadeFallbacks == 0 {
		t.Error("overflow admissions not counted in CascadeFallbacks")
	}
	tx3.Abort()
	tx2.Commit()
	tx1.Commit()
	if n := s.c.ActiveInvocations(); n != 0 {
		t.Errorf("window leaked %d invocations", n)
	}
	if s.key() != "[1 2]" {
		t.Errorf("final state %s, want [1 2]", s.key())
	}
	// With the window drained the lock-free fast path must work again.
	tx := engine.NewTx()
	if _, err := s.invoke(tx, "add", 9); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
}

// TestCascadeUnkeyableArgs drives an argument core.MapKey cannot
// canonicalize (a huge integral float): the invocation must divert to
// the overflow list yet keep exact conflict verdicts.
func TestCascadeUnkeyableArgs(t *testing.T) {
	s := newCSet(t)
	huge := core.VFloat(1e300)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := s.invokeV(tx1, "add", 11, huge); err != nil {
		t.Fatal(err)
	}
	// Same unkeyable argument from another tx: both adds mutated
	// (distinct logical keys 11/12 in the rep, same spec argument), so
	// the condition is falsified.
	if _, err := s.invokeV(tx2, "add", 12, huge); !engine.IsConflict(err) {
		t.Fatalf("expected conflict on equal unkeyable args, got %v", err)
	}
	// A distinct keyable argument still commutes, even with the
	// overflow list non-empty.
	if _, err := s.invoke(tx2, "add", 13); err != nil {
		t.Fatalf("disjoint add should commute: %v", err)
	}
	tx2.Abort()
	tx1.Abort()
	if n := s.c.ActiveInvocations(); n != 0 {
		t.Errorf("window leaked %d invocations", n)
	}
}

// orderedSpec is a condition with no disequality decomposition
// (Lt(x1, x2)): every pair check must go through the method-chain scan
// path on both detectors.
func orderedSpec() *core.Spec {
	sig := &core.ADTSig{Name: "ordered", Methods: []core.MethodSig{
		{Name: "op", Params: []string{"x"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("op", "op", core.Lt(core.Arg1(0), core.Arg2(0)))
	return s
}

// TestCascadeScanSpecAgreesWithForward compares verdicts on the
// non-indexable ordered spec: cascade scan plans against Forward's
// fallback scans.
func TestCascadeScanSpecAgreesWithForward(t *testing.T) {
	for _, second := range []int64{3, 7} {
		fw, err := NewForward(orderedSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := NewCascade(orderedSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		verdict := func(inv func(tx *engine.Tx, x int64) error) (bool, bool) {
			tx1, tx2 := engine.NewTx(), engine.NewTx()
			defer tx1.Abort()
			defer tx2.Abort()
			if err := inv(tx1, 5); err != nil {
				t.Fatalf("first op conflicted: %v", err)
			}
			err := inv(tx2, second)
			if err != nil && !engine.IsConflict(err) {
				t.Fatalf("non-conflict error: %v", err)
			}
			return err == nil, true
		}
		fwOK, _ := verdict(func(tx *engine.Tx, x int64) error {
			_, err := fw.Invoke(tx, "op", core.Args1(core.VInt(x)), func() Effect {
				return Effect{Ret: core.VBool(true)}
			})
			return err
		})
		csOK, _ := verdict(func(tx *engine.Tx, x int64) error {
			_, err := cs.Invoke(tx, "op", core.Args1(core.VInt(x)), func() Effect {
				return Effect{Ret: core.VBool(true)}
			})
			return err
		})
		if fwOK != csOK {
			t.Errorf("op(5) then op(%d): forward=%v cascade=%v", second, fwOK, csOK)
		}
		if want := second > 5; csOK != want {
			t.Errorf("op(5) then op(%d): cascade=%v, want %v", second, csOK, want)
		}
		if n := cs.ActiveInvocations(); n != 0 {
			t.Errorf("window leaked %d invocations", n)
		}
	}
}

func TestCascadeStageCounters(t *testing.T) {
	s := newCSet(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	// Disjoint keys: both are stage-1 fast admissions.
	if _, err := s.invoke(tx1, "add", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.invoke(tx2, "add", 2); err != nil {
		t.Fatal(err)
	}
	// Colliding key: a filter hit, an optimistic scan, and a conflict.
	if _, err := s.invoke(tx2, "remove", 1); !engine.IsConflict(err) {
		t.Fatal("expected conflict")
	}
	st := s.c.Stats()
	if st.FastAdmits < 2 {
		t.Errorf("FastAdmits = %d, want ≥ 2", st.FastAdmits)
	}
	if st.FilterHits == 0 {
		t.Error("FilterHits = 0, want > 0")
	}
	if st.OptScans == 0 {
		t.Error("OptScans = 0, want > 0")
	}
	if st.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", st.Conflicts)
	}
	if st.Invocations != 3 {
		t.Errorf("Invocations = %d, want 3", st.Invocations)
	}
	tx2.Abort()
	tx1.Abort()
}

// TestCascadeConcurrentStress drives the cascade from many goroutines
// with aborts and commits; the race detector plus the final-state
// consistency check validate the lock-free admission protocol.
func TestCascadeConcurrentStress(t *testing.T) {
	s := newCSet(t)
	var mu sync.Mutex
	committedAdds := map[int64]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				tx := engine.NewTx()
				v := int64(r.Intn(40)) + 100*seed // mostly disjoint per worker
				if _, err := s.invoke(tx, "add", v); err != nil {
					tx.Abort()
					continue
				}
				if r.Intn(4) == 0 {
					tx.Abort()
					continue
				}
				mu.Lock()
				committedAdds[v]++
				mu.Unlock()
				tx.Commit()
			}
		}(int64(w))
	}
	wg.Wait()
	if n := s.c.ActiveInvocations(); n != 0 {
		t.Errorf("window leaked %d invocations", n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range committedAdds {
		if !s.elems[v] {
			t.Errorf("committed add(%d) missing from final state", v)
		}
	}
	for v := range s.elems {
		if committedAdds[v] == 0 {
			t.Errorf("element %d present but never committed", v)
		}
	}
}

// TestForwardScanFallback pins down the forward gatekeeper's full-scan
// fallback for unindexable pair conditions: verdicts stay exact and the
// FallbackScans counter attributes the work.
func TestForwardScanFallback(t *testing.T) {
	fw, err := NewForward(orderedSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	op := func(tx *engine.Tx, x int64) error {
		_, err := fw.Invoke(tx, "op", core.Args1(core.VInt(x)), func() Effect {
			return Effect{Ret: core.VBool(true)}
		})
		return err
	}
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := op(tx1, 5); err != nil {
		t.Fatal(err)
	}
	if err := op(tx2, 7); err != nil { // 5 < 7: commutes
		t.Fatalf("op(7) should commute: %v", err)
	}
	if err := op(tx2, 3); !engine.IsConflict(err) { // 5 < 3 fails
		t.Fatalf("op(3) should conflict, got %v", err)
	}
	st := fw.Stats()
	if st.FallbackScans < 2 {
		t.Errorf("FallbackScans = %d, want ≥ 2 (every ordered-spec check scans)", st.FallbackScans)
	}
	if st.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", st.Conflicts)
	}
}
