// Latency-attribution and flight-recorder hooks for the admission
// paths. Every helper here sits behind a double gate the callers check
// first — a 0 LatClock mark (latency off) and/or telemetry.FlightEnabled
// (flight off) — so the cost on an uninstrumented hot path is the one
// or two atomic loads of the gates themselves, and the instrumented
// paths stay allocation-free (records are stack-built, stage marks are
// atomic adds into fixed arrays).
package gatekeeper

import (
	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// obsFast records the stage-1 latency and flight record of a fast-path
// admission (signature filter only). Called only when t0 != 0 or the
// flight recorder is on.
func (c *Cascade) obsFast(tx *engine.Tx, mid uint16, t0 int64) {
	w := tx.Worker()
	t1 := telemetry.StageObserve(w, telemetry.StageSigFilter, t0)
	if telemetry.FlightEnabled() {
		rec := telemetry.FlightRecord{
			Tx: tx.ID(), Det: c.tele.ID(), Method: mid,
			Verdict: telemetry.FlightAdmitted,
		}
		rec.Mark(telemetry.StageSigFilter, t1-t0)
		telemetry.RecordFlight(w, &rec)
	}
}

// obsSlow records the stage latencies and flight record of a slow-path
// admission: t0→t1 is the signature-filter stage (already observed by
// the caller), t1→now less the precise time accumulated in sc is the
// optimistic-index stage (the precise checks themselves were observed
// one by one in runCheck). Called only when t1 != 0 or the flight
// recorder is on.
func (c *Cascade) obsSlow(tx *engine.Tx, mid uint16, t0, t1 int64, sc *cascadeScratch, err error) {
	w := tx.Worker()
	var optNS int64
	if t1 != 0 {
		optNS = telemetry.LatClock() - t1 - sc.preciseNS
		telemetry.StageRecord(w, telemetry.StageOptIndex, optNS)
	}
	if telemetry.FlightEnabled() {
		rec := telemetry.FlightRecord{
			Tx: tx.ID(), Det: c.tele.ID(), Method: mid,
			Verdict: telemetry.FlightAdmitted, Retries: sc.retries,
		}
		if err != nil {
			rec.Verdict = telemetry.FlightConflict
		}
		rec.Mark(telemetry.StageSigFilter, t1-t0)
		rec.Mark(telemetry.StageOptIndex, optNS)
		rec.Mark(telemetry.StagePrecise, sc.preciseNS)
		telemetry.RecordFlight(w, &rec)
	}
}

// obsInstrumented reports whether either recording layer is on for a
// mark taken with LatClock: the caller's t0 carries the latency gate,
// this adds the flight gate.
func obsInstrumented(t0 int64) bool {
	return t0 != 0 || telemetry.FlightEnabled()
}

// obsBatch records the publish/probe phase latencies and one group
// flight record for a batched admission of n members, of which grouped
// were admitted as a group. tpub and tprobe are the LatClock marks at
// the start of the publish and probe phases (0 = latency off); the
// probe phase ends here.
func (c *Cascade) obsBatch(tx *engine.Tx, mid uint16, n, grouped int, tpub, tprobe int64) {
	w := tx.Worker()
	var pubNS, probeNS int64
	if tpub != 0 {
		pubNS = tprobe - tpub
		probeNS = telemetry.LatClock() - tprobe
		telemetry.StageRecord(w, telemetry.StageBatchPublish, pubNS)
		telemetry.StageRecord(w, telemetry.StageBatchProbe, probeNS)
	}
	if telemetry.FlightEnabled() {
		verdict := telemetry.FlightBatchWhole
		switch {
		case grouped == 0:
			verdict = telemetry.FlightBatchSerial
		case grouped < n:
			verdict = telemetry.FlightBatchSplit
		}
		rec := telemetry.FlightRecord{
			Tx: tx.ID(), Det: c.tele.ID(), Method: mid,
			Verdict: verdict, N: uint16(n),
		}
		rec.Mark(telemetry.StageBatchPublish, pubNS)
		rec.Mark(telemetry.StageBatchProbe, probeNS)
		telemetry.RecordFlight(w, &rec)
	}
}

// obsInvoke records a forward/general gatekeeper admission. The whole
// mutex-held check-execute-log sequence is one precise evaluation, so
// it lands in the precise-check stage; the method ID is recovered from
// the (method, method) pair plan, which exists for every method.
func (g *Forward) obsInvoke(tx *engine.Tx, method string, t0 int64, err error) {
	w := tx.Worker()
	var d int64
	if t0 != 0 {
		d = telemetry.StageObserve(w, telemetry.StagePrecise, t0) - t0
	}
	if telemetry.FlightEnabled() {
		var mid uint16
		if p := g.pairs[[2]string{method, method}]; p != nil {
			mid = p.m2id
		}
		rec := telemetry.FlightRecord{
			Tx: tx.ID(), Det: g.tele.ID(), Method: mid,
			Verdict: telemetry.FlightAdmitted,
		}
		if err != nil {
			rec.Verdict = telemetry.FlightConflict
		}
		rec.Mark(telemetry.StagePrecise, d)
		telemetry.RecordFlight(w, &rec)
	}
}

// obsRendezvous records the rendezvous-stage latency and flight record
// of one cross-shard admission. t0 spans the whole rendezvous (ticket
// acquisition through verdict); shards is the bitmask of shard IDs
// (mod 64) the admission touched.
func obsRendezvous(tx *engine.Tx, det *telemetry.Detector, mid uint16, t0 int64, shards uint64, err error) {
	w := tx.Worker()
	var durNS int64
	if t0 != 0 {
		durNS = telemetry.StageObserve(w, telemetry.StageRendezvous, t0) - t0
	}
	if telemetry.FlightEnabled() {
		rec := telemetry.FlightRecord{
			Tx: tx.ID(), Det: det.ID(), Method: mid,
			Verdict: telemetry.FlightAdmitted, Shards: shards,
		}
		if err != nil {
			rec.Verdict = telemetry.FlightConflict
		}
		rec.Mark(telemetry.StageRendezvous, durNS)
		telemetry.RecordFlight(w, &rec)
	}
}
