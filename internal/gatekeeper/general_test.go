package gatekeeper

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// --- union-find fixture (the paper's general-gatekeeper example, §3.3.2) --
//
// A disjoint-set forest with union by *static priority*: each element's
// rank is its index, fixed forever, and loser(a, b) is the lower-priority
// representative. (With classic tie-bumping union-by-rank, figure 5's
// conditions are not valid: a rank tie makes the loser decision depend on
// execution order in a way find can observe — our brute-force checker
// finds the counterexample. Static unique priorities make rep and loser
// pure functions of the partition, which is the reading under which the
// paper's conditions are precise. See DESIGN.md.) The fixture omits path
// compression (the full ADT in internal/adt/unionfind has it); here we
// exercise the generic rollback machinery of the General engine against
// figure 5's conditions, whose rep(s1, c) term — a function of the FIRST
// state over the SECOND invocation's argument — is not ONLINE-CHECKABLE.

func ufSig() *core.ADTSig {
	return &core.ADTSig{Name: "unionfind", Methods: []core.MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
	}}
}

func ufSpec() *core.Spec {
	loser := core.Fn1("loser", core.Arg1(0), core.Arg1(1))
	s := core.NewSpec(ufSig())
	// (1) unions commute when the second union touches neither rep of the
	// first union's loser.
	s.Set("union", "union", core.And(
		core.Ne(core.Fn1("rep", core.Arg2(0)), loser),
		core.Ne(core.Fn1("rep", core.Arg2(1)), loser),
	))
	// (2) union ~ find: the find must not (have) return(ed) the loser.
	s.Set("union", "find", core.Ne(core.Fn1("rep", core.Arg2(0)), loser))
	// (4) finds commute.
	s.Set("find", "find", core.True())
	return s
}

type guf struct {
	g      *General
	parent []int64
}

func newGUF(t *testing.T, n int) *guf {
	t.Helper()
	u := &guf{parent: make([]int64, n)}
	for i := range u.parent {
		u.parent[i] = int64(i)
	}
	g, err := NewGeneral(ufSpec(), func(fn string, args []core.Value) (core.Value, error) {
		switch fn {
		case "rep":
			return core.VInt(u.rep(args[0].Int())), nil
		case "loser":
			return core.VInt(u.loser(args[0].Int(), args[1].Int())), nil
		default:
			return core.Value{}, fmt.Errorf("unknown fn %s", fn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	u.g = g
	return u
}

func (u *guf) rep(x int64) int64 {
	for u.parent[x] != x {
		x = u.parent[x]
	}
	return x
}

// loser follows the paper's definition with static priorities: the
// lower-priority representative loses (priorities are unique, so there
// are no ties).
func (u *guf) loser(a, b int64) int64 {
	ra, rb := u.rep(a), u.rep(b)
	if ra < rb {
		return ra
	}
	return rb
}

func (u *guf) union(tx *engine.Tx, a, b int64) error {
	_, err := u.g.Invoke(tx, "union", core.MakeVec(core.V(a), core.V(b)), func() GEffect {
		ra, rb := u.rep(a), u.rep(b)
		if ra == rb {
			return GEffect{}
		}
		l := u.loser(a, b)
		w := ra + rb - l
		u.parent[l] = w
		return GEffect{
			Undo: func() { u.parent[l] = l },
			Redo: func() { u.parent[l] = w },
		}
	})
	return err
}

func (u *guf) find(tx *engine.Tx, a int64) (int64, error) {
	ret, err := u.g.Invoke(tx, "find", core.MakeVec(core.V(a)), func() GEffect {
		return GEffect{Ret: core.VInt(u.rep(a))}
	})
	if err != nil {
		return 0, err
	}
	return ret.Int(), nil
}

// ufModel adapts the fixture to core.Model for brute-force validation of
// the figure-5 conditions (in both orientations, catching swap-invalid
// specs).
type ufModel struct {
	parent []int64
}

func newUFModel(n int) *ufModel {
	m := &ufModel{parent: make([]int64, n)}
	for i := range m.parent {
		m.parent[i] = int64(i)
	}
	return m
}

func (m *ufModel) Clone() core.Model {
	return &ufModel{parent: append([]int64(nil), m.parent...)}
}

func (m *ufModel) rep(x int64) int64 {
	for m.parent[x] != x {
		x = m.parent[x]
	}
	return x
}

func (m *ufModel) Apply(method string, args []core.Value) (core.Value, error) {
	switch method {
	case "find":
		return core.VInt(m.rep(args[0].Int())), nil
	case "union":
		a, b := args[0].Int(), args[1].Int()
		ra, rb := m.rep(a), m.rep(b)
		if ra == rb {
			return core.Value{}, nil
		}
		l, w := ra, rb
		if rb < ra {
			l, w = rb, ra
		}
		m.parent[l] = w
		return core.Value{}, nil
	default:
		return core.Value{}, fmt.Errorf("unknown method %s", method)
	}
}

// StateKey encodes the ABSTRACT state: the partition into disjoint sets.
// Representatives are a pure function of the partition (the max-priority
// member), so they are covered too.
func (m *ufModel) StateKey() string {
	s := ""
	for i := range m.parent {
		s += fmt.Sprintf("%d:%d;", i, m.rep(int64(i)))
	}
	return s
}

func (m *ufModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	switch fn {
	case "rep":
		return core.VInt(m.rep(args[0].Int())), nil
	case "loser":
		a, b := args[0].Int(), args[1].Int()
		ra, rb := m.rep(a), m.rep(b)
		if ra < rb {
			return core.VInt(ra), nil
		}
		return core.VInt(rb), nil
	default:
		return core.Value{}, fmt.Errorf("unknown fn %s", fn)
	}
}

// --------------------------------------------------------------------------

func TestGeneralAcceptsGeneralSpecForwardRejects(t *testing.T) {
	if _, err := NewGeneral(ufSpec(), nil); err != nil {
		t.Fatalf("general gatekeeper must accept the union-find spec: %v", err)
	}
	if _, err := NewForward(ufSpec(), nil); err == nil {
		t.Error("forward gatekeeper should refuse the union-find spec")
	}
}

// TestUFSpecSoundByBruteForce validates figure 5's conditions against the
// executable model per Definition 1, exercising both orientations of
// each pair (this is what certifies that SwapSides-derived conditions are
// valid too).
func TestUFSpecSoundByBruteForce(t *testing.T) {
	spec := ufSpec()
	var states []core.Model
	base := newUFModel(4)
	states = append(states, base.Clone())
	s1 := base.Clone().(*ufModel)
	if _, err := s1.Apply("union", []core.Value{core.V(int64(0)), core.V(int64(1))}); err != nil {
		t.Fatal(err)
	}
	states = append(states, s1.Clone())
	s2 := s1.Clone().(*ufModel)
	if _, err := s2.Apply("union", []core.Value{core.V(int64(2)), core.V(int64(3))}); err != nil {
		t.Fatal(err)
	}
	states = append(states, s2.Clone())
	s3 := s2.Clone().(*ufModel)
	if _, err := s3.Apply("union", []core.Value{core.V(int64(0)), core.V(int64(2))}); err != nil {
		t.Fatal(err)
	}
	states = append(states, s3)

	var calls []core.Call
	for a := int64(0); a < 4; a++ {
		calls = append(calls, core.Call{Method: "find", Args: []core.Value{core.V(a)}})
		for b := int64(0); b < 4; b++ {
			if a != b {
				calls = append(calls, core.Call{Method: "union", Args: []core.Value{core.V(a), core.V(b)}})
			}
		}
	}
	bad, err := core.CheckCondSound(spec, states, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestGeneralUnionFindScenario(t *testing.T) {
	u := newGUF(t, 6)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()

	// tx1 merges {1,2}: priority 1 < 2, so rep 1 loses.
	if err := u.union(tx1, 1, 2); err != nil {
		t.Fatal(err)
	}
	// tx2's find(3): rep(s1,3)=3 ≠ loser 1 → commutes. The rollback to
	// evaluate rep in s1 must restore the union afterwards.
	if r, err := u.find(tx2, 3); err != nil || r != 3 {
		t.Fatalf("find(3) = %v, %v", r, err)
	}
	if u.rep(1) != 2 {
		t.Errorf("rollback evaluation lost tx1's union: rep(1) = %d", u.rep(1))
	}
	// tx2's find(1): rep(s1,1)=1 == loser → conflict (it would observe
	// the merge).
	if _, err := u.find(tx2, 1); !engine.IsConflict(err) {
		t.Fatalf("find(1) should conflict, got %v", err)
	}
	// tx2's find(2): rep(s1,2)=2 ≠ loser 1 → commutes (2 is the winner;
	// find(2) returns 2 in both orders).
	if r, err := u.find(tx2, 2); err != nil || r != 2 {
		t.Fatalf("find(2) = %v, %v", r, err)
	}

	// tx2's union(4,5) touches neither rep → commutes.
	if err := u.union(tx2, 4, 5); err != nil {
		t.Fatal(err)
	}
	// tx2's union(1,3): rep(s1,1)=1 == tx1's loser → conflict, and the
	// merge must be rolled back.
	if err := u.union(tx2, 1, 3); !engine.IsConflict(err) {
		t.Fatalf("union(1,3) should conflict, got %v", err)
	}
	if u.rep(3) != 3 || u.rep(1) != 2 {
		t.Errorf("conflicting union(1,3) not undone: rep(3)=%d rep(1)=%d", u.rep(3), u.rep(1))
	}
}

func TestGeneralAbortRestoresForest(t *testing.T) {
	u := newGUF(t, 5)
	tx := engine.NewTx()
	if err := u.union(tx, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := u.union(tx, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := u.union(tx, 0, 2); err != nil {
		t.Fatal(err)
	}
	if u.g.JournalLen() != 3 {
		t.Errorf("journal = %d, want 3", u.g.JournalLen())
	}
	tx.Abort()
	for i := int64(0); i < 5; i++ {
		if u.rep(i) != i {
			t.Errorf("abort did not restore element %d: rep=%d", i, u.rep(i))
		}
	}
	if u.g.JournalLen() != 0 || u.g.ActiveInvocations() != 0 {
		t.Errorf("state leaked: journal=%d active=%d", u.g.JournalLen(), u.g.ActiveInvocations())
	}
}

func TestGeneralCommitKeepsEffects(t *testing.T) {
	u := newGUF(t, 4)
	tx := engine.NewTx()
	if err := u.union(tx, 0, 1); err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	if u.rep(1) != u.rep(0) {
		t.Error("commit lost the union")
	}
	if u.g.JournalLen() != 0 {
		t.Errorf("journal should drain on commit: %d", u.g.JournalLen())
	}
}

func TestGeneralRollbackDepths(t *testing.T) {
	// Two active unions at different journal depths; a find that must be
	// checked against both, each at its own rollback point.
	u := newGUF(t, 8)
	tx1, tx2, tx3 := engine.NewTx(), engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	defer tx3.Abort()
	if err := u.union(tx1, 0, 1); err != nil { // loser 0
		t.Fatal(err)
	}
	if err := u.union(tx2, 2, 3); err != nil { // loser 2
		t.Fatal(err)
	}
	// find(5): clean of both losers → commutes with both.
	if r, err := u.find(tx3, 5); err != nil || r != 5 {
		t.Fatalf("find(5) = %v, %v", r, err)
	}
	// State intact after the two-depth rollback.
	if u.rep(0) != 1 || u.rep(2) != 3 {
		t.Errorf("state corrupted: rep(0)=%d rep(2)=%d", u.rep(0), u.rep(2))
	}
	// find(2): conflicts with tx2's union (loser 2).
	if _, err := u.find(tx3, 2); !engine.IsConflict(err) {
		t.Fatalf("find(2) should conflict, got %v", err)
	}
	// find(0): conflicts with tx1's union (loser 0).
	if _, err := u.find(tx3, 0); !engine.IsConflict(err) {
		t.Fatalf("find(0) should conflict, got %v", err)
	}
}

// TestGeneralMatchesOracle compares the gatekeeper's allow/deny decision
// with the interpreted condition over true pre-states for every pair of
// invocations from two transactions.
func TestGeneralMatchesOracle(t *testing.T) {
	const n = 4
	var calls []core.Call
	for a := int64(0); a < n; a++ {
		calls = append(calls, core.Call{Method: "find", Args: []core.Value{core.V(a)}})
		for b := int64(0); b < n; b++ {
			if a != b {
				calls = append(calls, core.Call{Method: "union", Args: []core.Value{core.V(a), core.V(b)}})
			}
		}
	}
	spec := ufSpec()
	seeds := [][][2]int64{{}, {{0, 1}}, {{0, 1}, {2, 3}}}
	for _, seed := range seeds {
		for _, c1 := range calls {
			for _, c2 := range calls {
				// Oracle on the model.
				m0 := newUFModel(n)
				for _, uv := range seed {
					if _, err := m0.Apply("union", []core.Value{core.V(uv[0]), core.V(uv[1])}); err != nil {
						t.Fatal(err)
					}
				}
				pre1 := m0.Clone()
				m := m0.Clone()
				r1, err := m.Apply(c1.Method, c1.Args)
				if err != nil {
					t.Fatal(err)
				}
				pre2 := m.Clone()
				r2, err := m.Apply(c2.Method, c2.Args)
				if err != nil {
					t.Fatal(err)
				}
				env := &core.PairEnv{
					Inv1: core.NewInvocation(c1.Method, c1.Args, r1),
					Inv2: core.NewInvocation(c2.Method, c2.Args, r2),
					S1:   pre1.StateFn,
					S2:   pre2.StateFn,
				}
				want, err := core.Eval(spec.Cond(c1.Method, c2.Method), env)
				if err != nil {
					t.Fatal(err)
				}

				// Gatekeeper.
				u := newGUF(t, n)
				setup := engine.NewTx()
				for _, uv := range seed {
					if err := u.union(setup, uv[0], uv[1]); err != nil {
						t.Fatal(err)
					}
				}
				setup.Commit()
				tx1, tx2 := engine.NewTx(), engine.NewTx()
				invoke := func(tx *engine.Tx, c core.Call) error {
					if c.Method == "find" {
						_, err := u.find(tx, c.Args[0].Int())
						return err
					}
					return u.union(tx, c.Args[0].Int(), c.Args[1].Int())
				}
				if err := invoke(tx1, c1); err != nil {
					t.Fatalf("first invocation conflicted: %v", err)
				}
				err = invoke(tx2, c2)
				got := err == nil
				if err != nil && !engine.IsConflict(err) {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("seed %v: %s%v then %s%v: gatekeeper=%v oracle=%v",
						seed, c1.Method, c1.Args, c2.Method, c2.Args, got, want)
				}
				tx2.Abort()
				tx1.Abort()
			}
		}
	}
}

func TestGeneralConcurrentStress(t *testing.T) {
	const n = 64
	u := newGUF(t, n)
	var mu sync.Mutex
	type edge struct{ a, b int64 }
	var committed []edge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				tx := engine.NewTx()
				a, b := int64(r.Intn(n)), int64(r.Intn(n))
				if a == b {
					tx.Abort()
					continue
				}
				if err := u.union(tx, a, b); err != nil {
					tx.Abort()
					continue
				}
				if r.Intn(6) == 0 {
					tx.Abort()
					continue
				}
				mu.Lock()
				committed = append(committed, edge{a, b})
				mu.Unlock()
				tx.Commit()
			}
		}(int64(w))
	}
	wg.Wait()
	if u.g.JournalLen() != 0 || u.g.ActiveInvocations() != 0 {
		t.Fatalf("leaked: journal=%d active=%d", u.g.JournalLen(), u.g.ActiveInvocations())
	}
	// The final partition must equal the one produced by the committed
	// unions (in any order — unions are confluent on the partition).
	ref := newUFModel(n)
	for _, e := range committed {
		if _, err := ref.Apply("union", []core.Value{core.V(e.a), core.V(e.b)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			same := u.rep(i) == u.rep(j)
			refSame := ref.rep(i) == ref.rep(j)
			if same != refSame {
				t.Fatalf("partition mismatch at (%d,%d): got %v want %v", i, j, same, refSame)
			}
		}
	}
}

func TestGeneralPanicsWithoutRedo(t *testing.T) {
	u := newGUF(t, 2)
	tx := engine.NewTx()
	defer tx.Abort()
	defer func() {
		if recover() == nil {
			t.Error("Undo without Redo should panic")
		}
	}()
	_, _ = u.g.Invoke(tx, "union", core.MakeVec(core.V(int64(0)), core.V(int64(1))), func() GEffect {
		return GEffect{Undo: func() {}}
	})
}

func TestGeneralStatsCounters(t *testing.T) {
	u := newGUF(t, 6)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := u.union(tx1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := u.find(tx2, 3); err != nil { // needs a rollback sweep
		t.Fatal(err)
	}
	if _, err := u.find(tx2, 1); !engine.IsConflict(err) {
		t.Fatal("expected conflict")
	}
	st := u.g.Stats()
	if st.Invocations != 3 {
		t.Errorf("Invocations = %d, want 3", st.Invocations)
	}
	if st.Rollbacks < 2 {
		t.Errorf("Rollbacks = %d, want ≥ 2 (one per checked find)", st.Rollbacks)
	}
	if st.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", st.Conflicts)
	}
}
