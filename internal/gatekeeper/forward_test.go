package gatekeeper

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// --- set fixture: the precise specification of figure 2 ------------------

func setSig() *core.ADTSig {
	return &core.ADTSig{Name: "set", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"x"}, HasRet: true},
		{Name: "remove", Params: []string{"x"}, HasRet: true},
		{Name: "contains", Params: []string{"x"}, HasRet: true},
	}}
}

func preciseSetSpec() *core.Spec {
	neOrBothFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	neOrR1False := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)), core.Eq(core.Ret1(), core.Lit(false)))
	s := core.NewSpec(setSig())
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("add", "contains", neOrR1False)
	s.Set("remove", "remove", neOrBothFalse)
	s.Set("remove", "contains", neOrR1False)
	s.Set("contains", "contains", core.True())
	return s
}

// gset is a tiny set guarded by a forward gatekeeper.
type gset struct {
	g     *Forward
	elems map[int64]bool
}

func newGSet(t *testing.T, init ...int64) *gset {
	t.Helper()
	return newGSetCfg(t, preciseSetSpec(), Config{}, init...)
}

func newGSetCfg(t *testing.T, spec *core.Spec, cfg Config, init ...int64) *gset {
	t.Helper()
	s := &gset{elems: map[int64]bool{}}
	for _, v := range init {
		s.elems[v] = true
	}
	g, err := NewForwardConfig(spec, func(fn string, args []core.Value) (core.Value, error) {
		return core.Value{}, fmt.Errorf("set has no state functions, asked for %s", fn)
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.g = g
	return s
}

func (s *gset) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	return s.invokeV(tx, method, x, core.VInt(x))
}

// invokeV invokes method with an arbitrary argument value standing for
// the logical key x — e.g. float64(5.0) for 5 — to exercise the index's
// cross-type key canonicalization.
func (s *gset) invokeV(tx *engine.Tx, method string, x int64, arg core.Value) (bool, error) {
	ret, err := s.g.Invoke(tx, method, core.MakeVec(core.V(arg)), func() Effect {
		switch method {
		case "add":
			if s.elems[x] {
				return Effect{Ret: core.VBool(false)}
			}
			s.elems[x] = true
			return Effect{Ret: core.VBool(true), Undo: func() { delete(s.elems, x) }}
		case "remove":
			if !s.elems[x] {
				return Effect{Ret: core.VBool(false)}
			}
			delete(s.elems, x)
			return Effect{Ret: core.VBool(true), Undo: func() { s.elems[x] = true }}
		default:
			return Effect{Ret: core.VBool(s.elems[x])}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

func (s *gset) key() string {
	var ks []int64
	for k := range s.elems {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return fmt.Sprint(ks)
}

// --------------------------------------------------------------------------

func TestForwardRejectsGeneralSpec(t *testing.T) {
	sig := &core.ADTSig{Name: "uf", Methods: []core.MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	// rep(s1, c) over the second invocation's argument: not online-checkable.
	s.Set("union", "find", core.Ne(core.Fn1("rep", core.Arg2(0)), core.Fn1("loser", core.Arg1(0), core.Arg1(1))))
	s.Set("union", "union", core.False())
	s.Set("find", "find", core.True())
	if _, err := NewForward(s, nil); err == nil {
		t.Error("NewForward must reject non-ONLINE-CHECKABLE specs")
	}
}

func TestForwardNonMutatingAddsShare(t *testing.T) {
	s := newGSet(t, 5)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	r1, err := s.invoke(tx1, "add", 5)
	if err != nil || r1 != false {
		t.Fatalf("tx1 add(5) = %v, %v", r1, err)
	}
	// Under the precise spec, a second non-mutating add of the same key
	// proceeds — the precision abstract locks cannot express.
	r2, err := s.invoke(tx2, "add", 5)
	if err != nil || r2 != false {
		t.Fatalf("tx2 add(5) = %v, %v (should commute: both non-mutating)", r2, err)
	}
	// contains(5) also proceeds: the active adds did not modify the set.
	c, err := s.invoke(tx2, "contains", 5)
	if err != nil || c != true {
		t.Fatalf("contains(5) = %v, %v", c, err)
	}
}

func TestForwardMutatingConflictAndUndo(t *testing.T) {
	s := newGSet(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx2.Abort()
	r1, err := s.invoke(tx1, "add", 7)
	if err != nil || r1 != true {
		t.Fatalf("add(7) = %v, %v", r1, err)
	}
	// tx2's contains(7) would observe tx1's mutation: conflict, and the
	// (read-only) invocation leaves no trace.
	if _, err := s.invoke(tx2, "contains", 7); !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// tx2's remove(7) would also conflict AND must be undone inside the
	// gatekeeper: 7 must still be present afterwards.
	if _, err := s.invoke(tx2, "remove", 7); !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	if !s.elems[7] {
		t.Error("conflicting remove was not undone by the gatekeeper")
	}
	// Unrelated keys proceed.
	if _, err := s.invoke(tx2, "add", 8); err != nil {
		t.Fatal(err)
	}
	// After tx1 commits, its log entries vanish and 7 is observable.
	tx1.Commit()
	if c, err := s.invoke(tx2, "contains", 7); err != nil || c != true {
		t.Fatalf("after commit contains(7) = %v, %v", c, err)
	}
}

func TestForwardAbortRollsBack(t *testing.T) {
	s := newGSet(t, 1)
	before := s.key()
	tx := engine.NewTx()
	if _, err := s.invoke(tx, "add", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := s.invoke(tx, "remove", 1); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if s.key() != before {
		t.Errorf("abort did not restore state: %s vs %s", s.key(), before)
	}
	if s.g.ActiveInvocations() != 0 {
		t.Errorf("active log not cleared: %d", s.g.ActiveInvocations())
	}
}

func TestForwardSameTxNeverConflicts(t *testing.T) {
	s := newGSet(t)
	tx := engine.NewTx()
	defer tx.Abort()
	for i := 0; i < 5; i++ {
		if _, err := s.invoke(tx, "add", 3); err != nil {
			t.Fatalf("self-conflict on iteration %d: %v", i, err)
		}
		if _, err := s.invoke(tx, "remove", 3); err != nil {
			t.Fatal(err)
		}
	}
}

// TestForwardMatchesOracle is the scheme-vs-specification correspondence
// check: for every pair of invocations from two transactions, the
// gatekeeper must allow the second exactly when the interpreted condition
// (evaluated with the true s1/s2 bindings) is true — forward gatekeepers
// are sound AND complete (§3.3.1).
func TestForwardMatchesOracle(t *testing.T) {
	spec := preciseSetSpec()
	methods := []string{"add", "remove", "contains"}
	vals := []int64{1, 2}
	states := [][]int64{{}, {1}, {1, 2}, {2}}
	for _, st := range states {
		for _, m1 := range methods {
			for _, v1 := range vals {
				for _, m2 := range methods {
					for _, v2 := range vals {
						s := newGSet(t, st...)
						preKey := s.key()
						tx1, tx2 := engine.NewTx(), engine.NewTx()
						r1, err := s.invoke(tx1, m1, v1)
						if err != nil {
							t.Fatalf("first invocation conflicted on empty log: %v", err)
						}
						midKey := s.key()
						// Oracle: expected r2 and condition value.
						expR2 := oracleApply(st, m1, v1, m2, v2)
						env := &core.PairEnv{
							Inv1: core.NewInvocation(m1, []core.Value{core.V(v1)}, core.VBool(r1)),
							Inv2: core.NewInvocation(m2, []core.Value{core.V(v2)}, core.VBool(expR2)),
						}
						want, oerr := core.Eval(spec.Cond(m1, m2), env)
						if oerr != nil {
							t.Fatal(oerr)
						}
						r2, err := s.invoke(tx2, m2, v2)
						got := err == nil
						if got != want {
							t.Fatalf("state %v: %s(%d)/%v then %s(%d): gatekeeper=%v oracle=%v",
								st, m1, v1, r1, m2, v2, got, want)
						}
						if got && r2 != expR2 {
							t.Fatalf("r2 = %v, oracle %v", r2, expR2)
						}
						if !got && s.key() != midKey {
							t.Fatalf("conflicting invocation left state dirty: %s vs %s", s.key(), midKey)
						}
						tx2.Abort()
						tx1.Abort()
						if s.key() != preKey {
							t.Fatalf("aborts did not restore initial state: %s vs %s", s.key(), preKey)
						}
					}
				}
			}
		}
	}
}

// oracleApply computes the return of m2 after m1 on a fresh set.
func oracleApply(init []int64, m1 string, v1 int64, m2 string, v2 int64) bool {
	set := map[int64]bool{}
	for _, v := range init {
		set[v] = true
	}
	apply := func(m string, v int64) bool {
		switch m {
		case "add":
			if set[v] {
				return false
			}
			set[v] = true
			return true
		case "remove":
			if !set[v] {
				return false
			}
			delete(set, v)
			return true
		default:
			return set[v]
		}
	}
	apply(m1, v1)
	return apply(m2, v2)
}

// TestForwardConcurrentStress drives the gatekeeper from many goroutines
// with aborts and commits; the race detector plus the final-state
// consistency check (committed net effect only) validate atomicity.
func TestForwardConcurrentStress(t *testing.T) {
	s := newGSet(t)
	var mu sync.Mutex
	committedAdds := map[int64]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				tx := engine.NewTx()
				v := int64(r.Intn(40)) + 100*seed // mostly disjoint per worker
				if _, err := s.invoke(tx, "add", v); err != nil {
					tx.Abort()
					continue
				}
				if r.Intn(4) == 0 {
					tx.Abort()
					continue
				}
				mu.Lock()
				committedAdds[v]++
				mu.Unlock()
				tx.Commit()
			}
		}(int64(w))
	}
	wg.Wait()
	if s.g.ActiveInvocations() != 0 {
		t.Errorf("log leaked %d entries", s.g.ActiveInvocations())
	}
	for v := range committedAdds {
		if !s.elems[v] {
			t.Errorf("committed add(%d) missing from final state", v)
		}
	}
	for v := range s.elems {
		if committedAdds[v] == 0 {
			t.Errorf("element %d present but never committed", v)
		}
	}
}

// kdSig/kdSpec: figure 4 — exercises pure state functions (dist) in the
// log (the paper's own forward-gatekeeper worked example).
func kdSpec() *core.Spec {
	sig := &core.ADTSig{Name: "kdtree", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"a"}, HasRet: true},
		{Name: "remove", Params: []string{"a"}, HasRet: true},
		{Name: "nearest", Params: []string{"a"}, HasRet: true},
	}}
	neOrBothFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	s := core.NewSpec(sig)
	s.DeclarePure("dist")
	s.Set("nearest", "nearest", core.True())
	// nearest(a)/r1 ~ add(b)/r2: r2 = false ∨ dist(a,b) > dist(a,r1).
	s.Set("nearest", "add", core.Or(
		core.Eq(core.Ret2(), core.Lit(false)),
		core.Gt(core.Fn2("dist", core.Arg1(0), core.Arg2(0)), core.Fn1("dist", core.Arg1(0), core.Ret1())),
	))
	// nearest(a)/r1 ~ remove(b)/r2: (b ≠ a ∧ b ≠ r1) ∨ r2 = false.
	s.Set("nearest", "remove", core.Or(
		core.And(core.Ne(core.Arg1(0), core.Arg2(0)), core.Ne(core.Ret1(), core.Arg2(0))),
		core.Eq(core.Ret2(), core.Lit(false)),
	))
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("remove", "remove", neOrBothFalse)
	return s
}

// TestForwardKdStyleLogging exercises the dist-logging path of §3.3.1 on
// a 1-D "kd-tree" (a sorted set with nearest queries).
func TestForwardKdStyleLogging(t *testing.T) {
	points := map[int64]bool{10: true, 20: true}
	dist := func(a, b int64) int64 {
		if a > b {
			return a - b
		}
		return b - a
	}
	g, err := NewForward(kdSpec(), func(fn string, args []core.Value) (core.Value, error) {
		if fn != "dist" {
			return core.Value{}, fmt.Errorf("unknown fn %s", fn)
		}
		return core.VInt(dist(args[0].Int(), args[1].Int())), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	nearest := func(tx *engine.Tx, a int64) (int64, error) {
		ret, err := g.Invoke(tx, "nearest", core.MakeVec(core.V(a)), func() Effect {
			best, bd := int64(-1), int64(1<<62)
			for p := range points {
				if d := dist(a, p); d < bd {
					best, bd = p, d
				}
			}
			return Effect{Ret: core.VInt(best)}
		})
		if err != nil {
			return 0, err
		}
		return ret.Int(), nil
	}
	add := func(tx *engine.Tx, a int64) (bool, error) {
		ret, err := g.Invoke(tx, "add", core.MakeVec(core.V(a)), func() Effect {
			if points[a] {
				return Effect{Ret: core.VBool(false)}
			}
			points[a] = true
			return Effect{Ret: core.VBool(true), Undo: func() { delete(points, a) }}
		})
		if err != nil {
			return false, err
		}
		return ret.Bool(), nil
	}

	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	n, err := nearest(tx1, 12)
	if err != nil || n != 10 {
		t.Fatalf("nearest(12) = %v, %v", n, err)
	}
	// add(30): dist(12,30)=18 > dist(12,10)=2 — commutes.
	if ok, err := add(tx2, 30); err != nil || !ok {
		t.Fatalf("add(30) = %v, %v (should commute with nearest)", ok, err)
	}
	// add(11): dist(12,11)=1 < 2 — would have changed the answer: conflict,
	// and the insertion must be rolled back.
	if _, err := add(tx2, 11); !engine.IsConflict(err) {
		t.Fatalf("add(11) should conflict, got %v", err)
	}
	if points[11] {
		t.Error("conflicting add(11) not undone")
	}
}

func TestForwardRejectsNonPureRetFn(t *testing.T) {
	sig := &core.ADTSig{Name: "x", Methods: []core.MethodSig{{Name: "m", Params: []string{"a"}, HasRet: true}}}
	s := core.NewSpec(sig)
	// f(s1, r1) with f non-pure: cannot be evaluated in the pre-state.
	s.Set("m", "m", core.Or(core.Eq(core.Fn1("f", core.Ret1()), core.Fn2("f", core.Ret2())), core.Eq(core.Fn2("f", core.Ret2()), core.Fn1("f", core.Ret1()))))
	if _, err := NewForward(s, nil); err == nil {
		t.Error("non-pure s1 function over r1 must be rejected")
	}
}

func TestForwardStatsCounters(t *testing.T) {
	s := newGSet(t, 5)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := s.invoke(tx1, "add", 5); err != nil { // non-mutating
		t.Fatal(err)
	}
	if _, err := s.invoke(tx2, "contains", 5); err != nil { // checked vs add
		t.Fatal(err)
	}
	if _, err := s.invoke(tx2, "remove", 5); !engine.IsConflict(err) {
		t.Fatal("expected conflict")
	}
	st := s.g.Stats()
	if st.Invocations != 3 {
		t.Errorf("Invocations = %d, want 3", st.Invocations)
	}
	if st.Checks < 2 {
		t.Errorf("Checks = %d, want ≥ 2", st.Checks)
	}
	if st.Conflicts != 1 {
		t.Errorf("Conflicts = %d, want 1", st.Conflicts)
	}
	tx2.Abort()
	tx1.Abort()
}
