package gatekeeper

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// cellSpec is the per-key writer/reader exclusion specification from
// the abslock stress suite: updates to the same datum never commute
// with anything touching that datum, observations always commute with
// each other. Its guards are pure disequalities, so the cascade runs
// them through the signature filter and the optimistic index.
func cellSpec() *core.Spec {
	sig := &core.ADTSig{Name: "cell", Methods: []core.MethodSig{
		{Name: "upd", Params: []string{"k"}},
		{Name: "obs", Params: []string{"k"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	ne := core.Ne(core.Arg1(0), core.Arg2(0))
	s.Set("upd", "upd", ne)
	s.Set("upd", "obs", ne)
	s.Set("obs", "obs", core.True())
	return s
}

// cascadeExclusionStress hammers one cascade from many goroutines,
// checking the writer/reader exclusion the specification promises with
// per-key atomic occupancy counters — the serializability oracle — and
// that the window drains completely afterwards.
func cascadeExclusionStress(t *testing.T, cfg CascadeConfig, opsPerWorker int) {
	t.Helper()
	c, err := NewCascadeConfig(cellSpec(), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}

	const nKeys = 16
	var occupancy [nKeys]atomic.Int32 // writers << 16 | readers
	var violations atomic.Int32

	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < opsPerWorker; op++ {
				tx := engine.NewTx()
				k := int64(r.Intn(nKeys))
				write := r.Intn(3) == 0
				method := "obs"
				if write {
					method = "upd"
				}
				_, err := c.Invoke(tx, method, core.Args1(core.VInt(k)), func() Effect {
					return Effect{Ret: core.VBool(true)}
				})
				if err == nil {
					// Claim the key and validate exclusion. Violations are
					// recorded only here, at admission time: the release
					// hook below is registered after the cascade's own, so
					// the engine's LIFO hook order runs it first at
					// transaction end — the counter clears while the
					// cascade still holds the record live, so a racing
					// admission can never observe a stale claim.
					if write {
						v := occupancy[k].Add(1 << 16)
						if v != 1<<16 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-(1 << 16)) })
					} else {
						v := occupancy[k].Add(1)
						if v>>16 != 0 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-1) })
					}
					if r.Intn(4) == 0 {
						tx.Abort()
					} else {
						tx.Commit()
					}
				} else {
					if !engine.IsConflict(err) {
						t.Errorf("unexpected error: %v", err)
					}
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d exclusion violations (concurrent conflicting holders)", n)
	}
	if n := c.ActiveInvocations(); n != 0 {
		t.Fatalf("cascade window leaked %d invocations", n)
	}
	var total int32
	for i := range occupancy {
		total += occupancy[i].Load()
	}
	if total != 0 {
		t.Fatalf("occupancy counters did not drain: %d", total)
	}
}

// TestCascadeExclusionSweep runs the exclusion stress across the
// parallelism ladder the lock-free protocol must hold up under,
// including GOMAXPROCS=1 (where optimistic retries come only from
// preemption) and oversubscription. Run with -race for the full check.
func TestCascadeExclusionSweep(t *testing.T) {
	ops := 300
	if testing.Short() {
		ops = 80
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			runtime.GOMAXPROCS(procs)
			cascadeExclusionStress(t, CascadeConfig{}, ops)
		})
	}
}

// TestCascadeExclusionOverflowStress repeats the stress with a slot
// table far smaller than the live window, so admissions constantly
// spill to the overflow list and race slot releases.
func TestCascadeExclusionOverflowStress(t *testing.T) {
	ops := 200
	if testing.Short() {
		ops = 60
	}
	cascadeExclusionStress(t, CascadeConfig{SlotCapacity: 4}, ops)
}
