package gatekeeper

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// These tests check that the method-indexed, slot-logged forward
// gatekeeper reaches exactly the decisions of the definitional check —
// evaluating the pair condition with core.Eval against every active
// invocation — and that it tolerates real concurrency.

// oracleGK is a reference forward gatekeeper: a mirror set plus a flat
// active-invocation list, with conditions interpreted from the spec on
// every check. No indexing, no logs, no compiled checkers.
type oracleGK struct {
	spec   *core.Spec
	elems  map[int64]bool
	active []struct {
		tx  int
		inv core.Invocation
	}
}

// step computes the oracle's return value and conflict decision for one
// invocation by transaction tx, applying the effect when allowed. arg is
// the value actually passed to the method — possibly a float64 spelling
// of the logical key x, to exercise cross-type value equality.
func (o *oracleGK) step(t *testing.T, tx int, method string, x int64, arg core.Value) (core.Value, bool) {
	t.Helper()
	var ret core.Value
	switch method {
	case "add":
		ret = core.VBool(!o.elems[x])
	case "remove":
		ret = core.VBool(o.elems[x])
	case "contains":
		ret = core.VBool(o.elems[x])
	}
	inv := core.NewInvocation(method, []core.Value{arg}, ret)
	for _, a := range o.active {
		if a.tx == tx {
			continue
		}
		ok, err := core.Eval(o.spec.Cond(a.inv.Method, method), &core.PairEnv{Inv1: a.inv, Inv2: inv})
		if err != nil {
			t.Fatalf("oracle eval: %v", err)
		}
		if !ok {
			return ret, false
		}
	}
	switch method {
	case "add":
		o.elems[x] = true
	case "remove":
		delete(o.elems, x)
	}
	o.active = append(o.active, struct {
		tx  int
		inv core.Invocation
	}{tx, inv})
	return ret, true
}

func (o *oracleGK) commit(tx int) {
	kept := o.active[:0]
	for _, a := range o.active {
		if a.tx != tx {
			kept = append(kept, a)
		}
	}
	o.active = kept
}

// TestForwardIndexedMatchesInterpretedOracle replays deterministic random schedules of set
// operations from several transactions against the indexed gatekeeper
// and the interpreted oracle, requiring identical return values and
// identical allow/conflict decisions at every step.
func TestForwardIndexedMatchesInterpretedOracle(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		r := rand.New(rand.NewSource(seed))
		s := newGSet(t)
		o := &oracleGK{spec: preciseSetSpec(), elems: map[int64]bool{}}

		const nTx = 4
		txs := make([]*engine.Tx, nTx)
		for i := range txs {
			txs[i] = engine.NewTx()
		}
		methods := []string{"add", "remove", "contains"}
		for step := 0; step < 500; step++ {
			i := r.Intn(nTx)
			if r.Intn(15) == 0 {
				txs[i].Commit()
				o.commit(i)
				txs[i] = engine.NewTx()
				continue
			}
			method := methods[r.Intn(len(methods))]
			x := int64(r.Intn(8)) // tiny key space: heavy overlap
			// Sometimes spell the key as a float64: ValueEq-equal to the
			// int64 spelling but not ==-equal, so the index must
			// canonicalize both to one map key to keep decisions exact.
			arg := core.VInt(x)
			if r.Intn(3) == 0 {
				arg = core.VFloat(float64(x))
			}
			wantRet, wantOK := o.step(t, i, method, x, arg)
			ret, err := s.invokeV(txs[i], method, x, arg)
			if gotOK := err == nil; gotOK != wantOK {
				t.Fatalf("seed %d step %d: %s(%v) by tx%d: gatekeeper ok=%v oracle ok=%v (err=%v)",
					seed, step, method, arg, i, gotOK, wantOK, err)
			}
			if err != nil {
				if !engine.IsConflict(err) {
					t.Fatalf("seed %d step %d: non-conflict error: %v", seed, step, err)
				}
				continue
			}
			if ret != wantRet.Bool() {
				t.Fatalf("seed %d step %d: %s(%d) returned %v, oracle %v", seed, step, method, x, ret, wantRet)
			}
		}
		for i := range txs {
			txs[i].Commit()
			o.commit(i)
		}
		if n := s.g.ActiveInvocations(); n != 0 {
			t.Fatalf("seed %d: %d invocations still active after commits", seed, n)
		}
		// Final states must agree too.
		for x := int64(0); x < 8; x++ {
			if s.elems[x] != o.elems[x] {
				t.Fatalf("seed %d: state divergence at %d: %v vs %v", seed, x, s.elems[x], o.elems[x])
			}
		}
		// The schedules above must actually have exercised the index.
		if st := s.g.Stats(); st.Probes == 0 {
			t.Fatalf("seed %d: index never probed", seed)
		}
	}
}

// TestForwardIndexedConcurrentStress drives the indexed gatekeeper from many
// goroutines under the race detector. Each worker owns a disjoint key
// range, so every invocation must be admitted (the paper's precise set
// spec makes distinct-key operations commute) — a conflict here would be
// spurious, caused only by the indexing or pooling machinery.
func TestForwardIndexedConcurrentStress(t *testing.T) {
	s := newGSet(t)
	var spurious atomic.Int32
	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			base := int64(w) << 32
			methods := []string{"add", "remove", "contains"}
			for op := 0; op < 200; op++ {
				tx := engine.NewTx()
				for j := 0; j < 4; j++ {
					x := base + int64(r.Intn(64))
					if _, err := s.invoke(tx, methods[r.Intn(len(methods))], x); err != nil {
						spurious.Add(1)
					}
				}
				tx.Commit()
			}
		}(w)
	}
	wg.Wait()
	if n := spurious.Load(); n != 0 {
		t.Fatalf("%d spurious conflicts on disjoint keys", n)
	}
	if n := s.g.ActiveInvocations(); n != 0 {
		t.Fatalf("%d invocations still active", n)
	}
}
