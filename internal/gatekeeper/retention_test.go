package gatekeeper

import (
	"runtime"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// blob is a user-type argument with a deliberately large heap footprint:
// if a pooled record (entry, gentry, jentry or Tx hook) fails to zero its
// Value fields on release, every pooled record pins one of these.
type blob struct{ data []byte }

const blobSize = 1 << 20 // 1 MiB

// heapBaseline settles the heap fully (two collections also empty the
// sync.Pools, victim caches included) and reads the live-heap size.
func heapBaseline() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// heapAfterOneGC runs a single collection and reads the live heap. One
// collection frees everything unreachable but keeps sync.Pool contents
// alive (they survive into the victim cache), so values still pinned by
// pooled records are visible in the measurement — exactly the retention
// the Value-zeroing on release exists to prevent.
func heapAfterOneGC() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// retentionScenario runs one transaction holding `n` live invocations
// whose arguments each pin a 1 MiB blob, commits it (returning all n
// pooled records at once), flushes the per-gatekeeper scratch with a
// cheap invocation, and returns the live-heap growth over the baseline.
func retentionScenario(t *testing.T, invoke func(tx *engine.Tx, v core.Value) error) uint64 {
	t.Helper()
	const n = 64
	base := heapBaseline()
	tx := engine.NewTx()
	for i := 0; i < n; i++ {
		if err := invoke(tx, core.V(&blob{data: make([]byte, blobSize)})); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	// One small invocation flushes the latest-invocation scratch the
	// gatekeeper legitimately retains between calls.
	flush := engine.NewTx()
	if err := invoke(flush, core.VInt(0)); err != nil {
		t.Fatal(err)
	}
	flush.Commit()
	after := heapAfterOneGC()
	if after <= base {
		return 0
	}
	return after - base
}

// TestForwardPoolsDropUserValues: after a transaction with 64 active
// 1 MiB-blob invocations commits, the recycled entries must not pin the
// blobs (putEntry zeroes inv/log/keys). Without the zeroing the pool
// retains ~64 MiB here.
func TestForwardPoolsDropUserValues(t *testing.T) {
	g, err := NewForward(rwSetSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	grew := retentionScenario(t, func(tx *engine.Tx, v core.Value) error {
		_, err := g.Invoke(tx, "add", core.Args1(v), func() Effect {
			return Effect{Ret: core.VBool(true)}
		})
		return err
	})
	if limit := uint64(8 * blobSize); grew > limit {
		t.Errorf("forward pools retain %d MiB of user values after release (limit %d MiB)",
			grew>>20, limit>>20)
	}
}

// TestGeneralPoolsDropUserValues is the same check for the general
// gatekeeper's gentry/jentry pools (putGentry/putJentry zeroing).
func TestGeneralPoolsDropUserValues(t *testing.T) {
	g, err := NewGeneral(rwSetSpec(), nil)
	if err != nil {
		t.Fatal(err)
	}
	grew := retentionScenario(t, func(tx *engine.Tx, v core.Value) error {
		_, err := g.Invoke(tx, "add", core.Args1(v), func() GEffect {
			return GEffect{Ret: core.VBool(true)}
		})
		return err
	})
	if limit := uint64(8 * blobSize); grew > limit {
		t.Errorf("general pools retain %d MiB of user values after release (limit %d MiB)",
			grew>>20, limit>>20)
	}
}

// TestTxPoolDropsHooks: a pooled transaction's undo/release hook slices
// must be zeroed on recycle (clearHooks), or the pooled Tx pins the last
// run's closures and through them arbitrary user state.
func TestTxPoolDropsHooks(t *testing.T) {
	base := heapBaseline()
	for i := 0; i < 16; i++ {
		tx := engine.GetTx()
		payload := &blob{data: make([]byte, blobSize)}
		tx.OnUndo(func() { _ = payload })
		tx.OnRelease(func() { _ = payload })
		tx.Commit()
		engine.PutTx(tx)
	}
	after := heapAfterOneGC()
	grew := uint64(0)
	if after > base {
		grew = after - base
	}
	if limit := uint64(4 * blobSize); grew > limit {
		t.Errorf("tx pool retains %d MiB through stale hooks (limit %d MiB)", grew>>20, limit>>20)
	}
}
