package gatekeeper

import (
	"fmt"
	"sort"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// GEffect is the result of executing a method invocation under a general
// gatekeeper. Mutating invocations must supply exact-state Undo and Redo
// actions: Undo restores the concrete state to what it was immediately
// before the invocation, and Redo re-applies the exact change. The
// gatekeeper drives them to roll the structure back to earlier states
// when evaluating conditions that are not ONLINE-CHECKABLE, then restore
// it (§3.3.2).
type GEffect struct {
	Ret  core.Value
	Undo func()
	Redo func()
}

// genPlan is the static per-ordered-pair plan for a general gatekeeper:
// the condition plus which state functions must be evaluated under
// rollback at s1 (the active invocation's pre-state) and at s2 (the new
// invocation's pre-state). The condition is compiled once into a closure
// checker whose stateful terms read the rollback-captured values by slot
// (falling back to live evaluation for slots the rollback sweep could
// not fill, mirroring the seed's skip-on-error substitution).
type genPlan struct {
	cond    core.Cond
	fn1     []core.FnTerm // all non-pure s1 functions: evaluated at s1 via rollback
	fn2     []core.FnTerm // all non-pure s2 functions: evaluated at s2 via rollback
	check   checkFn
	trivial bool
	never   bool

	// Disequality index compilation (see index.go). General gatekeepers
	// keep no logs, so guards whose x term applies a non-pure state
	// function are rejected at compile time (union-find's union pairs
	// stay on the scan); probes always run after execution, so r2 in a
	// probe key needs no special scheduling.
	keys      []indexKey[*gentry]
	indexed   bool
	pureDiseq bool

	// m1id/m2id: pair method IDs in the telemetry vocabulary, compiled
	// at construction so hot-path attribution never looks up a map.
	m1id, m2id uint16
}

// gPairCheck names an active-side method whose pairs with the incoming
// method need checking, with the plan to run.
type gPairCheck struct {
	m1   string
	plan *genPlan
}

// jentry is one journaled mutation by an active transaction, a node of
// the seq-ordered doubly-linked journal. The list shape lets a
// transaction's entries be unlinked in O(1) each at commit or abort,
// while rollback sweeps still walk the journal from its newest end.
type jentry struct {
	seq  uint64
	tx   *engine.Tx
	undo func()
	redo func()

	prev, next *jentry
}

// gentry is an active invocation with the journal position that marks the
// state it executed in.
type gentry struct {
	tx     *engine.Tx
	inv    core.Invocation
	seqPre uint64 // state s1 = current state with journal entries seq > seqPre undone

	// keys and gen mirror entry.keys/entry.gen: per-slot index keys
	// (aligned with General.slots[method]) and the probe-generation
	// deduplication stamp. pos is the entry's position in its method's
	// active list, maintained under swap-deletes.
	keys []core.Value
	gen  uint64
	pos  int
}

var gentryPool = sync.Pool{New: func() any { return new(gentry) }}

// putGentry recycles an entry, zeroing every Value field so pooled
// records retain no user-type references (see Forward.putEntry).
func putGentry(e *gentry) {
	e.tx = nil
	e.inv.Args.Release()
	e.inv = core.Invocation{}
	e.seqPre = 0
	for i := range e.keys {
		e.keys[i] = core.Value{}
	}
	e.keys = e.keys[:0]
	e.gen = 0
	e.pos = 0
	gentryPool.Put(e)
}

var jentryPool = sync.Pool{New: func() any { return new(jentry) }}

// putJentry recycles a journal node, dropping its undo/redo closures.
func putJentry(j *jentry) {
	j.seq = 0
	j.tx = nil
	j.undo = nil
	j.redo = nil
	j.prev, j.next = nil, nil
	jentryPool.Put(j)
}

// gpending is one queued check of an Invoke: the active entry, the plan,
// and the windows into the shared value arena holding the
// rollback-captured fn1 and fn2 values.
type gpending struct {
	e        *gentry
	plan     *genPlan
	off1, n1 int
	off2, n2 int
	// immediate marks a collision on a purely-disequality condition:
	// conflict without evaluating the checker.
	immediate bool
}

// General is a general gatekeeper (§3.3.2): a forward-style active log
// plus an undo/redo journal of the mutations performed by live
// transactions. Conditions whose s1 functions depend on the *second*
// invocation (not ONLINE-CHECKABLE, e.g. union-find's rep(s1, c)) are
// evaluated by rolling the structure back to the recorded state, querying
// it, and re-applying the journal — all inside the gatekeeper's atomic
// section.
//
// Rolling back only the journal of live transactions evaluates the
// condition in a history C-equivalent to the real one: mutations by
// committed transactions were checked to commute with every still-active
// invocation, so they can be (virtually) reordered before it. This is the
// same stance the paper's union-find gatekeeper takes when it undoes only
// the "potentially interfering" active unions.
type General struct {
	spec *core.Spec
	res  core.StateFn

	pairs   map[[2]string]*genPlan
	byFirst map[string][]gPairCheck
	slots   map[string][]*keySlot[*gentry] // disequality key slots per method

	mu       sync.Mutex
	seq      uint64
	jHead    *jentry // oldest journaled mutation
	jTail    *jentry // newest journaled mutation
	jLen     int
	active   map[string][]*gentry // active invocations, indexed by method
	nActive  int
	byTxE    map[*engine.Tx][]*gentry // each tx's own active entries
	byTxJ    map[*engine.Tx][]*jentry // each tx's own journal entries, oldest first
	eLists   [][]*gentry              // recycled byTxE slices
	jLists   [][]*jentry              // recycled byTxJ slices
	hooked   map[*engine.Tx]bool
	probeGen uint64

	tele *telemetry.Detector // attribution counters (method vocabulary)

	// per-Invoke scratch, reused under mu
	checks    []gpending
	valbuf    []core.Value
	probeKeys []core.Value
	// ctx is the compiled-checker evaluation context. A local checkCtx
	// escapes (its address flows into checker function values), so the
	// hot paths reuse this one field instead; it retains at most the
	// latest invocation between calls.
	ctx checkCtx
}

// NewGeneral constructs a general gatekeeper for spec over a structure
// whose state functions are resolved (against its current state) by res.
// Any L1 specification is accepted.
func NewGeneral(spec *core.Spec, res core.StateFn) (*General, error) {
	return NewGeneralConfig(spec, res, Config{})
}

// NewGeneralConfig is NewGeneral with explicit configuration.
func NewGeneralConfig(spec *core.Spec, res core.StateFn, cfg Config) (*General, error) {
	g := &General{
		spec:    spec,
		res:     res,
		pairs:   map[[2]string]*genPlan{},
		byFirst: map[string][]gPairCheck{},
		slots:   map[string][]*keySlot[*gentry]{},
		active:  map[string][]*gentry{},
		byTxE:   map[*engine.Tx][]*gentry{},
		byTxJ:   map[*engine.Tx][]*jentry{},
		hooked:  map[*engine.Tx]bool{},
	}
	names := spec.Sig.MethodNames()
	g.tele = telemetry.Register("general", spec.Sig.Name, names)
	for i1, m1 := range names {
		for i2, m2 := range names {
			cond := spec.Cond(m1, m2)
			plan := &genPlan{cond: cond, m1id: uint16(i1), m2id: uint16(i2)}
			switch cond.(type) {
			case core.TrueCond:
				plan.trivial = true
			case core.FalseCond:
				plan.never = true
			}
			for _, ft := range core.FirstStateFns(cond) {
				if spec.Pure[ft.Fn] {
					continue
				}
				if containsNonPureFn(ft, core.Second, spec.Pure) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s): s2 function nested inside %s(s1,...) is not supported", m1, m2, ft.Fn)
				}
				plan.fn1 = append(plan.fn1, ft)
			}
			for _, ft := range secondStateFns(cond) {
				if spec.Pure[ft.Fn] {
					continue
				}
				if containsNonPureFn(ft, core.First, spec.Pure) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s): s1 function nested inside %s(s2,...) is not supported", m1, m2, ft.Fn)
				}
				plan.fn2 = append(plan.fn2, ft)
			}
			bind := map[string]slotBinding{}
			for i, ft := range plan.fn1 {
				bind[core.TermKey(ft)] = slotBinding{src: srcLog1, slot: i}
			}
			for i, ft := range plan.fn2 {
				bind[core.TermKey(ft)] = slotBinding{src: srcPre2, slot: i}
			}
			plan.check = compileCond(cond, bind, res)
			if !cfg.DisableIndex && !plan.trivial && !plan.never {
				keys, pureDiseq, _, ok := compileIndex[*gentry](
					plan.cond, spec.Pure, nil, res, false, g.slotFor(m1))
				if ok {
					plan.keys = keys
					plan.indexed = true
					plan.pureDiseq = pureDiseq
				}
			}
			if !plan.trivial {
				g.byFirst[m2] = append(g.byFirst[m2], gPairCheck{m1: m1, plan: plan})
			}
			g.pairs[[2]string{m1, m2}] = plan
		}
	}
	return g, nil
}

// slotFor interns a guard x term into method m1's key-slot list,
// deduplicating across pairs.
func (g *General) slotFor(m1 string) func(x core.Term, extract termFn) *keySlot[*gentry] {
	return func(x core.Term, extract termFn) *keySlot[*gentry] {
		xk := core.TermKey(x)
		for _, s := range g.slots[m1] {
			if core.TermKey(s.term) == xk {
				return s
			}
		}
		s := &keySlot[*gentry]{term: x, extract: extract, index: map[core.Value]*bucket[*gentry]{}}
		g.slots[m1] = append(g.slots[m1], s)
		return s
	}
}

// Invoke executes one guarded invocation for tx, checking it against all
// active invocations from other transactions, rolling the structure back
// as needed to evaluate stateful condition terms in the right states. On
// conflict the invocation's own effect is undone before returning.
func (g *General) Invoke(tx *engine.Tx, method string, args core.Vec, exec func() GEffect) (core.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tele.IncInvocation()

	inv := core.Invocation{Method: method, Args: args}
	seqPre := g.seq

	eff := exec()
	inv.Ret = eff.Ret
	var own *jentry
	if eff.Undo != nil {
		if eff.Redo == nil {
			panic("gatekeeper: GEffect with Undo but no Redo")
		}
		g.seq++
		own = jentryPool.Get().(*jentry)
		own.seq, own.tx, own.undo, own.redo = g.seq, tx, eff.Undo, eff.Redo
		g.linkJournal(own)
		g.tele.ObserveJournal(g.jLen)
		g.byTxJ[tx] = g.appendJ(g.byTxJ[tx], own)
	}

	// Gather the checks and the rollback points they need. Indexed
	// pairs probe the first method's key slots (execution already
	// happened, so r2-bearing probe keys are fine here) and queue only
	// colliding entries; the rest scan its active list as the seed did.
	// Evaluation at "state seqPre" means: every journal entry with seq
	// > seqPre undone. Slot values start as unset; slots the rollback
	// sweep leaves unset are evaluated live (against the restored
	// current state) by the compiled checker.
	g.checks = g.checks[:0]
	g.valbuf = g.valbuf[:0]
	var needState map[uint64][]int // rollback point -> indices into checks needing fn1 there
	needS2 := false
	queue := func(e *gentry, plan *genPlan, immediate bool) {
		p := gpending{e: e, plan: plan, immediate: immediate}
		p.n1, p.n2 = len(plan.fn1), len(plan.fn2)
		p.off1 = len(g.valbuf)
		p.off2 = p.off1 + p.n1
		for i := 0; i < p.n1+p.n2; i++ {
			g.valbuf = append(g.valbuf, unset)
		}
		idx := len(g.checks)
		g.checks = append(g.checks, p)
		if p.n1 > 0 {
			if needState == nil {
				needState = map[uint64][]int{}
			}
			needState[e.seqPre] = append(needState[e.seqPre], idx)
		}
		if p.n2 > 0 {
			needS2 = true
		}
	}
	scanPair := func(pc gPairCheck) {
		es := g.active[pc.m1]
		if len(es) == 0 {
			return
		}
		g.tele.IncFallbackScan()
		for _, ae := range es {
			if ae.tx == tx {
				continue
			}
			queue(ae, pc.plan, false)
		}
	}
	probePair := func(pc gPairCheck) {
		g.tele.IncProbe()
		g.ctx = checkCtx{env: core.PairEnv{Inv2: inv, S1: g.res, S2: g.res}}
		keys := g.probeKeys[:0]
		for _, pk := range pc.plan.keys {
			v, err := pk.probe(&g.ctx)
			if err != nil {
				g.probeKeys = keys
				scanPair(pc)
				return
			}
			k, kok := core.MapKey(v)
			if !kok {
				g.probeKeys = keys
				scanPair(pc)
				return
			}
			keys = append(keys, k)
		}
		g.probeKeys = keys
		g.probeGen++
		gen := g.probeGen
		for i, pk := range pc.plan.keys {
			k := keys[i]
			isNaN := k.Kind() == core.KindNaN
			imm := pc.plan.pureDiseq && !isNaN
			for _, ae := range pk.slot.probe(k) {
				if ae.tx == tx || ae.gen == gen {
					continue
				}
				ae.gen = gen
				g.tele.IncCollision()
				queue(ae, pc.plan, imm)
			}
			for _, ae := range pk.slot.unkeyed {
				if ae.tx == tx || ae.gen == gen {
					continue
				}
				ae.gen = gen
				g.tele.IncCollision()
				queue(ae, pc.plan, false)
			}
		}
	}
	for _, pc := range g.byFirst[method] {
		if pc.plan.indexed {
			probePair(pc)
		} else {
			scanPair(pc)
		}
	}

	if len(needState) > 0 || needS2 {
		g.tele.IncRollback()
		g.rollbackEval(inv, seqPre, needState, needS2)
	}

	undoOwn := func() {
		if own != nil {
			own.undo()
			g.unlinkJournal(own)
			lst := g.byTxJ[tx]
			lst[len(lst)-1] = nil
			g.byTxJ[tx] = lst[:len(lst)-1]
			putJentry(own)
		}
	}

	g.ctx = checkCtx{env: core.PairEnv{Inv2: inv, S1: g.res, S2: g.res}}
	ctx := &g.ctx
	for i := range g.checks {
		p := &g.checks[i]
		if p.immediate {
			undoOwn()
			g.conflict(tx, p.plan)
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, p.e.inv.Method, p.e.inv.Args, p.e.tx.ID())
		}
		g.tele.Check(p.plan.m1id, p.plan.m2id)
		if p.plan.never {
			undoOwn()
			g.conflict(tx, p.plan)
			return eff.Ret, engine.Conflict("gatekeeper: %s never commutes with active %s (tx %d)",
				method, p.e.inv.Method, p.e.tx.ID())
		}
		ctx.env.Inv1 = p.e.inv
		ctx.log1 = g.valbuf[p.off1 : p.off1+p.n1]
		ctx.pre2 = g.valbuf[p.off2 : p.off2+p.n2]
		ok, err := p.plan.check(ctx)
		if err != nil {
			undoOwn()
			return eff.Ret, fmt.Errorf("gatekeeper: checking (%s,%s): %w", p.e.inv.Method, method, err)
		}
		if !ok {
			undoOwn()
			g.conflict(tx, p.plan)
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, p.e.inv.Method, p.e.inv.Args, p.e.tx.ID())
		}
	}

	e := gentryPool.Get().(*gentry)
	e.tx, e.inv, e.seqPre = tx, inv, seqPre
	g.indexEntry(method, e)
	e.pos = len(g.active[method])
	g.active[method] = append(g.active[method], e)
	g.byTxE[tx] = g.appendE(g.byTxE[tx], e)
	g.nActive++
	g.tele.ObserveActive(g.nActive)
	if !g.hooked[tx] {
		g.hooked[tx] = true
		tx.OnUndoer(g)
		tx.OnReleaser(g)
	}
	return eff.Ret, nil
}

// appendE/appendJ append to a per-tx list, seeding a fresh list from the
// recycled pool so steady-state transactions allocate no slices.
func (g *General) appendE(lst []*gentry, e *gentry) []*gentry {
	if lst == nil {
		if n := len(g.eLists); n > 0 {
			lst = g.eLists[n-1]
			g.eLists[n-1] = nil
			g.eLists = g.eLists[:n-1]
		}
	}
	return append(lst, e)
}

func (g *General) appendJ(lst []*jentry, j *jentry) []*jentry {
	if lst == nil {
		if n := len(g.jLists); n > 0 {
			lst = g.jLists[n-1]
			g.jLists[n-1] = nil
			g.jLists = g.jLists[:n-1]
		}
	}
	return append(lst, j)
}

// linkJournal appends j at the journal's newest end.
func (g *General) linkJournal(j *jentry) {
	j.prev = g.jTail
	if g.jTail != nil {
		g.jTail.next = j
	} else {
		g.jHead = j
	}
	g.jTail = j
	g.jLen++
}

// unlinkJournal removes j from the journal, preserving seq order of the
// remaining entries.
func (g *General) unlinkJournal(j *jentry) {
	if j.prev != nil {
		j.prev.next = j.next
	} else {
		g.jHead = j.next
	}
	if j.next != nil {
		j.next.prev = j.prev
	} else {
		g.jTail = j.prev
	}
	j.prev, j.next = nil, nil
	g.jLen--
}

// rollbackEval performs one backward sweep over the journal, pausing at
// each required rollback point to evaluate the stateful condition terms
// that belong there into the checks' arena slots, then replays the
// journal forward. Terms that fail to evaluate leave their slot unset.
func (g *General) rollbackEval(inv core.Invocation, seqPre uint64, needState map[uint64][]int, needS2 bool) {
	points := make([]uint64, 0, len(needState)+1)
	for p := range needState {
		points = append(points, p)
	}
	if needS2 {
		points = append(points, seqPre)
	}
	sort.Slice(points, func(i, j int) bool { return points[i] > points[j] })

	var firstUndone *jentry // oldest journal entry currently undone
	evalAt := func(point uint64) {
		for {
			n := g.jTail
			if firstUndone != nil {
				n = firstUndone.prev
			}
			if n == nil || n.seq <= point {
				return
			}
			n.undo()
			firstUndone = n
		}
	}
	seen := map[uint64]bool{}
	for _, pt := range points {
		if seen[pt] {
			continue
		}
		seen[pt] = true
		evalAt(pt)
		if needS2 && pt == seqPre {
			// State s2: evaluate the non-pure fn2 terms of every check.
			for i := range g.checks {
				p := &g.checks[i]
				env := &core.PairEnv{Inv1: p.e.inv, Inv2: inv, S1: g.res, S2: g.res}
				for j, ft := range p.plan.fn2 {
					if v, err := core.EvalTerm(ft, env); err == nil {
						g.valbuf[p.off2+j] = v
					}
				}
			}
		}
		for _, i := range needState[pt] {
			p := &g.checks[i]
			env := &core.PairEnv{Inv1: p.e.inv, Inv2: inv, S1: g.res, S2: g.res}
			for j, ft := range p.plan.fn1 {
				if v, err := core.EvalTerm(ft, env); err == nil {
					g.valbuf[p.off1+j] = v
				}
			}
		}
	}
	// Replay forward in order.
	for n := firstUndone; n != nil; n = n.next {
		n.redo()
	}
}

// UndoTx undoes the transaction's journaled mutations, newest first, and
// drops them from the journal. Installed as a tx undo hook
// (engine.Undoer, so registration allocates nothing).
func (g *General) UndoTx(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	lst := g.byTxJ[tx]
	for i := len(lst) - 1; i >= 0; i-- {
		lst[i].undo()
		g.unlinkJournal(lst[i])
		putJentry(lst[i])
		lst[i] = nil
	}
	if lst != nil {
		g.jLists = append(g.jLists, lst[:0])
	}
	delete(g.byTxJ, tx)
}

// removeActive swap-deletes the entry from its method's active list,
// keeping the moved entry's pos current.
func (g *General) removeActive(m string, e *gentry) {
	es := g.active[m]
	last := len(es) - 1
	moved := es[last]
	es[e.pos] = moved
	moved.pos = e.pos
	es[last] = nil
	g.active[m] = es[:last]
}

// ReleaseTx drops the transaction's journal entries (now permanent) and
// active invocations. Installed as a tx release hook (engine.Releaser);
// on abort the journal was already emptied by UndoTx. Like
// Forward.ReleaseTx, it walks only the transaction's own entries, and
// recycles them plus the per-tx lists.
func (g *General) ReleaseTx(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	jlst := g.byTxJ[tx]
	for i, j := range jlst {
		g.unlinkJournal(j)
		putJentry(j)
		jlst[i] = nil
	}
	if jlst != nil {
		g.jLists = append(g.jLists, jlst[:0])
	}
	delete(g.byTxJ, tx)
	elst := g.byTxE[tx]
	for i, e := range elst {
		m := e.inv.Method
		g.removeActive(m, e)
		g.dropFromIndex(m, e)
		g.nActive--
		putGentry(e)
		elst[i] = nil
	}
	if elst != nil {
		g.eLists = append(g.eLists, elst[:0])
	}
	delete(g.byTxE, tx)
	delete(g.hooked, tx)
}

// indexEntry computes the entry's key per key slot of its method and
// files it in the corresponding buckets (or as unkeyed where the value
// resists canonicalization).
func (g *General) indexEntry(method string, e *gentry) {
	slots := g.slots[method]
	if len(slots) == 0 {
		return
	}
	g.ctx = checkCtx{env: core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}}
	if cap(e.keys) >= len(slots) {
		e.keys = e.keys[:len(slots)]
	} else {
		e.keys = make([]core.Value, len(slots))
	}
	for i, s := range slots {
		v, err := s.extract(&g.ctx)
		if err == nil {
			if k, kok := core.MapKey(v); kok {
				e.keys[i] = k
				s.insert(k, e)
				continue
			}
		}
		e.keys[i] = unset
		s.insertUnkeyed(e)
	}
}

// dropFromIndex removes the entry from every key slot it was filed in.
func (g *General) dropFromIndex(method string, e *gentry) {
	for i, s := range g.slots[method] {
		if i >= len(e.keys) {
			break
		}
		s.remove(e.keys[i], e)
	}
}

// ActiveInvocations reports the number of logged active invocations.
func (g *General) ActiveInvocations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nActive
}

// conflict attributes one rejected invocation to the plan's method pair
// and emits a trace event on the invoking transaction's worker track.
func (g *General) conflict(tx *engine.Tx, plan *genPlan) {
	g.tele.Conflict(plan.m1id, plan.m2id)
	if telemetry.TraceEnabled() {
		telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), g.tele.ID(), plan.m1id, plan.m2id)
	}
}

// Stats returns a snapshot of the gatekeeper's work counters, assembled
// from its telemetry detector.
func (g *General) Stats() Stats {
	return statsFromSnapshot(g.tele.Snapshot())
}

// Telemetry returns the gatekeeper's telemetry detector, whose snapshot
// additionally attributes checks and conflicts per method pair.
func (g *General) Telemetry() *telemetry.Detector { return g.tele }

// JournalLen reports the number of journaled live mutations.
func (g *General) JournalLen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.jLen
}

// Sync runs f under the gatekeeper's structure mutex.
func (g *General) Sync(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
}
