package gatekeeper

// This file implements the lattice-cascade detector: instead of picking
// one point on the commutativity lattice per run, every invocation
// walks a pipeline of successively stronger (and costlier) points and
// stops at the first one that proves commutativity.
//
//	stage 1  signature filter   lock-free counting table of key hashes;
//	                            a probe that finds only this invocation's
//	                            own publications admits with zero locks.
//	stage 2  optimistic index   seqlock-style lock-free scans over a flat
//	                            structure-of-arrays slot table, keyed by
//	                            the same disequality decomposition the
//	                            forward gatekeeper indexes on; traversals
//	                            retry on a version-stamp race.
//	stage 3  precise checker    the compiled pair condition, run only on
//	                            genuine candidates (and, exceptionally,
//	                            on a mutex-guarded overflow list).
//
// Soundness of the lock-free admission rests on a publish-then-probe
// protocol: an invocation first publishes its own conflict-key hashes
// (slot table, chains, then filter cells) and only then probes the
// filter. Go's sequentially consistent atomics then guarantee that of
// two racing invocations with colliding keys, at least one observes
// the other and falls through to the precise stages; the slower one
// finds the faster one's slot through the chains because chain pushes
// happen before filter increments.
//
// Agreement with the forward gatekeeper is exact: both execute the
// invocation first and decide afterwards (Forward undoes the effect on
// conflict), both declare a conflict if and only if some live
// invocation of another transaction falsifies the pair condition, and
// both surface checker errors as plain (non-conflict) errors. The
// cascade keeps no logs, so it requires every condition to be
// evaluable from the two invocations alone — pure state functions at
// most (see cascadable).

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/sigfilter"
	"commlat/internal/telemetry"
)

// Version-word protocol for slot state transitions. Bit 0 is a short
// hold excluding concurrent pinners and the releaser; bit 1 marks the
// slot live (published); the counter above detects recycling. Every
// transition changes the word, so an optimistic reader comparing two
// loads (ignoring bit 0) detects any publish or release in between.
const (
	casLocked  uint64 = 1
	casLive    uint64 = 2
	casVerStep uint64 = 4
)

// Group-mode slot words. A batch admission binds all its slots to one
// shared group version cell (a small ring per cascade), so the group
// commit retires the whole batch with a single pin and a single version
// advance instead of one CAS and one store per slot. A bound slot's own
// word carries gmBit, the live bit (so screens treat it as a live
// candidate; the group cell is the authority), the ring index of its
// group cell, and the low counter bits of the cell at binding time.
// Rebinding either word changes the pair, so an optimistic reader that
// validates both the slot word and the group counter detects recycling
// exactly as in direct mode.
const (
	gmBit     uint64 = 1 << 62
	gIdxShift        = 44
	gSnapMask uint64 = 1<<30 - 1
	numGroups        = 64
)

// makeGroupRef builds the slot-word binding for a slot joining the
// group cell gidx whose just-activated word is gw.
func makeGroupRef(gidx uint32, gw uint64) uint64 {
	return gmBit | casLive | uint64(gidx)<<gIdxShift | (gw>>2&gSnapMask)<<2
}

// refGidx extracts the ring index from a group-mode slot word.
func refGidx(v uint64) uint32 { return uint32(v>>gIdxShift) & (numGroups - 1) }

// Group-bound slots also pack their method/key-count meta into the
// binding word (mid in bits 32..39, key count in bits 40..43): batch
// publication skips the per-slot meta store and readers decode it from
// the word they already hold. Group mode therefore requires fewer than
// 256 methods; larger specs always publish direct.
const grpMetaMask uint64 = 0xFFF << 32

// slotMeta decodes a group-bound slot's packed meta into the meta
// column's layout (method id low 16 bits, key count high 16).
func slotMeta(v uint64) uint32 { return uint32(v>>32)&0xFF | uint32(v>>40&0xF)<<16 }

// slotM1 reads a screened slot's method id from its version word
// (group mode) or its meta column (direct mode).
func (c *Cascade) slotM1(s uint32, v uint64) uint16 {
	if v&gmBit != 0 {
		return uint16(v>>32) & 0xFF
	}
	return uint16(c.metas[s].Load())
}

// nilLink terminates intrusive chains; links store index+1.
const nilLink uint32 = 0

// ovTag marks per-transaction chain words that name overflow records
// rather than slot-table slots.
const ovTag uint64 = 1 << 63

// DefaultCascadeSlots sizes the slot table: the largest active window
// the lock-free path can hold before spilling to the overflow list.
const DefaultCascadeSlots = 1 << 13

// maxCascadeKeys bounds how many distinct index keys one method may
// publish (the per-slot key columns are allocated flat).
const maxCascadeKeys = 8

// CascadeConfig tunes a cascade detector.
type CascadeConfig struct {
	// SlotCapacity is the fixed size of the lock-free slot table; 0
	// means DefaultCascadeSlots. Invocations past capacity fall back
	// to a mutex-guarded overflow list — still correct, but every
	// concurrent invocation then takes the slow path, so size for the
	// expected active window.
	SlotCapacity int
	// FilterBits sizes the signature filter at 1<<FilterBits cells; 0
	// means sigfilter.DefaultBits.
	FilterBits int
}

// cascadeKeySlot is one conflict key a method publishes on admission:
// the canonical X term of some pair's disequality guard, compiled
// against the incoming invocation (bound as the first side).
type cascadeKeySlot struct {
	term    core.Term
	extract termFn
	simple  simpleTerm
}

// cascadeGuard is one indexed disequality guard of a pair plan: which
// of the first method's published key columns to probe and the
// compiled evaluator of the guard's probe (Y) term.
type cascadeGuard struct {
	slot  int
	probe termFn
	y     core.Term
}

// simpleTerm is a construction-time classification of key and probe
// terms that need no evaluation context: a plain argument reference,
// the return value, or a constant. The lock-free admission stage
// evaluates these straight off the incoming invocation, skipping the
// pooled checker context — and the large struct copies building one
// implies — entirely.
type simpleTerm struct {
	kind uint8
	idx  int
	cv   core.Value
}

const (
	stNone uint8 = iota // not simple: needs the compiled evaluator
	stArg
	stRet
	stConst
)

// classifySimple classifies t as evaluated against the invocation bound
// on side (First for published keys, Second for probes). Terms off-side
// or with an out-of-signature argument index stay stNone and take the
// compiled route, which reports such errors properly.
func classifySimple(t core.Term, side core.Side, nparams int) simpleTerm {
	switch x := t.(type) {
	case core.ArgTerm:
		if x.Side == side && x.Index >= 0 && x.Index < nparams {
			return simpleTerm{kind: stArg, idx: x.Index}
		}
	case core.RetTerm:
		if x.Side == side {
			return simpleTerm{kind: stRet}
		}
	case core.ConstTerm:
		return simpleTerm{kind: stConst, cv: x.V}
	}
	return simpleTerm{}
}

func (st *simpleTerm) eval(args *core.Vec, ret *core.Value) core.Value {
	switch st.kind {
	case stArg:
		return args.At(st.idx)
	case stRet:
		return *ret
	default:
		return st.cv
	}
}

// fastProbe is one distinct probe term of an incoming method: the
// guard probes of every indexed plan against that method, deduplicated
// by term identity so stage 1 evaluates and hashes each distinct term
// once per invocation rather than once per pair.
type fastProbe struct {
	simple simpleTerm
	probe  termFn
}

// cascadeMethod is the per-method dispatch state the admission path
// reads before touching any shared structure.
type cascadeMethod struct {
	fastProbes []fastProbe
	scanM1s    []uint16 // distinct m1s whose method chains gate stage 1
	// probeKey[i] is the index of this method's published key slot whose
	// simple term equals fastProbes[i]'s (-1 if none): the batch path
	// reuses the key phase's hash instead of re-evaluating the probe.
	probeKey []int8
	// allSimple marks methods whose published keys and probes all
	// evaluate context-free; their invocations run stage 1 with stack
	// state only, no pooled scratch.
	allSimple bool
	// minArgs is the argument count the simple evaluators assume;
	// shorter invocations divert to the compiled route for proper
	// error reporting.
	minArgs int
	// needsMChain marks methods some scan plan walks; only their slots
	// join the per-method chains.
	needsMChain bool
	// selfProbe marks methods whose stage-1 screen reads nothing beyond
	// their own publication: no method-chain gates, and every probe term
	// coincides with a published key. For a batch that is the only live
	// work (and whose keys share no filter cell), such members' probes
	// are tautologies — the batch path admits them without running them.
	selfProbe bool
}

// cascadePlan is the compiled plan for incoming invocations of method
// m2 against active invocations of method m1.
type cascadePlan struct {
	m1, m2 uint16
	check  checkFn
	guards []cascadeGuard
	// scan marks plans with no usable guard decomposition: candidates
	// come from m1's method chain instead of key buckets.
	scan bool
	// never marks constant-false conditions: any live m1 of another
	// transaction is a conflict, no checker run needed.
	never bool
}

// cascadeScratch is the pooled per-invocation working state. The
// compiled-term context's address escapes into term closures, so a
// stack instance would heap-allocate per call; pooling amortizes it.
type cascadeScratch struct {
	ctx    checkCtx
	keys   []uint64     // published key hashes of this invocation
	argBuf []core.Value // deep-copy target for spilled candidate args

	// Latency-attribution state for this admission: precise-check time
	// accumulated by runCheck (subtracted from the slow-path total to
	// isolate the optimistic-index stage) and optimistic retries taken
	// (flight-record retry count).
	preciseNS int64
	retries   uint16
}

var cascadeScratchPool = sync.Pool{New: func() any { return new(cascadeScratch) }}

func (sc *cascadeScratch) reset() {
	sc.ctx = checkCtx{}
	sc.keys = sc.keys[:0]
	for i := range sc.argBuf {
		sc.argBuf[i] = core.Value{}
	}
	sc.argBuf = sc.argBuf[:0]
	sc.preciseNS = 0
	sc.retries = 0
}

// ovRecord is one overflow entry: an active invocation that could not
// enter the slot table (table full, or a conflict key core.MapKey
// cannot canonicalize). Overflow records are invisible to the filter;
// the non-zero count forces every incoming invocation through the slow
// path, which scans them under ovMu.
type ovRecord struct {
	used   bool
	txid   uint64
	mid    uint16
	args   core.Vec
	ret    core.Value
	undo   func()
	txNext uint64
}

// Cascade is the lattice-cascade conflict detector. Unlike Forward and
// General it takes no detector-wide lock on the admission fast path;
// Invoke is safe for concurrent use by transactions on distinct
// goroutines. The guarded structure's own thread-safety is the
// caller's business (the exec closure runs outside any cascade lock).
type Cascade struct {
	spec  *core.Spec
	res   core.StateFn
	names []string
	mids  map[string]uint16

	pubs    [][]cascadeKeySlot // per method: conflict keys published on admit
	byM2    [][]cascadePlan    // per incoming method: plans to probe
	mtab    []cascadeMethod    // per method: fast-path dispatch state
	nparams []int              // per method: declared argument count
	maxKeys int

	filter *sigfilter.Filter

	// Slot table, structure-of-arrays. Fields an optimistic traversal
	// screens on (version, key hashes, owner tx, method/key-count
	// meta, chain links) are atomic; full records (args, ret, tx
	// pointer, undo) are only touched with the slot claimed or pinned,
	// with the version word carrying the happens-before edges.
	capSlots uint32
	//commvet:seqlock protects=txids,metas,hashes,txs,argvs,rets
	ver   []atomic.Uint64
	txids []atomic.Uint64
	metas    []atomic.Uint32 // method id (low 16 bits) | key count (high 16)
	hashes   []atomic.Uint64 // capSlots × maxKeys, slot-major
	nextKey  []atomic.Uint32 // capSlots × maxKeys: per-key bucket links
	nextM    []atomic.Uint32 // per-slot method-chain links
	txs      []*engine.Tx
	argvs    []core.Vec
	rets     []core.Value
	undos    []func()
	txNext   []uint64 // per-tx chain; owner-goroutine access only

	free       *sigfilter.Stack
	heads      []atomic.Uint32 // key-hash bucket heads
	bucketMask uint64
	mheads     []atomic.Uint32 // per-method chain heads

	// Batch slot cache: a group release parks its freed slots here (one
	// short mutex section) and the next batch admission reclaims them,
	// skipping the free stack's per-slot link stores in the steady
	// state where batches pop and push the same run of slots. Bounded;
	// overflow spills to the stack, so serial pops never starve.
	bfMu    sync.Mutex
	bfSlots []uint32

	// Group version ring for batch-bound slots (see gmBit). gSize counts
	// each cell's still-live members (written by the binding thread
	// before its transactions can end, then only under relMu); slotCtr
	// remembers each slot's last direct-mode version word across group
	// episodes, so direct words stay unique per slot. Both are plain:
	// every access is inside an exclusive-ownership window whose handoff
	// already carries the happens-before edge.
	groups  []atomic.Uint64
	gClock  atomic.Uint32
	gSize   []uint32
	slotCtr []uint64

	nActive atomic.Int64

	// relMu serializes chain unlinking (pushes stay lock-free); checkMu
	// serializes compiled-checker runs, whose function-application
	// nodes share compile-time scratch buffers; ovMu guards the
	// overflow list.
	relMu   sync.Mutex
	checkMu sync.Mutex
	ovMu    sync.Mutex
	ovCount atomic.Int64
	ovs     []ovRecord
	ovFree  []uint32

	tele *telemetry.Detector
}

// NewCascade constructs a cascade detector for spec with default
// configuration. It fails if any pair condition needs logging (see
// cascadable).
func NewCascade(spec *core.Spec, res core.StateFn) (*Cascade, error) {
	return NewCascadeConfig(spec, res, CascadeConfig{})
}

// NewCascadeConfig is NewCascade with explicit configuration.
func NewCascadeConfig(spec *core.Spec, res core.StateFn, cfg CascadeConfig) (*Cascade, error) {
	names := spec.Sig.MethodNames()
	c := &Cascade{
		spec:  spec,
		res:   res,
		names: names,
		mids:  make(map[string]uint16, len(names)),
	}
	for i, m := range names {
		c.mids[m] = uint16(i)
	}
	c.nparams = make([]int, len(names))
	for i, m := range names {
		if sig, ok := spec.Sig.Method(m); ok {
			c.nparams[i] = len(sig.Params)
		}
	}
	c.pubs = make([][]cascadeKeySlot, len(names))
	c.byM2 = make([][]cascadePlan, len(names))
	for i1, m1 := range names {
		for i2, m2 := range names {
			cond := spec.Cond(m1, m2)
			if _, ok := cond.(core.TrueCond); ok {
				continue
			}
			if err := cascadable(m1, m2, cond, spec.Pure); err != nil {
				return nil, err
			}
			plan := cascadePlan{m1: uint16(i1), m2: uint16(i2), check: compileCond(cond, nil, res)}
			if _, ok := cond.(core.FalseCond); ok {
				plan.never = true
				plan.scan = true
			} else {
				dec := core.DecomposeDiseq(cond, spec.Pure)
				if dec.Indexable && guardsFnFree(dec.Guards) {
					for _, gd := range dec.Guards {
						plan.guards = append(plan.guards, cascadeGuard{
							slot:  c.pubSlotFor(i1, gd.X),
							probe: compileTerm(gd.Y, nil, res),
							y:     gd.Y,
						})
					}
				} else {
					// Guards with function applications would run the
					// compiled nodes' shared scratch on the lock-free
					// path; keep such pairs (and non-decomposable
					// conditions) on the serialized method-chain scan.
					plan.scan = true
				}
			}
			c.byM2[i2] = append(c.byM2[i2], plan)
		}
	}
	for m, ps := range c.pubs {
		if len(ps) > maxCascadeKeys {
			return nil, fmt.Errorf("gatekeeper: cascade: method %s publishes %d index keys (max %d)", names[m], len(ps), maxCascadeKeys)
		}
		if len(ps) > c.maxKeys {
			c.maxKeys = len(ps)
		}
	}
	if c.maxKeys == 0 {
		c.maxKeys = 1
	}

	c.mtab = make([]cascadeMethod, len(names))
	for i2 := range names {
		mt := &c.mtab[i2]
		mt.allSimple = true
		var seen []string
		for pi := range c.byM2[i2] {
			plan := &c.byM2[i2][pi]
			if plan.scan {
				c.mtab[plan.m1].needsMChain = true
				known := false
				for _, m1 := range mt.scanM1s {
					if m1 == plan.m1 {
						known = true
						break
					}
				}
				if !known {
					mt.scanM1s = append(mt.scanM1s, plan.m1)
				}
				continue
			}
			for _, gd := range plan.guards {
				yk := core.TermKey(gd.y)
				dup := false
				for _, k := range seen {
					if k == yk {
						dup = true
						break
					}
				}
				if dup {
					continue
				}
				seen = append(seen, yk)
				fp := fastProbe{simple: classifySimple(gd.y, core.Second, c.nparams[i2]), probe: gd.probe}
				if fp.simple.kind == stNone {
					mt.allSimple = false
				} else if fp.simple.kind == stArg && fp.simple.idx+1 > mt.minArgs {
					mt.minArgs = fp.simple.idx + 1
				}
				mt.fastProbes = append(mt.fastProbes, fp)
			}
		}
		for i := range c.pubs[i2] {
			st := &c.pubs[i2][i].simple
			if st.kind == stNone {
				mt.allSimple = false
			} else if st.kind == stArg && st.idx+1 > mt.minArgs {
				mt.minArgs = st.idx + 1
			}
		}
		for pi := range mt.fastProbes {
			idx := int8(-1)
			if fs := mt.fastProbes[pi].simple; fs.kind != stNone {
				for j := range c.pubs[i2] {
					if c.pubs[i2][j].simple == fs {
						idx = int8(j)
						break
					}
				}
			}
			mt.probeKey = append(mt.probeKey, idx)
		}
		mt.selfProbe = len(mt.scanM1s) == 0
		for _, pk := range mt.probeKey {
			if pk < 0 {
				mt.selfProbe = false
				break
			}
		}
	}

	capS := cfg.SlotCapacity
	if capS <= 0 {
		capS = DefaultCascadeSlots
	}
	c.capSlots = uint32(capS)
	K := c.maxKeys
	c.ver = make([]atomic.Uint64, capS)
	c.txids = make([]atomic.Uint64, capS)
	c.metas = make([]atomic.Uint32, capS)
	c.hashes = make([]atomic.Uint64, capS*K)
	c.nextKey = make([]atomic.Uint32, capS*K)
	c.nextM = make([]atomic.Uint32, capS)
	c.txs = make([]*engine.Tx, capS)
	c.argvs = make([]core.Vec, capS)
	c.rets = make([]core.Value, capS)
	c.undos = make([]func(), capS)
	c.txNext = make([]uint64, capS)
	c.free = sigfilter.NewStack(capS)
	bf := capS / 2
	if bf > batchSlotCacheCap {
		bf = batchSlotCacheCap
	}
	c.bfSlots = make([]uint32, 0, bf)
	c.groups = make([]atomic.Uint64, numGroups)
	c.gSize = make([]uint32, numGroups)
	c.slotCtr = make([]uint64, capS)

	nb := 64
	for nb < 2*capS {
		nb <<= 1
	}
	c.heads = make([]atomic.Uint32, nb)
	c.bucketMask = uint64(nb - 1)
	c.mheads = make([]atomic.Uint32, len(names))

	bits := cfg.FilterBits
	if bits <= 0 {
		bits = sigfilter.DefaultBits
	}
	c.filter = sigfilter.New(bits)
	c.tele = telemetry.Register("cascade", spec.Sig.Name, names)
	return c, nil
}

// cascadable rejects conditions the cascade cannot evaluate without a
// log: any state-function application not declared pure. (A pure
// function ignores state, so evaluating it live at check time yields
// exactly what a forward gatekeeper's log would have recorded.)
func cascadable(m1, m2 string, cond core.Cond, pure map[string]bool) error {
	for _, ft := range core.FirstStateFns(cond) {
		if !pure[ft.Fn] {
			return fmt.Errorf("gatekeeper: cascade: condition (%s,%s) applies non-pure %s to the first invocation's state; the cascade keeps no logs — use a forward or general gatekeeper", m1, m2, ft.Fn)
		}
	}
	for _, ft := range secondStateFns(cond) {
		if !pure[ft.Fn] {
			return fmt.Errorf("gatekeeper: cascade: condition (%s,%s) applies non-pure %s to the second invocation's state; the cascade keeps no logs — use a forward or general gatekeeper", m1, m2, ft.Fn)
		}
	}
	return nil
}

// guardsFnFree reports whether every guard term is free of function
// applications (whose compiled scratch buffers must not run on the
// lock-free path).
func guardsFnFree(gds []core.DiseqGuard) bool {
	for _, gd := range gds {
		if termHasFn(gd.X) || termHasFn(gd.Y) {
			return false
		}
	}
	return true
}

func termHasFn(t core.Term) bool {
	switch x := t.(type) {
	case core.FnTerm:
		return true
	case core.ArithTerm:
		return termHasFn(x.L) || termHasFn(x.R)
	}
	return false
}

// pubSlotFor interns a guard's X term among method m1's published key
// slots, so several pairs sharing a key publish (and hash) it once.
func (c *Cascade) pubSlotFor(m1 int, x core.Term) int {
	xk := core.TermKey(x)
	for i, s := range c.pubs[m1] {
		if core.TermKey(s.term) == xk {
			return i
		}
	}
	c.pubs[m1] = append(c.pubs[m1], cascadeKeySlot{
		term:    x,
		extract: compileTerm(x, nil, c.res),
		simple:  classifySimple(x, core.First, c.nparams[m1]),
	})
	return len(c.pubs[m1]) - 1
}

// Invoke runs one guarded invocation for tx: execute, publish the
// conflict signature, then walk the cascade until some stage proves
// commutativity against every live invocation of other transactions.
// On conflict the effect is undone, the publication retracted, and an
// engine.Conflict error returned; the verdict is identical to what a
// forward gatekeeper over the same specification would give.
func (c *Cascade) Invoke(tx *engine.Tx, method string, args core.Vec, exec func() Effect) (core.Value, error) {
	mid, ok := c.mids[method]
	if !ok {
		return core.Value{}, fmt.Errorf("gatekeeper: cascade: unknown method %q", method)
	}
	c.tele.IncInvocation()
	eff := exec()

	mt := &c.mtab[mid]
	if !mt.allSimple || args.Len() < mt.minArgs {
		return c.admitGeneral(tx, mid, args, eff)
	}
	t0 := telemetry.LatClock()
	// Simple route: keys and probes evaluate straight off the incoming
	// invocation, so stage 1 runs on stack state alone — no pooled
	// scratch, no checker context, no invocation copies.
	var keys [maxCascadeKeys]uint64
	nk := 0
	for i := range c.pubs[mid] {
		ev := c.pubs[mid][i].simple.eval(&args, &eff.Ret)
		h, kok := ev.KeyHash()
		if !kok {
			return c.admitGeneral(tx, mid, args, eff)
		}
		keys[nk] = h
		nk++
	}
	slot, slotOK := c.free.Pop()
	if !slotOK {
		return c.admitGeneral(tx, mid, args, eff)
	}
	c.publishSlot(slot, tx, mid, &args, eff.Ret, eff.Undo, keys[:nk])
	c.observeActive(c.nActive.Add(1))
	if c.ovCount.Load() == 0 && c.probeFast(mt, &args, eff.Ret, keys[:nk]) {
		c.tele.CascadeFastAdmit()
		c.attach(tx, uint64(slot)+1)
		if obsInstrumented(t0) {
			c.obsFast(tx, mid, t0)
		}
		return eff.Ret, nil
	}
	c.tele.CascadeFilterHit()
	t1 := telemetry.StageObserve(tx.Worker(), telemetry.StageSigFilter, t0)
	sc := cascadeScratchPool.Get().(*cascadeScratch)
	inv := c.bindCtx(sc, mid, args, eff.Ret)
	err := c.slowCheck(tx, mid, inv, sc)
	if obsInstrumented(t1) {
		c.obsSlow(tx, mid, t0, t1, sc, err)
	}
	sc.reset()
	cascadeScratchPool.Put(sc)
	if err != nil {
		if eff.Undo != nil {
			eff.Undo()
		}
		c.retractSlot(slot)
		return eff.Ret, err
	}
	c.attach(tx, uint64(slot)+1)
	return eff.Ret, nil
}

// bindCtx binds the incoming invocation on both sides of the scratch
// checker context: publish extractors read the first side, probe
// evaluators the second, and runCheck swaps a candidate in as Inv1
// (probes never read Inv1 again afterwards for the plan being checked).
func (c *Cascade) bindCtx(sc *cascadeScratch, mid uint16, args core.Vec, ret core.Value) core.Invocation {
	inv := core.MakeInvocation(c.names[mid], args, ret)
	sc.ctx.env.Inv1 = inv
	sc.ctx.env.Inv2 = inv
	sc.ctx.env.S1 = c.res
	sc.ctx.env.S2 = c.res
	return inv
}

// admitGeneral is the scratch-backed admission route for methods with
// context-dependent key or probe terms, unkeyable key values, or a full
// slot table. Semantics match the simple route exactly; only the term
// evaluation mechanism differs.
func (c *Cascade) admitGeneral(tx *engine.Tx, mid uint16, args core.Vec, eff Effect) (core.Value, error) {
	t0 := telemetry.LatClock()
	sc := cascadeScratchPool.Get().(*cascadeScratch)
	defer func() {
		sc.reset()
		cascadeScratchPool.Put(sc)
	}()
	inv := c.bindCtx(sc, mid, args, eff.Ret)

	sc.keys = sc.keys[:0]
	keyable := true
	for i := range c.pubs[mid] {
		v, err := c.pubs[mid][i].extract(&sc.ctx)
		if err != nil {
			keyable = false
			break
		}
		k, kok := core.MapKey(v)
		if !kok {
			keyable = false
			break
		}
		sc.keys = append(sc.keys, k.Hash())
	}

	var slot uint32
	slotOK := false
	if keyable {
		slot, slotOK = c.free.Pop()
	}
	if !slotOK {
		return c.admitOverflow(tx, mid, inv, eff, sc)
	}
	c.publishSlot(slot, tx, mid, &args, eff.Ret, eff.Undo, sc.keys)
	c.observeActive(c.nActive.Add(1))

	if c.ovCount.Load() == 0 && c.probeCtx(&c.mtab[mid], sc) {
		c.tele.CascadeFastAdmit()
		c.attach(tx, uint64(slot)+1)
		if obsInstrumented(t0) {
			c.obsFast(tx, mid, t0)
		}
		return eff.Ret, nil
	}
	c.tele.CascadeFilterHit()
	t1 := telemetry.StageObserve(tx.Worker(), telemetry.StageSigFilter, t0)
	err := c.slowCheck(tx, mid, inv, sc)
	if obsInstrumented(t1) {
		c.obsSlow(tx, mid, t0, t1, sc, err)
	}
	if err != nil {
		if eff.Undo != nil {
			eff.Undo()
		}
		c.retractSlot(slot)
		return eff.Ret, err
	}
	c.attach(tx, uint64(slot)+1)
	return eff.Ret, nil
}

// publishSlot fills a claimed slot and makes it discoverable: record
// fields, version goes live, chain pushes, then filter increments —
// in that order, so anyone who sees the filter cells can find the slot.
func (c *Cascade) publishSlot(slot uint32, tx *engine.Tx, mid uint16, args *core.Vec, ret core.Value, undo func(), keys []uint64) {
	K := c.maxKeys
	v := c.ver[slot].Load() // free (bits 00); we are the only claimant
	if v&gmBit != 0 {
		// The slot last retired with its whole batch group: its word is a
		// stale binding to a dead cell. Resume from the direct counter.
		v = c.slotCtr[slot]
	}
	c.txs[slot] = tx
	c.argvs[slot] = *args
	c.rets[slot] = ret
	c.undos[slot] = undo
	c.txids[slot].Store(tx.ID())
	c.metas[slot].Store(uint32(mid) | uint32(len(keys))<<16)
	base := int(slot) * K
	for j, h := range keys {
		c.hashes[base+j].Store(h)
	}
	c.ver[slot].Store(v + casVerStep + casLive)
	if c.mtab[mid].needsMChain {
		c.pushChain(&c.mheads[mid], &c.nextM[slot], slot+1)
	}
	for j, h := range keys {
		c.pushChain(&c.heads[h&c.bucketMask], &c.nextKey[base+j], uint32(base+j)+1)
	}
	for _, h := range keys {
		c.filter.Add(h)
	}
}

func (c *Cascade) pushChain(head, next *atomic.Uint32, link uint32) {
	for {
		old := head.Load()
		next.Store(old)
		if head.CompareAndSwap(old, link) {
			return
		}
	}
}

// probeFast is stage 1 for simple methods: admit if every pair's
// evidence of absence is conclusive — scan-plan chains empty, every
// probe key hashable, and every probed filter cell holding only this
// invocation's own publications.
func (c *Cascade) probeFast(mt *cascadeMethod, args *core.Vec, ret core.Value, keys []uint64) bool {
	for _, m1 := range mt.scanM1s {
		if c.mheads[m1].Load() != nilLink {
			return false
		}
	}
	for i := range mt.fastProbes {
		ev := mt.fastProbes[i].simple.eval(args, &ret)
		h, kok := ev.KeyHash()
		if !kok {
			return false
		}
		var self int32
		for _, kh := range keys {
			if c.filter.SameCell(kh, h) {
				self++
			}
		}
		if c.filter.Count(h) > self {
			return false
		}
	}
	return true
}

// probeCtx is probeFast for the scratch-backed route: the same stage-1
// verdict, with probe terms evaluated through their compiled forms
// against the bound checker context.
func (c *Cascade) probeCtx(mt *cascadeMethod, sc *cascadeScratch) bool {
	for _, m1 := range mt.scanM1s {
		if c.mheads[m1].Load() != nilLink {
			return false
		}
	}
	for i := range mt.fastProbes {
		v, err := mt.fastProbes[i].probe(&sc.ctx)
		if err != nil {
			return false
		}
		k, kok := core.MapKey(v)
		if !kok {
			return false
		}
		h := k.Hash()
		var self int32
		for _, kh := range sc.keys {
			if c.filter.SameCell(kh, h) {
				self++
			}
		}
		if c.filter.Count(h) > self {
			return false
		}
	}
	return true
}

// slowCheck is stages 2–3: discover candidates through lock-free
// optimistic chain scans (retrying on version-stamp races), confirm
// each against the live record under a pin, and run the precise
// compiled checker on the survivors.
func (c *Cascade) slowCheck(tx *engine.Tx, mid uint16, inv core.Invocation, sc *cascadeScratch) error {
	for i := range c.byM2[mid] {
		plan := &c.byM2[mid][i]
		if plan.scan {
			if err := c.scanMethodChain(tx, plan, inv, sc); err != nil {
				return err
			}
			continue
		}
		fallback := false
		for _, gd := range plan.guards {
			v, err := gd.probe(&sc.ctx)
			if err != nil {
				fallback = true
				break
			}
			k, kok := core.MapKey(v)
			if !kok {
				fallback = true
				break
			}
			if err := c.scanBucket(tx, plan, gd.slot, k.Hash(), inv, sc); err != nil {
				return err
			}
		}
		if fallback {
			// A probe key the index cannot canonicalize collides with
			// everything — scan the whole method chain, exactly as the
			// forward gatekeeper's index fallback does.
			if err := c.scanMethodChain(tx, plan, inv, sc); err != nil {
				return err
			}
		}
	}
	if c.ovCount.Load() != 0 {
		if err := c.checkOverflow(tx, mid, inv, sc); err != nil {
			return err
		}
	}
	return nil
}

// scanBucket walks one key bucket lock-free looking for live slots of
// plan.m1 whose keySlot-th hash equals h. After following a link it
// re-reads the slot's version; a recycle (counter or live-bit change)
// means the link may now belong to a different chain, so the walk
// restarts from the head. Pin toggles (bit 0) do not restart.
func (c *Cascade) scanBucket(tx *engine.Tx, plan *cascadePlan, keySlot int, h uint64, inv core.Invocation, sc *cascadeScratch) error {
	c.tele.CascadeScan()
	myID := tx.ID()
	K := c.maxKeys
restart:
	link := c.heads[h&c.bucketMask].Load()
	for link != nilLink {
		li := int(link - 1)
		s := uint32(li / K)
		v := c.ver[s].Load()
		if v&casLive != 0 && li%K == keySlot &&
			c.hashes[li].Load() == h && c.txids[s].Load() != myID &&
			c.slotM1(s, v) == plan.m1 {
			if err := c.checkCandidate(tx, s, v, plan, li, h, inv, sc); err != nil {
				return err
			}
		}
		next := c.nextKey[li].Load()
		if !c.slotStable(s, v) {
			c.tele.CascadeRetry()
			sc.retries++
			goto restart
		}
		link = next
	}
	return nil
}

// slotStable reports whether a slot visited at version word v has not
// been released or recycled since: for direct slots the word itself is
// unchanged (bar the pin bit); for group-bound slots both the word and
// the group cell's counter still match — the group commit advances the
// cell, and an individual retraction rewrites the slot word, so either
// exit invalidates the visit. Walkers rely on this before trusting a
// visited slot's chain link.
func (c *Cascade) slotStable(s uint32, v uint64) bool {
	if v&gmBit != 0 {
		if c.ver[s].Load() != v {
			return false
		}
		gw := c.groups[refGidx(v)].Load()
		return (gw>>2)&gSnapMask == (v>>2)&gSnapMask
	}
	return (c.ver[s].Load()^v)&^casLocked == 0
}

// scanMethodChain walks every live slot of plan.m1, for plans without
// an indexable guard decomposition (or with an unkeyable probe value).
func (c *Cascade) scanMethodChain(tx *engine.Tx, plan *cascadePlan, inv core.Invocation, sc *cascadeScratch) error {
	c.tele.CascadeScan()
	myID := tx.ID()
restart:
	link := c.mheads[plan.m1].Load()
	for link != nilLink {
		s := link - 1
		v := c.ver[s].Load()
		if v&casLive != 0 && c.txids[s].Load() != myID &&
			c.slotM1(s, v) == plan.m1 {
			if err := c.checkCandidate(tx, s, v, plan, -1, 0, inv, sc); err != nil {
				return err
			}
		}
		next := c.nextM[s].Load()
		if !c.slotStable(s, v) {
			c.tele.CascadeRetry()
			sc.retries++
			goto restart
		}
		link = next
	}
	return nil
}

// checkCandidate pins a screened slot, re-verifies it under the pin,
// copies the candidate invocation out, unpins, and runs the precise
// check. li names the hash column to re-verify (-1 for method-chain
// candidates, which have no key constraint).
func (c *Cascade) checkCandidate(tx *engine.Tx, s uint32, seen uint64, plan *cascadePlan, li int, h uint64, inv core.Invocation, sc *cascadeScratch) error {
	clean := seen &^ casLocked
	gpin := seen&gmBit != 0
	var gidx uint32
	var gclean uint64
	if gpin {
		// Group-bound slot: the pin lives on the group cell. Holding it
		// excludes the group commit and any individual retraction of a
		// member, so every member's record is frozen under the pin.
		gidx = refGidx(seen)
		for spins := 0; ; spins++ {
			gw := c.groups[gidx].Load()
			if (gw>>2)&gSnapMask != (seen>>2)&gSnapMask || gw&casLive == 0 {
				return nil // group retired or cell rebound: not a candidate
			}
			gclean = gw &^ casLocked
			if gw&casLocked == 0 && c.groups[gidx].CompareAndSwap(gclean, gclean|casLocked) {
				break
			}
			c.tele.CascadeRetry()
			sc.retries++
			if spins&63 == 63 {
				runtime.Gosched()
			}
		}
		if c.ver[s].Load() != seen { // member individually retracted meanwhile
			c.groups[gidx].Store(gclean)
			return nil
		}
	} else {
		for spins := 0; ; spins++ {
			if c.ver[s].CompareAndSwap(clean, clean|casLocked) {
				break
			}
			if v := c.ver[s].Load(); (v^clean)&^casLocked != 0 {
				return nil // recycled or released: no longer a candidate
			}
			c.tele.CascadeRetry()
			sc.retries++
			if spins&63 == 63 {
				runtime.Gosched()
			}
		}
	}
	// Screened fields can have changed between the screen and the pin
	// only via a full release/republish cycle, which the version CAS
	// above excludes; still, the owner tx check is what makes the
	// screen-to-pin window sound, so re-verify everything cheap.
	holder := c.txids[s].Load()
	if holder == tx.ID() || c.slotM1(s, seen) != plan.m1 ||
		(li >= 0 && c.hashes[li].Load() != h) {
		if gpin {
			c.groups[gidx].Store(gclean)
		} else {
			c.ver[s].Store(clean)
		}
		return nil
	}
	inv1 := core.MakeInvocation(c.names[plan.m1], c.argvs[s], c.rets[s])
	spilled := inv1.Args.Len() > core.MaxInlineArgs
	if spilled {
		// The copied Vec shares the slot's pooled spill slice, which a
		// release may recycle the moment we unpin: deep-copy now.
		sc.argBuf = c.argvs[s].CopySlice(sc.argBuf[:0])
	}
	if gpin { // unpin
		c.groups[gidx].Store(gclean)
	} else {
		c.ver[s].Store(clean)
	}
	if spilled {
		inv1 = core.NewInvocation(inv1.Method, sc.argBuf, inv1.Ret)
		defer inv1.Args.Release()
	}
	return c.runCheck(tx, plan, inv1, inv, holder, sc)
}

// runCheck is stage 3: the pair's precise compiled condition.
func (c *Cascade) runCheck(tx *engine.Tx, plan *cascadePlan, inv1, inv2 core.Invocation, holder uint64, sc *cascadeScratch) error {
	c.tele.Check(plan.m1, plan.m2)
	if plan.never {
		return c.conflict(tx, plan, inv1, inv2, holder)
	}
	pt := telemetry.LatClock()
	saved := sc.ctx.env.Inv1
	sc.ctx.env.Inv1 = inv1
	c.checkMu.Lock()
	ok, err := plan.check(&sc.ctx)
	c.checkMu.Unlock()
	sc.ctx.env.Inv1 = saved
	if pt != 0 {
		// Stage 3: each precise evaluation lands in the histogram on its
		// own; the accumulated sum lets the caller subtract it back out
		// of the optimistic-index stage.
		sc.preciseNS += telemetry.StageObserve(tx.Worker(), telemetry.StagePrecise, pt) - pt
	}
	if err != nil {
		return fmt.Errorf("gatekeeper: cascade: checking %s against active %s: %w", inv2.Method, inv1.Method, err)
	}
	if !ok {
		return c.conflict(tx, plan, inv1, inv2, holder)
	}
	return nil
}

func (c *Cascade) conflict(tx *engine.Tx, plan *cascadePlan, inv1, inv2 core.Invocation, holder uint64) error {
	c.tele.Conflict(plan.m1, plan.m2)
	if telemetry.TraceEnabled() {
		telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), c.tele.ID(), plan.m1, plan.m2)
	}
	return engine.Conflict("cascade: %s%v does not commute with active %s%v of tx %d",
		inv2.Method, inv2.Args, inv1.Method, inv1.Args, holder)
}

// checkOverflow runs the precise check against every live overflow
// record of another transaction.
func (c *Cascade) checkOverflow(tx *engine.Tx, mid uint16, inv core.Invocation, sc *cascadeScratch) error {
	myID := tx.ID()
	c.ovMu.Lock()
	defer c.ovMu.Unlock()
	for i := range c.ovs {
		r := &c.ovs[i]
		if !r.used || r.txid == myID {
			continue
		}
		for pi := range c.byM2[mid] {
			plan := &c.byM2[mid][pi]
			if plan.m1 != r.mid {
				continue
			}
			inv1 := core.MakeInvocation(c.names[r.mid], r.args, r.ret)
			if err := c.runCheck(tx, plan, inv1, inv, r.txid, sc); err != nil {
				return err
			}
		}
	}
	return nil
}

// admitOverflow handles invocations the slot table cannot hold. The
// record is published (under ovMu, with the count as its "signature")
// before the slow-path probe, preserving the at-least-one-sees
// guarantee against concurrent fast-path invocations, whose stage-1
// admission requires a zero overflow count.
func (c *Cascade) admitOverflow(tx *engine.Tx, mid uint16, inv core.Invocation, eff Effect, sc *cascadeScratch) (core.Value, error) {
	c.tele.CascadeFallback()
	c.ovMu.Lock()
	var idx uint32
	if n := len(c.ovFree); n > 0 {
		idx = c.ovFree[n-1]
		c.ovFree = c.ovFree[:n-1]
	} else {
		c.ovs = append(c.ovs, ovRecord{})
		idx = uint32(len(c.ovs) - 1)
	}
	c.ovs[idx] = ovRecord{used: true, txid: tx.ID(), mid: mid, args: inv.Args, ret: inv.Ret, undo: eff.Undo}
	c.ovCount.Add(1)
	c.ovMu.Unlock()
	c.observeActive(c.nActive.Add(1))

	if err := c.slowCheck(tx, mid, inv, sc); err != nil {
		if eff.Undo != nil {
			eff.Undo()
		}
		c.retractOverflow(idx)
		return eff.Ret, err
	}
	c.attach(tx, ovTag|uint64(idx+1))
	return eff.Ret, nil
}

// attach threads a freshly admitted record onto the transaction's
// chain, registering the cascade's undo and release hooks on first
// contact (one registration per transaction, allocation-free).
func (c *Cascade) attach(tx *engine.Tx, word uint64) {
	var p *uint64
	if tx.OnEnd(c) {
		// End owner: the chain head lives in the transaction's end word —
		// no attachment scan here, no attachment clear at commit.
		p = tx.EndWord()
	} else {
		var isNew bool
		p, isNew = tx.Attach(c)
		if isNew {
			tx.OnUndoer(c)
			tx.OnReleaser(c)
		}
	}
	if word&ovTag == 0 {
		c.txNext[word-1] = *p
	} else {
		c.ovMu.Lock()
		c.ovs[(word&^ovTag)-1].txNext = *p
		c.ovMu.Unlock()
	}
	*p = word
}

// UndoTx rolls back the transaction's cascade-guarded effects, newest
// first (the chain is in prepend order). The records stay live —
// other transactions must keep conflicting with them — until ReleaseTx
// frees them after the undo phase.
//
// The cascade registers itself once per transaction, so its undo
// actions run contiguously at the position of the transaction's first
// cascade invocation in the engine's LIFO hook order. A transaction
// interleaving cascade invocations with other undo-hooked mutations
// of the same state would see those undos reordered relative to a
// per-invocation-hook detector; transactions in this codebase touch
// disjoint state per detector, where the order is immaterial.
// txWord locates the transaction's cascade chain head: the Attach
// entry when the cascade lost the end-owner slot (attach's fallback
// registered hooks there), the end word otherwise. Lookup order
// matters — an Attach entry, when present, is always the cascade's.
func (c *Cascade) txWord(tx *engine.Tx) *uint64 {
	if p := tx.AttachedWord(c); p != nil {
		return p
	}
	return tx.EndWord()
}

func (c *Cascade) UndoTx(tx *engine.Tx) {
	p := c.txWord(tx)
	for w := *p; w != 0; {
		if w&ovTag == 0 {
			s := uint32(w - 1)
			if u := c.undos[s]; u != nil {
				c.undos[s] = nil
				u()
			}
			w = c.txNext[s]
		} else {
			c.ovMu.Lock()
			r := &c.ovs[(w&^ovTag)-1]
			u := r.undo
			r.undo = nil
			next := r.txNext
			c.ovMu.Unlock()
			if u != nil {
				u()
			}
			w = next
		}
	}
}

// ReleaseTx frees every record the transaction published: one relMu
// acquisition batches all the unlinking and signature retraction at
// commit (or after undo at abort), instead of paying the release
// fences per invocation.
func (c *Cascade) ReleaseTx(tx *engine.Tx) {
	p := c.txWord(tx)
	w := *p
	if w == 0 {
		return
	}
	t0 := telemetry.LatClock()
	*p = 0
	c.relMu.Lock()
	for w != 0 {
		if w&ovTag == 0 {
			s := uint32(w - 1)
			next := c.txNext[s]
			c.releaseSlotLocked(s)
			w = next
		} else {
			c.ovMu.Lock()
			i := (w &^ ovTag) - 1
			r := &c.ovs[i]
			next := r.txNext
			r.args.Release()
			*r = ovRecord{}
			c.ovFree = append(c.ovFree, uint32(i))
			c.ovCount.Add(-1)
			c.ovMu.Unlock()
			c.nActive.Add(-1)
			w = next
		}
	}
	c.relMu.Unlock()
	telemetry.StageObserve(tx.Worker(), telemetry.StageCommit, t0)
}

// retractSlot withdraws a publication whose invocation was rejected
// (the record never joined a transaction chain).
func (c *Cascade) retractSlot(slot uint32) {
	c.relMu.Lock()
	c.releaseSlotLocked(slot)
	c.relMu.Unlock()
}

// retractOverflow withdraws a rejected overflow publication.
func (c *Cascade) retractOverflow(idx uint32) {
	c.ovMu.Lock()
	r := &c.ovs[idx]
	r.args.Release()
	*r = ovRecord{}
	c.ovFree = append(c.ovFree, idx)
	c.ovCount.Add(-1)
	c.ovMu.Unlock()
	c.nActive.Add(-1)
}

// releaseSlotLocked frees one live slot: waits out pinners by taking
// the version lock, unlinks the chains, retracts the filter cells,
// zeroes the record and recycles the slot. Caller holds relMu.
func (c *Cascade) releaseSlotLocked(s uint32) {
	c.releaseSlotCore(s)
	c.free.Push(s)
	c.nActive.Add(-1)
}

// releaseSlotCore is releaseSlotLocked without the free-stack push and
// active-count decrement, so batch releases can splice all their freed
// slots back with one stack operation and one counter update. Caller
// holds relMu and must return the slot to the stack itself. Group-bound
// slots (a batch member retired alone: a split suffix, a hand-committed
// transaction) pin their group cell for the teardown, rewrite the slot
// word back to direct mode, and retire the cell with the last member.
func (c *Cascade) releaseSlotCore(s uint32) {
	if v := c.ver[s].Load(); v&gmBit != 0 {
		gidx := refGidx(v)
		var gclean uint64
		for spins := 0; ; spins++ {
			gw := c.groups[gidx].Load()
			gclean = gw &^ casLocked
			if gw&casLocked == 0 && c.groups[gidx].CompareAndSwap(gclean, gclean|casLocked) {
				break
			}
			if spins&63 == 63 {
				runtime.Gosched()
			}
		}
		c.teardownSlot(s, slotMeta(v))
		w := c.slotCtr[s] + casVerStep
		c.slotCtr[s] = w
		c.ver[s].Store(w) // direct-mode free word: unbinds from the group
		c.gSize[gidx]--
		if c.gSize[gidx] == 0 {
			c.groups[gidx].Store((gclean &^ casLive) + casVerStep)
		} else {
			c.groups[gidx].Store(gclean)
		}
		return
	}
	var v uint64
	for spins := 0; ; spins++ {
		v = c.ver[s].Load()
		if v&casLocked == 0 && c.ver[s].CompareAndSwap(v, v|casLocked) {
			break
		}
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
	c.teardownSlot(s, c.metas[s].Load())
	w := (v &^ (casLocked | casLive)) + casVerStep
	c.slotCtr[s] = w
	c.ver[s].Store(w)
}

// teardownSlot unlinks a slot's chains, retracts its filter cells and
// zeroes its record; mv is the slot's meta word (read from the meta
// column or decoded from a group binding, by mode). Caller holds relMu
// and excludes concurrent pinners (slot pin or group pin, by mode); the
// version or group word advance that makes the teardown visible is the
// caller's.
//
//commvet:ignore the version advance that publishes this teardown is deliberately the caller's (retireSlot / group retirement)
func (c *Cascade) teardownSlot(s uint32, mv uint32) {
	K := c.maxKeys
	base := int(s) * K
	for j := 0; j < int(mv>>16); j++ {
		h := c.hashes[base+j].Load()
		c.unlinkKey(&c.heads[h&c.bucketMask], uint32(base+j)+1)
		c.filter.Remove(h)
	}
	if c.mtab[uint16(mv)].needsMChain {
		c.unlinkMethod(&c.mheads[uint16(mv)], s+1)
	}
	c.argvs[s].Release()
	c.rets[s] = core.Value{}
	c.txs[s] = nil
	c.undos[s] = nil
	c.txNext[s] = 0
}

// unlinkKey removes a link from a key bucket chain. Interior next
// fields are only written by unlinkers (serialized under relMu) and by
// owners before publication, so a CAS can fail only at the head, where
// concurrent lock-free pushes land; the walk then retries.
func (c *Cascade) unlinkKey(head *atomic.Uint32, target uint32) {
	for {
		prev := head
		cur := prev.Load()
		for cur != nilLink && cur != target {
			prev = &c.nextKey[cur-1]
			cur = prev.Load()
		}
		if cur == nilLink {
			return
		}
		if prev.CompareAndSwap(cur, c.nextKey[cur-1].Load()) {
			return
		}
	}
}

// unlinkMethod removes a slot from its method chain (links are slot+1).
func (c *Cascade) unlinkMethod(head *atomic.Uint32, target uint32) {
	for {
		prev := head
		cur := prev.Load()
		for cur != nilLink && cur != target {
			prev = &c.nextM[cur-1]
			cur = prev.Load()
		}
		if cur == nilLink {
			return
		}
		if prev.CompareAndSwap(cur, c.nextM[cur-1].Load()) {
			return
		}
	}
}

func (c *Cascade) observeActive(n int64) {
	c.tele.ObserveActive(int(n))
}

// ActiveInvocations reports how many invocations are currently live
// (slot table plus overflow).
func (c *Cascade) ActiveInvocations() int { return int(c.nActive.Load()) }

// Stats returns the detector's counters (cascade stages included).
func (c *Cascade) Stats() Stats { return statsFromSnapshot(c.tele.Snapshot()) }

// Telemetry exposes the detector's telemetry handle.
func (c *Cascade) Telemetry() *telemetry.Detector { return c.tele }
