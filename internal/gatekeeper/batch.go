package gatekeeper

// This file adds the batched admission path to the lattice cascade:
// instead of walking every invocation through the pipeline one at a
// time — each paying its own filter probe, read-section entry, slot
// pop and release fence — a batch of invocations shares all of that
// read-side work and commits as a group.
//
// Semantics. A batch of ops is admitted as the longest prefix whose
// verdicts provably equal running the same ops one at a time, each
// transaction committing before the next begins. The pipeline:
//
//	publish   all effects execute in batch order (one representation
//	          lock for the run), every member's conflict keys publish
//	          into slots, chains and filter cells — all publications
//	          complete before any member probes, one publish/probe
//	          phase boundary instead of a fence per op.
//	probe     the batch packs its combined conflict signature (the
//	          16-bit filter-cell tags of every published key, four per
//	          64-bit word) and screens each member's probe cells
//	          against it with SWAR compares; a filter count equal to
//	          the batch's own contribution proves no external
//	          publication shares the cell.
//	pairs     members whose cells collide only with *earlier* batch
//	          members run the precise pair condition directly on the
//	          in-hand invocations (no chain walk, no pinning): an
//	          O(batch²/64) bitset pass over the peer sets. A
//	          non-commuting earlier member is a batch *boundary*, not a
//	          conflict — serially the earlier op's transaction would
//	          have committed first and both sides would admit.
//	slow      members whose cells count external publications (or that
//	          race an overflow record, or whose scan-plan chains are
//	          non-empty) fall back to the ordinary precise slow check,
//	          sharing one pooled checker context for the whole batch.
//	          Any refusal there also bounds the admitted prefix: the
//	          serial re-run reproduces the exact verdict.
//
// Everything at or past the boundary has its effect undone
// (newest-first) and its publication retracted — one release-mutex
// acquisition, one free-stack splice — and is left for the caller to
// re-run through the serial path after group-committing the prefix.
// Under-admission is always sound: it only trades batching for the
// serial path's verdicts.
//
// Soundness against concurrent external invocations is the cascade's
// usual publish-then-probe argument, batch-wide: every member publishes
// before any member probes, so of two racing conflicting parties at
// least one observes the other. A suffix member that published and was
// then retracted may transiently abort an external racer — the same
// optimistic window a serial publish-then-reject has.

import (
	"runtime"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/sigfilter"
	"commlat/internal/telemetry"
)

// BatchOp is one invocation of an admission batch. Tx, Method and Args
// are inputs; Ret and Undo are outputs of the batch's execution phase
// (filled by the exec callback passed to InvokeBatch). After
// InvokeBatch returns p, ops[:p] are admitted with Ret holding their
// results; ops[p:] have been undone and must be re-run through the
// serial path once the prefix's transactions have committed.
type BatchOp struct {
	Tx     *engine.Tx
	Method string
	Args   core.Vec

	Ret  core.Value
	Undo func()
}

// batchScratch is the pooled working state of one batch admission (and,
// reusing its slot buffer, of one batch release).
type batchScratch struct {
	mids  []uint16
	slots []uint32
	flags []bool
	nk    []uint8
	keys  []uint64 // op-major key hashes, stride = cascade maxKeys

	// The combined conflict signature: one entry per published key, in
	// publication order — its exact filter cell, its owning batch
	// position, and the cells' low 16 bits packed four per word.
	dkCell  []uint32
	dkOwner []uint16
	tags    []uint64

	// Exact cell-dedup table (open addressing, epoch-stamped so it is
	// never cleared between batches): maps a filter cell to the one
	// batch key occupying it, or dupKi when several do. When no cell is
	// shared — the common case for well-spread keys — every probe
	// resolves its own-batch contribution with one table lookup and the
	// O(batch²/64) SWAR pass is provably vacuous, so it is skipped.
	cellTab   []uint64 // epoch<<32 | cell
	cellKi    []uint16 // key index into dkCell/dkOwner, or dupKi
	cellEpoch uint32

	peers []uint64 // per-probe peer bitset, one bit per batch position
	freed []uint32 // batch-release slot buffer
}

const (
	cellTabSize = 256 // power of two; small enough to stay cache-resident
	cellTabLoad = 128 // max keys before the table is skipped entirely
	dupKi       = 0xFFFF
)

var batchScratchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// InvokeBatch runs a batch of guarded invocations: exec executes the
// effects of the structurally batchable prefix it is handed (filling
// each op's Ret and Undo, in order, typically under one acquisition of
// the structure's representation lock), and the cascade admits the
// longest prefix whose verdicts match the serial path. It returns that
// prefix length p: ops[:p] are admitted and attached to their (still
// active) transactions; ops[p:] have had any effects undone and
// publications retracted, untouched otherwise.
//
// To preserve verdict-for-verdict agreement with one-at-a-time
// execution, the caller must commit the prefix's transactions (see
// engine.CommitBatch) before re-running ops[p:] serially.
func (c *Cascade) InvokeBatch(ops []BatchOp, exec func(run []BatchOp)) int {
	if len(ops) == 0 {
		return 0
	}
	bs := batchScratchPool.Get().(*batchScratch)
	p := c.batchAdmit(ops, exec, bs)
	batchScratchPool.Put(bs)
	switch {
	case p == len(ops):
		c.tele.BatchWhole()
	case p == 0:
		c.tele.BatchSerialized()
	default:
		c.tele.BatchSplit()
	}
	c.tele.IncInvocationN(p) // serial re-runs count themselves
	return p
}

// BatchCheck is the admission core over already-executed effects: every
// op's Ret and Undo must be filled. Exposed for callers that interleave
// execution and admission themselves; InvokeBatch is the usual entry.
func (c *Cascade) BatchCheck(ops []BatchOp) int {
	return c.InvokeBatch(ops, func([]BatchOp) {})
}

func (c *Cascade) batchAdmit(ops []BatchOp, exec func(run []BatchOp), bs *batchScratch) int {
	// Structural prefix: methods the context-free fast path can key at
	// all. The first op needing the compiled route (or unknown — the
	// serial path owns that error) bounds the batch.
	n0 := 0
	bs.mids = growSlice(bs.mids, len(ops))
	var lastMethod string
	var lastMid uint16
	haveLast := false
	allSelf := true
	for ; n0 < len(ops); n0++ {
		op := &ops[n0]
		var mid uint16
		if haveLast && op.Method == lastMethod {
			mid = lastMid // batches are usually method-runs: skip the map
		} else {
			var ok bool
			mid, ok = c.mids[op.Method]
			if !ok {
				break
			}
			lastMethod, lastMid, haveLast = op.Method, mid, true
		}
		mt := &c.mtab[mid]
		if !mt.allSimple || op.Args.Len() < mt.minArgs {
			break
		}
		if !mt.selfProbe {
			allSelf = false
		}
		bs.mids[n0] = mid
	}
	if n0 == 0 {
		return 0
	}

	// Execution phase: all effects of the batchable prefix, in order.
	exec(ops[:n0])

	// Key phase: evaluate and hash every member's conflict keys, and
	// build the combined signature's exact-cell side. An unkeyable key
	// bounds the batch (its op and everything after re-run serially).
	K := c.maxKeys
	bs.keys = growSlice(bs.keys, n0*K)
	bs.nk = growSlice(bs.nk, n0)
	bs.dkCell = bs.dkCell[:0]
	bs.dkOwner = bs.dkOwner[:0]
	n := n0
keyLoop:
	for i := 0; i < n0; i++ {
		op := &ops[i]
		pubs := c.pubs[bs.mids[i]]
		start := len(bs.dkCell)
		nk := 0
		for k := range pubs {
			ev := pubs[k].simple.eval(&op.Args, &op.Ret)
			h, kok := ev.KeyHash()
			if !kok {
				bs.dkCell = bs.dkCell[:start]
				bs.dkOwner = bs.dkOwner[:start]
				n = i
				break keyLoop
			}
			bs.keys[i*K+nk] = h
			bs.dkCell = append(bs.dkCell, c.filter.Cell(h))
			bs.dkOwner = append(bs.dkOwner, uint16(i))
			nk++
		}
		bs.nk[i] = uint8(nk)
	}

	// Slot phase: the batch cache (slots parked by the last group
	// release) plus at most one free-stack operation claims the whole
	// batch's slots; a shortfall bounds the batch at what the table can
	// hold.
	if n > 0 {
		bs.slots = growSlice(bs.slots, n)
		m := 0
		c.bfMu.Lock()
		if k := len(c.bfSlots); k > 0 {
			t := k
			if t > n {
				t = n
			}
			copy(bs.slots[:t], c.bfSlots[k-t:])
			c.bfSlots = c.bfSlots[:k-t]
			m = t
		}
		c.bfMu.Unlock()
		if m < n {
			m += c.free.PopN(bs.slots[m:n])
		}
		if m < n {
			total := 0
			for i := 0; i < m; i++ {
				total += int(bs.nk[i])
			}
			bs.dkCell = bs.dkCell[:total]
			bs.dkOwner = bs.dkOwner[:total]
			n = m
		}
	}
	if n == 0 {
		for i := n0 - 1; i >= 0; i-- {
			if u := ops[i].Undo; u != nil {
				ops[i].Undo = nil
				u()
			}
		}
		return 0
	}

	// Publish phase: every member's slot, chains and filter cells go
	// live before any member probes (publishSlot's batch mirror, with
	// the per-call return-value copies hoisted out of the loop). The
	// batch binds its slots to one group version cell — activated live
	// before the first slot becomes findable — so the group commit can
	// retire them all with one version advance; when the ring is
	// exhausted the slots publish in ordinary direct mode.
	tpub := telemetry.LatClock()
	gidx, gref, grouped := c.acquireGroup()
	for i := 0; i < n; i++ {
		op := &ops[i]
		slot := bs.slots[i]
		mid := bs.mids[i]
		keys := bs.keys[i*K : i*K+int(bs.nk[i])]
		v := c.ver[slot].Load() // free (bits 00); we are the only claimant
		c.txs[slot] = op.Tx
		c.argvs[slot] = op.Args
		c.rets[slot] = op.Ret
		c.undos[slot] = op.Undo
		c.txids[slot].Store(op.Tx.ID())
		base := int(slot) * K
		if grouped {
			if v&gmBit == 0 {
				c.slotCtr[slot] = v // save the direct counter across the episode
			}
			// Meta rides in the binding word; no meta-column store.
			c.ver[slot].Store(gref | uint64(mid)<<32 | uint64(len(keys))<<40)
		} else {
			if v&gmBit != 0 {
				v = c.slotCtr[slot]
			}
			c.metas[slot].Store(uint32(mid) | uint32(len(keys))<<16)
			c.ver[slot].Store(v + casVerStep + casLive)
		}
		for j, h := range keys {
			// Each chain entry is reachable only through its own push, so
			// the per-key publication steps fuse into one pass: hash store,
			// then the push that makes it findable, then the filter cell.
			c.hashes[base+j].Store(h)
			c.pushChain(&c.heads[h&c.bucketMask], &c.nextKey[base+j], uint32(base+j)+1)
			c.filter.Add(h)
		}
		if c.mtab[mid].needsMChain {
			c.pushChain(&c.mheads[mid], &c.nextM[slot], slot+1)
		}
	}
	if grouped {
		// Member count, before any of these transactions can end: the
		// suffix retraction below and all later releases decrement it
		// under relMu, and the whole-group release requires an exact
		// match before retiring the cell.
		c.gSize[gidx] = uint32(n)
	}
	na := c.nActive.Add(int64(n))
	c.observeActive(na)
	// The count coming back from our own increment proves exclusivity:
	// releases decrement only after their slots die, so na == n means
	// every live invocation is this batch's own. A publisher racing in
	// the other direction (published, not yet counted) is safe by the
	// usual asymmetry — its probe follows its publication, which the
	// total order places after our increment, so it sees our slots.
	alone := na == int64(n)
	tprobe := tpub
	if tpub != 0 {
		tprobe = telemetry.LatClock() // publish phase ends, probe phase begins
	}

	// Build the combined conflict signature. The exact side goes into
	// the cell-dedup table; only when some cell is shared by two batch
	// keys (or the batch is too large for the table) are the 16-bit
	// tags also packed four per word for the SWAR pass.
	total := len(bs.dkCell)
	useTab := total <= cellTabLoad
	dupAny := false
	if useTab {
		bs.cellEpoch++
		if bs.cellEpoch == 0 || len(bs.cellTab) != cellTabSize {
			bs.cellTab = growSlice(bs.cellTab, cellTabSize)
			bs.cellKi = growSlice(bs.cellKi, cellTabSize)
			for x := range bs.cellTab {
				bs.cellTab[x] = 0
			}
			bs.cellEpoch = 1
		}
		epoch := bs.cellEpoch
		for ki, cell := range bs.dkCell {
			ti := cell & (cellTabSize - 1)
			for {
				e := bs.cellTab[ti]
				if uint32(e>>32) != epoch {
					bs.cellTab[ti] = uint64(epoch)<<32 | uint64(cell)
					bs.cellKi[ti] = uint16(ki)
					break
				}
				if uint32(e) == cell {
					bs.cellKi[ti] = dupKi
					dupAny = true
					break
				}
				ti = (ti + 1) & (cellTabSize - 1)
			}
		}
	}
	if !useTab || dupAny {
		bs.tags = growSlice(bs.tags, (total+3)/4)
		for w := range bs.tags {
			bs.tags[w] = 0
		}
		for ki, cell := range bs.dkCell {
			bs.tags[ki>>2] = sigfilter.PackTag16(bs.tags[ki>>2], ki&3, uint16(cell))
		}
	}

	// Probe phase.
	forceSlow := c.ovCount.Load() != 0
	if alone && !forceSlow && allSelf && useTab && !dupAny {
		// Tautology batch: every member's probes read only its own keys
		// (selfProbe), those keys share no filter cell (!dupAny), and no
		// other invocation is live (alone). Run one at a time, each
		// member's stage-1 screen would count exactly its own cell and
		// admit — so the whole probe phase is skipped, verdict intact.
		for i := n0 - 1; i >= n; i-- {
			if u := ops[i].Undo; u != nil {
				ops[i].Undo = nil
				u()
			}
		}
		for i := 0; i < n; i++ {
			// attach's table-slot branch, inlined (no overflow words here).
			tx := ops[i].Tx
			var p *uint64
			if tx.OnEnd(c) {
				p = tx.EndWord()
			} else {
				var isNew bool
				p, isNew = tx.Attach(c)
				if isNew {
					tx.OnUndoer(c)
					tx.OnReleaser(c)
				}
			}
			s := bs.slots[i]
			c.txNext[s] = *p
			*p = uint64(s) + 1
		}
		c.tele.CascadeFastAdmitN(n)
		if obsInstrumented(tpub) {
			c.obsBatch(ops[0].Tx, bs.mids[0], len(ops), n, tpub, tprobe)
		}
		return n
	}
	bs.flags = growSlice(bs.flags, n)
	pw := (n + 63) / 64
	bs.peers = growSlice(bs.peers, pw)
	anyFlagged := false
	var psc *cascadeScratch // shared checker context, pooled lazily
	limit := n
	for i := 0; i < limit; i++ {
		op := &ops[i]
		mt := &c.mtab[bs.mids[i]]
		flag := forceSlow
		if !flag {
			for _, m1 := range mt.scanM1s {
				if c.mheads[m1].Load() != nilLink {
					flag = true
					break
				}
			}
		}
		havePeers := false
		if !flag {
			for pi := 0; pi < len(mt.fastProbes) && !flag; pi++ {
				var h uint64
				if pk := mt.probeKey[pi]; pk >= 0 && int(pk) < int(bs.nk[i]) {
					h = bs.keys[i*K+int(pk)] // probe term == published key: reuse its hash
				} else {
					ev := mt.fastProbes[pi].simple.eval(&op.Args, &op.Ret)
					var kok bool
					h, kok = ev.KeyHash()
					if !kok {
						flag = true
						break
					}
				}
				cell := c.filter.Cell(h)
				var selfAll int32
				if useTab {
					// One exact lookup resolves the batch's contribution
					// to this cell — and names the single colliding peer,
					// if any. Cells several batch keys share fall back to
					// the SWAR pass.
					ti := cell & (cellTabSize - 1)
					for {
						e := bs.cellTab[ti]
						if uint32(e>>32) != bs.cellEpoch {
							break // miss: the batch published nothing here
						}
						if uint32(e) == cell {
							if ki := bs.cellKi[ti]; ki != dupKi {
								selfAll = 1
								if j := int(bs.dkOwner[ki]); j != i {
									if !havePeers {
										havePeers = true
										for x := range bs.peers[:pw] {
											bs.peers[x] = 0
										}
									}
									bs.peers[j>>6] |= 1 << uint(j&63)
								}
							} else {
								selfAll = c.scanSelfCell(bs, i, cell, total, pw, &havePeers)
							}
							break
						}
						ti = (ti + 1) & (cellTabSize - 1)
					}
				} else {
					selfAll = c.scanSelfCell(bs, i, cell, total, pw, &havePeers)
				}
				// When the batch is alone the filter holds nothing but its
				// own cells, so the count can never exceed the exact
				// self-attribution — skip the load.
				if !alone && c.filter.Count(h) > selfAll {
					flag = true
				}
			}
		}
		if !flag && havePeers && !c.checkBatchPeers(ops, bs, i, &psc) {
			// A non-commuting earlier member: split here, serialize the
			// rest. Not a conflict — serially both sides would admit.
			limit = i
			break
		}
		bs.flags[i] = flag
		if flag {
			anyFlagged = true
		}
	}

	// Slow phase: flagged members take the ordinary precise route, all
	// sharing one checker context. Any refusal — external conflict,
	// batch peer surfaced through the chains, checker error — bounds
	// the prefix; the serial re-run reproduces the verdict for the
	// bounding op itself.
	if anyFlagged {
		for i := 0; i < limit; i++ {
			if !bs.flags[i] {
				continue
			}
			if psc == nil {
				psc = cascadeScratchPool.Get().(*cascadeScratch)
			}
			inv := c.bindCtx(psc, bs.mids[i], ops[i].Args, ops[i].Ret)
			if err := c.slowCheck(ops[i].Tx, bs.mids[i], inv, psc); err != nil {
				limit = i
				break
			}
			c.tele.CascadeFilterHit()
		}
	}
	if psc != nil {
		psc.reset()
		cascadeScratchPool.Put(psc)
	}

	// Finalize: undo the suffix newest-first, retract its publications
	// as one group, then attach the admitted prefix.
	for i := n0 - 1; i >= limit; i-- {
		if u := ops[i].Undo; u != nil {
			ops[i].Undo = nil
			u()
		}
	}
	if limit < n {
		c.retractSlots(bs.slots[limit:n])
	}
	fast := 0
	for i := 0; i < limit; i++ {
		c.attach(ops[i].Tx, uint64(bs.slots[i])+1)
		if !bs.flags[i] {
			fast++
		}
	}
	c.tele.CascadeFastAdmitN(fast)
	if obsInstrumented(tpub) {
		c.obsBatch(ops[0].Tx, bs.mids[0], len(ops), limit, tpub, tprobe)
	}
	return limit
}

// scanSelfCell counts the batch's publications in cell with the SWAR
// word pass over the packed tag signature, recording every owner other
// than i in the peer bitset (cleared lazily on first touch). Each
// nominated word's four lanes are verified exactly: SWAR lane
// attribution is approximate, and padding lanes or wide filters may
// alias the tag.
func (c *Cascade) scanSelfCell(bs *batchScratch, i int, cell uint32, total, pw int, havePeers *bool) int32 {
	spread := sigfilter.SpreadTag16(uint16(cell))
	var selfAll int32
	for w := range bs.tags {
		if !sigfilter.MatchTag4(bs.tags[w], spread) {
			continue
		}
		for ki := w * 4; ki < w*4+4 && ki < total; ki++ {
			if bs.dkCell[ki] != cell {
				continue
			}
			selfAll++
			if j := int(bs.dkOwner[ki]); j != i {
				if !*havePeers {
					*havePeers = true
					for x := range bs.peers[:pw] {
						bs.peers[x] = 0
					}
				}
				bs.peers[j>>6] |= 1 << uint(j&63)
			}
		}
	}
	return selfAll
}

// checkBatchPeers runs the precise pair conditions of batch member i
// against the earlier members its probe cells collided with (the peer
// bitset filled by the probe phase). It reports false when some earlier
// member does not commute — a batch boundary. Later colliding members
// are ignored here: each of them re-checks the serially meaningful
// direction (i active, them incoming) on its own probe.
func (c *Cascade) checkBatchPeers(ops []BatchOp, bs *batchScratch, i int, pscp **cascadeScratch) bool {
	myID := ops[i].Tx.ID()
	plans := c.byM2[bs.mids[i]]
	var inv2 core.Invocation
	inv2Made := false
	for j := 0; j < i; j++ {
		if bs.peers[j>>6]&(1<<uint(j&63)) == 0 {
			continue
		}
		if ops[j].Tx.ID() == myID {
			continue // own transaction's invocations never conflict
		}
		for pi := range plans {
			plan := &plans[pi]
			// Scan plans cannot reach here: a published peer of a scan
			// plan's m1 makes its method chain non-empty, which flags op
			// i before the peer pass runs.
			if plan.m1 != bs.mids[j] || plan.scan {
				continue
			}
			if *pscp == nil {
				*pscp = cascadeScratchPool.Get().(*cascadeScratch)
			}
			if !inv2Made {
				inv2 = core.MakeInvocation(c.names[bs.mids[i]], ops[i].Args, ops[i].Ret)
				inv2Made = true
			}
			inv1 := core.MakeInvocation(c.names[bs.mids[j]], ops[j].Args, ops[j].Ret)
			if !c.pairCommutes(plan, inv1, inv2, *pscp) {
				return false
			}
		}
	}
	return true
}

// pairCommutes runs one plan's precise condition on an in-hand pair —
// stage 3 without chain discovery or pinning, since the batch already
// holds both invocations. A checker error reports as non-commuting; the
// serial re-run of the bounding op surfaces the error itself.
func (c *Cascade) pairCommutes(plan *cascadePlan, inv1, inv2 core.Invocation, sc *cascadeScratch) bool {
	c.tele.Check(plan.m1, plan.m2)
	if plan.never {
		return false
	}
	sc.ctx.env.Inv1 = inv1
	sc.ctx.env.Inv2 = inv2
	sc.ctx.env.S1 = c.res
	sc.ctx.env.S2 = c.res
	c.checkMu.Lock()
	ok, err := plan.check(&sc.ctx)
	c.checkMu.Unlock()
	return err == nil && ok
}

// batchSlotCacheCap bounds the batch slot cache (the per-cascade bound
// is half the table, whichever is smaller).
const batchSlotCacheCap = 256

// parkSlots returns a run of freed slots to the batch cache for the
// next admission to reclaim, spilling past the cap to the shared free
// stack (one stack splice) so serial pops never starve.
func (c *Cascade) parkSlots(slots []uint32) {
	if len(slots) == 0 {
		return
	}
	c.bfMu.Lock()
	t := cap(c.bfSlots) - len(c.bfSlots)
	if t > len(slots) {
		t = len(slots)
	}
	if t > 0 {
		c.bfSlots = append(c.bfSlots, slots[:t]...)
	}
	c.bfMu.Unlock()
	if t < len(slots) {
		c.free.PushN(slots[t:])
	}
}

// acquireGroup claims and activates one ring cell for a batch's slots.
// Only dead, unpinned cells are eligible; a cell stays bound until its
// last member releases, so a full ring (many admitted-but-uncommitted
// batches) reports !ok and the batch publishes in direct mode. The CAS
// is the only successful writer a dead cell can have — in-flight pins
// expect a live snapshot and fail — so losing it just means another
// batch claimed the cell first.
func (c *Cascade) acquireGroup() (gidx uint32, gref uint64, ok bool) {
	if len(c.names) > 256 {
		return 0, 0, false // method id would not fit the packed meta
	}
	for try := 0; try < numGroups; try++ {
		g := c.gClock.Add(1) & (numGroups - 1)
		gw := c.groups[g].Load()
		if gw&(casLive|casLocked) != 0 {
			continue
		}
		live := gw + casVerStep + casLive
		if c.groups[g].CompareAndSwap(gw, live) {
			return g, makeGroupRef(g, live), true
		}
	}
	return 0, 0, false
}

// releaseGroupLocked retires a whole group at once: one pin of the
// group cell, the per-slot chain and filter teardown, then the single
// version advance that is the batch's release fence — every member
// becomes invisible to optimistic readers with that one store. The
// slots' own words keep their stale binding until reused. Caller holds
// relMu and must own every live member of the cell (gSize match).
func (c *Cascade) releaseGroupLocked(gidx uint32, slots []uint32) {
	var gclean uint64
	for spins := 0; ; spins++ {
		gw := c.groups[gidx].Load()
		gclean = gw &^ casLocked
		if gw&casLocked == 0 && c.groups[gidx].CompareAndSwap(gclean, gclean|casLocked) {
			break
		}
		if spins&63 == 63 {
			runtime.Gosched()
		}
	}
	for _, s := range slots {
		c.teardownSlot(s, slotMeta(c.ver[s].Load()))
		c.slotCtr[s] += casVerStep
	}
	c.gSize[gidx] = 0
	c.groups[gidx].Store((gclean &^ casLive) + casVerStep)
}

// retractSlots withdraws a run of rejected publications: one relMu
// acquisition for all the unlinking, one slot-cache park, one active
// count update.
func (c *Cascade) retractSlots(slots []uint32) {
	if len(slots) == 0 {
		return
	}
	c.relMu.Lock()
	for _, s := range slots {
		c.releaseSlotCore(s)
	}
	c.relMu.Unlock()
	c.parkSlots(slots)
	c.nActive.Add(-int64(len(slots)))
}

// ReleaseTxBatch frees every record of a group of ending transactions
// under one relMu acquisition (engine.BatchReleaser): the group-commit
// mirror of ReleaseTx, parking all freed slots for the next batch (or
// splicing them back with one stack operation).
func (c *Cascade) ReleaseTxBatch(txs []*engine.Tx) {
	t0 := telemetry.LatClock()
	bs := batchScratchPool.Get().(*batchScratch)
	freed := bs.freed[:0]
	c.relMu.Lock()
	// Collect every slot first: when all of them share one group binding
	// and account for all its live members — the steady state, one whole
	// batch committing together — the group path retires them with a
	// single pin and one version advance instead of two per slot.
	oneGroup := true
	var gref uint64
	for _, tx := range txs {
		p := c.txWord(tx)
		w := *p
		*p = 0
		for w != 0 {
			if w&ovTag == 0 {
				s := uint32(w - 1)
				w = c.txNext[s]
				if v := c.ver[s].Load(); v&gmBit == 0 {
					oneGroup = false
				} else if gref == 0 {
					gref = v &^ grpMetaMask
				} else if v&^grpMetaMask != gref {
					oneGroup = false
				}
				freed = append(freed, s)
			} else {
				c.ovMu.Lock()
				i := (w &^ ovTag) - 1
				r := &c.ovs[i]
				next := r.txNext
				r.args.Release()
				*r = ovRecord{}
				c.ovFree = append(c.ovFree, uint32(i))
				c.ovCount.Add(-1)
				c.ovMu.Unlock()
				c.nActive.Add(-1)
				w = next
			}
		}
	}
	if oneGroup && gref != 0 && c.gSize[refGidx(gref)] == uint32(len(freed)) {
		c.releaseGroupLocked(refGidx(gref), freed)
	} else {
		for _, s := range freed {
			c.releaseSlotCore(s)
		}
	}
	c.relMu.Unlock()
	c.parkSlots(freed)
	c.nActive.Add(-int64(len(freed)))
	bs.freed = freed[:0]
	batchScratchPool.Put(bs)
	if t0 != 0 && len(txs) > 0 {
		// One commit/release observation for the group: the whole point
		// of the group commit is that release cost is paid per batch.
		telemetry.StageObserve(txs[0].Worker(), telemetry.StageCommit, t0)
	}
}
