package gatekeeper

import (
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// fuzzCondPalette builds the condition for palette index i (mod 6).
// Every entry is function-free, so both detectors accept it and the
// cascade's no-log restriction never triggers; the palette spans all
// plan shapes: trivially-true pairs, never-commuting pairs, pure
// disequality guards (indexed), guarded disequalities with return
// constraints, and a non-decomposable ordering (scan plans on the
// cascade, fallback scans on Forward).
func fuzzCond(i byte) core.Cond {
	switch i % 6 {
	case 0:
		return core.True()
	case 1:
		return core.False()
	case 2:
		return core.Ne(core.Arg1(0), core.Arg2(0))
	case 3:
		return core.Or(core.Ne(core.Arg1(0), core.Arg2(0)), core.Eq(core.Ret1(), core.Lit(false)))
	case 4:
		return core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
			core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	default:
		return core.Lt(core.Arg1(0), core.Arg2(0))
	}
}

// FuzzCascadeAgreesWithGatekeeper feeds the same randomized invocation
// stream through a forward gatekeeper and a cascade built from the same
// randomized specification, each guarding its own copy of a set
// representation, and requires identical verdicts — admitted/conflicted
// and return value — on every single operation.
func FuzzCascadeAgreesWithGatekeeper(f *testing.F) {
	f.Add([]byte{2, 4, 3, 0, 1, 10, 20, 2, 11, 30, 0, 12})
	f.Add([]byte{1, 1, 1, 1, 0, 1, 10, 1, 1, 20})
	f.Add([]byte{5, 5, 5, 0, 0, 3, 4, 1, 7, 2, 2, 5})
	f.Add([]byte{0, 2, 4, 1, 7, 6, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		sig := &core.ADTSig{Name: "fuzzadt", Methods: []core.MethodSig{
			{Name: "a", Params: []string{"x"}, HasRet: true},
			{Name: "b", Params: []string{"x"}, HasRet: true},
		}}
		spec := core.NewSpec(sig)
		spec.Set("a", "a", fuzzCond(data[0]))
		spec.Set("a", "b", fuzzCond(data[1]))
		spec.Set("b", "b", fuzzCond(data[2]))

		fw, err := NewForward(spec, nil)
		if err != nil {
			// A palette spec Forward rejects is out of scope; the palette
			// is fn-free so this should not happen.
			t.Fatalf("NewForward: %v", err)
		}
		cfg := CascadeConfig{}
		if data[3]%4 == 0 {
			cfg.SlotCapacity = 2 // force the overflow path regularly
		}
		cs, err := NewCascadeConfig(spec, nil, cfg)
		if err != nil {
			t.Fatalf("NewCascadeConfig: %v", err)
		}

		// Two independent representation copies; method "a" behaves like
		// add, "b" like remove. If the detectors agree on every verdict
		// the copies stay identical.
		fwRep := map[int64]bool{}
		csRep := map[int64]bool{}
		runOp := func(rep map[int64]bool, method string, x int64) func() Effect {
			return func() Effect {
				if method == "a" {
					if rep[x] {
						return Effect{Ret: core.VBool(false)}
					}
					rep[x] = true
					return Effect{Ret: core.VBool(true), Undo: func() { delete(rep, x) }}
				}
				if !rep[x] {
					return Effect{Ret: core.VBool(false)}
				}
				delete(rep, x)
				return Effect{Ret: core.VBool(true), Undo: func() { rep[x] = true }}
			}
		}

		const nTx = 3
		var fwTx, csTx [nTx]*engine.Tx
		for i := range fwTx {
			fwTx[i], csTx[i] = engine.NewTx(), engine.NewTx()
		}
		defer func() {
			for i := range fwTx {
				fwTx[i].Abort()
				csTx[i].Abort()
			}
			if fw.ActiveInvocations() != 0 {
				t.Errorf("forward log leaked %d entries", fw.ActiveInvocations())
			}
			if cs.ActiveInvocations() != 0 {
				t.Errorf("cascade window leaked %d invocations", cs.ActiveInvocations())
			}
		}()

		ops := data[4:]
		for len(ops) >= 2 {
			sel, argB := ops[0], ops[1]
			ops = ops[2:]
			ti := int(sel) % nTx
			switch act := (sel / nTx) % 8; act {
			case 6: // commit the pair, open fresh transactions
				fwTx[ti].Commit()
				csTx[ti].Commit()
				fwTx[ti], csTx[ti] = engine.NewTx(), engine.NewTx()
				continue
			case 7: // abort the pair
				fwTx[ti].Abort()
				csTx[ti].Abort()
				fwTx[ti], csTx[ti] = engine.NewTx(), engine.NewTx()
				continue
			}
			method := "a"
			if sel&1 == 1 {
				method = "b"
			}
			x := int64(argB % 8) // small key space: force collisions
			args := core.Args1(core.VInt(x))
			fr, ferr := fw.Invoke(fwTx[ti], method, args, runOp(fwRep, method, x))
			cr, cerr := cs.Invoke(csTx[ti], method, args, runOp(csRep, method, x))
			if (ferr == nil) != (cerr == nil) {
				t.Fatalf("%s(%d) tx%d: forward err=%v cascade err=%v", method, x, ti, ferr, cerr)
			}
			if ferr != nil {
				if !engine.IsConflict(ferr) || !engine.IsConflict(cerr) {
					t.Fatalf("%s(%d): non-conflict errors: forward=%v cascade=%v", method, x, ferr, cerr)
				}
				// Both aborted the invocation and undid its effect; the
				// transactions keep running (verdicts must keep agreeing
				// against the unchanged windows).
				continue
			}
			if fr != cr {
				t.Fatalf("%s(%d) tx%d: forward ret=%v cascade ret=%v", method, x, ti, fr, cr)
			}
		}
		for k := range fwRep {
			if !csRep[k] {
				t.Fatalf("representations diverged: %d in forward only", k)
			}
		}
		for k := range csRep {
			if !fwRep[k] {
				t.Fatalf("representations diverged: %d in cascade only", k)
			}
		}
	})
}
