package gatekeeper

import (
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// batchTestCascade builds a two-method cascade ("a" add-like, "b"
// remove-like, both keyed on one argument) with explicit pair
// conditions.
func batchTestCascade(t *testing.T, aa, ab, bb core.Cond, cfg CascadeConfig) *Cascade {
	t.Helper()
	sig := &core.ADTSig{Name: "batchadt", Methods: []core.MethodSig{
		{Name: "a", Params: []string{"x"}, HasRet: true},
		{Name: "b", Params: []string{"x"}, HasRet: true},
	}}
	spec := core.NewSpec(sig)
	spec.Set("a", "a", aa)
	spec.Set("a", "b", ab)
	spec.Set("b", "b", bb)
	c, err := NewCascadeConfig(spec, nil, cfg)
	if err != nil {
		t.Fatalf("NewCascadeConfig: %v", err)
	}
	return c
}

// execInto fills a batch run's effects against rep: "a" adds, "b"
// removes, both returning whether the representation changed.
func execInto(rep map[int64]bool) func(run []BatchOp) {
	return func(run []BatchOp) {
		for k := range run {
			x := run[k].Args.At(0).Int()
			if run[k].Method == "a" {
				if rep[x] {
					run[k].Ret = core.VBool(false)
					continue
				}
				rep[x] = true
				run[k].Ret = core.VBool(true)
				run[k].Undo = func() { delete(rep, x) }
			} else {
				if !rep[x] {
					run[k].Ret = core.VBool(false)
					continue
				}
				delete(rep, x)
				run[k].Ret = core.VBool(true)
				run[k].Undo = func() { rep[x] = true }
			}
		}
	}
}

func effectFor(rep map[int64]bool, method string, x int64) func() Effect {
	return func() Effect {
		if method == "a" {
			if rep[x] {
				return Effect{Ret: core.VBool(false)}
			}
			rep[x] = true
			return Effect{Ret: core.VBool(true), Undo: func() { delete(rep, x) }}
		}
		if !rep[x] {
			return Effect{Ret: core.VBool(false)}
		}
		delete(rep, x)
		return Effect{Ret: core.VBool(true), Undo: func() { rep[x] = true }}
	}
}

var neCond = core.Ne(core.Arg1(0), core.Arg2(0))

// TestBatchAdmitsDisjointWhole: a batch of pairwise-disjoint keys under
// a pure disequality spec admits whole on the fast path and
// group-commits through one BatchReleaser call.
func TestBatchAdmitsDisjointWhole(t *testing.T) {
	c := batchTestCascade(t, neCond, neCond, neCond, CascadeConfig{})
	rep := map[int64]bool{}
	const n = 16
	ops := make([]BatchOp, n)
	txs := make([]*engine.Tx, n)
	for i := range ops {
		txs[i] = engine.NewTx()
		ops[i] = BatchOp{Tx: txs[i], Method: "a", Args: core.Args1(core.VInt(int64(i)))}
	}
	p := c.InvokeBatch(ops, execInto(rep))
	if p != n {
		t.Fatalf("admitted prefix = %d, want %d", p, n)
	}
	for i := range ops {
		if !ops[i].Ret.Bool() {
			t.Fatalf("op %d: ret = false, want true", i)
		}
	}
	engine.CommitBatch(txs)
	if got := c.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations after group commit", got)
	}
	if len(rep) != n {
		t.Fatalf("rep has %d elements, want %d", len(rep), n)
	}
	if s := c.Stats(); s.BatchesWhole != 1 || s.BatchesSplit != 0 || s.BatchesSerialized != 0 {
		t.Fatalf("batch counters = whole %d split %d serialized %d, want 1/0/0",
			s.BatchesWhole, s.BatchesSplit, s.BatchesSerialized)
	}
}

// TestBatchIntraConflictSplits: two different transactions adding the
// same key do not commute under a disequality spec, so the batch must
// split exactly at the second one — never admitting both.
func TestBatchIntraConflictSplits(t *testing.T) {
	c := batchTestCascade(t, neCond, neCond, neCond, CascadeConfig{})
	rep := map[int64]bool{}
	keys := []int64{1, 1, 2}
	ops := make([]BatchOp, len(keys))
	txs := make([]*engine.Tx, len(keys))
	for i, x := range keys {
		txs[i] = engine.NewTx()
		ops[i] = BatchOp{Tx: txs[i], Method: "a", Args: core.Args1(core.VInt(x))}
	}
	p := c.InvokeBatch(ops, execInto(rep))
	if p != 1 {
		t.Fatalf("admitted prefix = %d, want 1 (split at duplicate key)", p)
	}
	// The suffix's effects were undone; only the prefix's survive.
	if !rep[1] || rep[2] {
		t.Fatalf("rep after split = %v, want only key 1", rep)
	}
	engine.CommitBatch(txs[:p])
	// The caller's serial re-run after the group commit reproduces the
	// serial verdicts: the duplicate add now sees an empty window.
	for i := p; i < len(keys); i++ {
		if _, err := c.Invoke(txs[i], "a", ops[i].Args, effectFor(rep, "a", keys[i])); err != nil {
			t.Fatalf("serial re-run op %d: %v", i, err)
		}
		txs[i].Commit()
	}
	if rep[2] != true || rep[1] != true {
		t.Fatalf("rep after re-run = %v", rep)
	}
	if got := c.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations", got)
	}
}

// TestBatchSameTxPeersAdmit: the same transaction invoking the same key
// twice is never a conflict with itself, in a batch or out of it.
func TestBatchSameTxPeersAdmit(t *testing.T) {
	c := batchTestCascade(t, neCond, neCond, neCond, CascadeConfig{})
	rep := map[int64]bool{}
	tx := engine.NewTx()
	ops := []BatchOp{
		{Tx: tx, Method: "a", Args: core.Args1(core.VInt(7))},
		{Tx: tx, Method: "a", Args: core.Args1(core.VInt(7))},
	}
	p := c.InvokeBatch(ops, execInto(rep))
	if p != 2 {
		t.Fatalf("admitted prefix = %d, want 2 (same-tx pair)", p)
	}
	if !ops[0].Ret.Bool() || ops[1].Ret.Bool() {
		t.Fatalf("rets = %v, %v, want true, false", ops[0].Ret.Bool(), ops[1].Ret.Bool())
	}
	tx.Commit()
	if got := c.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations", got)
	}
}

// TestBatchExternalConflictBounds: a live external transaction holding
// a key bounds the batch at the member touching it, and that member's
// serial re-run reproduces the conflict verdict.
func TestBatchExternalConflictBounds(t *testing.T) {
	c := batchTestCascade(t, neCond, neCond, neCond, CascadeConfig{})
	rep := map[int64]bool{}
	holder := engine.NewTx()
	if _, err := c.Invoke(holder, "a", core.Args1(core.VInt(5)), effectFor(rep, "a", 5)); err != nil {
		t.Fatalf("holder publish: %v", err)
	}
	keys := []int64{1, 5, 2}
	ops := make([]BatchOp, len(keys))
	txs := make([]*engine.Tx, len(keys))
	for i, x := range keys {
		txs[i] = engine.NewTx()
		ops[i] = BatchOp{Tx: txs[i], Method: "a", Args: core.Args1(core.VInt(x))}
	}
	p := c.InvokeBatch(ops, execInto(rep))
	if p != 1 {
		t.Fatalf("admitted prefix = %d, want 1 (bounded by external holder)", p)
	}
	engine.CommitBatch(txs[:p])
	// Serial re-run: the holder's key still conflicts, the rest admit.
	if _, err := c.Invoke(txs[1], "a", ops[1].Args, effectFor(rep, "a", 5)); !engine.IsConflict(err) {
		t.Fatalf("serial re-run of held key: err = %v, want conflict", err)
	}
	txs[1].Abort()
	if _, err := c.Invoke(txs[2], "a", ops[2].Args, effectFor(rep, "a", 2)); err != nil {
		t.Fatalf("serial re-run op 2: %v", err)
	}
	txs[2].Commit()
	holder.Commit()
	if got := c.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations", got)
	}
}

// FuzzBatchAgreesWithSerial feeds a randomized stream of batches and
// long-lived holder transactions through the batched admission path and
// through plain one-at-a-time invocation on a second cascade built from
// the same randomized specification, requiring the serial schedule's
// verdict — admitted or conflicted, and the return value — for every
// single operation, and identical final representations.
func FuzzBatchAgreesWithSerial(f *testing.F) {
	f.Add([]byte{2, 4, 3, 0, 2, 6, 10, 20, 30, 2, 4, 11, 21})
	f.Add([]byte{1, 1, 1, 1, 0, 5, 1, 1, 2, 2, 3})
	f.Add([]byte{5, 5, 5, 0, 8, 4, 9, 8, 7, 6, 0, 3})
	f.Add([]byte{3, 2, 4, 1, 1, 3, 7, 0, 7, 2, 8, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		sig := &core.ADTSig{Name: "fuzzadt", Methods: []core.MethodSig{
			{Name: "a", Params: []string{"x"}, HasRet: true},
			{Name: "b", Params: []string{"x"}, HasRet: true},
		}}
		spec := core.NewSpec(sig)
		spec.Set("a", "a", fuzzCond(data[0]))
		spec.Set("a", "b", fuzzCond(data[1]))
		spec.Set("b", "b", fuzzCond(data[2]))
		cfg := CascadeConfig{}
		if data[3]%4 == 0 {
			cfg.SlotCapacity = 2 // force the overflow path regularly
		}
		bc, err := NewCascadeConfig(spec, nil, cfg)
		if err != nil {
			t.Fatalf("NewCascadeConfig: %v", err)
		}
		sc, err := NewCascadeConfig(spec, nil, cfg)
		if err != nil {
			t.Fatalf("NewCascadeConfig: %v", err)
		}

		bRep, sRep := map[int64]bool{}, map[int64]bool{}

		// Holder transactions stay live across batches on both sides,
		// so batches race real window entries.
		const nHold = 2
		var bHold, sHold [nHold]*engine.Tx
		for i := range bHold {
			bHold[i], sHold[i] = engine.NewTx(), engine.NewTx()
		}
		defer func() {
			for i := range bHold {
				bHold[i].Abort()
				sHold[i].Abort()
			}
			if n := bc.ActiveInvocations(); n != 0 {
				t.Errorf("batched cascade leaked %d invocations", n)
			}
			if n := sc.ActiveInvocations(); n != 0 {
				t.Errorf("serial cascade leaked %d invocations", n)
			}
		}()

		stream := data[4:]
		next := func() (byte, bool) {
			if len(stream) == 0 {
				return 0, false
			}
			b := stream[0]
			stream = stream[1:]
			return b, true
		}
		decodeOp := func(b byte) (string, int64) {
			method := "a"
			if b&1 == 1 {
				method = "b"
			}
			return method, int64((b >> 1) % 8)
		}

		for {
			sel, ok := next()
			if !ok {
				break
			}
			switch sel % 4 {
			case 0: // one invocation under a holder transaction
				hb, ok := next()
				if !ok {
					return
				}
				hi := int(sel/4) % nHold
				method, x := decodeOp(hb)
				args := core.Args1(core.VInt(x))
				br, berr := bc.Invoke(bHold[hi], method, args, effectFor(bRep, method, x))
				sr, serr := sc.Invoke(sHold[hi], method, args, effectFor(sRep, method, x))
				if (berr == nil) != (serr == nil) {
					t.Fatalf("holder %s(%d): batch err=%v serial err=%v", method, x, berr, serr)
				}
				if berr == nil && br != sr {
					t.Fatalf("holder %s(%d): batch ret=%v serial ret=%v", method, x, br, sr)
				}
			case 1: // churn one holder: commit or abort on both sides
				hi := int(sel/4) % nHold
				if sel&64 != 0 {
					bHold[hi].Commit()
					sHold[hi].Commit()
				} else {
					bHold[hi].Abort()
					sHold[hi].Abort()
				}
				bHold[hi], sHold[hi] = engine.NewTx(), engine.NewTx()
			default: // a batch of 1..8 ops, each in its own transaction
				nb, ok := next()
				if !ok {
					return
				}
				n := 1 + int(nb)%8
				ops := make([]BatchOp, 0, n)
				txs := make([]*engine.Tx, 0, n)
				for len(ops) < n {
					ob, ok := next()
					if !ok {
						break
					}
					method, x := decodeOp(ob)
					tx := engine.NewTx()
					txs = append(txs, tx)
					ops = append(ops, BatchOp{Tx: tx, Method: method, Args: core.Args1(core.VInt(x))})
				}
				if len(ops) == 0 {
					continue
				}
				type verdict struct {
					ok  bool
					ret core.Value
				}
				bv := make([]verdict, len(ops))
				p := bc.InvokeBatch(ops, execInto(bRep))
				for i := 0; i < p; i++ {
					bv[i] = verdict{ok: true, ret: ops[i].Ret}
				}
				engine.CommitBatch(txs[:p])
				for i := p; i < len(ops); i++ {
					method, x := decodeOp(0)
					method = ops[i].Method
					x = ops[i].Args.At(0).Int()
					r, err := bc.Invoke(txs[i], method, ops[i].Args, effectFor(bRep, method, x))
					if err == nil {
						bv[i] = verdict{ok: true, ret: r}
						txs[i].Commit()
					} else {
						if !engine.IsConflict(err) {
							t.Fatalf("batch re-run %s(%d): non-conflict error %v", method, x, err)
						}
						txs[i].Abort()
					}
				}
				// Serial reference: same ops one at a time, each its own
				// transaction, committing between operations.
				for i := range ops {
					method := ops[i].Method
					x := ops[i].Args.At(0).Int()
					tx := engine.NewTx()
					r, err := sc.Invoke(tx, method, ops[i].Args, effectFor(sRep, method, x))
					sv := verdict{}
					if err == nil {
						sv = verdict{ok: true, ret: r}
						tx.Commit()
					} else {
						if !engine.IsConflict(err) {
							t.Fatalf("serial %s(%d): non-conflict error %v", method, x, err)
						}
						tx.Abort()
					}
					if bv[i].ok != sv.ok {
						t.Fatalf("op %d %s(%d): batch admitted=%v serial admitted=%v (prefix %d of %d)",
							i, method, x, bv[i].ok, sv.ok, p, len(ops))
					}
					if bv[i].ok && bv[i].ret != sv.ret {
						t.Fatalf("op %d %s(%d): batch ret=%v serial ret=%v", i, method, x, bv[i].ret, sv.ret)
					}
				}
			}
		}
		for k := range bRep {
			if !sRep[k] {
				t.Fatalf("representations diverged: %d in batched only", k)
			}
		}
		for k := range sRep {
			if !bRep[k] {
				t.Fatalf("representations diverged: %d in serial only", k)
			}
		}
	})
}

// TestForwardInvokeBatch: the forward gatekeeper's batch entry admits a
// disjoint batch whole under one lock acquisition, splits at the first
// intra-batch conflict, and leaves members past the boundary unexecuted
// — the contract the engine's batch retry loop relies on.
func TestForwardInvokeBatch(t *testing.T) {
	sig := &core.ADTSig{Name: "batchadt", Methods: []core.MethodSig{
		{Name: "a", Params: []string{"x"}, HasRet: true},
		{Name: "b", Params: []string{"x"}, HasRet: true},
	}}
	spec := core.NewSpec(sig)
	spec.Set("a", "a", neCond)
	spec.Set("a", "b", neCond)
	spec.Set("b", "b", neCond)
	fw, err := NewForward(spec, nil)
	if err != nil {
		t.Fatalf("NewForward: %v", err)
	}

	rep := map[int64]bool{}
	const n = 8
	ops := make([]BatchOp, n)
	txs := make([]*engine.Tx, n)
	for i := range ops {
		txs[i] = engine.NewTx()
		ops[i] = BatchOp{Tx: txs[i], Method: "a", Args: core.Args1(core.VInt(int64(i)))}
	}
	if p := fw.InvokeBatch(ops, execInto(rep)); p != n {
		t.Fatalf("disjoint batch admitted prefix = %d, want %d", p, n)
	}
	for i := range ops {
		if !ops[i].Ret.Bool() {
			t.Fatalf("op %d: ret = false, want true", i)
		}
		txs[i].Commit()
	}
	if got := fw.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations after commit", got)
	}

	// Key 3 repeats across two transactions: a(3) vs a(3) violates the
	// disequality condition, so the batch must split exactly there.
	execs := 0
	conflict := make([]BatchOp, 4)
	ctxs := make([]*engine.Tx, 4)
	keys := []int64{10, 3, 3, 12}
	for i := range conflict {
		ctxs[i] = engine.NewTx()
		conflict[i] = BatchOp{Tx: ctxs[i], Method: "a", Args: core.Args1(core.VInt(keys[i]))}
	}
	inner := execInto(rep)
	p := fw.InvokeBatch(conflict, func(run []BatchOp) {
		execs += len(run)
		inner(run)
	})
	if p != 2 {
		t.Fatalf("conflicting batch admitted prefix = %d, want 2", p)
	}
	if execs != 3 {
		t.Fatalf("executed %d members, want 3 (prefix, bounding op, nothing past it)", execs)
	}
	if rep[3] != true || rep[10] != true || rep[12] {
		t.Fatalf("rep state wrong after split: %v (bounding op must be undone, suffix untouched)", rep)
	}
	for i := 0; i < 2; i++ {
		ctxs[i].Commit()
	}
	for i := 2; i < 4; i++ {
		ctxs[i].Abort()
	}
	if got := fw.ActiveInvocations(); got != 0 {
		t.Fatalf("window leaked %d invocations after split cleanup", got)
	}
}
