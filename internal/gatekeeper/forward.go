// Package gatekeeper implements the paper's two logging-based conflict
// detection schemes (§3.3): forward gatekeepers for ONLINE-CHECKABLE
// specifications and general gatekeepers, which add state rollback to
// evaluate arbitrary L1 conditions.
//
// A gatekeeper is a special object interposed between transactions and a
// linearizable data structure. The whole sequence — intercept an
// invocation, check it for commutativity against every active invocation
// from other transactions, execute it, and return — appears atomic (a
// per-structure mutex). Because the gatekeeper interacts with the
// structure only through method invocations and declared state functions,
// it is agnostic to the concrete representation.
package gatekeeper

import (
	"fmt"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// Effect is what executing a method invocation produced: its return value
// and an inverse action that undoes its state change (nil for read-only
// invocations, which also covers mutating methods that happened not to
// change anything, e.g. add of a present element).
type Effect struct {
	Ret  core.Value
	Undo func()
}

// entry is an active logged invocation: the invocation itself plus the
// result log L_m(v) holding the values of the primitive functions Cm
// evaluated when it ran (§3.3.1 step 1).
type entry struct {
	tx  *engine.Tx
	inv core.Invocation
	log map[string]core.Value // keyed by canonical term string
}

// fwdPlan is the static per-ordered-pair plan: the condition to check
// when the second method arrives while the first is active, plus the
// non-pure s2-state functions that must be evaluated before the second
// method executes.
type fwdPlan struct {
	cond    core.Cond
	fn2Pre  []core.FnTerm
	trivial bool // condition is the constant true: nothing to check
	never   bool // condition is the constant false
}

// Forward is a forward gatekeeper (§3.3.1): it builds up information
// about method invocations as they happen, storing primitive-function
// results in per-invocation logs, and verifies that every new invocation
// commutes with all active invocations from other transactions.
type Forward struct {
	spec *core.Spec
	res  core.StateFn // live resolver against the guarded structure

	pairs  map[[2]string]*fwdPlan
	cmPre  map[string][]core.FnTerm // Cm: non-pure s1 functions, evaluated pre-execution
	cmPost map[string][]core.FnTerm // Cm: pure s1 functions, evaluated post-execution

	mu      sync.Mutex
	entries []*entry
	hooked  map[*engine.Tx]bool
	stats   Stats
}

// Stats counts the work a gatekeeper performed — the raw material of the
// overhead comparison in §3.4.
type Stats struct {
	Invocations uint64 // guarded invocations processed
	Checks      uint64 // pairwise commutativity conditions evaluated
	Conflicts   uint64 // invocations rejected
	Rollbacks   uint64 // journal rollback sweeps (general gatekeepers)
	LogEntries  uint64 // primitive-function results logged (forward)
}

// NewForward constructs a forward gatekeeper for spec guarding a
// structure whose state functions are resolved by res. It fails if any
// pair condition is not ONLINE-CHECKABLE (Definition 7), or uses a shape
// this engine cannot schedule (a non-pure state function needing a return
// value before it is known).
func NewForward(spec *core.Spec, res core.StateFn) (*Forward, error) {
	g := &Forward{
		spec:   spec,
		res:    res,
		pairs:  map[[2]string]*fwdPlan{},
		cmPre:  map[string][]core.FnTerm{},
		cmPost: map[string][]core.FnTerm{},
		hooked: map[*engine.Tx]bool{},
	}
	cmSeen := map[string]map[string]bool{}
	names := spec.Sig.MethodNames()
	for _, m1 := range names {
		for _, m2 := range names {
			cond := spec.Cond(m1, m2)
			if !core.IsOnlineCheckableWith(cond, spec.Pure) {
				return nil, fmt.Errorf("gatekeeper: condition for (%s,%s) is not ONLINE-CHECKABLE: %s (use a general gatekeeper)", m1, m2, cond)
			}
			plan := &fwdPlan{cond: cond}
			switch cond.(type) {
			case core.TrueCond:
				plan.trivial = true
			case core.FalseCond:
				plan.never = true
			}
			// Collect the primitive function set Cm1 (all s1 functions in
			// the condition) and schedule each: pure functions evaluate
			// after execution (the return value is then available);
			// non-pure functions must run in the pre-state and therefore
			// may not mention r1.
			for _, ft := range core.FirstStateFns(cond) {
				if cmSeen[m1] == nil {
					cmSeen[m1] = map[string]bool{}
				}
				key := core.TermKey(ft)
				if cmSeen[m1][key] {
					continue
				}
				cmSeen[m1][key] = true
				if spec.Pure[ft.Fn] {
					// Pure functions over first-invocation values are
					// logged after execution (the paper's dist(x, r) log
					// entry); pure functions that also mention the second
					// invocation cannot be logged and are evaluated live
					// at check time instead, which is sound because they
					// are state-independent.
					if !mentionsSide(ft, core.Second) {
						g.cmPost[m1] = append(g.cmPost[m1], ft)
					}
				} else {
					if mentionsRet(ft, core.First) {
						return nil, fmt.Errorf("gatekeeper: %s needs non-pure %s(s1,...) over r1, which cannot be evaluated in the pre-state", m1, ft.Fn)
					}
					g.cmPre[m1] = append(g.cmPre[m1], ft)
				}
			}
			// Non-pure s2 functions must be evaluated in the state the
			// second method executes in, i.e. before it runs, so they may
			// not mention r2.
			for _, ft := range secondStateFns(cond) {
				if spec.Pure[ft.Fn] {
					continue // resolved live; pure functions ignore state
				}
				if mentionsRet(ft, core.Second) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s) needs non-pure %s(s2,...) over r2, which cannot be evaluated before execution", m1, m2, ft.Fn)
				}
				if containsNonPureFn(ft, core.First, spec.Pure) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s): non-pure s1 function nested inside %s(s2,...) is not supported", m1, m2, ft.Fn)
				}
				plan.fn2Pre = append(plan.fn2Pre, ft)
			}
			g.pairs[[2]string{m1, m2}] = plan
		}
	}
	return g, nil
}

// Invoke executes one guarded method invocation for tx. exec performs the
// operation on the underlying structure and reports its effect. If the
// invocation does not commute with some active invocation, Invoke undoes
// the effect inside its atomic section and returns an error satisfying
// engine.IsConflict. On success the effect's undo action (if any) is
// registered with tx so that a later abort rolls it back, and the
// invocation joins the active log until tx ends.
func (g *Forward) Invoke(tx *engine.Tx, method string, args []core.Value, exec func() Effect) (core.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Invocations++

	inv := core.NewInvocation(method, args, nil)

	// Pre-pass A: our own non-pure s1 functions, in the pre-state.
	log := map[string]core.Value{}
	preEnv := &core.PairEnv{Inv1: inv, S1: g.res, S2: g.res}
	for _, ft := range g.cmPre[method] {
		v, err := core.EvalTerm(ft, preEnv)
		if err != nil {
			return nil, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", ft, method, err)
		}
		log[core.TermKey(ft)] = v
		g.stats.LogEntries++
	}

	// Pre-pass B: per active invocation, the non-pure s2 functions of the
	// condition we are about to check, in the state m2 executes in.
	type pending struct {
		e    *entry
		plan *fwdPlan
		sub  map[string]core.Value
	}
	var checks []pending
	for _, e := range g.entries {
		if e.tx == tx {
			continue
		}
		plan := g.pairs[[2]string{e.inv.Method, method}]
		if plan.trivial {
			continue
		}
		p := pending{e: e, plan: plan}
		if len(plan.fn2Pre) > 0 {
			p.sub = map[string]core.Value{}
			env := &core.PairEnv{Inv1: e.inv, Inv2: inv, S1: g.res, S2: g.res}
			for _, ft := range plan.fn2Pre {
				v, err := core.EvalTerm(ft, env)
				if err != nil {
					return nil, fmt.Errorf("gatekeeper: evaluating %s for (%s,%s): %w", ft, e.inv.Method, method, err)
				}
				p.sub[core.TermKey(ft)] = v
			}
		}
		checks = append(checks, p)
	}

	// Execute.
	eff := exec()
	inv.Ret = core.Norm(eff.Ret)
	undoNow := func() {
		if eff.Undo != nil {
			eff.Undo()
		}
	}

	// Post-pass: our pure s1 functions (may use the return value).
	postEnv := &core.PairEnv{Inv1: inv, S1: g.res, S2: g.res}
	for _, ft := range g.cmPost[method] {
		v, err := core.EvalTerm(ft, postEnv)
		if err != nil {
			undoNow()
			return nil, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", ft, method, err)
		}
		log[core.TermKey(ft)] = v
		g.stats.LogEntries++
	}

	// Check commutativity against every active invocation.
	for _, p := range checks {
		g.stats.Checks++
		if p.plan.never {
			undoNow()
			g.stats.Conflicts++
			return eff.Ret, engine.Conflict("gatekeeper: %s never commutes with active %s (tx %d)",
				method, p.e.inv.Method, p.e.tx.ID())
		}
		sub := map[string]core.Value{}
		for k, v := range p.e.log {
			sub[k] = v
		}
		for k, v := range p.sub {
			sub[k] = v
		}
		cond := core.SubstTerms(p.plan.cond, sub)
		ok, err := core.Eval(cond, &core.PairEnv{Inv1: p.e.inv, Inv2: inv, S1: g.res, S2: g.res})
		if err != nil {
			undoNow()
			return eff.Ret, fmt.Errorf("gatekeeper: checking (%s,%s): %w", p.e.inv.Method, method, err)
		}
		if !ok {
			undoNow()
			g.stats.Conflicts++
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, p.e.inv.Method, p.e.inv.Args, p.e.tx.ID())
		}
	}

	// Success: record as active, wire transaction hooks.
	g.entries = append(g.entries, &entry{tx: tx, inv: inv, log: log})
	if !g.hooked[tx] {
		g.hooked[tx] = true
		tx.OnRelease(func() { g.release(tx) })
	}
	if eff.Undo != nil {
		undo := eff.Undo
		tx.OnUndo(func() {
			g.mu.Lock()
			undo()
			g.mu.Unlock()
		})
	}
	return eff.Ret, nil
}

// release drops all of tx's active invocations and their logs (§3.3.1
// step 4). Installed automatically as a transaction release hook.
func (g *Forward) release(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.entries[:0]
	for _, e := range g.entries {
		if e.tx != tx {
			kept = append(kept, e)
		}
	}
	g.entries = kept
	delete(g.hooked, tx)
}

// ActiveInvocations reports how many invocations are currently logged
// (for tests and diagnostics).
func (g *Forward) ActiveInvocations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.entries)
}

// Stats returns a snapshot of the gatekeeper's work counters.
func (g *Forward) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Sync runs f under the gatekeeper's structure mutex, for callers that
// need raw access to the guarded structure outside an Invoke (setup,
// sequential phases, validation).
func (g *Forward) Sync(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
}

// mentionsRet reports whether the term references the return value of the
// given side anywhere.
func mentionsRet(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsRet(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsRet(x.L, side) || mentionsRet(x.R, side)
	}
	return false
}

// mentionsSide reports whether the term references an argument or return
// value of the given side anywhere.
func mentionsSide(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.ArgTerm:
		return x.Side == side
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsSide(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsSide(x.L, side) || mentionsSide(x.R, side)
	}
	return false
}

// containsNonPureFn reports whether t contains a state-function
// application on the given side that is not declared pure.
func containsNonPureFn(t core.Term, side core.Side, pure map[string]bool) bool {
	switch x := t.(type) {
	case core.FnTerm:
		if x.State == side && !pure[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if containsNonPureFn(a, side, pure) {
				return true
			}
		}
	case core.ArithTerm:
		return containsNonPureFn(x.L, side, pure) || containsNonPureFn(x.R, side, pure)
	}
	return false
}

// secondStateFns collects the distinct s2-state function applications in
// a condition, the mirror image of core.FirstStateFns.
func secondStateFns(c core.Cond) []core.FnTerm {
	var out []core.FnTerm
	for _, ft := range core.FirstStateFns(core.SwapSides(c)) {
		sw := core.SwapTermSides(ft).(core.FnTerm)
		out = append(out, sw)
	}
	return out
}
