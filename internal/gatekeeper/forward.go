// Package gatekeeper implements the paper's two logging-based conflict
// detection schemes (§3.3): forward gatekeepers for ONLINE-CHECKABLE
// specifications and general gatekeepers, which add state rollback to
// evaluate arbitrary L1 conditions.
//
// A gatekeeper is a special object interposed between transactions and a
// linearizable data structure. The whole sequence — intercept an
// invocation, check it for commutativity against every active invocation
// from other transactions, execute it, and return — appears atomic (a
// per-structure mutex). Because the gatekeeper interacts with the
// structure only through method invocations and declared state functions,
// it is agnostic to the concrete representation.
package gatekeeper

import (
	"fmt"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// Effect is what executing a method invocation produced: its return value
// and an inverse action that undoes its state change (nil for read-only
// invocations, which also covers mutating methods that happened not to
// change anything, e.g. add of a present element).
type Effect struct {
	Ret  core.Value
	Undo func()
}

// entry is an active logged invocation: the invocation itself plus the
// result log L_m(v) holding the values of the primitive functions Cm
// evaluated when it ran (§3.3.1 step 1), stored by slot index (the slot
// assignment is per method, fixed at NewForward time).
type entry struct {
	tx  *engine.Tx
	inv core.Invocation
	log []core.Value
}

var entryPool = sync.Pool{New: func() any { return new(entry) }}

// loggedFn is one primitive function of Cm with its assigned log slot.
type loggedFn struct {
	ft   core.FnTerm
	slot int
}

// fwdPlan is the static per-ordered-pair plan: the condition to check
// when the second method arrives while the first is active (compiled
// into a closure checker at NewForward time), plus the non-pure
// s2-state functions that must be evaluated before the second method
// executes, each bound to a pre2 slot by position.
type fwdPlan struct {
	cond    core.Cond
	fn2Pre  []core.FnTerm
	check   checkFn
	trivial bool // condition is the constant true: nothing to check
	never   bool // condition is the constant false
}

// pairCheck names an active-side method whose pairs with the incoming
// method need checking, with the plan to run.
type pairCheck struct {
	m1   string
	plan *fwdPlan
}

// pending is one queued commutativity check of an Invoke: the active
// entry, the plan, and the plan's pre-evaluated fn2Pre values as a
// window into the shared pre2 arena.
type pending struct {
	e    *entry
	plan *fwdPlan
	off  int
	n    int
}

// Forward is a forward gatekeeper (§3.3.1): it builds up information
// about method invocations as they happen, storing primitive-function
// results in per-invocation logs, and verifies that every new invocation
// commutes with all active invocations from other transactions. Active
// entries are indexed by method, so an incoming invocation only scans
// methods whose pair condition with it is non-trivial; pairs whose
// condition is the constant true cost nothing.
type Forward struct {
	spec *core.Spec
	res  core.StateFn // live resolver against the guarded structure

	pairs   map[[2]string]*fwdPlan
	cmPre   map[string][]loggedFn // Cm: non-pure s1 functions, evaluated pre-execution
	cmPost  map[string][]loggedFn // Cm: pure s1 functions, evaluated post-execution
	logLen  map[string]int        // log slots per method
	byFirst map[string][]pairCheck

	mu      sync.Mutex
	active  map[string][]*entry // active invocations, indexed by method
	nActive int
	hooked  map[*engine.Tx]bool
	stats   Stats

	// per-Invoke scratch, reused under mu to keep the hot path
	// allocation-free
	checks  []pending
	pre2buf []core.Value
}

// Stats counts the work a gatekeeper performed — the raw material of the
// overhead comparison in §3.4.
type Stats struct {
	Invocations uint64 // guarded invocations processed
	Checks      uint64 // pairwise commutativity conditions evaluated
	Conflicts   uint64 // invocations rejected
	Rollbacks   uint64 // journal rollback sweeps (general gatekeepers)
	LogEntries  uint64 // primitive-function results logged (forward)
}

// NewForward constructs a forward gatekeeper for spec guarding a
// structure whose state functions are resolved by res. It fails if any
// pair condition is not ONLINE-CHECKABLE (Definition 7), or uses a shape
// this engine cannot schedule (a non-pure state function needing a return
// value before it is known).
func NewForward(spec *core.Spec, res core.StateFn) (*Forward, error) {
	g := &Forward{
		spec:    spec,
		res:     res,
		pairs:   map[[2]string]*fwdPlan{},
		cmPre:   map[string][]loggedFn{},
		cmPost:  map[string][]loggedFn{},
		logLen:  map[string]int{},
		byFirst: map[string][]pairCheck{},
		active:  map[string][]*entry{},
		hooked:  map[*engine.Tx]bool{},
	}
	logSlots := map[string]map[string]int{} // m1 -> term key -> log slot
	names := spec.Sig.MethodNames()
	for _, m1 := range names {
		for _, m2 := range names {
			cond := spec.Cond(m1, m2)
			if !core.IsOnlineCheckableWith(cond, spec.Pure) {
				return nil, fmt.Errorf("gatekeeper: condition for (%s,%s) is not ONLINE-CHECKABLE: %s (use a general gatekeeper)", m1, m2, cond)
			}
			plan := &fwdPlan{cond: cond}
			switch cond.(type) {
			case core.TrueCond:
				plan.trivial = true
			case core.FalseCond:
				plan.never = true
			}
			// Collect the primitive function set Cm1 (all s1 functions in
			// the condition) and schedule each: pure functions evaluate
			// after execution (the return value is then available);
			// non-pure functions must run in the pre-state and therefore
			// may not mention r1. Every logged function gets a stable slot
			// in m1's log.
			for _, ft := range core.FirstStateFns(cond) {
				if logSlots[m1] == nil {
					logSlots[m1] = map[string]int{}
				}
				key := core.TermKey(ft)
				if _, seen := logSlots[m1][key]; seen {
					continue
				}
				if spec.Pure[ft.Fn] {
					// Pure functions over first-invocation values are
					// logged after execution (the paper's dist(x, r) log
					// entry); pure functions that also mention the second
					// invocation cannot be logged and are evaluated live
					// at check time instead, which is sound because they
					// are state-independent.
					if !mentionsSide(ft, core.Second) {
						slot := len(logSlots[m1])
						logSlots[m1][key] = slot
						g.cmPost[m1] = append(g.cmPost[m1], loggedFn{ft, slot})
					}
				} else {
					if mentionsRet(ft, core.First) {
						return nil, fmt.Errorf("gatekeeper: %s needs non-pure %s(s1,...) over r1, which cannot be evaluated in the pre-state", m1, ft.Fn)
					}
					slot := len(logSlots[m1])
					logSlots[m1][key] = slot
					g.cmPre[m1] = append(g.cmPre[m1], loggedFn{ft, slot})
				}
			}
			// Non-pure s2 functions must be evaluated in the state the
			// second method executes in, i.e. before it runs, so they may
			// not mention r2.
			for _, ft := range secondStateFns(cond) {
				if spec.Pure[ft.Fn] {
					continue // resolved live; pure functions ignore state
				}
				if mentionsRet(ft, core.Second) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s) needs non-pure %s(s2,...) over r2, which cannot be evaluated before execution", m1, m2, ft.Fn)
				}
				if containsNonPureFn(ft, core.First, spec.Pure) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s): non-pure s1 function nested inside %s(s2,...) is not supported", m1, m2, ft.Fn)
				}
				plan.fn2Pre = append(plan.fn2Pre, ft)
			}
			g.pairs[[2]string{m1, m2}] = plan
		}
	}
	for m := range logSlots {
		g.logLen[m] = len(logSlots[m])
	}
	// Compile every plan's condition, binding logged s1 functions to the
	// first method's log slots and pre-evaluated s2 functions to the
	// plan's fn2Pre slots, and index the non-trivial pairs by incoming
	// (second) method so Invoke skips always-commuting methods entirely.
	for _, m1 := range names {
		for _, m2 := range names {
			plan := g.pairs[[2]string{m1, m2}]
			bind := map[string]slotBinding{}
			for k, slot := range logSlots[m1] {
				bind[k] = slotBinding{src: srcLog1, slot: slot}
			}
			for i, ft := range plan.fn2Pre {
				bind[core.TermKey(ft)] = slotBinding{src: srcPre2, slot: i}
			}
			plan.check = compileCond(cond2(plan), bind, res)
			if !plan.trivial {
				g.byFirst[m2] = append(g.byFirst[m2], pairCheck{m1: m1, plan: plan})
			}
		}
	}
	return g, nil
}

func cond2(p *fwdPlan) core.Cond { return p.cond }

// Invoke executes one guarded method invocation for tx. exec performs the
// operation on the underlying structure and reports its effect. If the
// invocation does not commute with some active invocation, Invoke undoes
// the effect inside its atomic section and returns an error satisfying
// engine.IsConflict. On success the effect's undo action (if any) is
// registered with tx so that a later abort rolls it back, and the
// invocation joins the active log until tx ends.
func (g *Forward) Invoke(tx *engine.Tx, method string, args []core.Value, exec func() Effect) (core.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Invocations++

	e := entryPool.Get().(*entry)
	e.tx = tx
	e.inv = core.NewInvocation(method, args, nil)
	if n := g.logLen[method]; cap(e.log) >= n {
		e.log = e.log[:n]
	} else {
		e.log = make([]core.Value, n)
	}

	// Pre-pass A: our own non-pure s1 functions, in the pre-state.
	preEnv := core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}
	for _, lf := range g.cmPre[method] {
		v, err := core.EvalTerm(lf.ft, &preEnv)
		if err != nil {
			g.putEntry(e)
			return nil, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", lf.ft, method, err)
		}
		e.log[lf.slot] = v
		g.stats.LogEntries++
	}

	// Pre-pass B: per active invocation of a non-trivially-paired
	// method, the non-pure s2 functions of the condition we are about to
	// check, in the state m2 executes in.
	g.checks = g.checks[:0]
	g.pre2buf = g.pre2buf[:0]
	env := core.PairEnv{Inv2: e.inv, S1: g.res, S2: g.res}
	for _, pc := range g.byFirst[method] {
		for _, ae := range g.active[pc.m1] {
			if ae.tx == tx {
				continue
			}
			p := pending{e: ae, plan: pc.plan, off: len(g.pre2buf), n: len(pc.plan.fn2Pre)}
			if p.n > 0 {
				env.Inv1 = ae.inv
				for _, ft := range pc.plan.fn2Pre {
					v, err := core.EvalTerm(ft, &env)
					if err != nil {
						g.putEntry(e)
						return nil, fmt.Errorf("gatekeeper: evaluating %s for (%s,%s): %w", ft, ae.inv.Method, method, err)
					}
					g.pre2buf = append(g.pre2buf, v)
				}
			}
			g.checks = append(g.checks, p)
		}
	}

	// Execute.
	eff := exec()
	e.inv.Ret = core.Norm(eff.Ret)
	undoNow := func() {
		if eff.Undo != nil {
			eff.Undo()
		}
	}

	// Post-pass: our pure s1 functions (may use the return value).
	postEnv := core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}
	for _, lf := range g.cmPost[method] {
		v, err := core.EvalTerm(lf.ft, &postEnv)
		if err != nil {
			undoNow()
			g.putEntry(e)
			return nil, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", lf.ft, method, err)
		}
		e.log[lf.slot] = v
		g.stats.LogEntries++
	}

	// Check commutativity against every queued active invocation with
	// the pair's compiled checker.
	ctx := checkCtx{env: core.PairEnv{Inv2: e.inv, S1: g.res, S2: g.res}}
	for i := range g.checks {
		p := &g.checks[i]
		g.stats.Checks++
		if p.plan.never {
			undoNow()
			g.stats.Conflicts++
			method1, tx1 := p.e.inv.Method, p.e.tx.ID()
			g.putEntry(e)
			return eff.Ret, engine.Conflict("gatekeeper: %s never commutes with active %s (tx %d)",
				method, method1, tx1)
		}
		ctx.env.Inv1 = p.e.inv
		ctx.log1 = p.e.log
		ctx.pre2 = g.pre2buf[p.off : p.off+p.n]
		ok, err := p.plan.check(&ctx)
		if err != nil {
			undoNow()
			g.putEntry(e)
			return eff.Ret, fmt.Errorf("gatekeeper: checking (%s,%s): %w", p.e.inv.Method, method, err)
		}
		if !ok {
			undoNow()
			g.stats.Conflicts++
			inv1 := p.e.inv
			tx1 := p.e.tx.ID()
			g.putEntry(e)
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, inv1.Method, inv1.Args, tx1)
		}
	}

	// Success: record as active, wire transaction hooks.
	g.active[method] = append(g.active[method], e)
	g.nActive++
	if !g.hooked[tx] {
		g.hooked[tx] = true
		tx.OnRelease(func() { g.release(tx) })
	}
	if eff.Undo != nil {
		undo := eff.Undo
		tx.OnUndo(func() {
			g.mu.Lock()
			undo()
			g.mu.Unlock()
		})
	}
	return eff.Ret, nil
}

// putEntry recycles an entry whose invocation did not join the active
// log (or just left it).
func (g *Forward) putEntry(e *entry) {
	e.tx = nil
	e.inv = core.Invocation{}
	for i := range e.log {
		e.log[i] = nil
	}
	entryPool.Put(e)
}

// release drops all of tx's active invocations and their logs (§3.3.1
// step 4). Installed automatically as a transaction release hook.
func (g *Forward) release(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for m, es := range g.active {
		kept := es[:0]
		for _, e := range es {
			if e.tx != tx {
				kept = append(kept, e)
			} else {
				g.nActive--
				g.putEntry(e)
			}
		}
		for i := len(kept); i < len(es); i++ {
			es[i] = nil
		}
		g.active[m] = kept
	}
	delete(g.hooked, tx)
}

// ActiveInvocations reports how many invocations are currently logged
// (for tests and diagnostics).
func (g *Forward) ActiveInvocations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nActive
}

// Stats returns a snapshot of the gatekeeper's work counters.
func (g *Forward) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Sync runs f under the gatekeeper's structure mutex, for callers that
// need raw access to the guarded structure outside an Invoke (setup,
// sequential phases, validation).
func (g *Forward) Sync(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
}

// mentionsRet reports whether the term references the return value of the
// given side anywhere.
func mentionsRet(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsRet(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsRet(x.L, side) || mentionsRet(x.R, side)
	}
	return false
}

// mentionsSide reports whether the term references an argument or return
// value of the given side anywhere.
func mentionsSide(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.ArgTerm:
		return x.Side == side
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsSide(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsSide(x.L, side) || mentionsSide(x.R, side)
	}
	return false
}

// containsNonPureFn reports whether t contains a state-function
// application on the given side that is not declared pure.
func containsNonPureFn(t core.Term, side core.Side, pure map[string]bool) bool {
	switch x := t.(type) {
	case core.FnTerm:
		if x.State == side && !pure[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if containsNonPureFn(a, side, pure) {
				return true
			}
		}
	case core.ArithTerm:
		return containsNonPureFn(x.L, side, pure) || containsNonPureFn(x.R, side, pure)
	}
	return false
}

// secondStateFns collects the distinct s2-state function applications in
// a condition, the mirror image of core.FirstStateFns.
func secondStateFns(c core.Cond) []core.FnTerm {
	var out []core.FnTerm
	for _, ft := range core.FirstStateFns(core.SwapSides(c)) {
		sw := core.SwapTermSides(ft).(core.FnTerm)
		out = append(out, sw)
	}
	return out
}
