// Package gatekeeper implements the paper's two logging-based conflict
// detection schemes (§3.3): forward gatekeepers for ONLINE-CHECKABLE
// specifications and general gatekeepers, which add state rollback to
// evaluate arbitrary L1 conditions.
//
// A gatekeeper is a special object interposed between transactions and a
// linearizable data structure. The whole sequence — intercept an
// invocation, check it for commutativity against every active invocation
// from other transactions, execute it, and return — appears atomic (a
// per-structure mutex). Because the gatekeeper interacts with the
// structure only through method invocations and declared state functions,
// it is agnostic to the concrete representation.
package gatekeeper

import (
	"fmt"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// Effect is what executing a method invocation produced: its return value
// and an inverse action that undoes its state change (nil for read-only
// invocations, which also covers mutating methods that happened not to
// change anything, e.g. add of a present element).
type Effect struct {
	Ret  core.Value
	Undo func()
}

// entry is an active logged invocation: the invocation itself plus the
// result log L_m(v) holding the values of the primitive functions Cm
// evaluated when it ran (§3.3.1 step 1), stored by slot index (the slot
// assignment is per method, fixed at NewForward time).
type entry struct {
	tx  *engine.Tx
	inv core.Invocation
	log []core.Value

	// keys holds the entry's canonical index key per key slot of its
	// method (aligned with Forward.slots[method]); the unset sentinel
	// marks a slot where the entry is filed as unkeyed. gen is the
	// probe-generation stamp used to deduplicate an entry reachable
	// through several guards of one probe. pos is the entry's position
	// in its method's active list, maintained under swap-deletes so a
	// transaction's release touches only its own entries.
	keys []core.Value
	gen  uint64
	pos  int

	// g and undo let the entry itself serve as the transaction's undo
	// hook (engine.Undoer): registering the pooled entry pointer
	// allocates nothing, where wrapping eff.Undo in a fresh closure
	// allocated per mutating invocation.
	g    *Forward
	undo func()
}

// UndoTx rolls back the entry's effect under the gatekeeper mutex.
// Undo hooks run before release hooks during an abort, so the entry is
// still live (not yet recycled) when this fires.
func (e *entry) UndoTx(*engine.Tx) {
	e.g.mu.Lock()
	if e.undo != nil {
		e.undo()
	}
	e.g.mu.Unlock()
}

var entryPool = sync.Pool{New: func() any { return new(entry) }}

// loggedFn is one primitive function of Cm with its assigned log slot.
type loggedFn struct {
	ft   core.FnTerm
	slot int
}

// fwdPlan is the static per-ordered-pair plan: the condition to check
// when the second method arrives while the first is active (compiled
// into a closure checker at NewForward time), plus the non-pure
// s2-state functions that must be evaluated before the second method
// executes, each bound to a pre2 slot by position.
type fwdPlan struct {
	cond    core.Cond
	fn2Pre  []core.FnTerm
	check   checkFn
	trivial bool // condition is the constant true: nothing to check
	never   bool // condition is the constant false

	// Disequality index compilation (see index.go). When indexed, keys
	// holds one compiled guard per CNF clause of the condition;
	// incoming invocations probe the first method's key slots instead
	// of scanning its active list. pureDiseq marks conditions that are
	// exactly the conjunction of the guards, so a (non-NaN) collision
	// is a conflict without running the checker. probePost marks plans
	// whose probe needs r2 and must run after execution.
	keys      []indexKey[*entry]
	indexed   bool
	pureDiseq bool
	probePost bool

	// m1id/m2id are the pair's method IDs in the telemetry detector's
	// label vocabulary, compiled here so attribution on the hot path is
	// an array-indexed atomic add, never a map lookup.
	m1id, m2id uint16
}

// pairCheck names an active-side method whose pairs with the incoming
// method need checking, with the plan to run.
type pairCheck struct {
	m1   string
	plan *fwdPlan
}

// pending is one queued commutativity check of an Invoke: the active
// entry, the plan, and the plan's pre-evaluated fn2Pre values as a
// window into the shared pre2 arena.
type pending struct {
	e    *entry
	plan *fwdPlan
	off  int
	n    int
	// immediate marks a collision on a purely-disequality condition:
	// the condition is known false, so the check loop conflicts without
	// evaluating the checker.
	immediate bool
}

// Forward is a forward gatekeeper (§3.3.1): it builds up information
// about method invocations as they happen, storing primitive-function
// results in per-invocation logs, and verifies that every new invocation
// commutes with all active invocations from other transactions. Active
// entries are indexed by method, so an incoming invocation only scans
// methods whose pair condition with it is non-trivial; pairs whose
// condition is the constant true cost nothing.
type Forward struct {
	spec *core.Spec
	res  core.StateFn // live resolver against the guarded structure

	pairs   map[[2]string]*fwdPlan
	cmPre   map[string][]loggedFn // Cm: non-pure s1 functions, evaluated pre-execution
	cmPost  map[string][]loggedFn // Cm: pure s1 functions, evaluated post-execution
	logLen  map[string]int        // log slots per method
	byFirst map[string][]pairCheck
	slots   map[string][]*keySlot[*entry] // disequality key slots per method

	tele *telemetry.Detector // attribution counters (method vocabulary)

	mu       sync.Mutex
	active   map[string][]*entry // active invocations, indexed by method
	nActive  int
	byTx     map[*engine.Tx][]*entry // each tx's own active entries, for O(own) release
	txLists  [][]*entry              // recycled byTx slices
	probeGen uint64

	// per-Invoke scratch, reused under mu to keep the hot path
	// allocation-free
	checks    []pending
	pre2buf   []core.Value
	deferred  []pairCheck
	probeKeys []core.Value
	// ctx is the compiled-checker evaluation context. A local checkCtx
	// escapes (its address flows into checker function values), so the
	// hot paths reuse this one field instead; it retains at most the
	// latest invocation between calls.
	ctx checkCtx
}

// Config tunes optional gatekeeper machinery.
type Config struct {
	// DisableIndex turns off the disequality-keyed active-set index,
	// restoring the seed behaviour of scanning every active entry of
	// each non-trivially-paired method. Benchmarks use it to quantify
	// the index.
	DisableIndex bool
}

// Stats counts the work a gatekeeper performed — the raw material of the
// overhead comparison in §3.4.
type Stats struct {
	Invocations uint64 // guarded invocations processed
	Checks      uint64 // pairwise commutativity conditions evaluated
	Conflicts   uint64 // invocations rejected
	Rollbacks   uint64 // journal rollback sweeps (general gatekeepers)
	LogEntries  uint64 // primitive-function results logged (forward)

	// Disequality-index effectiveness. Probes counts indexed pair
	// lookups; Collisions counts the active entries those probes
	// surfaced for full checking (hash collisions plus unkeyable
	// entries); FallbackScans counts full active-list scans of a
	// non-empty method list (unindexable pair, unkeyable probe value,
	// or index disabled). At large active windows a healthy index shows
	// Probes ≫ Collisions and few FallbackScans.
	Probes        uint64
	Collisions    uint64
	FallbackScans uint64

	// Cascade pipeline effectiveness (cascade detectors only): how far
	// down the filter pipeline invocations fell. FastAdmits counts
	// stage-1 lock-free admissions, FilterHits signature hits that
	// reached the optimistic path, OptScans/OptRetries the lock-free
	// chain scans and their version-stamp races, CascadeFallbacks
	// trips through the mutex-guarded overflow path.
	FastAdmits       uint64
	FilterHits       uint64
	OptScans         uint64
	OptRetries       uint64
	CascadeFallbacks uint64

	// Batch admission effectiveness (batched detectors only): how whole
	// admission batches fared. BatchesWhole counts batches whose every
	// member was admitted as one group, BatchesSplit batches that
	// group-admitted a prefix and serialized the rest, BatchesSerialized
	// batches that admitted nothing as a group.
	BatchesWhole      uint64
	BatchesSplit      uint64
	BatchesSerialized uint64
}

// NewForward constructs a forward gatekeeper for spec guarding a
// structure whose state functions are resolved by res. It fails if any
// pair condition is not ONLINE-CHECKABLE (Definition 7), or uses a shape
// this engine cannot schedule (a non-pure state function needing a return
// value before it is known).
func NewForward(spec *core.Spec, res core.StateFn) (*Forward, error) {
	return NewForwardConfig(spec, res, Config{})
}

// NewForwardConfig is NewForward with explicit configuration.
func NewForwardConfig(spec *core.Spec, res core.StateFn, cfg Config) (*Forward, error) {
	g := &Forward{
		spec:    spec,
		res:     res,
		pairs:   map[[2]string]*fwdPlan{},
		cmPre:   map[string][]loggedFn{},
		cmPost:  map[string][]loggedFn{},
		logLen:  map[string]int{},
		byFirst: map[string][]pairCheck{},
		slots:   map[string][]*keySlot[*entry]{},
		active:  map[string][]*entry{},
		byTx:    map[*engine.Tx][]*entry{},
	}
	logSlots := map[string]map[string]int{} // m1 -> term key -> log slot
	names := spec.Sig.MethodNames()
	g.tele = telemetry.Register("forward", spec.Sig.Name, names)
	for i1, m1 := range names {
		for i2, m2 := range names {
			cond := spec.Cond(m1, m2)
			if !core.IsOnlineCheckableWith(cond, spec.Pure) {
				return nil, fmt.Errorf("gatekeeper: condition for (%s,%s) is not ONLINE-CHECKABLE: %s (use a general gatekeeper)", m1, m2, cond)
			}
			plan := &fwdPlan{cond: cond, m1id: uint16(i1), m2id: uint16(i2)}
			switch cond.(type) {
			case core.TrueCond:
				plan.trivial = true
			case core.FalseCond:
				plan.never = true
			}
			// Collect the primitive function set Cm1 (all s1 functions in
			// the condition) and schedule each: pure functions evaluate
			// after execution (the return value is then available);
			// non-pure functions must run in the pre-state and therefore
			// may not mention r1. Every logged function gets a stable slot
			// in m1's log.
			for _, ft := range core.FirstStateFns(cond) {
				if logSlots[m1] == nil {
					logSlots[m1] = map[string]int{}
				}
				key := core.TermKey(ft)
				if _, seen := logSlots[m1][key]; seen {
					continue
				}
				if spec.Pure[ft.Fn] {
					// Pure functions over first-invocation values are
					// logged after execution (the paper's dist(x, r) log
					// entry); pure functions that also mention the second
					// invocation cannot be logged and are evaluated live
					// at check time instead, which is sound because they
					// are state-independent.
					if !mentionsSide(ft, core.Second) {
						slot := len(logSlots[m1])
						logSlots[m1][key] = slot
						g.cmPost[m1] = append(g.cmPost[m1], loggedFn{ft, slot})
					}
				} else {
					if mentionsRet(ft, core.First) {
						return nil, fmt.Errorf("gatekeeper: %s needs non-pure %s(s1,...) over r1, which cannot be evaluated in the pre-state", m1, ft.Fn)
					}
					slot := len(logSlots[m1])
					logSlots[m1][key] = slot
					g.cmPre[m1] = append(g.cmPre[m1], loggedFn{ft, slot})
				}
			}
			// Non-pure s2 functions must be evaluated in the state the
			// second method executes in, i.e. before it runs, so they may
			// not mention r2.
			for _, ft := range secondStateFns(cond) {
				if spec.Pure[ft.Fn] {
					continue // resolved live; pure functions ignore state
				}
				if mentionsRet(ft, core.Second) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s) needs non-pure %s(s2,...) over r2, which cannot be evaluated before execution", m1, m2, ft.Fn)
				}
				if containsNonPureFn(ft, core.First, spec.Pure) {
					return nil, fmt.Errorf("gatekeeper: (%s,%s): non-pure s1 function nested inside %s(s2,...) is not supported", m1, m2, ft.Fn)
				}
				plan.fn2Pre = append(plan.fn2Pre, ft)
			}
			g.pairs[[2]string{m1, m2}] = plan
		}
	}
	for m := range logSlots {
		g.logLen[m] = len(logSlots[m])
	}
	// Compile every plan's condition, binding logged s1 functions to the
	// first method's log slots and pre-evaluated s2 functions to the
	// plan's fn2Pre slots, and index the non-trivial pairs by incoming
	// (second) method so Invoke skips always-commuting methods entirely.
	for _, m1 := range names {
		for _, m2 := range names {
			plan := g.pairs[[2]string{m1, m2}]
			bind := map[string]slotBinding{}
			for k, slot := range logSlots[m1] {
				bind[k] = slotBinding{src: srcLog1, slot: slot}
			}
			for i, ft := range plan.fn2Pre {
				bind[core.TermKey(ft)] = slotBinding{src: srcPre2, slot: i}
			}
			plan.check = compileCond(cond2(plan), bind, res)
			if !cfg.DisableIndex && !plan.trivial && !plan.never {
				keys, pureDiseq, probePost, ok := compileIndex[*entry](
					plan.cond, spec.Pure, bind, res, true, g.slotFor(m1))
				// A probe that needs r2 can only run after execution,
				// but fn2Pre values must be captured per colliding
				// entry before it — irreconcilable, so such pairs keep
				// the scan.
				if ok && !(probePost && len(plan.fn2Pre) > 0) {
					plan.keys = keys
					plan.indexed = true
					plan.pureDiseq = pureDiseq
					plan.probePost = probePost
				}
			}
			if !plan.trivial {
				g.byFirst[m2] = append(g.byFirst[m2], pairCheck{m1: m1, plan: plan})
			}
		}
	}
	return g, nil
}

// slotFor interns a guard x term into method m1's key-slot list,
// deduplicating across pairs so that every pair guarding on the same
// first-side value shares one bucket map.
func (g *Forward) slotFor(m1 string) func(x core.Term, extract termFn) *keySlot[*entry] {
	return func(x core.Term, extract termFn) *keySlot[*entry] {
		xk := core.TermKey(x)
		for _, s := range g.slots[m1] {
			if core.TermKey(s.term) == xk {
				return s
			}
		}
		s := &keySlot[*entry]{term: x, extract: extract, index: map[core.Value]*bucket[*entry]{}}
		g.slots[m1] = append(g.slots[m1], s)
		return s
	}
}

func cond2(p *fwdPlan) core.Cond { return p.cond }

// Invoke executes one guarded method invocation for tx. exec performs the
// operation on the underlying structure and reports its effect. If the
// invocation does not commute with some active invocation, Invoke undoes
// the effect inside its atomic section and returns an error satisfying
// engine.IsConflict. On success the effect's undo action (if any) is
// registered with tx so that a later abort rolls it back, and the
// invocation joins the active log until tx ends.
//
// Arguments travel in a flat core.Vec passed by value — build it with
// core.Args1/Args2/... at the call site; no argument slice is ever
// allocated.
func (g *Forward) Invoke(tx *engine.Tx, method string, args core.Vec, exec func() Effect) (core.Value, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tele.IncInvocation()
	t0 := telemetry.LatClock()
	ret, err := g.invokeLocked(tx, method, args, exec)
	if obsInstrumented(t0) {
		g.obsInvoke(tx, method, t0, err)
	}
	return ret, err
}

// InvokeBatch admits ops in order under a single mutex acquisition —
// the serial execute-then-check loop with the per-invocation lock
// traffic amortized across the batch. It stops at the first refusal
// and returns the admitted prefix length: the bounding member's effect
// has been undone by the ordinary conflict path and members past it
// were never executed, so the caller re-runs everything from the
// boundary through the serial path, reproducing the refusal verdict
// (and its error) for the bounding op itself. Admitted members' Ret
// fields are filled in place; exec is called once per member with a
// one-element run.
func (g *Forward) InvokeBatch(ops []BatchOp, exec func(run []BatchOp)) int {
	if len(ops) == 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tele.IncInvocationN(len(ops))
	for i := range ops {
		op := &ops[i]
		ret, err := g.invokeLocked(op.Tx, op.Method, op.Args, func() Effect {
			run := ops[i : i+1]
			exec(run)
			return Effect{Ret: run[0].Ret, Undo: run[0].Undo}
		})
		if err != nil {
			if i == 0 {
				g.tele.BatchSerialized()
			} else {
				g.tele.BatchSplit()
			}
			return i
		}
		op.Ret = ret
	}
	g.tele.BatchWhole()
	return len(ops)
}

// invokeLocked is Invoke's body; the caller holds g.mu and has counted
// the invocation.
func (g *Forward) invokeLocked(tx *engine.Tx, method string, args core.Vec, exec func() Effect) (core.Value, error) {
	e := entryPool.Get().(*entry)
	e.tx = tx
	e.g = g
	e.inv = core.Invocation{Method: method, Args: args}
	if n := g.logLen[method]; cap(e.log) >= n {
		e.log = e.log[:n]
	} else {
		e.log = make([]core.Value, n)
	}

	// Pre-pass A: our own non-pure s1 functions, in the pre-state.
	preEnv := core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}
	for _, lf := range g.cmPre[method] {
		v, err := core.EvalTerm(lf.ft, &preEnv)
		if err != nil {
			g.putEntry(e)
			return core.Value{}, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", lf.ft, method, err)
		}
		e.log[lf.slot] = v
		g.tele.IncLogEntry()
	}

	// Pre-pass B: gather the commutativity checks this invocation owes.
	// Indexed pairs probe the first method's key slots and queue only
	// colliding entries; the rest scan its active list as the seed did.
	// Pairs whose probe needs r2 are deferred until after execution.
	// Queuing also captures each pair's non-pure s2 functions, in the
	// state m2 executes in.
	g.checks = g.checks[:0]
	g.pre2buf = g.pre2buf[:0]
	g.deferred = g.deferred[:0]
	env := core.PairEnv{Inv2: e.inv, S1: g.res, S2: g.res}
	for _, pc := range g.byFirst[method] {
		var err error
		switch {
		case pc.plan.indexed && pc.plan.probePost:
			g.deferred = append(g.deferred, pc)
		case pc.plan.indexed:
			err = g.probePair(tx, e, pc, &env)
		default:
			err = g.scanPair(tx, e, pc, &env)
		}
		if err != nil {
			g.putEntry(e)
			return core.Value{}, err
		}
	}

	// Execute.
	eff := exec()
	e.inv.Ret = eff.Ret
	undoNow := func() {
		if eff.Undo != nil {
			eff.Undo()
		}
	}

	// Post-pass: our pure s1 functions (may use the return value).
	postEnv := core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}
	for _, lf := range g.cmPost[method] {
		v, err := core.EvalTerm(lf.ft, &postEnv)
		if err != nil {
			undoNow()
			g.putEntry(e)
			return core.Value{}, fmt.Errorf("gatekeeper: evaluating %s for %s: %w", lf.ft, method, err)
		}
		e.log[lf.slot] = v
		g.tele.IncLogEntry()
	}

	// Deferred probes: their key needs r2, which exists only now. Such
	// plans carry no fn2Pre (enforced at compile time), so queuing after
	// execution is sound.
	for _, pc := range g.deferred {
		if err := g.probePair(tx, e, pc, &env); err != nil {
			undoNow()
			g.putEntry(e)
			return eff.Ret, err
		}
	}

	// Check commutativity against every queued active invocation with
	// the pair's compiled checker.
	g.ctx = checkCtx{env: core.PairEnv{Inv2: e.inv, S1: g.res, S2: g.res}}
	ctx := &g.ctx
	for i := range g.checks {
		p := &g.checks[i]
		if p.immediate {
			// Collision on a purely-disequality condition: some guard
			// x = y holds, so the condition is false by construction.
			undoNow()
			g.conflict(tx, p.plan)
			inv1 := p.e.inv
			tx1 := p.e.tx.ID()
			g.putEntry(e)
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, inv1.Method, inv1.Args, tx1)
		}
		g.tele.Check(p.plan.m1id, p.plan.m2id)
		if p.plan.never {
			undoNow()
			g.conflict(tx, p.plan)
			method1, tx1 := p.e.inv.Method, p.e.tx.ID()
			g.putEntry(e)
			return eff.Ret, engine.Conflict("gatekeeper: %s never commutes with active %s (tx %d)",
				method, method1, tx1)
		}
		ctx.env.Inv1 = p.e.inv
		ctx.log1 = p.e.log
		ctx.pre2 = g.pre2buf[p.off : p.off+p.n]
		ok, err := p.plan.check(ctx)
		if err != nil {
			undoNow()
			g.putEntry(e)
			return eff.Ret, fmt.Errorf("gatekeeper: checking (%s,%s): %w", p.e.inv.Method, method, err)
		}
		if !ok {
			undoNow()
			g.conflict(tx, p.plan)
			inv1 := p.e.inv
			tx1 := p.e.tx.ID()
			g.putEntry(e)
			return eff.Ret, engine.Conflict("gatekeeper: %s%v does not commute with active %s%v (tx %d)",
				method, args, inv1.Method, inv1.Args, tx1)
		}
	}

	// Success: record as active (and in the key index), wire
	// transaction hooks. Both hooks register interface pairs (the
	// gatekeeper / the pooled entry), not closures, so nothing escapes.
	g.indexEntry(method, e)
	e.pos = len(g.active[method])
	g.active[method] = append(g.active[method], e)
	g.nActive++
	g.tele.ObserveActive(g.nActive)
	if es, seen := g.byTx[tx]; !seen {
		tx.OnReleaser(g)
		if n := len(g.txLists); n > 0 {
			l := g.txLists[n-1]
			g.txLists[n-1] = nil
			g.txLists = g.txLists[:n-1]
			g.byTx[tx] = append(l, e)
		} else {
			g.byTx[tx] = []*entry{e}
		}
	} else {
		g.byTx[tx] = append(es, e)
	}
	if eff.Undo != nil {
		e.undo = eff.Undo
		tx.OnUndoer(e)
	}
	return eff.Ret, nil
}

// queueCheck queues one full commutativity check of the incoming
// invocation (method, described by env.Inv2) against active entry ae,
// capturing the plan's non-pure s2 functions first.
func (g *Forward) queueCheck(ae *entry, plan *fwdPlan, method string, env *core.PairEnv, immediate bool) error {
	p := pending{e: ae, plan: plan, off: len(g.pre2buf), n: len(plan.fn2Pre), immediate: immediate}
	if p.n > 0 {
		env.Inv1 = ae.inv
		for _, ft := range plan.fn2Pre {
			v, err := core.EvalTerm(ft, env)
			if err != nil {
				return fmt.Errorf("gatekeeper: evaluating %s for (%s,%s): %w", ft, ae.inv.Method, method, err)
			}
			g.pre2buf = append(g.pre2buf, v)
		}
	}
	g.checks = append(g.checks, p)
	return nil
}

// scanPair queues checks against every active entry of pc.m1 — the seed
// behaviour, kept as the fallback for unindexable pairs and unkeyable
// probe values.
func (g *Forward) scanPair(tx *engine.Tx, e *entry, pc pairCheck, env *core.PairEnv) error {
	entries := g.active[pc.m1]
	if len(entries) == 0 {
		return nil
	}
	g.tele.IncFallbackScan()
	for _, ae := range entries {
		if ae.tx == tx {
			continue
		}
		if err := g.queueCheck(ae, pc.plan, e.inv.Method, env, false); err != nil {
			return err
		}
	}
	return nil
}

// probePair evaluates the incoming invocation's probe keys for an
// indexed pair and queues checks only against colliding active entries
// of pc.m1. A probe value the index cannot canonicalize (or evaluate)
// falls back to the full scan. For purely-disequality conditions a
// collision on a non-NaN key queues an immediate conflict: equal keys
// mean equal values (core.MapKey's contract), which falsifies a guard
// and with it the whole condition. NaN keys collide conservatively —
// NaN ≠ NaN holds under ValueEq — so they still run the checker.
func (g *Forward) probePair(tx *engine.Tx, e *entry, pc pairCheck, env *core.PairEnv) error {
	g.tele.IncProbe()
	g.ctx = checkCtx{env: core.PairEnv{Inv2: e.inv, S1: g.res, S2: g.res}}
	keys := g.probeKeys[:0]
	for _, pk := range pc.plan.keys {
		v, err := pk.probe(&g.ctx)
		if err != nil {
			g.probeKeys = keys
			return g.scanPair(tx, e, pc, env)
		}
		k, kok := core.MapKey(v)
		if !kok {
			g.probeKeys = keys
			return g.scanPair(tx, e, pc, env)
		}
		keys = append(keys, k)
	}
	g.probeKeys = keys
	g.probeGen++
	gen := g.probeGen
	for i, pk := range pc.plan.keys {
		k := keys[i]
		isNaN := k.Kind() == core.KindNaN
		imm := pc.plan.pureDiseq && !isNaN
		for _, ae := range pk.slot.probe(k) {
			if ae.tx == tx || ae.gen == gen {
				continue
			}
			ae.gen = gen
			g.tele.IncCollision()
			if err := g.queueCheck(ae, pc.plan, e.inv.Method, env, imm); err != nil {
				return err
			}
		}
		for _, ae := range pk.slot.unkeyed {
			if ae.tx == tx || ae.gen == gen {
				continue
			}
			ae.gen = gen
			g.tele.IncCollision()
			if err := g.queueCheck(ae, pc.plan, e.inv.Method, env, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// indexEntry computes the entry's key per key slot of its method and
// files it in the corresponding buckets (or as unkeyed where the value
// resists canonicalization).
func (g *Forward) indexEntry(method string, e *entry) {
	slots := g.slots[method]
	if len(slots) == 0 {
		return
	}
	g.ctx = checkCtx{env: core.PairEnv{Inv1: e.inv, S1: g.res, S2: g.res}, log1: e.log}
	if cap(e.keys) >= len(slots) {
		e.keys = e.keys[:len(slots)]
	} else {
		e.keys = make([]core.Value, len(slots))
	}
	for i, s := range slots {
		v, err := s.extract(&g.ctx)
		if err == nil {
			if k, kok := core.MapKey(v); kok {
				e.keys[i] = k
				s.insert(k, e)
				continue
			}
		}
		e.keys[i] = unset
		s.insertUnkeyed(e)
	}
}

// dropFromIndex removes the entry from every key slot it was filed in.
func (g *Forward) dropFromIndex(method string, e *entry) {
	for i, s := range g.slots[method] {
		if i >= len(e.keys) {
			break
		}
		s.remove(e.keys[i], e)
	}
}

// putEntry recycles an entry whose invocation did not join the active
// log (or just left it). Every Value field is zeroed so a recycled
// record retains no user-type references through the pool (heap-growth
// fix: a ref-kind argument or log entry would otherwise pin arbitrary
// user object graphs for the lifetime of the pooled entry).
func (g *Forward) putEntry(e *entry) {
	e.tx = nil
	e.g = nil
	e.undo = nil
	e.inv.Args.Release()
	e.inv = core.Invocation{}
	for i := range e.log {
		e.log[i] = core.Value{}
	}
	for i := range e.keys {
		e.keys[i] = core.Value{}
	}
	e.keys = e.keys[:0]
	e.gen = 0
	e.pos = 0
	entryPool.Put(e)
}

// removeActive swap-deletes the entry from its method's active list,
// keeping the moved entry's pos current.
func (g *Forward) removeActive(m string, e *entry) {
	es := g.active[m]
	last := len(es) - 1
	moved := es[last]
	es[e.pos] = moved
	moved.pos = e.pos
	es[last] = nil
	g.active[m] = es[:last]
}

// ReleaseTx drops all of tx's active invocations and their logs (§3.3.1
// step 4). Installed automatically as a transaction release hook
// (engine.Releaser, so registration allocates nothing). It walks only
// the transaction's own entries, so ending a transaction costs O(its
// invocations) regardless of the active window size; the per-tx entry
// list is recycled for the next transaction.
func (g *Forward) ReleaseTx(tx *engine.Tx) {
	t0 := telemetry.LatClock()
	g.mu.Lock()
	defer g.mu.Unlock()
	defer telemetry.StageObserve(tx.Worker(), telemetry.StageCommit, t0)
	es := g.byTx[tx]
	for i, e := range es {
		m := e.inv.Method
		g.removeActive(m, e)
		g.dropFromIndex(m, e)
		g.nActive--
		g.putEntry(e)
		es[i] = nil
	}
	if es != nil {
		g.txLists = append(g.txLists, es[:0])
	}
	delete(g.byTx, tx)
}

// ActiveInvocations reports how many invocations are currently logged
// (for tests and diagnostics).
func (g *Forward) ActiveInvocations() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.nActive
}

// conflict attributes one rejected invocation to the plan's method pair
// and emits a trace event on the invoking transaction's worker track.
func (g *Forward) conflict(tx *engine.Tx, plan *fwdPlan) {
	g.tele.Conflict(plan.m1id, plan.m2id)
	if telemetry.TraceEnabled() {
		telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), g.tele.ID(), plan.m1id, plan.m2id)
	}
}

// Stats returns a snapshot of the gatekeeper's work counters, assembled
// from its telemetry detector.
func (g *Forward) Stats() Stats {
	return statsFromSnapshot(g.tele.Snapshot())
}

// Telemetry returns the gatekeeper's telemetry detector, whose snapshot
// additionally attributes checks and conflicts per method pair.
func (g *Forward) Telemetry() *telemetry.Detector { return g.tele }

// statsFromSnapshot maps a telemetry detector snapshot onto the legacy
// Stats shape.
func statsFromSnapshot(s telemetry.DetectorSnapshot) Stats {
	return Stats{
		Invocations:   s.Invocations,
		Checks:        s.Checks,
		Conflicts:     s.Conflicts,
		Rollbacks:     s.Rollbacks,
		LogEntries:    s.LogEntries,
		Probes:        s.Probes,
		Collisions:    s.Collisions,
		FallbackScans: s.FallbackScans,

		FastAdmits:       s.FastAdmits,
		FilterHits:       s.FilterHits,
		OptScans:         s.OptScans,
		OptRetries:       s.OptRetries,
		CascadeFallbacks: s.CascadeFallbacks,

		BatchesWhole:      s.BatchesWhole,
		BatchesSplit:      s.BatchesSplit,
		BatchesSerialized: s.BatchesSerial,
	}
}

// Sync runs f under the gatekeeper's structure mutex, for callers that
// need raw access to the guarded structure outside an Invoke (setup,
// sequential phases, validation).
func (g *Forward) Sync(f func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f()
}

// mentionsRet reports whether the term references the return value of the
// given side anywhere.
func mentionsRet(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsRet(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsRet(x.L, side) || mentionsRet(x.R, side)
	}
	return false
}

// mentionsSide reports whether the term references an argument or return
// value of the given side anywhere.
func mentionsSide(t core.Term, side core.Side) bool {
	switch x := t.(type) {
	case core.ArgTerm:
		return x.Side == side
	case core.RetTerm:
		return x.Side == side
	case core.FnTerm:
		for _, a := range x.Args {
			if mentionsSide(a, side) {
				return true
			}
		}
	case core.ArithTerm:
		return mentionsSide(x.L, side) || mentionsSide(x.R, side)
	}
	return false
}

// containsNonPureFn reports whether t contains a state-function
// application on the given side that is not declared pure.
func containsNonPureFn(t core.Term, side core.Side, pure map[string]bool) bool {
	switch x := t.(type) {
	case core.FnTerm:
		if x.State == side && !pure[x.Fn] {
			return true
		}
		for _, a := range x.Args {
			if containsNonPureFn(a, side, pure) {
				return true
			}
		}
	case core.ArithTerm:
		return containsNonPureFn(x.L, side, pure) || containsNonPureFn(x.R, side, pure)
	}
	return false
}

// secondStateFns collects the distinct s2-state function applications in
// a condition, the mirror image of core.FirstStateFns.
func secondStateFns(c core.Cond) []core.FnTerm {
	var out []core.FnTerm
	for _, ft := range core.FirstStateFns(core.SwapSides(c)) {
		sw := core.SwapTermSides(ft).(core.FnTerm)
		out = append(out, sw)
	}
	return out
}
