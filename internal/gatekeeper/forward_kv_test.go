package gatekeeper

import (
	"fmt"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// The kv fixture exercises the forward gatekeeper's two non-pure
// scheduling paths, which the set/kd specs never touch:
//
//   - cmPre: put's condition uses lookup(s1, k1) — a non-pure function of
//     the FIRST state over first-invocation arguments, evaluated and
//     logged in the pre-state before put executes;
//   - fn2Pre: the directed mirror uses lookup(s2, k2) — a non-pure
//     function of the SECOND state with no r2 dependency, pre-evaluated
//     against each active invocation before the new one executes.
//
// Conditions (both directions valid; brute-forced below):
//
//	put(k1,v1)/r1 ~ put(k2,v2)/r2: k1 ≠ k2 ∨ (r1 = v1 ∧ r2 = v2)
//	put(k1,v1)    ~ get(k2):       k1 ≠ k2 ∨ lookup(s1,k1) = v1
//	get(k1)       ~ put(k2,v2):    k1 ≠ k2 ∨ lookup(s2,k2) = v2
//	get ~ get: always
func kvOnlineSpec() *core.Spec {
	sig := &core.ADTSig{Name: "kv", Methods: []core.MethodSig{
		{Name: "put", Params: []string{"k", "v"}, HasRet: true},
		{Name: "get", Params: []string{"k"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("get", "get", core.True())
	s.Set("put", "put", core.Or(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Arg1(1)), core.Eq(core.Ret2(), core.Arg2(1))),
	))
	// Directed: put active, get arrives — the put must not have changed
	// its key's value (lookup evaluated in the put's pre-state: cmPre).
	s.Set("put", "get", core.Or(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Fn1("lookup", core.Arg1(0)), core.Arg1(1)),
	))
	// Directed: get active, put arrives — the put must write the value
	// its key already has (lookup evaluated in the put's pre-state,
	// which is s2: fn2Pre).
	s.Set("get", "put", core.Or(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Fn2("lookup", core.Arg2(0)), core.Arg2(1)),
	))
	return s
}

// fkv is a kv store guarded by the forward gatekeeper.
type fkv struct {
	g *Forward
	m map[int64]int64
}

func newFKV(t *testing.T, init map[int64]int64) *fkv {
	t.Helper()
	kv := &fkv{m: map[int64]int64{}}
	for k, v := range init {
		kv.m[k] = v
	}
	g, err := NewForward(kvOnlineSpec(), func(fn string, args []core.Value) (core.Value, error) {
		if fn != "lookup" {
			return core.Value{}, core.ErrUnknownFn(fn)
		}
		return core.VInt(kv.m[args[0].Int()]), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	kv.g = g
	return kv
}

func (kv *fkv) put(tx *engine.Tx, k, v int64) (int64, error) {
	ret, err := kv.g.Invoke(tx, "put", core.MakeVec(core.V(k), core.V(v)), func() Effect {
		old := kv.m[k]
		if old == v {
			return Effect{Ret: core.VInt(old)}
		}
		kv.m[k] = v
		return Effect{Ret: core.VInt(old), Undo: func() { kv.m[k] = old }}
	})
	if err != nil {
		return 0, err
	}
	return ret.Int(), nil
}

func (kv *fkv) get(tx *engine.Tx, k int64) (int64, error) {
	ret, err := kv.g.Invoke(tx, "get", core.MakeVec(core.V(k)), func() Effect {
		return Effect{Ret: core.VInt(kv.m[k])}
	})
	if err != nil {
		return 0, err
	}
	return ret.Int(), nil
}

// kvModel brute-forces the spec (both orientations).
type kvModel struct{ m map[int64]int64 }

func newKVModel(init map[int64]int64) *kvModel {
	m := &kvModel{m: map[int64]int64{}}
	for k, v := range init {
		m.m[k] = v
	}
	return m
}

func (m *kvModel) Clone() core.Model { return newKVModel(m.m) }

func (m *kvModel) Apply(method string, args []core.Value) (core.Value, error) {
	k := args[0].Int()
	switch method {
	case "put":
		old := m.m[k]
		m.m[k] = args[1].Int()
		return core.VInt(old), nil
	case "get":
		return core.VInt(m.m[k]), nil
	default:
		return core.Value{}, core.ErrUnknownFn(method)
	}
}

func (m *kvModel) StateKey() string {
	s := ""
	for k := int64(0); k < 4; k++ {
		s += fmt.Sprintf("%d=%d;", k, m.m[k])
	}
	return s
}

func (m *kvModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	if fn != "lookup" {
		return core.Value{}, core.ErrUnknownFn(fn)
	}
	return core.VInt(m.m[args[0].Int()]), nil
}

func TestKVOnlineSpecSound(t *testing.T) {
	spec := kvOnlineSpec()
	if got := spec.Classify(); got != core.ClassOnline {
		t.Fatalf("class = %v, want ONLINE-CHECKABLE", got)
	}
	states := []core.Model{
		newKVModel(nil),
		newKVModel(map[int64]int64{1: 1}),
		newKVModel(map[int64]int64{1: 2, 2: 1}),
	}
	var calls []core.Call
	for k := int64(1); k <= 2; k++ {
		calls = append(calls, core.Call{Method: "get", Args: []core.Value{core.V(k)}})
		for v := int64(0); v <= 2; v++ {
			calls = append(calls, core.Call{Method: "put", Args: []core.Value{core.V(k), core.V(v)}})
		}
	}
	bad, err := core.CheckCondSound(spec, states, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestForwardKVCmPreLogging(t *testing.T) {
	// put active (same-value, so lookup(s1,k)=v holds), get arrives:
	// the pre-state log must let it pass.
	kv := newFKV(t, map[int64]int64{1: 10})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := kv.put(tx1, 1, 10); err != nil {
		t.Fatal(err)
	}
	if v, err := kv.get(tx2, 1); err != nil || v != 10 {
		t.Fatalf("get after same-value put = %v, %v (should commute)", v, err)
	}

	// A value-changing put conflicts with a later get of the same key,
	// via the logged pre-state lookup.
	kv2 := newFKV(t, map[int64]int64{1: 10})
	tx3, tx4 := engine.NewTx(), engine.NewTx()
	defer tx3.Abort()
	defer tx4.Abort()
	if _, err := kv2.put(tx3, 1, 99); err != nil {
		t.Fatal(err)
	}
	if _, err := kv2.get(tx4, 1); !engine.IsConflict(err) {
		t.Fatalf("get after changing put should conflict, got %v", err)
	}
	if v, err := kv2.get(tx4, 2); err != nil || v != 0 {
		t.Fatalf("unrelated get = %v, %v", v, err)
	}
}

func TestForwardKVFn2PreEvaluation(t *testing.T) {
	// get active, put arrives: lookup(s2, k) is pre-evaluated before the
	// put executes — a same-value put passes, a changing put conflicts
	// and is rolled back.
	kv := newFKV(t, map[int64]int64{1: 10})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if v, err := kv.get(tx1, 1); err != nil || v != 10 {
		t.Fatalf("get = %v, %v", v, err)
	}
	if _, err := kv.put(tx2, 1, 10); err != nil {
		t.Fatalf("same-value put should commute with the read: %v", err)
	}
	if _, err := kv.put(tx2, 1, 99); !engine.IsConflict(err) {
		t.Fatalf("changing put should conflict with the read, got %v", err)
	}
	if kv.m[1] != 10 {
		t.Errorf("conflicting put not rolled back: m[1] = %d", kv.m[1])
	}
	if _, err := kv.put(tx2, 2, 5); err != nil {
		t.Fatalf("other-key put: %v", err)
	}
}

// TestForwardKVMatchesOracle: exhaustive allow/deny comparison against
// the interpreted condition with true pre-state bindings.
func TestForwardKVMatchesOracle(t *testing.T) {
	spec := kvOnlineSpec()
	var calls []core.Call
	for k := int64(1); k <= 2; k++ {
		calls = append(calls, core.Call{Method: "get", Args: []core.Value{core.V(k)}})
		for v := int64(0); v <= 2; v++ {
			calls = append(calls, core.Call{Method: "put", Args: []core.Value{core.V(k), core.V(v)}})
		}
	}
	states := []map[int64]int64{{}, {1: 1}, {1: 2, 2: 1}}
	for _, st := range states {
		for _, c1 := range calls {
			for _, c2 := range calls {
				// Oracle.
				m0 := newKVModel(st)
				pre1 := m0.Clone()
				mid := m0.Clone()
				r1, err := mid.Apply(c1.Method, c1.Args)
				if err != nil {
					t.Fatal(err)
				}
				pre2 := mid.Clone()
				post := mid.Clone()
				r2, err := post.Apply(c2.Method, c2.Args)
				if err != nil {
					t.Fatal(err)
				}
				env := &core.PairEnv{
					Inv1: core.NewInvocation(c1.Method, c1.Args, r1),
					Inv2: core.NewInvocation(c2.Method, c2.Args, r2),
					S1:   pre1.StateFn,
					S2:   pre2.StateFn,
				}
				want, err := core.Eval(spec.Cond(c1.Method, c2.Method), env)
				if err != nil {
					t.Fatal(err)
				}

				// Gatekeeper.
				kv := newFKV(t, st)
				tx1, tx2 := engine.NewTx(), engine.NewTx()
				invoke := func(tx *engine.Tx, c core.Call) error {
					if c.Method == "get" {
						_, err := kv.get(tx, c.Args[0].Int())
						return err
					}
					_, err := kv.put(tx, c.Args[0].Int(), c.Args[1].Int())
					return err
				}
				if err := invoke(tx1, c1); err != nil {
					t.Fatalf("first invocation conflicted: %v", err)
				}
				err = invoke(tx2, c2)
				got := err == nil
				if err != nil && !engine.IsConflict(err) {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("state %v: %s%v then %s%v: gatekeeper=%v oracle=%v",
						st, c1.Method, c1.Args, c2.Method, c2.Args, got, want)
				}
				tx2.Abort()
				tx1.Abort()
			}
		}
	}
}
