package gatekeeper

import (
	"fmt"

	"commlat/internal/core"
)

// This file compiles pair conditions into closure trees once, at
// gatekeeper construction time. The seed runtime re-substituted logged
// values into the condition AST (core.SubstTerms) and re-interpreted it
// (core.Eval) on every check, allocating a fresh substitution map each
// time; a compiled checker instead binds logged and pre-evaluated values
// by precomputed slot index and evaluates with zero allocations on the
// hot path: operands are tagged core.Values read straight out of flat
// slots, never boxed.
//
// Compiled checkers are NOT safe for concurrent use: function-application
// nodes reuse a scratch argument buffer allocated at compile time. Every
// gatekeeper runs its checkers under its own mutex, which serializes them.

// unset marks a slot whose value could not be captured (the general
// gatekeeper skips terms that fail to evaluate under rollback, exactly
// as the seed skipped their substitution); the compiled reader then
// falls back to live structural evaluation. The sentinel kind compares
// unequal to every value, so it can never be confused with a logged one.
var unset = core.Unset()

// checkCtx is the per-check evaluation context. log1 holds the first
// (active) invocation's logged slot values; pre2 holds the
// pre-evaluated stateful values of the pair's plan (fn2Pre slots for
// forward gatekeepers, fn2 slots for general ones). Slices may be nil
// when a plan has no slots of that kind.
type checkCtx struct {
	env  core.PairEnv
	log1 []core.Value
	pre2 []core.Value
}

type checkFn func(ctx *checkCtx) (bool, error)
type termFn func(ctx *checkCtx) (core.Value, error)

// slotBinding maps a term (by canonical key) to a slot in one of the two
// context slices. src selects the slice: srcLog1 or srcPre2.
type slotBinding struct {
	src  int
	slot int
}

const (
	srcLog1 = iota
	srcPre2
)

// compileCond compiles a condition into a checker. bind resolves terms
// that have recorded values (logged primitive-function results,
// pre-evaluated state functions) to their slots; every other term is
// compiled structurally, resolving state functions through res at check
// time (sound for pure functions, which ignore state — the only
// functions a correct plan leaves unbound).
func compileCond(c core.Cond, bind map[string]slotBinding, res core.StateFn) checkFn {
	switch x := c.(type) {
	case core.TrueCond:
		return func(*checkCtx) (bool, error) { return true, nil }
	case core.FalseCond:
		return func(*checkCtx) (bool, error) { return false, nil }
	case core.NotCond:
		inner := compileCond(x.C, bind, res)
		return func(ctx *checkCtx) (bool, error) {
			b, err := inner(ctx)
			return !b, err
		}
	case core.AndCond:
		l := compileCond(x.L, bind, res)
		r := compileCond(x.R, bind, res)
		return func(ctx *checkCtx) (bool, error) {
			lb, err := l(ctx)
			if err != nil || !lb {
				return false, err
			}
			return r(ctx)
		}
	case core.OrCond:
		l := compileCond(x.L, bind, res)
		r := compileCond(x.R, bind, res)
		return func(ctx *checkCtx) (bool, error) {
			lb, err := l(ctx)
			if err != nil || lb {
				return lb, err
			}
			return r(ctx)
		}
	case core.CmpCond:
		lt := compileTerm(x.L, bind, res)
		rt := compileTerm(x.R, bind, res)
		op := x.Op
		return func(ctx *checkCtx) (bool, error) {
			l, err := lt(ctx)
			if err != nil {
				return false, err
			}
			r, err := rt(ctx)
			if err != nil {
				return false, err
			}
			return core.Cmp(op, l, r)
		}
	default:
		panic(fmt.Sprintf("gatekeeper: unknown condition %T", c))
	}
}

func compileTerm(t core.Term, bind map[string]slotBinding, res core.StateFn) termFn {
	if b, ok := bind[core.TermKey(t)]; ok {
		// Recorded value, read by slot index. Falls back to structural
		// evaluation when the recording pass could not capture it.
		live := compileTermStructural(t, bind, res)
		src, slot := b.src, b.slot
		return func(ctx *checkCtx) (core.Value, error) {
			s := ctx.log1
			if src == srcPre2 {
				s = ctx.pre2
			}
			if slot < len(s) {
				if v := s[slot]; !v.IsUnset() {
					return v, nil
				}
			}
			return live(ctx)
		}
	}
	return compileTermStructural(t, bind, res)
}

func compileTermStructural(t core.Term, bind map[string]slotBinding, res core.StateFn) termFn {
	switch x := t.(type) {
	case core.ArgTerm:
		idx := x.Index
		if x.Side == core.First {
			return func(ctx *checkCtx) (core.Value, error) {
				if idx < 0 || idx >= ctx.env.Inv1.Args.Len() {
					return core.Value{}, fmt.Errorf("core: %s has no argument %d", ctx.env.Inv1.Method, idx)
				}
				return ctx.env.Inv1.Args.At(idx), nil
			}
		}
		return func(ctx *checkCtx) (core.Value, error) {
			if idx < 0 || idx >= ctx.env.Inv2.Args.Len() {
				return core.Value{}, fmt.Errorf("core: %s has no argument %d", ctx.env.Inv2.Method, idx)
			}
			return ctx.env.Inv2.Args.At(idx), nil
		}
	case core.RetTerm:
		if x.Side == core.First {
			return func(ctx *checkCtx) (core.Value, error) { return ctx.env.Inv1.Ret, nil }
		}
		return func(ctx *checkCtx) (core.Value, error) { return ctx.env.Inv2.Ret, nil }
	case core.ConstTerm:
		v := x.V
		return func(*checkCtx) (core.Value, error) { return v, nil }
	case core.FnTerm:
		fn := x.Fn
		argFns := make([]termFn, len(x.Args))
		for i, a := range x.Args {
			argFns[i] = compileTerm(a, bind, res)
		}
		// Scratch argument buffer, allocated once at compile time and
		// reused on every call. Safe because the owning gatekeeper
		// serializes checks under its mutex (see package note above);
		// nested FnTerms each compile to their own closure with their
		// own buffer, so recursion cannot clobber it.
		scratch := make([]core.Value, len(argFns))
		return func(ctx *checkCtx) (core.Value, error) {
			if res == nil {
				return core.Value{}, fmt.Errorf("core: no resolver for state s%s (function %s)", x.State, fn)
			}
			for i, af := range argFns {
				v, err := af(ctx)
				if err != nil {
					return core.Value{}, err
				}
				scratch[i] = v
			}
			return res(fn, scratch)
		}
	case core.ArithTerm:
		lt := compileTerm(x.L, bind, res)
		rt := compileTerm(x.R, bind, res)
		op := x.Op
		return func(ctx *checkCtx) (core.Value, error) {
			l, err := lt(ctx)
			if err != nil {
				return core.Value{}, err
			}
			r, err := rt(ctx)
			if err != nil {
				return core.Value{}, err
			}
			return core.Arith(op, l, r)
		}
	default:
		panic(fmt.Sprintf("gatekeeper: unknown term %T", t))
	}
}
