package gatekeeper

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// pairSpec is a two-key specification: link(x, y) commutes with another
// link only when BOTH endpoints differ, so two links conflict whenever
// they share either endpoint. Its two publication keys can hash to
// different shards, which makes it the canonical rendezvous workload.
func pairSpec() *core.Spec {
	sig := &core.ADTSig{Name: "graph", Methods: []core.MethodSig{
		{Name: "link", Params: []string{"x", "y"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("link", "link", core.And(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Ne(core.Arg1(1), core.Arg2(1))))
	return s
}

func TestShardRouteKeyOf(t *testing.T) {
	s, err := NewSharded(cellSpec(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shards() != 8 {
		t.Fatalf("Shards() = %d, want 8", s.Shards())
	}
	// Same key must route to the same shard regardless of method, and
	// the mapping must be deterministic.
	for k := int64(0); k < 64; k++ {
		args := core.Args1(core.VInt(k))
		su, ok := s.KeyOf("upd", args)
		if !ok {
			t.Fatalf("KeyOf(upd, %d) unroutable", k)
		}
		so, ok := s.KeyOf("obs", args)
		if !ok {
			t.Fatalf("KeyOf(obs, %d) unroutable", k)
		}
		if su != so {
			t.Fatalf("key %d routes upd->%d obs->%d", k, su, so)
		}
		if again, _ := s.KeyOf("upd", args); again != su {
			t.Fatalf("key %d not deterministic: %d then %d", k, su, again)
		}
		if su < 0 || su >= s.Shards() {
			t.Fatalf("key %d out of range shard %d", k, su)
		}
	}
	if _, ok := s.KeyOf("nope", core.Args1(core.VInt(1))); ok {
		t.Fatal("KeyOf admitted an unknown method")
	}
	if _, ok := s.KeyOf("upd", core.Vec{}); ok {
		t.Fatal("KeyOf admitted an arity-short vector")
	}
}

func TestShardRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32}} {
		s, err := NewSharded(cellSpec(), nil, tc.in)
		if err != nil {
			t.Fatal(err)
		}
		if s.Shards() != tc.want {
			t.Fatalf("shards=%d rounded to %d, want %d", tc.in, s.Shards(), tc.want)
		}
	}
}

// TestShardSingleShardMatchesCascade checks the degenerate router: one
// shard must behave exactly like the plain cascade (every invocation is
// shard-local).
func TestShardSingleShardMatchesCascade(t *testing.T) {
	s, err := NewSharded(cellSpec(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	ok := func() Effect { return Effect{Ret: core.VBool(true)} }
	if _, err := s.Invoke(tx1, "upd", core.Args1(core.VInt(7)), ok); err != nil {
		t.Fatalf("first upd(7): %v", err)
	}
	if _, err := s.Invoke(tx2, "upd", core.Args1(core.VInt(7)), ok); !engine.IsConflict(err) {
		t.Fatalf("second upd(7) err = %v, want conflict", err)
	}
	if _, err := s.Invoke(tx2, "upd", core.Args1(core.VInt(8)), ok); err != nil {
		t.Fatalf("upd(8): %v", err)
	}
	tx1.Commit()
	tx2.Commit()
	if n := s.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations", n)
	}
	if s.Telemetry().ShardLocals() == 0 {
		t.Fatal("no shard-local admissions counted")
	}
}

// TestShardRendezvousConflict drives two-key invocations whose keys
// deliberately straddle shards and checks that conflicts are still
// caught (shared endpoint) and admissions still succeed (disjoint
// endpoints), with the whole window draining afterwards.
func TestShardRendezvousConflict(t *testing.T) {
	s, err := NewSharded(pairSpec(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	ok := func() Effect { return Effect{Ret: core.VBool(true)} }
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := s.Invoke(tx1, "link", core.Args2(core.VInt(1), core.VInt(2)), ok); err != nil {
		t.Fatalf("link(1,2): %v", err)
	}
	// Shares endpoint 2 — must conflict no matter which shards 1, 2, 3
	// hash to.
	if _, err := s.Invoke(tx2, "link", core.Args2(core.VInt(3), core.VInt(2)), ok); !engine.IsConflict(err) {
		t.Fatalf("link(3,2) err = %v, want conflict", err)
	}
	// Shares endpoint 1 in the other position — the spec conjunction
	// makes it conflict too.
	if _, err := s.Invoke(tx2, "link", core.Args2(core.VInt(1), core.VInt(4)), ok); !engine.IsConflict(err) {
		t.Fatalf("link(1,4) err = %v, want conflict", err)
	}
	// Fully disjoint endpoints commute.
	if _, err := s.Invoke(tx2, "link", core.Args2(core.VInt(5), core.VInt(6)), ok); err != nil {
		t.Fatalf("link(5,6): %v", err)
	}
	tx1.Abort()
	tx2.Abort()
	if n := s.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations after abort", n)
	}
	if s.Telemetry().ShardCrossings() == 0 {
		t.Fatal("no crossing admissions counted for a two-key spec")
	}
}

// TestShardRendezvousUndoOnce checks exactly-once effect undo through
// the ghost-publication path: when a multi-shard admission is refused,
// the effect's Undo must run exactly once even though the invocation
// was (partially) published into several shards.
func TestShardRendezvousUndoOnce(t *testing.T) {
	s, err := NewSharded(pairSpec(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	tx1 := engine.NewTx()
	var undos atomic.Int32
	eff := func() Effect {
		return Effect{Ret: core.VBool(true), Undo: func() { undos.Add(1) }}
	}
	if _, err := s.Invoke(tx1, "link", core.Args2(core.VInt(1), core.VInt(2)), eff); err != nil {
		t.Fatalf("link(1,2): %v", err)
	}
	tx2 := engine.NewTx()
	// Shares the y endpoint (the spec is positional): conflict.
	if _, err := s.Invoke(tx2, "link", core.Args2(core.VInt(9), core.VInt(2)), eff); !engine.IsConflict(err) {
		t.Fatalf("want conflict, got %v", err)
	}
	if n := undos.Load(); n != 1 {
		t.Fatalf("refused admission ran Undo %d times, want 1", n)
	}
	tx1.Abort() // undoes link(1,2): one more
	tx2.Abort()
	if n := undos.Load(); n != 2 {
		t.Fatalf("after aborts Undo ran %d times, want 2", n)
	}
	if n := s.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations", n)
	}
}

// FuzzShardedAgreesWithSerial feeds one randomized invocation stream —
// single-key ops that usually stay shard-local and two-key ops that
// rendezvous across shards — through a sharded cascade and a plain
// serial cascade built from the same spec, and requires identical
// verdicts and return values on every operation.
func FuzzShardedAgreesWithSerial(f *testing.F) {
	f.Add([]byte{2, 1, 4, 0, 1, 10, 20, 2, 11, 30, 0, 12, 7, 7})
	f.Add([]byte{0, 3, 2, 1, 0, 1, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5})
	f.Add([]byte{5, 0, 8, 3, 9, 9, 8, 8, 7, 7, 6, 6, 5, 5, 4, 4, 3, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		sig := &core.ADTSig{Name: "fuzzsharded", Methods: []core.MethodSig{
			{Name: "a", Params: []string{"x"}, HasRet: true},
			{Name: "link", Params: []string{"x", "y"}, HasRet: true},
		}}
		spec := core.NewSpec(sig)
		spec.Set("a", "a", fuzzCond(data[0]))
		spec.Set("a", "link", core.Ne(core.Arg1(0), core.Arg2(0)))
		spec.Set("link", "link", core.And(
			core.Ne(core.Arg1(0), core.Arg2(0)),
			core.Ne(core.Arg1(1), core.Arg2(1))))

		shards := 1 << (data[1] % 4) // 1, 2, 4, 8
		cfg := CascadeConfig{}
		if data[2]%4 == 0 {
			cfg.SlotCapacity = 2 // force the overflow path regularly
		}
		sh, err := NewShardedConfig(spec, nil, cfg, shards)
		if err != nil {
			t.Fatalf("NewShardedConfig: %v", err)
		}
		se, err := NewCascadeConfig(spec, nil, cfg)
		if err != nil {
			t.Fatalf("NewCascadeConfig: %v", err)
		}

		ok := func() Effect { return Effect{Ret: core.VBool(true)} }

		const nTx = 3
		var shTx, seTx [nTx]*engine.Tx
		for i := range shTx {
			shTx[i], seTx[i] = engine.NewTx(), engine.NewTx()
		}
		defer func() {
			for i := range shTx {
				shTx[i].Abort()
				seTx[i].Abort()
			}
			if n := sh.ActiveInvocations(); n != 0 {
				t.Errorf("sharded window leaked %d invocations", n)
			}
			if n := se.ActiveInvocations(); n != 0 {
				t.Errorf("serial window leaked %d invocations", n)
			}
		}()

		ops := data[3:]
		for len(ops) >= 2 {
			sel, argB := ops[0], ops[1]
			ops = ops[2:]
			ti := int(sel) % nTx
			switch act := (sel / nTx) % 8; act {
			case 6:
				shTx[ti].Commit()
				seTx[ti].Commit()
				shTx[ti], seTx[ti] = engine.NewTx(), engine.NewTx()
				continue
			case 7:
				shTx[ti].Abort()
				seTx[ti].Abort()
				shTx[ti], seTx[ti] = engine.NewTx(), engine.NewTx()
				continue
			}
			var method string
			var args core.Vec
			x := int64(argB % 8) // small key space: force collisions
			if sel&1 == 0 {
				method, args = "a", core.Args1(core.VInt(x))
			} else {
				y := int64((argB >> 3) % 8)
				method, args = "link", core.Args2(core.VInt(x), core.VInt(y))
			}
			hr, herr := sh.Invoke(shTx[ti], method, args, ok)
			sr, serr := se.Invoke(seTx[ti], method, args, ok)
			if (herr == nil) != (serr == nil) {
				t.Fatalf("%s%v tx%d: sharded err=%v serial err=%v", method, args, ti, herr, serr)
			}
			if herr != nil {
				if !engine.IsConflict(herr) || !engine.IsConflict(serr) {
					t.Fatalf("%s%v: non-conflict errors: sharded=%v serial=%v", method, args, herr, serr)
				}
				continue
			}
			if hr != sr {
				t.Fatalf("%s%v tx%d: sharded ret=%v serial ret=%v", method, args, ti, hr, sr)
			}
		}
	})
}

// shardedExclusionStress is cascadeExclusionStress through the router:
// many goroutines hammer single-key ops, with the same per-key
// occupancy oracle checking writer/reader exclusion end to end.
func shardedExclusionStress(t *testing.T, shards, opsPerWorker int) {
	t.Helper()
	c, err := NewSharded(cellSpec(), nil, shards)
	if err != nil {
		t.Fatal(err)
	}

	const nKeys = 16
	var occupancy [nKeys]atomic.Int32 // writers << 16 | readers
	var violations atomic.Int32

	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < opsPerWorker; op++ {
				tx := engine.NewTx()
				k := int64(r.Intn(nKeys))
				write := r.Intn(3) == 0
				method := "obs"
				if write {
					method = "upd"
				}
				_, err := c.Invoke(tx, method, core.Args1(core.VInt(k)), func() Effect {
					return Effect{Ret: core.VBool(true)}
				})
				if err == nil {
					if write {
						v := occupancy[k].Add(1 << 16)
						if v != 1<<16 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-(1 << 16)) })
					} else {
						v := occupancy[k].Add(1)
						if v>>16 != 0 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-1) })
					}
					if r.Intn(4) == 0 {
						tx.Abort()
					} else {
						tx.Commit()
					}
				} else {
					if !engine.IsConflict(err) {
						t.Errorf("unexpected error: %v", err)
					}
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d exclusion violations", n)
	}
	if n := c.ActiveInvocations(); n != 0 {
		t.Fatalf("sharded window leaked %d invocations", n)
	}
	var total int32
	for i := range occupancy {
		total += occupancy[i].Load()
	}
	if total != 0 {
		t.Fatalf("occupancy counters did not drain: %d", total)
	}
}

// TestShardStressRace sweeps shard counts against GOMAXPROCS under the
// exclusion oracle; run with -race for the full interleaving check.
func TestShardStressRace(t *testing.T) {
	ops := 250
	if testing.Short() {
		ops = 60
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{2, 8} {
		for _, shards := range []int{1, 4, 16} {
			t.Run(fmt.Sprintf("procs=%d/shards=%d", procs, shards), func(t *testing.T) {
				runtime.GOMAXPROCS(procs)
				shardedExclusionStress(t, shards, ops)
			})
		}
	}
}

// TestShardRendezvousStressRace hammers the cross-shard path: two-key
// links whose conflicting pairs may meet in either endpoint's shard.
// The spec is positional — links conflict iff they share the x value or
// the y value — so the oracle keeps one occupancy array per position
// and flags any concurrent pair colliding in either.
func TestShardRendezvousStressRace(t *testing.T) {
	ops := 200
	if testing.Short() {
		ops = 50
	}
	c, err := NewSharded(pairSpec(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	const nKeys = 12
	var occX, occY [nKeys]atomic.Int32
	var violations atomic.Int32
	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w) * 7))
			for op := 0; op < ops; op++ {
				tx := engine.NewTx()
				x := int64(r.Intn(nKeys))
				y := int64(r.Intn(nKeys))
				_, err := c.Invoke(tx, "link", core.Args2(core.VInt(x), core.VInt(y)), func() Effect {
					return Effect{Ret: core.VBool(true)}
				})
				if err == nil {
					if occX[x].Add(1) != 1 {
						violations.Add(1)
					}
					if occY[y].Add(1) != 1 {
						violations.Add(1)
					}
					tx.OnRelease(func() {
						occX[x].Add(-1)
						occY[y].Add(-1)
					})
					if r.Intn(4) == 0 {
						tx.Abort()
					} else {
						tx.Commit()
					}
				} else {
					if !engine.IsConflict(err) {
						t.Errorf("unexpected error: %v", err)
					}
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d endpoint exclusion violations", n)
	}
	if n := c.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations", n)
	}
	var total int32
	for i := range occX {
		total += occX[i].Load() + occY[i].Load()
	}
	if total != 0 {
		t.Fatalf("occupancy counters did not drain: %d", total)
	}
	if c.Telemetry().ShardCrossings() == 0 {
		t.Fatal("stress never exercised the rendezvous path")
	}
}

// TestShardInvokeBatch checks routed batch admission: a pre-sorted
// same-shard batch admits as one run, and a batch with an interior
// conflict admits exactly the serial prefix.
func TestShardInvokeBatch(t *testing.T) {
	s, err := NewSharded(cellSpec(), nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(k int64) BatchOp {
		return BatchOp{Tx: engine.NewTx(), Method: "upd", Args: core.Args1(core.VInt(k))}
	}
	// Distinct keys grouped by shard: sort a small key range by KeyOf.
	var keys []int64
	for k := int64(0); len(keys) < 8; k++ {
		keys = append(keys, k)
	}
	bySh := map[int][]int64{}
	for _, k := range keys {
		sh, ok := s.KeyOf("upd", core.Args1(core.VInt(k)))
		if !ok {
			t.Fatalf("key %d unroutable", k)
		}
		bySh[sh] = append(bySh[sh], k)
	}
	var ops []BatchOp
	for _, ks := range bySh {
		for _, k := range ks {
			ops = append(ops, mk(k))
		}
	}
	execd := 0
	p := s.InvokeBatch(ops, func(run []BatchOp) {
		for i := range run {
			run[i].Ret = core.VBool(true)
		}
		execd += len(run)
	})
	if p != len(ops) {
		t.Fatalf("batch admitted %d of %d distinct-key ops", p, len(ops))
	}
	if execd != len(ops) {
		t.Fatalf("exec saw %d ops, want %d", execd, len(ops))
	}
	for i := range ops {
		ops[i].Tx.Commit()
	}
	if n := s.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations", n)
	}

	// Interior duplicate: admission stops at the serial verdict.
	dup := []BatchOp{mk(100), mk(101), mk(100), mk(102)}
	p = s.InvokeBatch(dup, func(run []BatchOp) {
		for i := range run {
			run[i].Ret = core.VBool(true)
		}
	})
	if p > 2 {
		t.Fatalf("batch admitted %d ops past an interior conflict", p)
	}
	for i := 0; i < p; i++ {
		dup[i].Tx.Commit()
	}
	for i := p; i < len(dup); i++ {
		dup[i].Tx.Abort()
	}
	if n := s.ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations after duplicate batch", n)
	}
}
