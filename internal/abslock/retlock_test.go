package abslock

import (
	"fmt"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// retSpec exercises return-value locks: a lookup-style ADT where get(k)
// returns a handle, and destroy(h) must not run concurrently with a get
// that returned the same handle — the conjunct pairs m1's RETURN with
// m2's argument, so get's lock is acquired post-execution.
func retSpec() *core.Spec {
	sig := &core.ADTSig{Name: "registry", Methods: []core.MethodSig{
		{Name: "get", Params: []string{"k"}, HasRet: true},
		{Name: "destroy", Params: []string{"h"}},
	}}
	s := core.NewSpec(sig)
	s.Set("get", "get", core.True())
	s.Set("get", "destroy", core.Ne(core.Ret1(), core.Arg2(0)))
	s.Set("destroy", "destroy", core.Ne(core.Arg1(0), core.Arg2(0)))
	return s
}

func TestRetLockScheme(t *testing.T) {
	scheme, err := Synthesize(retSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := scheme.Reduce()
	if r.ModeIndex("get:ret") < 0 {
		t.Fatalf("get:ret mode missing: %v", r.ModeNames())
	}
	// get's argument lock is superfluous and reduced away.
	if r.ModeIndex("get:k") >= 0 {
		t.Error("get:k should have been reduced away")
	}
	// The ret acquisition must be scheduled post-execution.
	for _, a := range r.Acquire["get"] {
		if a.Target != TargetRet {
			t.Errorf("unexpected pre-acquisition %+v for get", a)
		}
	}
}

func TestRetLockPostAcquireConflict(t *testing.T) {
	scheme, err := Synthesize(retSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(scheme.Reduce(), nil)

	// tx1's get returns handle 7: the ret lock is taken after execution.
	tx1 := engine.NewTx()
	defer tx1.Abort()
	ret, err := m.Invoke(tx1, "get", core.MakeVec(core.V(int64(1))), func() core.Value { return core.VInt(int64(7)) })
	if err != nil || ret != core.VInt(int64(7)) {
		t.Fatalf("get = %v, %v", ret, err)
	}
	// destroy(7) conflicts with the live get's return handle.
	tx2 := engine.NewTx()
	defer tx2.Abort()
	if err := m.PreAcquire(tx2, "destroy", core.MakeVec(core.V(int64(7)))); !engine.IsConflict(err) {
		t.Fatalf("destroy(7) should conflict, got %v", err)
	}
	// destroy(8) proceeds.
	if err := m.PreAcquire(tx2, "destroy", core.MakeVec(core.V(int64(8)))); err != nil {
		t.Fatal(err)
	}
	// The reverse direction: destroy(9) live, then a get returning 9
	// conflicts at POST-acquire — after execution — so the caller must
	// roll the execution back via the tx undo log.
	tx3, tx4 := engine.NewTx(), engine.NewTx()
	defer tx3.Abort()
	if err := m.PreAcquire(tx3, "destroy", core.MakeVec(core.V(int64(9)))); err != nil {
		t.Fatal(err)
	}
	executed := false
	_, err = m.Invoke(tx4, "get", core.MakeVec(core.V(int64(2))), func() core.Value {
		executed = true
		return core.VInt(int64(9))
	})
	if !engine.IsConflict(err) {
		t.Fatalf("get returning a live-destroyed handle should conflict, got %v", err)
	}
	if !executed {
		t.Error("post-acquire conflicts must happen after execution")
	}
	tx4.Abort()
}

func TestManagerTooManyModesPanics(t *testing.T) {
	// Build a synthetic scheme with 65 modes.
	s := &Scheme{ADT: "big", Acquire: map[string][]Acquisition{}}
	for i := 0; i < 65; i++ {
		s.Modes = append(s.Modes, Mode{Method: fmt.Sprintf("m%d", i), Slot: "ds"})
	}
	s.Incompat = make([][]bool, 65)
	for i := range s.Incompat {
		s.Incompat[i] = make([]bool, 65)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for > 64 modes")
		}
	}()
	NewManager(s, nil)
}

// TestRetLockTheorem1 confirms soundness+completeness for the
// ret-conjunct spec too.
func TestRetLockTheorem1(t *testing.T) {
	spec := retSpec()
	scheme, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, sch := range []*Scheme{scheme, scheme.Reduce()} {
		for h1 := int64(0); h1 < 3; h1++ {
			for h2 := int64(0); h2 < 3; h2++ {
				pairs := [][2]core.Invocation{
					{core.NewInvocation("get", []core.Value{core.V(int64(1))}, core.V(h1)), core.NewInvocation("destroy", []core.Value{core.V(h2)}, core.Value{})},
					{core.NewInvocation("destroy", []core.Value{core.V(h1)}, core.Value{}), core.NewInvocation("get", []core.Value{core.V(int64(1))}, core.V(h2))},
					{core.NewInvocation("destroy", []core.Value{core.V(h1)}, core.Value{}), core.NewInvocation("destroy", []core.Value{core.V(h2)}, core.Value{})},
					{core.NewInvocation("get", []core.Value{core.V(h1)}, core.VInt(int64(9))), core.NewInvocation("get", []core.Value{core.V(h2)}, core.VInt(int64(9)))},
				}
				for _, p := range pairs {
					want, err := core.Eval(spec.Cond(p[0].Method, p[1].Method), &core.PairEnv{Inv1: p[0], Inv2: p[1]})
					if err != nil {
						t.Fatal(err)
					}
					got := schemeAllows(t, sch, nil, p[0], p[1])
					if got != want {
						t.Fatalf("allows(%v, %v) = %v, spec says %v", p[0], p[1], got, want)
					}
				}
			}
		}
	}
}
