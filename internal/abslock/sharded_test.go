package abslock

import (
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

func newShardedRWSetManager(t *testing.T, shards int) *Manager {
	t.Helper()
	s, err := Synthesize(rwSetSpec())
	if err != nil {
		t.Fatal(err)
	}
	return NewManagerSharded(s.Reduce(), nil, shards)
}

// TestShardedManagerVerdicts checks the sharded fast tables change no
// verdict: disjoint writers fast-admit, colliding acquisitions conflict
// across both path combinations, and everything drains.
func TestShardedManagerVerdicts(t *testing.T) {
	m := newShardedRWSetManager(t, 8)
	if m.FastShards() != 8 {
		t.Fatalf("FastShards = %d, want 8", m.FastShards())
	}
	txs := make([]*engine.Tx, 32)
	for i := range txs {
		txs[i] = engine.NewTx()
		if err := m.PreAcquire(txs[i], "add", core.MakeVec(core.V(int64(i)))); err != nil {
			t.Fatalf("disjoint add %d: %v", i, err)
		}
	}
	if got := m.FastHolds(); got != 32 {
		t.Fatalf("FastHolds = %d, want 32 disjoint fast holds", got)
	}
	// Every key is guarded in whatever table it landed in.
	for i := 0; i < 32; i++ {
		probe := engine.NewTx()
		if err := m.PreAcquire(probe, "contains", core.MakeVec(core.V(int64(i)))); !engine.IsConflict(err) {
			t.Fatalf("key %d unguarded under sharded tables: %v", i, err)
		}
		probe.Abort()
	}
	for _, tx := range txs {
		tx.Commit()
	}
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after drain, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after drain, want 0", got)
	}
}

// TestShardedManagerBatch runs the AcquireBatch contract against
// sharded tables: a batch whose members route to different tables still
// admits whole, and an intra-batch duplicate still bounds the batch.
func TestShardedManagerBatch(t *testing.T) {
	m := newShardedRWSetManager(t, 4)
	txs := make([]*engine.Tx, 8)
	argss := make([]core.Vec, 8)
	for i := range txs {
		txs[i] = engine.NewTx()
		argss[i] = core.MakeVec(core.V(int64(200 + i)))
	}
	if got := m.AcquireBatch(txs, "add", argss); got != 8 {
		t.Fatalf("disjoint AcquireBatch = %d, want 8", got)
	}
	for _, tx := range txs {
		tx.Commit()
	}

	txs2 := make([]*engine.Tx, 4)
	keys := []int64{10, 11, 10, 12}
	argss2 := make([]core.Vec, 4)
	for i := range txs2 {
		txs2[i] = engine.NewTx()
		argss2[i] = core.MakeVec(core.V(keys[i]))
	}
	if got := m.AcquireBatch(txs2, "add", argss2); got != 2 {
		t.Fatalf("colliding AcquireBatch = %d, want prefix 2", got)
	}
	if err := m.PreAcquire(txs2[2], "add", argss2[2]); !engine.IsConflict(err) {
		t.Fatalf("serial re-run of duplicate key should conflict, got %v", err)
	}
	for _, tx := range txs2 {
		tx.Abort()
	}
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after drain, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after drain, want 0", got)
	}
}

// TestShardedManagerStressRace is the concurrent disjoint/overlap
// hammer against sharded fast tables; run with -race.
func TestShardedManagerStressRace(t *testing.T) {
	m := newShardedRWSetManager(t, 4)
	const workers = 8
	ops := 500
	if testing.Short() {
		ops = 100
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tx := engine.NewTx()
				k := int64(w*4 + i%8)
				err := m.PreAcquire(tx, "add", core.MakeVec(core.V(k)))
				if err != nil && !engine.IsConflict(err) {
					t.Errorf("unexpected error: %v", err)
				}
				if i%3 == 0 {
					tx.Abort()
				} else {
					tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after stress, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after stress, want 0", got)
	}
}
