package abslock_test

import (
	"fmt"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
)

// Synthesizing the paper's accumulator scheme (figures 7 → 8) and running
// transactions against it.
func ExampleSynthesize() {
	sig := &core.ADTSig{Name: "accumulator", Methods: []core.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "read", HasRet: true},
	}}
	spec := core.NewSpec(sig)
	spec.Set("inc", "inc", core.True())
	spec.Set("inc", "read", core.False())
	spec.Set("read", "read", core.True())

	scheme, _ := abslock.Synthesize(spec)
	reduced := scheme.Reduce()
	fmt.Println("full modes:", len(scheme.Modes), "reduced modes:", len(reduced.Modes))

	mgr := abslock.NewManager(reduced, nil)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	err1 := mgr.PreAcquire(tx1, "inc", core.MakeVec(core.V(int64(1))))
	err2 := mgr.PreAcquire(tx2, "read", core.Vec{})
	fmt.Println("inc acquired:", err1 == nil)
	fmt.Println("read conflicts:", engine.IsConflict(err2))
	tx2.Abort()
	tx1.Commit()
	// Output:
	// full modes: 4 reduced modes: 2
	// inc acquired: true
	// read conflicts: true
}
