package abslock

import (
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

func newRWSetManager(t *testing.T) *Manager {
	t.Helper()
	s, err := Synthesize(rwSetSpec())
	if err != nil {
		t.Fatal(err)
	}
	return NewManager(s.Reduce(), nil)
}

func TestManagerSameTxReentrant(t *testing.T) {
	m := newRWSetManager(t)
	tx := engine.NewTx()
	defer tx.Abort()
	// A transaction may re-acquire its own locks in any mode.
	if err := m.PreAcquire(tx, "contains", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.PreAcquire(tx, "add", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatalf("self-upgrade should not conflict: %v", err)
	}
}

func TestManagerConflictAndRelease(t *testing.T) {
	m := newRWSetManager(t)
	tx1 := engine.NewTx()
	tx2 := engine.NewTx()
	if err := m.PreAcquire(tx1, "add", core.MakeVec(core.V(int64(7)))); err != nil {
		t.Fatal(err)
	}
	err := m.PreAcquire(tx2, "contains", core.MakeVec(core.V(int64(7))))
	if !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	// Different element: fine.
	if err := m.PreAcquire(tx2, "contains", core.MakeVec(core.V(int64(8)))); err != nil {
		t.Fatal(err)
	}
	// Commit tx1; its locks vanish via the release hook.
	tx1.Commit()
	if err := m.PreAcquire(tx2, "add", core.MakeVec(core.V(int64(7)))); err != nil {
		t.Fatalf("lock should be free after commit: %v", err)
	}
	tx2.Abort()
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after both txs ended, want 0", got)
	}
}

func TestManagerReadersShare(t *testing.T) {
	m := newRWSetManager(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := m.PreAcquire(tx1, "contains", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.PreAcquire(tx2, "contains", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatalf("two contains on the same key should share: %v", err)
	}
	// But a writer now conflicts with both.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := m.PreAcquire(tx3, "remove", core.MakeVec(core.V(int64(1)))); !engine.IsConflict(err) {
		t.Fatalf("remove under readers should conflict, got %v", err)
	}
}

func TestManagerInvokeExecGating(t *testing.T) {
	m := newRWSetManager(t)
	tx1 := engine.NewTx()
	defer tx1.Abort()
	if err := m.PreAcquire(tx1, "add", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatal(err)
	}
	tx2 := engine.NewTx()
	defer tx2.Abort()
	ran := false
	_, err := m.Invoke(tx2, "add", core.MakeVec(core.V(int64(1))), func() core.Value {
		ran = true
		return core.VBool(true)
	})
	if !engine.IsConflict(err) {
		t.Fatalf("expected conflict, got %v", err)
	}
	if ran {
		t.Error("exec must not run when pre-acquisition conflicts")
	}
	ret, err := m.Invoke(tx2, "add", core.MakeVec(core.V(int64(2))), func() core.Value { return core.VBool(true) })
	if err != nil || ret != core.VBool(true) {
		t.Fatalf("Invoke = %v, %v", ret, err)
	}
}

func TestManagerMissingKeyFunc(t *testing.T) {
	part, err := rwSetSpec().PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(part)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(s, nil)
	tx := engine.NewTx()
	defer tx.Abort()
	if err := m.PreAcquire(tx, "add", core.MakeVec(core.V(int64(1)))); err == nil || engine.IsConflict(err) {
		t.Errorf("missing key function should be a hard error, got %v", err)
	}
}

func TestManagerPartitionSharing(t *testing.T) {
	part, err := rwSetSpec().PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(part)
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(s.Reduce(), map[string]KeyFunc{
		"part": func(v core.Value) core.Value { return core.VInt(v.Int() % 2) },
	})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := m.PreAcquire(tx1, "add", core.MakeVec(core.V(int64(2)))); err != nil {
		t.Fatal(err)
	}
	// 4 is a different element but the same partition: conflict.
	if err := m.PreAcquire(tx2, "add", core.MakeVec(core.V(int64(4)))); !engine.IsConflict(err) {
		t.Fatalf("same-partition add should conflict, got %v", err)
	}
	// 3 is the other partition: allowed.
	if err := m.PreAcquire(tx2, "add", core.MakeVec(core.V(int64(3)))); err != nil {
		t.Fatal(err)
	}
}

func TestManagerConcurrentStress(t *testing.T) {
	// Hammer the manager from many goroutines; the race detector and the
	// mutual-exclusion invariant (never two writers on one element) do
	// the checking.
	m := newRWSetManager(t)
	var owners sync.Map // element -> tx id currently holding a write lock
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				tx := engine.NewTx()
				el := int64((seed*31 + int64(i)) % 5)
				if err := m.PreAcquire(tx, "add", core.MakeVec(core.V(el))); err == nil {
					if prev, loaded := owners.LoadOrStore(el, tx.ID()); loaded {
						t.Errorf("two writers on %d: %v and %d", el, prev, tx.ID())
					}
					owners.Delete(el)
				}
				tx.Abort()
			}
		}(int64(w))
	}
	wg.Wait()
	if m.HeldLocks() != 0 {
		t.Errorf("locks leaked: %d", m.HeldLocks())
	}
}
