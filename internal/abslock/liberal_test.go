package abslock

import (
	"math/rand"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// preciseSetSpec is figure 2 — GUARDED-SIMPLE with Pi = "ri = false".
func preciseSetSpec() *core.Spec {
	neOrBothFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	neOrR1False := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)), core.Eq(core.Ret1(), core.Lit(false)))
	s := core.NewSpec(setSig())
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("add", "contains", neOrR1False)
	s.Set("remove", "remove", neOrBothFalse)
	s.Set("remove", "contains", neOrR1False)
	s.Set("contains", "contains", core.True())
	return s
}

func TestGuardedFormRecognition(t *testing.T) {
	spec := preciseSetSpec()
	form, ok := core.AsGuardedSimple(spec.Cond("add", "add"))
	if !ok {
		t.Fatal("figure 2's add~add should be GUARDED-SIMPLE")
	}
	if len(form.Conjuncts) != 1 {
		t.Fatalf("conjuncts = %+v", form.Conjuncts)
	}
	if !core.CondEqual(form.P1, core.Eq(core.Ret1(), core.Lit(false))) {
		t.Errorf("P1 = %s", form.P1)
	}
	if !core.CondEqual(form.P2, core.Eq(core.Ret2(), core.Lit(false))) {
		t.Errorf("P2 = %s", form.P2)
	}
	// add~contains: P2 is empty (true).
	form, ok = core.AsGuardedSimple(spec.Cond("add", "contains"))
	if !ok {
		t.Fatal("add~contains should be GUARDED-SIMPLE")
	}
	if _, isTrue := form.P2.(core.TrueCond); !isTrue {
		t.Errorf("P2 = %s, want true", form.P2)
	}
	// Conditions with state functions are not.
	if _, ok := core.AsGuardedSimple(core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Fn1("f", core.Arg1(0)), core.Lit(0)))); ok {
		t.Error("state functions must disqualify")
	}
	// Cross-side residue conjuncts are not side-local.
	if _, ok := core.AsGuardedSimple(core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Eq(core.Ret1(), core.Ret2()))); ok {
		t.Error("cross-side residue must disqualify")
	}
}

// TestLiberalImplementsFigure2 is the footnote-6 result: liberal locking
// allows a pair of invocations exactly when the PRECISE specification
// says they commute (something Theorem 1 proves plain locks cannot do).
func TestLiberalImplementsFigure2(t *testing.T) {
	spec := preciseSetSpec()
	scheme, err := SynthesizeLiberal(spec)
	if err != nil {
		t.Fatal(err)
	}
	methods := []string{"add", "remove", "contains"}
	rets := []core.Value{core.VBool(true), core.VBool(false)}
	for _, sch := range []*Scheme{scheme, scheme.Reduce()} {
		for _, m1 := range methods {
			for _, m2 := range methods {
				for v1 := int64(0); v1 < 2; v1++ {
					for v2 := int64(0); v2 < 2; v2++ {
						for _, r1 := range rets {
							for _, r2 := range rets {
								inv1 := core.NewInvocation(m1, []core.Value{core.VInt(v1)}, r1)
								inv2 := core.NewInvocation(m2, []core.Value{core.VInt(v2)}, r2)
								want, err := core.Eval(spec.Cond(m1, m2), &core.PairEnv{Inv1: inv1, Inv2: inv2})
								if err != nil {
									t.Fatal(err)
								}
								got := schemeAllows(t, sch, nil, inv1, inv2)
								if got != want {
									t.Fatalf("allows(%v, %v) = %v, precise spec says %v", inv1, inv2, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestLiberalNonMutatingAddsShare(t *testing.T) {
	scheme, err := SynthesizeLiberal(preciseSetSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(scheme.Reduce(), nil)
	tx1, tx2, tx3 := engine.NewTx(), engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	defer tx3.Abort()
	// Two non-mutating adds of the same element share.
	if _, err := m.Invoke(tx1, "add", core.Args1(core.VInt(5)), func() core.Value { return core.VBool(false) }); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Invoke(tx2, "add", core.Args1(core.VInt(5)), func() core.Value { return core.VBool(false) }); err != nil {
		t.Fatalf("non-mutating adds should share under liberal locking: %v", err)
	}
	// A mutating add of the same element conflicts (after execution, so
	// the caller must roll back via the tx undo log).
	ran := false
	if _, err := m.Invoke(tx3, "add", core.Args1(core.VInt(5)), func() core.Value { ran = true; return core.VBool(true) }); !engine.IsConflict(err) {
		t.Fatalf("mutating add should conflict, got %v", err)
	}
	if !ran {
		t.Error("guarded conflict must be detected post-execution")
	}
}

func TestLiberalPlainSimplePassThrough(t *testing.T) {
	// A plain SIMPLE spec through SynthesizeLiberal behaves identically
	// to Synthesize (strong-only modes).
	spec := rwSetSpec()
	lib, err := SynthesizeLiberal(spec)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 300; trial++ {
		inv1 := randInvocation(r, spec.Sig)
		inv2 := randInvocation(r, spec.Sig)
		a := schemeAllows(t, lib.Reduce(), nil, inv1, inv2)
		b := schemeAllows(t, plain.Reduce(), nil, inv1, inv2)
		if a != b {
			t.Fatalf("liberal and plain disagree on (%v, %v): %v vs %v", inv1, inv2, a, b)
		}
	}
}

func TestLiberalRejectsStatefulSpecs(t *testing.T) {
	sig := &core.ADTSig{Name: "uf", Methods: []core.MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("union", "find", core.Ne(core.Fn1("rep", core.Arg2(0)), core.Fn1("loser", core.Arg1(0), core.Arg1(1))))
	s.Set("union", "union", core.False())
	s.Set("find", "find", core.True())
	if _, err := SynthesizeLiberal(s); err == nil {
		t.Error("stateful conditions must be rejected")
	}
}

func TestLiberalFalseIsGlobal(t *testing.T) {
	scheme, err := SynthesizeLiberal(core.Bottom(setSig()))
	if err != nil {
		t.Fatal(err)
	}
	inv1 := core.NewInvocation("add", []core.Value{core.V(int64(1))}, core.VBool(true))
	inv2 := core.NewInvocation("contains", []core.Value{core.V(int64(9))}, core.VBool(false))
	if schemeAllows(t, scheme, nil, inv1, inv2) {
		t.Error("bottom spec must serialize everything")
	}
}
