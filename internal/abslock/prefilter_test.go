package abslock

import (
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// TestFastPathDisjointAccess checks the prefilter's reason for existing:
// acquisitions on distinct datums admit without a stripe mutex (visible
// as live fast holds), conflicts against fast holds are still detected
// from the stripe path, and everything drains on release.
func TestFastPathDisjointAccess(t *testing.T) {
	m := newRWSetManager(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if err := m.PreAcquire(tx1, "add", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatal(err)
	}
	if err := m.PreAcquire(tx2, "add", core.MakeVec(core.V(int64(2)))); err != nil {
		t.Fatal(err)
	}
	if got := m.FastHolds(); got == 0 {
		t.Fatalf("disjoint writers should hold fast-path locks, FastHolds = %d", got)
	}
	// A third transaction colliding with tx1's fast hold must conflict
	// even though tx1 never touched a stripe.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := m.PreAcquire(tx3, "contains", core.MakeVec(core.V(int64(1)))); !engine.IsConflict(err) {
		t.Fatalf("reader under a fast-held writer should conflict, got %v", err)
	}
	tx1.Commit()
	tx2.Abort()
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after release, want 0", got)
	}
	// The datum is free again — and free for the fast path.
	tx4 := engine.NewTx()
	defer tx4.Abort()
	if err := m.PreAcquire(tx4, "add", core.MakeVec(core.V(int64(1)))); err != nil {
		t.Fatalf("lock should be free after commit: %v", err)
	}
}

// TestFastPathSharedKeyFallsBack checks that compatible sharing of one
// datum never fast-admits: the second reader must see the first one's
// filter cell and take the stripe path, where read/read still shares.
func TestFastPathSharedKeyFallsBack(t *testing.T) {
	m := newRWSetManager(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := m.PreAcquire(tx1, "contains", core.MakeVec(core.V(int64(5)))); err != nil {
		t.Fatal(err)
	}
	fastBefore := m.FastHolds()
	if err := m.PreAcquire(tx2, "contains", core.MakeVec(core.V(int64(5)))); err != nil {
		t.Fatalf("readers should share: %v", err)
	}
	if got := m.FastHolds(); got != fastBefore {
		t.Errorf("second reader of the same key must not fast-admit: FastHolds %d -> %d", fastBefore, got)
	}
	// Both directions of the fast/stripe split are now live on one key;
	// a writer must conflict with the stripe-held read.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := m.PreAcquire(tx3, "remove", core.MakeVec(core.V(int64(5)))); !engine.IsConflict(err) {
		t.Fatalf("writer under readers should conflict, got %v", err)
	}
}

// TestFastPathStripeFirst covers the reverse interleaving: a stripe-held
// lock (forced by an earlier fallback) must make later acquirers of the
// same datum fall off the fast path and conflict in the stripe.
func TestFastPathStripeFirst(t *testing.T) {
	m := newRWSetManager(t)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx2.Abort()
	// Two reads drive tx2's hold onto the stripe path.
	if err := m.PreAcquire(tx1, "contains", core.MakeVec(core.V(int64(9)))); err != nil {
		t.Fatal(err)
	}
	if err := m.PreAcquire(tx2, "contains", core.MakeVec(core.V(int64(9)))); err != nil {
		t.Fatal(err)
	}
	tx1.Abort()
	// tx2's stripe hold alone now guards the datum; its filter count must
	// keep writers off the fast path and into the conflict.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := m.PreAcquire(tx3, "add", core.MakeVec(core.V(int64(9)))); !engine.IsConflict(err) {
		t.Fatalf("writer under a stripe-held read should conflict, got %v", err)
	}
}

// TestFastPathSlotExhaustion shrinks the fast table to two slots and
// checks that acquisitions past its capacity overflow to the stripes
// without changing any verdict, and that mixed fast/stripe holds drain.
func TestFastPathSlotExhaustion(t *testing.T) {
	s, err := Synthesize(rwSetSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(s.Reduce(), nil)
	m.fasts[0] = newFastTable(2, 0)

	const n = 8
	txs := make([]*engine.Tx, n)
	for i := range txs {
		txs[i] = engine.NewTx()
		if err := m.PreAcquire(txs[i], "add", core.MakeVec(core.V(int64(i)))); err != nil {
			t.Fatalf("disjoint add %d: %v", i, err)
		}
	}
	if got := m.FastHolds(); got > 2 {
		t.Fatalf("FastHolds = %d with a 2-slot table", got)
	}
	// Every datum is guarded regardless of which path holds it.
	for i := 0; i < n; i++ {
		probe := engine.NewTx()
		if err := m.PreAcquire(probe, "contains", core.MakeVec(core.V(int64(i)))); !engine.IsConflict(err) {
			t.Fatalf("key %d unguarded after slot exhaustion: %v", i, err)
		}
		probe.Abort()
	}
	for _, tx := range txs {
		tx.Commit()
	}
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after drain, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after drain, want 0", got)
	}
}

// TestAcquireBatch checks the batched mirror of the fast path: a
// disjoint batch admits whole with every hold live and guarded, a batch
// with an intra-batch collision bounds at the colliding member with its
// publications retracted (so the serial re-run sees exactly the serial
// state), and an external holder serializes the whole batch.
func TestAcquireBatch(t *testing.T) {
	m := newRWSetManager(t)

	// Disjoint batch: every member fast-admits in one call.
	txs := make([]*engine.Tx, 8)
	argss := make([]core.Vec, 8)
	for i := range txs {
		txs[i] = engine.NewTx()
		argss[i] = core.MakeVec(core.V(int64(100 + i)))
	}
	if got := m.AcquireBatch(txs, "add", argss); got != 8 {
		t.Fatalf("disjoint AcquireBatch = %d, want 8", got)
	}
	if got := m.FastHolds(); got == 0 {
		t.Fatalf("batch admission left no fast holds")
	}
	probe := engine.NewTx()
	if err := m.PreAcquire(probe, "contains", core.MakeVec(core.V(int64(103)))); !engine.IsConflict(err) {
		t.Fatalf("reader under a batch-held writer should conflict, got %v", err)
	}
	probe.Abort()
	for _, tx := range txs {
		tx.Commit()
	}
	if got := m.FastHolds(); got != 0 {
		t.Fatalf("FastHolds = %d after batch commit, want 0", got)
	}

	// Intra-batch collision: keys {10, 11, 10, 12} bound the batch at the
	// repeated key. The bounded member and its successor must be fully
	// retracted — the serial re-run then reproduces serial verdicts:
	// conflict for the duplicate, admission for the disjoint tail.
	txs2 := make([]*engine.Tx, 4)
	keys := []int64{10, 11, 10, 12}
	argss2 := make([]core.Vec, 4)
	for i := range txs2 {
		txs2[i] = engine.NewTx()
		argss2[i] = core.MakeVec(core.V(keys[i]))
	}
	if got := m.AcquireBatch(txs2, "add", argss2); got != 2 {
		t.Fatalf("colliding AcquireBatch = %d, want prefix 2", got)
	}
	if err := m.PreAcquire(txs2[2], "add", argss2[2]); !engine.IsConflict(err) {
		t.Fatalf("serial re-run of duplicate key should conflict, got %v", err)
	}
	if err := m.PreAcquire(txs2[3], "add", argss2[3]); err != nil {
		t.Fatalf("serial re-run of disjoint tail should admit: %v", err)
	}
	for _, tx := range txs2 {
		tx.Abort()
	}

	// External holder on a member's key: the serial path would conflict
	// at member 0, so the batch admits nothing.
	holder := engine.NewTx()
	if err := m.PreAcquire(holder, "add", core.MakeVec(core.V(int64(50)))); err != nil {
		t.Fatal(err)
	}
	tx3 := engine.NewTx()
	if got := m.AcquireBatch([]*engine.Tx{tx3}, "add", []core.Vec{core.MakeVec(core.V(int64(50)))}); got != 0 {
		t.Fatalf("batch under external holder = %d, want 0", got)
	}
	tx3.Abort()
	holder.Commit()
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after drain, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after drain, want 0", got)
	}
}

// TestFastPathConcurrentDisjoint hammers disjoint keyspaces from many
// goroutines — the workload the prefilter targets — and checks full
// drainage. Run with -race for the memory-model check of the
// publish/probe and release protocols.
func TestFastPathConcurrentDisjoint(t *testing.T) {
	m := newRWSetManager(t)
	const workers = 8
	ops := 500
	if testing.Short() {
		ops = 100
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				tx := engine.NewTx()
				// Key ranges overlap pairwise so fast holds, stripe
				// fallbacks, and genuine conflicts all occur.
				k := int64(w*4 + i%8)
				err := m.PreAcquire(tx, "add", core.MakeVec(core.V(k)))
				if err != nil && !engine.IsConflict(err) {
					t.Errorf("unexpected error: %v", err)
				}
				if i%3 == 0 {
					tx.Abort()
				} else {
					tx.Commit()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := m.FastHolds(); got != 0 {
		t.Errorf("FastHolds = %d after stress, want 0", got)
	}
	if got := m.HeldLocks(); got != 0 {
		t.Errorf("HeldLocks = %d after stress, want 0", got)
	}
}
