package abslock

import (
	"fmt"

	"commlat/internal/core"
)

// SynthesizeLiberal constructs the "more liberal abstract locking
// scheme" the paper's §3.2 footnote sketches and leaves to future work:
// simple predicates over an invocation's own arguments and return value
// are evaluated to choose the lock mode. It accepts GUARDED-SIMPLE
// conditions
//
//	D ∨ (P1 ∧ P2)
//
// (D a conjunction of slot disequalities, Pi side-local predicates; see
// core.AsGuardedSimple). For every disequality conjunct x ≠ y of a pair
// (m1, m2), both sides get a *pair-tagged* weak/strong mode pair: an
// invocation acquires the weak mode when its own guard holds and the
// strong mode otherwise, and only weak~weak is compatible. Two
// invocations sharing the datum therefore proceed exactly when P1 ∧ P2,
// and invocations on different data never interact — the condition
// D ∨ (P1 ∧ P2), implemented soundly AND completely by locks even though
// it is not SIMPLE (it lies strictly above the SIMPLE sub-lattice).
//
// The precise set specification of figure 2 has this shape with
// Pi = "ri = false": under liberal locking, non-mutating adds of the
// same element run concurrently — the behaviour Table 2 credits to the
// gatekeeper, now at lock cost.
//
// Guards that inspect the return value schedule their acquisitions after
// execution; a conflict then rolls the invocation back through the
// transaction's undo log, exactly like a TargetRet acquisition.
//
// Directed condition overrides are not supported (locks are
// direction-blind); the pair's stored condition must be the mechanical
// swap of its mirror.
func SynthesizeLiberal(spec *core.Spec) (*Scheme, error) {
	s := &Scheme{ADT: spec.Sig.Name, Acquire: map[string][]Acquisition{}}
	modeIdx := map[Mode]int{}
	addMode := func(m Mode) int {
		if i, ok := modeIdx[m]; ok {
			return i
		}
		i := len(s.Modes)
		s.Modes = append(s.Modes, m)
		modeIdx[m] = i
		return i
	}
	var incompat [][2]int
	mark := func(i, j int) { incompat = append(incompat, [2]int{i, j}) }

	// ds modes exist for false conditions.
	dsMode := map[string]int{}
	for _, ms := range spec.Sig.Methods {
		dsMode[ms.Name] = addMode(Mode{Method: ms.Name, Slot: "ds"})
		s.Acquire[ms.Name] = append(s.Acquire[ms.Name], Acquisition{Mode: dsMode[ms.Name], Target: TargetDS})
	}

	slotName := func(method string, slot core.SlotRef) (string, error) {
		ms, _ := spec.Sig.Method(method)
		if slot.IsRet {
			if !ms.HasRet {
				return "", fmt.Errorf("abslock: %s has no return value", method)
			}
			return "ret", nil
		}
		if slot.Arg >= len(ms.Params) {
			return "", fmt.Errorf("abslock: %s has no argument %d", method, slot.Arg)
		}
		return ms.Params[slot.Arg], nil
	}

	for _, p := range spec.Pairs() {
		m1, m2 := p[0], p[1]
		cond := spec.Cond(m1, m2)
		if m1 != m2 && !core.CondEqual(spec.Cond(m2, m1), core.SwapSides(cond)) {
			return nil, fmt.Errorf("abslock: (%s,%s) has a directed override; liberal locking is direction-blind", m1, m2)
		}
		form, ok := core.AsGuardedSimple(cond)
		if !ok {
			return nil, fmt.Errorf("abslock: condition for (%s,%s) is not GUARDED-SIMPLE: %s", m1, m2, cond)
		}
		switch form.Kind {
		case core.SimpleTrue:
			continue
		case core.SimpleFalse:
			mark(dsMode[m1], dsMode[m2])
			continue
		}
		_, p1False := form.P1.(core.FalseCond)
		_, p2False := form.P2.(core.FalseCond)
		plain := p1False && p2False
		for k, cj := range form.Conjuncts {
			n1, err := slotName(m1, cj.X)
			if err != nil {
				return nil, err
			}
			n2, err := slotName(m2, cj.Y)
			if err != nil {
				return nil, err
			}
			if cj.Key != "" {
				return nil, fmt.Errorf("abslock: keyed conjuncts are not supported by liberal synthesis (partition the spec first)")
			}
			tag := fmt.Sprintf("%s~%s#%d", m1, m2, k)
			if plain {
				// No weak path: one strong (unconditional) mode per side.
				i := addMode(Mode{Method: m1, Slot: n1, Key: tag})
				j := addMode(Mode{Method: m2, Slot: n2, Key: tag})
				mark(i, j)
				s.Acquire[m1] = appendAcq(s.Acquire[m1], Acquisition{Mode: i, Target: targetOf(cj.X), Arg: cj.X.Arg})
				if m1 != m2 || cj.X != cj.Y {
					s.Acquire[m2] = appendAcq(s.Acquire[m2], Acquisition{Mode: j, Target: targetOf(cj.Y), Arg: cj.Y.Arg})
				}
				continue
			}
			sW := addMode(Mode{Method: m1, Slot: n1, Key: tag + ":w"})
			sS := addMode(Mode{Method: m1, Slot: n1, Key: tag + ":s"})
			tW := addMode(Mode{Method: m2, Slot: n2, Key: tag + ":w"})
			tS := addMode(Mode{Method: m2, Slot: n2, Key: tag + ":s"})
			// Only weak~weak across the two sides is compatible.
			mark(sS, tW)
			mark(sS, tS)
			mark(sW, tS)

			g1 := core.Simplify(form.P1)
			g2 := core.Simplify(core.ToFirstSide(form.P2))
			if m1 == m2 && sW == tW && !core.CondEqual(g1, g2) {
				// A direction-blind lock cannot tell which invocation
				// plays which role in an asymmetric self-pair guard;
				// symmetrize to the (sound) conjunction.
				g1 = core.Simplify(core.And(g1, g2))
				g2 = g1
			}
			a1 := Acquisition{
				Mode: sS, WeakMode: sW, Guard: g1,
				Target: targetOf(cj.X), Arg: cj.X.Arg,
				After: cj.X.IsRet || core.MentionsRet(g1, core.First),
			}
			a2 := Acquisition{
				Mode: tS, WeakMode: tW, Guard: g2,
				Target: targetOf(cj.Y), Arg: cj.Y.Arg,
				After: cj.Y.IsRet || core.MentionsRet(g2, core.First),
			}
			s.Acquire[m1] = appendAcq(s.Acquire[m1], a1)
			if m1 != m2 || sW != tW || sS != tS {
				s.Acquire[m2] = appendAcq(s.Acquire[m2], a2)
			}
		}
	}

	s.Incompat = make([][]bool, len(s.Modes))
	for i := range s.Incompat {
		s.Incompat[i] = make([]bool, len(s.Modes))
	}
	for _, ij := range incompat {
		s.Incompat[ij[0]][ij[1]] = true
		s.Incompat[ij[1]][ij[0]] = true
	}
	return s, nil
}

func targetOf(slot core.SlotRef) Target {
	if slot.IsRet {
		return TargetRet
	}
	return TargetArg
}

// appendAcq deduplicates identical acquisitions (self-pairs with X == Y
// generate the same acquisition from both sides).
func appendAcq(list []Acquisition, a Acquisition) []Acquisition {
	for _, b := range list {
		if b.Mode == a.Mode && b.WeakMode == a.WeakMode && b.Target == a.Target && b.Arg == a.Arg {
			return list
		}
	}
	return append(list, a)
}
