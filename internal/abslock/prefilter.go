package abslock

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/sigfilter"
	"commlat/internal/telemetry"
)

// This file applies the lattice cascade's stage-1 conflict-signature
// prefilter to abstract locking: an invocation whose planned datum
// acquisitions land only in unoccupied filter cells takes its locks
// without touching a single stripe mutex. Each fast hold lives in one
// slot of a lock-free table (version word, holder id, datum-key hash,
// mode mask) published before the filter probe, so of two racing
// conflicting acquirers at least one observes the other and falls
// through to the stripe path; the stripe path in turn publishes its own
// holds into the same filter (see acquireInStripe) and scans the fast
// chains for incompatible holders, which closes the loop in the other
// direction. The ds-lock is never fast-pathed: any plan touching it
// goes straight to the stripes.
//
// Fast admission demands an exactly-self filter count, so compatible
// sharing of one datum (two readers of the same key) always runs the
// stripe path — the fast path accelerates the disjoint-access case the
// striping was built for, without changing a single verdict: decisions
// remain those of the mode-incompatibility relation.

// Version-word protocol for fast slots: bit 0 marks the slot live, the
// counter above it detects recycling. There is no pin bit — a live
// slot's fields are immutable until release, so optimistic readers only
// compare two version loads around their field reads.
const (
	fastLive    uint64 = 1
	fastVerStep uint64 = 2
)

// defaultFastSlots sizes the fast-hold table; past this many
// simultaneous fast holds, acquisitions overflow to the stripes.
const defaultFastSlots = 1 << 12

// fastTable is the lock-free fast-hold store shared by all stripes of
// one Manager.
type fastTable struct {
	filter *sigfilter.Filter
	capS   uint32

	//commvet:seqlock protects=txids,hash,modes
	ver   []atomic.Uint64
	txids []atomic.Uint64
	hash  []atomic.Uint64
	modes []atomic.Uint64
	next  []atomic.Uint32 // bucket chain links; slot+1, 0 terminates
	txNxt []uint64        // per-tx chain; owner-goroutine access only

	free       *sigfilter.Stack
	heads      []atomic.Uint32
	bucketMask uint64

	nLive atomic.Int64

	// relMu serializes unlinking (chain pushes stay lock-free).
	relMu sync.Mutex
}

func newFastTable(capS int, filterBits int) *fastTable {
	if capS <= 0 {
		capS = defaultFastSlots
	}
	ft := &fastTable{
		filter: sigfilter.New(filterBits),
		capS:   uint32(capS),
		ver:    make([]atomic.Uint64, capS),
		txids:  make([]atomic.Uint64, capS),
		hash:   make([]atomic.Uint64, capS),
		modes:  make([]atomic.Uint64, capS),
		next:   make([]atomic.Uint32, capS),
		txNxt:  make([]uint64, capS),
		free:   sigfilter.NewStack(capS),
	}
	nb := 64
	for nb < 2*capS {
		nb <<= 1
	}
	ft.heads = make([]atomic.Uint32, nb)
	ft.bucketMask = uint64(nb - 1)
	return ft
}

// tryAcquire attempts to take every planned datum acquisition on the
// fast path: publish one slot per acquisition, then probe the filter.
// If any probed cell counts more than this plan's own publications —
// any other holder, own transaction's older holds included — all slots
// are retracted and the caller proceeds on the stripe path. Plans must
// be free of ds-lock acquisitions.
func (m *Manager) tryAcquire(tx *engine.Tx, plan []plannedAcq) bool {
	n := len(plan)
	var slots [8]uint32
	var tabs [8]*fastTable
	for i := 0; i < n; i++ {
		ft := m.fastFor(plan[i].dk.h)
		s, ok := ft.free.Pop()
		if !ok {
			m.retractFast(tabs[:i], slots[:i])
			return false
		}
		tabs[i], slots[i] = ft, s
		ft.publish(s, tx.ID(), plan[i].dk.h, 1<<uint(plan[i].mode))
	}
	for i := 0; i < n; i++ {
		h := plan[i].dk.h
		ft := tabs[i]
		// Self-counting is per table: entries routed to another shard's
		// table cannot occupy this one's cells.
		var self int32
		for j := 0; j < n; j++ {
			if tabs[j] == ft && ft.filter.SameCell(plan[j].dk.h, h) {
				self++
			}
		}
		if ft.filter.Count(h) > self {
			m.retractFast(tabs[:n], slots[:n])
			return false
		}
	}
	for i := 0; i < n; i++ {
		tabs[i].attach(tx, slots[i])
		m.tele.ModeAcquire(uint16(plan[i].mode))
	}
	m.tele.CascadeFastAdmit()
	return true
}

// AcquireBatch is PreAcquire across a batch of same-method invocations:
// every member's pre-phase plan publishes to the fast table before any
// member probes, amortizing the publication round and skipping stripe
// traffic for the whole group. It returns the admitted prefix length.
// The first member whose plan cannot take the pure fast path — a
// ds-lock target, an unkeyable datum, slot exhaustion, a filter cell
// shared with an earlier member, or an external holder — bounds the
// batch; its publications (and everything after) are retracted, and the
// caller re-runs from the boundary through PreAcquire, which reproduces
// the serial verdict, conflicts included. Members admitted here hold
// exactly the locks PreAcquire would have granted on its fast path.
func (m *Manager) AcquireBatch(txs []*engine.Tx, method string, argss []core.Vec) int {
	n := min(len(txs), len(argss))
	if n == 0 {
		return 0
	}
	m.tele.IncInvocationN(n)

	// Plan phase: resolve every member lock-free. A member needing the
	// ds stripe (sidx -1 sorts first) or failing key resolution bounds
	// the planning prefix.
	flat := make([]plannedAcq, 0, n)
	off := make([]int, n+1)
	limit := n
	var scratch [8]plannedAcq
	for i := 0; i < n; i++ {
		p, err := m.planAcqs(scratch[:0], method, argss[i], core.Value{}, false)
		if err != nil || (len(p) > 0 && p[0].sidx < 0) {
			limit = i
			break
		}
		flat = append(flat, p...)
		off[i+1] = len(flat)
	}

	// Publish phase: one slot per planned acquisition, every member live
	// before any probes, each in its hash's fast table. Slot exhaustion
	// bounds the batch (the stripe path still works for the remainder).
	slots := make([]uint32, 0, len(flat))
	tabs := make([]*fastTable, 0, len(flat))
	for i := 0; i < limit; i++ {
		start := len(slots)
		exhausted := false
		for k := off[i]; k < off[i+1]; k++ {
			ft := m.fastFor(flat[k].dk.h)
			s, ok := ft.free.Pop()
			if !ok {
				m.retractFast(tabs[start:], slots[start:])
				slots, tabs = slots[:start], tabs[:start]
				exhausted = true
				break
			}
			slots = append(slots, s)
			tabs = append(tabs, ft)
			ft.publish(s, txs[i].ID(), flat[k].dk.h, 1<<uint(flat[k].mode))
		}
		if exhausted {
			limit = i
			break
		}
	}
	np := len(slots) // published acquisitions: flat[:np] aligns with slots

	// Probe phase, in admission order. Member i reproduces its serial
	// fast-path verdict: a cell shared with an earlier member means the
	// serial run would have seen that hold and diverted to the stripes,
	// and a count above the batch's own contribution means an external
	// holder; either bounds the batch. Cell comparisons are per table —
	// entries in different fast tables never share a cell.
	for i := 0; i < limit; i++ {
		ok := true
		for k := off[i]; k < off[i+1] && ok; k++ {
			h := flat[k].dk.h
			ft := tabs[k]
			for j := 0; j < off[i]; j++ {
				if tabs[j] == ft && ft.filter.SameCell(flat[j].dk.h, h) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			var selfAll int32
			for j := 0; j < np; j++ {
				if tabs[j] == ft && ft.filter.SameCell(flat[j].dk.h, h) {
					selfAll++
				}
			}
			if ft.filter.Count(h) > selfAll {
				ok = false
			}
		}
		if !ok {
			m.retractFast(tabs[off[i]:np], slots[off[i]:np])
			limit = i
			break
		}
	}

	for i := 0; i < limit; i++ {
		for k := off[i]; k < off[i+1]; k++ {
			tabs[k].attach(txs[i], slots[k])
			m.tele.ModeAcquire(uint16(flat[k].mode))
		}
	}
	m.tele.CascadeFastAdmitN(limit)
	switch {
	case limit == n:
		m.tele.BatchWhole()
	case limit == 0:
		m.tele.BatchSerialized()
	default:
		m.tele.BatchSplit()
	}
	if limit < n {
		m.tele.CascadeFilterHit()
	}
	return limit
}

func (m *Manager) retractFast(tabs []*fastTable, slots []uint32) {
	for i := 0; i < len(slots); {
		// One relMu acquisition per run of same-table slots.
		ft := tabs[i]
		ft.relMu.Lock()
		for ; i < len(slots) && tabs[i] == ft; i++ {
			ft.releaseSlotLocked(slots[i])
		}
		ft.relMu.Unlock()
	}
}

// publish fills a claimed slot and makes it discoverable: fields, then
// the live version, then the bucket chain, then the filter increment —
// anyone who sees the filter cell can find the slot through the chain.
func (ft *fastTable) publish(s uint32, txid, h, modeMask uint64) {
	v := ft.ver[s].Load() // free; we are the only claimant
	ft.txids[s].Store(txid)
	ft.hash[s].Store(h)
	ft.modes[s].Store(modeMask)
	ft.ver[s].Store(v + fastVerStep + fastLive)
	head := &ft.heads[h&ft.bucketMask]
	for {
		old := head.Load()
		ft.next[s].Store(old)
		if head.CompareAndSwap(old, s+1) {
			break
		}
	}
	ft.filter.Add(h)
	ft.nLive.Add(1)
}

// attach threads a fast hold onto the transaction's release chain,
// registering the table as a release hook on first contact.
func (ft *fastTable) attach(tx *engine.Tx, s uint32) {
	p, isNew := tx.Attach(ft)
	if isNew {
		tx.OnReleaser(ft)
	}
	ft.txNxt[s] = *p
	*p = uint64(s) + 1
}

// ReleaseTx frees every fast hold of tx (engine.Releaser).
func (ft *fastTable) ReleaseTx(tx *engine.Tx) {
	p, _ := tx.Attach(ft)
	w := *p
	if w == 0 {
		return
	}
	*p = 0
	t0 := telemetry.LatClock()
	ft.relMu.Lock()
	for w != 0 {
		s := uint32(w - 1)
		w = ft.txNxt[s]
		ft.releaseSlotLocked(s)
	}
	ft.relMu.Unlock()
	telemetry.StageObserve(tx.Worker(), telemetry.StageCommit, t0)
}

// releaseSlotLocked frees one live slot: version goes dead (so
// optimistic scans restart rather than follow a recycled link), the
// chain is unlinked, the filter cell decremented, the slot recycled.
// Caller holds relMu.
func (ft *fastTable) releaseSlotLocked(s uint32) {
	h := ft.hash[s].Load()
	v := ft.ver[s].Load()
	ft.ver[s].Store((v &^ fastLive) + fastVerStep)
	head := &ft.heads[h&ft.bucketMask]
	for {
		prev := head
		cur := prev.Load()
		for cur != 0 && cur != s+1 {
			prev = &ft.next[cur-1]
			cur = prev.Load()
		}
		if cur == 0 {
			break
		}
		if prev.CompareAndSwap(cur, ft.next[s].Load()) {
			break
		}
	}
	ft.filter.Remove(h)
	ft.txNxt[s] = 0
	ft.free.Push(s)
	ft.nLive.Add(-1)
}

// conflictScan is the stripe path's view into the fast table: after
// recording (and filter-publishing) its own hold, a stripe acquirer
// scans the bucket chain of its datum-key hash for a live fast hold of
// another transaction in an incompatible mode. Optimistic traversal:
// any version change after following a link restarts the walk.
func (m *Manager) conflictScan(tx *engine.Tx, dk *datumKey, mode int) error {
	ft := m.fastFor(dk.h)
	mask := m.incompat[mode]
	myID := tx.ID()
restart:
	link := ft.heads[dk.h&ft.bucketMask].Load()
	for link != 0 {
		s := link - 1
		v := ft.ver[s].Load()
		if v&fastLive != 0 && ft.hash[s].Load() == dk.h && ft.txids[s].Load() != myID {
			if conflicting := ft.modes[s].Load() & mask; conflicting != 0 {
				holder := ft.txids[s].Load()
				if ft.ver[s].Load() != v {
					goto restart // released mid-screen: not a holder
				}
				held := uint16(bits.TrailingZeros64(conflicting))
				m.tele.ModeWait(uint16(mode))
				m.tele.Conflict(held, uint16(mode))
				telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), m.tele.ID(), held, uint16(mode))
				return engine.Conflict("abstract lock held in a conflicting mode by tx %d (%s acquiring %s)",
					holder, m.scheme.ADT, m.scheme.Modes[mode])
			}
		}
		next := ft.next[s].Load()
		if ft.ver[s].Load() != v {
			goto restart
		}
		link = next
	}
	return nil
}

// FastHolds reports how many fast-path holds are currently live across
// all fast tables (tests and diagnostics).
func (m *Manager) FastHolds() int {
	n := 0
	for _, ft := range m.fasts {
		n += int(ft.nLive.Load())
	}
	return n
}

// FastShards reports the number of fast-table shards (1 for NewManager).
func (m *Manager) FastShards() int { return len(m.fasts) }
