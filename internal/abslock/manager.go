package abslock

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// KeyFunc evaluates a pure key function (such as a partition map) used by
// keyed lock acquisitions.
type KeyFunc func(core.Value) core.Value

// maxModes bounds a manageable scheme: mode hold-sets and incompatibility
// rows are 64-bit masks, which comfortably covers every scheme in this
// repository (reduced schemes have a handful of modes; even full
// pre-reduction schemes stay well under 64).
const maxModes = 64

// holder records one transaction's hold on a lock as a bitmask of modes.
type holder struct {
	tx    *engine.Tx
	modes uint64
}

// dlock is the multi-mode lock of one datum.
type dlock struct {
	holders []holder
}

// stripe is one shard of the datum-lock table: its own mutex, lock map,
// per-transaction held-key lists, and a small free list of recycled
// dlocks so steady-state acquisition does not allocate. The padding keeps
// adjacent stripes on separate cache lines.
//
// The lock map is keyed by the datum key's precomputed 64-bit hash with
// small collision buckets, not by the datumKey struct itself: a struct
// key embedding a tagged core.Value would make every map operation hash
// two strings and an interface field, which dominated the guarded
// application profiles. Hashing a uint64 is a single memhash64. Emptied
// buckets are deleted (so distinct-heavy workloads don't grow the map
// without bound) but their backing arrays are recycled through
// freeSlots, keeping steady-state acquisition allocation-free.
type stripe struct {
	mu        sync.Mutex
	data      map[uint64][]dslot
	held      map[*engine.Tx][]datumKey
	free      []*dlock
	freeHeld  [][]datumKey // recycled per-tx held-key lists
	freeSlots [][]dslot    // recycled collision-bucket backing arrays
	mgr       *Manager     // back-pointer for the shared prefilter
	_         [24]byte
}

// dslot is one datum lock in a stripe's collision bucket.
type dslot struct {
	dk datumKey
	l  *dlock
}

// maxFreeDlocks caps each stripe's dlock free list.
const maxFreeDlocks = 64

// Manager enforces a synthesized abstract-locking scheme at run time. It
// keeps one multi-mode lock per datum (argument or return value seen so
// far) plus the whole-structure lock, with per-transaction hold masks.
// Mode compatibility is checked by intersecting the acquired mode's
// incompatibility mask with other holders' mode masks. Locks are
// released when the owning transaction commits or aborts (all abstract
// locks are held to transaction end, per §3.2).
//
// The datum-lock table is striped: keys hash to one of a power-of-two
// number of stripes (sized from GOMAXPROCS), each with its own mutex,
// and the ds-lock has a dedicated stripe of its own, so disjoint
// acquisitions proceed in parallel instead of serializing on one global
// mutex. Held-key lists are partitioned per stripe, so releasing a
// transaction locks only the stripes it actually touched. Within one
// invocation, acquisitions are grouped by stripe and taken in ascending
// stripe order, one stripe lock at a time — no two stripe mutexes are
// ever held together, so lock-order inversion is impossible.
type Manager struct {
	scheme   *Scheme
	keys     map[string]KeyFunc
	incompat []uint64 // per mode: mask of conflicting modes

	mask    uint32
	stripes []stripe

	// fasts holds the pre-stripe conflict-signature prefilter tables
	// (see prefilter.go): plans free of ds-lock acquisitions whose datum
	// cells are unoccupied take their locks without a stripe mutex.
	// NewManager keeps a single shared table; NewManagerSharded
	// partitions the fast state by datum-key hash (fastFor) so workers
	// whose keys stay in one shard never touch another shard's filter or
	// slot words.
	fasts    []*fastTable
	fastMask uint32

	tele *telemetry.Detector // mode-acquisition counters (mode vocabulary)

	dsMu     sync.Mutex
	ds       dlock
	dsHooked map[*engine.Tx]struct{}
}

type datumKey struct {
	h   uint64 // precomputed v.Hash() ^ fnv64(key); derived, so safe under ==
	key string // "" for identity, else key-function name (namespaces values)
	v   core.Value
}

// numStripes picks the stripe count: the smallest power of two covering
// 4× GOMAXPROCS (over-provisioning reduces collision-induced contention),
// capped to keep idle managers small.
func numStripes() int {
	target := runtime.GOMAXPROCS(0) * 4
	n := 1
	for n < target && n < 256 {
		n <<= 1
	}
	return n
}

// NewManager creates a lock manager for scheme. keys must provide an
// implementation for every key function named by the scheme's
// acquisitions (nil is fine for purely identity schemes). Schemes with
// more than 64 modes are rejected; Reduce() keeps real schemes far below
// that.
func NewManager(scheme *Scheme, keys map[string]KeyFunc) *Manager {
	return newManagerWithStripes(scheme, keys, numStripes(), 1)
}

// NewManagerSharded is NewManager with the fast-path table partitioned
// into shards (rounded up to a power of two) by datum-key hash, the
// abslock mirror of gatekeeper.ShardedCascade's per-shard admission
// state: conflicting acquisitions hash to the same datum key and hence
// the same table, so verdicts are unchanged, but key-disjoint workers
// stop sharing filter cells and slot freelists. shards <= 1 is
// equivalent to NewManager.
func NewManagerSharded(scheme *Scheme, keys map[string]KeyFunc, shards int) *Manager {
	n := 1
	for n < shards && n < 256 {
		n <<= 1
	}
	return newManagerWithStripes(scheme, keys, numStripes(), n)
}

// newManagerWithStripes is the constructor with explicit stripe and
// fast-table counts (powers of two). Tests use a single-stripe manager
// as the reference oracle for the striped one.
func newManagerWithStripes(scheme *Scheme, keys map[string]KeyFunc, n, fastShards int) *Manager {
	if len(scheme.Modes) > maxModes {
		panic(fmt.Sprintf("abslock: scheme has %d modes; the manager supports ≤ %d (reduce the scheme or split the ADT)", len(scheme.Modes), maxModes))
	}
	m := &Manager{
		scheme:   scheme,
		keys:     keys,
		incompat: make([]uint64, len(scheme.Modes)),
		mask:     uint32(n - 1),
		stripes:  make([]stripe, n),
		dsHooked: map[*engine.Tx]struct{}{},
	}
	for i := range m.stripes {
		m.stripes[i].data = map[uint64][]dslot{}
		m.stripes[i].held = map[*engine.Tx][]datumKey{}
		m.stripes[i].mgr = m
	}
	m.fasts = make([]*fastTable, fastShards)
	for i := range m.fasts {
		m.fasts[i] = newFastTable(defaultFastSlots, 0)
	}
	m.fastMask = uint32(fastShards - 1)
	for i := range scheme.Modes {
		var mask uint64
		for j := range scheme.Modes {
			if scheme.Incompat[i][j] {
				mask |= 1 << uint(j)
			}
		}
		m.incompat[i] = mask
	}
	labels := make([]string, len(scheme.Modes))
	for i, mode := range scheme.Modes {
		labels[i] = mode.String()
	}
	m.tele = telemetry.Register("abslock", scheme.ADT, labels)
	return m
}

// Telemetry returns the manager's telemetry detector, whose snapshot
// reports per-mode acquisition/wait counters and per-mode-pair
// conflicts.
func (m *Manager) Telemetry() *telemetry.Detector { return m.tele }

// Scheme returns the scheme the manager enforces.
func (m *Manager) Scheme() *Scheme { return m.scheme }

func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (m *Manager) stripeIndex(dk *datumKey) int {
	return int(uint32(dk.h>>32^dk.h) & m.mask)
}

// fastFor routes a datum-key hash to its fast table. The shard index
// comes from the high bits of a golden-ratio product, independent of
// both the stripe index and the filter's cell bits, so one hot stripe
// or cell does not pile onto one table.
func (m *Manager) fastFor(h uint64) *fastTable {
	return m.fasts[uint32((h*0x9E3779B97F4A7C15)>>48)&m.fastMask]
}

// plannedAcq is one resolved acquisition of an invocation: its datum key
// (ignored for the ds-lock), target stripe (-1 for the ds stripe) and
// mode.
type plannedAcq struct {
	sidx int
	dk   datumKey
	mode int
}

// PreAcquire takes the ds-lock and argument locks for an invocation of
// method with args, in the scheme's modes. On conflict it returns an
// error satisfying engine.IsConflict and leaves any locks it already took
// held (they are released when the transaction aborts).
func (m *Manager) PreAcquire(tx *engine.Tx, method string, args core.Vec) error {
	return m.acquireSet(tx, method, args, core.Value{}, false)
}

// PostAcquire takes the post-execution locks: return-value targets plus
// any guarded acquisitions whose guard inspects the return value. A
// conflict here means the invocation must be rolled back by the
// transaction's undo log.
func (m *Manager) PostAcquire(tx *engine.Tx, method string, args core.Vec, ret core.Value) error {
	return m.acquireSet(tx, method, args, ret, true)
}

// acquireSet resolves the pre- or post-phase acquisitions of an
// invocation (modes, key functions, stripes — all computed outside any
// lock), orders them by stripe, and takes them one stripe at a time.
func (m *Manager) acquireSet(tx *engine.Tx, method string, args core.Vec, ret core.Value, post bool) error {
	var buf [8]plannedAcq
	plan, err := m.planAcqs(buf[:0], method, args, ret, post)
	if err != nil {
		return err
	}
	t0 := telemetry.LatClock()
	// Stage 1: plans free of ds-lock acquisitions try the lock-free
	// prefilter first; a miss on every planned cell takes the locks
	// without touching a stripe.
	if len(plan) > 0 && len(plan) <= len(buf) && plan[0].sidx >= 0 {
		if m.tryAcquire(tx, plan) {
			telemetry.StageObserve(tx.Worker(), telemetry.StageSigFilter, t0)
			return nil
		}
		m.tele.CascadeFilterHit()
		t0 = telemetry.StageObserve(tx.Worker(), telemetry.StageSigFilter, t0)
	}
	for i := 0; i < len(plan); {
		if plan[i].sidx < 0 {
			if err := m.acquireDS(tx, plan[i].mode); err != nil {
				telemetry.StageObserve(tx.Worker(), telemetry.StagePrecise, t0)
				return err
			}
			i++
			continue
		}
		// One stripe lock for the whole run of same-stripe acquisitions.
		s := &m.stripes[plan[i].sidx]
		s.mu.Lock()
		for ; i < len(plan) && &m.stripes[plan[i].sidx] == s; i++ {
			if err := m.acquireInStripe(s, tx, &plan[i].dk, plan[i].mode); err != nil {
				s.mu.Unlock()
				telemetry.StageObserve(tx.Worker(), telemetry.StagePrecise, t0)
				return err
			}
		}
		s.mu.Unlock()
	}
	if len(plan) > 0 {
		telemetry.StageObserve(tx.Worker(), telemetry.StagePrecise, t0)
	}
	return nil
}

// planAcqs resolves the pre- or post-phase acquisitions of one
// invocation into plan (appended and returned), ordered by stripe with
// the ds stripe (-1) first — the lock-free front half of acquireSet,
// shared with the batch path.
func (m *Manager) planAcqs(plan []plannedAcq, method string, args core.Vec, ret core.Value, post bool) ([]plannedAcq, error) {
	acqs := m.scheme.Acquire[method]
	for i := range acqs {
		a := &acqs[i]
		if (a.After || a.Target == TargetRet) != post {
			continue
		}
		mode, err := m.pickMode(a, method, args, ret)
		if err != nil {
			return plan, err
		}
		switch a.Target {
		case TargetDS:
			plan = append(plan, plannedAcq{sidx: -1, mode: mode})
		case TargetArg:
			dk, err := m.datumKeyFor(a.Key, args.At(a.Arg))
			if err != nil {
				return plan, err
			}
			plan = append(plan, plannedAcq{sidx: m.stripeIndex(&dk), dk: dk, mode: mode})
		case TargetRet:
			dk, err := m.datumKeyFor(a.Key, ret)
			if err != nil {
				return plan, err
			}
			plan = append(plan, plannedAcq{sidx: m.stripeIndex(&dk), dk: dk, mode: mode})
		}
	}
	// Deterministic per-invocation stripe order (stable insertion sort:
	// the plan is tiny). The ds stripe (-1) sorts first.
	for i := 1; i < len(plan); i++ {
		for j := i; j > 0 && plan[j].sidx < plan[j-1].sidx; j-- {
			plan[j], plan[j-1] = plan[j-1], plan[j]
		}
	}
	return plan, nil
}

func (m *Manager) datumKeyFor(key string, v core.Value) (datumKey, error) {
	if key != "" {
		f, ok := m.keys[key]
		if !ok {
			return datumKey{}, fmt.Errorf("abslock: no implementation for key function %q", key)
		}
		v = f(v)
	}
	// Tagged values carry a cheap precomputed hash; only KindRef datum
	// values (kd-tree points and the like) pay for formatting.
	h := v.Hash()
	if key != "" {
		h ^= fnv64(key)
	}
	return datumKey{h: h, key: key, v: v}, nil
}

// pickMode resolves a (possibly guarded) acquisition's mode against the
// invoking invocation.
func (m *Manager) pickMode(a *Acquisition, method string, args core.Vec, ret core.Value) (int, error) {
	if a.Guard == nil {
		return a.Mode, nil
	}
	ok, err := core.Eval(a.Guard, core.OwnEnv(core.MakeInvocation(method, args, ret)))
	if err != nil {
		return 0, fmt.Errorf("abslock: evaluating guard for %s: %w", method, err)
	}
	if ok {
		return a.WeakMode, nil
	}
	return a.Mode, nil
}

// Invoke guards a complete method invocation: pre-acquire, execute,
// post-acquire. exec runs only if the pre-acquisitions succeed.
func (m *Manager) Invoke(tx *engine.Tx, method string, args core.Vec, exec func() core.Value) (core.Value, error) {
	if err := m.PreAcquire(tx, method, args); err != nil {
		return core.Value{}, err
	}
	ret := exec()
	if err := m.PostAcquire(tx, method, args, ret); err != nil {
		return ret, err
	}
	return ret, nil
}

// acquireDS takes the whole-structure lock on its dedicated stripe.
func (m *Manager) acquireDS(tx *engine.Tx, mode int) error {
	m.dsMu.Lock()
	defer m.dsMu.Unlock()
	isNew, err := m.lockModes(tx, &m.ds, mode)
	if err != nil {
		return err
	}
	if isNew {
		if _, hooked := m.dsHooked[tx]; !hooked {
			m.dsHooked[tx] = struct{}{}
			tx.OnReleaser(m)
		}
	}
	return nil
}

// lookup finds dk's lock in its collision bucket (s.mu held).
func (s *stripe) lookup(dk *datumKey) *dlock {
	slots := s.data[dk.h]
	for i := range slots {
		if slots[i].dk == *dk {
			return slots[i].l
		}
	}
	return nil
}

// insert adds dk's lock to its collision bucket (s.mu held), reusing a
// recycled backing array for fresh buckets when one is available.
func (s *stripe) insert(dk *datumKey, l *dlock) {
	slots, ok := s.data[dk.h]
	if !ok {
		if n := len(s.freeSlots); n > 0 {
			slots = s.freeSlots[n-1]
			s.freeSlots[n-1] = nil
			s.freeSlots = s.freeSlots[:n-1]
		}
	}
	s.data[dk.h] = append(slots, dslot{*dk, l})
}

// remove drops dk from its collision bucket (s.mu held). The emptied
// slot is zeroed (datum keys embed core.Values that may reference user
// data); an emptied bucket is deleted from the map and its backing
// array recycled.
func (s *stripe) remove(dk *datumKey) {
	slots := s.data[dk.h]
	for i := range slots {
		if slots[i].dk == *dk {
			last := len(slots) - 1
			slots[i] = slots[last]
			slots[last] = dslot{}
			if last == 0 {
				delete(s.data, dk.h)
				if len(s.freeSlots) < maxFreeDlocks {
					s.freeSlots = append(s.freeSlots, slots[:0])
				}
			} else {
				s.data[dk.h] = slots[:last]
			}
			return
		}
	}
}

// acquireInStripe must run with s.mu held.
func (m *Manager) acquireInStripe(s *stripe, tx *engine.Tx, dk *datumKey, mode int) error {
	l := s.lookup(dk)
	fresh := false
	if l == nil {
		if n := len(s.free); n > 0 {
			l = s.free[n-1]
			s.free[n-1] = nil
			s.free = s.free[:n-1]
		} else {
			l = &dlock{}
		}
		s.insert(dk, l)
		fresh = true
	}
	var prevModes uint64
	for i := range l.holders {
		if l.holders[i].tx == tx {
			prevModes = l.holders[i].modes
			break
		}
	}
	isNew, err := m.lockModes(tx, l, mode)
	if err != nil {
		if fresh {
			s.remove(dk) // don't leave an empty lock behind
			s.recycle(l)
		}
		return err
	}
	if isNew {
		// Publish the hold into the shared prefilter before scanning
		// for fast-path holders: a concurrent fast acquirer either sees
		// this increment and diverts to the stripes, or published its
		// slot early enough for the scan below to find it.
		m.fastFor(dk.h).filter.Add(dk.h)
		if lst, hooked := s.held[tx]; !hooked {
			if n := len(s.freeHeld); n > 0 {
				lst = s.freeHeld[n-1]
				s.freeHeld[n-1] = nil
				s.freeHeld = s.freeHeld[:n-1]
			}
			s.held[tx] = append(lst, *dk)
			tx.OnReleaser(s)
		} else {
			s.held[tx] = append(lst, *dk)
		}
	}
	if err := m.conflictScan(tx, dk, mode); err != nil {
		// The scan found a conflicting fast-path holder: take back the
		// hold recorded above so a refused acquisition leaves nothing
		// behind — exactly as a lockModes refusal leaves nothing behind.
		m.retractStripeAcq(s, tx, dk, l, isNew, prevModes)
		return err
	}
	return nil
}

// retractStripeAcq undoes one just-recorded stripe acquisition after its
// fast-table conflict scan refused it. For a brand-new holder the holder
// record, held-list entry, and filter increment all go; for a mode
// upgrade the holder's mode mask reverts. Must run with s.mu held.
func (m *Manager) retractStripeAcq(s *stripe, tx *engine.Tx, dk *datumKey, l *dlock, isNew bool, prevModes uint64) {
	if !isNew {
		for i := range l.holders {
			if l.holders[i].tx == tx {
				l.holders[i].modes = prevModes
				break
			}
		}
		return
	}
	dropHolder(l, tx)
	m.fastFor(dk.h).filter.Remove(dk.h)
	if lst := s.held[tx]; len(lst) > 0 {
		n := len(lst) - 1
		lst[n] = datumKey{}
		s.held[tx] = lst[:n]
	}
	if len(l.holders) == 0 {
		s.remove(dk)
		s.recycle(l)
	}
}

// lockModes adds mode to tx's hold on l, reporting whether tx is a new
// holder of l. The caller must hold the lock guarding l.
func (m *Manager) lockModes(tx *engine.Tx, l *dlock, mode int) (bool, error) {
	mask := m.incompat[mode]
	var own *holder
	for i := range l.holders {
		h := &l.holders[i]
		if h.tx == tx {
			own = h
			continue
		}
		if conflicting := h.modes & mask; conflicting != 0 {
			// Attribute the conflict to (held mode, acquiring mode); with
			// several conflicting held modes, the lowest-numbered one.
			held := uint16(bits.TrailingZeros64(conflicting))
			m.tele.ModeWait(uint16(mode))
			m.tele.Conflict(held, uint16(mode))
			telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), m.tele.ID(), held, uint16(mode))
			return false, engine.Conflict("abstract lock held in a conflicting mode by tx %d (%s acquiring %s)",
				h.tx.ID(), m.scheme.ADT, m.scheme.Modes[mode])
		}
	}
	m.tele.ModeAcquire(uint16(mode))
	if own != nil {
		own.modes |= 1 << uint(mode)
		return false, nil
	}
	l.holders = append(l.holders, holder{tx: tx, modes: 1 << uint(mode)})
	return true, nil
}

func (s *stripe) recycle(l *dlock) {
	for i := range l.holders {
		l.holders[i] = holder{}
	}
	l.holders = l.holders[:0]
	if len(s.free) < maxFreeDlocks {
		s.free = append(s.free, l)
	}
}

// ReleaseTx drops everything tx holds in this stripe. The stripe itself
// is the transaction's release hook (engine.Releaser), installed on the
// transaction's first acquisition there, so registration allocates no
// closure. The held-key list is zeroed (datum keys embed core.Values
// that may reference user data) and recycled.
func (s *stripe) ReleaseTx(tx *engine.Tx) {
	t0 := telemetry.LatClock()
	defer telemetry.StageObserve(tx.Worker(), telemetry.StageCommit, t0)
	s.mu.Lock()
	lst := s.held[tx]
	for i := range lst {
		dk := &lst[i]
		if l := s.lookup(dk); l != nil {
			dropHolder(l, tx)
			s.mgr.fastFor(dk.h).filter.Remove(dk.h)
			if len(l.holders) == 0 {
				s.remove(dk)
				s.recycle(l)
			}
		}
		lst[i] = datumKey{}
	}
	if lst != nil {
		s.freeHeld = append(s.freeHeld, lst[:0])
	}
	delete(s.held, tx)
	s.mu.Unlock()
}

// ReleaseTx drops the transaction's ds-lock hold; the Manager is the
// ds-lock's release hook (engine.Releaser).
func (m *Manager) ReleaseTx(tx *engine.Tx) { m.releaseDS(tx) }

func (m *Manager) releaseDS(tx *engine.Tx) {
	m.dsMu.Lock()
	dropHolder(&m.ds, tx)
	delete(m.dsHooked, tx)
	m.dsMu.Unlock()
}

// ReleaseAll drops every lock the transaction holds, across all stripes.
// Per-stripe release hooks installed at acquisition time normally take
// care of this at transaction end, each touching only its own stripe;
// ReleaseAll is the exhaustive variant for callers managing locks
// outside a transaction lifecycle. It is idempotent.
func (m *Manager) ReleaseAll(tx *engine.Tx) {
	m.releaseDS(tx)
	for i := range m.stripes {
		m.stripes[i].ReleaseTx(tx)
	}
}

func dropHolder(l *dlock, tx *engine.Tx) {
	for i := range l.holders {
		if l.holders[i].tx == tx {
			last := len(l.holders) - 1
			l.holders[i] = l.holders[last]
			l.holders = l.holders[:last]
			return
		}
	}
}

// HeldLocks reports how many distinct data locks are currently held,
// fast-path holds included (for tests and diagnostics).
func (m *Manager) HeldLocks() int {
	n := 0
	for _, ft := range m.fasts {
		n += int(ft.nLive.Load())
	}
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		for _, slots := range s.data {
			n += len(slots)
		}
		s.mu.Unlock()
	}
	return n
}
