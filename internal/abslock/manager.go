package abslock

import (
	"fmt"
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// KeyFunc evaluates a pure key function (such as a partition map) used by
// keyed lock acquisitions.
type KeyFunc func(core.Value) core.Value

// maxModes bounds a manageable scheme: mode hold-sets and incompatibility
// rows are 64-bit masks, which comfortably covers every scheme in this
// repository (reduced schemes have a handful of modes; even full
// pre-reduction schemes stay well under 64).
const maxModes = 64

// holder records one transaction's hold on a lock as a bitmask of modes.
type holder struct {
	tx    *engine.Tx
	modes uint64
}

// dlock is the multi-mode lock of one datum.
type dlock struct {
	holders []holder
}

// Manager enforces a synthesized abstract-locking scheme at run time. It
// keeps one multi-mode lock per datum (argument or return value seen so
// far) plus the whole-structure lock, with per-transaction hold masks.
// Mode compatibility is checked by intersecting the acquired mode's
// incompatibility mask with other holders' mode masks. Locks are
// released when the owning transaction commits or aborts (all abstract
// locks are held to transaction end, per §3.2).
type Manager struct {
	scheme   *Scheme
	keys     map[string]KeyFunc
	incompat []uint64 // per mode: mask of conflicting modes

	mu   sync.Mutex
	ds   dlock
	data map[datumKey]*dlock
	held map[*engine.Tx][]datumKey // data keys a tx holds, for O(held) release
}

type datumKey struct {
	key string // "" for identity, else key-function name (namespaces values)
	v   core.Value
}

// NewManager creates a lock manager for scheme. keys must provide an
// implementation for every key function named by the scheme's
// acquisitions (nil is fine for purely identity schemes). Schemes with
// more than 64 modes are rejected; Reduce() keeps real schemes far below
// that.
func NewManager(scheme *Scheme, keys map[string]KeyFunc) *Manager {
	if len(scheme.Modes) > maxModes {
		panic(fmt.Sprintf("abslock: scheme has %d modes; the manager supports ≤ %d (reduce the scheme or split the ADT)", len(scheme.Modes), maxModes))
	}
	m := &Manager{
		scheme:   scheme,
		keys:     keys,
		incompat: make([]uint64, len(scheme.Modes)),
		data:     map[datumKey]*dlock{},
		held:     map[*engine.Tx][]datumKey{},
	}
	for i := range scheme.Modes {
		var mask uint64
		for j := range scheme.Modes {
			if scheme.Incompat[i][j] {
				mask |= 1 << uint(j)
			}
		}
		m.incompat[i] = mask
	}
	return m
}

// Scheme returns the scheme the manager enforces.
func (m *Manager) Scheme() *Scheme { return m.scheme }

// PreAcquire takes the ds-lock and argument locks for an invocation of
// method with args, in the scheme's modes. On conflict it returns an
// error satisfying engine.IsConflict and leaves any locks it already took
// held (they are released when the transaction aborts).
func (m *Manager) PreAcquire(tx *engine.Tx, method string, args []core.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.scheme.Acquire[method] {
		a := &m.scheme.Acquire[method][i]
		if a.After || a.Target == TargetRet {
			continue
		}
		mode, err := m.pickMode(a, method, args, nil)
		if err != nil {
			return err
		}
		switch a.Target {
		case TargetDS:
			if err := m.acquire(tx, &m.ds, mode, nil); err != nil {
				return err
			}
		case TargetArg:
			if err := m.acquireDatum(tx, a.Key, args[a.Arg], mode); err != nil {
				return err
			}
		}
	}
	return nil
}

// PostAcquire takes the post-execution locks: return-value targets plus
// any guarded acquisitions whose guard inspects the return value. A
// conflict here means the invocation must be rolled back by the
// transaction's undo log.
func (m *Manager) PostAcquire(tx *engine.Tx, method string, args []core.Value, ret core.Value) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for i := range m.scheme.Acquire[method] {
		a := &m.scheme.Acquire[method][i]
		if !a.After && a.Target != TargetRet {
			continue
		}
		mode, err := m.pickMode(a, method, args, ret)
		if err != nil {
			return err
		}
		switch a.Target {
		case TargetDS:
			if err := m.acquire(tx, &m.ds, mode, nil); err != nil {
				return err
			}
		case TargetArg:
			if err := m.acquireDatum(tx, a.Key, args[a.Arg], mode); err != nil {
				return err
			}
		case TargetRet:
			if err := m.acquireDatum(tx, a.Key, ret, mode); err != nil {
				return err
			}
		}
	}
	return nil
}

// pickMode resolves a (possibly guarded) acquisition's mode against the
// invoking invocation.
func (m *Manager) pickMode(a *Acquisition, method string, args []core.Value, ret core.Value) (int, error) {
	if a.Guard == nil {
		return a.Mode, nil
	}
	ok, err := core.Eval(a.Guard, core.OwnEnv(core.NewInvocation(method, args, ret)))
	if err != nil {
		return 0, fmt.Errorf("abslock: evaluating guard for %s: %w", method, err)
	}
	if ok {
		return a.WeakMode, nil
	}
	return a.Mode, nil
}

// Invoke guards a complete method invocation: pre-acquire, execute,
// post-acquire. exec runs only if the pre-acquisitions succeed.
func (m *Manager) Invoke(tx *engine.Tx, method string, args []core.Value, exec func() core.Value) (core.Value, error) {
	if err := m.PreAcquire(tx, method, args); err != nil {
		return nil, err
	}
	ret := exec()
	if err := m.PostAcquire(tx, method, args, ret); err != nil {
		return ret, err
	}
	return ret, nil
}

func (m *Manager) acquireDatum(tx *engine.Tx, key string, v core.Value, mode int) error {
	v = core.Norm(v)
	if key != "" {
		f, ok := m.keys[key]
		if !ok {
			return fmt.Errorf("abslock: no implementation for key function %q", key)
		}
		v = core.Norm(f(v))
	}
	dk := datumKey{key, v}
	l := m.data[dk]
	if l == nil {
		l = &dlock{}
		m.data[dk] = l
	}
	return m.acquire(tx, l, mode, &dk)
}

// acquire must run with m.mu held. dk is nil for the ds lock.
func (m *Manager) acquire(tx *engine.Tx, l *dlock, mode int, dk *datumKey) error {
	mask := m.incompat[mode]
	var own *holder
	for i := range l.holders {
		h := &l.holders[i]
		if h.tx == tx {
			own = h
			continue
		}
		if h.modes&mask != 0 {
			return engine.Conflict("abstract lock held in a conflicting mode by tx %d (%s acquiring %s)",
				h.tx.ID(), m.scheme.ADT, m.scheme.Modes[mode])
		}
	}
	if own != nil {
		own.modes |= 1 << uint(mode)
		return nil
	}
	l.holders = append(l.holders, holder{tx: tx, modes: 1 << uint(mode)})
	if _, hooked := m.held[tx]; !hooked {
		m.held[tx] = nil
		tx.OnRelease(func() { m.ReleaseAll(tx) })
	}
	if dk != nil {
		m.held[tx] = append(m.held[tx], *dk)
	}
	return nil
}

// ReleaseAll drops every lock the transaction holds. It is installed as a
// transaction release hook automatically on first acquisition.
func (m *Manager) ReleaseAll(tx *engine.Tx) {
	m.mu.Lock()
	defer m.mu.Unlock()
	dropHolder(&m.ds, tx)
	for _, dk := range m.held[tx] {
		if l := m.data[dk]; l != nil {
			dropHolder(l, tx)
			if len(l.holders) == 0 {
				delete(m.data, dk)
			}
		}
	}
	delete(m.held, tx)
}

func dropHolder(l *dlock, tx *engine.Tx) {
	for i := range l.holders {
		if l.holders[i].tx == tx {
			last := len(l.holders) - 1
			l.holders[i] = l.holders[last]
			l.holders = l.holders[:last]
			return
		}
	}
}

// HeldLocks reports how many distinct data locks are currently held (for
// tests and diagnostics).
func (m *Manager) HeldLocks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}
