package abslock

import (
	"math/rand"
	"strings"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// accumSig and accumSpec reproduce figure 7: increment commutes with
// increment, read with read, and increment never commutes with read.
func accumSig() *core.ADTSig {
	return &core.ADTSig{Name: "accumulator", Methods: []core.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "read", HasRet: true},
	}}
}

func accumSpec() *core.Spec {
	s := core.NewSpec(accumSig())
	s.Set("inc", "inc", core.True())
	s.Set("inc", "read", core.False())
	s.Set("read", "read", core.True())
	return s
}

func setSig() *core.ADTSig {
	return &core.ADTSig{Name: "set", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"x"}, HasRet: true},
		{Name: "remove", Params: []string{"x"}, HasRet: true},
		{Name: "contains", Params: []string{"x"}, HasRet: true},
	}}
}

// rwSetSpec is figure 3: operations commute when their arguments differ,
// contains always commutes with contains.
func rwSetSpec() *core.Spec {
	ne := core.Ne(core.Arg1(0), core.Arg2(0))
	s := core.NewSpec(setSig())
	s.Set("add", "add", ne)
	s.Set("add", "remove", ne)
	s.Set("add", "contains", ne)
	s.Set("remove", "remove", ne)
	s.Set("remove", "contains", ne)
	s.Set("contains", "contains", core.True())
	return s
}

// exclusiveSetSpec strengthens figure 3 further: contains conflicts with
// contains on the same element (§4.1's cheaper exclusive-lock point).
func exclusiveSetSpec() *core.Spec {
	s := rwSetSpec()
	s.Set("contains", "contains", core.Ne(core.Arg1(0), core.Arg2(0)))
	return s
}

func TestSynthesizeAccumulatorFullMatrix(t *testing.T) {
	s, err := Synthesize(accumSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8(a): modes inc:ds, inc:x, read:ds, read:ret.
	want := []string{"inc:ds", "inc:x", "read:ds", "read:ret"}
	got := s.ModeNames()
	if len(got) != len(want) {
		t.Fatalf("modes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("modes = %v, want %v", got, want)
		}
	}
	// Only inc:ds × read:ds is incompatible.
	incDS, readDS := s.ModeIndex("inc:ds"), s.ModeIndex("read:ds")
	for i := range s.Modes {
		for j := range s.Modes {
			wantIncompat := (i == incDS && j == readDS) || (i == readDS && j == incDS)
			if s.Incompat[i][j] != wantIncompat {
				t.Errorf("Incompat[%s][%s] = %v, want %v", s.Modes[i], s.Modes[j], s.Incompat[i][j], wantIncompat)
			}
		}
	}
}

func TestReduceAccumulator(t *testing.T) {
	full, err := Synthesize(accumSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := full.Reduce()
	// Figure 8(b): only inc:ds and read:ds survive.
	want := []string{"inc:ds", "read:ds"}
	got := r.ModeNames()
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("reduced modes = %v, want %v", got, want)
	}
	if !r.Incompat[r.ModeIndex("inc:ds")][r.ModeIndex("read:ds")] {
		t.Error("reduced matrix lost inc:ds × read:ds incompatibility")
	}
	// Acquisitions shrink accordingly: inc acquires only ds.
	if len(r.Acquire["inc"]) != 1 || r.Acquire["inc"][0].Target != TargetDS {
		t.Errorf("reduced inc acquisitions = %+v", r.Acquire["inc"])
	}
	if len(r.Acquire["read"]) != 1 {
		t.Errorf("reduced read acquisitions = %+v", r.Acquire["read"])
	}
}

func TestSynthesizeSetRW(t *testing.T) {
	s, err := Synthesize(rwSetSpec())
	if err != nil {
		t.Fatal(err)
	}
	r := s.Reduce()
	// All three methods lock their argument; contains:x is compatible
	// with itself (read lock) but conflicts with add:x and remove:x.
	addX, remX, conX := r.ModeIndex("add:x"), r.ModeIndex("remove:x"), r.ModeIndex("contains:x")
	if addX < 0 || remX < 0 || conX < 0 {
		t.Fatalf("missing argument modes: %v", r.ModeNames())
	}
	if !r.Incompat[addX][addX] || !r.Incompat[addX][remX] || !r.Incompat[addX][conX] {
		t.Error("add:x should conflict with add:x, remove:x, contains:x")
	}
	if r.Incompat[conX][conX] {
		t.Error("contains:x should be self-compatible (read lock)")
	}
	// ds modes are all superfluous here and reduced away.
	if r.ModeIndex("add:ds") >= 0 {
		t.Error("ds modes should have been reduced away")
	}
}

func TestSynthesizeRejectsNonSimple(t *testing.T) {
	s := core.NewSpec(setSig())
	s.Set("add", "add", core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false)))))
	if _, err := Synthesize(s); err == nil {
		t.Error("precise set spec is not SIMPLE; Synthesize must refuse (Theorem 1)")
	}
}

func TestSynthesizeBottomIsGlobalLock(t *testing.T) {
	s, err := Synthesize(core.Bottom(setSig()))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Reduce()
	// Every surviving mode is a ds mode and all pairs are incompatible:
	// one global exclusive lock (§4.1).
	for _, m := range r.Modes {
		if m.Slot != "ds" {
			t.Errorf("bottom scheme kept non-ds mode %s", m)
		}
	}
	for i := range r.Modes {
		for j := range r.Modes {
			if !r.Incompat[i][j] {
				t.Errorf("bottom scheme: %s compatible with %s", r.Modes[i], r.Modes[j])
			}
		}
	}
}

func TestSynthesizePartitioned(t *testing.T) {
	part, err := rwSetSpec().PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Synthesize(part)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Reduce()
	if r.ModeIndex("add:x@part") < 0 {
		t.Fatalf("expected keyed mode add:x@part, have %v", r.ModeNames())
	}
	for _, a := range r.Acquire["add"] {
		if a.Key != "part" {
			t.Errorf("partitioned acquisition should use key, got %+v", a)
		}
	}
}

// schemeAllows simulates two transactions invoking inv1 then inv2 under
// the scheme and reports whether the second proceeds without conflict.
func schemeAllows(t *testing.T, s *Scheme, keys map[string]KeyFunc, inv1, inv2 core.Invocation) bool {
	t.Helper()
	m := NewManager(s, keys)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if err := m.PreAcquire(tx1, inv1.Method, inv1.Args); err != nil {
		t.Fatalf("tx1 pre-acquire conflicted with empty table: %v", err)
	}
	if err := m.PostAcquire(tx1, inv1.Method, inv1.Args, inv1.Ret); err != nil {
		t.Fatalf("tx1 post-acquire conflicted: %v", err)
	}
	if err := m.PreAcquire(tx2, inv2.Method, inv2.Args); err != nil {
		if !engine.IsConflict(err) {
			t.Fatal(err)
		}
		return false
	}
	if err := m.PostAcquire(tx2, inv2.Method, inv2.Args, inv2.Ret); err != nil {
		if !engine.IsConflict(err) {
			t.Fatal(err)
		}
		return false
	}
	return true
}

// TestTheorem1SoundAndComplete exercises the heart of Theorem 1: for
// SIMPLE specifications, the synthesized scheme (full and reduced) allows
// two invocations to proceed concurrently exactly when the specification
// says they commute.
func TestTheorem1SoundAndComplete(t *testing.T) {
	partKeys := map[string]KeyFunc{"part": func(v core.Value) core.Value { return core.VInt(v.Int() % 2) }}
	pureEnv := func(fn string, args []core.Value) (core.Value, error) {
		return core.VInt(args[0].Int() % 2), nil
	}
	partSpec, err := rwSetSpec().PartitionSpec("part")
	if err != nil {
		t.Fatal(err)
	}
	specs := []struct {
		name string
		spec *core.Spec
		keys map[string]KeyFunc
	}{
		{"rw", rwSetSpec(), nil},
		{"exclusive", exclusiveSetSpec(), nil},
		{"bottom", core.Bottom(setSig()), nil},
		{"partition", partSpec, partKeys},
	}
	methods := []string{"add", "remove", "contains"}
	rets := []core.Value{core.V(true), core.V(false)}
	for _, tc := range specs {
		full, err := Synthesize(tc.spec)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, scheme := range []*Scheme{full, full.Reduce()} {
			for _, m1 := range methods {
				for _, m2 := range methods {
					for v1 := int64(0); v1 < 3; v1++ {
						for v2 := int64(0); v2 < 3; v2++ {
							for _, r1 := range rets {
								for _, r2 := range rets {
									inv1 := core.NewInvocation(m1, []core.Value{core.V(v1)}, r1)
									inv2 := core.NewInvocation(m2, []core.Value{core.V(v2)}, r2)
									env := &core.PairEnv{Inv1: inv1, Inv2: inv2, S1: pureEnv, S2: pureEnv}
									want, err := core.Eval(tc.spec.Cond(m1, m2), env)
									if err != nil {
										t.Fatal(err)
									}
									got := schemeAllows(t, scheme, tc.keys, inv1, inv2)
									if got != want {
										t.Fatalf("%s: scheme allows(%v,%v)=%v but spec says %v",
											tc.name, inv1, inv2, got, want)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

func TestTheorem1Accumulator(t *testing.T) {
	spec := accumSpec()
	full, err := Synthesize(spec)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(5))
	for _, scheme := range []*Scheme{full, full.Reduce()} {
		for trial := 0; trial < 200; trial++ {
			pick := func() core.Invocation {
				if r.Intn(2) == 0 {
					return core.NewInvocation("inc", []core.Value{core.V(int64(r.Intn(3)))}, core.Value{})
				}
				return core.NewInvocation("read", nil, core.VInt(int64(r.Intn(3))))
			}
			inv1, inv2 := pick(), pick()
			want, err := core.Eval(spec.Cond(inv1.Method, inv2.Method), &core.PairEnv{Inv1: inv1, Inv2: inv2})
			if err != nil {
				t.Fatal(err)
			}
			if got := schemeAllows(t, scheme, nil, inv1, inv2); got != want {
				t.Fatalf("allows(%v,%v)=%v, spec says %v", inv1, inv2, got, want)
			}
		}
	}
}

func TestMatrixString(t *testing.T) {
	s, err := Synthesize(accumSpec())
	if err != nil {
		t.Fatal(err)
	}
	out := s.MatrixString()
	if !strings.Contains(out, "inc:ds") || !strings.Contains(out, "x") || !strings.Contains(out, "v") {
		t.Errorf("unexpected matrix rendering:\n%s", out)
	}
}

func TestModeString(t *testing.T) {
	if (Mode{Method: "add", Slot: "x"}).String() != "add:x" {
		t.Error("mode naming")
	}
	if (Mode{Method: "add", Slot: "x", Key: "part"}).String() != "add:x@part" {
		t.Error("keyed mode naming")
	}
}
