package abslock

import (
	"fmt"
	"math/rand"
	"testing"

	"commlat/internal/core"
)

// randSimpleSpec generates a random ADT signature and a random SIMPLE
// specification over it: each pair condition is true, false, or a
// conjunction of 1–3 random slot disequalities.
func randSimpleSpec(r *rand.Rand) *core.Spec {
	nm := 2 + r.Intn(3)
	sig := &core.ADTSig{Name: "fuzz"}
	for i := 0; i < nm; i++ {
		ms := core.MethodSig{Name: fmt.Sprintf("m%d", i), HasRet: r.Intn(2) == 0}
		for p := 0; p < 1+r.Intn(2); p++ {
			ms.Params = append(ms.Params, fmt.Sprintf("p%d", p))
		}
		sig.Methods = append(sig.Methods, ms)
	}
	spec := core.NewSpec(sig)
	slotTerms := func(m core.MethodSig, side core.Side) []core.Term {
		var out []core.Term
		for i := range m.Params {
			out = append(out, core.ArgTerm{Side: side, Index: i})
		}
		if m.HasRet {
			out = append(out, core.RetTerm{Side: side})
		}
		return out
	}
	for i, m1 := range sig.Methods {
		for _, m2 := range sig.Methods[i:] {
			switch r.Intn(3) {
			case 0:
				spec.Set(m1.Name, m2.Name, core.True())
			case 1:
				spec.Set(m1.Name, m2.Name, core.False())
			default:
				s1 := slotTerms(m1, core.First)
				s2 := slotTerms(m2, core.Second)
				var conj []core.Cond
				for k := 0; k < 1+r.Intn(3); k++ {
					conj = append(conj, core.Ne(s1[r.Intn(len(s1))], s2[r.Intn(len(s2))]))
				}
				spec.Set(m1.Name, m2.Name, core.And(conj...))
			}
		}
	}
	return spec
}

// randInvocation draws a random invocation of a random method with small
// integer arguments/returns (collision-heavy to stress incompatibility).
func randInvocation(r *rand.Rand, sig *core.ADTSig) core.Invocation {
	m := sig.Methods[r.Intn(len(sig.Methods))]
	args := make([]core.Value, len(m.Params))
	for i := range args {
		args[i] = core.VInt(int64(r.Intn(3)))
	}
	var ret core.Value
	if m.HasRet {
		ret = core.VInt(int64(r.Intn(3)))
	}
	return core.NewInvocation(m.Name, args, ret)
}

// TestTheorem1Fuzz is the randomized counterpart of the hand-written
// Theorem 1 tests: for hundreds of random SIMPLE specifications, the
// synthesized scheme (full and reduced) must allow a pair of invocations
// exactly when the specification's condition evaluates true.
func TestTheorem1Fuzz(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		spec := randSimpleSpec(r)
		full, err := Synthesize(spec)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, spec)
		}
		for _, scheme := range []*Scheme{full, full.Reduce()} {
			for pair := 0; pair < 30; pair++ {
				inv1 := randInvocation(r, spec.Sig)
				inv2 := randInvocation(r, spec.Sig)
				// Locks are direction-blind: the scheme implements the
				// symmetrized meet of the two directed conditions (see
				// Synthesize), so the oracle checks both orientations.
				fwd, err := core.Eval(spec.Cond(inv1.Method, inv2.Method),
					&core.PairEnv{Inv1: inv1, Inv2: inv2})
				if err != nil {
					t.Fatal(err)
				}
				rev, err := core.Eval(spec.Cond(inv2.Method, inv1.Method),
					&core.PairEnv{Inv1: inv2, Inv2: inv1})
				if err != nil {
					t.Fatal(err)
				}
				want := fwd && rev
				got := schemeAllows(t, scheme, nil, inv1, inv2)
				if got != want {
					t.Fatalf("trial %d: allows(%v, %v) = %v, spec says %v\n%s",
						trial, inv1, inv2, got, want, spec)
				}
			}
		}
	}
}

// TestReduceNeverChangesSemantics: for random SIMPLE specs, the reduced
// scheme must agree with the full scheme on every invocation pair.
func TestReduceNeverChangesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(4096))
	for trial := 0; trial < 200; trial++ {
		spec := randSimpleSpec(r)
		full, err := Synthesize(spec)
		if err != nil {
			t.Fatal(err)
		}
		red := full.Reduce()
		if len(red.Modes) > len(full.Modes) {
			t.Fatal("reduction grew the scheme")
		}
		for pair := 0; pair < 20; pair++ {
			inv1 := randInvocation(r, spec.Sig)
			inv2 := randInvocation(r, spec.Sig)
			if schemeAllows(t, full, nil, inv1, inv2) != schemeAllows(t, red, nil, inv1, inv2) {
				t.Fatalf("trial %d: reduction changed the decision for (%v, %v)", trial, inv1, inv2)
			}
		}
	}
}
