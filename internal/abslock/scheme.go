// Package abslock implements the paper's abstract-locking conflict
// detection scheme (§3.2): the synthesis algorithm that turns a SIMPLE
// commutativity specification into lock modes, an acquisition discipline
// and a mode-compatibility matrix (Theorem 1), the reduction that deletes
// superfluous modes (figure 8a → 8b), and the runtime multi-mode lock
// manager that enforces a synthesized scheme.
package abslock

import (
	"fmt"
	"sort"
	"strings"

	"commlat/internal/core"
)

// Mode is an abstract lock mode. Every method contributes one mode for
// its access to the data structure as a whole (Slot == "ds") and one mode
// per data member it touches (its arguments and return value). Keyed
// modes (Key != "") come from partition-style specifications: the lock is
// taken on Key(value) rather than the value itself (§4.2).
type Mode struct {
	Method string
	Slot   string // "ds", an argument slot name, or "ret"
	Key    string // "" for identity; otherwise a pure key function
}

func (m Mode) String() string {
	s := m.Method + ":" + m.Slot
	if m.Key != "" {
		s += "@" + m.Key
	}
	return s
}

// Target says which datum an acquisition locks.
type Target int

// Acquisition targets.
const (
	TargetDS  Target = iota // the whole-structure lock
	TargetArg               // an argument value (locked before execution)
	TargetRet               // the return value (locked after execution)
)

// Acquisition is one lock acquisition a method performs.
type Acquisition struct {
	Mode   int // index into Scheme.Modes
	Target Target
	Arg    int    // argument index when Target == TargetArg
	Key    string // pure key function applied to the value, "" = identity

	// Liberal locking (SynthesizeLiberal, the footnote-6 extension):
	// when Guard is non-nil it is a predicate over the invoking
	// invocation's own arguments and return value (bound as invocation
	// 1); if it evaluates true, WeakMode is acquired instead of Mode.
	Guard    core.Cond
	WeakMode int
	// After schedules the acquisition after execution — required when
	// the guard (or the target) needs the return value.
	After bool
}

// Scheme is a synthesized abstract-locking conflict detector.
type Scheme struct {
	ADT      string
	Modes    []Mode
	Incompat [][]bool                 // Incompat[i][j]: modes i and j conflict
	Acquire  map[string][]Acquisition // per method
}

// Synthesize constructs the sound and complete abstract-locking scheme
// for a SIMPLE specification, following the three-step procedure of
// §3.2: (1) one mode per method/slot, (2) every method acquires its ds
// lock and slot locks in its own modes, (3) the compatibility matrix is
// derived from the specification — false conditions make the ds modes
// incompatible, and each disequality conjunct x ≠ y makes modes m1:x and
// m2:y incompatible. Conditions may use pure key functions registered on
// the spec (partitioned specifications); anything else returns an error,
// which is Theorem 1's "no sound and complete abstract locking scheme
// exists" case.
//
// Lock acquisition is direction-blind (a lock table cannot know which of
// two live invocations "came first"), so when a pair's two directed
// conditions differ — an asymmetric self-pair condition, or a directed
// override — the synthesized scheme implements their *symmetrized meet*:
// it allows a pair of invocations iff both directed conditions hold.
// Since commutation itself is a symmetric relation, any valid
// specification's precise point is symmetric, and for symmetric
// specifications this is exactly Theorem 1's sound-and-complete scheme.
func Synthesize(spec *core.Spec) (*Scheme, error) {
	s := &Scheme{ADT: spec.Sig.Name, Acquire: map[string][]Acquisition{}}
	modeIdx := map[Mode]int{}
	addMode := func(m Mode) int {
		if i, ok := modeIdx[m]; ok {
			return i
		}
		i := len(s.Modes)
		s.Modes = append(s.Modes, m)
		modeIdx[m] = i
		return i
	}

	// Step 1+2: modes and acquisitions for every method's ds and slots.
	for _, ms := range spec.Sig.Methods {
		ds := addMode(Mode{Method: ms.Name, Slot: "ds"})
		s.Acquire[ms.Name] = append(s.Acquire[ms.Name], Acquisition{Mode: ds, Target: TargetDS})
		for i, p := range ms.Params {
			mi := addMode(Mode{Method: ms.Name, Slot: p})
			s.Acquire[ms.Name] = append(s.Acquire[ms.Name], Acquisition{Mode: mi, Target: TargetArg, Arg: i})
		}
		if ms.HasRet {
			mi := addMode(Mode{Method: ms.Name, Slot: "ret"})
			s.Acquire[ms.Name] = append(s.Acquire[ms.Name], Acquisition{Mode: mi, Target: TargetRet})
		}
	}

	// Keyed modes are added lazily as conjuncts demand them.
	slotMode := func(method string, slot core.SlotRef, key string) (int, error) {
		ms, _ := spec.Sig.Method(method)
		var name string
		var acq Acquisition
		if slot.IsRet {
			if !ms.HasRet {
				return 0, fmt.Errorf("abslock: %s has no return value", method)
			}
			name = "ret"
			acq = Acquisition{Target: TargetRet, Key: key}
		} else {
			if slot.Arg >= len(ms.Params) {
				return 0, fmt.Errorf("abslock: %s has no argument %d", method, slot.Arg)
			}
			name = ms.Params[slot.Arg]
			acq = Acquisition{Target: TargetArg, Arg: slot.Arg, Key: key}
		}
		m := Mode{Method: method, Slot: name, Key: key}
		if i, ok := modeIdx[m]; ok {
			return i, nil
		}
		i := addMode(m)
		acq.Mode = i
		s.Acquire[method] = append(s.Acquire[method], acq)
		return i, nil
	}

	// Step 3: compatibility matrix (grown as keyed modes appear).
	grow := func() {
		for len(s.Incompat) < len(s.Modes) {
			s.Incompat = append(s.Incompat, make([]bool, 0))
		}
		for i := range s.Incompat {
			for len(s.Incompat[i]) < len(s.Modes) {
				s.Incompat[i] = append(s.Incompat[i], false)
			}
		}
	}
	grow()

	for _, p := range spec.OrderedPairs() {
		m1, m2 := p[0], p[1]
		cond := spec.Cond(m1, m2)
		form, ok := core.AsSimple(cond, spec.Pure)
		if !ok {
			return nil, fmt.Errorf("abslock: condition for (%s,%s) is not SIMPLE: %s (Theorem 1: no sound and complete abstract locking scheme exists)", m1, m2, cond)
		}
		switch form.Kind {
		case core.SimpleTrue:
			// Rule 3: compatible by default.
		case core.SimpleFalse:
			// Rule 1: the ds modes are incompatible.
			i := modeIdx[Mode{Method: m1, Slot: "ds"}]
			j := modeIdx[Mode{Method: m2, Slot: "ds"}]
			s.Incompat[i][j] = true
			s.Incompat[j][i] = true
		case core.SimpleConj:
			// Rule 2: each conjunct x ≠ y makes m1:x and m2:y incompatible.
			for _, cj := range form.Conjuncts {
				i, err := slotMode(m1, cj.X, cj.Key)
				if err != nil {
					return nil, err
				}
				j, err := slotMode(m2, cj.Y, cj.Key)
				if err != nil {
					return nil, err
				}
				grow()
				s.Incompat[i][j] = true
				s.Incompat[j][i] = true
			}
		}
	}
	grow()
	return s, nil
}

// Reduce removes superfluous modes: a mode compatible with every mode
// (including itself) can never cause a conflict, so acquiring it is pure
// overhead (§3.2's optimization, figure 8a → 8b). The result is a new
// scheme; the receiver is unchanged.
func (s *Scheme) Reduce() *Scheme {
	keep := make([]bool, len(s.Modes))
	for i := range s.Modes {
		for j := range s.Modes {
			if s.Incompat[i][j] {
				keep[i] = true
				break
			}
		}
	}
	remap := make([]int, len(s.Modes))
	out := &Scheme{ADT: s.ADT, Acquire: map[string][]Acquisition{}}
	for i, k := range keep {
		if k {
			remap[i] = len(out.Modes)
			out.Modes = append(out.Modes, s.Modes[i])
		} else {
			remap[i] = -1
		}
	}
	out.Incompat = make([][]bool, len(out.Modes))
	for i := range out.Incompat {
		out.Incompat[i] = make([]bool, len(out.Modes))
	}
	for i := range s.Modes {
		if remap[i] < 0 {
			continue
		}
		for j := range s.Modes {
			if remap[j] >= 0 && s.Incompat[i][j] {
				out.Incompat[remap[i]][remap[j]] = true
			}
		}
	}
	for m, acqs := range s.Acquire {
		for _, a := range acqs {
			if remap[a.Mode] < 0 {
				continue
			}
			a.Mode = remap[a.Mode]
			if a.Guard != nil {
				// Guarded mode pairs survive together by construction
				// (each weak mode is incompatible with its counterpart's
				// strong mode, so neither is ever superfluous).
				if remap[a.WeakMode] < 0 {
					continue
				}
				a.WeakMode = remap[a.WeakMode]
			}
			out.Acquire[m] = append(out.Acquire[m], a)
		}
	}
	return out
}

// Compatible reports whether two modes may be held simultaneously by
// different transactions.
func (s *Scheme) Compatible(i, j int) bool { return !s.Incompat[i][j] }

// ModeIndex finds a mode by its rendered name (e.g. "inc:ds"); it returns
// -1 when absent. Intended for tests and diagnostics.
func (s *Scheme) ModeIndex(name string) int {
	for i, m := range s.Modes {
		if m.String() == name {
			return i
		}
	}
	return -1
}

// MatrixString renders the compatibility matrix in the style of figure 8:
// ✓ for compatible pairs, × for incompatible ones.
func (s *Scheme) MatrixString() string {
	names := make([]string, len(s.Modes))
	width := 0
	for i, m := range s.Modes {
		names[i] = m.String()
		if len(names[i]) > width {
			width = len(names[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%*s", width+2, "")
	for _, n := range names {
		fmt.Fprintf(&b, " %*s", width, n)
	}
	b.WriteByte('\n')
	for i, n := range names {
		fmt.Fprintf(&b, "%*s |", width, n)
		for j := range names {
			mark := "v"
			if s.Incompat[i][j] {
				mark = "x"
			}
			fmt.Fprintf(&b, " %*s", width, mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ModeNames returns the rendered mode names, sorted, for golden tests.
func (s *Scheme) ModeNames() []string {
	out := make([]string, len(s.Modes))
	for i, m := range s.Modes {
		out[i] = m.String()
	}
	sort.Strings(out)
	return out
}
