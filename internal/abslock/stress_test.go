package abslock

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// These tests pit the striped manager against a single-stripe reference
// manager (one mutex, one table — the seed's shape): striping is a pure
// performance transformation, so both must reach identical conflict
// decisions on identical schedules, and the striped table must hold no
// locks once every transaction has ended.

// TestManagerStripedMatchesSingleStripeOracle replays deterministic
// random schedules of interleaved invocations from several transactions
// against a striped manager and a single-stripe oracle, requiring the
// same allow/conflict decision at every step.
func TestManagerStripedMatchesSingleStripeOracle(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		spec := randSimpleSpec(r)
		scheme, err := Synthesize(spec)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		scheme = scheme.Reduce()
		striped := NewManager(scheme, nil)
		oracle := newManagerWithStripes(scheme, nil, 1, 1)

		const nTx = 4
		type pair struct{ s, o *engine.Tx }
		txs := make([]pair, nTx)
		for i := range txs {
			txs[i] = pair{engine.NewTx(), engine.NewTx()}
		}
		endPair := func(i int) {
			// Abort both (identical lock-release behavior either way;
			// there are no undo hooks registered here).
			txs[i].s.Abort()
			txs[i].o.Abort()
			txs[i] = pair{engine.NewTx(), engine.NewTx()}
		}

		for step := 0; step < 400; step++ {
			i := r.Intn(nTx)
			if r.Intn(12) == 0 {
				endPair(i)
				continue
			}
			inv := randInvocation(r, spec.Sig)
			exec := func() core.Value { return inv.Ret }
			_, errS := striped.Invoke(txs[i].s, inv.Method, inv.Args, exec)
			_, errO := oracle.Invoke(txs[i].o, inv.Method, inv.Args, exec)
			if engine.IsConflict(errS) != engine.IsConflict(errO) {
				t.Fatalf("seed %d step %d: striped %v vs oracle %v for %s%v",
					seed, step, errS, errO, inv.Method, inv.Args)
			}
			if errS != nil {
				// A rejected invocation aborts its transaction in the
				// engine; mirror that so residual partial acquisitions
				// (which may legally differ between the two layouts)
				// cannot skew later decisions.
				endPair(i)
			}
		}
		for i := range txs {
			endPair(i)
		}
		if n := striped.HeldLocks(); n != 0 {
			t.Fatalf("seed %d: striped manager leaked %d locks", seed, n)
		}
		if n := oracle.HeldLocks(); n != 0 {
			t.Fatalf("seed %d: oracle manager leaked %d locks", seed, n)
		}
	}
}

// stressSpec is a minimal updater/observer spec: updates to the same
// datum never commute, updates and observations of the same datum never
// commute, observations always commute — i.e. per-key writer/reader
// exclusion, ideal for invariant checking under real concurrency.
func stressSpec() *core.Spec {
	sig := &core.ADTSig{Name: "cell", Methods: []core.MethodSig{
		{Name: "upd", Params: []string{"k"}},
		{Name: "obs", Params: []string{"k"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	ne := core.Ne(core.Arg1(0), core.Arg2(0))
	s.Set("upd", "upd", ne)
	s.Set("upd", "obs", ne)
	s.Set("obs", "obs", core.True())
	return s
}

// TestManagerStripedConcurrentStress hammers one striped manager from many
// goroutines under the race detector, checking the writer/reader
// exclusion the scheme promises with per-key atomic occupancy counters,
// and that the table drains completely afterwards.
func TestManagerStripedConcurrentStress(t *testing.T) {
	scheme, err := Synthesize(stressSpec())
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(scheme.Reduce(), nil)

	const nKeys = 16
	var occupancy [nKeys]atomic.Int32 // writers << 16 | readers
	var violations atomic.Int32

	workers := 4 * runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for op := 0; op < 300; op++ {
				tx := engine.NewTx()
				k := int64(r.Intn(nKeys))
				write := r.Intn(3) == 0
				method := "obs"
				if write {
					method = "upd"
				}
				err := m.PreAcquire(tx, method, core.MakeVec(core.V(k)))
				if err == nil {
					// Claim the key and validate exclusion. The release
					// hook below is registered after the manager's own,
					// so it runs first at transaction end — while the
					// abstract lock is still held.
					if write {
						v := occupancy[k].Add(1 << 16)
						if v != 1<<16 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-(1 << 16)) })
					} else {
						v := occupancy[k].Add(1)
						if v>>16 != 0 {
							violations.Add(1)
						}
						tx.OnRelease(func() { occupancy[k].Add(-1) })
					}
					tx.Commit()
				} else {
					if !engine.IsConflict(err) {
						t.Errorf("unexpected error: %v", err)
					}
					tx.Abort()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d exclusion violations (concurrent conflicting holders)", n)
	}
	if n := m.HeldLocks(); n != 0 {
		t.Fatalf("manager leaked %d locks", n)
	}
	var total int32
	for i := range occupancy {
		total += occupancy[i].Load()
	}
	if total != 0 {
		t.Fatalf("occupancy counters did not drain: %d", total)
	}
}
