package unionfind

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"commlat/internal/engine"
)

func variants(n int) map[string]Sets {
	return map[string]Sets{
		"uf-ml":      NewML(n),
		"uf-gk":      NewGK(n),
		"uf-generic": NewGeneric(n),
	}
}

func TestSequentialSemantics(t *testing.T) {
	for name, s := range variants(16) {
		ref := NewForest(16)
		r := rand.New(rand.NewSource(5))
		for i := 0; i < 200; i++ {
			a, b := int64(r.Intn(16)), int64(r.Intn(16))
			tx := engine.NewTx()
			if r.Intn(3) == 0 && a != b {
				got, err := s.Union(tx, a, b)
				if err != nil {
					t.Fatalf("%s: union conflicted solo: %v", name, err)
				}
				if got != ref.Union(a, b) {
					t.Fatalf("%s: union(%d,%d) mismatch", name, a, b)
				}
			} else {
				got, err := s.Find(tx, a)
				if err != nil {
					t.Fatalf("%s: find conflicted solo: %v", name, err)
				}
				if got != ref.Find(a) {
					t.Fatalf("%s: find(%d) = %d, want %d", name, a, got, ref.Find(a))
				}
			}
			tx.Commit()
		}
	}
}

func TestAbortRestoresPartition(t *testing.T) {
	for name, s := range variants(8) {
		seed := engine.NewTx()
		if _, err := s.Union(seed, 0, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		seed.Commit()
		tx := engine.NewTx()
		if _, err := s.Union(tx, 2, 3); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Union(tx, 0, 2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tx.Abort()
		f := s.Forest()
		if !f.Same(0, 1) {
			t.Errorf("%s: committed union lost", name)
		}
		if f.Same(2, 3) || f.Same(0, 2) {
			t.Errorf("%s: aborted unions survived", name)
		}
	}
}

// TestSemanticVsMemoryLevel is the paper's opening observation (§1):
// two finds on the same chain commute semantically, but path compression
// makes them conflict at memory level.
func TestSemanticVsMemoryLevel(t *testing.T) {
	build := func(s Sets) {
		tx := engine.NewTx()
		for i := int64(0); i < 5; i++ {
			if _, err := s.Union(tx, i, i+1); err != nil {
				t.Fatal(err)
			}
		}
		tx.Commit()
	}

	ml := NewML(8)
	build(ml)
	// Undo compression performed during build by rebuilding a fresh chain:
	// the builds above compress; create a fresh uncompressed chain instead.
	ml2 := NewML(8)
	for i := int64(0); i < 5; i++ {
		ml2.f.parent[i] = i + 1
	}
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := ml2.Find(tx1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ml2.Find(tx2, 0); !engine.IsConflict(err) {
		t.Fatalf("uf-ml: second find should conflict via compression writes, got %v", err)
	}
	tx2.Abort()
	tx1.Abort()

	for _, name := range []string{"uf-gk", "uf-generic"} {
		var s Sets
		if name == "uf-gk" {
			g := NewGK(8)
			for i := int64(0); i < 5; i++ {
				g.f.parent[i] = i + 1
			}
			s = g
		} else {
			g := NewGeneric(8)
			for i := int64(0); i < 5; i++ {
				g.f.parent[i] = i + 1
			}
			s = g
		}
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		if r, err := s.Find(tx1, 0); err != nil || r != 5 {
			t.Fatalf("%s: find = %v, %v", name, r, err)
		}
		if r, err := s.Find(tx2, 0); err != nil || r != 5 {
			t.Fatalf("%s: concurrent find should commute, got %v, %v", name, r, err)
		}
		tx2.Abort()
		tx1.Abort()
	}
}

// TestGKScenario mirrors the paper's worked example.
func TestGKScenario(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(int) Sets
	}{
		{"uf-gk", func(n int) Sets { return NewGK(n) }},
		{"uf-generic", func(n int) Sets { return NewGeneric(n) }},
	} {
		s := tc.mk(8)
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		// tx1: union(1,2) — loser 1, winner 2.
		if _, err := s.Union(tx1, 1, 2); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		// tx2: find(3) commutes (untouched set).
		if r, err := s.Find(tx2, 3); err != nil || r != 3 {
			t.Fatalf("%s: find(3) = %v, %v", tc.name, r, err)
		}
		// tx2: find(2) commutes (2 is the winner; same answer both orders).
		if r, err := s.Find(tx2, 2); err != nil || r != 2 {
			t.Fatalf("%s: find(2) = %v, %v", tc.name, r, err)
		}
		// tx2: find(1) observes the merge: conflict.
		if _, err := s.Find(tx2, 1); !engine.IsConflict(err) {
			t.Fatalf("%s: find(1) should conflict, got %v", tc.name, err)
		}
		// tx2: union(1,4) touches the loser: conflict, and rolled back.
		if _, err := s.Union(tx2, 1, 4); !engine.IsConflict(err) {
			t.Fatalf("%s: union(1,4) should conflict, got %v", tc.name, err)
		}
		if s.Forest().FindNoCompress(4) != 4 {
			t.Errorf("%s: conflicting union not rolled back", tc.name)
		}
		// tx2: union(5,6) is independent: commutes.
		if _, err := s.Union(tx2, 5, 6); err != nil {
			t.Fatalf("%s: union(5,6) should commute: %v", tc.name, err)
		}
		tx2.Abort()
		tx1.Commit()
		f := s.Forest()
		if !f.Same(1, 2) || f.Same(5, 6) {
			t.Errorf("%s: commit/abort outcome wrong", tc.name)
		}
	}
}

// TestGKFindReExecution exercises the rollback-and-re-execute path with
// same-transaction compression across the union (the case that defeats
// purely log-based checking).
func TestGKFindReExecution(t *testing.T) {
	g := NewGK(8)
	// Chain: 0 -> 1, so rep(0)=1.
	seed := engine.NewTx()
	if _, err := g.Union(seed, 0, 1); err != nil {
		t.Fatal(err)
	}
	seed.Commit()

	tx1 := engine.NewTx()
	// tx1 merges {0,1} with {2} (loser rep 1), then compresses 0's path
	// across its own union edge with a find.
	if _, err := g.Union(tx1, 0, 2); err != nil {
		t.Fatal(err)
	}
	if r, err := g.Find(tx1, 0); err != nil || r != 2 {
		t.Fatalf("tx1 find(0) = %v, %v", r, err)
	}
	// tx2's find(0) must conflict: in tx1's pre-state rep(0)=1, now 2 —
	// even though 0's parent pointer no longer passes through 1.
	tx2 := engine.NewTx()
	if _, err := g.Find(tx2, 0); !engine.IsConflict(err) {
		t.Fatalf("find(0) should observe the live union, got %v", err)
	}
	// tx2's union(0,3): its base rep for 0 is 1, an active loser: conflict.
	if _, err := g.Union(tx2, 0, 3); !engine.IsConflict(err) {
		t.Fatalf("union(0,3) should conflict, got %v", err)
	}
	tx2.Abort()
	tx1.Abort()
	// After tx1 aborts, everything (including its compression) unwinds.
	if g.f.parent[0] != 1 || g.f.FindNoCompress(2) != 2 {
		t.Errorf("abort left concrete state %v", g.f.parent)
	}
	if g.LiveWrites() != 0 {
		t.Errorf("journal leaked: %d", g.LiveWrites())
	}
}

// TestTwoTxSerializability replays random two-transaction interleavings
// through each variant; whenever both transactions commit, some serial
// order must reproduce every recorded return value and the final
// partition.
func TestTwoTxSerializability(t *testing.T) {
	const n = 8
	for name, mk := range map[string]func() Sets{
		"uf-gk":      func() Sets { return NewGK(n) },
		"uf-generic": func() Sets { return NewGeneric(n) },
		"uf-ml":      func() Sets { return NewML(n) },
	} {
		r := rand.New(rand.NewSource(99))
		bothCommitted := 0
		for trial := 0; trial < 400; trial++ {
			s := mk()
			// Seed a couple of committed unions.
			seed := engine.NewTx()
			for i := 0; i < 2; i++ {
				if _, err := s.Union(seed, int64(r.Intn(n)), int64(r.Intn(n))); err != nil {
					t.Fatalf("%s: seed conflict: %v", name, err)
				}
			}
			seed.Commit()
			base := NewForest(n)
			copy(base.parent, s.Forest().parent)

			txs := [2]*engine.Tx{engine.NewTx(), engine.NewTx()}
			aborted := [2]bool{}
			var hist []opRec
			nops := 2 + r.Intn(5)
			for i := 0; i < nops; i++ {
				w := r.Intn(2)
				if aborted[w] {
					continue
				}
				rec := opRec{tx: w, isFind: r.Intn(2) == 0, a: int64(r.Intn(n)), b: int64(r.Intn(n))}
				var err error
				if rec.isFind {
					rec.ret, err = s.Find(txs[w], rec.a)
				} else {
					rec.merged, err = s.Union(txs[w], rec.a, rec.b)
				}
				if err != nil {
					if !engine.IsConflict(err) {
						t.Fatalf("%s: %v", name, err)
					}
					txs[w].Abort()
					aborted[w] = true
					continue
				}
				rec.ok = true
				hist = append(hist, rec)
			}
			for w := 0; w < 2; w++ {
				if !aborted[w] {
					txs[w].Commit()
				}
			}
			// Keep only ops of committed txs.
			var committed []opRec
			for _, rec := range hist {
				if !aborted[rec.tx] {
					committed = append(committed, rec)
				}
			}
			if aborted[0] || aborted[1] {
				// With one tx aborted the committed ops ran effectively
				// alone; just check the final partition matches replay.
				continue
			}
			bothCommitted++
			finalKey := partitionKey(s.Forest())
			if !serialOrderExists(base, committed, finalKey) {
				t.Fatalf("%s: no serial order reproduces history %+v", name, committed)
			}
		}
		if bothCommitted == 0 {
			t.Errorf("%s: no trial had both txs commit; test vacuous", name)
		}
	}
}

// opRec is one recorded invocation of a two-transaction history.
type opRec struct {
	tx     int
	isFind bool
	a, b   int64
	ret    int64 // find result
	merged bool  // union result
	ok     bool  // committed op (no conflict)
}

func partitionKey(f *Forest) string {
	key := ""
	for i := 0; i < f.Len(); i++ {
		key += fmt.Sprint(f.FindNoCompress(int64(i)), ";")
	}
	return key
}

func serialOrderExists(base *Forest, committed []opRec, finalKey string) bool {
	try := func(first int) bool {
		f := NewForest(base.Len())
		copy(f.parent, base.parent)
		for pass := 0; pass < 2; pass++ {
			tx := first
			if pass == 1 {
				tx = 1 - first
			}
			for _, rec := range committed {
				if rec.tx != tx {
					continue
				}
				if rec.isFind {
					if f.Find(rec.a) != rec.ret {
						return false
					}
				} else if f.Union(rec.a, rec.b) != rec.merged {
					return false
				}
			}
		}
		return partitionKey(f) == finalKey
	}
	return try(0) || try(1)
}

func TestConcurrentStressAllVariants(t *testing.T) {
	const n = 128
	for name, mk := range map[string]func() Sets{
		"uf-gk":      func() Sets { return NewGK(n) },
		"uf-generic": func() Sets { return NewGeneric(n) },
		"uf-ml":      func() Sets { return NewML(n) },
	} {
		s := mk()
		var mu sync.Mutex
		var committed [][2]int64
		type item struct{ a, b int64 }
		var items []item
		r := rand.New(rand.NewSource(17))
		for i := 0; i < 300; i++ {
			items = append(items, item{int64(r.Intn(n)), int64(r.Intn(n))})
		}
		_, err := engine.RunItems(items, engine.Options{Workers: 8}, func(tx *engine.Tx, it item, _ *engine.Worklist[item]) error {
			if _, err := s.Find(tx, it.a); err != nil {
				return err
			}
			if _, err := s.Union(tx, it.a, it.b); err != nil {
				return err
			}
			mu.Lock()
			committed = append(committed, [2]int64{it.a, it.b})
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		ref := NewForest(n)
		for _, u := range committed {
			ref.Union(u[0], u[1])
		}
		f := s.Forest()
		for i := int64(0); i < n; i++ {
			for j := i + 1; j < n; j++ {
				if f.Same(i, j) != ref.Same(i, j) {
					t.Fatalf("%s: partition mismatch at (%d,%d)", name, i, j)
				}
			}
		}
	}
}
