// Package unionfind implements the paper's union-find ADT (§2.5): a
// disjoint-set forest with path compression, the commutativity
// specification of figure 5, and three concurrent variants — uf-ml
// (object-level STM conflict detection, where path compression makes
// semantically read-only finds collide), uf-gk (the paper's concrete
// general gatekeeper of §3.3.2 with its find-reps and loser-rep logs),
// and a generic general-gatekeeper variant used for cross-validation.
//
// Substitution note (see DESIGN.md): ranks are *static priorities* — an
// element's rank is its index, fixed forever, so the winner of a union is
// always the higher-numbered representative. With classic tie-bumping
// union-by-rank, figure 5's conditions are not valid: a rank tie makes
// the loser decision order-dependent in a way find can observe (the
// brute-force checker in this package demonstrates it). Static unique
// priorities make rep and loser pure functions of the partition, the
// reading under which the paper's conditions are precise. Path
// compression — the concrete-state mutation the paper's uf-ml/uf-gk
// comparison hinges on — is retained and keeps finds near-constant
// amortized.
package unionfind

// Write is one concrete mutation of the forest: parent[Idx] changed from
// Old to New. Gatekeepers journal writes to roll the structure back to
// earlier states exactly (undo) and restore it (redo).
type Write struct {
	Idx      int64
	Old, New int64
}

// Forest is a sequential (non-thread-safe) disjoint-set forest with path
// compression and static-priority unions.
type Forest struct {
	parent []int64
}

// NewForest creates a forest of n singleton sets {0}, {1}, ..., {n-1}.
func NewForest(n int) *Forest {
	f := &Forest{parent: make([]int64, n)}
	for i := range f.parent {
		f.parent[i] = int64(i)
	}
	return f
}

// Len returns the number of elements.
func (f *Forest) Len() int { return len(f.parent) }

// Grow appends a fresh singleton element and returns its id (the
// "create" method of figure 5).
func (f *Forest) Grow() int64 {
	id := int64(len(f.parent))
	f.parent = append(f.parent, id)
	return id
}

// FindNoCompress returns the representative of x's set without mutating
// the forest. Gatekeepers use it to evaluate rep in rolled-back states.
func (f *Forest) FindNoCompress(x int64) int64 {
	for f.parent[x] != x {
		x = f.parent[x]
	}
	return x
}

// Find returns the representative of x's set, compressing the traversed
// path — the concrete-state mutation that makes finds conflict under
// memory-level detection even though they commute semantically.
func (f *Forest) Find(x int64) int64 {
	r, _ := f.FindW(x)
	return r
}

// FindW is Find returning the concrete writes compression performed.
func (f *Forest) FindW(x int64) (int64, []Write) {
	r := f.FindNoCompress(x)
	var ws []Write
	for f.parent[x] != r {
		next := f.parent[x]
		ws = append(ws, Write{Idx: x, Old: next, New: r})
		f.parent[x] = r
		x = next
	}
	return r, ws
}

// Loser returns the representative that would lose a union of a's and
// b's sets: the lower-priority (lower-numbered) representative, per the
// static-priority reading of the paper's loser helper. When a and b are
// already in the same set it returns their common representative.
func (f *Forest) Loser(a, b int64) int64 {
	ra, rb := f.FindNoCompress(a), f.FindNoCompress(b)
	if ra < rb {
		return ra
	}
	return rb
}

// Union merges the sets of a and b, reporting whether the forest changed
// (false when they were already joined).
func (f *Forest) Union(a, b int64) bool {
	ok, _ := f.UnionW(a, b)
	return ok
}

// UnionW is Union returning the concrete writes performed (the loser
// representative's parent write plus any path compression by the
// internal finds).
func (f *Forest) UnionW(a, b int64) (bool, []Write) {
	ra, wsa := f.FindW(a)
	rb, wsb := f.FindW(b)
	ws := append(wsa, wsb...)
	if ra == rb {
		return false, ws
	}
	l, w := ra, rb
	if rb < ra {
		l, w = rb, ra
	}
	ws = append(ws, Write{Idx: l, Old: l, New: w})
	f.parent[l] = w
	return true, ws
}

// Same reports whether a and b are in the same set (without compressing).
func (f *Forest) Same(a, b int64) bool {
	return f.FindNoCompress(a) == f.FindNoCompress(b)
}

// Revert undoes a write list (newest first): exact-state rollback.
func (f *Forest) Revert(ws []Write) {
	for i := len(ws) - 1; i >= 0; i-- {
		f.parent[ws[i].Idx] = ws[i].Old
	}
}

// Apply re-applies a write list (oldest first): exact-state redo.
func (f *Forest) Apply(ws []Write) {
	for _, w := range ws {
		f.parent[w.Idx] = w.New
	}
}

// Sets returns the number of disjoint sets (an O(n) scan; for tests and
// result validation).
func (f *Forest) Sets() int {
	n := 0
	for i := range f.parent {
		if f.parent[i] == int64(i) {
			n++
		}
	}
	return n
}
