package unionfind

import (
	"sync"

	"commlat/internal/engine"
	"commlat/internal/telemetry"
)

// GK is the paper's concrete general gatekeeper for union-find (§3.3.2,
// "A general gatekeeper for union-find"). It keeps two logs:
//
//   - find-reps: the representatives returned by active finds;
//   - loser-rep: the loser representative of each active union;
//
// plus an exact-write journal of all mutations by live transactions
// (union edges and path compression). An incoming union conflicts when
// its base-state representatives include an active loser, or when its
// loser was returned by an active find. An incoming find executes, then
// — if other transactions have live mutations — the journal is unwound
// to the state with no other-transaction effects, the find is
// re-executed without compression, and the results compared; a mismatch
// means the find observed a live union and is a conflict. The journal is
// then replayed.
//
// Rolling back only live transactions' writes is sound because every
// committed mutation was checked to commute with all still-active
// invocations, so the rolled-back state is C-equivalent to each active
// invocation's true pre-state (the same stance the paper's prose takes:
// "undoes the effects of all potentially interfering calls to union").
type GK struct {
	mu   sync.Mutex
	f    *Forest
	tele *telemetry.Detector

	journal   []txWrite
	byTx      map[*engine.Tx]int           // live journaled writes per tx
	findReps  map[int64]map[*engine.Tx]int // rep -> txs holding it via find
	loserReps map[int64]map[*engine.Tx]int // loser -> txs holding it via union
	perTx     map[*engine.Tx]*gkTxState

	// free lists: recycled per-tx states and rep buckets, so the
	// steady-state invoke/commit cycle allocates nothing.
	freeStates  []*gkTxState
	freeBuckets []map[*engine.Tx]int
}

type txWrite struct {
	tx *engine.Tx
	w  Write
}

type gkTxState struct {
	finds  []int64
	losers []int64
}

// Method label indices for telemetry attribution (positions in the
// detector's label vocabulary).
const (
	gkFind uint16 = iota
	gkUnion
)

// NewGK creates a uf-gk structure with n elements.
func NewGK(n int) *GK {
	return &GK{
		f:         NewForest(n),
		tele:      telemetry.Register("general", "unionfind", []string{"find", "union"}),
		byTx:      map[*engine.Tx]int{},
		findReps:  map[int64]map[*engine.Tx]int{},
		loserReps: map[int64]map[*engine.Tx]int{},
		perTx:     map[*engine.Tx]*gkTxState{},
	}
}

// Forest exposes the underlying forest.
func (g *GK) Forest() *Forest { return g.f }

// Telemetry returns the gatekeeper's telemetry detector, which
// attributes checks and conflicts per method pair (find/union).
func (g *GK) Telemetry() *telemetry.Detector { return g.tele }

// conflict attributes a detected conflict to the (held, incoming)
// method pair and emits a trace event when tracing is on.
func (g *GK) conflict(tx *engine.Tx, held, incoming uint16) {
	g.tele.Conflict(held, incoming)
	if telemetry.TraceEnabled() {
		telemetry.EmitConflict(tx.Worker(), tx.ID(), tx.Item(), g.tele.ID(), held, incoming)
	}
}

// othersLive reports whether any transaction other than tx has journaled
// mutations.
func (g *GK) othersLive(tx *engine.Tx) bool {
	return len(g.journal) > g.byTx[tx]
}

// rollbackOthers exactly undoes every journaled write by transactions
// other than tx, newest first. Safe because live writes to the same cell
// always belong to a single transaction (conflicting writes are detected
// before they are journaled).
func (g *GK) rollbackOthers(tx *engine.Tx) {
	for i := len(g.journal) - 1; i >= 0; i-- {
		if g.journal[i].tx != tx {
			g.f.parent[g.journal[i].w.Idx] = g.journal[i].w.Old
		}
	}
}

// redoOthers replays what rollbackOthers undid, oldest first.
func (g *GK) redoOthers(tx *engine.Tx) {
	for i := 0; i < len(g.journal); i++ {
		if g.journal[i].tx != tx {
			g.f.parent[g.journal[i].w.Idx] = g.journal[i].w.New
		}
	}
}

// baseReps evaluates the representatives of a and b in the rolled-back
// base state (≈ the s1 of every active invocation, up to C-equivalence).
func (g *GK) baseReps(tx *engine.Tx, a, b int64) (int64, int64) {
	if !g.othersLive(tx) {
		return g.f.FindNoCompress(a), g.f.FindNoCompress(b)
	}
	g.rollbackOthers(tx)
	ra, rb := g.f.FindNoCompress(a), g.f.FindNoCompress(b)
	g.redoOthers(tx)
	return ra, rb
}

// heldByOther reports whether some transaction other than tx appears in
// the log bucket.
func heldByOther(bucket map[*engine.Tx]int, tx *engine.Tx) (*engine.Tx, bool) {
	for t := range bucket {
		if t != tx {
			return t, true
		}
	}
	return nil, false
}

// Union merges a's and b's sets under gatekeeping, reporting whether the
// partition changed. A union of an already-joined pair mutates nothing
// and commutes with everything, so it passes without logging.
func (g *GK) Union(tx *engine.Tx, a, b int64) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tele.IncInvocation()

	var ra0, rb0 int64
	if !g.othersLive(tx) {
		// Fast path: no live foreign mutations, so the current state IS
		// the base state — use compressing finds (journaled for exact
		// abort) to keep amortized costs near-constant.
		var wsa, wsb []Write
		ra0, wsa = g.f.FindW(a)
		rb0, wsb = g.f.FindW(b)
		g.journalWrites(tx, wsa)
		g.journalWrites(tx, wsb)
	} else {
		ra0, rb0 = g.baseReps(tx, a, b)
	}
	g.tele.Check(gkUnion, gkUnion)
	if other, held := heldByOther(g.loserReps[ra0], tx); held {
		g.conflict(tx, gkUnion, gkUnion)
		return false, engine.Conflict("uf-gk: rep %d of %d lost an active union (tx %d)", ra0, a, other.ID())
	}
	if other, held := heldByOther(g.loserReps[rb0], tx); held {
		g.conflict(tx, gkUnion, gkUnion)
		return false, engine.Conflict("uf-gk: rep %d of %d lost an active union (tx %d)", rb0, b, other.ID())
	}
	if ra0 == rb0 {
		return false, nil
	}
	l := ra0
	if rb0 < ra0 {
		l = rb0
	}
	g.tele.Check(gkFind, gkUnion)
	if other, held := heldByOther(g.findReps[l], tx); held {
		g.conflict(tx, gkFind, gkUnion)
		return false, engine.Conflict("uf-gk: loser %d was returned by an active find (tx %d)", l, other.ID())
	}

	// Perform the union and journal its exact writes.
	merged, ws := g.f.UnionW(a, b)
	g.journalWrites(tx, ws)
	g.record(tx).losers = append(g.record(tx).losers, l)
	bucket := g.loserReps[l]
	if bucket == nil {
		bucket = g.getBucket()
		g.loserReps[l] = bucket
	}
	bucket[tx]++
	return merged, nil
}

// Find returns a's representative under gatekeeping, compressing the
// path on success.
func (g *GK) Find(tx *engine.Tx, a int64) (int64, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.tele.IncInvocation()

	ra, ws := g.f.FindW(a)
	if g.othersLive(tx) {
		// Re-execute in the pre-state of the active invocations: undo our
		// fresh compression, unwind other transactions' writes, query,
		// replay.
		g.tele.Check(gkUnion, gkFind)
		g.tele.IncRollback()
		g.f.Revert(ws)
		g.rollbackOthers(tx)
		ra0 := g.f.FindNoCompress(a)
		g.redoOthers(tx)
		if ra0 != ra {
			g.conflict(tx, gkUnion, gkFind)
			return ra, engine.Conflict("uf-gk: find(%d) = %d observes an active union (was %d)", a, ra, ra0)
		}
		g.f.Apply(ws)
	}
	g.journalWrites(tx, ws)
	g.record(tx).finds = append(g.record(tx).finds, ra)
	bucket := g.findReps[ra]
	if bucket == nil {
		bucket = g.getBucket()
		g.findReps[ra] = bucket
	}
	bucket[tx]++
	return ra, nil
}

func (g *GK) journalWrites(tx *engine.Tx, ws []Write) {
	g.record(tx) // ensure hooks exist even for write-free finds
	for _, w := range ws {
		g.journal = append(g.journal, txWrite{tx: tx, w: w})
	}
	g.byTx[tx] += len(ws)
	if len(ws) > 0 {
		g.tele.IncLogEntry()
		g.tele.ObserveJournal(len(g.journal))
	}
}

// getBucket returns an empty rep bucket, recycled when possible.
func (g *GK) getBucket() map[*engine.Tx]int {
	if n := len(g.freeBuckets); n > 0 {
		b := g.freeBuckets[n-1]
		g.freeBuckets[n-1] = nil
		g.freeBuckets = g.freeBuckets[:n-1]
		return b
	}
	return map[*engine.Tx]int{}
}

func (g *GK) putBucket(b map[*engine.Tx]int) {
	clear(b)
	g.freeBuckets = append(g.freeBuckets, b)
}

// record returns tx's log state, installing the lifecycle hooks on first
// use. The GK registers itself as the transaction's Undoer and Releaser,
// and recycles per-tx states, so hook installation allocates nothing in
// steady state.
func (g *GK) record(tx *engine.Tx) *gkTxState {
	st, ok := g.perTx[tx]
	if !ok {
		if n := len(g.freeStates); n > 0 {
			st = g.freeStates[n-1]
			g.freeStates[n-1] = nil
			g.freeStates = g.freeStates[:n-1]
		} else {
			st = &gkTxState{}
		}
		g.perTx[tx] = st
		tx.OnUndoer(g)
		tx.OnReleaser(g)
	}
	return st
}

// UndoTx exactly undoes tx's journaled writes (newest first).
func (g *GK) UndoTx(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i := len(g.journal) - 1; i >= 0; i-- {
		if g.journal[i].tx == tx {
			g.f.parent[g.journal[i].w.Idx] = g.journal[i].w.Old
			g.journal = append(g.journal[:i], g.journal[i+1:]...)
		}
	}
	g.byTx[tx] = 0
}

// ReleaseTx drops tx's journal entries and log records.
func (g *GK) ReleaseTx(tx *engine.Tx) {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.journal[:0]
	for _, jw := range g.journal {
		if jw.tx != tx {
			kept = append(kept, jw)
		}
	}
	g.journal = kept
	delete(g.byTx, tx)
	if st := g.perTx[tx]; st != nil {
		for _, r := range st.finds {
			if b := g.findReps[r]; b != nil {
				if b[tx]--; b[tx] <= 0 {
					delete(b, tx)
				}
				if len(b) == 0 {
					delete(g.findReps, r)
					g.putBucket(b)
				}
			}
		}
		for _, l := range st.losers {
			if b := g.loserReps[l]; b != nil {
				if b[tx]--; b[tx] <= 0 {
					delete(b, tx)
				}
				if len(b) == 0 {
					delete(g.loserReps, l)
					g.putBucket(b)
				}
			}
		}
	}
	if st := g.perTx[tx]; st != nil {
		st.finds = st.finds[:0]
		st.losers = st.losers[:0]
		g.freeStates = append(g.freeStates, st)
	}
	delete(g.perTx, tx)
}

// LiveWrites reports the journal length (tests and diagnostics).
func (g *GK) LiveWrites() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.journal)
}
