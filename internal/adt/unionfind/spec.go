package unionfind

import "commlat/internal/core"

// Sig is the union-find ADT signature of figure 5.
func Sig() *core.ADTSig {
	return &core.ADTSig{Name: "unionfind", Methods: []core.MethodSig{
		{Name: "union", Params: []string{"a", "b"}},
		{Name: "find", Params: []string{"a"}, HasRet: true},
		{Name: "create", Params: []string{"c"}, HasRet: true},
	}}
}

// Spec is the commutativity specification of figure 5:
//
//	(1) union(a,b) ~ union(c,d): rep(s1,c) ≠ loser(s1,a,b) ∧ rep(s1,d) ≠ loser(s1,a,b)
//	(2) union(a,b) ~ find(c):    rep(s1,c) ≠ loser(s1,a,b)
//	(3,5,6) create commutes with nothing (the paper's simplification)
//	(4) find ~ find: always
//
// Conditions (1) and (2) evaluate rep in the FIRST invocation's state
// over the SECOND invocation's argument — the shape that defeats forward
// gatekeeping (not ONLINE-CHECKABLE, Definition 7) and motivates general
// gatekeeping.
func Spec() *core.Spec {
	loser := core.Fn1("loser", core.Arg1(0), core.Arg1(1))
	s := core.NewSpec(Sig())
	s.Set("union", "union", core.And(
		core.Ne(core.Fn1("rep", core.Arg2(0)), loser),
		core.Ne(core.Fn1("rep", core.Arg2(1)), loser),
	))
	s.Set("union", "find", core.Ne(core.Fn1("rep", core.Arg2(0)), loser))
	s.Set("find", "find", core.True())
	s.Set("union", "create", core.False())
	s.Set("find", "create", core.False())
	s.Set("create", "create", core.False())
	return s
}

// Resolver returns a core.StateFn evaluating the specification's helper
// functions (rep, rank, loser) against the forest's current state,
// without mutating it.
func Resolver(f *Forest) core.StateFn {
	return func(fn string, args []core.Value) (core.Value, error) {
		switch fn {
		case "rep":
			x, ok := args[0].AsInt()
			if !ok {
				return core.Value{}, core.ErrBadArgs(fn)
			}
			return core.VInt(f.FindNoCompress(x)), nil
		case "rank":
			// Static priority: an element's rank is its id.
			x, ok := args[0].AsInt()
			if !ok {
				return core.Value{}, core.ErrBadArgs(fn)
			}
			return core.VInt(x), nil
		case "loser":
			a, aok := args[0].AsInt()
			b, bok := args[1].AsInt()
			if !aok || !bok {
				return core.Value{}, core.ErrBadArgs(fn)
			}
			return core.VInt(f.Loser(a, b)), nil
		default:
			return core.Value{}, core.ErrUnknownFn(fn)
		}
	}
}
