package unionfind

import (
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/stm"
)

// Sets is a transactionally guarded union-find structure: the interface
// Borůvka's algorithm programs against, implemented by uf-ml (memory
// level), uf-gk (the paper's concrete general gatekeeper) and the
// generic-engine variant.
type Sets interface {
	// Union merges a's and b's sets, reporting whether the partition
	// changed.
	Union(tx *engine.Tx, a, b int64) (bool, error)
	// Find returns the representative of a's set.
	Find(tx *engine.Tx, a int64) (int64, error)
	// Forest exposes the underlying forest; only safe with no live
	// transactions.
	Forest() *Forest
}

// ML is the uf-ml variant: memory-level conflict detection with one
// conflict handle per element. Because path compression writes the
// parent pointers of every traversed element, two finds on the same
// chain conflict here even though finds always commute semantically —
// the pathology §2.5's union-find discussion opens with.
type ML struct {
	mu   sync.Mutex
	f    *Forest
	objs []stm.Obj
}

// NewML creates a uf-ml structure with n elements.
func NewML(n int) *ML {
	return &ML{f: NewForest(n), objs: make([]stm.Obj, n)}
}

// Forest exposes the underlying forest.
func (m *ML) Forest() *Forest { return m.f }

// acquirePath acquires the conflict handles a compressing find of x
// touches: writes on every element whose parent pointer changes, reads
// on the rest of the chain.
func (m *ML) acquirePath(tx *engine.Tx, x int64) error {
	r := m.f.FindNoCompress(x)
	for m.f.parent[x] != x {
		if m.f.parent[x] != r {
			if err := m.objs[x].Write(tx); err != nil {
				return err
			}
		} else if err := m.objs[x].Read(tx); err != nil {
			return err
		}
		x = m.f.parent[x]
	}
	return m.objs[x].Read(tx)
}

// Find returns a's representative under memory-level detection,
// compressing the path.
func (m *ML) Find(tx *engine.Tx, a int64) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.acquirePath(tx, a); err != nil {
		return 0, err
	}
	r, ws := m.f.FindW(a)
	if len(ws) > 0 {
		m.undoOnAbort(tx, ws)
	}
	return r, nil
}

// Union merges under memory-level detection.
func (m *ML) Union(tx *engine.Tx, a, b int64) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.acquirePath(tx, a); err != nil {
		return false, err
	}
	if err := m.acquirePath(tx, b); err != nil {
		return false, err
	}
	// The loser's parent pointer is written.
	ra, rb := m.f.FindNoCompress(a), m.f.FindNoCompress(b)
	if ra != rb {
		l := ra
		if rb < ra {
			l = rb
		}
		if err := m.objs[l].Write(tx); err != nil {
			return false, err
		}
	}
	merged, ws := m.f.UnionW(a, b)
	if len(ws) > 0 {
		m.undoOnAbort(tx, ws)
	}
	return merged, nil
}

func (m *ML) undoOnAbort(tx *engine.Tx, ws []Write) {
	tx.OnUndo(func() {
		m.mu.Lock()
		m.f.Revert(ws)
		m.mu.Unlock()
	})
}

// Generic is the spec-driven general-gatekeeper variant: it hands figure
// 5's conditions to the generic rollback engine of internal/gatekeeper.
// It exists to cross-validate the hand-built GK below (and to show the
// systematic construction working end to end); GK is the faster of the
// two.
type Generic struct {
	g *gatekeeper.General
	f *Forest
}

// NewGeneric creates a generic-engine union-find with n elements.
func NewGeneric(n int) *Generic {
	f := NewForest(n)
	g, err := gatekeeper.NewGeneral(Spec(), Resolver(f))
	if err != nil {
		panic(err) // the general engine accepts all L1 specs
	}
	return &Generic{g: g, f: f}
}

// Forest exposes the underlying forest.
func (u *Generic) Forest() *Forest { return u.f }

// Union merges under the generic general gatekeeper.
func (u *Generic) Union(tx *engine.Tx, a, b int64) (bool, error) {
	var merged bool
	_, err := u.g.Invoke(tx, "union", core.Args2(core.VInt(a), core.VInt(b)), func() gatekeeper.GEffect {
		var ws []Write
		merged, ws = u.f.UnionW(a, b)
		if len(ws) == 0 {
			return gatekeeper.GEffect{}
		}
		return gatekeeper.GEffect{
			Undo: func() { u.f.Revert(ws) },
			Redo: func() { u.f.Apply(ws) },
		}
	})
	if err != nil {
		return false, err
	}
	return merged, nil
}

// Find returns a's representative under the generic general gatekeeper.
func (u *Generic) Find(tx *engine.Tx, a int64) (int64, error) {
	ret, err := u.g.Invoke(tx, "find", core.Args1(core.VInt(a)), func() gatekeeper.GEffect {
		r, ws := u.f.FindW(a)
		eff := gatekeeper.GEffect{Ret: core.VInt(r)}
		if len(ws) > 0 {
			eff.Undo = func() { u.f.Revert(ws) }
			eff.Redo = func() { u.f.Apply(ws) }
		}
		return eff
	})
	if err != nil {
		return 0, err
	}
	return ret.Int(), nil
}

var (
	_ Sets = (*ML)(nil)
	_ Sets = (*Generic)(nil)
	_ Sets = (*GK)(nil)
)
