package unionfind

import (
	"math/rand"
	"testing"
	"testing/quick"

	"commlat/internal/core"
)

// naiveDSU is the reference: an explicit partition map.
type naiveDSU struct {
	rep map[int64]int64 // element -> set representative (max member)
}

func newNaive(n int) *naiveDSU {
	d := &naiveDSU{rep: map[int64]int64{}}
	for i := 0; i < n; i++ {
		d.rep[int64(i)] = int64(i)
	}
	return d
}

func (d *naiveDSU) find(x int64) int64 { return d.rep[x] }

func (d *naiveDSU) union(a, b int64) bool {
	ra, rb := d.rep[a], d.rep[b]
	if ra == rb {
		return false
	}
	l, w := ra, rb
	if rb < ra {
		l, w = rb, ra
	}
	for x, r := range d.rep {
		if r == l {
			d.rep[x] = w
		}
	}
	return true
}

func TestForestMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n = 24
		fo := NewForest(n)
		na := newNaive(n)
		for i := 0; i < 150; i++ {
			a, b := int64(r.Intn(n)), int64(r.Intn(n))
			if r.Intn(3) == 0 {
				if fo.Union(a, b) != na.union(a, b) {
					t.Logf("seed %d: union(%d,%d) mismatch", seed, a, b)
					return false
				}
			} else {
				if fo.Find(a) != na.find(a) {
					t.Logf("seed %d: find(%d) = %d, want %d", seed, a, fo.Find(a), na.find(a))
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestForestStaticPriorityWinner(t *testing.T) {
	f := NewForest(5)
	f.Union(1, 3) // 3 wins (higher priority)
	if f.Find(1) != 3 {
		t.Errorf("Find(1) = %d, want 3", f.Find(1))
	}
	f.Union(3, 0) // rep(3)=3 vs rep(0)=0: 3 wins
	if f.Find(0) != 3 {
		t.Errorf("Find(0) = %d, want 3", f.Find(0))
	}
	if f.Loser(0, 4) != 3 {
		t.Errorf("Loser(0,4) = %d, want 3 (rep 3 < rep 4)", f.Loser(0, 4))
	}
}

func TestForestPathCompression(t *testing.T) {
	f := NewForest(6)
	// Build a chain 0 -> 1 -> ... -> 5 by unioning in ascending order.
	for i := int64(0); i < 5; i++ {
		f.Union(i, i+1)
	}
	// After find(0), 0 must point directly at the root.
	r, ws := f.FindW(0)
	if r != 5 {
		t.Fatalf("Find(0) = %d", r)
	}
	if f.parent[0] != 5 {
		t.Error("path not compressed")
	}
	// Revert restores the exact chain; Apply redoes it.
	f.Revert(ws)
	if f.parent[0] == 5 && len(ws) > 0 {
		t.Error("Revert did not restore parents")
	}
	f.Apply(ws)
	if f.parent[0] != 5 {
		t.Error("Apply did not re-compress")
	}
}

func TestForestWriteLists(t *testing.T) {
	f := NewForest(4)
	merged, ws := f.UnionW(0, 1)
	if !merged || len(ws) != 1 || ws[0] != (Write{Idx: 0, Old: 0, New: 1}) {
		t.Fatalf("UnionW = %v, %v", merged, ws)
	}
	merged, ws = f.UnionW(0, 1)
	if merged {
		t.Error("re-union should not merge")
	}
	for _, w := range ws {
		if w.Old == w.New {
			t.Errorf("no-op write journaled: %+v", w)
		}
	}
}

func TestForestGrow(t *testing.T) {
	f := NewForest(2)
	id := f.Grow()
	if id != 2 || f.Len() != 3 || f.Find(2) != 2 {
		t.Errorf("Grow: id=%d len=%d", id, f.Len())
	}
}

func TestForestSets(t *testing.T) {
	f := NewForest(5)
	if f.Sets() != 5 {
		t.Errorf("Sets = %d", f.Sets())
	}
	f.Union(0, 1)
	f.Union(2, 3)
	if f.Sets() != 3 {
		t.Errorf("Sets = %d", f.Sets())
	}
}

// --- spec validation ------------------------------------------------------

// ufModel adapts Forest to core.Model. The abstract state is the
// partition (with representatives derived as max-priority members), so
// path compression is invisible to StateKey — as it must be.
type ufModel struct {
	f *Forest
}

func newModel(n int, unions ...[2]int64) *ufModel {
	m := &ufModel{f: NewForest(n)}
	for _, u := range unions {
		m.f.Union(u[0], u[1])
	}
	return m
}

func (m *ufModel) Clone() core.Model {
	c := NewForest(m.f.Len())
	copy(c.parent, m.f.parent)
	return &ufModel{f: c}
}

func (m *ufModel) Apply(method string, args []core.Value) (core.Value, error) {
	switch method {
	case "find":
		return core.VInt(m.f.Find(args[0].Int())), nil
	case "union":
		m.f.Union(args[0].Int(), args[1].Int())
		return core.Value{}, nil
	default:
		return core.Value{}, core.ErrUnknownFn(method)
	}
}

func (m *ufModel) StateKey() string {
	key := make([]byte, 0, m.f.Len()*3)
	for i := 0; i < m.f.Len(); i++ {
		r := m.f.FindNoCompress(int64(i))
		key = append(key, byte(r), ';')
	}
	return string(key)
}

func (m *ufModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	return Resolver(m.f)(fn, args)
}

// TestSpecSoundByBruteForce validates figure 5 (static-priority reading)
// against the executable model with path compression enabled, in both
// orientations.
func TestSpecSoundByBruteForce(t *testing.T) {
	spec := Spec()
	states := []core.Model{
		newModel(5),
		newModel(5, [2]int64{0, 1}),
		newModel(5, [2]int64{0, 1}, [2]int64{2, 3}),
		newModel(5, [2]int64{0, 1}, [2]int64{1, 2}),
		newModel(5, [2]int64{3, 4}, [2]int64{0, 4}),
	}
	var calls []core.Call
	for a := int64(0); a < 5; a++ {
		calls = append(calls, core.Call{Method: "find", Args: []core.Value{core.V(a)}})
		for b := int64(0); b < 5; b++ {
			if a != b {
				calls = append(calls, core.Call{Method: "union", Args: []core.Value{core.V(a), core.V(b)}})
			}
		}
	}
	bad, err := core.CheckCondSound(spec, states, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestSpecClassification(t *testing.T) {
	if got := Spec().Classify(); got != core.ClassGeneral {
		t.Errorf("figure 5 spec should be GENERAL, got %v", got)
	}
}

// TestBumpingRankSpecUnsound documents the substitution: with classic
// tie-bumping union-by-rank, figure 5's literal conditions admit a
// non-commuting pair, which is why this package uses static priorities.
func TestBumpingRankSpecUnsound(t *testing.T) {
	// Model with rank bumping.
	type bm struct {
		parent, rank []int64
	}
	clone := func(m *bm) *bm {
		return &bm{parent: append([]int64(nil), m.parent...), rank: append([]int64(nil), m.rank...)}
	}
	rep := func(m *bm, x int64) int64 {
		for m.parent[x] != x {
			x = m.parent[x]
		}
		return x
	}
	union := func(m *bm, a, b int64) {
		ra, rb := rep(m, a), rep(m, b)
		if ra == rb {
			return
		}
		l, w := ra, rb
		if m.rank[rb] < m.rank[ra] {
			l, w = rb, ra
		}
		if m.rank[ra] == m.rank[rb] {
			m.rank[w]++
		}
		m.parent[l] = w
	}
	loser := func(m *bm, a, b int64) int64 {
		ra, rb := rep(m, a), rep(m, b)
		if m.rank[ra] < m.rank[rb] {
			return ra
		}
		return rb
	}

	// State: {0,1} merged (root 0, rank 1), {2}, {3} singletons.
	m0 := &bm{parent: []int64{0, 0, 2, 3}, rank: []int64{1, 0, 0, 0}}
	// u1 = union(2,3); u2 = union(2,1). Figure 5's condition (1) holds:
	// rep(s1,2)=2 and rep(s1,1)=0, neither equals loser(s1,2,3)=3.
	if l := loser(m0, 2, 3); l != 3 {
		t.Fatalf("setup: loser = %d", l)
	}
	if rep(m0, 2) == 3 || rep(m0, 1) == 3 {
		t.Fatal("setup: condition should hold")
	}
	// Order A: u1 then u2; order B: u2 then u1. A later find observes
	// different representatives, so the pair does not commute.
	a := clone(m0)
	union(a, 2, 3)
	union(a, 2, 1)
	b := clone(m0)
	union(b, 2, 1)
	union(b, 2, 3)
	if rep(a, 2) == rep(b, 2) {
		t.Skip("rank-bumping counterexample no longer applies")
	}
	// Reaching here demonstrates the unsoundness the substitution avoids.
}
