// Package intset provides the paper's running-example ADT: a set of
// integers, with the full family of commutativity specifications used in
// the evaluation (§5's set microbenchmark, Table 2) and concurrent
// implementations synthesized from each lattice point:
//
//   - PreciseSpec (figure 2, ONLINE-CHECKABLE) → forward gatekeeper
//   - RWSpec (figure 3, SIMPLE) → read/write abstract locks on elements
//   - ExclusiveSpec (§4.1, SIMPLE) → exclusive abstract locks on elements
//   - PartitionedSpec (§4.2, keyed SIMPLE) → locks on partitions
//   - Bottom (§4.1) → a single global lock
//
// Two concrete representations (hash and sorted-slice) demonstrate that
// specifications and detectors depend only on the abstract state.
package intset

import (
	"fmt"
	"sort"

	"commlat/internal/core"
)

// Sig is the set's ADT signature: add, remove and contains, each taking
// one element and returning a boolean.
func Sig() *core.ADTSig {
	return &core.ADTSig{Name: "set", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"x"}, HasRet: true},
		{Name: "remove", Params: []string{"x"}, HasRet: true},
		{Name: "contains", Params: []string{"x"}, HasRet: true},
	}}
}

// PreciseSpec is figure 2: operations commute when their arguments differ
// or when neither mutated the set (both returned false; for contains,
// when the mutator returned false).
func PreciseSpec() *core.Spec {
	neOrBothFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	neOrR1False := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)), core.Eq(core.Ret1(), core.Lit(false)))
	s := core.NewSpec(Sig())
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("add", "contains", neOrR1False)
	s.Set("remove", "remove", neOrBothFalse)
	s.Set("remove", "contains", neOrR1False)
	s.Set("contains", "contains", core.True())
	return s
}

// RWSpec is figure 3, the strengthened SIMPLE specification: operations
// commute when their arguments differ; contains always commutes with
// contains. Its synthesized locking scheme uses read/write locks on
// elements.
func RWSpec() *core.Spec {
	ne := core.Ne(core.Arg1(0), core.Arg2(0))
	s := core.NewSpec(Sig())
	s.Set("add", "add", ne)
	s.Set("add", "remove", ne)
	s.Set("add", "contains", ne)
	s.Set("remove", "remove", ne)
	s.Set("remove", "contains", ne)
	s.Set("contains", "contains", core.True())
	return s
}

// ExclusiveSpec strengthens RWSpec further (§4.1): contains commutes with
// contains only on different elements, so the synthesized locks are
// cheaper exclusive locks.
func ExclusiveSpec() *core.Spec {
	s := RWSpec()
	s.Set("contains", "contains", core.Ne(core.Arg1(0), core.Arg2(0)))
	return s
}

// PartitionKey is the name of the pure partition function used by
// PartitionedSpec.
const PartitionKey = "part"

// PartitionedSpec applies disciplined lock coarsening (§4.2) to RWSpec:
// every element disequality becomes a partition disequality, and the
// synthesized scheme locks one of nparts partitions per access.
func PartitionedSpec() *core.Spec {
	p, err := RWSpec().PartitionSpec(PartitionKey)
	if err != nil {
		panic(fmt.Sprintf("intset: RWSpec must be SIMPLE: %v", err))
	}
	return p
}

// BottomSpec is ⊥ for the set: nothing commutes; the synthesized scheme
// is one global exclusive lock.
func BottomSpec() *core.Spec {
	return core.Bottom(Sig())
}

// Partition maps an element to one of nparts partitions (non-negative
// even for negative elements).
func Partition(x int64, nparts int) int64 {
	m := x % int64(nparts)
	if m < 0 {
		m += int64(nparts)
	}
	return m
}

// Rep is a concrete, non-thread-safe set representation. The conflict
// detectors are representation-agnostic: any Rep can sit behind any
// detector.
type Rep interface {
	Add(x int64) bool
	Remove(x int64) bool
	Contains(x int64) bool
	Len() int
	Elems() []int64 // sorted, for snapshots and tests
}

// HashRep is a hash-table-backed representation.
type HashRep struct {
	m map[int64]struct{}
}

// NewHashRep creates an empty hash representation.
func NewHashRep() *HashRep { return &HashRep{m: map[int64]struct{}{}} }

// Add inserts x; it reports whether the set changed.
func (h *HashRep) Add(x int64) bool {
	if _, ok := h.m[x]; ok {
		return false
	}
	h.m[x] = struct{}{}
	return true
}

// Remove deletes x; it reports whether the set changed.
func (h *HashRep) Remove(x int64) bool {
	if _, ok := h.m[x]; !ok {
		return false
	}
	delete(h.m, x)
	return true
}

// Contains reports membership.
func (h *HashRep) Contains(x int64) bool {
	_, ok := h.m[x]
	return ok
}

// Len returns the element count.
func (h *HashRep) Len() int { return len(h.m) }

// Elems returns the elements in ascending order.
func (h *HashRep) Elems() []int64 {
	out := make([]int64, 0, len(h.m))
	for k := range h.m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortedRep is a sorted-slice representation: same abstract states as
// HashRep, different concrete states.
type SortedRep struct {
	xs []int64
}

// NewSortedRep creates an empty sorted representation.
func NewSortedRep() *SortedRep { return &SortedRep{} }

func (s *SortedRep) search(x int64) (int, bool) {
	i := sort.Search(len(s.xs), func(i int) bool { return s.xs[i] >= x })
	return i, i < len(s.xs) && s.xs[i] == x
}

// Add inserts x; it reports whether the set changed.
func (s *SortedRep) Add(x int64) bool {
	i, found := s.search(x)
	if found {
		return false
	}
	s.xs = append(s.xs, 0)
	copy(s.xs[i+1:], s.xs[i:])
	s.xs[i] = x
	return true
}

// Remove deletes x; it reports whether the set changed.
func (s *SortedRep) Remove(x int64) bool {
	i, found := s.search(x)
	if !found {
		return false
	}
	s.xs = append(s.xs[:i], s.xs[i+1:]...)
	return true
}

// Contains reports membership.
func (s *SortedRep) Contains(x int64) bool {
	_, found := s.search(x)
	return found
}

// Len returns the element count.
func (s *SortedRep) Len() int { return len(s.xs) }

// Elems returns the elements in ascending order.
func (s *SortedRep) Elems() []int64 {
	return append([]int64(nil), s.xs...)
}
