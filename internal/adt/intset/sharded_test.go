package intset

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// TestShardedSetSequentialSemantics checks a single-threaded op stream
// agrees with a plain map and with the unsharded CascadeSet.
func TestShardedSetSequentialSemantics(t *testing.T) {
	s := NewShardedCascaded(func() Rep { return NewHashRep() }, 4)
	ref := NewCascaded(NewHashRep())
	model := map[int64]bool{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		x := int64(r.Intn(64))
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		switch r.Intn(3) {
		case 0:
			got, err := s.Add(tx1, x)
			want, rerr := ref.Add(tx2, x)
			if err != nil || rerr != nil {
				t.Fatalf("add(%d): %v / %v", x, err, rerr)
			}
			if got != want || got == model[x] {
				t.Fatalf("add(%d) = %v, ref %v, model had %v", x, got, want, model[x])
			}
			model[x] = true
		case 1:
			got, err := s.Remove(tx1, x)
			want, rerr := ref.Remove(tx2, x)
			if err != nil || rerr != nil {
				t.Fatalf("remove(%d): %v / %v", x, err, rerr)
			}
			if got != want || got != model[x] {
				t.Fatalf("remove(%d) = %v, ref %v, model %v", x, got, want, model[x])
			}
			delete(model, x)
		default:
			got, err := s.Contains(tx1, x)
			want, rerr := ref.Contains(tx2, x)
			if err != nil || rerr != nil {
				t.Fatalf("contains(%d): %v / %v", x, err, rerr)
			}
			if got != want || got != model[x] {
				t.Fatalf("contains(%d) = %v, ref %v, model %v", x, got, want, model[x])
			}
		}
		tx1.Commit()
		tx2.Commit()
	}
	got := s.Snapshot()
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	var want []int64
	for k := range model {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("snapshot has %d elements, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("snapshot[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestShardedSetAbortRollsBack checks undo plumbing through the router:
// an aborted transaction's effects vanish from the right shard.
func TestShardedSetAbortRollsBack(t *testing.T) {
	s := NewShardedCascaded(func() Rep { return NewHashRep() }, 4)
	tx := engine.NewTx()
	for x := int64(0); x < 16; x++ {
		if ok, err := s.Add(tx, x); err != nil || !ok {
			t.Fatalf("add(%d) = %v, %v", x, ok, err)
		}
	}
	tx.Abort()
	if n := len(s.Snapshot()); n != 0 {
		t.Fatalf("aborted adds left %d elements", n)
	}
	if n := s.Sharded().ActiveInvocations(); n != 0 {
		t.Fatalf("window leaked %d invocations", n)
	}
}

// TestShardedSetBatchStressRace is TestBatchStressRace through the
// router: engine.RunItemsAffinity routes items to worklist shards with
// the detector's own KeyOf, so batches arrive as same-shard runs and
// ShardedCascadeSet.AddBatch admits them on the single-writer path;
// conflicted stragglers retry serially through Invoke. Sweeps shard
// count × parallelism; run with -race.
func TestShardedSetBatchStressRace(t *testing.T) {
	items := 4000
	if testing.Short() {
		items = 800
	}
	for _, shards := range []int{1, 4, 16} {
		for _, procs := range []int{2, 8} {
			t.Run(fmt.Sprintf("shards%d/procs%d", shards, procs), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)

				keys := make([]int64, items)
				want := map[int64]bool{}
				for i := range keys {
					keys[i] = int64((i * 2654435761) % (items / 8))
					want[keys[i]] = true
				}

				s := NewShardedCascaded(func() Rep { return NewHashRep() }, shards)
				affinity := func(x int64) int {
					sh, ok := s.Sharded().KeyOf("add", core.Args1(core.VInt(x)))
					if !ok {
						return 0
					}
					return sh
				}
				stats, err := engine.RunItemsAffinity(keys, affinity, engine.Options{
					Workers:        procs,
					BatchSize:      32,
					WorklistShards: s.Sharded().Shards(),
				}, func(txs []*engine.Tx, xs []int64, _ *engine.Worklist[int64], errs []error) error {
					rets := make([]bool, len(xs))
					s.AddBatch(txs, xs, rets, errs)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if stats.Committed != uint64(items) {
					t.Fatalf("committed %d of %d items", stats.Committed, items)
				}

				tx := engine.NewTx()
				for k := range want {
					ok, err := s.Contains(tx, k)
					if err != nil {
						t.Fatalf("contains %d: %v", k, err)
					}
					if !ok {
						t.Errorf("key %d missing after batched run", k)
					}
				}
				tx.Commit()
				if got := s.Sharded().ActiveInvocations(); got != 0 {
					t.Errorf("ActiveInvocations = %d after run, want 0", got)
				}
				if got, wantN := len(s.Snapshot()), len(want); got != wantN {
					t.Errorf("snapshot has %d elements, want %d", got, wantN)
				}
				d := s.Telemetry()
				if d.ShardLocals() == 0 {
					t.Error("no shard-local admissions counted")
				}
			})
		}
	}
}
