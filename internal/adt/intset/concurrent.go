package intset

import (
	"sync"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/telemetry"
)

// Set is a transactionally guarded set: the interface all conflict
// detection variants share. Methods return an error satisfying
// engine.IsConflict when the invocation does not commute with a live
// transaction; the caller's transaction then aborts and retries.
type Set interface {
	Add(tx *engine.Tx, x int64) (bool, error)
	Remove(tx *engine.Tx, x int64) (bool, error)
	Contains(tx *engine.Tx, x int64) (bool, error)
	// Snapshot returns the current elements. Only safe when no
	// transactions are live.
	Snapshot() []int64
}

// LockedSet guards a representation with a synthesized abstract-locking
// scheme (§3.2). The same type serves every SIMPLE lattice point: global
// lock (bottom), exclusive, read/write, and partitioned — only the scheme
// differs.
type LockedSet struct {
	mgr *abslock.Manager
	mu  sync.Mutex // physical atomicity of rep operations
	rep Rep
}

// NewLocked synthesizes the abstract locking scheme for spec (which must
// be SIMPLE, possibly keyed) and guards rep with it. keys supplies
// implementations for key functions (nil for identity-only specs).
func NewLocked(rep Rep, spec *core.Spec, keys map[string]abslock.KeyFunc) (*LockedSet, error) {
	scheme, err := abslock.Synthesize(spec)
	if err != nil {
		return nil, err
	}
	return &LockedSet{mgr: abslock.NewManager(scheme.Reduce(), keys), rep: rep}, nil
}

// Telemetry returns the lock manager's telemetry detector, which
// reports per-mode acquisition/wait counters and mode-pair conflicts.
func (s *LockedSet) Telemetry() *telemetry.Detector { return s.mgr.Telemetry() }

// NewGlobalLock guards rep with the single global lock synthesized from ⊥.
func NewGlobalLock(rep Rep) *LockedSet {
	s, err := NewLocked(rep, BottomSpec(), nil)
	if err != nil {
		panic(err) // bottom is always SIMPLE
	}
	return s
}

// NewExclusiveLocked guards rep with exclusive per-element locks.
func NewExclusiveLocked(rep Rep) *LockedSet {
	s, err := NewLocked(rep, ExclusiveSpec(), nil)
	if err != nil {
		panic(err)
	}
	return s
}

// NewRWLocked guards rep with read/write per-element locks (figure 3).
func NewRWLocked(rep Rep) *LockedSet {
	s, err := NewLocked(rep, RWSpec(), nil)
	if err != nil {
		panic(err)
	}
	return s
}

// NewLiberalLocked guards rep with the liberal (guarded-mode) locking
// scheme synthesized from the PRECISE specification of figure 2 — the
// footnote-6 extension: non-mutating operations take weak modes, so
// concurrent non-mutating adds of the same element proceed, with lock
// overhead instead of gatekeeper logging.
func NewLiberalLocked(rep Rep) *LockedSet {
	scheme, err := abslock.SynthesizeLiberal(PreciseSpec())
	if err != nil {
		panic(err) // figure 2 is GUARDED-SIMPLE
	}
	return &LockedSet{mgr: abslock.NewManager(scheme.Reduce(), nil), rep: rep}
}

// NewPartitionLocked guards rep with locks on nparts partitions (§4.2).
func NewPartitionLocked(rep Rep, nparts int) *LockedSet {
	s, err := NewLocked(rep, PartitionedSpec(), map[string]abslock.KeyFunc{
		PartitionKey: func(v core.Value) core.Value { return core.VInt(Partition(v.Int(), nparts)) },
	})
	if err != nil {
		panic(err)
	}
	return s
}

func (s *LockedSet) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	ret, err := s.mgr.Invoke(tx, method, core.Args1(core.VInt(x)), func() core.Value {
		s.mu.Lock()
		defer s.mu.Unlock()
		switch method {
		case "add":
			if s.rep.Add(x) {
				tx.OnUndo(func() {
					s.mu.Lock()
					s.rep.Remove(x)
					s.mu.Unlock()
				})
				return core.VBool(true)
			}
			return core.VBool(false)
		case "remove":
			if s.rep.Remove(x) {
				tx.OnUndo(func() {
					s.mu.Lock()
					s.rep.Add(x)
					s.mu.Unlock()
				})
				return core.VBool(true)
			}
			return core.VBool(false)
		default:
			return core.VBool(s.rep.Contains(x))
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Add inserts x under the lock discipline; it reports whether the set
// changed.
func (s *LockedSet) Add(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "add", x) }

// Remove deletes x under the lock discipline.
func (s *LockedSet) Remove(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "remove", x) }

// Contains queries membership under the lock discipline.
func (s *LockedSet) Contains(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "contains", x)
}

// Snapshot returns the elements; only safe with no live transactions.
func (s *LockedSet) Snapshot() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rep.Elems()
}

// GatekeptSet guards a representation with a forward gatekeeper built
// from the precise specification of figure 2 (§3.3.1) — the most
// permissive detector for sets: non-mutating adds/removes and reads of
// untouched elements all proceed concurrently.
type GatekeptSet struct {
	g   *gatekeeper.Forward
	rep Rep
}

// NewGatekept builds the forward-gatekept set over rep.
func NewGatekept(rep Rep) *GatekeptSet {
	g, err := gatekeeper.NewForward(PreciseSpec(), nil)
	if err != nil {
		panic(err) // the precise set spec is ONLINE-CHECKABLE
	}
	return &GatekeptSet{g: g, rep: rep}
}

func (s *GatekeptSet) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	ret, err := s.g.Invoke(tx, method, core.Args1(core.VInt(x)), func() gatekeeper.Effect {
		switch method {
		case "add":
			if s.rep.Add(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() { s.rep.Remove(x) }}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		case "remove":
			if s.rep.Remove(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() { s.rep.Add(x) }}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		default:
			return gatekeeper.Effect{Ret: core.VBool(s.rep.Contains(x))}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Add inserts x under gatekeeping; it reports whether the set changed.
func (s *GatekeptSet) Add(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "add", x) }

// Remove deletes x under gatekeeping.
func (s *GatekeptSet) Remove(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "remove", x) }

// Contains queries membership under gatekeeping.
func (s *GatekeptSet) Contains(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "contains", x)
}

// GateStats returns the forward gatekeeper's work counters.
func (s *GatekeptSet) GateStats() gatekeeper.Stats { return s.g.Stats() }

// Telemetry returns the gatekeeper's telemetry detector, which
// additionally attributes checks and conflicts per method pair.
func (s *GatekeptSet) Telemetry() *telemetry.Detector { return s.g.Telemetry() }

// Snapshot returns the elements; only safe with no live transactions.
func (s *GatekeptSet) Snapshot() []int64 {
	var out []int64
	s.g.Sync(func() { out = s.rep.Elems() })
	return out
}

// CascadeSet guards a representation with the lattice-cascade detector
// built from the same precise specification as GatekeptSet. The
// detector takes no lock at all on the disjoint-element fast path — a
// signature-filter miss admits the invocation after the effect ran —
// so the representation is protected by the set's own mutex inside the
// exec closure (the forward gatekeeper's detector-wide mutex did both
// jobs at once; here detection and representation locking decouple).
type CascadeSet struct {
	c   *gatekeeper.Cascade
	mu  sync.Mutex
	rep Rep
}

// NewCascaded builds the cascade-guarded set over rep.
func NewCascaded(rep Rep) *CascadeSet {
	return NewCascadedConfig(rep, gatekeeper.CascadeConfig{})
}

// NewCascadedConfig is NewCascaded with explicit cascade configuration
// (tests use small slot tables to exercise the overflow path).
func NewCascadedConfig(rep Rep, cfg gatekeeper.CascadeConfig) *CascadeSet {
	c, err := gatekeeper.NewCascadeConfig(PreciseSpec(), nil, cfg)
	if err != nil {
		panic(err) // the precise set spec is log-free, hence cascadable
	}
	return &CascadeSet{c: c, rep: rep}
}

func (s *CascadeSet) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	ret, err := s.c.Invoke(tx, method, core.Args1(core.VInt(x)), func() gatekeeper.Effect {
		s.mu.Lock()
		defer s.mu.Unlock()
		switch method {
		case "add":
			if s.rep.Add(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() {
					s.mu.Lock()
					s.rep.Remove(x)
					s.mu.Unlock()
				}}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		case "remove":
			if s.rep.Remove(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() {
					s.mu.Lock()
					s.rep.Add(x)
					s.mu.Unlock()
				}}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		default:
			return gatekeeper.Effect{Ret: core.VBool(s.rep.Contains(x))}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Add inserts x under the cascade; it reports whether the set changed.
func (s *CascadeSet) Add(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "add", x) }

// addBatchPool recycles the BatchOp staging slices of AddBatch so a
// steady-state batched worker allocates nothing per batch.
var addBatchPool = sync.Pool{New: func() any { return new([]gatekeeper.BatchOp) }}

// AddBatch inserts xs[i] under txs[i] as one admission batch: the
// representation lock is taken once for the whole run, the cascade
// admits the longest prefix whose verdicts match one-at-a-time
// execution (gatekeeper.Cascade.InvokeBatch), and that prefix's
// transactions group-commit through engine.CommitBatch — one release
// acquisition for all of them. The remaining items then re-run through
// the ordinary serial path, so every item gets exactly the serial
// verdict. It fills rets[i] and errs[i] for each item and returns the
// batched prefix length (callers wanting throughput telemetry; the
// per-item results are complete either way).
//
// On return, every tx with errs[i] == nil has been committed; a tx
// with a conflict in errs[i] is still active and must be aborted by
// the caller — exactly the engine.BatchBody contract.
func (s *CascadeSet) AddBatch(txs []*engine.Tx, xs []int64, rets []bool, errs []error) int {
	opsp := addBatchPool.Get().(*[]gatekeeper.BatchOp)
	ops := *opsp
	if cap(ops) < len(xs) {
		ops = make([]gatekeeper.BatchOp, len(xs))
	} else {
		ops = ops[:len(xs)]
	}
	for i := range xs {
		// Fill the pooled staging entries field-wise: a fresh BatchOp
		// literal would copy the whole inline Vec per op. Recycled
		// entries already hold a 1-value Vec, so only the value changes.
		op := &ops[i]
		op.Tx = txs[i]
		op.Method = "add"
		if op.Args.Len() == 1 {
			op.Args.Set(0, core.VInt(xs[i]))
		} else {
			op.Args = core.Args1(core.VInt(xs[i]))
		}
	}
	p := s.c.InvokeBatch(ops, func(run []gatekeeper.BatchOp) {
		s.mu.Lock()
		defer s.mu.Unlock()
		for k := range run {
			x := run[k].Args.At(0).Int()
			if s.rep.Add(x) {
				run[k].Ret = core.VBool(true)
				run[k].Undo = func() {
					s.mu.Lock()
					s.rep.Remove(x)
					s.mu.Unlock()
				}
			} else {
				run[k].Ret = core.VBool(false)
			}
		}
	})
	for i := 0; i < p; i++ {
		rets[i], errs[i] = ops[i].Ret.Bool(), nil
	}
	for i := range ops {
		// Drop the transaction and closure references; the staged Args
		// and Ret hold only ref-free ints and bools and are reused in
		// place by the next batch.
		ops[i].Tx = nil
		ops[i].Undo = nil
	}
	*opsp = ops[:0]
	addBatchPool.Put(opsp)
	// Group-commit the admitted prefix before the serial re-runs: the
	// suffix's verdicts must see the prefix's transactions as finished,
	// exactly as a one-at-a-time schedule would.
	engine.CommitBatch(txs[:p])
	for i := p; i < len(xs); i++ {
		rets[i], errs[i] = s.Add(txs[i], xs[i])
		if errs[i] == nil {
			txs[i].Commit()
		}
	}
	return p
}

// Remove deletes x under the cascade.
func (s *CascadeSet) Remove(tx *engine.Tx, x int64) (bool, error) { return s.invoke(tx, "remove", x) }

// Contains queries membership under the cascade.
func (s *CascadeSet) Contains(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "contains", x)
}

// GateStats returns the cascade's work counters (stage counters
// included).
func (s *CascadeSet) GateStats() gatekeeper.Stats { return s.c.Stats() }

// Telemetry returns the cascade's telemetry detector.
func (s *CascadeSet) Telemetry() *telemetry.Detector { return s.c.Telemetry() }

// Cascade exposes the underlying detector (tests use it to inspect
// active-window drainage).
func (s *CascadeSet) Cascade() *gatekeeper.Cascade { return s.c }

// Snapshot returns the elements; only safe with no live transactions.
func (s *CascadeSet) Snapshot() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rep.Elems()
}

var (
	_ Set = (*LockedSet)(nil)
	_ Set = (*GatekeptSet)(nil)
	_ Set = (*CascadeSet)(nil)
)
