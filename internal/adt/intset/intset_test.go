package intset

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"commlat/internal/core"
)

// model adapts the set to core.Model for brute-force spec validation.
type model struct {
	rep Rep
}

func newModel(rep Rep, vals ...int64) *model {
	for _, v := range vals {
		rep.Add(v)
	}
	return &model{rep: rep}
}

func (m *model) Clone() core.Model {
	c := NewHashRep()
	for _, v := range m.rep.Elems() {
		c.Add(v)
	}
	return &model{rep: c}
}

func (m *model) Apply(method string, args []core.Value) (core.Value, error) {
	x := args[0].Int()
	switch method {
	case "add":
		return core.VBool(m.rep.Add(x)), nil
	case "remove":
		return core.VBool(m.rep.Remove(x)), nil
	case "contains":
		return core.VBool(m.rep.Contains(x)), nil
	default:
		return core.Value{}, fmt.Errorf("unknown method %s", method)
	}
}

func (m *model) StateKey() string { return fmt.Sprint(m.rep.Elems()) }

func (m *model) StateFn(fn string, args []core.Value) (core.Value, error) {
	if fn == PartitionKey {
		return core.VInt(Partition(args[0].Int(), 2)), nil
	}
	return core.Value{}, fmt.Errorf("unknown fn %s", fn)
}

func allCalls(vals ...int64) []core.Call {
	var out []core.Call
	for _, m := range []string{"add", "remove", "contains"} {
		for _, v := range vals {
			out = append(out, core.Call{Method: m, Args: []core.Value{core.V(v)}})
		}
	}
	return out
}

func states() []core.Model {
	return []core.Model{
		newModel(NewHashRep()),
		newModel(NewHashRep(), 1),
		newModel(NewHashRep(), 1, 2),
		newModel(NewHashRep(), 2, 3),
	}
}

// TestAllSpecsSound brute-forces every shipped set specification against
// the executable model (Definition 1, both orientations).
func TestAllSpecsSound(t *testing.T) {
	specs := map[string]*core.Spec{
		"precise":     PreciseSpec(),
		"rw":          RWSpec(),
		"exclusive":   ExclusiveSpec(),
		"partitioned": PartitionedSpec(),
		"bottom":      BottomSpec(),
	}
	for name, spec := range specs {
		bad, err := core.CheckCondSound(spec, states(), allCalls(1, 2, 3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range bad {
			t.Errorf("%s: %s", name, v)
		}
	}
}

// TestSpecLatticeChain verifies the lattice ordering the paper's §4 uses
// to derive detectors: ⊥ ≤ exclusive ≤ rw ≤ precise, partitioned ≤ rw.
func TestSpecLatticeChain(t *testing.T) {
	bot, ex, rw, pr, part := BottomSpec(), ExclusiveSpec(), RWSpec(), PreciseSpec(), PartitionedSpec()
	chain := []struct {
		name string
		lo   *core.Spec
		hi   *core.Spec
	}{
		{"bottom ≤ exclusive", bot, ex},
		{"exclusive ≤ rw", ex, rw},
		{"rw ≤ precise", rw, pr},
		{"partitioned ≤ rw", part, rw},
		{"bottom ≤ precise", bot, pr},
	}
	for _, c := range chain {
		if !c.lo.LE(c.hi) {
			t.Errorf("%s failed", c.name)
		}
		if c.hi.LE(c.lo) {
			t.Errorf("%s should be strict", c.name)
		}
	}
}

func TestSpecClasses(t *testing.T) {
	if got := PreciseSpec().Classify(); got != core.ClassOnline {
		t.Errorf("precise class = %v", got)
	}
	for name, s := range map[string]*core.Spec{
		"rw": RWSpec(), "exclusive": ExclusiveSpec(), "bottom": BottomSpec(),
	} {
		if got := s.Classify(); got != core.ClassSimple {
			t.Errorf("%s class = %v", name, got)
		}
	}
}

// TestRepsAgree is a property test: both representations implement the
// same abstract set.
func TestRepsAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		h, s := NewHashRep(), NewSortedRep()
		ref := map[int64]bool{}
		for i := 0; i < 200; i++ {
			x := int64(r.Intn(20))
			switch r.Intn(3) {
			case 0:
				want := !ref[x]
				ref[x] = true
				if h.Add(x) != want || s.Add(x) != want {
					return false
				}
			case 1:
				want := ref[x]
				delete(ref, x)
				if h.Remove(x) != want || s.Remove(x) != want {
					return false
				}
			default:
				if h.Contains(x) != ref[x] || s.Contains(x) != ref[x] {
					return false
				}
			}
			if h.Len() != len(ref) || s.Len() != len(ref) {
				return false
			}
		}
		he, se := h.Elems(), s.Elems()
		if len(he) != len(se) {
			return false
		}
		for i := range he {
			if he[i] != se[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPartition(t *testing.T) {
	if Partition(7, 4) != 3 || Partition(-1, 4) != 3 || Partition(8, 4) != 0 {
		t.Errorf("Partition wrong: %d %d %d", Partition(7, 4), Partition(-1, 4), Partition(8, 4))
	}
}

func TestSortedRepOrdering(t *testing.T) {
	s := NewSortedRep()
	for _, x := range []int64{5, 1, 3, 2, 4, 3} {
		s.Add(x)
	}
	want := []int64{1, 2, 3, 4, 5}
	got := s.Elems()
	if len(got) != len(want) {
		t.Fatalf("Elems = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Elems = %v", got)
		}
	}
}
