package intset

import (
	"fmt"
	"runtime"
	"testing"

	"commlat/internal/engine"
)

// TestBatchStressRace drives the whole batched pipeline end to end —
// engine.RunItemsBatched popping shard batches, CascadeSet.AddBatch
// admitting them through gatekeeper.InvokeBatch, engine.CommitBatch
// group-committing the admitted prefix, conflicted stragglers retried
// through the serial path — across the batch-size × parallelism sweep
// the batch protocol must survive. The key space is narrow enough that
// every batch size sees real intra-batch duplicates and cross-worker
// conflicts, so all three admission outcomes (whole, split, serialized)
// occur. Run with -race: the sweep exists to put the publish/probe,
// group version word, and group-commit fences under the memory-model
// checker at every rung.
func TestBatchStressRace(t *testing.T) {
	items := 4000
	if testing.Short() {
		items = 800
	}
	for _, batch := range []int{1, 8, 128} {
		for _, procs := range []int{2, 8} {
			t.Run(fmt.Sprintf("batch%d/procs%d", batch, procs), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)

				// ~items/8 distinct keys: dense enough to collide inside a
				// single 128-batch, sparse enough that most admissions win.
				keys := make([]int64, items)
				want := map[int64]bool{}
				for i := range keys {
					keys[i] = int64((i * 2654435761) % (items / 8))
					want[keys[i]] = true
				}

				s := NewCascaded(NewHashRep())
				stats, err := engine.RunItemsBatched(keys, engine.Options{
					Workers:   procs,
					BatchSize: batch,
				}, func(txs []*engine.Tx, xs []int64, _ *engine.Worklist[int64], errs []error) error {
					rets := make([]bool, len(xs))
					s.AddBatch(txs, xs, rets, errs)
					return nil
				})
				if err != nil {
					t.Fatal(err)
				}
				if stats.Committed != uint64(items) {
					t.Fatalf("committed %d of %d items", stats.Committed, items)
				}

				// Exactly the union of the keys, nothing lost to a retried
				// duplicate, nothing left admitted.
				tx := engine.NewTx()
				for k := range want {
					ok, err := s.Contains(tx, k)
					if err != nil {
						t.Fatalf("contains %d: %v", k, err)
					}
					if !ok {
						t.Errorf("key %d missing after batched run", k)
					}
				}
				tx.Commit()
				if got := s.Cascade().ActiveInvocations(); got != 0 {
					t.Errorf("ActiveInvocations = %d after run, want 0", got)
				}
			})
		}
	}
}
