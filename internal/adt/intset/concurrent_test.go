package intset

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"commlat/internal/engine"
)

// variants returns one instance of every conflict-detection variant,
// each over a fresh hash representation.
func variants() map[string]Set {
	return map[string]Set{
		"global":     NewGlobalLock(NewHashRep()),
		"exclusive":  NewExclusiveLocked(NewHashRep()),
		"rw":         NewRWLocked(NewHashRep()),
		"partition8": NewPartitionLocked(NewHashRep(), 8),
		"gatekeeper": NewGatekept(NewHashRep()),
		"gk-sorted":  NewGatekept(NewSortedRep()),
		"rw-sorted":  NewRWLocked(NewSortedRep()),
	}
}

// TestSequentialSemantics: with one transaction at a time, every variant
// behaves exactly like a plain set.
func TestSequentialSemantics(t *testing.T) {
	for name, s := range variants() {
		ref := map[int64]bool{}
		r := rand.New(rand.NewSource(42))
		for i := 0; i < 300; i++ {
			tx := engine.NewTx()
			x := int64(r.Intn(15))
			var got, want bool
			var err error
			switch r.Intn(3) {
			case 0:
				want = !ref[x]
				ref[x] = true
				got, err = s.Add(tx, x)
			case 1:
				want = ref[x]
				delete(ref, x)
				got, err = s.Remove(tx, x)
			default:
				want = ref[x]
				got, err = s.Contains(tx, x)
			}
			if err != nil {
				t.Fatalf("%s: single-tx op conflicted: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s: op returned %v, want %v", name, got, want)
			}
			tx.Commit()
		}
		snap := s.Snapshot()
		if len(snap) != len(ref) {
			t.Errorf("%s: snapshot %v vs ref %v", name, snap, ref)
		}
		for _, x := range snap {
			if !ref[x] {
				t.Errorf("%s: stray element %d", name, x)
			}
		}
	}
}

// TestAbortRollsBackAllVariants: a multi-op transaction that aborts must
// leave no trace in any variant.
func TestAbortRollsBackAllVariants(t *testing.T) {
	for name, s := range variants() {
		setup := engine.NewTx()
		if _, err := s.Add(setup, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		setup.Commit()
		tx := engine.NewTx()
		if _, err := s.Add(tx, 2); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := s.Remove(tx, 1); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tx.Abort()
		snap := s.Snapshot()
		if len(snap) != 1 || snap[0] != 1 {
			t.Errorf("%s: abort left %v, want [1]", name, snap)
		}
	}
}

// TestPermissivenessOrdering: the lattice position predicts which
// concurrent accesses are allowed. Two concurrent contains of the SAME
// element: exclusive locks conflict; rw locks, partition locks and the
// gatekeeper do not. A non-mutating add of a present element: only the
// gatekeeper (precise spec) allows a concurrent contains.
func TestPermissivenessOrdering(t *testing.T) {
	mustConflict := func(name string, err error) {
		if !engine.IsConflict(err) {
			t.Errorf("%s: expected conflict, got %v", name, err)
		}
	}
	mustOK := func(name string, err error) {
		if err != nil {
			t.Errorf("%s: expected success, got %v", name, err)
		}
	}

	// contains vs contains on the same key.
	for name, s := range variants() {
		seed := engine.NewTx()
		if _, err := s.Add(seed, 5); err != nil {
			t.Fatal(err)
		}
		seed.Commit()
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		if _, err := s.Contains(tx1, 5); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, err := s.Contains(tx2, 5)
		switch name {
		case "exclusive", "global":
			mustConflict(name, err)
		default:
			mustOK(name, err)
		}
		tx2.Abort()
		tx1.Abort()
	}

	// non-mutating add vs contains on the same key.
	for name, s := range variants() {
		seed := engine.NewTx()
		if _, err := s.Add(seed, 5); err != nil {
			t.Fatal(err)
		}
		seed.Commit()
		tx1, tx2 := engine.NewTx(), engine.NewTx()
		if _, err := s.Add(tx1, 5); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, err := s.Contains(tx2, 5)
		switch name {
		case "gatekeeper", "gk-sorted", "liberal":
			mustOK(name, err) // precise spec: the add did not mutate
		default:
			mustConflict(name, err)
		}
		tx2.Abort()
		tx1.Abort()
	}

	// partition coarseness: different elements, same partition.
	s := NewPartitionLocked(NewHashRep(), 8)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := s.Add(tx1, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(tx2, 11); !engine.IsConflict(err) { // 11 ≡ 3 mod 8
		t.Errorf("partition: same-partition add should conflict, got %v", err)
	}
	if _, err := s.Add(tx2, 4); err != nil {
		t.Errorf("partition: different-partition add failed: %v", err)
	}
	tx2.Abort()
	tx1.Abort()
}

// TestConcurrentAddsOnly runs an adds-only speculative workload on every
// variant and validates the final contents against the committed
// operations.
func TestConcurrentAddsOnly(t *testing.T) {
	for name, s := range variants() {
		var mu sync.Mutex
		committed := map[int64]bool{}
		items := make([]int64, 400)
		r := rand.New(rand.NewSource(7))
		for i := range items {
			items[i] = int64(r.Intn(50))
		}
		stats, err := engine.RunItems(items, engine.Options{Workers: 8}, func(tx *engine.Tx, x int64, _ *engine.Worklist[int64]) error {
			if _, err := s.Add(tx, x); err != nil {
				return err
			}
			mu.Lock()
			committed[x] = true
			mu.Unlock()
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Committed != 400 {
			t.Errorf("%s: committed %d, want 400", name, stats.Committed)
		}
		snap := map[int64]bool{}
		for _, x := range s.Snapshot() {
			snap[x] = true
		}
		if fmt.Sprint(snap) != fmt.Sprint(committed) {
			t.Errorf("%s: final %v vs committed %v", name, snap, committed)
		}
	}
}

// TestConcurrentMixedWorkload exercises add/remove/contains across
// workers on *disjoint* key ranges (so every transaction eventually
// commutes) and validates per-worker final contents.
func TestConcurrentMixedWorkload(t *testing.T) {
	for name, s := range variants() {
		var mu sync.Mutex
		ref := map[int64]bool{} // guarded reference applied only on commit
		type op struct {
			kind string
			x    int64
		}
		var items []op
		r := rand.New(rand.NewSource(3))
		for w := 0; w < 8; w++ {
			for i := 0; i < 40; i++ {
				kind := []string{"add", "remove", "contains"}[r.Intn(3)]
				items = append(items, op{kind, int64(w*100 + r.Intn(10))})
			}
		}
		_, err := engine.RunItems(items, engine.Options{Workers: 8}, func(tx *engine.Tx, o op, _ *engine.Worklist[op]) error {
			var err error
			switch o.kind {
			case "add":
				_, err = s.Add(tx, o.x)
			case "remove":
				_, err = s.Remove(tx, o.x)
			default:
				_, err = s.Contains(tx, o.x)
			}
			if err != nil {
				return err
			}
			// Mirror the committed effect; the engine commits right after
			// the body returns nil, and conflicting keys are still locked
			// by this tx, so the mirror stays consistent per key.
			if o.kind != "contains" {
				mu.Lock()
				if o.kind == "add" {
					ref[o.x] = true
				} else {
					delete(ref, o.x)
				}
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snap := map[int64]bool{}
		for _, x := range s.Snapshot() {
			snap[x] = true
		}
		if len(snap) != len(ref) {
			t.Errorf("%s: %d elements, ref %d", name, len(snap), len(ref))
		}
		for x := range ref {
			if !snap[x] {
				t.Errorf("%s: missing %d", name, x)
			}
		}
	}
}
