package intset

import (
	"sync"

	"commlat/internal/engine"
	"commlat/internal/stm"
)

// STMSet is the §4.3 baseline: a set whose conflict detection is the
// concrete-commutativity point FC — object-granularity transactional
// memory over the representation's buckets. Two invocations conflict
// whenever one writes a bucket the other touched, regardless of whether
// they commute abstractly. FC sits below the precise specification F* in
// the lattice (concrete commutativity implies semantic commutativity),
// which tests demonstrate behaviourally: everything the STM set allows,
// the gatekeeper allows, but not vice versa.
type STMSet struct {
	mu      sync.Mutex
	buckets []stm.Obj
	elems   map[int64]bool
}

// NewSTM creates an STM-backed set with nbuckets conflict-detection
// granules (more buckets = finer concrete footprints).
func NewSTM(nbuckets int) *STMSet {
	return &STMSet{buckets: make([]stm.Obj, nbuckets), elems: map[int64]bool{}}
}

func (s *STMSet) bucket(x int64) *stm.Obj {
	m := x % int64(len(s.buckets))
	if m < 0 {
		m += int64(len(s.buckets))
	}
	return &s.buckets[m]
}

// Add inserts x under memory-level detection: the bucket is read first
// (hash lookup) and written only if the set changes — the concrete
// footprint an STM would observe.
func (s *STMSet) Add(tx *engine.Tx, x int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bucket(x).Read(tx); err != nil {
		return false, err
	}
	if s.elems[x] {
		return false, nil
	}
	if err := s.bucket(x).Write(tx); err != nil {
		return false, err
	}
	s.elems[x] = true
	tx.OnUndo(func() {
		s.mu.Lock()
		delete(s.elems, x)
		s.mu.Unlock()
	})
	return true, nil
}

// Remove deletes x under memory-level detection.
func (s *STMSet) Remove(tx *engine.Tx, x int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bucket(x).Read(tx); err != nil {
		return false, err
	}
	if !s.elems[x] {
		return false, nil
	}
	if err := s.bucket(x).Write(tx); err != nil {
		return false, err
	}
	delete(s.elems, x)
	tx.OnUndo(func() {
		s.mu.Lock()
		s.elems[x] = true
		s.mu.Unlock()
	})
	return true, nil
}

// Contains queries membership under memory-level detection (a bucket
// read).
func (s *STMSet) Contains(tx *engine.Tx, x int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.bucket(x).Read(tx); err != nil {
		return false, err
	}
	return s.elems[x], nil
}

// Snapshot returns the elements; only safe with no live transactions.
func (s *STMSet) Snapshot() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := NewHashRep()
	for x := range s.elems {
		rep.Add(x)
	}
	return rep.Elems()
}

var _ Set = (*STMSet)(nil)
