package intset

import (
	"math/rand"
	"testing"

	"commlat/internal/engine"
)

// TestFCBelowFStar demonstrates §4.3 behaviourally: the STM set (lattice
// point FC) admits strictly less concurrency than the precise
// specification's gatekeeper (F*), and everything it admits the
// gatekeeper admits too.
func TestFCBelowFStar(t *testing.T) {
	seedBoth := func() (*STMSet, *GatekeptSet) {
		st, gk := NewSTM(64), NewGatekept(NewHashRep())
		tx := engine.NewTx()
		if _, err := st.Add(tx, 5); err != nil {
			t.Fatal(err)
		}
		if _, err := gk.Add(tx, 5); err != nil {
			t.Fatal(err)
		}
		tx.Commit()
		return st, gk
	}

	// Non-mutating add vs contains on the same element: semantic
	// commutativity holds (F* allows it); the concrete footprints
	// overlap read/read — also fine for the STM. Both allow.
	st, gk := seedBoth()
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := st.Add(tx1, 5); err != nil {
		t.Fatalf("stm non-mutating add: %v", err)
	}
	if _, err := st.Contains(tx2, 5); err != nil {
		t.Fatalf("stm read/read should share: %v", err)
	}
	tx1.Abort()
	tx2.Abort()

	// Mutating add vs a contains of a DIFFERENT element in the same
	// bucket: they commute semantically (F* allows), but the concrete
	// bucket write collides (FC conflicts).
	st, gk = seedBoth()
	tx1, tx2 = engine.NewTx(), engine.NewTx()
	bucketMate := int64(5 + 64) // same bucket as 5 in a 64-bucket set
	if _, err := st.Add(tx1, bucketMate); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Contains(tx2, 5); !engine.IsConflict(err) {
		t.Fatalf("stm: bucket collision should conflict, got %v", err)
	}
	tx1.Abort()
	tx2.Abort()
	tx3, tx4 := engine.NewTx(), engine.NewTx()
	if _, err := gk.Add(tx3, bucketMate); err != nil {
		t.Fatal(err)
	}
	if c, err := gk.Contains(tx4, 5); err != nil || !c {
		t.Fatalf("gatekeeper: semantically commuting pair should pass: %v, %v", c, err)
	}
	tx3.Abort()
	tx4.Abort()
}

func TestSTMSetSequentialSemantics(t *testing.T) {
	s := NewSTM(16)
	ref := map[int64]bool{}
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 300; i++ {
		x := int64(r.Intn(20))
		tx := engine.NewTx()
		var got, want bool
		var err error
		switch r.Intn(3) {
		case 0:
			want = !ref[x]
			ref[x] = true
			got, err = s.Add(tx, x)
		case 1:
			want = ref[x]
			delete(ref, x)
			got, err = s.Remove(tx, x)
		default:
			want = ref[x]
			got, err = s.Contains(tx, x)
		}
		if err != nil {
			t.Fatalf("solo op conflicted: %v", err)
		}
		if got != want {
			t.Fatalf("op returned %v, want %v", got, want)
		}
		tx.Commit()
	}
	if len(s.Snapshot()) != len(ref) {
		t.Errorf("snapshot size %d, want %d", len(s.Snapshot()), len(ref))
	}
}

func TestSTMSetAbortRollsBack(t *testing.T) {
	s := NewSTM(8)
	tx := engine.NewTx()
	if _, err := s.Add(tx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(tx, 2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if len(s.Snapshot()) != 0 {
		t.Errorf("abort left %v", s.Snapshot())
	}
}

// TestGatekeptSetTwoTxSerializability replays random two-transaction
// interleavings through the gatekept set; whenever both transactions
// commit, some serial order must reproduce every recorded return and the
// final contents (Theorem 2 at the implementation level).
func TestGatekeptSetTwoTxSerializability(t *testing.T) {
	type opRec struct {
		tx     int
		method int // 0 add, 1 remove, 2 contains
		x      int64
		ret    bool
	}
	r := rand.New(rand.NewSource(55))
	bothCommitted := 0
	for trial := 0; trial < 600; trial++ {
		s := NewGatekept(NewHashRep())
		var base []int64
		for x := int64(0); x < 4; x++ {
			if r.Intn(2) == 0 {
				base = append(base, x)
			}
		}
		seed := engine.NewTx()
		for _, x := range base {
			if _, err := s.Add(seed, x); err != nil {
				t.Fatal(err)
			}
		}
		seed.Commit()

		txs := [2]*engine.Tx{engine.NewTx(), engine.NewTx()}
		aborted := [2]bool{}
		var hist []opRec
		for i := 0; i < 2+r.Intn(5); i++ {
			w := r.Intn(2)
			if aborted[w] {
				continue
			}
			rec := opRec{tx: w, method: r.Intn(3), x: int64(r.Intn(4))}
			var err error
			switch rec.method {
			case 0:
				rec.ret, err = s.Add(txs[w], rec.x)
			case 1:
				rec.ret, err = s.Remove(txs[w], rec.x)
			default:
				rec.ret, err = s.Contains(txs[w], rec.x)
			}
			if err != nil {
				if !engine.IsConflict(err) {
					t.Fatal(err)
				}
				txs[w].Abort()
				aborted[w] = true
				continue
			}
			hist = append(hist, rec)
		}
		for w := 0; w < 2; w++ {
			if !aborted[w] {
				txs[w].Commit()
			}
		}
		if aborted[0] || aborted[1] {
			continue
		}
		bothCommitted++
		finalKey := snapshotKey(s.Snapshot())

		replay := func(first int) bool {
			m := map[int64]bool{}
			for _, x := range base {
				m[x] = true
			}
			for pass := 0; pass < 2; pass++ {
				tx := first
				if pass == 1 {
					tx = 1 - first
				}
				for _, rec := range hist {
					if rec.tx != tx {
						continue
					}
					var got bool
					switch rec.method {
					case 0:
						got = !m[rec.x]
						m[rec.x] = true
					case 1:
						got = m[rec.x]
						delete(m, rec.x)
					default:
						got = m[rec.x]
					}
					if got != rec.ret {
						return false
					}
				}
			}
			rep := NewHashRep()
			for x := range m {
				rep.Add(x)
			}
			return snapshotKey(rep.Elems()) == finalKey
		}
		if !replay(0) && !replay(1) {
			t.Fatalf("trial %d: no serial order reproduces %+v from %v", trial, hist, base)
		}
	}
	if bothCommitted == 0 {
		t.Error("no trial had both transactions commit; test vacuous")
	}
}

func snapshotKey(xs []int64) string {
	key := ""
	for _, x := range xs {
		key += string(rune('a'+x)) + ";"
	}
	return key
}
