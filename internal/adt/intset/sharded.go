package intset

import (
	"sync"

	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/telemetry"
)

// ShardedCascadeSet guards a key-partitioned representation with the
// sharded cascade router. Detection state and representation state are
// partitioned by the same KeyOf mapping, so an element's admission and
// its mutation touch only that shard's filter, slot table, rep and
// mutex — a worker whose keys stay in one shard shares no cache lines
// with the others, which is the whole point of the affinity router.
type ShardedCascadeSet struct {
	c    *gatekeeper.ShardedCascade
	mus  []padMutex
	reps []Rep
}

// padMutex keeps neighboring shard mutexes off one cache line.
type padMutex struct {
	sync.Mutex
	_ [56]byte
}

// NewShardedCascaded builds a sharded cascade-guarded set; mk creates
// one representation shard (called once per shard), shards <= 0 means
// gatekeeper.DefaultShards.
func NewShardedCascaded(mk func() Rep, shards int) *ShardedCascadeSet {
	return NewShardedCascadedConfig(mk, gatekeeper.CascadeConfig{}, shards)
}

// NewShardedCascadedConfig is NewShardedCascaded with explicit
// per-shard cascade configuration.
func NewShardedCascadedConfig(mk func() Rep, cfg gatekeeper.CascadeConfig, shards int) *ShardedCascadeSet {
	c, err := gatekeeper.NewShardedConfig(PreciseSpec(), nil, cfg, shards)
	if err != nil {
		panic(err) // the precise set spec is log-free, hence cascadable
	}
	s := &ShardedCascadeSet{
		c:    c,
		mus:  make([]padMutex, c.Shards()),
		reps: make([]Rep, c.Shards()),
	}
	for i := range s.reps {
		s.reps[i] = mk()
	}
	return s
}

// repShard maps an element to its representation shard — the same
// mapping the router uses for admission, so a single-shard invocation's
// rep accesses stay inside its admission shard.
func (s *ShardedCascadeSet) repShard(x int64) int {
	sh, ok := s.c.KeyOf("add", core.Args1(core.VInt(x)))
	if !ok {
		return 0
	}
	return sh
}

func (s *ShardedCascadeSet) invoke(tx *engine.Tx, method string, x int64) (bool, error) {
	sh := s.repShard(x)
	mu := &s.mus[sh].Mutex
	rep := s.reps[sh]
	ret, err := s.c.Invoke(tx, method, core.Args1(core.VInt(x)), func() gatekeeper.Effect {
		mu.Lock()
		defer mu.Unlock()
		switch method {
		case "add":
			if rep.Add(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() {
					mu.Lock()
					rep.Remove(x)
					mu.Unlock()
				}}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		case "remove":
			if rep.Remove(x) {
				return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() {
					mu.Lock()
					rep.Add(x)
					mu.Unlock()
				}}
			}
			return gatekeeper.Effect{Ret: core.VBool(false)}
		default:
			return gatekeeper.Effect{Ret: core.VBool(rep.Contains(x))}
		}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Add inserts x; it reports whether the set changed.
func (s *ShardedCascadeSet) Add(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "add", x)
}

// Remove deletes x.
func (s *ShardedCascadeSet) Remove(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "remove", x)
}

// Contains queries membership.
func (s *ShardedCascadeSet) Contains(tx *engine.Tx, x int64) (bool, error) {
	return s.invoke(tx, "contains", x)
}

// AddBatch is CascadeSet.AddBatch through the router: the batch splits
// into maximal same-shard runs, each admitted under its shard's ticket
// with that shard's rep mutex taken once for the run. The admitted
// prefix group-commits; the remainder re-runs serially, so every item
// gets exactly the serial verdict. Batches arriving pre-sorted by
// shard affinity (engine.NewWorklistAffinity with KeyOf) admit as one
// run.
func (s *ShardedCascadeSet) AddBatch(txs []*engine.Tx, xs []int64, rets []bool, errs []error) int {
	opsp := addBatchPool.Get().(*[]gatekeeper.BatchOp)
	ops := *opsp
	if cap(ops) < len(xs) {
		ops = make([]gatekeeper.BatchOp, len(xs))
	} else {
		ops = ops[:len(xs)]
	}
	for i := range xs {
		op := &ops[i]
		op.Tx = txs[i]
		op.Method = "add"
		if op.Args.Len() == 1 {
			op.Args.Set(0, core.VInt(xs[i]))
		} else {
			op.Args = core.Args1(core.VInt(xs[i]))
		}
	}
	p := s.c.InvokeBatch(ops, func(run []gatekeeper.BatchOp) {
		// A run is same-shard by construction, so one shard's rep and
		// mutex cover all of it.
		sh := s.repShard(run[0].Args.At(0).Int())
		mu := &s.mus[sh].Mutex
		rep := s.reps[sh]
		mu.Lock()
		defer mu.Unlock()
		for k := range run {
			x := run[k].Args.At(0).Int()
			if rep.Add(x) {
				run[k].Ret = core.VBool(true)
				run[k].Undo = func() {
					mu.Lock()
					rep.Remove(x)
					mu.Unlock()
				}
			} else {
				run[k].Ret = core.VBool(false)
			}
		}
	})
	for i := 0; i < p; i++ {
		rets[i], errs[i] = ops[i].Ret.Bool(), nil
	}
	for i := range ops {
		ops[i].Tx = nil
		ops[i].Undo = nil
	}
	*opsp = ops[:0]
	addBatchPool.Put(opsp)
	engine.CommitBatch(txs[:p])
	for i := p; i < len(xs); i++ {
		rets[i], errs[i] = s.Add(txs[i], xs[i])
		if errs[i] == nil {
			txs[i].Commit()
		}
	}
	return p
}

// Sharded exposes the underlying router (tests, telemetry).
func (s *ShardedCascadeSet) Sharded() *gatekeeper.ShardedCascade { return s.c }

// Telemetry returns the router's telemetry detector (local/crossing
// admission counters).
func (s *ShardedCascadeSet) Telemetry() *telemetry.Detector { return s.c.Telemetry() }

// Snapshot returns the elements across all shards; only safe with no
// live transactions.
func (s *ShardedCascadeSet) Snapshot() []int64 {
	var out []int64
	for i := range s.reps {
		s.mus[i].Lock()
		out = append(out, s.reps[i].Elems()...)
		s.mus[i].Unlock()
	}
	return out
}

var _ Set = (*ShardedCascadeSet)(nil)
