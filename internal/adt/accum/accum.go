// Package accum implements the paper's accumulator ADT (figure 7), the
// running example of the abstract-locking construction in §3.2: an
// integer accumulator whose increments commute with increments and whose
// reads commute with reads, but the two never commute with each other.
// Synthesizing its specification produces exactly the compatibility
// matrices of figure 8.
package accum

import (
	"sync"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
)

// Sig is the accumulator's ADT signature.
func Sig() *core.ADTSig {
	return &core.ADTSig{Name: "accumulator", Methods: []core.MethodSig{
		{Name: "inc", Params: []string{"x"}},
		{Name: "read", HasRet: true},
	}}
}

// Spec is the commutativity specification of figure 7.
func Spec() *core.Spec {
	s := core.NewSpec(Sig())
	s.Set("inc", "inc", core.True())
	s.Set("inc", "read", core.False())
	s.Set("read", "read", core.True())
	return s
}

// Accumulator is the guarded ADT: a total guarded by the abstract locking
// scheme synthesized from Spec (reduced to figure 8b's two ds modes).
type Accumulator struct {
	mgr *abslock.Manager
	mu  sync.Mutex
	sum int64
}

// New creates a zeroed accumulator behind its synthesized detector.
func New() *Accumulator {
	scheme, err := abslock.Synthesize(Spec())
	if err != nil {
		panic(err) // figure 7's spec is SIMPLE
	}
	return &Accumulator{mgr: abslock.NewManager(scheme.Reduce(), nil)}
}

// Inc adds x to the accumulator within tx.
func (a *Accumulator) Inc(tx *engine.Tx, x int64) error {
	if err := a.mgr.PreAcquire(tx, "inc", core.Args1(core.VInt(x))); err != nil {
		return err
	}
	a.mu.Lock()
	a.sum += x
	a.mu.Unlock()
	tx.OnUndo(func() {
		a.mu.Lock()
		a.sum -= x
		a.mu.Unlock()
	})
	return nil
}

// Read returns the current total within tx.
func (a *Accumulator) Read(tx *engine.Tx) (int64, error) {
	if err := a.mgr.PreAcquire(tx, "read", core.Vec{}); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum, nil
}

// Total returns the total without conflict detection; only safe with no
// live transactions.
func (a *Accumulator) Total() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.sum
}
