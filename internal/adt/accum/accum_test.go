package accum

import (
	"fmt"
	"testing"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
)

// model validates figure 7 against an executable accumulator.
type model struct{ sum int64 }

func (m *model) Clone() core.Model { c := *m; return &c }

func (m *model) Apply(method string, args []core.Value) (core.Value, error) {
	switch method {
	case "inc":
		m.sum += args[0].Int()
		return core.Value{}, nil
	case "read":
		return core.VInt(m.sum), nil
	default:
		return core.Value{}, core.ErrUnknownFn(method)
	}
}

func (m *model) StateKey() string { return fmt.Sprint(m.sum) }

func (m *model) StateFn(fn string, args []core.Value) (core.Value, error) {
	return core.Value{}, core.ErrUnknownFn(fn)
}

func TestSpecSoundByBruteForce(t *testing.T) {
	var calls []core.Call
	for v := int64(0); v < 3; v++ {
		calls = append(calls, core.Call{Method: "inc", Args: []core.Value{core.V(v)}})
	}
	calls = append(calls, core.Call{Method: "read"})
	bad, err := core.CheckCondSound(Spec(), []core.Model{&model{}, &model{sum: 5}}, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestSpecIsSimple(t *testing.T) {
	if got := Spec().Classify(); got != core.ClassSimple {
		t.Errorf("class = %v", got)
	}
}

func TestFigure8Matrices(t *testing.T) {
	scheme, err := abslock.Synthesize(Spec())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scheme.Modes); got != 4 {
		t.Errorf("full matrix has %d modes, want 4 (figure 8a)", got)
	}
	r := scheme.Reduce()
	if got := len(r.Modes); got != 2 {
		t.Errorf("reduced matrix has %d modes, want 2 (figure 8b)", got)
	}
}

func TestConcurrentIncrementsShare(t *testing.T) {
	a := New()
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if err := a.Inc(tx1, 5); err != nil {
		t.Fatal(err)
	}
	if err := a.Inc(tx2, 3); err != nil {
		t.Fatalf("concurrent increments must commute: %v", err)
	}
	// A read under live increments conflicts.
	tx3 := engine.NewTx()
	if _, err := a.Read(tx3); !engine.IsConflict(err) {
		t.Fatalf("read under increments should conflict, got %v", err)
	}
	tx3.Abort()
	tx1.Commit()
	tx2.Commit()
	tx4 := engine.NewTx()
	if v, err := a.Read(tx4); err != nil || v != 8 {
		t.Fatalf("Read = %d, %v", v, err)
	}
	tx4.Commit()
}

func TestReadersShareIncBlocked(t *testing.T) {
	a := New()
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := a.Read(tx1); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Read(tx2); err != nil {
		t.Fatalf("concurrent reads must commute: %v", err)
	}
	tx3 := engine.NewTx()
	if err := a.Inc(tx3, 1); !engine.IsConflict(err) {
		t.Fatalf("inc under readers should conflict, got %v", err)
	}
	tx3.Abort()
	tx1.Abort()
	tx2.Abort()
}

func TestAbortUndoesIncrements(t *testing.T) {
	a := New()
	tx := engine.NewTx()
	if err := a.Inc(tx, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.Inc(tx, 2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	if a.Total() != 0 {
		t.Errorf("abort left total %d", a.Total())
	}
}

func TestSpeculativeSum(t *testing.T) {
	a := New()
	items := make([]int64, 300)
	for i := range items {
		items[i] = int64(i)
	}
	stats, err := engine.RunItems(items, engine.Options{Workers: 4}, func(tx *engine.Tx, x int64, _ *engine.Worklist[int64]) error {
		return a.Inc(tx, x)
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(299 * 300 / 2); a.Total() != want {
		t.Errorf("total = %d, want %d (stats %+v)", a.Total(), want, stats)
	}
}
