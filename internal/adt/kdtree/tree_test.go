package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// bruteNearest is the reference nearest query: linear scan with the same
// deterministic tie-break.
func bruteNearest(pts []Point, q Point) Point {
	best, bestD := None, math.Inf(1)
	for _, p := range pts {
		if p == q {
			continue
		}
		if d := DistSq(q, p); closer(p, d, best, bestD) {
			best, bestD = p, d
		}
	}
	return best
}

func randPoint(r *rand.Rand, grid int) Point {
	// A small grid makes duplicates and ties likely, stressing the
	// deterministic tie-break and duplicate handling.
	return Point{float64(r.Intn(grid)), float64(r.Intn(grid)), float64(r.Intn(grid))}
}

func TestTreeMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tr := New()
		ref := map[Point]bool{}
		for i := 0; i < 400; i++ {
			p := randPoint(r, 6)
			switch r.Intn(4) {
			case 0, 1:
				want := !ref[p]
				ref[p] = true
				if tr.Add(p) != want {
					t.Logf("seed %d: Add(%v) mismatch", seed, p)
					return false
				}
			case 2:
				want := ref[p]
				delete(ref, p)
				if tr.Remove(p) != want {
					t.Logf("seed %d: Remove(%v) mismatch", seed, p)
					return false
				}
			default:
				var pts []Point
				for q := range ref {
					pts = append(pts, q)
				}
				want := bruteNearest(pts, p)
				if got := tr.Nearest(p); got != want {
					t.Logf("seed %d: Nearest(%v) = %v, want %v (set %v)", seed, p, got, want, pts)
					return false
				}
			}
			if tr.Len() != len(ref) {
				t.Logf("seed %d: Len %d vs %d", seed, tr.Len(), len(ref))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTreeLargeUniform(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	tr := New()
	var pts []Point
	for i := 0; i < 3000; i++ {
		p := Point{r.Float64(), r.Float64(), r.Float64()}
		if tr.Add(p) {
			pts = append(pts, p)
		}
	}
	for i := 0; i < 100; i++ {
		q := Point{r.Float64(), r.Float64(), r.Float64()}
		if got, want := tr.Nearest(q), bruteNearest(pts, q); got != want {
			t.Fatalf("Nearest(%v) = %v, want %v", q, got, want)
		}
	}
	// Remove half and re-check.
	for i := 0; i < len(pts)/2; i++ {
		if !tr.Remove(pts[i]) {
			t.Fatalf("Remove(%v) failed", pts[i])
		}
	}
	rest := pts[len(pts)/2:]
	for i := 0; i < 100; i++ {
		q := rest[r.Intn(len(rest))]
		if got, want := tr.Nearest(q), bruteNearest(rest, q); got != want {
			t.Fatalf("after removals Nearest(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestNearestExcludesSelf(t *testing.T) {
	tr := New()
	tr.Add(Point{1, 1, 1})
	if got := tr.Nearest(Point{1, 1, 1}); !got.IsNone() {
		t.Errorf("singleton nearest = %v, want ∞ (the paper's convention)", got)
	}
	tr.Add(Point{2, 2, 2})
	if got := tr.Nearest(Point{1, 1, 1}); got != (Point{2, 2, 2}) {
		t.Errorf("nearest = %v", got)
	}
}

func TestNearestEmpty(t *testing.T) {
	if got := New().Nearest(Point{0, 0, 0}); !got.IsNone() {
		t.Errorf("empty nearest = %v", got)
	}
}

func TestNearestTieBreak(t *testing.T) {
	tr := New()
	tr.Add(Point{1, 0, 0})
	tr.Add(Point{-1, 0, 0})
	tr.Add(Point{0, 1, 0})
	tr.Add(Point{0, -1, 0})
	// All four are at distance 1 from the origin: the lexicographically
	// smallest must win.
	if got := tr.Nearest(Point{0, 0, 0}); got != (Point{-1, 0, 0}) {
		t.Errorf("tie-break picked %v", got)
	}
}

func TestDuplicateAdd(t *testing.T) {
	tr := New()
	p := Point{3, 4, 5}
	if !tr.Add(p) || tr.Add(p) {
		t.Error("duplicate add should return false")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
	if !tr.Remove(p) || tr.Remove(p) {
		t.Error("double remove should return false")
	}
	if tr.Len() != 0 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestBoxInvariant(t *testing.T) {
	// Every node's box must exactly bound its subtree's points, even
	// through splits, removals and collapses.
	r := rand.New(rand.NewSource(13))
	tr := New()
	var live []Point
	for i := 0; i < 500; i++ {
		p := randPoint(r, 5)
		if r.Intn(3) != 0 {
			if tr.Add(p) {
				live = append(live, p)
			}
		} else if tr.Remove(p) {
			for j, q := range live {
				if q == p {
					live = append(live[:j], live[j+1:]...)
					break
				}
			}
		}
		checkBoxes(t, tr.root)
	}
}

func checkBoxes(t *testing.T, n *node) (Box, int) {
	t.Helper()
	if n == nil {
		return emptyBox, 0
	}
	if n.leaf {
		want := emptyBox
		for _, p := range n.pts {
			want = want.Extend(p)
		}
		if n.box != want || n.count != len(n.pts) {
			t.Fatalf("leaf box/count wrong: %+v vs %+v (%d pts)", n.box, want, len(n.pts))
		}
		return n.box, n.count
	}
	lb, lc := checkBoxes(t, n.left)
	rb, rc := checkBoxes(t, n.right)
	if lc == 0 || rc == 0 {
		t.Fatal("interior node with empty child survived")
	}
	if want := lb.Union(rb); n.box != want {
		t.Fatalf("interior box wrong: %+v vs %+v", n.box, want)
	}
	if n.count != lc+rc {
		t.Fatalf("interior count wrong: %d vs %d", n.count, lc+rc)
	}
	return n.box, n.count
}

func TestBoxMinDist(t *testing.T) {
	b := emptyBox.Extend(Point{0, 0, 0}).Extend(Point{2, 2, 2})
	if d := b.MinDistSq(Point{1, 1, 1}); d != 0 {
		t.Errorf("inside point dist = %v", d)
	}
	if d := b.MinDistSq(Point{3, 2, 2}); d != 1 {
		t.Errorf("outside dist = %v, want 1", d)
	}
	if d := b.MinDistSq(Point{3, 3, 2}); d != 2 {
		t.Errorf("corner dist = %v, want 2", d)
	}
}

func TestPointsRoundTrip(t *testing.T) {
	tr := New()
	in := []Point{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {0, 0, 0}}
	for _, p := range in {
		tr.Add(p)
	}
	out := tr.Points()
	sort.Slice(out, func(i, j int) bool { return Less(out[i], out[j]) })
	sort.Slice(in, func(i, j int) bool { return Less(in[i], in[j]) })
	if len(out) != len(in) {
		t.Fatalf("Points = %v", out)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("Points = %v, want %v", out, in)
		}
	}
}

func TestBuildMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		seen := map[Point]bool{}
		var pts []Point
		for len(pts) < 200 {
			p := randPoint(r, 7)
			if !seen[p] {
				seen[p] = true
				pts = append(pts, p)
			}
		}
		tr := Build(pts)
		if tr.Len() != len(pts) {
			t.Fatalf("Len = %d, want %d", tr.Len(), len(pts))
		}
		checkBoxes(t, tr.root)
		for i := 0; i < 50; i++ {
			q := randPoint(r, 8)
			if got, want := tr.Nearest(q), bruteNearest(pts, q); got != want {
				t.Fatalf("Nearest(%v) = %v, want %v", q, got, want)
			}
		}
		// Mutations on a built tree keep working.
		for i := 0; i < 40; i++ {
			p := pts[r.Intn(len(pts))]
			if tr.Contains(p) != true {
				t.Fatalf("Contains(%v) = false", p)
			}
		}
		removed := pts[:50]
		for _, p := range removed {
			if !tr.Remove(p) {
				t.Fatalf("Remove(%v) failed", p)
			}
		}
		checkBoxes(t, tr.root)
		rest := pts[50:]
		for i := 0; i < 30; i++ {
			q := rest[r.Intn(len(rest))]
			if got, want := tr.Nearest(q), bruteNearest(rest, q); got != want {
				t.Fatalf("after removals Nearest(%v) = %v, want %v", q, got, want)
			}
		}
	}
}

func TestBuildBalanced(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var pts []Point
	seen := map[Point]bool{}
	for len(pts) < 4096 {
		p := Point{r.Float64(), r.Float64(), r.Float64()}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	tr := Build(pts)
	// 4096 points / 8-point leaves → 9 split levels; allow slack for
	// tie-adjusted medians.
	if d := tr.Depth(); d > 14 {
		t.Errorf("Depth = %d, want ≤ 14 for a balanced build", d)
	}
	// Incremental insertion of sorted points degenerates far beyond that,
	// which is exactly why Build exists.
	sorted := append([]Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return Less(sorted[i], sorted[j]) })
	inc := New()
	for _, p := range sorted[:1024] {
		inc.Add(p)
	}
	t.Logf("built depth=%d incremental(sorted,1024)=%d", tr.Depth(), inc.Depth())
}

func TestBuildEmptyAndTiny(t *testing.T) {
	if Build(nil).Len() != 0 {
		t.Error("empty build")
	}
	tr := Build([]Point{{1, 2, 3}})
	if tr.Len() != 1 || tr.Nearest(Point{0, 0, 0}) != (Point{1, 2, 3}) {
		t.Error("single-point build")
	}
}
