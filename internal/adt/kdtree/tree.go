package kdtree

import "commlat/internal/stm"

// leafCap is the leaf bucket size; leaves split when they overflow.
const leafCap = 8

// node is a kd-tree node. Interior nodes carry a splitting plane
// (axis/split) and the bounding box of all points beneath them — the
// concrete state whose updates make memory-level conflict detection so
// pessimistic for this structure (§5, clustering). Leaves carry a small
// point bucket.
type node struct {
	box Box
	// count is structural bookkeeping (collapse decisions, Len); the
	// paper's kd-tree nodes carry splitting planes and bounding boxes
	// only, so count is not part of the memory-level conflict model.
	count int

	// interior
	axis        int
	split       float64
	left, right *node

	// leaf
	leaf bool
	pts  []Point

	// obj is the conflict handle used by the STM-instrumented variant;
	// the plain tree never touches it.
	obj stm.Obj
}

// Tree is a sequential (non-thread-safe) kd-tree: points live in leaf
// buckets, interior nodes keep splitting planes and bounding boxes, and
// nearest uses box pruning for expected-logarithmic queries.
type Tree struct {
	root *node
}

// New creates an empty tree.
func New() *Tree { return &Tree{} }

// Len returns the number of points.
func (t *Tree) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.count
}

// visitFn observes each node an operation touches, before the node is
// read or mutated; write says whether the operation will mutate the node.
// The STM-instrumented variant acquires the node's conflict handle here;
// a non-nil error aborts the operation before it changes anything below.
type visitFn func(n *node, write bool) error

// Add inserts p, reporting whether the tree changed (false if p was
// already present).
func (t *Tree) Add(p Point) bool {
	ok, _ := t.AddV(p, nil)
	return ok
}

// AddV is Add with a node visitor (used by instrumented variants).
func (t *Tree) AddV(p Point, visit visitFn) (bool, error) {
	if t.root == nil {
		t.root = &node{leaf: true, pts: []Point{p}, box: emptyBox.Extend(p), count: 1}
		if visit != nil {
			if err := visit(t.root, true); err != nil {
				t.root = nil
				return false, err
			}
		}
		return true, nil
	}
	return t.root.add(p, visit)
}

func (n *node) add(p Point, visit visitFn) (bool, error) {
	if visit != nil {
		// Memory-level precision: an interior node is only *written* when
		// its bounding box actually changes (a point inside the box
		// leaves ancestors untouched, as a real STM would observe).
		// Leaves are always written (their bucket changes).
		write := n.leaf || n.box.Extend(p) != n.box
		if err := visit(n, write); err != nil {
			return false, err
		}
	}
	if n.leaf {
		for _, q := range n.pts {
			if q == p {
				return false, nil
			}
		}
		n.pts = append(n.pts, p)
		n.count++
		n.box = n.box.Extend(p)
		if len(n.pts) > leafCap {
			n.splitLeaf()
		}
		return true, nil
	}
	child := n.childFor(p)
	ok, err := child.add(p, visit)
	if !ok || err != nil {
		return false, err
	}
	n.count++
	n.box = n.box.Extend(p)
	return true, nil
}

func (n *node) childFor(p Point) *node {
	if p[n.axis] < n.split {
		return n.left
	}
	return n.right
}

// splitLeaf turns an overflowing leaf into an interior node, splitting on
// the widest dimension at the midpoint between the two middle candidate
// values (falling back to other axes when all points share a coordinate).
func (n *node) splitLeaf() {
	// Pick the widest axis of the leaf's points.
	bb := emptyBox
	for _, p := range n.pts {
		bb = bb.Extend(p)
	}
	axis, width := 0, -1.0
	for i := 0; i < 3; i++ {
		if w := bb.Max[i] - bb.Min[i]; w > width {
			axis, width = i, w
		}
	}
	if width == 0 {
		// Distinct points always differ somewhere, so a zero-width box
		// cannot occur; guard anyway rather than split into an empty side.
		return
	}
	split := (bb.Min[axis] + bb.Max[axis]) / 2
	var lpts, rpts []Point
	for _, p := range n.pts {
		if p[axis] < split {
			lpts = append(lpts, p)
		} else {
			rpts = append(rpts, p)
		}
	}
	if len(lpts) == 0 || len(rpts) == 0 {
		// Degenerate midpoint (e.g. many equal coordinates): leave the
		// bucket oversized; future splits on other axes will succeed.
		return
	}
	lbox, rbox := emptyBox, emptyBox
	for _, p := range lpts {
		lbox = lbox.Extend(p)
	}
	for _, p := range rpts {
		rbox = rbox.Extend(p)
	}
	n.leaf = false
	n.axis, n.split = axis, split
	n.left = &node{leaf: true, pts: lpts, box: lbox, count: len(lpts)}
	n.right = &node{leaf: true, pts: rpts, box: rbox, count: len(rpts)}
	n.pts = nil
}

// Remove deletes p, reporting whether the tree changed. Bounding boxes
// along the path are recomputed; empty children collapse away.
func (t *Tree) Remove(p Point) bool {
	ok, _ := t.RemoveV(p, nil)
	return ok
}

// RemoveV is Remove with a node visitor.
func (t *Tree) RemoveV(p Point, visit visitFn) (bool, error) {
	if t.root == nil {
		return false, nil
	}
	ok, err := t.root.remove(p, visit)
	if ok && t.root.count == 0 {
		t.root = nil
	}
	return ok, err
}

func (n *node) remove(p Point, visit visitFn) (bool, error) {
	if visit != nil {
		// An interior node's box can only shrink if the removed point
		// lies on its boundary; interior removals leave ancestors
		// untouched at memory level.
		write := n.leaf || onBoundary(n.box, p)
		if err := visit(n, write); err != nil {
			return false, err
		}
	}
	if n.leaf {
		for i, q := range n.pts {
			if q == p {
				n.pts = append(n.pts[:i], n.pts[i+1:]...)
				n.count--
				n.box = emptyBox
				for _, r := range n.pts {
					n.box = n.box.Extend(r)
				}
				return true, nil
			}
		}
		return false, nil
	}
	child := n.childFor(p)
	ok, err := child.remove(p, visit)
	if !ok || err != nil {
		return false, err
	}
	n.count--
	if child.count == 0 {
		// Collapse: adopt the surviving child's contents (field by field;
		// the embedded conflict handle must not be copied).
		other := n.left
		if child == n.left {
			other = n.right
		}
		n.box, n.count = other.box, other.count
		n.axis, n.split = other.axis, other.split
		n.left, n.right = other.left, other.right
		n.leaf, n.pts = other.leaf, other.pts
		return true, nil
	}
	n.box = n.left.box.Union(n.right.box)
	return true, nil
}

// Contains reports whether p is in the tree.
func (t *Tree) Contains(p Point) bool {
	n := t.root
	for n != nil {
		if n.leaf {
			for _, q := range n.pts {
				if q == p {
					return true
				}
			}
			return false
		}
		n = n.childFor(p)
	}
	return false
}

// Nearest returns the point nearest to q, excluding q itself if present
// (the clustering convention). For an empty tree — or one whose only
// point is q — it returns None, the point at infinity. Ties break toward
// the lexicographically smaller point, making the query deterministic.
func (t *Tree) Nearest(q Point) Point {
	p, _ := t.NearestV(q, nil)
	return p
}

// NearestV is Nearest with a node visitor (visited with write == false).
func (t *Tree) NearestV(q Point, visit visitFn) (Point, error) {
	best, bestD := None, DistSq(q, None)
	if t.root != nil {
		var err error
		best, bestD, err = t.root.nearest(q, best, bestD, visit)
		if err != nil {
			return None, err
		}
	}
	return best, nil
}

func (n *node) nearest(q Point, best Point, bestD float64, visit visitFn) (Point, float64, error) {
	if visit != nil {
		if err := visit(n, false); err != nil {
			return best, bestD, err
		}
	}
	if n.box.MinDistSq(q) > bestD {
		return best, bestD, nil
	}
	if n.leaf {
		for _, p := range n.pts {
			if p == q {
				continue
			}
			if d := DistSq(q, p); closer(p, d, best, bestD) {
				best, bestD = p, d
			}
		}
		return best, bestD, nil
	}
	first, second := n.left, n.right
	if q[n.axis] >= n.split {
		first, second = n.right, n.left
	}
	var err error
	best, bestD, err = first.nearest(q, best, bestD, visit)
	if err != nil {
		return best, bestD, err
	}
	// Equal-distance candidates matter for the deterministic tie-break,
	// so only prune strictly worse boxes.
	if second.box.MinDistSq(q) <= bestD {
		best, bestD, err = second.nearest(q, best, bestD, visit)
	}
	return best, bestD, err
}

// Points returns all points (in no particular order); for tests and
// snapshots.
func (t *Tree) Points() []Point {
	var out []Point
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		if n.leaf {
			out = append(out, n.pts...)
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	return out
}
