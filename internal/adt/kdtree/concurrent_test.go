package kdtree

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// treeModel adapts the kd-tree to core.Model for brute-force validation
// of figure 4's specification.
type treeModel struct {
	pts []Point
}

func (m *treeModel) Clone() core.Model {
	return &treeModel{pts: append([]Point(nil), m.pts...)}
}

func (m *treeModel) Apply(method string, args []core.Value) (core.Value, error) {
	p, ok := args[0].Unbox().(Point)
	if !ok {
		return core.Value{}, fmt.Errorf("bad arg %v", args[0])
	}
	switch method {
	case "add":
		for _, q := range m.pts {
			if q == p {
				return core.VBool(false), nil
			}
		}
		m.pts = append(m.pts, p)
		return core.VBool(true), nil
	case "remove":
		for i, q := range m.pts {
			if q == p {
				m.pts = append(m.pts[:i], m.pts[i+1:]...)
				return core.VBool(true), nil
			}
		}
		return core.VBool(false), nil
	case "nearest":
		return core.V(bruteNearest(m.pts, p)), nil
	case "contains":
		for _, q := range m.pts {
			if q == p {
				return core.VBool(true), nil
			}
		}
		return core.VBool(false), nil
	default:
		return core.Value{}, fmt.Errorf("unknown method %s", method)
	}
}

func (m *treeModel) StateKey() string {
	pts := append([]Point(nil), m.pts...)
	sort.Slice(pts, func(i, j int) bool { return Less(pts[i], pts[j]) })
	return fmt.Sprint(pts)
}

func (m *treeModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	return Resolve(fn, args)
}

// TestSpecSoundByBruteForce validates figure 4 against the executable
// model per Definition 1, in both orientations, over a grid of small
// point sets (including ties and self-queries).
func TestSpecSoundByBruteForce(t *testing.T) {
	spec := Spec()
	pts := []Point{{0, 0, 0}, {1, 0, 0}, {0, 2, 0}, {3, 3, 0}}
	var states []core.Model
	for mask := 0; mask < 16; mask++ {
		m := &treeModel{}
		for i, p := range pts {
			if mask&(1<<i) != 0 {
				m.pts = append(m.pts, p)
			}
		}
		states = append(states, m)
	}
	var calls []core.Call
	for _, method := range []string{"add", "remove", "nearest", "contains"} {
		for _, p := range pts {
			calls = append(calls, core.Call{Method: method, Args: []core.Value{core.V(p)}})
		}
	}
	bad, err := core.CheckCondSound(spec, states, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

func TestSpecClassification(t *testing.T) {
	if got := Spec().Classify(); got != core.ClassOnline {
		t.Errorf("figure 4 spec should be ONLINE-CHECKABLE, got %v", got)
	}
}

func variants() map[string]Index {
	return map[string]Index{"kd-ml": NewML(), "kd-gk": NewGK()}
}

// TestSequentialSemantics: one transaction at a time, both variants
// behave like the plain tree.
func TestSequentialSemantics(t *testing.T) {
	for name, idx := range variants() {
		ref := New()
		r := rand.New(rand.NewSource(21))
		for i := 0; i < 300; i++ {
			p := randPoint(r, 5)
			tx := engine.NewTx()
			var err error
			switch r.Intn(3) {
			case 0:
				var got bool
				got, err = idx.Add(tx, p)
				if err == nil && got != ref.Add(p) {
					t.Fatalf("%s: Add(%v) mismatch", name, p)
				}
			case 1:
				var got bool
				got, err = idx.Remove(tx, p)
				if err == nil && got != ref.Remove(p) {
					t.Fatalf("%s: Remove(%v) mismatch", name, p)
				}
			default:
				var got Point
				got, err = idx.Nearest(tx, p)
				if err == nil && got != ref.Nearest(p) {
					t.Fatalf("%s: Nearest(%v) = %v, want %v", name, p, got, ref.Nearest(p))
				}
			}
			if err != nil {
				t.Fatalf("%s: single-tx op conflicted: %v", name, err)
			}
			tx.Commit()
		}
		if idx.Len() != ref.Len() {
			t.Errorf("%s: Len %d vs %d", name, idx.Len(), ref.Len())
		}
	}
}

// TestMLConflictsWhereGKCommutes is the heart of the clustering case
// study: a far-away insertion commutes with an active nearest query
// under the precise spec, but the memory-level variant conflicts at the
// root (its bounding box is written by every insertion).
func TestMLConflictsWhereGKCommutes(t *testing.T) {
	seedPts := []Point{{0, 0, 0}, {1, 0, 0}, {10, 10, 10}, {11, 10, 10}, {5, 5, 5}, {6, 5, 5}, {0, 9, 3}, {2, 7, 1}, {8, 1, 4}}
	far := Point{100, 100, 100}

	ml, gk := NewML(), NewGK()
	ml.Seed(seedPts)
	gk.Seed(seedPts)

	// gk: nearest(0,0,0) → (1,0,0); adding a far point commutes.
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	n, err := gk.Nearest(tx1, Point{0, 0, 0})
	if err != nil || n != (Point{1, 0, 0}) {
		t.Fatalf("gk nearest = %v, %v", n, err)
	}
	if ok, err := gk.Add(tx2, far); err != nil || !ok {
		t.Fatalf("gk far add should commute: %v, %v", ok, err)
	}
	// ...but a nearby insertion that would change the answer conflicts.
	if _, err := gk.Add(tx2, Point{0.1, 0, 0}); !engine.IsConflict(err) {
		t.Fatalf("gk near add should conflict, got %v", err)
	}
	tx2.Abort()
	tx1.Abort()

	// ml: the same far add conflicts with the active nearest because the
	// query read the root whose box the add must write.
	tx3, tx4 := engine.NewTx(), engine.NewTx()
	if _, err := ml.Nearest(tx3, Point{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := ml.Add(tx4, far); !engine.IsConflict(err) {
		t.Fatalf("ml far add should conflict at the root, got %v", err)
	}
	tx4.Abort()
	tx3.Abort()
}

func TestAbortRollsBack(t *testing.T) {
	for name, idx := range variants() {
		idx.Seed([]Point{{1, 1, 1}})
		tx := engine.NewTx()
		if _, err := idx.Add(tx, Point{2, 2, 2}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := idx.Remove(tx, Point{1, 1, 1}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tx.Abort()
		if idx.Len() != 1 {
			t.Errorf("%s: abort left %d points", name, idx.Len())
		}
		check := engine.NewTx()
		n, err := idx.Nearest(check, Point{0, 0, 0})
		if err != nil || n != (Point{1, 1, 1}) {
			t.Errorf("%s: after abort nearest = %v, %v", name, n, err)
		}
		check.Commit()
	}
}

// TestConcurrentStress: disjoint spatial regions per worker; every
// transaction eventually commits, and the final point count matches.
func TestConcurrentStress(t *testing.T) {
	for name, idx := range variants() {
		var committed sync.Map
		type op struct{ p Point }
		var items []op
		r := rand.New(rand.NewSource(31))
		for w := 0; w < 6; w++ {
			for i := 0; i < 50; i++ {
				items = append(items, op{Point{float64(w*1000 + r.Intn(100)), float64(r.Intn(100)), float64(r.Intn(100))}})
			}
		}
		_, err := engine.RunItems(items, engine.Options{Workers: 6}, func(tx *engine.Tx, o op, _ *engine.Worklist[op]) error {
			ok, err := idx.Add(tx, o.p)
			if err != nil {
				return err
			}
			if ok {
				committed.Store(o.p, true)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		n := 0
		committed.Range(func(_, _ any) bool { n++; return true })
		if idx.Len() != n {
			t.Errorf("%s: %d points, want %d", name, idx.Len(), n)
		}
	}
}
