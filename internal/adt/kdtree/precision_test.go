package kdtree

import (
	"math/rand"
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

// TestMLInteriorAddDoesNotTouchRoot: inserting a point strictly inside
// existing bounding boxes only writes the leaf path where boxes change,
// so a concurrent query of a far-away region proceeds — the memory-level
// precision a real STM would have.
func TestMLInteriorAddDoesNotTouchRoot(t *testing.T) {
	ml := NewML()
	// Two well-separated clusters so the root splits them apart.
	var pts []Point
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 30; i++ {
		pts = append(pts, Point{r.Float64() * 10, r.Float64() * 10, r.Float64() * 10})
		pts = append(pts, Point{1000 + r.Float64()*10, r.Float64() * 10, r.Float64() * 10})
	}
	ml.Seed(pts)

	// tx1 queries the far cluster; tx2 inserts strictly inside the near
	// cluster's box: boxes on tx2's path do not change above the leaf
	// region, so the two commute at memory level.
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := ml.Nearest(tx1, Point{1005, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if ok, err := ml.Add(tx2, Point{5, 5, 5}); err != nil || !ok {
		t.Fatalf("interior add = %v, %v (expected to commute: no box changes near the root)", ok, err)
	}
	// An insertion extending the global bounding box writes the root:
	// conflict with the reader.
	if _, err := ml.Add(tx2, Point{5000, 5000, 5000}); !engine.IsConflict(err) {
		t.Fatalf("box-extending add should conflict at the root, got %v", err)
	}
}

// TestMLInteriorRemovePrecision: removing an interior (non-boundary)
// point leaves ancestor boxes untouched; removing a boundary point
// writes them.
func TestMLInteriorRemovePrecision(t *testing.T) {
	ml := NewML()
	var pts []Point
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 30; i++ {
		pts = append(pts, Point{r.Float64()*8 + 1, r.Float64()*8 + 1, r.Float64()*8 + 1})
		pts = append(pts, Point{1000 + r.Float64()*8, r.Float64()*8 + 1, r.Float64()*8 + 1})
	}
	interior := Point{5, 5, 5}
	corner := Point{0, 0, 0} // global minimum: on every ancestor boundary
	pts = append(pts, interior, corner)
	ml.Seed(pts)

	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := ml.Nearest(tx1, Point{1004, 4, 4}); err != nil {
		t.Fatal(err)
	}
	if ok, err := ml.Remove(tx2, interior); err != nil || !ok {
		t.Fatalf("interior remove = %v, %v (should commute)", ok, err)
	}
	if _, err := ml.Remove(tx2, corner); !engine.IsConflict(err) {
		t.Fatalf("boundary remove should conflict at the root, got %v", err)
	}
}

// TestSerializableRandomHistories replays random interleaved
// two-transaction histories against figure 4's specification (Theorem 2
// for the kd-tree): whenever all cross-transaction conditions hold, a
// serial order must reproduce returns and final state.
func TestSerializableRandomHistories(t *testing.T) {
	spec := Spec()
	r := rand.New(rand.NewSource(77))
	grid := []Point{}
	for x := 0; x < 3; x++ {
		for y := 0; y < 2; y++ {
			grid = append(grid, Point{float64(x), float64(y), 0})
		}
	}
	held, total := 0, 0
	for trial := 0; trial < 1500; trial++ {
		m := &treeModel{}
		for _, p := range grid {
			if r.Intn(2) == 0 {
				m.pts = append(m.pts, p)
			}
		}
		n := 2 + r.Intn(4)
		hist := make([]core.Step, n)
		for i := range hist {
			method := []string{"add", "remove", "nearest", "contains"}[r.Intn(4)]
			hist[i] = core.Step{
				Tx:   r.Intn(2),
				Call: core.Call{Method: method, Args: []core.Value{core.V(grid[r.Intn(len(grid))])}},
			}
		}
		rep, err := core.CheckSerializable(m, spec, hist)
		if err != nil {
			t.Fatal(err)
		}
		total++
		if rep.CondsHeld {
			held++
			if !rep.SerialOK {
				t.Fatalf("conditions held but history not serializable: %+v from %s", hist, m.StateKey())
			}
		}
	}
	if held == 0 {
		t.Error("no history satisfied all conditions; test vacuous")
	}
	t.Logf("histories: %d total, %d with all conditions held", total, held)
}

// TestLockedTreeSerializesQueriesAgainstMutators: the strengthened
// SIMPLE point's nearest~add condition is false, so a query under a live
// mutator conflicts regardless of geometry — the uselessness the paper
// notes, made visible.
func TestLockedTreeSerializesQueriesAgainstMutators(t *testing.T) {
	l := NewLocked()
	l.Seed([]Point{{0, 0, 0}, {100, 100, 100}})
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	if _, err := l.Nearest(tx1, Point{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	// Even a far-away insertion conflicts: nearest~add is false.
	if _, err := l.Add(tx2, Point{500, 500, 500}); !engine.IsConflict(err) {
		t.Fatalf("expected ds-level conflict, got %v", err)
	}
	// Another query shares (nearest~nearest is true).
	if _, err := l.Nearest(tx2, Point{2, 2, 2}); err != nil {
		t.Fatalf("concurrent queries should share: %v", err)
	}
	tx1.Abort()
	tx2.Abort()
	// Same-point mutators conflict; different-point mutators share.
	tx3, tx4 := engine.NewTx(), engine.NewTx()
	defer tx3.Abort()
	defer tx4.Abort()
	if _, err := l.Add(tx3, Point{5, 5, 5}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Add(tx4, Point{5, 5, 5}); !engine.IsConflict(err) {
		t.Fatalf("same-point adds should conflict, got %v", err)
	}
	if _, err := l.Add(tx4, Point{6, 6, 6}); err != nil {
		t.Fatalf("different-point adds should share: %v", err)
	}
}

// TestLockedTreeProfileCollapses: under the lock point, clustering's
// parallelism collapses toward 1 — every merge serializes against every
// query — while kd-gk stays parallel (the quantitative form of the
// paper's remark).
func TestLockedTreeProfileCollapses(t *testing.T) {
	// Use the cluster step shape inline to avoid an import cycle with
	// apps/cluster: contains + nearest + nearest + mutators.
	pts := make([]Point, 0, 40)
	r := rand.New(rand.NewSource(3))
	seen := map[Point]bool{}
	for len(pts) < 40 {
		p := Point{r.Float64() * 100, r.Float64() * 100, r.Float64() * 100}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	measure := func(idx Index) float64 {
		idx.Seed(pts)
		// One round of concurrent nearest queries, ParaMeter-style.
		committed := 0
		var open []*engine.Tx
		for _, p := range pts {
			tx := engine.NewTx()
			if _, err := idx.Nearest(tx, p); err != nil {
				tx.Abort()
				continue
			}
			open = append(open, tx)
			committed++
		}
		// One mutator joining the round.
		tx := engine.NewTx()
		if _, err := idx.Add(tx, Point{500, 500, 500}); err == nil {
			committed++
			open = append(open, tx)
		} else {
			tx.Abort()
		}
		for _, o := range open {
			o.Commit()
		}
		return float64(committed)
	}
	locked := measure(NewLocked())
	gk := measure(NewGK())
	if locked >= gk {
		t.Errorf("lock point admitted %v concurrent ops, gatekeeper %v; expected strictly less", locked, gk)
	}
	// All queries share under both; only the mutator differs... unless
	// geometry blocks it for gk too. The locked variant must at minimum
	// reject the mutator.
	if locked != float64(len(pts)) {
		t.Errorf("locked round = %v, want %d (queries share, mutator blocked)", locked, len(pts))
	}
}
