package kdtree

import "sort"

// Build constructs a balanced tree over the given (distinct) points by
// recursive median splitting on the widest axis — the standard bulk-load
// used when a computation (like the clustering benchmark) starts from a
// known point set. Queries behave identically to incremental insertion;
// the tree is just better balanced.
func Build(pts []Point) *Tree {
	t := &Tree{}
	if len(pts) == 0 {
		return t
	}
	own := append([]Point(nil), pts...)
	t.root = buildNode(own)
	return t
}

func buildNode(pts []Point) *node {
	box := emptyBox
	for _, p := range pts {
		box = box.Extend(p)
	}
	if len(pts) <= leafCap {
		return &node{leaf: true, pts: pts, box: box, count: len(pts)}
	}
	// Try axes from widest to narrowest until one admits a non-degenerate
	// median split (distinct points guarantee some axis does).
	type axisWidth struct {
		axis  int
		width float64
	}
	axes := []axisWidth{}
	for i := 0; i < 3; i++ {
		axes = append(axes, axisWidth{axis: i, width: box.Max[i] - box.Min[i]})
	}
	sort.Slice(axes, func(i, j int) bool { return axes[i].width > axes[j].width })
	for _, aw := range axes {
		axis := aw.axis
		if aw.width == 0 {
			continue
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i][axis] < pts[j][axis] })
		mid := len(pts) / 2
		// The split boundary must separate distinct coordinate values so
		// that childFor's "p[axis] < split" rule is consistent.
		for mid < len(pts) && pts[mid][axis] == pts[mid-1][axis] {
			mid++
		}
		if mid == len(pts) {
			// Everything from the original midpoint up shares one value;
			// try splitting below instead.
			mid = len(pts) / 2
			for mid > 1 && pts[mid][axis] == pts[mid-1][axis] {
				mid--
			}
			if mid <= 0 || pts[mid][axis] == pts[mid-1][axis] {
				continue
			}
		}
		split := pts[mid][axis]
		left := buildNode(append([]Point(nil), pts[:mid]...))
		right := buildNode(append([]Point(nil), pts[mid:]...))
		return &node{
			axis:  axis,
			split: split,
			left:  left,
			right: right,
			box:   box,
			count: len(pts),
		}
	}
	// All points identical on every axis: only possible with duplicates;
	// degrade to an oversized leaf rather than recurse forever.
	return &node{leaf: true, pts: pts, box: box, count: len(pts)}
}

// Depth returns the maximum node depth (1 for a single leaf); a balance
// diagnostic for tests.
func (t *Tree) Depth() int {
	var walk func(n *node) int
	walk = func(n *node) int {
		if n == nil {
			return 0
		}
		if n.leaf {
			return 1
		}
		l, r := walk(n.left), walk(n.right)
		if l > r {
			return l + 1
		}
		return r + 1
	}
	return walk(t.root)
}
