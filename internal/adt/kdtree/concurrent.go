package kdtree

import (
	"sync"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/telemetry"
)

// Index is a transactionally guarded kd-tree: the interface the
// clustering application programs against, implemented both by the
// memory-level baseline (kd-ml) and the forward gatekeeper (kd-gk).
type Index interface {
	Add(tx *engine.Tx, p Point) (bool, error)
	Remove(tx *engine.Tx, p Point) (bool, error)
	Nearest(tx *engine.Tx, p Point) (Point, error)
	Contains(tx *engine.Tx, p Point) (bool, error)
	// Seed bulk-loads points; only safe with no live transactions.
	Seed(pts []Point)
	// Len returns the point count; only safe with no live transactions.
	Len() int
}

// MLTree is the kd-ml variant: object-granularity (memory-level)
// conflict detection on tree nodes, as an object-based STM would perform.
// Mutators write-acquire every node on their root-to-leaf path (they
// update bounding boxes all the way up), and nearest read-acquires every
// node whose box it examines — which is why concurrent mutations
// serialize against queries even when they semantically commute (§5).
type MLTree struct {
	mu sync.Mutex // physical atomicity; conflicts come from the stm objects
	t  *Tree
}

// NewML creates an empty kd-ml tree.
func NewML() *MLTree { return &MLTree{t: New()} }

// Seed bulk-loads points without conflict detection, building a balanced
// tree when starting empty.
func (m *MLTree) Seed(pts []Point) {
	if m.t.Len() == 0 {
		m.t = Build(pts)
		return
	}
	for _, p := range pts {
		m.t.Add(p)
	}
}

// Len returns the point count.
func (m *MLTree) Len() int { return m.t.Len() }

func (m *MLTree) visit(tx *engine.Tx) visitFn {
	return func(n *node, write bool) error {
		if write {
			return n.obj.Write(tx)
		}
		return n.obj.Read(tx)
	}
}

// Add inserts p under memory-level conflict detection.
func (m *MLTree) Add(tx *engine.Tx, p Point) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ok, err := m.t.AddV(p, m.visit(tx))
	if err != nil {
		return false, err
	}
	if ok {
		tx.OnUndo(func() {
			m.mu.Lock()
			m.t.Remove(p)
			m.mu.Unlock()
		})
	}
	return ok, nil
}

// Remove deletes p under memory-level conflict detection.
func (m *MLTree) Remove(tx *engine.Tx, p Point) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ok, err := m.t.RemoveV(p, m.visit(tx))
	if err != nil {
		return false, err
	}
	if ok {
		tx.OnUndo(func() {
			m.mu.Lock()
			m.t.Add(p)
			m.mu.Unlock()
		})
	}
	return ok, nil
}

// Nearest queries under memory-level conflict detection.
func (m *MLTree) Nearest(tx *engine.Tx, p Point) (Point, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.NearestV(p, m.visit(tx))
}

// Contains queries membership under memory-level conflict detection,
// read-acquiring the root-to-leaf lookup path.
func (m *MLTree) Contains(tx *engine.Tx, p Point) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := m.t.root
	for n != nil {
		if err := n.obj.Read(tx); err != nil {
			return false, err
		}
		if n.leaf {
			for _, q := range n.pts {
				if q == p {
					return true, nil
				}
			}
			return false, nil
		}
		n = n.childFor(p)
	}
	return false, nil
}

// GKTree is the kd-gk variant: a forward gatekeeper built from figure 4's
// precise specification guards a plain tree. Because the gatekeeper only
// tracks semantic information — the paper's (x, dist(x, r)) log — it
// admits far more parallelism than kd-ml and pays no per-node tracking.
type GKTree struct {
	g *gatekeeper.Forward
	t *Tree
}

// NewGK creates an empty kd-gk tree.
func NewGK() *GKTree {
	g, err := gatekeeper.NewForward(Spec(), Resolve)
	if err != nil {
		panic(err) // figure 4's spec is ONLINE-CHECKABLE with dist pure
	}
	return &GKTree{g: g, t: New()}
}

// Seed bulk-loads points without conflict detection, building a balanced
// tree when starting empty.
func (k *GKTree) Seed(pts []Point) {
	k.g.Sync(func() {
		if k.t.Len() == 0 {
			k.t = Build(pts)
			return
		}
		for _, p := range pts {
			k.t.Add(p)
		}
	})
}

// Len returns the point count.
func (k *GKTree) Len() int {
	var n int
	k.g.Sync(func() { n = k.t.Len() })
	return n
}

// Add inserts p under gatekeeping.
func (k *GKTree) Add(tx *engine.Tx, p Point) (bool, error) {
	ret, err := k.g.Invoke(tx, "add", core.Args1(core.V(p)), func() gatekeeper.Effect {
		if k.t.Add(p) {
			return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() { k.t.Remove(p) }}
		}
		return gatekeeper.Effect{Ret: core.VBool(false)}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Remove deletes p under gatekeeping.
func (k *GKTree) Remove(tx *engine.Tx, p Point) (bool, error) {
	ret, err := k.g.Invoke(tx, "remove", core.Args1(core.V(p)), func() gatekeeper.Effect {
		if k.t.Remove(p) {
			return gatekeeper.Effect{Ret: core.VBool(true), Undo: func() { k.t.Add(p) }}
		}
		return gatekeeper.Effect{Ret: core.VBool(false)}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

// Nearest queries under gatekeeping.
func (k *GKTree) Nearest(tx *engine.Tx, p Point) (Point, error) {
	ret, err := k.g.Invoke(tx, "nearest", core.Args1(core.V(p)), func() gatekeeper.Effect {
		return gatekeeper.Effect{Ret: core.V(k.t.Nearest(p))}
	})
	if err != nil {
		return None, err
	}
	return ret.Unbox().(Point), nil
}

// GateStats returns the forward gatekeeper's work counters.
func (k *GKTree) GateStats() gatekeeper.Stats { return k.g.Stats() }

// Telemetry returns the gatekeeper's telemetry detector, which
// additionally attributes checks and conflicts per method pair.
func (k *GKTree) Telemetry() *telemetry.Detector { return k.g.Telemetry() }

// Contains queries membership under gatekeeping.
func (k *GKTree) Contains(tx *engine.Tx, p Point) (bool, error) {
	ret, err := k.g.Invoke(tx, "contains", core.Args1(core.V(p)), func() gatekeeper.Effect {
		return gatekeeper.Effect{Ret: core.VBool(k.t.Contains(p))}
	})
	if err != nil {
		return false, err
	}
	return ret.Bool(), nil
}

var (
	_ Index = (*MLTree)(nil)
	_ Index = (*GKTree)(nil)
)

// LockedTree is the kd-tree's abstract-locking point: the strongest
// SIMPLE specification below figure 4 (derived by core.StrengthenToSimple)
// synthesized into locks. The paper notes "there is no straightforward
// SIMPLE specification that does not merely prevent add and nearest from
// executing concurrently" — and indeed the derived condition for
// nearest~add/remove is false, so queries serialize against all mutators
// through the ds lock. It exists to make that cost measurable against
// kd-ml and kd-gk.
type LockedTree struct {
	mgr *abslock.Manager
	mu  sync.Mutex
	t   *Tree
}

// NewLocked creates the abstract-locked kd-tree.
func NewLocked() *LockedTree {
	scheme, err := abslock.Synthesize(core.StrengthenToSimple(Spec()))
	if err != nil {
		panic(err) // StrengthenToSimple always yields a SIMPLE spec
	}
	return &LockedTree{mgr: abslock.NewManager(scheme.Reduce(), nil), t: New()}
}

// Seed bulk-loads points without conflict detection.
func (l *LockedTree) Seed(pts []Point) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.t.Len() == 0 {
		l.t = Build(pts)
		return
	}
	for _, p := range pts {
		l.t.Add(p)
	}
}

// Len returns the point count.
func (l *LockedTree) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Len()
}

// Add inserts p under the lock discipline.
func (l *LockedTree) Add(tx *engine.Tx, p Point) (bool, error) {
	if err := l.mgr.PreAcquire(tx, "add", core.Args1(core.V(p))); err != nil {
		return false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.t.Add(p) {
		return false, nil
	}
	tx.OnUndo(func() {
		l.mu.Lock()
		l.t.Remove(p)
		l.mu.Unlock()
	})
	return true, nil
}

// Remove deletes p under the lock discipline.
func (l *LockedTree) Remove(tx *engine.Tx, p Point) (bool, error) {
	if err := l.mgr.PreAcquire(tx, "remove", core.Args1(core.V(p))); err != nil {
		return false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.t.Remove(p) {
		return false, nil
	}
	tx.OnUndo(func() {
		l.mu.Lock()
		l.t.Add(p)
		l.mu.Unlock()
	})
	return true, nil
}

// Nearest queries under the lock discipline (serialized against all
// mutators by the synthesized ds lock).
func (l *LockedTree) Nearest(tx *engine.Tx, p Point) (Point, error) {
	if err := l.mgr.PreAcquire(tx, "nearest", core.Args1(core.V(p))); err != nil {
		return None, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Nearest(p), nil
}

// Contains queries membership under the lock discipline.
func (l *LockedTree) Contains(tx *engine.Tx, p Point) (bool, error) {
	if err := l.mgr.PreAcquire(tx, "contains", core.Args1(core.V(p))); err != nil {
		return false, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.t.Contains(p), nil
}

var _ Index = (*LockedTree)(nil)
