package kdtree

import "commlat/internal/core"

// Sig is the kd-tree's ADT signature.
func Sig() *core.ADTSig {
	return &core.ADTSig{Name: "kdtree", Methods: []core.MethodSig{
		{Name: "add", Params: []string{"a"}, HasRet: true},
		{Name: "remove", Params: []string{"a"}, HasRet: true},
		{Name: "nearest", Params: []string{"a"}, HasRet: true},
		{Name: "contains", Params: []string{"a"}, HasRet: true},
	}}
}

// DistFn is the name of the pure distance state function used by the
// specification ("dist" in figure 4; squared Euclidean here).
const DistFn = "dist"

// Spec is the commutativity specification of figure 4:
//
//	(1) nearest(a) ~ nearest(b): always
//	(2) nearest(a)/r1 ~ add(b)/r2: r2 = false ∨ dist(a,b) > dist(a,r1)
//	(3) nearest(a)/r1 ~ remove(b)/r2: (a ≠ b ∧ r1 ≠ b) ∨ r2 = false
//	(4-6) mutators: a ≠ b ∨ (r1 = false ∧ r2 = false)
//
// Per the paper's footnote 5 a full specification also includes the
// conditions for the mirrored pairs, and for (remove, nearest) the mirror
// cannot be the literal role swap of (3): with remove first, "b is not
// the query point or the answer" no longer pins the answer, because the
// removed point may have been what nearest *would* have returned (our
// brute-force checker exhibits the counterexample). The valid directed
// condition requires the removed point to be strictly farther from the
// query than the returned answer:
//
//	(3') remove(b)/r1 ~ nearest(a)/r2: r1 = false ∨ b = a ∨ dist(a,b) > dist(a,r2)
//
// dist is a pure function, so the specification is ONLINE-CHECKABLE: a
// forward gatekeeper logs (a, dist(a, r1)) when nearest runs — exactly
// the log the paper describes in §3.3.1.
func Spec() *core.Spec {
	neOrBothFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)),
		core.And(core.Eq(core.Ret1(), core.Lit(false)), core.Eq(core.Ret2(), core.Lit(false))))
	s := core.NewSpec(Sig())
	s.DeclarePure(DistFn)
	s.Set("nearest", "nearest", core.True())
	s.Set("nearest", "add", core.Or(
		core.Eq(core.Ret2(), core.Lit(false)),
		core.Gt(core.Fn2(DistFn, core.Arg1(0), core.Arg2(0)), core.Fn1(DistFn, core.Arg1(0), core.Ret1())),
	))
	// (3): nearest active, remove arrives.
	s.Set("nearest", "remove", core.Or(
		core.And(core.Ne(core.Arg1(0), core.Arg2(0)), core.Ne(core.Ret1(), core.Arg2(0))),
		core.Eq(core.Ret2(), core.Lit(false)),
	))
	// (3'): remove active, nearest arrives (directed mirror; see above).
	s.Set("remove", "nearest", core.Or(
		core.Eq(core.Ret1(), core.Lit(false)),
		core.Eq(core.Arg1(0), core.Arg2(0)),
		core.Gt(core.Fn2(DistFn, core.Arg2(0), core.Arg1(0)), core.Fn2(DistFn, core.Arg2(0), core.Ret2())),
	))
	s.Set("add", "add", neOrBothFalse)
	s.Set("add", "remove", neOrBothFalse)
	s.Set("remove", "remove", neOrBothFalse)
	// contains extends figure 4 the same way the set's figure 2 treats
	// it: a contains is insulated from a mutator that touched a
	// different point or mutated nothing, and read-only pairs always
	// commute.
	neOrMutFalse := core.Or(core.Ne(core.Arg1(0), core.Arg2(0)), core.Eq(core.Ret1(), core.Lit(false)))
	s.Set("add", "contains", neOrMutFalse)
	s.Set("remove", "contains", neOrMutFalse)
	s.Set("contains", "contains", core.True())
	s.Set("nearest", "contains", core.True())
	return s
}

// Resolve implements the specification's state functions for any state
// (dist is pure, so no state is needed); it is the resolver handed to
// gatekeepers guarding kd-trees.
func Resolve(fn string, args []core.Value) (core.Value, error) {
	if fn != DistFn {
		return core.Value{}, core.ErrUnknownFn(fn)
	}
	a, aok := args[0].Unbox().(Point)
	b, bok := args[1].Unbox().(Point)
	if !aok || !bok {
		return core.Value{}, core.ErrBadArgs(fn)
	}
	return core.VFloat(DistSq(a, b)), nil
}
