// Package kdtree implements the paper's kd-tree ADT (§2.5): a spatial
// index over 3-D points supporting add, remove and nearest-neighbour
// queries, with interior bounding boxes to prune searches. It ships the
// commutativity specification of figure 4, an STM-instrumented variant
// (kd-ml: object-level conflict detection on tree nodes, where every
// mutation conflicts at the root's bounding box) and a forward-gatekept
// variant (kd-gk) built from the precise specification — the pair
// compared in the clustering case study (Table 1, figure 11).
package kdtree

import (
	"fmt"
	"math"
)

// Point is a point in 3-space. Being a comparable array it doubles as a
// core.Value: specifications compare points with = and ≠ directly.
type Point [3]float64

// None is the "point at infinity" the paper uses as the nearest
// neighbour of a point in a singleton data set.
var None = Point{math.Inf(1), math.Inf(1), math.Inf(1)}

// IsNone reports whether p is the point at infinity.
func (p Point) IsNone() bool { return math.IsInf(p[0], 1) }

func (p Point) String() string {
	if p.IsNone() {
		return "∞"
	}
	return fmt.Sprintf("(%g,%g,%g)", p[0], p[1], p[2])
}

// DistSq returns the squared Euclidean distance between two points; it is
// the "dist" metric of figure 4 (squared form — monotone in the true
// distance, so all comparisons in the specification are unaffected).
func DistSq(a, b Point) float64 {
	dx, dy, dz := a[0]-b[0], a[1]-b[1], a[2]-b[2]
	return dx*dx + dy*dy + dz*dz
}

// Less orders points lexicographically; nearest-neighbour ties break
// toward the smaller point so that queries are deterministic (a
// requirement for nearest to commute with itself).
func Less(a, b Point) bool {
	for i := 0; i < 3; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// closer reports whether candidate a at distance da beats candidate b at
// distance db under the deterministic (distance, lexicographic) order.
func closer(a Point, da float64, b Point, db float64) bool {
	if da != db {
		return da < db
	}
	return Less(a, b)
}

// Box is an axis-aligned bounding box.
type Box struct {
	Min, Max Point
}

// emptyBox is the identity for Extend.
var emptyBox = Box{
	Min: Point{math.Inf(1), math.Inf(1), math.Inf(1)},
	Max: Point{math.Inf(-1), math.Inf(-1), math.Inf(-1)},
}

// Extend grows the box to include p.
func (b Box) Extend(p Point) Box {
	for i := 0; i < 3; i++ {
		if p[i] < b.Min[i] {
			b.Min[i] = p[i]
		}
		if p[i] > b.Max[i] {
			b.Max[i] = p[i]
		}
	}
	return b
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	for i := 0; i < 3; i++ {
		if o.Min[i] < b.Min[i] {
			b.Min[i] = o.Min[i]
		}
		if o.Max[i] > b.Max[i] {
			b.Max[i] = o.Max[i]
		}
	}
	return b
}

// onBoundary reports whether p touches the box's surface in some
// dimension — the condition under which removing p may shrink the box.
func onBoundary(b Box, p Point) bool {
	for i := 0; i < 3; i++ {
		if p[i] == b.Min[i] || p[i] == b.Max[i] {
			return true
		}
	}
	return false
}

// MinDistSq returns the squared distance from q to the nearest point of
// the box (0 when q is inside), the pruning bound for nearest queries.
func (b Box) MinDistSq(q Point) float64 {
	var d float64
	for i := 0; i < 3; i++ {
		if q[i] < b.Min[i] {
			t := b.Min[i] - q[i]
			d += t * t
		} else if q[i] > b.Max[i] {
			t := q[i] - b.Max[i]
			d += t * t
		}
	}
	return d
}
