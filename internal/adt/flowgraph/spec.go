package flowgraph

import (
	"fmt"

	"commlat/internal/core"
)

// Sig is the graph ADT's signature. The method set refines the paper's
// {relabel, pushFlow, getNeighbors} with the explicit read methods
// (height, excess) a discharge iteration performs, so that every node an
// iteration touches is an argument of some invocation — the property
// that makes locking on arguments sound.
func Sig() *core.ADTSig {
	return &core.ADTSig{Name: "flowgraph", Methods: []core.MethodSig{
		{Name: "getNeighbors", Params: []string{"u"}, HasRet: true},
		{Name: "height", Params: []string{"u"}, HasRet: true},
		{Name: "excess", Params: []string{"u"}, HasRet: true},
		{Name: "relabel", Params: []string{"u"}, HasRet: true},
		{Name: "pushFlow", Params: []string{"u", "v"}, HasRet: true},
	}}
}

var (
	readMethods  = []string{"getNeighbors", "height", "excess"}
	writeMethods = []string{"relabel", "pushFlow"}
)

// nodeArgs lists which argument slots of each method carry node ids.
var nodeArgs = map[string][]int{
	"getNeighbors": {0},
	"height":       {0},
	"excess":       {0},
	"relabel":      {0},
	"pushFlow":     {0, 1},
}

// disjoint builds the conjunction requiring every node argument of m1 to
// differ from every node argument of m2 — "do not access the same nodes".
func disjoint(m1, m2 string) core.Cond {
	var parts []core.Cond
	for _, i := range nodeArgs[m1] {
		for _, j := range nodeArgs[m2] {
			parts = append(parts, core.Ne(core.ArgTerm{Side: core.First, Index: i},
				core.ArgTerm{Side: core.Second, Index: j}))
		}
	}
	return core.And(parts...)
}

// RWSpec is the paper's baseline specification for the graph: relabel
// and pushFlow do not commute with any method touching the same nodes,
// while the read methods commute with each other freely. Its synthesized
// scheme is read/write abstract locks on nodes — "identical to the
// conflict detection performed by a transactional memory" (§5), hence
// the "ml" label in Table 1.
func RWSpec() *core.Spec {
	s := core.NewSpec(Sig())
	for _, r1 := range readMethods {
		for _, r2 := range readMethods {
			s.Set(r1, r2, core.True())
		}
	}
	for _, w := range writeMethods {
		for _, m := range append(append([]string{}, readMethods...), writeMethods...) {
			s.Set(w, m, disjoint(w, m))
		}
	}
	return s
}

// ExclusiveSpec strengthens RWSpec (§5's "ex" point): read methods no
// longer commute with reads of the same nodes, turning the read/write
// node locks into cheaper exclusive locks.
func ExclusiveSpec() *core.Spec {
	s := RWSpec()
	for _, r1 := range readMethods {
		for _, r2 := range readMethods {
			s.Set(r1, r2, disjoint(r1, r2))
		}
	}
	return s
}

// PartKey is the pure partition function name used by PartitionedSpec.
const PartKey = "part"

// PartitionedSpec applies §4.2's lock coarsening to ExclusiveSpec: node
// disequalities become partition disequalities, and the synthesized
// scheme locks one of nparts partitions per node access (the paper's
// "part" point, with 32 partitions in the evaluation).
func PartitionedSpec() *core.Spec {
	p, err := ExclusiveSpec().PartitionSpec(PartKey)
	if err != nil {
		panic(fmt.Sprintf("flowgraph: exclusive spec must be SIMPLE: %v", err))
	}
	return p
}
