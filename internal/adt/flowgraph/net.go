// Package flowgraph implements the graph-like ADT behind the paper's
// preflow-push case study (§5): a residual flow network supporting the
// operations the algorithm needs (neighbor enumeration, height and
// excess reads, relabel, pushFlow), with a SIMPLE commutativity
// specification whose synthesized abstract locks come in the paper's
// three flavours — read/write locks on nodes (the "ml" point, identical
// to what a transactional memory would do), exclusive locks ("ex"), and
// partition locks ("part", §4.2).
package flowgraph

import "fmt"

// Arc is one directed residual arc.
type Arc struct {
	To  int32
	Cap int64 // remaining (residual) capacity
	Rev int32 // index of the reverse arc in arcs[To]
}

// Net is a sequential (non-thread-safe) residual flow network with
// per-node heights and excesses — the concrete state of preflow-push.
type Net struct {
	arcs   [][]Arc
	height []int64
	excess []int64
	src    int64
	sink   int64
}

// NewNet creates a network with n nodes, a source and a sink.
func NewNet(n int, src, sink int64) *Net {
	return &Net{
		arcs:   make([][]Arc, n),
		height: make([]int64, n),
		excess: make([]int64, n),
		src:    src,
		sink:   sink,
	}
}

// Len returns the node count.
func (g *Net) Len() int { return len(g.arcs) }

// Source and Sink identify the distinguished nodes.
func (g *Net) Source() int64 { return g.src }

// Sink returns the sink node.
func (g *Net) Sink() int64 { return g.sink }

// AddEdge adds a directed edge u→v with the given capacity (and its
// zero-capacity residual reverse). Parallel edges are allowed.
func (g *Net) AddEdge(u, v, cap int64) {
	if u == v {
		return
	}
	g.arcs[u] = append(g.arcs[u], Arc{To: int32(v), Cap: cap, Rev: int32(len(g.arcs[v]))})
	g.arcs[v] = append(g.arcs[v], Arc{To: int32(u), Cap: 0, Rev: int32(len(g.arcs[u]) - 1)})
}

// Height returns node u's label.
func (g *Net) Height(u int64) int64 { return g.height[u] }

// SetHeight relabels node u, returning the old label.
func (g *Net) SetHeight(u, h int64) int64 {
	old := g.height[u]
	g.height[u] = h
	return old
}

// Excess returns node u's excess flow.
func (g *Net) Excess(u int64) int64 { return g.excess[u] }

// Arcs returns u's residual arc list (shared storage; callers must not
// mutate).
func (g *Net) Arcs(u int64) []Arc { return g.arcs[u] }

// Push moves amt units along u's arc with index ai, updating residual
// capacities and excesses. It reports an error if the push is infeasible
// (guarding against driver bugs).
func (g *Net) Push(u int64, ai int, amt int64) error {
	a := &g.arcs[u][ai]
	if amt <= 0 || amt > a.Cap {
		return fmt.Errorf("flowgraph: infeasible push of %d on %d→%d (cap %d)", amt, u, a.To, a.Cap)
	}
	a.Cap -= amt
	g.arcs[a.To][a.Rev].Cap += amt
	g.excess[u] -= amt
	g.excess[a.To] += amt
	return nil
}

// unpush exactly reverses a Push (for transaction rollback).
func (g *Net) unpush(u int64, ai int, amt int64) {
	a := &g.arcs[u][ai]
	a.Cap += amt
	g.arcs[a.To][a.Rev].Cap -= amt
	g.excess[u] += amt
	g.excess[a.To] -= amt
}

// AddExcess credits node u with extra excess (used to saturate the
// source's arcs during initialization).
func (g *Net) AddExcess(u, amt int64) { g.excess[u] += amt }

// TotalCapFrom sums the capacities of u's outgoing arcs (initialization
// helper).
func (g *Net) TotalCapFrom(u int64) int64 {
	var t int64
	for _, a := range g.arcs[u] {
		t += a.Cap
	}
	return t
}
