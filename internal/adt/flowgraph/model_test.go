package flowgraph

import (
	"fmt"
	"testing"

	"commlat/internal/core"
)

// netModel adapts a small network to core.Model so the graph
// specifications can be brute-force validated per Definition 1. The
// abstract state is the full algorithm-visible state: heights, excesses
// and residual capacities.
type netModel struct {
	n *Net
}

func newNetModel() *netModel {
	n := NewNet(3, 0, 2)
	n.AddEdge(0, 1, 4)
	n.AddEdge(1, 2, 3)
	n.AddEdge(0, 2, 2)
	return &netModel{n: n}
}

func (m *netModel) Clone() core.Model {
	c := NewNet(m.n.Len(), m.n.Source(), m.n.Sink())
	for u := 0; u < m.n.Len(); u++ {
		c.arcs[u] = append([]Arc(nil), m.n.arcs[u]...)
		c.height[u] = m.n.height[u]
		c.excess[u] = m.n.excess[u]
	}
	return &netModel{n: c}
}

func (m *netModel) Apply(method string, args []core.Value) (core.Value, error) {
	u := args[0].Int()
	switch method {
	case "getNeighbors":
		var ids []int64
		for _, a := range m.n.Arcs(u) {
			ids = append(ids, int64(a.To))
		}
		return core.V(fmt.Sprint(ids)), nil // encode the slice as a comparable value
	case "height":
		return core.VInt(m.n.Height(u)), nil
	case "excess":
		return core.VInt(m.n.Excess(u)), nil
	case "relabel":
		m.n.SetHeight(u, m.n.Height(u)+1)
		return core.VInt(m.n.Height(u)), nil
	case "pushFlow":
		v := args[1].Int()
		for i, a := range m.n.Arcs(u) {
			if int64(a.To) == v && a.Cap > 0 {
				if err := m.n.Push(u, i, 1); err != nil {
					return core.VBool(false), err
				}
				return core.VBool(true), nil
			}
		}
		return core.VBool(false), nil
	default:
		return core.Value{}, core.ErrUnknownFn(method)
	}
}

func (m *netModel) StateKey() string {
	s := fmt.Sprint(m.n.height, m.n.excess)
	for u := int64(0); u < int64(m.n.Len()); u++ {
		for _, a := range m.n.Arcs(u) {
			s += fmt.Sprintf(";%d>%d:%d", u, a.To, a.Cap)
		}
	}
	return s
}

func (m *netModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	return core.Value{}, core.ErrUnknownFn(fn)
}

// TestGraphSpecsSoundByBruteForce validates the RW and exclusive graph
// specifications against the executable network model: whenever a
// condition claims two invocations commute, executing them in both
// orders must agree on returns and full abstract state.
func TestGraphSpecsSoundByBruteForce(t *testing.T) {
	var calls []core.Call
	for u := int64(0); u < 3; u++ {
		calls = append(calls,
			core.Call{Method: "getNeighbors", Args: []core.Value{core.V(u)}},
			core.Call{Method: "height", Args: []core.Value{core.V(u)}},
			core.Call{Method: "excess", Args: []core.Value{core.V(u)}},
			core.Call{Method: "relabel", Args: []core.Value{core.V(u)}},
		)
		for v := int64(0); v < 3; v++ {
			if u != v {
				calls = append(calls, core.Call{Method: "pushFlow", Args: []core.Value{core.V(u), core.V(v)}})
			}
		}
	}
	// A couple of states: fresh, and after some flow has moved.
	fresh := newNetModel()
	warm := fresh.Clone().(*netModel)
	if _, err := warm.Apply("pushFlow", []core.Value{core.V(int64(0)), core.V(int64(1))}); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Apply("relabel", []core.Value{core.V(int64(1))}); err != nil {
		t.Fatal(err)
	}
	states := []core.Model{fresh, warm}
	for name, spec := range map[string]*core.Spec{
		"rw": RWSpec(), "exclusive": ExclusiveSpec(), "partitioned3": nil,
	} {
		if name == "partitioned3" {
			continue // partition specs need a part resolver; covered below
		}
		bad, err := core.CheckCondSound(spec, states, calls)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range bad {
			t.Errorf("%s: %s", name, v)
		}
	}
}

// TestPartitionedSpecSound validates the coarsened spec with a part
// resolver attached to the model.
func TestPartitionedSpecSound(t *testing.T) {
	spec := PartitionedSpec()
	base := newNetModel()
	part := &partModel{netModel: base}
	var calls []core.Call
	for u := int64(0); u < 3; u++ {
		calls = append(calls,
			core.Call{Method: "height", Args: []core.Value{core.V(u)}},
			core.Call{Method: "relabel", Args: []core.Value{core.V(u)}},
		)
	}
	bad, err := core.CheckCondSound(spec, []core.Model{part}, calls)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range bad {
		t.Errorf("violation: %s", v)
	}
}

type partModel struct{ *netModel }

func (m *partModel) Clone() core.Model {
	return &partModel{netModel: m.netModel.Clone().(*netModel)}
}

func (m *partModel) StateFn(fn string, args []core.Value) (core.Value, error) {
	if fn == PartKey {
		return core.VInt(args[0].Int() % 2), nil
	}
	return core.Value{}, core.ErrUnknownFn(fn)
}
