package flowgraph

import (
	"sync"

	"commlat/internal/abslock"
	"commlat/internal/core"
	"commlat/internal/engine"
)

// Graph is the transactionally guarded flow network: a Net behind a
// synthesized abstract-locking scheme. Different constructors pick
// different lattice points; the API is identical.
type Graph struct {
	mgr *abslock.Manager
	mu  sync.Mutex
	net *Net
}

// NewGraph guards net with the scheme synthesized from spec. keys
// supplies pure key functions for partitioned specs.
func NewGraph(net *Net, spec *core.Spec, keys map[string]abslock.KeyFunc) (*Graph, error) {
	scheme, err := abslock.Synthesize(spec)
	if err != nil {
		return nil, err
	}
	return &Graph{mgr: abslock.NewManager(scheme.Reduce(), keys), net: net}, nil
}

// NewRW guards net with read/write node locks (the "ml" point).
func NewRW(net *Net) *Graph {
	g, err := NewGraph(net, RWSpec(), nil)
	if err != nil {
		panic(err)
	}
	return g
}

// NewExclusive guards net with exclusive node locks (the "ex" point).
func NewExclusive(net *Net) *Graph {
	g, err := NewGraph(net, ExclusiveSpec(), nil)
	if err != nil {
		panic(err)
	}
	return g
}

// NewPartitioned guards net with locks on nparts node partitions (the
// "part" point; the paper uses 32).
func NewPartitioned(net *Net, nparts int) *Graph {
	g, err := NewGraph(net, PartitionedSpec(), map[string]abslock.KeyFunc{
		PartKey: func(v core.Value) core.Value { return core.VInt(v.Int() % int64(nparts)) },
	})
	if err != nil {
		panic(err)
	}
	return g
}

// Net exposes the underlying network; only safe with no live
// transactions.
func (g *Graph) Net() *Net { return g.net }

// Neighbors returns a snapshot of u's residual arcs.
func (g *Graph) Neighbors(tx *engine.Tx, u int64) ([]Arc, error) {
	if err := g.mgr.PreAcquire(tx, "getNeighbors", core.Args1(core.VInt(u))); err != nil {
		return nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]Arc(nil), g.net.Arcs(u)...), nil
}

// Height reads u's label.
func (g *Graph) Height(tx *engine.Tx, u int64) (int64, error) {
	if err := g.mgr.PreAcquire(tx, "height", core.Args1(core.VInt(u))); err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.net.Height(u), nil
}

// Excess reads u's excess flow.
func (g *Graph) Excess(tx *engine.Tx, u int64) (int64, error) {
	if err := g.mgr.PreAcquire(tx, "excess", core.Args1(core.VInt(u))); err != nil {
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.net.Excess(u), nil
}

// Relabel sets u's label.
func (g *Graph) Relabel(tx *engine.Tx, u, h int64) error {
	if err := g.mgr.PreAcquire(tx, "relabel", core.Args1(core.VInt(u))); err != nil {
		return err
	}
	g.mu.Lock()
	old := g.net.SetHeight(u, h)
	g.mu.Unlock()
	tx.OnUndo(func() {
		g.mu.Lock()
		g.net.SetHeight(u, old)
		g.mu.Unlock()
	})
	return nil
}

// Push moves amt units along u's arc with index ai (whose head is the
// second locked node).
func (g *Graph) Push(tx *engine.Tx, u int64, ai int, amt int64) error {
	g.mu.Lock()
	v := int64(g.net.Arcs(u)[ai].To)
	g.mu.Unlock()
	if err := g.mgr.PreAcquire(tx, "pushFlow", core.Args2(core.VInt(u), core.VInt(v))); err != nil {
		return err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if err := g.net.Push(u, ai, amt); err != nil {
		return err
	}
	tx.OnUndo(func() {
		g.mu.Lock()
		g.net.unpush(u, ai, amt)
		g.mu.Unlock()
	})
	return nil
}
