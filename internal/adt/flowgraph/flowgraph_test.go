package flowgraph

import (
	"testing"

	"commlat/internal/core"
	"commlat/internal/engine"
)

func diamond() *Net {
	// 0=src, 3=sink; two disjoint paths 0→1→3 and 0→2→3.
	n := NewNet(4, 0, 3)
	n.AddEdge(0, 1, 5)
	n.AddEdge(0, 2, 7)
	n.AddEdge(1, 3, 4)
	n.AddEdge(2, 3, 9)
	return n
}

func TestNetPushAndResiduals(t *testing.T) {
	n := diamond()
	if err := n.Push(0, 0, 3); err != nil { // 0→1 : 3
		t.Fatal(err)
	}
	if n.Arcs(0)[0].Cap != 2 {
		t.Errorf("forward residual = %d", n.Arcs(0)[0].Cap)
	}
	// The reverse arc 1→0 gained capacity 3.
	rev := n.Arcs(0)[0].Rev
	if n.Arcs(1)[rev].Cap != 3 {
		t.Errorf("reverse residual = %d", n.Arcs(1)[rev].Cap)
	}
	if n.Excess(1) != 3 || n.Excess(0) != -3 {
		t.Errorf("excesses = %d, %d", n.Excess(1), n.Excess(0))
	}
	// Infeasible pushes are rejected.
	if err := n.Push(0, 0, 10); err == nil {
		t.Error("overpush should error")
	}
	if err := n.Push(0, 0, 0); err == nil {
		t.Error("zero push should error")
	}
	// unpush restores exactly.
	n.unpush(0, 0, 3)
	if n.Arcs(0)[0].Cap != 5 || n.Excess(1) != 0 || n.Excess(0) != 0 {
		t.Error("unpush did not restore")
	}
}

func TestSpecsAreSimple(t *testing.T) {
	if RWSpec().Classify() != core.ClassSimple {
		t.Error("RWSpec should be SIMPLE")
	}
	if ExclusiveSpec().Classify() != core.ClassSimple {
		t.Error("ExclusiveSpec should be SIMPLE")
	}
}

func TestSpecLattice(t *testing.T) {
	rw, ex, part := RWSpec(), ExclusiveSpec(), PartitionedSpec()
	if !ex.LE(rw) || rw.LE(ex) {
		t.Error("exclusive should be strictly below rw")
	}
	if !part.LE(ex) || ex.LE(part) {
		t.Error("partitioned should be strictly below exclusive")
	}
}

func TestRWConcurrentReadsSharedNodeWritesConflict(t *testing.T) {
	g := NewRW(diamond())
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	// Two readers of node 1 share.
	if _, err := g.Height(tx1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Height(tx2, 1); err != nil {
		t.Fatalf("concurrent reads should share: %v", err)
	}
	// A relabel of node 1 conflicts with the readers.
	tx3 := engine.NewTx()
	defer tx3.Abort()
	if err := g.Relabel(tx3, 1, 2); !engine.IsConflict(err) {
		t.Fatalf("relabel under readers should conflict, got %v", err)
	}
	// A relabel of node 2 proceeds.
	if err := g.Relabel(tx3, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestExclusiveReadsConflict(t *testing.T) {
	g := NewExclusive(diamond())
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := g.Height(tx1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Height(tx2, 1); !engine.IsConflict(err) {
		t.Fatalf("exclusive scheme: same-node reads should conflict, got %v", err)
	}
	if _, err := g.Height(tx2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionedCoarseness(t *testing.T) {
	n := NewNet(64, 0, 63)
	g := NewPartitioned(n, 4)
	tx1, tx2 := engine.NewTx(), engine.NewTx()
	defer tx1.Abort()
	defer tx2.Abort()
	if _, err := g.Height(tx1, 5); err != nil {
		t.Fatal(err)
	}
	// Node 9 is in the same partition (5 ≡ 9 mod 4): conflict.
	if _, err := g.Height(tx2, 9); !engine.IsConflict(err) {
		t.Fatalf("same-partition access should conflict, got %v", err)
	}
	// Node 6 is in another partition: fine.
	if _, err := g.Height(tx2, 6); err != nil {
		t.Fatal(err)
	}
}

func TestPushLocksBothEndpoints(t *testing.T) {
	g := NewRW(diamond())
	// Saturate source edge so a push is feasible from node 1.
	seed := engine.NewTx()
	if err := g.Push(seed, 0, 0, 5); err != nil { // 0→1
		t.Fatal(err)
	}
	seed.Commit()

	tx1 := engine.NewTx()
	defer tx1.Abort()
	if err := g.Push(tx1, 1, 1, 4); err != nil { // arc index 1 of node 1 is 1→3
		t.Fatal(err)
	}
	// Another transaction touching node 3 conflicts...
	tx2 := engine.NewTx()
	defer tx2.Abort()
	if _, err := g.Excess(tx2, 3); !engine.IsConflict(err) {
		t.Fatalf("read of push target should conflict, got %v", err)
	}
	// ...but node 2 is free.
	if _, err := g.Excess(tx2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestPushUndoRestores(t *testing.T) {
	g := NewRW(diamond())
	tx := engine.NewTx()
	if err := g.Push(tx, 0, 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := g.Relabel(tx, 1, 7); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	n := g.Net()
	if n.Arcs(0)[0].Cap != 5 || n.Excess(1) != 0 || n.Height(1) != 0 {
		t.Errorf("abort did not restore: cap=%d excess=%d height=%d",
			n.Arcs(0)[0].Cap, n.Excess(1), n.Height(1))
	}
}

func TestNeighborsSnapshot(t *testing.T) {
	g := NewRW(diamond())
	tx := engine.NewTx()
	defer tx.Abort()
	arcs, err := g.Neighbors(tx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(arcs) != 2 || arcs[0].To != 1 || arcs[1].To != 2 {
		t.Errorf("Neighbors = %+v", arcs)
	}
	// Mutating the snapshot must not touch the network.
	arcs[0].Cap = 0
	if g.Net().Arcs(0)[0].Cap != 5 {
		t.Error("snapshot aliases network storage")
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	n := NewNet(2, 0, 1)
	n.AddEdge(0, 0, 5)
	if len(n.Arcs(0)) != 0 {
		t.Error("self loop should be dropped")
	}
}
