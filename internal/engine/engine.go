// Package engine provides the speculative-execution substrate the paper's
// conflict detectors plug into: transactions with inverse-method undo
// logs, commit/abort lifecycle hooks, and a worklist executor that runs
// iterations optimistically and retries them on conflict with randomized
// backoff. It plays the role the Galois system plays in the paper's
// evaluation (§5).
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"

	"commlat/internal/telemetry"
)

// ErrConflict is the sentinel returned (possibly wrapped) by conflict
// detectors when a method invocation does not commute with a concurrently
// executing transaction. The executor responds by aborting and retrying
// the current transaction.
var ErrConflict = errors.New("engine: conflict")

// Conflict wraps ErrConflict with a human-readable description of what
// failed to commute; errors.Is(err, ErrConflict) matches it.
func Conflict(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrConflict, fmt.Sprintf(format, args...))
}

// IsConflict reports whether err denotes a speculation conflict.
func IsConflict(err error) bool { return errors.Is(err, ErrConflict) }

var txIDs atomic.Uint64

// Status is the lifecycle state of a transaction.
type Status int

// Transaction lifecycle states.
const (
	Active Status = iota
	Committed
	Aborted
)

// Undoer is a detector (or data structure) that can roll back its state
// for an aborting transaction. Registering an Undoer with OnUndoer
// instead of a closure with OnUndo avoids a heap allocation per
// registration: the hook stores the interface pair (pointer receiver,
// no capture) inline.
type Undoer interface {
	UndoTx(tx *Tx)
}

// Releaser is a detector that must be notified when a transaction ends
// (by commit or abort): lock release, gatekeeper log cleanup, and so on.
// The allocation-free counterpart of OnRelease closures.
type Releaser interface {
	ReleaseTx(tx *Tx)
}

// attachment is one detector-owned word of per-transaction storage
// (see Tx.Attach).
type attachment struct {
	owner any
	word  uint64
}

// txHook is one registered undo or release action: either a closure or
// an interface target. Exactly one of fn/u/r is set.
type txHook struct {
	fn func()
	u  Undoer
	r  Releaser
}

func (h *txHook) run(tx *Tx) {
	switch {
	case h.fn != nil:
		h.fn()
	case h.u != nil:
		h.u.UndoTx(tx)
	case h.r != nil:
		h.r.ReleaseTx(tx)
	}
}

// Tx is a speculative transaction. A transaction accumulates undo actions
// (inverse methods, per §3.3.2) as it mutates shared structures and
// release hooks from the conflict detectors guarding those structures.
// On abort, undo actions run in LIFO order and then release hooks run;
// on commit only the release hooks run.
//
// A Tx is not safe for concurrent use by multiple goroutines; each
// speculative iteration owns its transaction.
type Tx struct {
	id      uint64
	undo    []txHook
	release []txHook
	end     Releaser // single-owner end hook; see OnEnd
	endWord uint64   // scratch word owned by the end releaser; see EndWord
	attach  []attachment
	status  Status
	worker  int32 // executor worker running this tx (0 when hand-driven)
	item    int64 // traced work-item key (-1 when unknown)
}

// NewTx creates a fresh active transaction.
func NewTx() *Tx {
	telemetry.CountTxBegin()
	return &Tx{id: txIDs.Add(1), item: -1}
}

// GetTx returns an active transaction from the shared pool. Pair it with
// PutTx after Commit or Abort; a steady-state caller then allocates
// nothing per transaction (the hook slices keep their capacity). The
// executor uses this pool internally; benchmarks and tests that drive
// transactions by hand should too.
func GetTx() *Tx {
	tx := txPool.Get().(*Tx)
	tx.id = txIDs.Add(1)
	tx.status = Active
	tx.worker = 0
	tx.item = -1
	telemetry.CountTxBegin()
	return tx
}

// PutTx recycles a finished transaction into the shared pool. The
// transaction must not be Active and must not be used after the call.
func PutTx(tx *Tx) {
	if tx.status == Active {
		panic("engine: PutTx on an active transaction")
	}
	//commvet:ignore Commit/Abort drain and nil out every hook slice entry before the transaction can get here (Active is rejected above); the slices keep capacity by design
	txPool.Put(tx)
}

// ID returns the transaction's unique identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// Worker returns the executor worker index running this transaction
// (0 for hand-driven transactions). Conflict detectors use it to tag
// trace events with the right track.
func (tx *Tx) Worker() int { return int(tx.worker) }

// SetWorker records the worker index running this transaction.
func (tx *Tx) SetWorker(w int) { tx.worker = int32(w) }

// Item returns the traced work-item key (-1 when unknown).
func (tx *Tx) Item() int64 { return tx.item }

// SetItem records the work-item key for trace events.
func (tx *Tx) SetItem(item int64) { tx.item = item }

// Status returns the transaction's lifecycle state.
func (tx *Tx) Status() Status { return tx.status }

// Attach returns the per-transaction storage word owned by owner,
// creating it zeroed on first use (isNew reports creation). Detectors
// that keep per-transaction state in their own lock-free storage — the
// cascade's slot table, the lock manager's fast hold slots — use the
// word to thread an intrusive chain head through that storage, so
// ending the transaction releases everything it published in one O(own)
// walk with no per-record hook registrations, and the signature
// retractions batch at commit instead of paying a fence per record.
//
// The returned pointer is invalidated by the next Attach call on the
// same transaction with a different owner (the backing array may move):
// read or write it immediately and re-Attach when needed. Like the rest
// of Tx, attachments may only be touched from the goroutine driving the
// transaction. Words survive until the transaction's hooks have run
// (release hooks may still read them) and are cleared before pooling.
func (tx *Tx) Attach(owner any) (word *uint64, isNew bool) {
	for i := range tx.attach {
		if tx.attach[i].owner == owner {
			return &tx.attach[i].word, false
		}
	}
	tx.attach = append(tx.attach, attachment{owner: owner})
	return &tx.attach[len(tx.attach)-1].word, true
}

// AttachedWord returns owner's attachment word, or nil if owner never
// attached to this transaction — a lookup-only Attach for release paths
// that must distinguish "no records" from "records threaded elsewhere"
// (see EndWord).
func (tx *Tx) AttachedWord(owner any) *uint64 {
	for i := range tx.attach {
		if tx.attach[i].owner == owner {
			return &tx.attach[i].word
		}
	}
	return nil
}

// EndWord returns the per-transaction scratch word reserved for the
// end-owner releaser (see OnEnd): the detector that wins the end slot
// may thread its record chain through this word instead of an Attach
// entry, skipping the attachment scan on every invocation and the
// pointer-bearing attachment clear on every commit. The word lives
// until the end hook has run and is zeroed with it; a detector that
// lost the end slot must use Attach, and its release path should try
// AttachedWord first so the two storages never mix.
func (tx *Tx) EndWord() *uint64 { return &tx.endWord }

// OnUndo registers an inverse action to run (in LIFO order) if the
// transaction aborts. Data structure wrappers call this after every
// successful mutating invocation.
func (tx *Tx) OnUndo(f func()) {
	tx.mustBeActive()
	tx.undo = append(tx.undo, txHook{fn: f})
}

// OnUndoer registers u.UndoTx(tx) as an undo action without allocating
// a closure.
func (tx *Tx) OnUndoer(u Undoer) {
	tx.mustBeActive()
	tx.undo = append(tx.undo, txHook{u: u})
}

// OnRelease registers a hook that runs when the transaction ends, whether
// by commit or abort. Release hooks run after undo actions during an
// abort.
func (tx *Tx) OnRelease(f func()) {
	tx.mustBeActive()
	tx.release = append(tx.release, txHook{fn: f})
}

// OnReleaser registers r.ReleaseTx(tx) as a release hook without
// allocating a closure.
func (tx *Tx) OnReleaser(r Releaser) {
	tx.mustBeActive()
	tx.release = append(tx.release, txHook{r: r})
}

// OnEnd registers r in the transaction's single "end owner" slot: a
// cheaper OnReleaser for detectors that attach to every transaction
// they see — one interface store instead of hook-slice appends. The
// owner's ReleaseTx runs when the transaction ends (after the regular
// release hooks), and if r also implements Undoer its UndoTx runs on
// abort (after the regular undo hooks). r must be comparable (all
// detectors register pointers). The slot holds at most one owner:
// OnEnd reports whether r owns it on return; false means another
// detector got there first and the caller must fall back to
// OnUndoer/OnReleaser.
func (tx *Tx) OnEnd(r Releaser) bool {
	tx.mustBeActive()
	if tx.end == nil {
		tx.end = r
		return true
	}
	return tx.end == r
}

// Commit ends the transaction successfully, running release hooks.
func (tx *Tx) Commit() {
	tx.mustBeActive()
	tx.status = Committed
	tx.runRelease()
	if e := tx.end; e != nil {
		tx.end = nil
		e.ReleaseTx(tx)
		tx.endWord = 0
	}
	clearHooks(&tx.undo)
	clearAttach(&tx.attach)
	telemetry.TxCommit(int(tx.worker), tx.id, tx.item)
}

// BatchReleaser is a Releaser that can free many transactions' records
// under one acquisition of its internal serialization (one release
// mutex, one set of retraction fences for the whole group). The cascade
// gatekeeper and the abstract-lock fast table implement it.
type BatchReleaser interface {
	Releaser
	ReleaseTxBatch(txs []*Tx)
}

// CommitBatch commits txs as one group. When every transaction's sole
// release mechanism — its OnEnd owner, or a single OnReleaser hook —
// is the same BatchReleaser, the whole group is released through one
// ReleaseTxBatch call: the group-commit fast path batch admission
// relies on. Any other hook shape falls back to committing each
// transaction individually, with identical semantics. Transactions
// must all be Active.
func CommitBatch(txs []*Tx) {
	if len(txs) == 0 {
		return
	}
	var br BatchReleaser
	var brr Releaser // br as its Releaser identity, for cheap compares
	uniform := true
	nset := 0
	for _, tx := range txs {
		tx.mustBeActive()
		var r Releaser
		if tx.end != nil && len(tx.release) == 0 {
			r = tx.end
		} else if tx.end == nil && len(tx.release) == 1 {
			r = tx.release[0].r
		}
		if r != brr || r == nil {
			b, ok := r.(BatchReleaser)
			if !ok || (br != nil && b != br) {
				uniform = false
				break
			}
			br, brr = b, r
		}
		tx.status = Committed // provisional until the scan completes
		nset++
	}
	if !uniform || br == nil {
		for _, tx := range txs[:nset] {
			tx.status = Active
		}
		for _, tx := range txs {
			tx.Commit()
		}
		return
	}
	br.ReleaseTxBatch(txs)
	telemetry.AdvanceFlightEpoch()
	for _, tx := range txs {
		tx.end = nil
		tx.endWord = 0
		clearHooks(&tx.release)
		clearHooks(&tx.undo)
		clearAttach(&tx.attach)
	}
	if telemetry.TraceEnabled() {
		for _, tx := range txs {
			telemetry.TxCommit(int(tx.worker), tx.id, tx.item)
		}
	} else {
		telemetry.CountTxCommits(len(txs))
	}
}

// Abort rolls the transaction back: undo actions run newest-first, then
// release hooks run.
func (tx *Tx) Abort() {
	tx.mustBeActive()
	tx.status = Aborted
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i].run(tx)
	}
	clearHooks(&tx.undo)
	if u, ok := tx.end.(Undoer); ok {
		u.UndoTx(tx)
	}
	tx.runRelease()
	if e := tx.end; e != nil {
		tx.end = nil
		e.ReleaseTx(tx)
		tx.endWord = 0
	}
	clearAttach(&tx.attach)
	telemetry.TxAbort(int(tx.worker), tx.id, tx.item)
}

func (tx *Tx) runRelease() {
	for i := len(tx.release) - 1; i >= 0; i-- {
		tx.release[i].run(tx)
	}
	clearHooks(&tx.release)
}

// clearHooks empties a hook slice but keeps its capacity, zeroing every
// entry so pooled transactions retain no closure or detector references
// across iterations.
func clearHooks(hs *[]txHook) {
	s := *hs
	for i := range s {
		s[i] = txHook{}
	}
	*hs = s[:0]
}

// clearAttach empties the attachment list but keeps its capacity,
// zeroing every entry so pooled transactions retain no detector
// references across iterations.
func clearAttach(at *[]attachment) {
	s := *at
	for i := range s {
		s[i] = attachment{}
	}
	*at = s[:0]
}

func (tx *Tx) mustBeActive() {
	if tx.status != Active {
		panic(fmt.Sprintf("engine: operation on %v transaction %d", tx.status, tx.id))
	}
}

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}
