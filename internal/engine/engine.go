// Package engine provides the speculative-execution substrate the paper's
// conflict detectors plug into: transactions with inverse-method undo
// logs, commit/abort lifecycle hooks, and a worklist executor that runs
// iterations optimistically and retries them on conflict with randomized
// backoff. It plays the role the Galois system plays in the paper's
// evaluation (§5).
package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrConflict is the sentinel returned (possibly wrapped) by conflict
// detectors when a method invocation does not commute with a concurrently
// executing transaction. The executor responds by aborting and retrying
// the current transaction.
var ErrConflict = errors.New("engine: conflict")

// Conflict wraps ErrConflict with a human-readable description of what
// failed to commute; errors.Is(err, ErrConflict) matches it.
func Conflict(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrConflict, fmt.Sprintf(format, args...))
}

// IsConflict reports whether err denotes a speculation conflict.
func IsConflict(err error) bool { return errors.Is(err, ErrConflict) }

var txIDs atomic.Uint64

// Status is the lifecycle state of a transaction.
type Status int

// Transaction lifecycle states.
const (
	Active Status = iota
	Committed
	Aborted
)

// Tx is a speculative transaction. A transaction accumulates undo actions
// (inverse methods, per §3.3.2) as it mutates shared structures and
// release hooks from the conflict detectors guarding those structures.
// On abort, undo actions run in LIFO order and then release hooks run;
// on commit only the release hooks run.
//
// A Tx is not safe for concurrent use by multiple goroutines; each
// speculative iteration owns its transaction.
type Tx struct {
	id      uint64
	undo    []func()
	release []func()
	status  Status
}

// NewTx creates a fresh active transaction.
func NewTx() *Tx {
	return &Tx{id: txIDs.Add(1)}
}

// ID returns the transaction's unique identifier.
func (tx *Tx) ID() uint64 { return tx.id }

// Status returns the transaction's lifecycle state.
func (tx *Tx) Status() Status { return tx.status }

// OnUndo registers an inverse action to run (in LIFO order) if the
// transaction aborts. Data structure wrappers call this after every
// successful mutating invocation.
func (tx *Tx) OnUndo(f func()) {
	tx.mustBeActive()
	tx.undo = append(tx.undo, f)
}

// OnRelease registers a hook that runs when the transaction ends, whether
// by commit or abort: lock release, gatekeeper log cleanup, and so on.
// Release hooks run after undo actions during an abort.
func (tx *Tx) OnRelease(f func()) {
	tx.mustBeActive()
	tx.release = append(tx.release, f)
}

// Commit ends the transaction successfully, running release hooks.
func (tx *Tx) Commit() {
	tx.mustBeActive()
	tx.status = Committed
	tx.runRelease()
	clearFuncs(&tx.undo)
}

// Abort rolls the transaction back: undo actions run newest-first, then
// release hooks run.
func (tx *Tx) Abort() {
	tx.mustBeActive()
	tx.status = Aborted
	for i := len(tx.undo) - 1; i >= 0; i-- {
		tx.undo[i]()
	}
	clearFuncs(&tx.undo)
	tx.runRelease()
}

func (tx *Tx) runRelease() {
	for i := len(tx.release) - 1; i >= 0; i-- {
		tx.release[i]()
	}
	clearFuncs(&tx.release)
}

// clearFuncs empties a hook slice but keeps its capacity, so pooled
// transactions reuse their storage across iterations.
func clearFuncs(fs *[]func()) {
	s := *fs
	for i := range s {
		s[i] = nil
	}
	*fs = s[:0]
}

func (tx *Tx) mustBeActive() {
	if tx.status != Active {
		panic(fmt.Sprintf("engine: operation on %v transaction %d", tx.status, tx.id))
	}
}

func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}
