package engine

import (
	"testing"
)

func TestWorklistShardCounts(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {16, 16}, {100, 128},
	} {
		wl := NewWorklistShards[int](tc.in)
		if wl.Shards() != tc.want {
			t.Fatalf("NewWorklistShards(%d).Shards() = %d, want %d", tc.in, wl.Shards(), tc.want)
		}
	}
	if n := NewWorklist[int]().Shards(); n < 2 {
		t.Fatalf("automatic shard count %d < 2", n)
	}
}

// TestWorklistShardAffinity checks that affinity-seeded items come out
// of PopBatch as contiguous same-affinity runs: each batch drains one
// shard's FIFO run, never an interleaving — the property a sharded
// detector's batched fast path depends on.
func TestWorklistShardAffinity(t *testing.T) {
	const n = 256
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	aff := func(x int) int { return x % 4 }
	wl := NewWorklistAffinity(4, aff, items...)
	if wl.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", wl.Shards())
	}
	if wl.Len() != n {
		t.Fatalf("Len() = %d, want %d", wl.Len(), n)
	}
	seen := 0
	buf := make([]int, 32)
	for {
		m, done := wl.PopBatch(buf)
		if m == 0 {
			if !done {
				t.Fatal("empty worklist not done with nothing in flight... after draining")
			}
			break
		}
		// Whole batch shares one affinity, in FIFO order within it.
		a := aff(buf[0])
		for k := 1; k < m; k++ {
			if aff(buf[k]) != a {
				t.Fatalf("batch mixes affinities %d and %d", a, aff(buf[k]))
			}
			if buf[k] <= buf[k-1] {
				t.Fatalf("batch not FIFO within shard: %d after %d", buf[k], buf[k-1])
			}
		}
		seen += m
		wl.doneN(m)
	}
	if seen != n {
		t.Fatalf("drained %d items, want %d", seen, n)
	}
}

// TestWorklistPushShard checks the producer-side mirror: mid-run items
// pushed to an explicit shard drain with that shard's run.
func TestWorklistPushShard(t *testing.T) {
	wl := NewWorklistShards[int](4)
	wl.PushShard(2, 20, 21)
	wl.PushShard(6, 22) // reduced modulo 4 -> shard 2
	wl.PushShard(-1, 99)
	if wl.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", wl.Len())
	}
	buf := make([]int, 8)
	view := wl.forWorker(2)
	m, _ := view.PopBatch(buf)
	if m != 3 {
		t.Fatalf("shard-2 view popped %d items, want the 3 routed there", m)
	}
	for i, want := range []int{20, 21, 22} {
		if buf[i] != want {
			t.Fatalf("buf[%d] = %d, want %d", i, buf[i], want)
		}
	}
	view.doneN(m)
	m, _ = view.PopBatch(buf)
	if m != 1 || buf[0] != 99 {
		t.Fatalf("steal pass got (%d, %v), want the negative-affinity item 99", m, buf[:m])
	}
	view.doneN(m)
}
