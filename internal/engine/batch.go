package engine

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"commlat/internal/telemetry"
)

// BatchSizer picks how many items each worker drains per PopBatch and
// observes the outcome, so an adaptive policy can grow batches while
// conflicts are rare and shrink them when speculation starts wasting
// work. Implementations must be safe for concurrent use: one sizer is
// shared by all workers of a run.
type BatchSizer interface {
	// Size returns the batch size for the next batch (>= 1).
	Size() int
	// Observe reports one finished batch: how many of its items
	// committed on the batched first attempt and how many had to retry
	// after a conflict.
	Observe(committed, conflicts int)
}

// BatchBody processes one batch of items: txs[i] is a fresh active
// transaction for items[i], and the body records each item's outcome in
// errs[i] (pre-cleared to nil). The contract mirrors the batched
// detector path it is meant to wrap (e.g. intset.CascadeSet.AddBatch):
//
//   - errs[i] == nil: the body finished the item AND committed txs[i]
//     (group commits via CommitBatch encouraged — that is the point).
//   - errs[i] satisfies IsConflict: txs[i] is still active; the
//     executor aborts it and retries the item with backoff.
//   - any other errs[i]: txs[i] is still active; the executor aborts it
//     and cancels the whole run with that error.
//
// The returned error cancels the run directly (items with nil errs are
// still treated as committed). The body must not retain or recycle the
// transactions; the executor returns every shell to the pool.
type BatchBody[T any] func(txs []*Tx, items []T, wl *Worklist[T], errs []error) error

// RunBatched is Run's batch-mode twin: workers drain the worklist in
// batches (Worklist.PopBatch — one shard-lock acquisition per batch)
// and hand each batch with a matching set of fresh transactions to
// body. Items the body reports as conflicted are retried one at a time
// with the same randomized backoff as Run, so a batch of transient
// conflicts degrades to the serial loop instead of livelocking the
// whole batch. Batch size comes from opts.Sizer when set, else
// opts.BatchSize.
func RunBatched[T any](wl *Worklist[T], opts Options, body BatchBody[T]) (Stats, error) {
	start := time.Now()
	var stats Stats
	var rc runCounters
	nw := opts.workers()
	errc := make(chan error, nw)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(opts.Seed), uint64(w)))
			my := wl.forWorker(w)
			var bw batchWorker[T]
			for !stop.Load() {
				n := opts.batchSize()
				if opts.Sizer != nil {
					n = opts.Sizer.Size()
				}
				if n < 1 {
					n = 1
				}
				bw.grow(n)
				m, finished := my.PopBatch(bw.items[:n])
				if m == 0 {
					if finished {
						return
					}
					runtime.Gosched()
					continue
				}
				err := bw.run(my, w, m, body, rng, opts, &rc)
				my.doneN(m)
				if err != nil {
					stop.Store(true)
					errc <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	stats.Committed = rc.committed.Load()
	stats.Aborts = rc.aborts.Load()
	stats.Busy = time.Duration(rc.busyNS.Load())
	stats.MaxedBackoffRetries = rc.maxed.Load()
	stats.Elapsed = time.Since(start)
	close(errc)
	var errs []error
	for err := range errc {
		errs = append(errs, err)
	}
	return stats, errors.Join(errs...)
}

// TxCache is a worker-local cache of transaction shells for batch
// loops. GetBatch reserves the whole batch's IDs with one atomic add
// and counts all the begins with one telemetry update, recycling
// shells through a private freelist instead of the shared pool — the
// per-transaction synchronization of GetTx/PutTx amortized across the
// batch. Not safe for concurrent use; each worker owns one.
type TxCache struct{ free []*Tx }

// GetBatch fills txs with fresh active transactions.
func (tc *TxCache) GetBatch(txs []*Tx) {
	n := len(txs)
	if n == 0 {
		return
	}
	base := txIDs.Add(uint64(n)) - uint64(n)
	for i := range txs {
		var tx *Tx
		if k := len(tc.free); k > 0 {
			tx, tc.free[k-1] = tc.free[k-1], nil
			tc.free = tc.free[:k-1]
		} else {
			tx = txPool.Get().(*Tx)
		}
		tx.id = base + uint64(i) + 1
		tx.status = Active
		tx.worker = 0
		tx.item = -1
		txs[i] = tx
	}
	telemetry.CountTxBeginN(n)
}

// PutBatch recycles a batch of finished transactions into the cache.
func (tc *TxCache) PutBatch(txs []*Tx) {
	for _, tx := range txs {
		if tx.status == Active {
			panic("engine: PutBatch on an active transaction")
		}
	}
	tc.free = append(tc.free, txs...)
}

// batchWorker is one worker's reusable batch buffers.
type batchWorker[T any] struct {
	items []T
	txs   []*Tx
	errs  []error
	cache TxCache
}

func (bw *batchWorker[T]) grow(n int) {
	if cap(bw.items) < n {
		bw.items = make([]T, n)
		bw.txs = make([]*Tx, n)
		bw.errs = make([]error, n)
	}
}

// run processes one popped batch: first attempt through body as a
// group, then per-item abort-and-retry for the conflicted remainder.
func (bw *batchWorker[T]) run(wl *Worklist[T], w, m int, body BatchBody[T],
	rng *rand.Rand, opts Options, rc *runCounters) error {
	t0 := time.Now()
	defer func() { rc.busyNS.Add(int64(time.Since(t0))) }()
	txs, items, errs := bw.txs[:m], bw.items[:m], bw.errs[:m]
	bw.cache.GetBatch(txs)
	for i := 0; i < m; i++ {
		txs[i].SetWorker(w)
		if telemetry.TraceEnabled() {
			txs[i].SetItem(itemKey(items[i]))
			telemetry.Emit(w, telemetry.EvBegin, txs[i].ID(), txs[i].Item(), 0, 0, 0)
		}
		errs[i] = nil
	}
	fatal := body(txs, items, wl, errs)
	committed, conflicts := 0, 0
	for i := 0; i < m; i++ {
		if errs[i] == nil {
			committed++
			continue
		}
		txs[i].Abort()
		if !IsConflict(errs[i]) && fatal == nil {
			fatal = errs[i]
		}
		conflicts++
	}
	bw.cache.PutBatch(txs)
	rc.committed.Add(uint64(committed))
	if opts.Sizer != nil {
		opts.Sizer.Observe(committed, conflicts)
	}
	if fatal != nil {
		return fatal
	}
	if conflicts == 0 {
		return nil
	}
	// Retry pass: conflicted items go one at a time, each as a batch of
	// one, with the serial loop's randomized exponential backoff.
	for i := 0; i < m; i++ {
		if errs[i] == nil {
			continue
		}
		if !IsConflict(errs[i]) {
			continue // already surfaced as fatal above
		}
		if err := bw.retryOne(wl, w, items[i], errs[i], body, rng, opts, rc); err != nil {
			return err
		}
	}
	return nil
}

func (bw *batchWorker[T]) retryOne(wl *Worklist[T], w int, item T, first error,
	body BatchBody[T], rng *rand.Rand, opts Options, rc *runCounters) error {
	var oneTx [1]*Tx
	var oneItem [1]T
	var oneErr [1]error
	rc.aborts.Add(1) // the failed batch attempt
	backoff := time.Microsecond
	for attempt := 1; ; attempt++ {
		if opts.MaxRetries > 0 && attempt >= opts.MaxRetries {
			return fmt.Errorf("engine: item retried %d times without committing: %w", attempt, first)
		}
		if backoff >= opts.maxBackoff() {
			rc.maxed.Add(1)
		}
		d := time.Duration(rng.Int64N(int64(backoff) + 1))
		time.Sleep(d)
		if backoff < opts.maxBackoff() {
			backoff *= 2
		}
		tx := GetTx()
		tx.SetWorker(w)
		if telemetry.TraceEnabled() {
			tx.SetItem(itemKey(item))
			telemetry.Emit(w, telemetry.EvBegin, tx.ID(), tx.Item(), 0, 0, 0)
		}
		oneTx[0], oneItem[0], oneErr[0] = tx, item, nil
		fatal := body(oneTx[:], oneItem[:], wl, oneErr[:])
		if oneErr[0] == nil {
			PutTx(tx)
			rc.committed.Add(1)
			return fatal
		}
		tx.Abort()
		PutTx(tx)
		if fatal != nil {
			return fatal
		}
		if !IsConflict(oneErr[0]) {
			return oneErr[0]
		}
		first = oneErr[0]
		rc.aborts.Add(1)
	}
}

// RunItemsBatched is RunBatched over a fresh worklist seeded from items.
func RunItemsBatched[T any](items []T, opts Options, body BatchBody[T]) (Stats, error) {
	return RunBatched(NewWorklistShards(opts.WorklistShards, items...), opts, body)
}

// RunItemsAffinity is RunItemsBatched over a worklist whose items are
// pre-routed to the shard affinity names for each (see
// NewWorklistAffinity): batches then arrive as contiguous same-affinity
// runs, so a sharded detector's batched admission stays on its
// single-writer path. The worklist shard count follows
// opts.WorklistShards (0: automatic).
func RunItemsAffinity[T any](items []T, affinity func(T) int, opts Options, body BatchBody[T]) (Stats, error) {
	return RunBatched(NewWorklistAffinity(opts.WorklistShards, affinity, items...), opts, body)
}
