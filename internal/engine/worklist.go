package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Worklist is a concurrent bag of pending work items. Speculative
// iterations may push new items while the executor drains it (preflow-push
// re-enqueues overflowing nodes, clustering enqueues merged clusters, and
// so on).
//
// Internally the items live in power-of-two many FIFO shards, each with
// its own mutex. A Worklist value is a *view* onto the shared shards: the
// handle NewWorklist returns is pinned to shard 0, so a single-threaded
// producer/consumer sees strict global FIFO order; the executor gives
// each worker its own view (forWorker) whose pushes land on the worker's
// home shard and whose pops drain the home shard first and steal the
// oldest items from other shards when it runs dry. The applications are
// unordered algorithms for which any order is correct; FIFO-per-shard
// keeps the fairness clustering's retry loop needs (a re-enqueued item is
// never the next one popped from its shard).
type Worklist[T any] struct {
	s    *wlShared[T]
	home int
}

type wlShard[T any] struct {
	mu    sync.Mutex
	items []T
	head  int
	_     [24]byte // keep neighboring shard mutexes off one cache line
}

type wlShared[T any] struct {
	shards []wlShard[T]
	// inflight counts items popped but not yet committed or re-pushed,
	// so workers can distinguish "temporarily empty" from "done".
	inflight atomic.Int64
	// pushes counts Push calls (monotonically); the termination check
	// uses it to detect items that appeared behind an emptiness scan.
	pushes atomic.Uint64
}

// maxAutoWorklistShards caps the automatic shard count; explicit counts
// (Options.WorklistShards, NewWorklistShards) may exceed it up to
// maxWorklistShards, so the executor's worklist sharding can follow an
// admission shard count chosen elsewhere.
const (
	maxAutoWorklistShards = 64
	maxWorklistShards     = 1 << 16
)

// wlShardsFor picks the shard count. n <= 0 means automatic: the
// smallest power of two covering GOMAXPROCS, at least 2 (so stealing is
// exercised even single-threaded) and at most maxAutoWorklistShards.
// An explicit n rounds up to a power of two, capped only by the
// generous maxWorklistShards sanity bound.
//
// The count is sampled exactly once, at construction, and the worklist
// keeps that shard array for its whole life — deliberately so. A
// runtime.GOMAXPROCS change mid-run would otherwise invite a resize,
// which has no safe cheap form: re-sharding must move queued items
// (breaking per-shard FIFO mid-stream) while racing workers hold views
// computed against the old length. Views instead take the shard count
// modulo len(shards) at creation, so any worker count works correctly
// against any snapshot: shrinking GOMAXPROCS just leaves some shards
// cold, growing it doubles workers up on home shards. Both degrade
// locality, never correctness.
func wlShardsFor(n int) int {
	if n <= 0 {
		k := 2
		for k < runtime.GOMAXPROCS(0) && k < maxAutoWorklistShards {
			k <<= 1
		}
		return k
	}
	k := 1
	for k < n && k < maxWorklistShards {
		k <<= 1
	}
	return k
}

// NewWorklist creates a worklist seeded with items, with the automatic
// shard count. The returned handle is pinned to shard 0: pushes and
// pops through it are strictly FIFO.
func NewWorklist[T any](items ...T) *Worklist[T] {
	return NewWorklistShards(0, items...)
}

// NewWorklistShards is NewWorklist with an explicit shard count
// (rounded up to a power of two; <= 0 means automatic), for callers
// aligning the worklist's sharding with an admission-side shard count.
func NewWorklistShards[T any](shards int, items ...T) *Worklist[T] {
	s := &wlShared[T]{shards: make([]wlShard[T], wlShardsFor(shards))}
	s.shards[0].items = append(s.shards[0].items, items...)
	return &Worklist[T]{s: s, home: 0}
}

// NewWorklistAffinity creates a worklist with an explicit shard count
// and seeds each item into the shard affinity names for it (reduced
// modulo the rounded shard count; negative affinities land on shard 0).
// Workers then drain their home shards first and PopBatch takes
// contiguous same-shard runs, so batches arrive grouped by affinity —
// e.g. a gatekeeper.ShardedCascade's KeyOf, letting InvokeBatch's
// single-shard fast path fire on whole batches.
func NewWorklistAffinity[T any](shards int, affinity func(T) int, items ...T) *Worklist[T] {
	s := &wlShared[T]{shards: make([]wlShard[T], wlShardsFor(shards))}
	n := len(s.shards)
	for _, it := range items {
		a := affinity(it) % n
		if a < 0 {
			a = 0
		}
		s.shards[a].items = append(s.shards[a].items, it)
	}
	return &Worklist[T]{s: s, home: 0}
}

// Shards reports the worklist's shard count.
func (w *Worklist[T]) Shards() int { return len(w.s.shards) }

// PushShard adds items directly to a specific shard (reduced modulo the
// shard count), regardless of the view's home — the producer-side
// mirror of NewWorklistAffinity for items generated mid-run.
func (w *Worklist[T]) PushShard(shard int, items ...T) {
	if len(items) == 0 {
		return
	}
	n := len(w.s.shards)
	shard %= n
	if shard < 0 {
		shard = 0
	}
	sh := &w.s.shards[shard]
	sh.mu.Lock()
	sh.items = append(sh.items, items...)
	w.s.pushes.Add(1)
	sh.mu.Unlock()
}

// forWorker returns worker w's view of the same worklist.
func (w *Worklist[T]) forWorker(i int) *Worklist[T] {
	return &Worklist[T]{s: w.s, home: i % len(w.s.shards)}
}

// Push adds items to the worklist (on the view's home shard).
func (w *Worklist[T]) Push(items ...T) {
	if len(items) == 0 {
		return
	}
	sh := &w.s.shards[w.home]
	sh.mu.Lock()
	sh.items = append(sh.items, items...)
	w.s.pushes.Add(1)
	sh.mu.Unlock()
}

// Len returns the number of queued (not in-flight) items.
func (w *Worklist[T]) Len() int {
	n := 0
	for i := range w.s.shards {
		sh := &w.s.shards[i]
		sh.mu.Lock()
		n += len(sh.items) - sh.head
		sh.mu.Unlock()
	}
	return n
}

// popShard removes the oldest item of shard i, marking it in-flight.
func (s *wlShared[T]) popShard(i int) (T, bool) {
	sh := &s.shards[i]
	sh.mu.Lock()
	var zero T
	if sh.head == len(sh.items) {
		sh.mu.Unlock()
		return zero, false
	}
	it := sh.items[sh.head]
	sh.items[sh.head] = zero // release for GC
	sh.head++
	if sh.head == len(sh.items) {
		sh.items = sh.items[:0]
		sh.head = 0
	} else if sh.head > 1024 && sh.head*2 > len(sh.items) {
		n := copy(sh.items, sh.items[sh.head:])
		sh.items = sh.items[:n]
		sh.head = 0
	}
	// Inflight rises while the shard lock is held, before the item can be
	// observed missing, so the termination scan cannot see "empty
	// everywhere, nothing in flight" while an item is in limbo.
	s.inflight.Add(1)
	sh.mu.Unlock()
	return it, true
}

// pop removes an item — home shard first, then stealing the oldest item
// from the other shards — marking it in-flight. The second result is
// false when every shard is empty; the third reports whether the whole
// computation is complete (empty and nothing in flight).
//
// Termination is decided by a validated scan: observe inflight == 0,
// snapshot the push counter, observe every shard empty, then confirm
// both counters unchanged. New items only appear via Push, which bumps
// the counter, and only workers holding an in-flight item (or an
// external producer, likewise counted) push — so an unchanged counter
// pair proves the emptiness observations describe one coherent instant.
func (w *Worklist[T]) pop() (T, bool, bool) {
	s := w.s
	n := len(s.shards)
	for off := 0; off < n; off++ {
		if it, ok := s.popShard((w.home + off) % n); ok {
			return it, true, false
		}
	}
	var zero T
	if s.inflight.Load() != 0 {
		return zero, false, false
	}
	p1 := s.pushes.Load()
	for i := 0; i < n; i++ {
		sh := &s.shards[i]
		sh.mu.Lock()
		empty := sh.head == len(sh.items)
		sh.mu.Unlock()
		if !empty {
			return zero, false, false
		}
	}
	done := s.pushes.Load() == p1 && s.inflight.Load() == 0
	return zero, false, done
}

// popShardN removes up to len(buf) of shard i's oldest items under one
// lock acquisition, marking them in-flight, and reports how many it
// took. Items come out in shard FIFO order — a batch is a contiguous
// run of the shard's queue, never an interleaving.
func (s *wlShared[T]) popShardN(i int, buf []T) int {
	sh := &s.shards[i]
	sh.mu.Lock()
	n := len(sh.items) - sh.head
	if n == 0 {
		sh.mu.Unlock()
		return 0
	}
	if n > len(buf) {
		n = len(buf)
	}
	var zero T
	for k := 0; k < n; k++ {
		buf[k] = sh.items[sh.head+k]
		sh.items[sh.head+k] = zero // release for GC
	}
	sh.head += n
	if sh.head == len(sh.items) {
		sh.items = sh.items[:0]
		sh.head = 0
	} else if sh.head > 1024 && sh.head*2 > len(sh.items) {
		m := copy(sh.items, sh.items[sh.head:])
		sh.items = sh.items[:m]
		sh.head = 0
	}
	// As in popShard: inflight rises while the shard lock is held, so the
	// termination scan cannot observe the batch as vanished.
	s.inflight.Add(int64(n))
	sh.mu.Unlock()
	return n
}

// PopBatch removes up to len(buf) items as one batch, marking each
// in-flight (one done() call per item taken). The home shard is drained
// first under a single lock acquisition; when it is dry the view steals
// a whole run from the first non-empty victim shard rather than single
// items, so a batch always preserves one shard's FIFO order and never
// mixes shards. The second result reports completed-run termination,
// exactly as pop does, and is only meaningful when the count is 0.
func (w *Worklist[T]) PopBatch(buf []T) (int, bool) {
	if len(buf) == 0 {
		return 0, false
	}
	s := w.s
	n := len(s.shards)
	for off := 0; off < n; off++ {
		if k := s.popShardN((w.home+off)%n, buf); k > 0 {
			return k, false
		}
	}
	if s.inflight.Load() != 0 {
		return 0, false
	}
	p1 := s.pushes.Load()
	for i := 0; i < n; i++ {
		sh := &s.shards[i]
		sh.mu.Lock()
		empty := sh.head == len(sh.items)
		sh.mu.Unlock()
		if !empty {
			return 0, false
		}
	}
	return 0, s.pushes.Load() == p1 && s.inflight.Load() == 0
}

// done marks a popped item finished (committed or abandoned).
func (w *Worklist[T]) done() {
	w.s.inflight.Add(-1)
}

// doneN marks n popped items finished at once — the PopBatch mirror of
// done, one counter update for the whole batch.
func (w *Worklist[T]) doneN(n int) {
	w.s.inflight.Add(-int64(n))
}
