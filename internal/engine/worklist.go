package engine

import "sync"

// Worklist is a concurrent bag of pending work items. Speculative
// iterations may push new items while the executor drains it (preflow-push
// re-enqueues overflowing nodes, clustering enqueues merged clusters, and
// so on). Items are handed out in FIFO order: the applications are
// unordered algorithms for which any order is correct, but FIFO gives the
// fairness clustering's retry loop needs (a re-enqueued point must not be
// the next item popped).
type Worklist[T any] struct {
	mu    sync.Mutex
	items []T
	head  int
	// inflight counts items popped but not yet committed or re-pushed,
	// so workers can distinguish "temporarily empty" from "done".
	inflight int
}

// NewWorklist creates a worklist seeded with items.
func NewWorklist[T any](items ...T) *Worklist[T] {
	w := &Worklist[T]{}
	w.items = append(w.items, items...)
	return w
}

// Push adds items to the worklist.
func (w *Worklist[T]) Push(items ...T) {
	w.mu.Lock()
	w.items = append(w.items, items...)
	w.mu.Unlock()
}

// Len returns the number of queued (not in-flight) items.
func (w *Worklist[T]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.items) - w.head
}

// pop removes the oldest item, marking it in-flight. The second result is
// false when the list is empty; the third reports whether the whole
// computation is complete (empty and nothing in flight).
func (w *Worklist[T]) pop() (T, bool, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	var zero T
	if w.head == len(w.items) {
		return zero, false, w.inflight == 0
	}
	it := w.items[w.head]
	w.items[w.head] = zero // release for GC
	w.head++
	if w.head == len(w.items) {
		w.items = w.items[:0]
		w.head = 0
	} else if w.head > 1024 && w.head*2 > len(w.items) {
		n := copy(w.items, w.items[w.head:])
		w.items = w.items[:n]
		w.head = 0
	}
	w.inflight++
	return it, true, false
}

// done marks a popped item finished (committed or abandoned).
func (w *Worklist[T]) done() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}
