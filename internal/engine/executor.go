package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"runtime"
	rtrace "runtime/trace"
	"sync"
	"sync/atomic"
	"time"

	"commlat/internal/telemetry"
)

// Stats summarizes a speculative run.
type Stats struct {
	Committed uint64        // iterations that committed
	Aborts    uint64        // abort/retry events
	Elapsed   time.Duration // wall-clock time of the run
	// Busy is the summed per-worker time spent inside iteration bodies
	// and commit/abort processing, excluding backoff sleeps and idle
	// steal attempts. Busy/(Workers*Elapsed) approximates utilization;
	// Busy/Committed is the paper's per-iteration overhead quantity.
	Busy time.Duration
	// MaxedBackoffRetries counts retries taken after backoff had already
	// saturated at Options.MaxBackoff — a high count relative to Aborts
	// means the backoff ceiling, not the detector, is pacing the run.
	MaxedBackoffRetries uint64
}

// AbortRatio returns aborts as a fraction of all attempts
// (commits + aborts), the quantity Table 2 reports as "Abort Ratio %".
func (s Stats) AbortRatio() float64 {
	total := s.Committed + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// Options configures a speculative run.
type Options struct {
	// Workers is the number of worker goroutines; 0 means GOMAXPROCS.
	Workers int
	// MaxBackoff caps the randomized backoff after an abort. 0 means a
	// small default; backoff doubles per consecutive abort of the same
	// item up to this cap.
	MaxBackoff time.Duration
	// MaxRetries aborts the run with an error when a single item fails
	// more than this many times (a livelock guard). 0 means unlimited.
	MaxRetries int
	// Seed seeds per-worker backoff randomization for reproducibility.
	Seed int64
	// BatchSize fixes the number of items RunBatched drains per
	// PopBatch; 0 means a default of 32. Ignored by Run.
	BatchSize int
	// Sizer, when set, adapts RunBatched's batch size between batches
	// (see BatchSizer); it overrides BatchSize. Ignored by Run.
	Sizer BatchSizer
	// WorklistShards overrides the shard count of worklists RunItems and
	// RunItemsBatched build (rounded up to a power of two), so the
	// executor's routing granularity can follow an admission-side shard
	// count such as gatekeeper.ShardedCascade's. 0 keeps the automatic
	// GOMAXPROCS-derived count. Ignored when the caller builds the
	// worklist itself (Run, RunBatched).
	WorklistShards int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) batchSize() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return 32
}

func (o Options) maxBackoff() time.Duration {
	if o.MaxBackoff > 0 {
		return o.MaxBackoff
	}
	return 100 * time.Microsecond
}

// Body is one speculative iteration: it operates on item through
// detector-guarded data structure wrappers, registering undo and release
// actions on tx as it goes. Returning an error satisfying IsConflict
// causes abort-and-retry; any other error cancels the whole run.
type Body[T any] func(tx *Tx, item T, wl *Worklist[T]) error

// Run drains the worklist with opts.Workers speculative workers, applying
// body to each item inside a fresh transaction. It is the Galois-style
// optimistic loop of the paper: conflicts roll the iteration back (inverse
// methods via the tx undo log) and the item is retried after randomized
// backoff. Each worker drains its own worklist shard and steals from the
// others when it runs dry, so uncontended pushes and pops never share a
// lock. If several workers fail, all their errors are returned, joined.
func Run[T any](wl *Worklist[T], opts Options, body Body[T]) (Stats, error) {
	start := time.Now()
	var stats Stats
	var rc runCounters
	nw := opts.workers()
	errc := make(chan error, nw)
	var stop atomic.Bool
	var wg sync.WaitGroup

	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// PCG seeded by (run seed, worker index): reproducible for a
			// fixed Options.Seed, distinct per worker.
			rng := rand.New(rand.NewPCG(uint64(opts.Seed), uint64(w)))
			my := wl.forWorker(w)
			for !stop.Load() {
				item, ok, finished := my.pop()
				if !ok {
					if finished {
						return
					}
					runtime.Gosched()
					continue
				}
				if err := runItem(my, w, item, body, rng, opts, &rc); err != nil {
					stop.Store(true)
					errc <- err
					my.done()
					return
				}
				my.done()
			}
		}(w)
	}
	wg.Wait()
	stats.Committed = rc.committed.Load()
	stats.Aborts = rc.aborts.Load()
	stats.Busy = time.Duration(rc.busyNS.Load())
	stats.MaxedBackoffRetries = rc.maxed.Load()
	stats.Elapsed = time.Since(start)
	close(errc)
	var errs []error
	for err := range errc {
		errs = append(errs, err)
	}
	return stats, errors.Join(errs...)
}

// txPool recycles transaction shells between iterations; Commit and
// Abort clear the undo/release hooks (zeroing every entry, so no
// detector or closure reference survives into the pool) but keep their
// slice capacity, so a steady-state worker allocates nothing per
// transaction. GetTx/PutTx expose the pool to benchmarks and tests.
var txPool = sync.Pool{New: func() any { return new(Tx) }}

// runCounters aggregates per-run statistics across workers.
type runCounters struct {
	committed atomic.Uint64
	aborts    atomic.Uint64
	maxed     atomic.Uint64
	busyNS    atomic.Int64
}

func runItem[T any](wl *Worklist[T], w int, item T, body Body[T], rng *rand.Rand,
	opts Options, rc *runCounters) error {
	// When `go tool trace` is recording, each item is a task and each
	// speculative attempt a region, so the trace viewer shows retry
	// structure per item.
	var taskCtx context.Context
	if rtrace.IsEnabled() {
		var task *rtrace.Task
		taskCtx, task = rtrace.NewTask(context.Background(), "engine.item")
		defer task.End()
	}
	backoff := time.Microsecond
	for attempt := 0; ; attempt++ {
		var region *rtrace.Region
		if taskCtx != nil {
			region = rtrace.StartRegion(taskCtx, "attempt")
		}
		t0 := time.Now()
		tx := GetTx()
		tx.SetWorker(w)
		if telemetry.TraceEnabled() {
			tx.SetItem(itemKey(item))
			telemetry.Emit(w, telemetry.EvBegin, tx.ID(), tx.Item(), 0, 0, 0)
		}
		err := body(tx, item, wl)
		if err == nil {
			tx.Commit()
			PutTx(tx)
			rc.committed.Add(1)
			rc.busyNS.Add(int64(time.Since(t0)))
			if region != nil {
				region.End()
			}
			return nil
		}
		tx.Abort()
		PutTx(tx)
		rc.busyNS.Add(int64(time.Since(t0)))
		if region != nil {
			region.End()
		}
		if !IsConflict(err) {
			return err
		}
		rc.aborts.Add(1)
		if opts.MaxRetries > 0 && attempt+1 >= opts.MaxRetries {
			return fmt.Errorf("engine: item retried %d times without committing: %w", attempt+1, err)
		}
		if backoff >= opts.maxBackoff() {
			rc.maxed.Add(1)
		}
		// Randomized exponential backoff to break symmetric livelock.
		d := time.Duration(rng.Int64N(int64(backoff) + 1))
		time.Sleep(d)
		if backoff < opts.maxBackoff() {
			backoff *= 2
		}
	}
}

// itemKey coerces a work item to an int64 trace key; items that are not
// integer-like trace as -1. Called only when event tracing is enabled
// (the interface conversion may allocate).
func itemKey(v any) int64 {
	switch x := v.(type) {
	case int:
		return int64(x)
	case int64:
		return x
	case int32:
		return int64(x)
	case uint32:
		return int64(x)
	case uint64:
		return int64(x)
	case uint:
		return int64(x)
	}
	return -1
}

// RunItems is a convenience wrapper seeding a fresh worklist from a slice.
func RunItems[T any](items []T, opts Options, body Body[T]) (Stats, error) {
	return Run(NewWorklistShards(opts.WorklistShards, items...), opts, body)
}
