package engine

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commlat/internal/telemetry"
)

func TestTxLifecycle(t *testing.T) {
	tx := NewTx()
	if tx.Status() != Active {
		t.Fatal("new tx should be active")
	}
	var order []string
	tx.OnUndo(func() { order = append(order, "undo1") })
	tx.OnUndo(func() { order = append(order, "undo2") })
	tx.OnRelease(func() { order = append(order, "rel") })
	tx.Abort()
	if tx.Status() != Aborted {
		t.Fatal("tx should be aborted")
	}
	want := []string{"undo2", "undo1", "rel"}
	if len(order) != len(want) {
		t.Fatalf("got %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("got %v, want %v", order, want)
		}
	}
}

func TestTxCommitSkipsUndo(t *testing.T) {
	tx := NewTx()
	undone, released := false, false
	tx.OnUndo(func() { undone = true })
	tx.OnRelease(func() { released = true })
	tx.Commit()
	if undone {
		t.Error("commit must not run undo actions")
	}
	if !released {
		t.Error("commit must run release hooks")
	}
}

func TestTxDoubleEndPanics(t *testing.T) {
	tx := NewTx()
	tx.Commit()
	defer func() {
		if recover() == nil {
			t.Error("second end should panic")
		}
	}()
	tx.Abort()
}

func TestTxIDsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := NewTx().ID()
			mu.Lock()
			if seen[id] {
				t.Errorf("duplicate tx id %d", id)
			}
			seen[id] = true
			mu.Unlock()
		}()
	}
	wg.Wait()
}

func TestConflictError(t *testing.T) {
	err := Conflict("lock %s busy", "a")
	if !IsConflict(err) {
		t.Error("Conflict should satisfy IsConflict")
	}
	if !errors.Is(err, ErrConflict) {
		t.Error("errors.Is should match ErrConflict")
	}
	if IsConflict(errors.New("other")) {
		t.Error("unrelated error must not be a conflict")
	}
}

func TestWorklistPushPop(t *testing.T) {
	wl := NewWorklist(1, 2, 3)
	if wl.Len() != 3 {
		t.Fatalf("Len = %d", wl.Len())
	}
	it, ok, done := wl.pop()
	if !ok || done || it != 1 {
		t.Fatalf("pop = %v %v %v (FIFO: oldest first)", it, ok, done)
	}
	wl.Push(9)
	if wl.Len() != 3 {
		t.Fatalf("Len after push = %d", wl.Len())
	}
	wl.done()
	for i := 0; i < 3; i++ {
		if _, ok, _ := wl.pop(); !ok {
			t.Fatal("expected item")
		}
		wl.done()
	}
	_, ok, done = wl.pop()
	if ok || !done {
		t.Fatalf("empty+idle worklist should report done; got ok=%v done=%v", ok, done)
	}
}

func TestWorklistInflightBlocksDone(t *testing.T) {
	wl := NewWorklist(1)
	_, _, _ = wl.pop()
	if _, ok, done := wl.pop(); ok || done {
		t.Error("in-flight item must keep the list not-done")
	}
	wl.done()
	if _, ok, done := wl.pop(); ok || !done {
		t.Error("after done the list should be finished")
	}
}

func TestWorklistFIFOOrder(t *testing.T) {
	wl := NewWorklist[int]()
	for i := 0; i < 10; i++ {
		wl.Push(i)
	}
	for i := 0; i < 10; i++ {
		it, ok, _ := wl.pop()
		if !ok || it != i {
			t.Fatalf("pop %d = %v, %v", i, it, ok)
		}
		wl.done()
	}
}

func TestWorklistBatchStealsPreserveShardFIFO(t *testing.T) {
	// Regression guard for the shard-count snapshot: every item sits in
	// shard 0 while views with home indexes far beyond any plausible
	// GOMAXPROCS snapshot steal batches from it concurrently. PopBatch
	// promises each batch is a contiguous run of one shard's queue, so
	// whatever the interleaving, every stolen batch must be consecutive
	// items in seed order, delivered exactly once.
	wl := NewWorklist[int]()
	const N = 20000
	for i := 0; i < N; i++ {
		wl.Push(i) // home handle: everything lands on shard 0
	}
	var mu sync.Mutex
	var batches [][]int
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := wl.forWorker(w + 1000) // larger than any shard snapshot
			buf := make([]int, 7)
			for {
				k, done := v.PopBatch(buf)
				if k == 0 {
					if done {
						return
					}
					continue
				}
				b := append([]int(nil), buf[:k]...)
				mu.Lock()
				batches = append(batches, b)
				mu.Unlock()
				v.doneN(k)
			}
		}(w)
	}
	wg.Wait()
	seen := make([]bool, N)
	for _, b := range batches {
		for k := 1; k < len(b); k++ {
			if b[k] != b[k-1]+1 {
				t.Fatalf("batch %v is not a contiguous FIFO run", b)
			}
		}
		for _, it := range b {
			if seen[it] {
				t.Fatalf("item %d delivered twice", it)
			}
			seen[it] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("item %d lost", i)
		}
	}
}

func TestWorklistCompaction(t *testing.T) {
	// Push and pop enough items to trigger the head-compaction path and
	// confirm order and contents survive it.
	wl := NewWorklist[int]()
	next := 0
	popped := 0
	for round := 0; round < 40; round++ {
		for i := 0; i < 100; i++ {
			wl.Push(next)
			next++
		}
		for i := 0; i < 60; i++ {
			it, ok, _ := wl.pop()
			if !ok || it != popped {
				t.Fatalf("pop = %v (%v), want %d", it, ok, popped)
			}
			popped++
			wl.done()
		}
	}
	if wl.Len() != next-popped {
		t.Fatalf("Len = %d, want %d", wl.Len(), next-popped)
	}
	for popped < next {
		it, ok, _ := wl.pop()
		if !ok || it != popped {
			t.Fatalf("drain pop = %v (%v), want %d", it, ok, popped)
		}
		popped++
		wl.done()
	}
	if _, ok, done := wl.pop(); ok || !done {
		t.Error("worklist should be done")
	}
}

func TestRunCountsCommits(t *testing.T) {
	var sum atomic.Int64
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	stats, err := RunItems(items, Options{Workers: 4}, func(tx *Tx, item int, wl *Worklist[int]) error {
		sum.Add(int64(item))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 100 {
		t.Errorf("Committed = %d, want 100", stats.Committed)
	}
	if sum.Load() != 99*100/2 {
		t.Errorf("sum = %d", sum.Load())
	}
}

func TestRunRetriesOnConflict(t *testing.T) {
	var tries atomic.Int64
	stats, err := RunItems([]int{1}, Options{Workers: 2}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if tries.Add(1) < 3 {
			return Conflict("try again")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 1 || stats.Aborts != 2 {
		t.Errorf("stats = %+v, want 1 commit 2 aborts", stats)
	}
	if stats.AbortRatio() < 0.6 || stats.AbortRatio() > 0.7 {
		t.Errorf("AbortRatio = %v, want 2/3", stats.AbortRatio())
	}
}

func TestRunUndoRunsPerAbort(t *testing.T) {
	var undone atomic.Int64
	var tries atomic.Int64
	_, err := RunItems([]int{1}, Options{Workers: 1}, func(tx *Tx, item int, wl *Worklist[int]) error {
		tx.OnUndo(func() { undone.Add(1) })
		if tries.Add(1) < 4 {
			return Conflict("retry")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if undone.Load() != 3 {
		t.Errorf("undo ran %d times, want 3 (one per abort)", undone.Load())
	}
}

func TestRunPropagatesFatalError(t *testing.T) {
	boom := errors.New("boom")
	_, err := RunItems([]int{1, 2, 3, 4}, Options{Workers: 2}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if item == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
}

func TestRunMaxRetries(t *testing.T) {
	_, err := RunItems([]int{1}, Options{Workers: 1, MaxRetries: 5}, func(tx *Tx, item int, wl *Worklist[int]) error {
		return Conflict("forever")
	})
	if err == nil {
		t.Error("expected livelock-guard error")
	}
}

func TestRunDynamicWork(t *testing.T) {
	// Each item < 64 pushes two children; count total commits = 127.
	var n atomic.Int64
	stats, err := RunItems([]int{1}, Options{Workers: 4}, func(tx *Tx, item int, wl *Worklist[int]) error {
		n.Add(1)
		if item < 64 {
			wl.Push(item*2, item*2+1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 127 || n.Load() != 127 {
		t.Errorf("committed %d (n=%d), want 127", stats.Committed, n.Load())
	}
}

func TestRunConcurrentCounterWithLockDiscipline(t *testing.T) {
	// Simulate a guarded shared counter: a CAS-like conflict when the
	// "lock" is held, exercising abort/undo paths under real parallelism.
	var held atomic.Int64
	counter := 0
	var mu sync.Mutex
	items := make([]int, 500)
	stats, err := RunItems(items, Options{Workers: 8}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if !held.CompareAndSwap(0, 1) {
			return Conflict("counter busy")
		}
		tx.OnRelease(func() { held.Store(0) })
		mu.Lock()
		counter++
		mu.Unlock()
		tx.OnUndo(func() {
			mu.Lock()
			counter--
			mu.Unlock()
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if counter != 500 {
		t.Errorf("counter = %d, want 500 (commits %d aborts %d)", counter, stats.Committed, stats.Aborts)
	}
}

func TestStatsAbortRatioZero(t *testing.T) {
	if (Stats{}).AbortRatio() != 0 {
		t.Error("empty stats ratio should be 0")
	}
}

func TestStatusString(t *testing.T) {
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Error("status labels")
	}
}

func TestRunSeedReproducibleBackoff(t *testing.T) {
	// Identical seeds must drive identical backoff decisions; we can't
	// observe sleeps directly, so check the run completes and commits
	// deterministically under forced conflicts.
	for _, seed := range []int64{1, 2} {
		var tries atomic.Int64
		stats, err := RunItems([]int{1, 2, 3}, Options{Workers: 1, Seed: seed}, func(tx *Tx, item int, wl *Worklist[int]) error {
			if tries.Add(1)%3 == 0 {
				return Conflict("periodic")
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Committed != 3 {
			t.Errorf("seed %d: committed %d", seed, stats.Committed)
		}
	}
}

func TestRunBusyTime(t *testing.T) {
	stats, err := RunItems([]int{1, 2, 3, 4}, Options{Workers: 2}, func(tx *Tx, item int, wl *Worklist[int]) error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 iterations × 1ms body each; Busy sums across workers.
	if stats.Busy < 4*time.Millisecond {
		t.Errorf("Busy = %v, want >= 4ms", stats.Busy)
	}
	if stats.Busy > 10*stats.Elapsed {
		t.Errorf("Busy = %v implausibly large vs Elapsed = %v", stats.Busy, stats.Elapsed)
	}
}

func TestRunMaxedBackoffRetries(t *testing.T) {
	// With MaxBackoff equal to the initial 1µs backoff, every retry
	// happens at the ceiling, so MaxedBackoffRetries == Aborts
	// deterministically.
	var tries atomic.Int64
	stats, err := RunItems([]int{1}, Options{Workers: 1, MaxBackoff: time.Microsecond}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if tries.Add(1) < 5 {
			return Conflict("retry")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Aborts != 4 {
		t.Fatalf("Aborts = %d, want 4", stats.Aborts)
	}
	if stats.MaxedBackoffRetries != 4 {
		t.Errorf("MaxedBackoffRetries = %d, want 4", stats.MaxedBackoffRetries)
	}
	// With a generous ceiling, the first few retries are below it.
	tries.Store(0)
	stats, err = RunItems([]int{1}, Options{Workers: 1, MaxBackoff: time.Second}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if tries.Add(1) < 4 {
			return Conflict("retry")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MaxedBackoffRetries != 0 {
		t.Errorf("MaxedBackoffRetries = %d, want 0 under a high ceiling", stats.MaxedBackoffRetries)
	}
}

func TestRunEmitsTraceEvents(t *testing.T) {
	telemetry.EnableTrace(1024, 1)
	defer telemetry.DisableTrace()
	var tries atomic.Int64
	_, err := RunItems([]int{7}, Options{Workers: 1}, func(tx *Tx, item int, wl *Worklist[int]) error {
		if tries.Add(1) < 2 {
			return Conflict("once")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var begins, commits, aborts int
	for _, e := range telemetry.TraceEvents() {
		switch e.Kind {
		case telemetry.EvBegin:
			begins++
			if e.Item != 7 {
				t.Errorf("begin item = %d, want 7", e.Item)
			}
		case telemetry.EvCommit:
			commits++
		case telemetry.EvAbort:
			aborts++
		}
	}
	if begins != 2 || commits != 1 || aborts != 1 {
		t.Errorf("begins/commits/aborts = %d/%d/%d, want 2/1/1", begins, commits, aborts)
	}
}
