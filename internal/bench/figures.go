package bench

import (
	"fmt"
	"time"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/apps/cluster"
	"commlat/internal/apps/preflow"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

// FigConfig sizes the scalability figures and picks the thread axis.
type FigConfig struct {
	Threads    []int
	RMFa, RMFb int
	Parts      int
	Points     int
	MeshN      int
	Seed       int64
}

// DefaultFig is a laptop-scaled configuration.
func DefaultFig() FigConfig {
	return FigConfig{
		Threads: []int{1, 2, 4, 8},
		RMFa:    8, RMFb: 8, Parts: 32,
		Points: 1500,
		MeshN:  48,
		Seed:   1,
	}
}

// Fig10 reproduces figure 10: preflow-push run time versus threads for
// the ml (read/write locks), ex (exclusive locks) and part (partition
// locks) conflict detectors. The paper's shape: run time is inversely
// correlated with lattice height — lower-precision schemes win because
// their parallelism still exceeds the machine's cores while their
// per-operation overhead is lower.
func Fig10(cfg FigConfig) (Figure, error) {
	mkNet := func() *flowgraph.Net { return workload.GenRMF(cfg.RMFa, cfg.RMFb, 1, 1000, cfg.Seed) }
	fig := Figure{Title: "Figure 10: preflow-push run time vs threads"}
	fig.SerialSeconds = median3(func() time.Duration {
		net := mkNet()
		return timed(func() { preflow.Sequential(net) })
	}).Seconds()
	variants := []struct {
		name string
		mk   func() *flowgraph.Graph
	}{
		{"ml", func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) }},
		{"ex", func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) }},
		{"part", func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), cfg.Parts) }},
	}
	for _, v := range variants {
		s := Series{Name: v.name, Threads: cfg.Threads}
		for _, th := range cfg.Threads {
			var runErr error
			d := median3(func() time.Duration {
				g := v.mk()
				return timed(func() {
					if _, _, err := preflow.Run(g, engine.Options{Workers: th}); err != nil {
						runErr = err
					}
				})
			})
			if runErr != nil {
				return fig, fmt.Errorf("fig10 %s/%d: %w", v.name, th, runErr)
			}
			s.Seconds = append(s.Seconds, d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig11 reproduces figure 11: agglomerative clustering versus threads,
// forward gatekeeper (kd-gk) against the memory-level baseline (kd-ml).
// The paper's shape: the gatekeeper scales while the baseline does not,
// despite the gatekeeper's higher precision.
func Fig11(cfg FigConfig) (Figure, error) {
	pts := workload.RandomPoints(cfg.Points, 1000, cfg.Seed)
	fig := Figure{Title: "Figure 11: clustering run time vs threads"}
	fig.SerialSeconds = median3(func() time.Duration {
		return timed(func() { cluster.Sequential(pts) })
	}).Seconds()
	variants := []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
	}
	for _, v := range variants {
		s := Series{Name: v.name, Threads: cfg.Threads}
		for _, th := range cfg.Threads {
			var runErr error
			d := median3(func() time.Duration {
				idx := v.mk()
				return timed(func() {
					if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: th}); err != nil {
						runErr = err
					}
				})
			})
			if runErr != nil {
				return fig, fmt.Errorf("fig11 %s/%d: %w", v.name, th, runErr)
			}
			s.Seconds = append(s.Seconds, d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig12 reproduces figure 12: Borůvka's algorithm versus threads, the
// concrete general gatekeeper (uf-gk) against the memory-level baseline
// (uf-ml). The paper's shape: despite general gatekeeping's complexity,
// it has lower overhead than tracking every read and write of path
// compression, and scales better.
func Fig12(cfg FigConfig) (Figure, error) {
	nodes, edges := workload.Mesh(cfg.MeshN, cfg.MeshN, cfg.Seed)
	fig := Figure{Title: "Figure 12: Boruvka run time vs threads"}
	fig.SerialSeconds = median3(func() time.Duration {
		return timed(func() { boruvka.Sequential(nodes, edges) })
	}).Seconds()
	variants := []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
	}
	for _, v := range variants {
		s := Series{Name: v.name, Threads: cfg.Threads}
		for _, th := range cfg.Threads {
			var runErr error
			d := median3(func() time.Duration {
				uf := v.mk()
				return timed(func() {
					if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: th}); err != nil {
						runErr = err
					}
				})
			})
			if runErr != nil {
				return fig, fmt.Errorf("fig12 %s/%d: %w", v.name, th, runErr)
			}
			s.Seconds = append(s.Seconds, d.Seconds())
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}
