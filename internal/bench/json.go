package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"
)

// MicroResult is one detector micro-benchmark's measurement, as emitted
// into BENCH_detectors.json and consumed by the allocation-regression
// gate (scripts/allocgate).
type MicroResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MicroReport is the BENCH_detectors.json document.
type MicroReport struct {
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoVersion  string        `json:"go_version"`
	Benchmarks []MicroResult `json:"benchmarks"`
}

// RunMicros measures every detector micro-benchmark whose name matches
// filter (nil means all) with testing.Benchmark, reporting progress on
// progress when non-nil. AllocsPerOp/BytesPerOp are steady-state
// figures: testing.Benchmark's final run dominates the count, so one-off
// warmup allocations (pool fills, map growth) amortize to zero.
func RunMicros(filter *regexp.Regexp, progress io.Writer) []MicroResult {
	var out []MicroResult
	for _, m := range Micros() {
		if filter != nil && !filter.MatchString(m.Name) {
			continue
		}
		r := testing.Benchmark(m.F)
		res := MicroResult{
			Name:        m.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		out = append(out, res)
		if progress != nil {
			fmt.Fprintf(progress, "%-44s %12d ops %12.1f ns/op %8d B/op %6d allocs/op\n",
				res.Name, res.Iterations, res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		}
	}
	return out
}

// Report wraps results in the BENCH_detectors.json document.
func Report(results []MicroResult) MicroReport {
	return MicroReport{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoVersion:  runtime.Version(),
		Benchmarks: results,
	}
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep MicroReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// Budget is the checked-in allocation budget (BENCH_budget.json): for
// each benchmark name, the maximum allocs/op CI tolerates. Benchmarks
// absent from the budget are unconstrained.
type Budget map[string]int64

// CheckBudget compares results against the budget, returning one line
// per violation (empty means the gate passes) and an error naming
// budgeted benchmarks that were not measured.
func CheckBudget(results []MicroResult, budget Budget) ([]string, error) {
	measured := map[string]MicroResult{}
	for _, r := range results {
		measured[r.Name] = r
	}
	names := make([]string, 0, len(budget))
	for name := range budget {
		names = append(names, name)
	}
	sort.Strings(names)
	var violations, missing []string
	for _, name := range names {
		max := budget[name]
		r, ok := measured[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		if r.AllocsPerOp > max {
			violations = append(violations,
				fmt.Sprintf("%s: %d allocs/op exceeds budget %d", name, r.AllocsPerOp, max))
		}
	}
	if len(missing) > 0 {
		return violations, fmt.Errorf("budgeted benchmarks not measured: %s", strings.Join(missing, ", "))
	}
	return violations, nil
}
