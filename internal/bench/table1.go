package bench

import (
	"fmt"
	"strings"
	"time"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/kdtree"
	"commlat/internal/adt/unionfind"
	"commlat/internal/apps/boruvka"
	"commlat/internal/apps/cluster"
	"commlat/internal/apps/preflow"
	"commlat/internal/engine"
	"commlat/internal/workload"
)

// Table1Row is one line of Table 1: an application/variant pair with its
// ParaMeter-style critical path length, average parallelism, and
// conflict-detection overhead (single-threaded guarded time over plain
// sequential time).
type Table1Row struct {
	App         string
	Variant     string
	PathLength  int
	Parallelism float64
	Overhead    float64
}

// Table1Config sizes the Table 1 inputs. The paper's sizes (GENRMF
// challenge input, 1000×1000 mesh, 100k points) are reachable via
// cmd/commlat flags; defaults here are laptop-scaled.
type Table1Config struct {
	RMFa, RMFb int   // GENRMF frame size and count
	MeshN      int   // Borůvka mesh is MeshN × MeshN
	Points     int   // clustering input size
	Parts      int   // preflow partition count (paper: 32)
	Seed       int64 // generator seed
}

// DefaultTable1 is a configuration that completes in seconds.
func DefaultTable1() Table1Config {
	return Table1Config{RMFa: 6, RMFb: 6, MeshN: 24, Points: 600, Parts: 32, Seed: 1}
}

// Table1 reproduces Table 1: critical path lengths, average parallelism
// and overheads for preflow-push (part, ex, ml), Borůvka (uf-ml, uf-gk)
// and clustering (kd-ml, kd-gk).
func Table1(cfg Table1Config) ([]Table1Row, error) {
	var rows []Table1Row

	// --- preflow-push ----------------------------------------------------
	mkNet := func() *flowgraph.Net { return workload.GenRMF(cfg.RMFa, cfg.RMFb, 1, 1000, cfg.Seed) }
	seqFlow := median3(func() time.Duration {
		net := mkNet()
		return timed(func() { preflow.Sequential(net) })
	})
	preflowVariants := []struct {
		name string
		mk   func() *flowgraph.Graph
	}{
		{"part", func() *flowgraph.Graph { return flowgraph.NewPartitioned(mkNet(), cfg.Parts) }},
		{"ex", func() *flowgraph.Graph { return flowgraph.NewExclusive(mkNet()) }},
		{"ml", func() *flowgraph.Graph { return flowgraph.NewRW(mkNet()) }},
	}
	for _, v := range preflowVariants {
		prof, err := preflow.Profile(v.mk())
		if err != nil {
			return nil, fmt.Errorf("preflow/%s profile: %w", v.name, err)
		}
		t1 := median3(func() time.Duration {
			g := v.mk()
			return timed(func() {
				if _, _, err := preflow.Run(g, engine.Options{Workers: 1}); err != nil {
					panic(err)
				}
			})
		})
		rows = append(rows, Table1Row{
			App: "Preflow-push", Variant: v.name,
			PathLength:  prof.CriticalPath,
			Parallelism: prof.AvgParallelism,
			Overhead:    float64(t1) / float64(seqFlow),
		})
	}

	// --- Borůvka ----------------------------------------------------------
	nodes, edges := workload.Mesh(cfg.MeshN, cfg.MeshN, cfg.Seed)
	seqMST := median3(func() time.Duration {
		return timed(func() { boruvka.Sequential(nodes, edges) })
	})
	ufVariants := []struct {
		name string
		mk   func() unionfind.Sets
	}{
		{"uf-ml", func() unionfind.Sets { return unionfind.NewML(nodes) }},
		{"uf-gk", func() unionfind.Sets { return unionfind.NewGK(nodes) }},
	}
	for _, v := range ufVariants {
		prof, err := boruvka.Profile(v.mk(), nodes, edges)
		if err != nil {
			return nil, fmt.Errorf("boruvka/%s profile: %w", v.name, err)
		}
		t1 := median3(func() time.Duration {
			uf := v.mk()
			return timed(func() {
				if _, err := boruvka.Run(uf, nodes, edges, engine.Options{Workers: 1}); err != nil {
					panic(err)
				}
			})
		})
		rows = append(rows, Table1Row{
			App: "Boruvka", Variant: v.name,
			PathLength:  prof.CriticalPath,
			Parallelism: prof.AvgParallelism,
			Overhead:    float64(t1) / float64(seqMST),
		})
	}

	// --- clustering --------------------------------------------------------
	pts := workload.RandomPoints(cfg.Points, 1000, cfg.Seed)
	seqCluster := median3(func() time.Duration {
		return timed(func() { cluster.Sequential(pts) })
	})
	kdVariants := []struct {
		name string
		mk   func() kdtree.Index
	}{
		{"kd-ml", func() kdtree.Index { return kdtree.NewML() }},
		{"kd-gk", func() kdtree.Index { return kdtree.NewGK() }},
	}
	for _, v := range kdVariants {
		prof, err := cluster.Profile(v.mk(), pts)
		if err != nil {
			return nil, fmt.Errorf("cluster/%s profile: %w", v.name, err)
		}
		t1 := median3(func() time.Duration {
			idx := v.mk()
			return timed(func() {
				if _, _, err := cluster.Run(idx, pts, engine.Options{Workers: 1}); err != nil {
					panic(err)
				}
			})
		})
		rows = append(rows, Table1Row{
			App: "Clustering", Variant: v.name,
			PathLength:  prof.CriticalPath,
			Parallelism: prof.AvgParallelism,
			Overhead:    float64(t1) / float64(seqCluster),
		})
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's column layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-8s %12s %12s %9s\n", "Application", "Variant", "Path length", "Parallelism", "Overhead")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-8s %12d %12.2f %9.2f\n", r.App, r.Variant, r.PathLength, r.Parallelism, r.Overhead)
	}
	return b.String()
}
