// Package bench is the experiment harness: one entry point per table and
// figure of the paper's evaluation (§5), each returning typed rows that
// render in the paper's format. cmd/commlat exposes them as subcommands
// and bench_test.go wires them into `go test -bench`.
//
// Absolute numbers differ from the paper's (different machine, runtime
// and scale — see EXPERIMENTS.md); the quantities compared and the
// expected *shape* of each result are the paper's.
package bench

import (
	"fmt"
	"strings"
	"time"
)

// Series is one line of a figure: elapsed seconds per thread count.
type Series struct {
	Name    string
	Threads []int
	Seconds []float64
}

// Speedups converts the series to speedup over the given serial time.
func (s Series) Speedups(serial float64) []float64 {
	out := make([]float64, len(s.Seconds))
	for i, sec := range s.Seconds {
		if sec > 0 {
			out[i] = serial / sec
		}
	}
	return out
}

// Figure is a set of series over a common thread axis plus the serial
// baseline time.
type Figure struct {
	Title         string
	SerialSeconds float64
	Series        []Series
}

// String renders the figure as a text table of times and speedups.
func (f Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (serial %.3fs)\n", f.Title, f.SerialSeconds)
	if len(f.Series) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "%-12s", "threads")
	for _, th := range f.Series[0].Threads {
		fmt.Fprintf(&b, "%10d", th)
	}
	b.WriteByte('\n')
	for _, s := range f.Series {
		fmt.Fprintf(&b, "%-12s", s.Name+" t")
		for _, sec := range s.Seconds {
			fmt.Fprintf(&b, "%9.3fs", sec)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "%-12s", s.Name+" x")
		for _, sp := range s.Speedups(f.SerialSeconds) {
			fmt.Fprintf(&b, "%9.2fx", sp)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// timed runs f and returns the elapsed wall-clock time.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// median3 runs f three times and returns the median duration, for less
// noisy single-shot measurements.
func median3(f func() time.Duration) time.Duration {
	a, b, c := f(), f(), f()
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
