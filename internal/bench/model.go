package bench

import (
	"fmt"
	"strings"
)

// ModelEntry is one conflict-detection scheme in the §5 performance
// model: T·o is its single-threaded run time, T·o/min(a, p) its
// best-case parallel run time on p processors with perfect load balance.
type ModelEntry struct {
	Name        string
	Overhead    float64 // o: single-thread slowdown over sequential
	Parallelism float64 // a: average parallelism the scheme exposes
}

// PredictedTime returns the model's best-case run time on p processors,
// relative to the sequential time T = 1.
func (e ModelEntry) PredictedTime(p int) float64 {
	a := e.Parallelism
	if float64(p) < a {
		a = float64(p)
	}
	if a < 1 {
		a = 1
	}
	return e.Overhead / a
}

// SelectScheme applies the paper's selection rule: pick the scheme with
// the smallest predicted o/min(a, p). It returns the winner's index.
// Ties go to the earlier (lower-overhead, by convention) entry.
func SelectScheme(entries []ModelEntry, p int) int {
	best := 0
	for i := 1; i < len(entries); i++ {
		if entries[i].PredictedTime(p) < entries[best].PredictedTime(p) {
			best = i
		}
	}
	return best
}

// FormatModel renders predicted times for a processor sweep, flagging
// the winner per processor count — the "putting it all together"
// discussion of §5.
func FormatModel(entries []ModelEntry, procs []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %9s %12s", "scheme", "overhead", "parallelism")
	for _, p := range procs {
		fmt.Fprintf(&b, "  T@p=%-4d", p)
	}
	b.WriteByte('\n')
	winners := map[int]int{}
	for _, p := range procs {
		winners[p] = SelectScheme(entries, p)
	}
	for i, e := range entries {
		fmt.Fprintf(&b, "%-12s %9.2f %12.2f", e.Name, e.Overhead, e.Parallelism)
		for _, p := range procs {
			mark := " "
			if winners[p] == i {
				mark = "*"
			}
			fmt.Fprintf(&b, " %7.3f%s", e.PredictedTime(p), mark)
		}
		b.WriteByte('\n')
	}
	b.WriteString("(* = model's pick at that processor count)\n")
	return b.String()
}

// ModelFromTable1 converts Table 1 rows of one application into model
// entries.
func ModelFromTable1(rows []Table1Row, app string) []ModelEntry {
	var out []ModelEntry
	for _, r := range rows {
		if r.App == app {
			out = append(out, ModelEntry{Name: r.Variant, Overhead: r.Overhead, Parallelism: r.Parallelism})
		}
	}
	return out
}
