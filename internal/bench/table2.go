package bench

import (
	"fmt"
	"strings"
	"time"

	"commlat/internal/adt/intset"
	"commlat/internal/engine"
	"commlat/internal/telemetry"
	"commlat/internal/workload"
)

// Table2Row is one line of Table 2: a conflict-detection scheme with its
// abort ratio and run time on the distinct-elements and the
// equivalence-classes inputs of the set microbenchmark.
type Table2Row struct {
	Scheme           string
	DistinctAborts   float64 // abort ratio, 0..1
	DistinctSeconds  float64
	RepeatedAborts   float64
	RepeatedSeconds  float64
	DistinctElements []int64 // final set contents (for validation); nil in reports

	// DistinctTele and RepeatedTele hold the detector's telemetry
	// snapshot for each input — work counters plus per-method-pair (or
	// per-mode) conflict attribution — for schemes backed by an
	// instrumented detector (nil otherwise).
	DistinctTele *telemetry.DetectorSnapshot
	RepeatedTele *telemetry.DetectorSnapshot
}

// telemetried is implemented by schemes backed by an instrumented
// detector (gatekeeper or lock manager).
type telemetried interface {
	Telemetry() *telemetry.Detector
}

func captureTele(s intset.Set) *telemetry.DetectorSnapshot {
	if ts, ok := s.(telemetried); ok {
		snap := ts.Telemetry().Snapshot()
		return &snap
	}
	return nil
}

// Table2Config sizes the set microbenchmark. The paper runs 1M operations
// on 4 threads with 10 equivalence classes. Extended adds two rows beyond
// the paper: the liberal guarded-lock scheme (footnote 6, implementing
// figure 2 with locks) and the object-STM set (the §4.3 lattice point FC).
type Table2Config struct {
	Ops      int
	Classes  int
	Threads  int
	Seed     int64
	Extended bool
}

// DefaultTable2 is a laptop-scaled configuration.
func DefaultTable2() Table2Config {
	return Table2Config{Ops: 100_000, Classes: 10, Threads: 4, Seed: 1}
}

// Table2Schemes enumerates the microbenchmark's four schemes in lattice
// order: the ⊥ global lock, exclusive element locks, read/write element
// locks (figure 3) and the forward gatekeeper (figure 2).
func Table2Schemes() []string {
	return []string{"Global Lock", "Abs. Lock (Ex.)", "Abs. Lock (RW)", "Gatekeeper"}
}

// Table2ExtendedSchemes are the extension rows (not in the paper's
// table): liberal guarded locks and the object-STM baseline.
func Table2ExtendedSchemes() []string {
	return []string{"Liberal (ext.)", "STM (ext.)"}
}

func newScheme(name string) intset.Set {
	switch name {
	case "Global Lock":
		return intset.NewGlobalLock(intset.NewHashRep())
	case "Abs. Lock (Ex.)":
		return intset.NewExclusiveLocked(intset.NewHashRep())
	case "Abs. Lock (RW)":
		return intset.NewRWLocked(intset.NewHashRep())
	case "Gatekeeper":
		return intset.NewGatekept(intset.NewHashRep())
	case "Liberal (ext.)":
		return intset.NewLiberalLocked(intset.NewHashRep())
	case "STM (ext.)":
		return intset.NewSTM(1024)
	default:
		panic("bench: unknown scheme " + name)
	}
}

// RunSetMicro drives one scheme over one operation stream with an
// overlap window of `threads` concurrently live transactions: each
// operation runs in its own transaction, which stays open until the
// window is full and the oldest commits. The window models `threads`
// hardware threads each holding one in-flight transaction, so contention
// (the Abort Ratio column) is measured deterministically even on a
// single-CPU host; elapsed time measures the scheme's total work
// including retried operations. On conflict the oldest transaction
// commits (making progress) and the operation retries.
func RunSetMicro(s intset.Set, ops []workload.SetOp, threads int) (engine.Stats, time.Duration, error) {
	var aborts uint64
	d := timed(func() {
		open := make([]*engine.Tx, 0, threads)
		commitOldest := func() {
			open[0].Commit()
			open = open[1:]
		}
		for _, op := range ops {
			for {
				tx := engine.NewTx()
				var err error
				if op.Add {
					_, err = s.Add(tx, op.X)
				} else {
					_, err = s.Contains(tx, op.X)
				}
				if err == nil {
					open = append(open, tx)
					if len(open) == threads {
						commitOldest()
					}
					break
				}
				tx.Abort()
				aborts++
				if len(open) > 0 {
					commitOldest()
				}
			}
		}
		for _, tx := range open {
			tx.Commit()
		}
	})
	return engine.Stats{Committed: uint64(len(ops)), Aborts: aborts, Elapsed: d}, d, nil
}

// Table2 reproduces Table 2: for each scheme, abort ratio and time on
// the distinct input (every element unique — locks never contend) and on
// the k-classes input (repeats expose precision differences: gatekeeping
// lets non-mutating adds share, read/write locks let reads share,
// exclusive locks serialize same-element access, the global lock
// serializes everything).
func Table2(cfg Table2Config) ([]Table2Row, error) {
	distinct := workload.SetOpsDistinct(cfg.Ops, cfg.Seed)
	repeated := workload.SetOpsClasses(cfg.Ops, cfg.Classes, cfg.Seed)
	schemes := Table2Schemes()
	if cfg.Extended {
		schemes = append(schemes, Table2ExtendedSchemes()...)
	}
	var rows []Table2Row
	for _, name := range schemes {
		sd := newScheme(name)
		statsD, durD, err := RunSetMicro(sd, distinct, cfg.Threads)
		if err != nil {
			return nil, fmt.Errorf("%s/distinct: %w", name, err)
		}
		sr := newScheme(name)
		statsR, durR, err := RunSetMicro(sr, repeated, cfg.Threads)
		if err != nil {
			return nil, fmt.Errorf("%s/repeats: %w", name, err)
		}
		rows = append(rows, Table2Row{
			Scheme:          name,
			DistinctAborts:  statsD.AbortRatio(),
			DistinctSeconds: durD.Seconds(),
			RepeatedAborts:  statsR.AbortRatio(),
			RepeatedSeconds: durR.Seconds(),
			DistinctTele:    captureTele(sd),
			RepeatedTele:    captureTele(sr),
		})
	}
	return rows, nil
}

// FormatTable2Stats renders the detector telemetry collected by Table2
// for the schemes that expose it — one line per scheme and input,
// showing the checker workload, how the disequality index fared (probes
// vs. collisions vs. full-scan fallbacks), and which method (or mode)
// pair dominated the conflicts with its share of the scheme's aborts.
func FormatTable2Stats(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-9s %12s %12s %12s %12s %12s %12s  %s\n",
		"Detector stats", "Input", "Invocations", "Checks", "Conflicts", "Probes", "Collisions", "Fallbacks", "Top conflict pair")
	line := func(scheme, input string, st *telemetry.DetectorSnapshot) {
		top := "-"
		if pair, share, ok := st.TopPair(); ok {
			top = fmt.Sprintf("%s (%.0f%%)", pair, share)
		}
		fmt.Fprintf(&b, "%-18s %-9s %12d %12d %12d %12d %12d %12d  %s\n",
			scheme, input, st.Invocations, st.Checks, st.Conflicts, st.Probes, st.Collisions, st.FallbackScans, top)
	}
	for _, r := range rows {
		if r.DistinctTele != nil {
			line(r.Scheme, "distinct", r.DistinctTele)
		}
		if r.RepeatedTele != nil {
			line(r.Scheme, "repeats", r.RepeatedTele)
		}
	}
	return b.String()
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %22s %22s\n", "", "(a) Distinct", "(b) Repeats")
	fmt.Fprintf(&b, "%-18s %10s %11s %10s %11s\n", "Program", "Abort %", "Time (s)", "Abort %", "Time (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.2f %11.3f %10.2f %11.3f\n",
			r.Scheme, r.DistinctAborts*100, r.DistinctSeconds, r.RepeatedAborts*100, r.RepeatedSeconds)
	}
	return b.String()
}
