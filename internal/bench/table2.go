package bench

import (
	"fmt"
	"strings"
	"time"

	"commlat/internal/adt/intset"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/workload"
)

// Table2Row is one line of Table 2: a conflict-detection scheme with its
// abort ratio and run time on the distinct-elements and the
// equivalence-classes inputs of the set microbenchmark.
type Table2Row struct {
	Scheme           string
	DistinctAborts   float64 // abort ratio, 0..1
	DistinctSeconds  float64
	RepeatedAborts   float64
	RepeatedSeconds  float64
	DistinctElements []int64 // final set contents (for validation); nil in reports

	// DistinctGate and RepeatedGate hold the gatekeeper's internal work
	// counters for each input, for schemes backed by one (nil otherwise).
	DistinctGate *gatekeeper.Stats
	RepeatedGate *gatekeeper.Stats
}

// gateStatser is implemented by schemes backed by a gatekeeper that can
// report its work counters (probes, collisions, fallback scans, ...).
type gateStatser interface {
	GateStats() gatekeeper.Stats
}

func captureGate(s intset.Set) *gatekeeper.Stats {
	if gs, ok := s.(gateStatser); ok {
		st := gs.GateStats()
		return &st
	}
	return nil
}

// Table2Config sizes the set microbenchmark. The paper runs 1M operations
// on 4 threads with 10 equivalence classes. Extended adds two rows beyond
// the paper: the liberal guarded-lock scheme (footnote 6, implementing
// figure 2 with locks) and the object-STM set (the §4.3 lattice point FC).
type Table2Config struct {
	Ops      int
	Classes  int
	Threads  int
	Seed     int64
	Extended bool
}

// DefaultTable2 is a laptop-scaled configuration.
func DefaultTable2() Table2Config {
	return Table2Config{Ops: 100_000, Classes: 10, Threads: 4, Seed: 1}
}

// Table2Schemes enumerates the microbenchmark's four schemes in lattice
// order: the ⊥ global lock, exclusive element locks, read/write element
// locks (figure 3) and the forward gatekeeper (figure 2).
func Table2Schemes() []string {
	return []string{"Global Lock", "Abs. Lock (Ex.)", "Abs. Lock (RW)", "Gatekeeper"}
}

// Table2ExtendedSchemes are the extension rows (not in the paper's
// table): liberal guarded locks and the object-STM baseline.
func Table2ExtendedSchemes() []string {
	return []string{"Liberal (ext.)", "STM (ext.)"}
}

func newScheme(name string) intset.Set {
	switch name {
	case "Global Lock":
		return intset.NewGlobalLock(intset.NewHashRep())
	case "Abs. Lock (Ex.)":
		return intset.NewExclusiveLocked(intset.NewHashRep())
	case "Abs. Lock (RW)":
		return intset.NewRWLocked(intset.NewHashRep())
	case "Gatekeeper":
		return intset.NewGatekept(intset.NewHashRep())
	case "Liberal (ext.)":
		return intset.NewLiberalLocked(intset.NewHashRep())
	case "STM (ext.)":
		return intset.NewSTM(1024)
	default:
		panic("bench: unknown scheme " + name)
	}
}

// RunSetMicro drives one scheme over one operation stream with an
// overlap window of `threads` concurrently live transactions: each
// operation runs in its own transaction, which stays open until the
// window is full and the oldest commits. The window models `threads`
// hardware threads each holding one in-flight transaction, so contention
// (the Abort Ratio column) is measured deterministically even on a
// single-CPU host; elapsed time measures the scheme's total work
// including retried operations. On conflict the oldest transaction
// commits (making progress) and the operation retries.
func RunSetMicro(s intset.Set, ops []workload.SetOp, threads int) (engine.Stats, time.Duration, error) {
	var aborts uint64
	d := timed(func() {
		open := make([]*engine.Tx, 0, threads)
		commitOldest := func() {
			open[0].Commit()
			open = open[1:]
		}
		for _, op := range ops {
			for {
				tx := engine.NewTx()
				var err error
				if op.Add {
					_, err = s.Add(tx, op.X)
				} else {
					_, err = s.Contains(tx, op.X)
				}
				if err == nil {
					open = append(open, tx)
					if len(open) == threads {
						commitOldest()
					}
					break
				}
				tx.Abort()
				aborts++
				if len(open) > 0 {
					commitOldest()
				}
			}
		}
		for _, tx := range open {
			tx.Commit()
		}
	})
	return engine.Stats{Committed: uint64(len(ops)), Aborts: aborts, Elapsed: d}, d, nil
}

// Table2 reproduces Table 2: for each scheme, abort ratio and time on
// the distinct input (every element unique — locks never contend) and on
// the k-classes input (repeats expose precision differences: gatekeeping
// lets non-mutating adds share, read/write locks let reads share,
// exclusive locks serialize same-element access, the global lock
// serializes everything).
func Table2(cfg Table2Config) ([]Table2Row, error) {
	distinct := workload.SetOpsDistinct(cfg.Ops, cfg.Seed)
	repeated := workload.SetOpsClasses(cfg.Ops, cfg.Classes, cfg.Seed)
	schemes := Table2Schemes()
	if cfg.Extended {
		schemes = append(schemes, Table2ExtendedSchemes()...)
	}
	var rows []Table2Row
	for _, name := range schemes {
		sd := newScheme(name)
		statsD, durD, err := RunSetMicro(sd, distinct, cfg.Threads)
		if err != nil {
			return nil, fmt.Errorf("%s/distinct: %w", name, err)
		}
		sr := newScheme(name)
		statsR, durR, err := RunSetMicro(sr, repeated, cfg.Threads)
		if err != nil {
			return nil, fmt.Errorf("%s/repeats: %w", name, err)
		}
		rows = append(rows, Table2Row{
			Scheme:          name,
			DistinctAborts:  statsD.AbortRatio(),
			DistinctSeconds: durD.Seconds(),
			RepeatedAborts:  statsR.AbortRatio(),
			RepeatedSeconds: durR.Seconds(),
			DistinctGate:    captureGate(sd),
			RepeatedGate:    captureGate(sr),
		})
	}
	return rows, nil
}

// FormatTable2Stats renders the gatekeeper work counters collected by
// Table2 for the schemes that expose them — one line per scheme and
// input, showing how the disequality index fared (probes vs. collisions
// vs. full-scan fallbacks) alongside the checker workload.
func FormatTable2Stats(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %-9s %12s %12s %12s %12s %12s %12s\n",
		"Gatekeeper stats", "Input", "Invocations", "Checks", "Conflicts", "Probes", "Collisions", "Fallbacks")
	line := func(scheme, input string, st *gatekeeper.Stats) {
		fmt.Fprintf(&b, "%-18s %-9s %12d %12d %12d %12d %12d %12d\n",
			scheme, input, st.Invocations, st.Checks, st.Conflicts, st.Probes, st.Collisions, st.FallbackScans)
	}
	for _, r := range rows {
		if r.DistinctGate != nil {
			line(r.Scheme, "distinct", r.DistinctGate)
		}
		if r.RepeatedGate != nil {
			line(r.Scheme, "repeats", r.RepeatedGate)
		}
	}
	return b.String()
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %22s %22s\n", "", "(a) Distinct", "(b) Repeats")
	fmt.Fprintf(&b, "%-18s %10s %11s %10s %11s\n", "Program", "Abort %", "Time (s)", "Abort %", "Time (s)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-18s %10.2f %11.3f %10.2f %11.3f\n",
			r.Scheme, r.DistinctAborts*100, r.DistinctSeconds, r.RepeatedAborts*100, r.RepeatedSeconds)
	}
	return b.String()
}
