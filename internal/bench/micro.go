// Detector micro-benchmarks: the raw cost of one guarded operation under
// each conflict detector, plus window sweeps for the disequality index.
// These are plain func(*testing.B) so two harnesses can share them:
// bench_test.go wraps them as ordinary `go test -bench` benchmarks
// (stable names, so EXPERIMENTS.md numbers stay comparable across PRs),
// and `commlat bench` runs them via testing.Benchmark to emit
// BENCH_detectors.json for the allocation-regression gate.
//
// All benchmarks drive transactions through the engine.GetTx/PutTx pool:
// with the tagged value representation and pooled detector records, the
// indexed fast paths run at 0 allocs/op in steady state, and the CI gate
// (scripts/check_alloc_budget.go against BENCH_budget.json) keeps them
// there.
package bench

import (
	"fmt"
	"testing"

	"commlat/internal/adt/intset"
	"commlat/internal/adt/unionfind"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
	"commlat/internal/telemetry"
)

// Micro is one named detector micro-benchmark.
type Micro struct {
	Name string
	F    func(b *testing.B)
}

// Micros lists every detector micro-benchmark in a stable order. Names
// match the Benchmark* functions in bench_test.go minus the "Benchmark"
// prefix (sub-benchmarks join with '/').
func Micros() []Micro {
	ms := []Micro{
		{"DetectorAbslockRW", DetectorAbslockRW},
		{"DetectorGlobalLock", DetectorGlobalLock},
		{"DetectorLiberalLock", DetectorLiberalLock},
		{"DetectorForwardGatekeeper", DetectorForwardGatekeeper},
		{"DetectorCascadeGatekeeper", DetectorCascadeGatekeeper},
		{"DetectorGeneralGatekeeper", DetectorGeneralGatekeeper},
		{"DetectorUnionFindGeneric", DetectorUnionFindGeneric},
		{"DetectorUnionFindML", DetectorUnionFindML},
		{"CondEval", CondEval},
		{"DetectorForwardGatekeeper/traced", DetectorForwardGatekeeperTraced},
		{"DetectorCascadeGatekeeper/traced", DetectorCascadeGatekeeperTraced},
		{"DetectorGeneralGatekeeper/traced", DetectorGeneralGatekeeperTraced},
		{"TelemetryEmit", TelemetryEmit},
		{"CascadeSlowPath", CascadeSlowPath},
		{"ForwardScanFallback", ForwardScanFallback},
		{"DetectorCascadeBatch8", DetectorCascadeBatch8},
		{"DetectorCascadeBatch32", DetectorCascadeBatch32},
		{"DetectorCascadeBatch128", DetectorCascadeBatch128},
		{"DetectorCascadeSharded", DetectorCascadeSharded},
		{"DetectorCascadeShardedCross", DetectorCascadeShardedCross},
		{"DetectorCascadePairSerial", DetectorCascadePairSerial},
		{"DetectorForwardGatekeeper/latency", DetectorForwardGatekeeperLatency},
		{"DetectorCascadeGatekeeper/latency", DetectorCascadeGatekeeperLatency},
		{"DetectorCascadeBatch32/latency", DetectorCascadeBatch32Latency},
		{"DetectorCascadeSharded/latency", DetectorCascadeShardedLatency},
		{"TelemetryLatencyObserve", TelemetryLatencyObserve},
		{"TelemetryFlightRecord", TelemetryFlightRecord},
	}
	for _, w := range []int{64, 512, 4096} {
		w := w
		ms = append(ms, Micro{
			Name: fmt.Sprintf("ForwardIndexed/indexed/window=%d", w),
			F:    func(b *testing.B) { ForwardWindow(b, false, w) },
		})
	}
	for _, w := range []int{64, 512, 4096} {
		w := w
		ms = append(ms, Micro{
			Name: fmt.Sprintf("CascadeIndexed/window=%d", w),
			F:    func(b *testing.B) { CascadeWindow(b, w) },
		})
	}
	for _, w := range []int{64, 512, 4096} {
		w := w
		ms = append(ms, Micro{
			Name: fmt.Sprintf("GeneralIndexed/set/indexed/window=%d", w),
			F:    func(b *testing.B) { GeneralSetWindow(b, false, w) },
		})
	}
	for _, n := range []int{8, 32, 128} {
		for _, w := range []int{64, 512, 4096} {
			n, w := n, w
			ms = append(ms, Micro{
				Name: fmt.Sprintf("CascadeBatch/batch=%d/window=%d", n, w),
				F:    func(b *testing.B) { CascadeBatchWindow(b, n, w) },
			})
		}
	}
	return ms
}

// benchSetAdd measures one guarded Add per iteration on keys cycling
// through a small window, transaction per op via the pool.
func benchSetAdd(b *testing.B, s intset.Set) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := engine.GetTx()
		if _, err := s.Add(tx, int64(i%1024)); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// DetectorAbslockRW: synthesized read/write abstract locks (figure 3's
// spec) guarding a hash set.
func DetectorAbslockRW(b *testing.B) {
	benchSetAdd(b, intset.NewRWLocked(intset.NewHashRep()))
}

// DetectorGlobalLock: the ⊥ spec — one global exclusive lock.
func DetectorGlobalLock(b *testing.B) {
	benchSetAdd(b, intset.NewGlobalLock(intset.NewHashRep()))
}

// DetectorLiberalLock: the footnote-6 guarded-mode scheme implementing
// figure 2 with locks.
func DetectorLiberalLock(b *testing.B) {
	benchSetAdd(b, intset.NewLiberalLocked(intset.NewHashRep()))
}

// DetectorForwardGatekeeper: the forward gatekeeper running figure 2's
// precise set spec.
func DetectorForwardGatekeeper(b *testing.B) {
	benchSetAdd(b, intset.NewGatekept(intset.NewHashRep()))
}

// DetectorCascadeGatekeeper: the lattice cascade running figure 2's
// precise set spec. The steady state is disjoint-key, so nearly every
// iteration is a stage-1 signature-filter admission with zero locks
// taken by the detector.
func DetectorCascadeGatekeeper(b *testing.B) {
	benchSetAdd(b, intset.NewCascaded(intset.NewHashRep()))
}

// benchSetAddBatch is benchSetAdd through the batched admission
// pipeline: each group of `batch` adds shares one representation lock
// acquisition, one combined signature probe, and one group commit, so
// the per-operation cost reported is the amortized batch cost. Keys
// cycle through the same 1024-element window as benchSetAdd — the
// steady state is disjoint-key, whole-batch admission.
func benchSetAddBatch(b *testing.B, s *intset.CascadeSet, batch int) {
	b.Helper()
	var cache engine.TxCache
	txs := make([]*engine.Tx, batch)
	xs := make([]int64, batch)
	rets := make([]bool, batch)
	errs := make([]error, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		cache.GetBatch(txs[:n])
		for k := 0; k < n; k++ {
			xs[k] = int64((i + k) & 1023)
		}
		s.AddBatch(txs[:n], xs[:n], rets[:n], errs[:n])
		for k := 0; k < n; k++ {
			if errs[k] != nil {
				b.Fatal(errs[k])
			}
		}
		cache.PutBatch(txs[:n])
		i += n
	}
}

// DetectorCascadeBatch8/32/128: DetectorCascadeGatekeeper through the
// batched admission path at fixed batch sizes. The acceptance target is
// DetectorCascadeBatch32 at ≥2× the serial cascade's throughput.
func DetectorCascadeBatch8(b *testing.B) {
	benchSetAddBatch(b, intset.NewCascaded(intset.NewHashRep()), 8)
}

func DetectorCascadeBatch32(b *testing.B) {
	benchSetAddBatch(b, intset.NewCascaded(intset.NewHashRep()), 32)
}

func DetectorCascadeBatch128(b *testing.B) {
	benchSetAddBatch(b, intset.NewCascaded(intset.NewHashRep()), 128)
}

func benchUnionFind(b *testing.B, uf unionfind.Sets) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := engine.GetTx()
		if _, err := uf.Union(tx, int64(i%(1<<15)), int64(i%(1<<15))+1); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// DetectorGeneralGatekeeper: the hand-built general gatekeeper for
// union-find (undo/redo journal, rollback checks).
func DetectorGeneralGatekeeper(b *testing.B) {
	benchUnionFind(b, unionfind.NewGK(1<<16))
}

// DetectorUnionFindGeneric: the spec-interpreting generic gatekeeper —
// ablation against the concrete one above (same conditions, different
// machinery).
func DetectorUnionFindGeneric(b *testing.B) {
	benchUnionFind(b, unionfind.NewGeneric(1<<16))
}

// DetectorUnionFindML: union-find under abstract locks.
func DetectorUnionFindML(b *testing.B) {
	benchUnionFind(b, unionfind.NewML(1<<16))
}

// DetectorForwardGatekeeperTraced is DetectorForwardGatekeeper with the
// telemetry event trace enabled (unsampled): the cost of instrumented
// speculation, which must stay at 0 allocs/op.
func DetectorForwardGatekeeperTraced(b *testing.B) {
	telemetry.EnableTrace(1<<12, 1)
	defer telemetry.DisableTrace()
	benchSetAdd(b, intset.NewGatekept(intset.NewHashRep()))
}

// DetectorCascadeGatekeeperTraced is DetectorCascadeGatekeeper with the
// telemetry event trace enabled (unsampled).
func DetectorCascadeGatekeeperTraced(b *testing.B) {
	telemetry.EnableTrace(1<<12, 1)
	defer telemetry.DisableTrace()
	benchSetAdd(b, intset.NewCascaded(intset.NewHashRep()))
}

// DetectorGeneralGatekeeperTraced is DetectorGeneralGatekeeper with the
// telemetry event trace enabled (unsampled).
func DetectorGeneralGatekeeperTraced(b *testing.B) {
	telemetry.EnableTrace(1<<12, 1)
	defer telemetry.DisableTrace()
	benchUnionFind(b, unionfind.NewGK(1<<16))
}

// withLatency runs a micro-benchmark with the stage-latency histograms
// and the flight recorder both enabled: the fully instrumented
// admission cost. Like the traced rows, instrumented admissions must
// stay at 0 allocs/op — stage marks are atomic adds into fixed arrays
// and flight records are stack-built into pre-sized rings.
func withLatency(b *testing.B, f func(*testing.B)) {
	b.Helper()
	telemetry.EnableLatency()
	telemetry.EnableFlight(1 << 10)
	defer telemetry.DisableLatency()
	defer telemetry.DisableFlight()
	f(b)
}

// DetectorForwardGatekeeperLatency is DetectorForwardGatekeeper with
// latency attribution and the flight recorder on.
func DetectorForwardGatekeeperLatency(b *testing.B) {
	withLatency(b, DetectorForwardGatekeeper)
}

// DetectorCascadeGatekeeperLatency is DetectorCascadeGatekeeper with
// latency attribution and the flight recorder on — the instrumented
// fast path (one clock read and one histogram add per admission).
func DetectorCascadeGatekeeperLatency(b *testing.B) {
	withLatency(b, DetectorCascadeGatekeeper)
}

// DetectorCascadeBatch32Latency is DetectorCascadeBatch32 with latency
// attribution and the flight recorder on — publish/probe phase marks
// plus one group flight record per batch.
func DetectorCascadeBatch32Latency(b *testing.B) {
	withLatency(b, DetectorCascadeBatch32)
}

// DetectorCascadeShardedLatency is DetectorCascadeSharded with latency
// attribution and the flight recorder on.
func DetectorCascadeShardedLatency(b *testing.B) {
	withLatency(b, DetectorCascadeSharded)
}

// TelemetryLatencyObserve measures one enabled stage observation — the
// clock read plus two atomic adds every instrumented stage boundary
// pays.
func TelemetryLatencyObserve(b *testing.B) {
	telemetry.EnableLatency()
	defer telemetry.DisableLatency()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := telemetry.LatClock()
		telemetry.StageObserve(i&7, telemetry.StageSigFilter, t0)
	}
}

// TelemetryFlightRecord measures one enabled flight-record append: a
// stack-built record copied into the worker's ring slot.
func TelemetryFlightRecord(b *testing.B) {
	telemetry.EnableFlight(1 << 10)
	defer telemetry.DisableFlight()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := telemetry.FlightRecord{Tx: uint64(i), Verdict: telemetry.FlightAdmitted}
		rec.Mark(telemetry.StageSigFilter, 64)
		//commvet:ignore benchmark measures the enabled path; a gate here would measure the gate
		telemetry.RecordFlight(i&7, &rec)
	}
}

// TelemetryEmit measures one enabled ring-buffer event emission — the
// marginal cost tracing adds to every lifecycle edge.
func TelemetryEmit(b *testing.B) {
	telemetry.EnableTrace(1<<12, 1)
	defer telemetry.DisableTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		//commvet:ignore benchmark measures the enabled path; a gate here would measure the gate
		telemetry.Emit(i&7, telemetry.EvBegin, uint64(i), int64(i), 0, 0, 0)
	}
}

// CondEval: one interpreted evaluation of figure 2's add/contains
// condition.
func CondEval(b *testing.B) {
	cond := intset.PreciseSpec().Cond("add", "contains")
	env := &core.PairEnv{
		Inv1: core.NewInvocation("add", []core.Value{core.V(int64(1))}, core.VBool(true)),
		Inv2: core.NewInvocation("contains", []core.Value{core.V(int64(2))}, core.VBool(false)),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Eval(cond, env); err != nil {
			b.Fatal(err)
		}
	}
}

// ForwardWindow measures one forward-gatekept add against `window`
// active adds on distinct keys. Indexed probes miss in O(1); with the
// index disabled every active entry is scanned.
func ForwardWindow(b *testing.B, disable bool, window int) {
	b.Helper()
	g, err := gatekeeper.NewForwardConfig(intset.PreciseSpec(), nil,
		gatekeeper.Config{DisableIndex: disable})
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(1); i <= int64(window); i++ {
		if _, err := g.Invoke(holder, "add", core.Args1(core.VInt(-i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	base := int64(1) << 40
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		k := base | int64(n&8191)
		if _, err := g.Invoke(tx, "add", core.Args1(core.VInt(k)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// GeneralSetWindow is ForwardWindow's shape under the general
// gatekeeper: same spec, but every check replays through the undo/redo
// journal machinery.
func GeneralSetWindow(b *testing.B, disable bool, window int) {
	b.Helper()
	g, err := gatekeeper.NewGeneralConfig(intset.PreciseSpec(), nil,
		gatekeeper.Config{DisableIndex: disable})
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(1); i <= int64(window); i++ {
		if _, err := g.Invoke(holder, "add", core.Args1(core.VInt(-i)), func() gatekeeper.GEffect {
			return gatekeeper.GEffect{Ret: core.VBool(true)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	base := int64(1) << 40
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		k := base | int64(n&8191)
		if _, err := g.Invoke(tx, "add", core.Args1(core.VInt(k)), func() gatekeeper.GEffect {
			return gatekeeper.GEffect{Ret: core.VBool(true)}
		}); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// CascadeWindow measures one cascade-guarded add against `window`
// active adds on distinct keys: the incoming key's filter cell is
// empty, so every iteration is a stage-1 admission regardless of the
// window size — the cascade's answer to ForwardWindow.
func CascadeWindow(b *testing.B, window int) {
	b.Helper()
	c, err := gatekeeper.NewCascade(intset.PreciseSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(1); i <= int64(window); i++ {
		if _, err := c.Invoke(holder, "add", core.Args1(core.VInt(-i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	base := int64(1) << 40
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		k := base | int64(n&8191)
		if _, err := c.Invoke(tx, "add", core.Args1(core.VInt(k)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// CascadeBatchWindow is CascadeWindow through the batched admission
// path: `window` active adds on distinct negative keys stay live while
// batches of `batch` disjoint positive keys admit and group-commit.
// Like CascadeWindow, the incoming cells are empty, so every batch
// admits whole on the combined-signature probe and the cost stays flat
// in the window.
func CascadeBatchWindow(b *testing.B, batch, window int) {
	b.Helper()
	c, err := gatekeeper.NewCascade(intset.PreciseSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	for i := int64(1); i <= int64(window); i++ {
		if _, err := c.Invoke(holder, "add", core.Args1(core.VInt(-i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	exec := func(run []gatekeeper.BatchOp) {
		for k := range run {
			run[k].Ret = core.VBool(true)
		}
	}
	base := int64(1) << 40
	var cache engine.TxCache
	ops := make([]gatekeeper.BatchOp, batch)
	txs := make([]*engine.Tx, batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; {
		n := batch
		if rem := b.N - i; rem < n {
			n = rem
		}
		cache.GetBatch(txs[:n])
		for k := 0; k < n; k++ {
			ops[k] = gatekeeper.BatchOp{
				Tx:     txs[k],
				Method: "add",
				Args:   core.Args1(core.VInt(base | int64((i+k)&8191))),
			}
		}
		p := c.InvokeBatch(ops[:n], exec)
		if p != n {
			b.Fatalf("batch admitted %d of %d disjoint keys", p, n)
		}
		engine.CommitBatch(txs[:n])
		cache.PutBatch(txs[:n])
		i += n
	}
}

// CascadeSlowPath forces every iteration through all three cascade
// stages: the incoming add reuses a key held by an active add, so the
// filter hits, the optimistic bucket scan surfaces the holder's slot,
// and the precise checker admits (both adds returned false).
func CascadeSlowPath(b *testing.B) {
	c, err := gatekeeper.NewCascade(intset.PreciseSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	const window = 64
	for i := int64(0); i < window; i++ {
		if _, err := c.Invoke(holder, "add", core.Args1(core.VInt(i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(false)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		if _, err := c.Invoke(tx, "add", core.Args1(core.VInt(int64(n)%window)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(false)}
		}); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// scanFallbackSpec is a specification whose pair condition is ordered
// (Lt), which the disequality decomposition cannot index: every check
// takes the forward gatekeeper's scan-fallback path.
func scanFallbackSpec() *core.Spec {
	sig := &core.ADTSig{Name: "ordered", Methods: []core.MethodSig{
		{Name: "op", Params: []string{"x"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("op", "op", core.Lt(core.Arg1(0), core.Arg2(0)))
	return s
}

// ForwardScanFallback measures one forward-gatekept invocation whose
// pair condition misses the disequality index: 64 active entries are
// scanned and precisely checked per op — the cost the index normally
// avoids, isolated.
func ForwardScanFallback(b *testing.B) {
	g, err := gatekeeper.NewForward(scanFallbackSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	holder := engine.NewTx()
	defer holder.Commit()
	const window = 64
	for i := int64(0); i < window; i++ {
		if _, err := g.Invoke(holder, "op", core.Args1(core.VInt(i)), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Fatal(err)
		}
	}
	base := int64(1) << 40
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		tx := engine.GetTx()
		if _, err := g.Invoke(tx, "op", core.Args1(core.VInt(base+int64(n&1023))), func() gatekeeper.Effect {
			return gatekeeper.Effect{Ret: core.VBool(true)}
		}); err != nil {
			b.Error(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}
