// Sharded-detector micro-benchmarks: the affinity router's two regimes.
// DetectorCascadeSharded measures the case the router was built for —
// GOMAXPROCS workers whose keys all stay in their own shard, batched
// through the single-writer admission path — against the shared-cascade
// batched rows. DetectorCascadeShardedCross drives the worst case, a
// two-key spec whose every invocation rendezvouses across shards, with
// DetectorCascadePairSerial as the plain-cascade baseline the
// degradation is judged against.
package bench

import (
	"runtime"
	"sync/atomic"
	"testing"

	"commlat/internal/adt/intset"
	"commlat/internal/core"
	"commlat/internal/engine"
	"commlat/internal/gatekeeper"
)

// benchShardedProcs is the parallel sharded rows' worker count: the
// acceptance row's GOMAXPROCS=8, capped at the machine's CPU count —
// oversubscribing workers onto fewer cores measures scheduler handoffs,
// not the router. On smaller machines the rows degenerate to fewer (or
// single) workers and the reported ratios are serialized lower bounds;
// the parallel headroom is the shard count.
func benchShardedProcs() int {
	p := 8
	if n := runtime.NumCPU(); n < p {
		p = n
	}
	return p
}

// pairBenchSpec is the two-key rendezvous workload: link(x, y) commutes
// with another link only when both positions differ, so each admission
// publishes two keys — usually into two different shards.
func pairBenchSpec() *core.Spec {
	sig := &core.ADTSig{Name: "graphbench", Methods: []core.MethodSig{
		{Name: "link", Params: []string{"x", "y"}, HasRet: true},
	}}
	s := core.NewSpec(sig)
	s.Set("link", "link", core.And(
		core.Ne(core.Arg1(0), core.Arg2(0)),
		core.Ne(core.Arg1(1), core.Arg2(1))))
	return s
}

// DetectorCascadeSharded: up to 8 workers (capped at the CPU count),
// each batching adds whose keys all route to one shard (per-worker key
// pools pre-filtered by KeyOf), so every admission takes the
// contention-free single-shard path and every batch admits as one
// same-shard run. The acceptance target is ≥1.5× the best
// shared-cascade batched row at 0 allocs/op with ≥8 cores; on a
// single-core machine the row serializes and measures pure router
// overhead over the batched cascade.
func DetectorCascadeSharded(b *testing.B) {
	prev := runtime.GOMAXPROCS(benchShardedProcs())
	defer runtime.GOMAXPROCS(prev)
	s := intset.NewShardedCascaded(func() intset.Rep { return intset.NewHashRep() }, 8)
	sc := s.Sharded()

	// Per-shard pools of 1024 keys each: a worker pinned to one pool
	// never leaves its shard.
	pools := make([][]int64, sc.Shards())
	filled := 0
	for k := int64(0); filled < len(pools); k++ {
		sh, ok := sc.KeyOf("add", core.Args1(core.VInt(k)))
		if !ok {
			b.Fatalf("key %d unroutable", k)
		}
		if len(pools[sh]) < 1024 {
			pools[sh] = append(pools[sh], k)
			if len(pools[sh]) == 1024 {
				filled++
			}
		}
	}

	var widx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		keys := pools[int(widx.Add(1)-1)%len(pools)]
		const batch = 32
		var cache engine.TxCache
		txs := make([]*engine.Tx, batch)
		xs := make([]int64, batch)
		rets := make([]bool, batch)
		errs := make([]error, batch)
		i := 0
		for {
			n := 0
			for n < batch && pb.Next() {
				n++
			}
			if n == 0 {
				return
			}
			cache.GetBatch(txs[:n])
			for k := 0; k < n; k++ {
				xs[k] = keys[(i+k)&1023]
			}
			s.AddBatch(txs[:n], xs[:n], rets[:n], errs[:n])
			for k := 0; k < n; k++ {
				if errs[k] != nil {
					b.Fatal(errs[k])
				}
			}
			cache.PutBatch(txs[:n])
			i += n
		}
	})
}

// DetectorCascadePairSerial: the two-key spec through a plain cascade,
// one thread — the baseline the cross-shard row degrades against.
func DetectorCascadePairSerial(b *testing.B) {
	c, err := gatekeeper.NewCascade(pairBenchSpec(), nil)
	if err != nil {
		b.Fatal(err)
	}
	exec := func() gatekeeper.Effect { return gatekeeper.Effect{Ret: core.VBool(true)} }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx := engine.GetTx()
		x := int64(i & 1023)
		y := int64(4096 + (i & 1023))
		if _, err := c.Invoke(tx, "link", core.Args2(core.VInt(x), core.VInt(y)), exec); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
		engine.PutTx(tx)
	}
}

// DetectorCascadeShardedCross: the same two-key spec through the
// router with up to 8 workers on disjoint key ranges — every admission
// is a multi-shard rendezvous (canonical-order tickets, ghost
// publications in each affected shard). The acceptance bar is graceful
// degradation against DetectorCascadePairSerial: per-op cost
// proportional to the affected-shard count (≈2× serialized), crossing
// below the serial baseline once parallel workers overlap.
func DetectorCascadeShardedCross(b *testing.B) {
	prev := runtime.GOMAXPROCS(benchShardedProcs())
	defer runtime.GOMAXPROCS(prev)
	s, err := gatekeeper.NewSharded(pairBenchSpec(), nil, 8)
	if err != nil {
		b.Fatal(err)
	}
	exec := func() gatekeeper.Effect { return gatekeeper.Effect{Ret: core.VBool(true)} }
	var widx atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := (widx.Add(1) - 1) << 20 // disjoint per-worker key ranges
		i := 0
		for pb.Next() {
			tx := engine.GetTx()
			x := base + int64(i&1023)
			y := base + 4096 + int64(i&1023)
			if _, err := s.Invoke(tx, "link", core.Args2(core.VInt(x), core.VInt(y)), exec); err != nil {
				b.Fatal(err)
			}
			tx.Commit()
			engine.PutTx(tx)
			i++
		}
	})
}
