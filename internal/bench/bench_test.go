package bench

import (
	"strings"
	"testing"
)

func TestTable2SmallShape(t *testing.T) {
	cfg := Table2Config{Ops: 4000, Classes: 10, Threads: 4, Seed: 1, Extended: true}
	rows, err := Table2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// Paper shape (Table 2): on the distinct input the element-lock
	// schemes never abort; on the repeats input the global lock aborts
	// heavily, the gatekeeper aborts least (non-mutating adds share).
	for _, name := range []string{"Abs. Lock (Ex.)", "Abs. Lock (RW)", "Gatekeeper"} {
		if byName[name].DistinctAborts != 0 {
			t.Errorf("%s distinct abort ratio = %v, want 0", name, byName[name].DistinctAborts)
		}
	}
	if g, rw := byName["Gatekeeper"].RepeatedAborts, byName["Abs. Lock (RW)"].RepeatedAborts; g > rw {
		t.Errorf("gatekeeper repeats aborts (%v) should be ≤ rw (%v)", g, rw)
	}
	if rw, ex := byName["Abs. Lock (RW)"].RepeatedAborts, byName["Abs. Lock (Ex.)"].RepeatedAborts; rw > ex {
		t.Errorf("rw repeats aborts (%v) should be ≤ exclusive (%v)", rw, ex)
	}
	if gl := byName["Global Lock"].RepeatedAborts; gl <= byName["Abs. Lock (Ex.)"].RepeatedAborts {
		t.Errorf("global lock should abort the most, got %v", gl)
	}
	// Extension rows: liberal locking implements the same precise spec
	// as the gatekeeper, so its abort behaviour matches (both ~0 on
	// repeats, far below the rw locks).
	if lib, gk := byName["Liberal (ext.)"].RepeatedAborts, byName["Gatekeeper"].RepeatedAborts; lib != gk {
		t.Errorf("liberal repeats aborts (%v) should equal gatekeeper (%v): same lattice point", lib, gk)
	}
	if byName["Liberal (ext.)"].DistinctAborts != 0 || byName["STM (ext.)"].DistinctAborts != 0 {
		t.Error("extension rows should not abort on distinct elements")
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "Gatekeeper") || !strings.Contains(out, "Abort %") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
}

func TestTable1SmallShape(t *testing.T) {
	cfg := Table1Config{RMFa: 4, RMFb: 4, MeshN: 12, Points: 150, Parts: 8, Seed: 1}
	rows, err := Table1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	get := func(app, variant string) Table1Row {
		for _, r := range rows {
			if r.App == app && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", app, variant)
		return Table1Row{}
	}
	// Paper shapes: preflow parallelism grows with lattice height
	// (part ≤ ex ≤ ml); clustering's gatekeeper has a much shorter
	// critical path than memory-level detection.
	if get("Preflow-push", "part").Parallelism > get("Preflow-push", "ml").Parallelism {
		t.Error("preflow: part parallelism should not exceed ml")
	}
	if get("Clustering", "kd-gk").PathLength >= get("Clustering", "kd-ml").PathLength {
		t.Errorf("clustering: kd-gk path (%d) should be shorter than kd-ml (%d)",
			get("Clustering", "kd-gk").PathLength, get("Clustering", "kd-ml").PathLength)
	}
	out := FormatTable1(rows)
	if !strings.Contains(out, "Preflow-push") || !strings.Contains(out, "uf-gk") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
}

func TestFiguresRunSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("figures are timing sweeps")
	}
	cfg := FigConfig{Threads: []int{1, 2}, RMFa: 4, RMFb: 4, Parts: 8, Points: 200, MeshN: 12, Seed: 1}
	for name, f := range map[string]func(FigConfig) (Figure, error){
		"fig10": Fig10, "fig11": Fig11, "fig12": Fig12,
	} {
		fig, err := f(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(fig.Series) < 2 {
			t.Errorf("%s: %d series", name, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Seconds) != len(cfg.Threads) {
				t.Errorf("%s/%s: %d points", name, s.Name, len(s.Seconds))
			}
			for _, sec := range s.Seconds {
				if sec <= 0 {
					t.Errorf("%s/%s: non-positive time", name, s.Name)
				}
			}
		}
		if out := fig.String(); !strings.Contains(out, "threads") {
			t.Errorf("%s: rendering:\n%s", name, out)
		}
	}
}

func TestModelSelection(t *testing.T) {
	// The paper's three cases: (1) lower overhead beats higher
	// parallelism when o_l/a_l < o_h/a_h; (2) with few processors the
	// low-overhead scheme wins once a_l >> p; (3) a scheme with both
	// higher parallelism and lower overhead always wins.
	l := ModelEntry{Name: "low", Overhead: 1.1, Parallelism: 20}
	h := ModelEntry{Name: "high", Overhead: 5.0, Parallelism: 2000}
	// p = 8: both have a ≥ p, so overhead decides.
	if SelectScheme([]ModelEntry{l, h}, 8) != 0 {
		t.Error("at p=8 the low-overhead scheme should win")
	}
	// p = 1000: high parallelism pays off (1.1/20 > 5/1000).
	if SelectScheme([]ModelEntry{l, h}, 1000) != 1 {
		t.Error("at p=1000 the high-parallelism scheme should win")
	}
	both := ModelEntry{Name: "both", Overhead: 1.05, Parallelism: 3000}
	if SelectScheme([]ModelEntry{l, h, both}, 64) != 2 {
		t.Error("dominating scheme should always win")
	}
	out := FormatModel([]ModelEntry{l, h}, []int{4, 1000})
	if !strings.Contains(out, "*") {
		t.Errorf("model rendering lacks winner marks:\n%s", out)
	}
}

func TestModelFromTable1(t *testing.T) {
	rows := []Table1Row{
		{App: "Preflow-push", Variant: "ml", Parallelism: 100, Overhead: 5},
		{App: "Preflow-push", Variant: "part", Parallelism: 25, Overhead: 1.1},
		{App: "Boruvka", Variant: "uf-gk", Parallelism: 50, Overhead: 1.3},
	}
	entries := ModelFromTable1(rows, "Preflow-push")
	if len(entries) != 2 || entries[0].Name != "ml" {
		t.Errorf("entries = %+v", entries)
	}
}

func TestSeriesSpeedups(t *testing.T) {
	s := Series{Name: "x", Threads: []int{1, 2}, Seconds: []float64{2, 1}}
	sp := s.Speedups(2)
	if sp[0] != 1 || sp[1] != 2 {
		t.Errorf("speedups = %v", sp)
	}
}
