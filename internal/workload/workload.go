// Package workload generates the evaluation inputs of §5: GENRMF-style
// synthetic max-flow networks (the paper pulls a GENRMF challenge input
// from [1]), uniform random point clouds for clustering, random meshes
// and graphs for Borůvka, and the set microbenchmark's operation streams
// (distinct elements vs. k equivalence classes). All generators are
// seeded and deterministic.
package workload

import (
	"math/rand"

	"commlat/internal/adt/flowgraph"
	"commlat/internal/adt/kdtree"
)

// GenRMF builds an a×a×b "rectangular mesh flow" network in the style of
// the GENRMF generator: b frames of a×a grids, 4-connected inside each
// frame with large capacities (c2·a·a), and a random one-to-one matching
// between consecutive frames with capacities drawn uniformly from
// [c1, c2]. The source is the first corner of the first frame, the sink
// the last corner of the last frame.
func GenRMF(a, b int, c1, c2 int64, seed int64) *flowgraph.Net {
	r := rand.New(rand.NewSource(seed))
	n := a * a * b
	id := func(x, y, f int) int64 { return int64(f*a*a + y*a + x) }
	net := flowgraph.NewNet(n, id(0, 0, 0), id(a-1, a-1, b-1))
	inFrameCap := c2 * int64(a) * int64(a)
	for f := 0; f < b; f++ {
		for y := 0; y < a; y++ {
			for x := 0; x < a; x++ {
				if x+1 < a {
					net.AddEdge(id(x, y, f), id(x+1, y, f), inFrameCap)
					net.AddEdge(id(x+1, y, f), id(x, y, f), inFrameCap)
				}
				if y+1 < a {
					net.AddEdge(id(x, y, f), id(x, y+1, f), inFrameCap)
					net.AddEdge(id(x, y+1, f), id(x, y, f), inFrameCap)
				}
			}
		}
		if f+1 < b {
			perm := r.Perm(a * a)
			for i, j := range perm {
				cap := c1 + r.Int63n(c2-c1+1)
				net.AddEdge(int64(f*a*a+i), int64((f+1)*a*a+j), cap)
			}
		}
	}
	return net
}

// RandomPoints returns n distinct uniform random points in [0, span)³.
func RandomPoints(n int, span float64, seed int64) []kdtree.Point {
	r := rand.New(rand.NewSource(seed))
	seen := make(map[kdtree.Point]bool, n)
	pts := make([]kdtree.Point, 0, n)
	for len(pts) < n {
		p := kdtree.Point{r.Float64() * span, r.Float64() * span, r.Float64() * span}
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
	}
	return pts
}

// Edge is a weighted undirected edge.
type Edge struct {
	U, V int64
	W    float64
}

// Mesh returns the edges of an n×m grid graph with distinct random
// weights (distinct weights make the minimum spanning tree unique, which
// simplifies validation). Nodes are numbered row-major.
func Mesh(n, m int, seed int64) (nodes int, edges []Edge) {
	r := rand.New(rand.NewSource(seed))
	id := func(x, y int) int64 { return int64(y*n + x) }
	used := map[float64]bool{}
	weight := func() float64 {
		for {
			w := r.Float64() * 1000
			if !used[w] {
				used[w] = true
				return w
			}
		}
	}
	for y := 0; y < m; y++ {
		for x := 0; x < n; x++ {
			if x+1 < n {
				edges = append(edges, Edge{U: id(x, y), V: id(x+1, y), W: weight()})
			}
			if y+1 < m {
				edges = append(edges, Edge{U: id(x, y), V: id(x, y+1), W: weight()})
			}
		}
	}
	return n * m, edges
}

// RandomGraph returns a connected random graph: a random spanning tree
// plus extra random edges, all with distinct weights.
func RandomGraph(nodes, extraEdges int, seed int64) []Edge {
	r := rand.New(rand.NewSource(seed))
	used := map[float64]bool{}
	weight := func() float64 {
		for {
			w := r.Float64() * 1000
			if !used[w] {
				used[w] = true
				return w
			}
		}
	}
	var edges []Edge
	perm := r.Perm(nodes)
	for i := 1; i < nodes; i++ {
		j := r.Intn(i)
		edges = append(edges, Edge{U: int64(perm[j]), V: int64(perm[i]), W: weight()})
	}
	for i := 0; i < extraEdges; i++ {
		u, v := int64(r.Intn(nodes)), int64(r.Intn(nodes))
		if u != v {
			edges = append(edges, Edge{U: u, V: v, W: weight()})
		}
	}
	return edges
}

// SetOp is one operation of the set microbenchmark.
type SetOp struct {
	Add bool // true = add, false = contains
	X   int64
}

// SetOpsDistinct returns n operations over n distinct elements — the
// microbenchmark's first input, where element locks never contend.
func SetOpsDistinct(n int, seed int64) []SetOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]SetOp, n)
	for i := range ops {
		ops[i] = SetOp{Add: r.Intn(2) == 0, X: int64(i)}
	}
	return ops
}

// SetOpsClasses returns n operations over elements drawn from k
// equivalence classes — the microbenchmark's second input, where
// repeated elements expose the precision differences between schemes.
func SetOpsClasses(n, k int, seed int64) []SetOp {
	r := rand.New(rand.NewSource(seed))
	ops := make([]SetOp, n)
	for i := range ops {
		ops[i] = SetOp{Add: r.Intn(2) == 0, X: int64(r.Intn(k))}
	}
	return ops
}
