package workload

import (
	"testing"

	"commlat/internal/adt/unionfind"
)

func TestGenRMFStructure(t *testing.T) {
	net := GenRMF(4, 3, 1, 10, 7)
	if net.Len() != 48 {
		t.Fatalf("nodes = %d, want 48", net.Len())
	}
	if net.Source() != 0 || net.Sink() != 47 {
		t.Errorf("src/sink = %d/%d", net.Source(), net.Sink())
	}
	// Every node in frames 0..b-2 has exactly one forward inter-frame
	// arc. In-frame arcs carry capacity c2·a·a = 160, so the inter-frame
	// arcs are exactly those with capacity in [c1, c2] = [1, 10].
	inter := 0
	for u := 0; u < net.Len(); u++ {
		for _, arc := range net.Arcs(int64(u)) {
			if arc.Cap >= 1 && arc.Cap <= 10 {
				inter++
				if int(arc.To)/16 != u/16+1 {
					t.Errorf("inter-frame arc %d→%d does not cross one frame", u, arc.To)
				}
			}
		}
	}
	if inter != 2*16 {
		t.Errorf("inter-frame arcs = %d, want 32", inter)
	}
}

func TestGenRMFDeterministic(t *testing.T) {
	a := GenRMF(3, 3, 1, 10, 5)
	b := GenRMF(3, 3, 1, 10, 5)
	for u := 0; u < a.Len(); u++ {
		aa, ba := a.Arcs(int64(u)), b.Arcs(int64(u))
		if len(aa) != len(ba) {
			t.Fatalf("node %d arc counts differ", u)
		}
		for i := range aa {
			if aa[i] != ba[i] {
				t.Fatalf("node %d arc %d differs", u, i)
			}
		}
	}
}

func TestRandomPointsDistinct(t *testing.T) {
	pts := RandomPoints(500, 10, 3)
	if len(pts) != 500 {
		t.Fatalf("len = %d", len(pts))
	}
	seen := map[[3]float64]bool{}
	for _, p := range pts {
		if seen[p] {
			t.Fatal("duplicate point")
		}
		seen[p] = true
		for i := 0; i < 3; i++ {
			if p[i] < 0 || p[i] >= 10 {
				t.Fatalf("point out of range: %v", p)
			}
		}
	}
}

func TestMeshShape(t *testing.T) {
	nodes, edges := Mesh(4, 3, 1)
	if nodes != 12 {
		t.Fatalf("nodes = %d", nodes)
	}
	// 4x3 grid: 3*3 horizontal + 4*2 vertical = 17 edges.
	if len(edges) != 17 {
		t.Fatalf("edges = %d, want 17", len(edges))
	}
	weights := map[float64]bool{}
	for _, e := range edges {
		if weights[e.W] {
			t.Fatal("duplicate weight")
		}
		weights[e.W] = true
		if e.U == e.V || e.U < 0 || e.V >= 12 {
			t.Errorf("bad edge %+v", e)
		}
	}
}

func TestRandomGraphConnected(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		edges := RandomGraph(30, 20, seed)
		f := unionfind.NewForest(30)
		for _, e := range edges {
			f.Union(e.U, e.V)
		}
		if f.Sets() != 1 {
			t.Errorf("seed %d: graph not connected (%d components)", seed, f.Sets())
		}
	}
}

func TestSetOpsDistinct(t *testing.T) {
	ops := SetOpsDistinct(100, 1)
	seen := map[int64]bool{}
	for _, op := range ops {
		if seen[op.X] {
			t.Fatal("repeated element in distinct stream")
		}
		seen[op.X] = true
	}
}

func TestSetOpsClasses(t *testing.T) {
	ops := SetOpsClasses(1000, 7, 1)
	for _, op := range ops {
		if op.X < 0 || op.X >= 7 {
			t.Fatalf("element %d outside 7 classes", op.X)
		}
	}
	adds := 0
	for _, op := range ops {
		if op.Add {
			adds++
		}
	}
	if adds < 300 || adds > 700 {
		t.Errorf("add fraction skewed: %d/1000", adds)
	}
}
