// Latency attribution: per-worker log2-bucketed histograms of the time
// an admission spends in each cascade stage. The paper's economics
// argument (§5) is about *where* a detector's nanoseconds go — a cheap
// filter is only cheap if its misses are fast and its hits don't pay
// the filter again — so the histograms are keyed by pipeline stage, not
// by detector: signature filter, optimistic index, precise check, shard
// rendezvous, batch publish/probe, commit/release.
//
// The recording discipline mirrors the event tracer: off by default
// (LatClock is one atomic load returning 0, and a 0 start mark makes
// every later StageObserve a no-op), and allocation-free when on. A
// stage observation is two atomic adds into a per-worker shard of a
// fixed [stage][bucket] array; buckets are powers of two of
// nanoseconds, so bucketing is one bits.Len64. Export merges the shards
// lock-free (plain atomic loads, no stop-the-world) into one histogram
// per stage plus an interpolated percentile table.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Stage identifies one admission-pipeline stage boundary.
type Stage uint8

// Pipeline stages, in cascade order. StageCommit covers commit/release
// (slot retirement, undo-log disposal) regardless of which detector
// admitted the transaction.
const (
	StageSigFilter    Stage = iota // stage 1: conflict-signature filter publish+probe
	StageOptIndex                  // stage 2: optimistic seqlock slot-index scan
	StagePrecise                   // stage 3: precise compiled pair check
	StageRendezvous                // cross-shard ticket rendezvous (sharded router)
	StageBatchPublish              // batched admission: group publish phase
	StageBatchProbe                // batched admission: combined probe + screen phase
	StageCommit                    // commit/release: slot retirement + undo disposal
	NumStages
)

// stageNames are the export spellings, index-aligned with the constants.
var stageNames = [NumStages]string{
	"sig_filter", "opt_index", "precise", "rendezvous",
	"batch_publish", "batch_probe", "commit_release",
}

// String returns the export spelling of the stage.
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

const (
	// latShards is the number of per-worker histogram shards. Worker IDs
	// are masked into the range, like the tracer's rings: with fewer
	// than 64 workers every worker owns its shard and the atomic adds
	// never contend.
	latShards = 64

	// latBuckets is the number of log2(ns) buckets per stage. Bucket 0
	// holds sub-nanosecond (clamped) durations; bucket k holds
	// [2^(k-1), 2^k) ns, so 40 buckets reach ~9 minutes — far beyond
	// any admission — and the top bucket absorbs the rest.
	latBuckets = 40
)

// latShard is one worker's histogram block, padded so neighbouring
// workers' adds don't share cache lines.
type latShard struct {
	counts [NumStages][latBuckets]atomic.Uint64
	sums   [NumStages]atomic.Uint64
	_      [64]byte
}

// latencyRec is the process-wide latency recorder. The shard arrays are
// fixed-size (no buffers to allocate or free), so enable/disable only
// toggles the gate and zeroes counters.
type latencyRec struct {
	enabled atomic.Bool
	shards  [latShards]latShard
}

var lr latencyRec

// latBase anchors the monotonic stage clock. time.Since reads the
// runtime's monotonic clock without allocating.
var latBase = time.Now()

// EnableLatency zeroes the stage histograms and starts recording.
func EnableLatency() {
	lr.enabled.Store(false)
	for i := range lr.shards {
		sh := &lr.shards[i]
		for s := 0; s < int(NumStages); s++ {
			sh.sums[s].Store(0)
			for b := 0; b < latBuckets; b++ {
				sh.counts[s][b].Store(0)
			}
		}
	}
	lr.enabled.Store(true)
}

// DisableLatency stops recording. The histograms keep their counts
// until the next EnableLatency, so a snapshot after disabling still
// sees the run.
func DisableLatency() { lr.enabled.Store(false) }

// LatencyEnabled reports whether stage-latency recording is on.
//
//commvet:gate
func LatencyEnabled() bool { return lr.enabled.Load() }

// LatClock returns a start mark for stage timing: 0 when recording is
// off (the whole instrumentation collapses to this one atomic load),
// otherwise nanoseconds on the monotonic clock.
func LatClock() int64 {
	if !lr.enabled.Load() {
		return 0
	}
	return int64(time.Since(latBase))
}

// StageObserve records the duration from mark start to now against the
// stage and returns the new mark, so consecutive stages chain:
//
//	t := telemetry.LatClock()
//	... stage 1 ...
//	t = telemetry.StageObserve(w, telemetry.StageSigFilter, t)
//	... stage 2 ...
//	t = telemetry.StageObserve(w, telemetry.StageOptIndex, t)
//
// A 0 start (recording off at LatClock time) is a no-op returning 0.
//
// The start mark is the gate: unlike Emit or StageRecord, call sites
// need no enabled-check of their own (the arguments are scalars already
// in hand, and the chain collapses to compare-and-return when off), so
// this is deliberately not a //commvet:observation.
func StageObserve(worker int, st Stage, start int64) int64 {
	if start == 0 {
		return 0
	}
	now := int64(time.Since(latBase))
	StageRecord(worker, st, now-start)
	return now
}

// StageRecord adds one duration (nanoseconds) to a stage histogram
// directly, for call sites that measured the interval themselves.
//
//commvet:observation
func StageRecord(worker int, st Stage, d int64) {
	if d < 0 {
		d = 0
	}
	sh := &lr.shards[worker&(latShards-1)]
	sh.counts[st][latBucket(uint64(d))].Add(1)
	sh.sums[st].Add(uint64(d))
}

// latBucket maps a duration to its log2 bucket: 0ns → 0, and
// [2^(k-1), 2^k) → k, clamped to the top bucket.
func latBucket(d uint64) int {
	b := bits.Len64(d)
	if b >= latBuckets {
		b = latBuckets - 1
	}
	return b
}

// --- Snapshot and percentiles --------------------------------------------

// LatBucketCount is one non-empty histogram bucket: Count observations
// at most LeNS nanoseconds (upper bound inclusive, 2^k - 1).
type LatBucketCount struct {
	LeNS  uint64 `json:"le_ns"`
	Count uint64 `json:"count"`
}

// StageLatency is one stage's merged histogram and percentile row.
type StageLatency struct {
	Stage   string           `json:"stage"`
	Count   uint64           `json:"count"`
	SumNS   uint64           `json:"sum_ns"`
	P50NS   float64          `json:"p50_ns"`
	P90NS   float64          `json:"p90_ns"`
	P99NS   float64          `json:"p99_ns"`
	P999NS  float64          `json:"p999_ns"`
	Buckets []LatBucketCount `json:"buckets,omitempty"`
}

// LatencySnapshot is the merged view of every stage histogram, for the
// percentile endpoints and the flightrec subcommand.
type LatencySnapshot struct {
	Enabled bool           `json:"enabled"`
	Stages  []StageLatency `json:"stages"`
}

// mergeStage sums one stage's histogram across worker shards with plain
// atomic loads — no locks, no quiescence; the result is the same
// monitoring-grade cut as the counter snapshots.
func mergeStage(st Stage) (buckets [latBuckets]uint64, count, sum uint64) {
	for i := range lr.shards {
		sh := &lr.shards[i]
		sum += sh.sums[st].Load()
		for b := 0; b < latBuckets; b++ {
			c := sh.counts[st][b].Load()
			buckets[b] += c
			count += c
		}
	}
	return
}

// latQuantile interpolates quantile q from a log2 histogram. Within the
// bucket that crosses the target rank the interpolation is geometric
// (the bucket spans one octave, so equal log-steps are the natural
// prior), matching how Prometheus-style consumers read log histograms.
func latQuantile(buckets *[latBuckets]uint64, count uint64, q float64) float64 {
	if count == 0 {
		return 0
	}
	target := q * float64(count)
	cum := 0.0
	for b := 0; b < latBuckets; b++ {
		c := float64(buckets[b])
		if c == 0 {
			continue
		}
		if cum+c >= target {
			frac := (target - cum) / c
			if b == 0 {
				return 0
			}
			lo := math.Exp2(float64(b - 1)) // bucket b spans [2^(b-1), 2^b)
			return lo * math.Exp2(frac)
		}
		cum += c
	}
	return math.Exp2(float64(latBuckets - 1))
}

// SnapshotLatency merges the per-worker histograms into one row per
// stage (stages with no observations are omitted).
func SnapshotLatency() LatencySnapshot {
	s := LatencySnapshot{Enabled: lr.enabled.Load()}
	for st := Stage(0); st < NumStages; st++ {
		buckets, count, sum := mergeStage(st)
		if count == 0 {
			continue
		}
		row := StageLatency{
			Stage:  st.String(),
			Count:  count,
			SumNS:  sum,
			P50NS:  latQuantile(&buckets, count, 0.50),
			P90NS:  latQuantile(&buckets, count, 0.90),
			P99NS:  latQuantile(&buckets, count, 0.99),
			P999NS: latQuantile(&buckets, count, 0.999),
		}
		for b := 0; b < latBuckets; b++ {
			if buckets[b] != 0 {
				le := uint64(1)<<uint(b) - 1 // bucket b's inclusive upper bound
				row.Buckets = append(row.Buckets, LatBucketCount{LeNS: le, Count: buckets[b]})
			}
		}
		s.Stages = append(s.Stages, row)
	}
	return s
}
