package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// --- Chrome trace_event JSON ---------------------------------------------

// chromeEvent is one record of the Chrome trace_event format (the JSON
// consumed by chrome://tracing and Perfetto). Timestamps are
// microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders events as Chrome trace_event JSON: each
// transaction becomes one complete ("X") slice from its begin event to
// its commit or abort on the worker's track, conflicts and decisions
// become instant events, and unpaired lifecycle events degrade to
// instants, so hand-driven transactions without begin events still
// load. Load the output in chrome://tracing or ui.perfetto.dev.
func (r *Registry) WriteChromeTrace(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	write := func(ce chromeEvent) error {
		if !first {
			if _, err := io.WriteString(bw, ",\n"); err != nil {
				return err
			}
		}
		first = false
		return encodeInline(bw, ce)
	}

	type beginRec struct {
		ts   int64
		item int64
		tid  int
	}
	pending := map[uint64]beginRec{}
	var order []uint64 // pending begin txs in arrival order, for a deterministic flush
	workers := map[int]bool{}

	for _, e := range evs {
		tid := int(e.Worker)
		workers[tid] = true
		switch e.Kind {
		case EvBegin:
			if _, dup := pending[e.Tx]; !dup {
				order = append(order, e.Tx)
			}
			pending[e.Tx] = beginRec{ts: e.TS, item: e.Item, tid: tid}
		case EvCommit, EvAbort:
			outcome := "commit"
			if e.Kind == EvAbort {
				outcome = "abort"
			}
			if b, ok := pending[e.Tx]; ok {
				delete(pending, e.Tx)
				if err := write(chromeEvent{
					Name: "tx", Ph: "X", TS: us(b.ts), Dur: us(e.TS - b.ts),
					PID: 1, TID: b.tid,
					Args: map[string]any{"tx": e.Tx, "item": b.item, "outcome": outcome},
				}); err != nil {
					return err
				}
			} else if err := write(chromeEvent{
				Name: outcome, Ph: "i", TS: us(e.TS), PID: 1, TID: tid, Scope: "t",
				Args: map[string]any{"tx": e.Tx, "item": e.Item},
			}); err != nil {
				return err
			}
		case EvConflict:
			name := "conflict"
			if m1, m2 := r.label(e.Det, e.M1), r.label(e.Det, e.M2); m1 != "" || m2 != "" {
				name = "conflict " + m1 + "/" + m2
			}
			if err := write(chromeEvent{
				Name: name, Ph: "i", TS: us(e.TS), PID: 1, TID: tid, Scope: "t",
				Args: map[string]any{
					"tx": e.Tx, "item": e.Item, "detector": r.detName(e.Det),
					"m1": r.label(e.Det, e.M1), "m2": r.label(e.Det, e.M2),
				},
			}); err != nil {
				return err
			}
		case EvDecision:
			if err := write(chromeEvent{
				Name: "decision " + r.label(e.Det, e.M1) + "→" + r.label(e.Det, e.M2),
				Ph:   "i", TS: us(e.TS), PID: 1, TID: tid, Scope: "g",
				Args: map[string]any{"detector": r.detName(e.Det), "epoch": e.Item},
			}); err != nil {
				return err
			}
		}
	}
	// Transactions still open when the trace was cut: flush as instants.
	for _, tx := range order {
		b, ok := pending[tx]
		if !ok {
			continue
		}
		if err := write(chromeEvent{
			Name: "begin (open)", Ph: "i", TS: us(b.ts), PID: 1, TID: b.tid, Scope: "t",
			Args: map[string]any{"tx": tx, "item": b.item},
		}); err != nil {
			return err
		}
	}
	// Name the worker tracks.
	tids := make([]int, 0, len(workers))
	for tid := range workers {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		if err := write(chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", tid)},
		}); err != nil {
			return err
		}
	}
	if _, err := io.WriteString(bw, "\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// us converts trace nanoseconds to trace_event microseconds.
func us(ns int64) float64 { return float64(ns) / 1e3 }

// encodeInline writes one JSON object without a trailing newline,
// keeping the array layout one-event-per-line.
func encodeInline(bw *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = bw.Write(b)
	return err
}

// --- JSONL ----------------------------------------------------------------

// jsonlEvent is the one-object-per-line schema scripts/tracecheck
// validates.
type jsonlEvent struct {
	TS       int64  `json:"ts_ns"`
	Kind     string `json:"kind"`
	Worker   int    `json:"worker"`
	Tx       uint64 `json:"tx,omitempty"`
	Item     int64  `json:"item,omitempty"`
	Detector string `json:"detector,omitempty"`
	M1       string `json:"m1,omitempty"`
	M2       string `json:"m2,omitempty"`
	Epoch    int64  `json:"epoch,omitempty"`
}

// WriteJSONL renders events one JSON object per line, resolving
// detector and label IDs to names through the registry.
func (r *Registry) WriteJSONL(w io.Writer, evs []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range evs {
		je := jsonlEvent{TS: e.TS, Kind: e.Kind.String(), Worker: int(e.Worker), Tx: e.Tx}
		switch e.Kind {
		case EvConflict:
			je.Item = e.Item
			je.Detector = r.detName(e.Det)
			je.M1, je.M2 = r.label(e.Det, e.M1), r.label(e.Det, e.M2)
		case EvDecision:
			je.Epoch = e.Item
			je.Detector = r.detName(e.Det)
			je.M1, je.M2 = r.label(e.Det, e.M1), r.label(e.Det, e.M2)
		default:
			je.Item = e.Item
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- Attribution table ----------------------------------------------------

// FormatAttribution renders the per-method-pair (and per-mode) conflict
// attribution of every detector that saw work: for each, pairs sorted
// by conflicts, with each pair's share of the detector's conflicts —
// the "92% of aborts were add/remove" view the lattice argument needs.
func FormatAttribution(s Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "engine: %d begun, %d committed, %d aborted\n",
		s.Engine.TxBegun, s.Engine.TxCommitted, s.Engine.TxAborted)
	for _, d := range s.Detectors {
		if d.Invocations == 0 && d.Checks == 0 && d.Conflicts == 0 && len(d.Modes) == 0 &&
			d.ShardLocal == 0 && d.ShardCross == 0 {
			continue
		}
		fmt.Fprintf(&b, "\ndetector %s/%s (#%d): %d invocations, %d checks, %d conflicts",
			d.Kind, d.ADT, d.ID, d.Invocations, d.Checks, d.Conflicts)
		if d.Probes > 0 || d.FallbackScans > 0 {
			fmt.Fprintf(&b, "; index %d probes, %d collisions, %d fallback scans",
				d.Probes, d.Collisions, d.FallbackScans)
		}
		if d.FastAdmits > 0 || d.FilterHits > 0 || d.CascadeFallbacks > 0 {
			fmt.Fprintf(&b, "; cascade %d fast admits, %d filter hits, %d opt scans, %d retries, %d fallbacks",
				d.FastAdmits, d.FilterHits, d.OptScans, d.OptRetries, d.CascadeFallbacks)
		}
		if d.BatchesWhole > 0 || d.BatchesSplit > 0 || d.BatchesSerial > 0 {
			fmt.Fprintf(&b, "; batches %d whole, %d split, %d serialized",
				d.BatchesWhole, d.BatchesSplit, d.BatchesSerial)
		}
		if d.ShardLocal > 0 || d.ShardCross > 0 {
			rate := 0.0
			if t := d.ShardLocal + d.ShardCross; t > 0 {
				rate = 100 * float64(d.ShardCross) / float64(t)
			}
			fmt.Fprintf(&b, "; sharding %d local, %d crossing (%.1f%% crossing)",
				d.ShardLocal, d.ShardCross, rate)
		}
		if d.Shard > 0 {
			fmt.Fprintf(&b, " [shard %d]", d.Shard)
		}
		if d.Rollbacks > 0 {
			fmt.Fprintf(&b, "; %d rollbacks", d.Rollbacks)
		}
		if d.ActiveHighWater > 0 {
			fmt.Fprintf(&b, "; active high-water %d", d.ActiveHighWater)
		}
		if d.JournalHighWater > 0 {
			fmt.Fprintf(&b, "; journal high-water %d", d.JournalHighWater)
		}
		b.WriteString("\n")
		if len(d.Pairs) > 0 {
			pairs := append([]PairStat(nil), d.Pairs...)
			sort.Slice(pairs, func(i, j int) bool {
				if pairs[i].Conflicts != pairs[j].Conflicts {
					return pairs[i].Conflicts > pairs[j].Conflicts
				}
				if pairs[i].Checks != pairs[j].Checks {
					return pairs[i].Checks > pairs[j].Checks
				}
				return pairs[i].M1+"/"+pairs[i].M2 < pairs[j].M1+"/"+pairs[j].M2
			})
			fmt.Fprintf(&b, "  %-24s %12s %12s %9s\n", "pair (active/incoming)", "checks", "conflicts", "% aborts")
			for _, p := range pairs {
				share := 0.0
				if d.Conflicts > 0 {
					share = 100 * float64(p.Conflicts) / float64(d.Conflicts)
				}
				fmt.Fprintf(&b, "  %-24s %12d %12d %8.1f%%\n", p.M1+"/"+p.M2, p.Checks, p.Conflicts, share)
			}
		}
		if len(d.Modes) > 0 {
			fmt.Fprintf(&b, "  %-24s %12s %12s\n", "mode", "acquired", "waits")
			for _, m := range d.Modes {
				fmt.Fprintf(&b, "  %-24s %12d %12d\n", m.Mode, m.Acquired, m.Waits)
			}
		}
	}
	return b.String()
}

// TopPair returns the detector's most conflict-heavy pair and its share
// of the detector's conflicts, or ok=false if it saw none.
func (d DetectorSnapshot) TopPair() (label string, share float64, ok bool) {
	var best PairStat
	for _, p := range d.Pairs {
		if p.Conflicts > best.Conflicts {
			best = p
		}
	}
	if best.Conflicts == 0 || d.Conflicts == 0 {
		return "", 0, false
	}
	return best.M1 + "/" + best.M2, 100 * float64(best.Conflicts) / float64(d.Conflicts), true
}

// --- Prometheus text ------------------------------------------------------

// WritePrometheus renders the registry's counters in the Prometheus
// text exposition format (the /metrics payload).
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	bw := bufio.NewWriter(w)
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }

	p("# HELP commlat_tx_total Transactions by outcome.\n# TYPE commlat_tx_total counter\n")
	p("commlat_tx_total{outcome=\"begun\"} %d\n", s.Engine.TxBegun)
	p("commlat_tx_total{outcome=\"committed\"} %d\n", s.Engine.TxCommitted)
	p("commlat_tx_total{outcome=\"aborted\"} %d\n", s.Engine.TxAborted)

	counter := func(name, help string, get func(DetectorSnapshot) uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, d := range s.Detectors {
			if v := get(d); v != 0 {
				p("%s{detector=%q,id=\"%d\"} %d\n", name, d.Kind+"/"+d.ADT, d.ID, v)
			}
		}
	}
	counter("commlat_detector_invocations_total", "Guarded invocations processed.", func(d DetectorSnapshot) uint64 { return d.Invocations })
	counter("commlat_detector_checks_total", "Pairwise commutativity conditions evaluated.", func(d DetectorSnapshot) uint64 { return d.Checks })
	counter("commlat_detector_conflicts_total", "Invocations rejected.", func(d DetectorSnapshot) uint64 { return d.Conflicts })
	counter("commlat_detector_rollbacks_total", "Journal rollback sweeps.", func(d DetectorSnapshot) uint64 { return d.Rollbacks })
	counter("commlat_detector_log_entries_total", "Primitive-function results logged.", func(d DetectorSnapshot) uint64 { return d.LogEntries })
	counter("commlat_detector_index_probes_total", "Disequality-index probes.", func(d DetectorSnapshot) uint64 { return d.Probes })
	counter("commlat_detector_index_collisions_total", "Entries surfaced by probes.", func(d DetectorSnapshot) uint64 { return d.Collisions })
	counter("commlat_detector_index_fallback_scans_total", "Full active-list scans.", func(d DetectorSnapshot) uint64 { return d.FallbackScans })
	counter("commlat_cascade_fast_admits_total", "Invocations admitted by the signature filter alone.", func(d DetectorSnapshot) uint64 { return d.FastAdmits })
	counter("commlat_cascade_filter_hits_total", "Signature-filter hits that fell through to the optimistic path.", func(d DetectorSnapshot) uint64 { return d.FilterHits })
	counter("commlat_cascade_opt_scans_total", "Optimistic lock-free chain scans.", func(d DetectorSnapshot) uint64 { return d.OptScans })
	counter("commlat_cascade_opt_retries_total", "Version-stamp races retried on the optimistic path.", func(d DetectorSnapshot) uint64 { return d.OptRetries })
	counter("commlat_cascade_fallbacks_total", "Invocations through the mutex-guarded overflow path.", func(d DetectorSnapshot) uint64 { return d.CascadeFallbacks })
	counter("commlat_batches_whole_total", "Admission batches admitted whole.", func(d DetectorSnapshot) uint64 { return d.BatchesWhole })
	counter("commlat_batches_split_total", "Admission batches split into a grouped prefix and a serialized rest.", func(d DetectorSnapshot) uint64 { return d.BatchesSplit })
	counter("commlat_batches_serialized_total", "Admission batches fully serialized.", func(d DetectorSnapshot) uint64 { return d.BatchesSerial })
	counter("commlat_shard_local_total", "Admissions routed to a single shard.", func(d DetectorSnapshot) uint64 { return d.ShardLocal })
	counter("commlat_shard_cross_total", "Admissions that crossed shards (rendezvous).", func(d DetectorSnapshot) uint64 { return d.ShardCross })

	p("# HELP commlat_detector_active_high_water Peak active-log size.\n# TYPE commlat_detector_active_high_water gauge\n")
	for _, d := range s.Detectors {
		if d.ActiveHighWater != 0 {
			p("commlat_detector_active_high_water{detector=%q,id=\"%d\"} %d\n", d.Kind+"/"+d.ADT, d.ID, d.ActiveHighWater)
		}
	}
	p("# HELP commlat_pair_conflicts_total Conflicts by (active, incoming) label pair.\n# TYPE commlat_pair_conflicts_total counter\n")
	for _, d := range s.Detectors {
		for _, pr := range d.Pairs {
			if pr.Conflicts != 0 {
				p("commlat_pair_conflicts_total{detector=%q,id=\"%d\",m1=%q,m2=%q} %d\n",
					d.Kind+"/"+d.ADT, d.ID, pr.M1, pr.M2, pr.Conflicts)
			}
		}
	}
	p("# HELP commlat_mode_acquired_total Lock-mode acquisitions.\n# TYPE commlat_mode_acquired_total counter\n")
	p("# HELP commlat_mode_waits_total Failed (would-block) lock-mode acquisitions.\n# TYPE commlat_mode_waits_total counter\n")
	for _, d := range s.Detectors {
		for _, m := range d.Modes {
			if m.Acquired != 0 {
				p("commlat_mode_acquired_total{detector=%q,id=\"%d\",mode=%q} %d\n", d.Kind+"/"+d.ADT, d.ID, m.Mode, m.Acquired)
			}
			if m.Waits != 0 {
				p("commlat_mode_waits_total{detector=%q,id=\"%d\",mode=%q} %d\n", d.Kind+"/"+d.ADT, d.ID, m.Mode, m.Waits)
			}
		}
	}
	promLatency(bw)
	return bw.Flush()
}
