// Package telemetry is the runtime's zero-allocation instrumentation
// layer: per-detector conflict-attribution counters, engine transaction
// counters, a per-worker ring-buffer event trace, and exporters (Chrome
// trace_event JSON, JSONL, Prometheus text, expvar).
//
// The paper's whole argument (§5) is that a specification's position on
// the commutativity lattice shows up as measurable abort ratios and
// overheads. This package makes those quantities observable per method
// pair, lock mode and detector instead of as two aggregate numbers: a
// run can report "92% of aborts were add/remove" and time-stamped
// begin/commit/abort/conflict events, without perturbing the hot paths
// it measures.
//
// Design constraints:
//
//   - Counters are fixed-slot atomic arrays indexed by compiled method
//     (or mode) IDs assigned at detector construction; the hot path
//     performs array-indexed atomic adds only, never a map lookup or an
//     allocation.
//   - Event tracing is off by default. Disabled, an emission is one
//     atomic load; enabled, it is a couple of mutex-guarded stores into
//     a preallocated per-worker ring — still allocation-free.
//   - The package depends only on the standard library, so every layer
//     (engine, gatekeepers, lock manager, adaptive controller) can use
//     it without import cycles.
package telemetry

import (
	"sync"
	"sync/atomic"
)

// maxDetectors caps how many detector instances the registry lists.
// Detectors registered past the cap still count (their arrays work);
// they are just absent from snapshots and exports — a backstop against
// unbounded registry growth in fuzzers and long benchmark sweeps that
// construct detectors in a loop.
const maxDetectors = 4096

// Registry tracks live detector instances for snapshotting and export.
// The process-wide Default registry is what the engine, gatekeepers and
// CLI use; tests build private registries for deterministic output.
type Registry struct {
	mu   sync.Mutex
	dets []*Detector

	// Engine-level transaction counters (process-wide on Default).
	txBegun     atomic.Uint64
	txCommitted atomic.Uint64
	txAborted   atomic.Uint64
}

// Default is the process-wide registry.
var Default = NewRegistry()

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Detector holds the fixed-slot counters of one conflict-detector
// instance. Labels are the detector's vocabulary: method names for
// gatekeepers, lock-mode names for abstract-lock managers, rung names
// for the adaptive controller. Pair counters are indexed
// labelID1*n + labelID2; IDs are positions in the label list, compiled
// into the detector's plans at construction time.
type Detector struct {
	id     uint16
	kind   string // "forward", "general", "abslock", "adaptive", ...
	adt    string // guarded ADT / scheme name
	labels []string
	n      int

	invocations atomic.Uint64
	checks      atomic.Uint64
	conflicts   atomic.Uint64
	rollbacks   atomic.Uint64
	logEntries  atomic.Uint64
	probes      atomic.Uint64
	collisions  atomic.Uint64
	fallbacks   atomic.Uint64
	activeHW    atomic.Int64 // active-log size high-water mark
	journalHW   atomic.Int64 // journal length high-water mark

	// Cascade stage counters (lattice-cascade detectors only): how far
	// down the filter pipeline each invocation had to fall.
	fastAdmits  atomic.Uint64 // stage 1: signature-filter misses admitted lock-free
	filterHits  atomic.Uint64 // stage 1 hits that fell through to stage 2
	optScans    atomic.Uint64 // stage 2: optimistic lock-free bucket/chain scans
	optRetries  atomic.Uint64 // stage 2: version-stamp races retried or re-pinned
	cascadeSlow atomic.Uint64 // stage 3 fallbacks through the overflow mutex path

	// Batch admission counters (batched detectors only): how each
	// admission batch fared as a group.
	batchWhole  atomic.Uint64 // batches admitted whole (every member grouped)
	batchSplit  atomic.Uint64 // batches split (a prefix grouped, the rest serialized)
	batchSerial atomic.Uint64 // batches fully serialized (no member grouped)

	// Shard routing counters (sharded detectors only). On a router
	// detector, shardLocal/shardCross classify admissions by whether
	// every key landed in one shard; shard (1-based, set once at
	// construction) marks a per-shard member detector's position.
	shard      atomic.Int64
	shardLocal atomic.Uint64 // admissions routed to a single shard
	shardCross atomic.Uint64 // admissions that crossed shards (rendezvous)

	pairChecks    []atomic.Uint64 // n*n, by (first, second) label ID
	pairConflicts []atomic.Uint64 // n*n
	acquired      []atomic.Uint64 // n, per label (lock modes)
	waits         []atomic.Uint64 // n, failed acquisitions per label
}

// Register creates a detector with the given vocabulary on the Default
// registry.
func Register(kind, adt string, labels []string) *Detector {
	return Default.Register(kind, adt, labels)
}

// Register creates a detector with the given vocabulary. The returned
// detector's counter methods are safe for concurrent use immediately.
func (r *Registry) Register(kind, adt string, labels []string) *Detector {
	n := len(labels)
	d := &Detector{
		kind:          kind,
		adt:           adt,
		labels:        labels,
		n:             n,
		pairChecks:    make([]atomic.Uint64, n*n),
		pairConflicts: make([]atomic.Uint64, n*n),
		acquired:      make([]atomic.Uint64, n),
		waits:         make([]atomic.Uint64, n),
	}
	r.mu.Lock()
	if len(r.dets) < maxDetectors {
		d.id = uint16(len(r.dets) + 1) // ID 0 is reserved for the engine
		r.dets = append(r.dets, d)
	}
	r.mu.Unlock()
	return d
}

// ID returns the detector's registry ID (0 if unlisted).
func (d *Detector) ID() uint16 { return d.id }

// Kind returns the detector kind ("forward", "general", "abslock", ...).
func (d *Detector) Kind() string { return d.kind }

// ADT returns the guarded ADT or scheme name.
func (d *Detector) ADT() string { return d.adt }

// Labels returns the detector's label vocabulary (method/mode names).
func (d *Detector) Labels() []string { return d.labels }

// IncInvocation counts one guarded invocation.
func (d *Detector) IncInvocation() { d.invocations.Add(1) }

// IncLogEntry counts one logged primitive-function result.
func (d *Detector) IncLogEntry() { d.logEntries.Add(1) }

// IncRollback counts one journal rollback sweep.
func (d *Detector) IncRollback() { d.rollbacks.Add(1) }

// IncProbe counts one indexed pair lookup.
func (d *Detector) IncProbe() { d.probes.Add(1) }

// IncCollision counts one active entry surfaced by a probe.
func (d *Detector) IncCollision() { d.collisions.Add(1) }

// IncFallbackScan counts one full active-list scan.
func (d *Detector) IncFallbackScan() { d.fallbacks.Add(1) }

// CascadeFastAdmit counts one invocation admitted by the signature
// filter alone (stage 1 miss, zero locks taken).
func (d *Detector) CascadeFastAdmit() { d.fastAdmits.Add(1) }

// CascadeFilterHit counts one signature-filter hit that fell through
// to the optimistic read path.
func (d *Detector) CascadeFilterHit() { d.filterHits.Add(1) }

// CascadeScan counts one optimistic lock-free scan of a bucket or
// method chain (stage 2).
func (d *Detector) CascadeScan() { d.optScans.Add(1) }

// CascadeRetry counts one version-stamp race on the optimistic read
// path: a chain traversal restarted or a pin attempt respun.
func (d *Detector) CascadeRetry() { d.optRetries.Add(1) }

// CascadeFallback counts one invocation that took the mutex-guarded
// overflow path (slot table exhausted or conflict keys unhashable).
func (d *Detector) CascadeFallback() { d.cascadeSlow.Add(1) }

// CascadeFastAdmitN counts n invocations admitted by the signature
// filter alone in one batch probe (one atomic add for the group).
func (d *Detector) CascadeFastAdmitN(n int) {
	if n > 0 {
		d.fastAdmits.Add(uint64(n))
	}
}

// IncInvocationN counts n guarded invocations arriving as one batch.
func (d *Detector) IncInvocationN(n int) {
	if n > 0 {
		d.invocations.Add(uint64(n))
	}
}

// BatchWhole counts one admission batch whose every member was admitted
// as a group.
func (d *Detector) BatchWhole() { d.batchWhole.Add(1) }

// BatchSplit counts one admission batch that admitted a non-empty
// prefix as a group and serialized the rest.
func (d *Detector) BatchSplit() { d.batchSplit.Add(1) }

// BatchSerialized counts one admission batch that admitted no member as
// a group (the whole batch ran the serial path).
func (d *Detector) BatchSerialized() { d.batchSerial.Add(1) }

// SetShard marks a per-shard member detector's 1-based position inside
// a sharded router (0 = not a shard member). Called once at
// construction, before the detector sees traffic.
func (d *Detector) SetShard(i int) { d.shard.Store(int64(i)) }

// ShardLocal counts one admission whose keys all landed in one shard
// (the contention-free single-writer path).
func (d *Detector) ShardLocal() { d.shardLocal.Add(1) }

// ShardLocalN counts n single-shard admissions arriving as one batch
// run (one atomic add for the group).
func (d *Detector) ShardLocalN(n int) {
	if n > 0 {
		d.shardLocal.Add(uint64(n))
	}
}

// ShardCross counts one admission whose keys straddled shards (or whose
// method is not key-routable): the rendezvous path.
func (d *Detector) ShardCross() { d.shardCross.Add(1) }

// ShardLocals returns the single-shard admission count (for tests).
func (d *Detector) ShardLocals() uint64 { return d.shardLocal.Load() }

// ShardCrossings returns the cross-shard admission count (for tests).
func (d *Detector) ShardCrossings() uint64 { return d.shardCross.Load() }

// Check counts one pairwise commutativity evaluation of (first m1,
// incoming m2), attributing it to the pair. The adaptive controller
// reuses it to count rung transitions.
func (d *Detector) Check(m1, m2 uint16) {
	d.checks.Add(1)
	if i := int(m1)*d.n + int(m2); i < len(d.pairChecks) {
		d.pairChecks[i].Add(1)
	}
}

// Conflict counts one rejected invocation, attributed to the pair
// (first m1, incoming m2) — for lock managers, to the mode pair (held
// m1, acquiring m2).
func (d *Detector) Conflict(m1, m2 uint16) {
	d.conflicts.Add(1)
	if i := int(m1)*d.n + int(m2); i < len(d.pairConflicts) {
		d.pairConflicts[i].Add(1)
	}
}

// ModeAcquire counts one successful acquisition of the given mode.
func (d *Detector) ModeAcquire(mode uint16) {
	if int(mode) < len(d.acquired) {
		d.acquired[mode].Add(1)
	}
}

// ModeWait counts one failed (would-block) acquisition of the given
// mode; under optimistic execution a "wait" surfaces as an abort.
func (d *Detector) ModeWait(mode uint16) {
	if int(mode) < len(d.waits) {
		d.waits[mode].Add(1)
	}
}

// ObserveActive raises the active-log high-water mark to n if higher.
// Single-writer per detector (called under the detector's own mutex),
// so a load-compare-store suffices; concurrent snapshot reads are safe.
func (d *Detector) ObserveActive(n int) {
	if v := int64(n); v > d.activeHW.Load() {
		d.activeHW.Store(v)
	}
}

// ObserveJournal raises the journal-length high-water mark to n.
func (d *Detector) ObserveJournal(n int) {
	if v := int64(n); v > d.journalHW.Load() {
		d.journalHW.Store(v)
	}
}

// Invocations returns the invocation count (for tests).
func (d *Detector) Invocations() uint64 { return d.invocations.Load() }

// Conflicts returns the conflict count (for tests).
func (d *Detector) Conflicts() uint64 { return d.conflicts.Load() }

// --- Engine transaction counters ----------------------------------------

// CountTxBegin counts one transaction start on the Default registry.
func CountTxBegin() { Default.txBegun.Add(1) }

// TxCommit counts a commit and, when tracing is on, emits its event.
func TxCommit(worker int, tx uint64, item int64) {
	Default.txCommitted.Add(1)
	if TraceEnabled() {
		Emit(worker, EvCommit, tx, item, 0, 0, 0)
	}
}

// TxAbort counts an abort and, when tracing is on, emits its event.
func TxAbort(worker int, tx uint64, item int64) {
	Default.txAborted.Add(1)
	if TraceEnabled() {
		Emit(worker, EvAbort, tx, item, 0, 0, 0)
	}
}

// CountTxBeginN counts n transaction starts with one atomic add — the
// batch mirror of CountTxBegin.
func CountTxBeginN(n int) { Default.txBegun.Add(uint64(n)) }

// CountTxCommits counts n commits with one atomic add — the group-commit
// path, used when tracing is off and no per-transaction events are due.
func CountTxCommits(n int) {
	if n > 0 {
		Default.txCommitted.Add(uint64(n))
	}
}

// --- Snapshots -----------------------------------------------------------

// PairStat is one method (or mode) pair's attribution counters.
type PairStat struct {
	M1        string `json:"m1"`
	M2        string `json:"m2"`
	Checks    uint64 `json:"checks"`
	Conflicts uint64 `json:"conflicts"`
}

// ModeStat is one lock mode's acquisition counters.
type ModeStat struct {
	Mode     string `json:"mode"`
	Acquired uint64 `json:"acquired"`
	Waits    uint64 `json:"waits"`
}

// DetectorSnapshot is a consistent-enough copy of one detector's
// counters (each counter is read atomically; the set is not a single
// atomic cut, which monitoring does not need).
type DetectorSnapshot struct {
	ID               uint16     `json:"id"`
	Kind             string     `json:"kind"`
	ADT              string     `json:"adt"`
	Invocations      uint64     `json:"invocations"`
	Checks           uint64     `json:"checks"`
	Conflicts        uint64     `json:"conflicts"`
	Rollbacks        uint64     `json:"rollbacks,omitempty"`
	LogEntries       uint64     `json:"log_entries,omitempty"`
	Probes           uint64     `json:"probes,omitempty"`
	Collisions       uint64     `json:"collisions,omitempty"`
	FallbackScans    uint64     `json:"fallback_scans,omitempty"`
	FastAdmits       uint64     `json:"cascade_fast_admits,omitempty"`
	FilterHits       uint64     `json:"cascade_filter_hits,omitempty"`
	OptScans         uint64     `json:"cascade_opt_scans,omitempty"`
	OptRetries       uint64     `json:"cascade_opt_retries,omitempty"`
	CascadeFallbacks uint64     `json:"cascade_fallbacks,omitempty"`
	BatchesWhole     uint64     `json:"batches_whole,omitempty"`
	BatchesSplit     uint64     `json:"batches_split,omitempty"`
	BatchesSerial    uint64     `json:"batches_serialized,omitempty"`
	Shard            int64      `json:"shard,omitempty"`
	ShardLocal       uint64     `json:"shard_local,omitempty"`
	ShardCross       uint64     `json:"shard_cross,omitempty"`
	ActiveHighWater  int64      `json:"active_high_water,omitempty"`
	JournalHighWater int64      `json:"journal_high_water,omitempty"`
	Pairs            []PairStat `json:"pairs,omitempty"`
	Modes            []ModeStat `json:"modes,omitempty"`
}

// Snapshot copies the detector's counters, keeping only non-zero pair
// and mode rows.
func (d *Detector) Snapshot() DetectorSnapshot {
	s := DetectorSnapshot{
		ID:               d.id,
		Kind:             d.kind,
		ADT:              d.adt,
		Invocations:      d.invocations.Load(),
		Checks:           d.checks.Load(),
		Conflicts:        d.conflicts.Load(),
		Rollbacks:        d.rollbacks.Load(),
		LogEntries:       d.logEntries.Load(),
		Probes:           d.probes.Load(),
		Collisions:       d.collisions.Load(),
		FallbackScans:    d.fallbacks.Load(),
		FastAdmits:       d.fastAdmits.Load(),
		FilterHits:       d.filterHits.Load(),
		OptScans:         d.optScans.Load(),
		OptRetries:       d.optRetries.Load(),
		CascadeFallbacks: d.cascadeSlow.Load(),
		BatchesWhole:     d.batchWhole.Load(),
		BatchesSplit:     d.batchSplit.Load(),
		BatchesSerial:    d.batchSerial.Load(),
		Shard:            d.shard.Load(),
		ShardLocal:       d.shardLocal.Load(),
		ShardCross:       d.shardCross.Load(),
		ActiveHighWater:  d.activeHW.Load(),
		JournalHighWater: d.journalHW.Load(),
	}
	for i := 0; i < d.n; i++ {
		for j := 0; j < d.n; j++ {
			c, x := d.pairChecks[i*d.n+j].Load(), d.pairConflicts[i*d.n+j].Load()
			if c != 0 || x != 0 {
				s.Pairs = append(s.Pairs, PairStat{M1: d.labels[i], M2: d.labels[j], Checks: c, Conflicts: x})
			}
		}
	}
	for i := 0; i < d.n; i++ {
		a, w := d.acquired[i].Load(), d.waits[i].Load()
		if a != 0 || w != 0 {
			s.Modes = append(s.Modes, ModeStat{Mode: d.labels[i], Acquired: a, Waits: w})
		}
	}
	return s
}

// EngineSnapshot is the engine-level transaction counters.
type EngineSnapshot struct {
	TxBegun     uint64 `json:"tx_begun"`
	TxCommitted uint64 `json:"tx_committed"`
	TxAborted   uint64 `json:"tx_aborted"`
}

// Snapshot copies every registered detector's counters plus the engine
// counters, for programmatic use, expvar, and the HTTP exporters.
type Snapshot struct {
	Engine    EngineSnapshot     `json:"engine"`
	Detectors []DetectorSnapshot `json:"detectors"`
}

// Snapshot captures the registry's current counter values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	dets := make([]*Detector, len(r.dets))
	copy(dets, r.dets)
	r.mu.Unlock()
	s := Snapshot{Engine: EngineSnapshot{
		TxBegun:     r.txBegun.Load(),
		TxCommitted: r.txCommitted.Load(),
		TxAborted:   r.txAborted.Load(),
	}}
	for _, d := range dets {
		s.Detectors = append(s.Detectors, d.Snapshot())
	}
	return s
}

// label resolves a detector's label ID to its name, for the exporters.
func (r *Registry) label(det, id uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if det == 0 || int(det) > len(r.dets) {
		return ""
	}
	d := r.dets[det-1]
	if int(id) >= len(d.labels) {
		return ""
	}
	return d.labels[id]
}

// detName resolves a detector ID to "kind/adt", or "" for the engine.
func (r *Registry) detName(det uint16) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	if det == 0 || int(det) > len(r.dets) {
		return ""
	}
	d := r.dets[det-1]
	return d.kind + "/" + d.adt
}
