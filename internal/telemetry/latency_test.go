package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// The latency, flight and audit recorders are process-wide; these tests
// enable, exercise and disable them serially (no t.Parallel) so they
// never observe each other's state.

func TestTelemetryLatencyBuckets(t *testing.T) {
	cases := []struct {
		d    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, 39}, {1 << 39, 39}, {^uint64(0), 39},
	}
	for _, c := range cases {
		if got := latBucket(c.d); got != c.want {
			t.Errorf("latBucket(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestTelemetryLatencySnapshotAndQuantiles(t *testing.T) {
	EnableLatency()
	defer DisableLatency()
	// 1000 observations at ~100ns, 10 at ~10µs: the tail percentiles
	// must land in the slow octave, the median in the fast one.
	for i := 0; i < 1000; i++ {
		StageRecord(i, StageSigFilter, 100)
	}
	for i := 0; i < 10; i++ {
		StageRecord(i, StageSigFilter, 10_000)
	}
	s := SnapshotLatency()
	if !s.Enabled || len(s.Stages) != 1 {
		t.Fatalf("snapshot: enabled=%v stages=%d", s.Enabled, len(s.Stages))
	}
	st := s.Stages[0]
	if st.Stage != "sig_filter" || st.Count != 1010 {
		t.Fatalf("stage row: %+v", st)
	}
	if st.SumNS != 1000*100+10*10_000 {
		t.Fatalf("sum: %d", st.SumNS)
	}
	if !(st.P50NS <= st.P90NS && st.P90NS <= st.P99NS && st.P99NS <= st.P999NS) {
		t.Fatalf("percentiles not monotone: %+v", st)
	}
	if st.P50NS < 64 || st.P50NS > 128 {
		t.Errorf("p50 outside the 100ns octave: %g", st.P50NS)
	}
	if st.P999NS < 8192 || st.P999NS > 16384 {
		t.Errorf("p99.9 outside the 10µs octave: %g", st.P999NS)
	}
	var n uint64
	for _, b := range st.Buckets {
		n += b.Count
	}
	if n != st.Count {
		t.Fatalf("bucket counts sum to %d, want %d", n, st.Count)
	}
}

func TestTelemetryLatencyDisabledClock(t *testing.T) {
	DisableLatency()
	if LatClock() != 0 {
		t.Fatal("LatClock != 0 while disabled")
	}
	if StageObserve(0, StageSigFilter, 0) != 0 {
		t.Fatal("StageObserve(0 mark) must be a no-op returning 0")
	}
	EnableLatency()
	defer DisableLatency()
	if LatClock() == 0 {
		t.Fatal("LatClock returned the disabled sentinel while enabled")
	}
}

func TestTelemetryLatencyStageChaining(t *testing.T) {
	EnableLatency()
	defer DisableLatency()
	t0 := LatClock()
	t1 := StageObserve(3, StageSigFilter, t0)
	if t1 < t0 || t1 == 0 {
		t.Fatalf("chained mark went backwards: %d -> %d", t0, t1)
	}
	StageObserve(3, StageOptIndex, t1)
	s := SnapshotLatency()
	seen := map[string]bool{}
	for _, st := range s.Stages {
		seen[st.Stage] = true
	}
	if !seen["sig_filter"] || !seen["opt_index"] {
		t.Fatalf("stages not recorded: %v", seen)
	}
}

func TestTelemetryFlightEpochAndWraparound(t *testing.T) {
	EnableFlight(4)
	defer DisableFlight()
	if FlightEpoch() != 0 {
		t.Fatalf("fresh epoch = %d", FlightEpoch())
	}
	for i := 0; i < 3; i++ {
		rec := FlightRecord{Tx: uint64(i + 1), Verdict: FlightAdmitted}
		rec.Mark(StageSigFilter, 100)
		RecordFlight(0, &rec)
	}
	AdvanceFlightEpoch()
	for i := 3; i < 10; i++ {
		rec := FlightRecord{Tx: uint64(i + 1), Verdict: FlightConflict}
		RecordFlight(0, &rec)
	}
	if FlightEpoch() != 1 {
		t.Fatalf("epoch = %d, want 1", FlightEpoch())
	}
	recs := FlightRecords()
	if len(recs) != 4 {
		t.Fatalf("ring of 4 buffered %d records", len(recs))
	}
	if FlightDropped() != 6 {
		t.Fatalf("dropped = %d, want 6", FlightDropped())
	}
	for _, r := range recs {
		if r.Tx <= 6 {
			t.Fatalf("record %d survived wraparound; want the newest 4", r.Tx)
		}
		if r.Epoch != 1 {
			t.Fatalf("record %d stamped epoch %d, want 1", r.Tx, r.Epoch)
		}
		if r.Verdict.String() != "conflict" {
			t.Fatalf("verdict: %s", r.Verdict)
		}
	}
}

func TestTelemetryFlightMarkSaturation(t *testing.T) {
	var rec FlightRecord
	rec.Mark(StagePrecise, int64(1)<<40)
	if rec.StageNS[StagePrecise] != ^uint32(0) {
		t.Fatalf("overlong duration did not saturate: %d", rec.StageNS[StagePrecise])
	}
	if rec.Stages&(1<<StagePrecise) == 0 {
		t.Fatal("Mark did not set the stage bit")
	}
	rec.Mark(StageCommit, -5)
	if rec.StageNS[StageCommit] != 0 {
		t.Fatalf("negative duration not clamped: %d", rec.StageNS[StageCommit])
	}
}

func TestTelemetryFlightDisabledIsNoop(t *testing.T) {
	DisableFlight()
	rec := FlightRecord{Tx: 1}
	RecordFlight(0, &rec)
	if n := len(FlightRecords()); n != 0 {
		t.Fatalf("disabled recorder buffered %d records", n)
	}
	before := FlightEpoch()
	AdvanceFlightEpoch()
	if FlightEpoch() != before {
		t.Fatal("disabled epoch advanced")
	}
}

func TestTelemetryAuditTrail(t *testing.T) {
	ResetAudit()
	RecordAudit(AuditEntry{
		Controller: "batch", Window: 256, ConflictRate: 0.002,
		Lo: 0.01, Hi: 0.05, FromRung: 8, ToRung: 32,
		Moved: true, Reason: AuditClimb,
	})
	RecordAudit(AuditEntry{
		Controller: "batch", Window: 256, ConflictRate: 0.02,
		Lo: 0.01, Hi: 0.05, FromRung: 32, ToRung: 32,
		Moved: false, Reason: AuditHold,
	})
	trail := AuditTrail()
	if len(trail) != 2 {
		t.Fatalf("trail length %d", len(trail))
	}
	if trail[0].Reason != AuditClimb || !trail[0].Moved || trail[0].ToRung != 32 {
		t.Fatalf("first entry: %+v", trail[0])
	}
	if trail[0].TS == 0 {
		t.Fatal("entry not timestamped")
	}
	if trail[1].TS < trail[0].TS {
		t.Fatal("trail out of order")
	}
	// Overflow: the ring keeps the newest auditCap entries.
	for i := 0; i < auditCap+10; i++ {
		RecordAudit(AuditEntry{Controller: "shard", Window: i})
	}
	trail = AuditTrail()
	if len(trail) != auditCap {
		t.Fatalf("overflowed trail length %d, want %d", len(trail), auditCap)
	}
	if trail[len(trail)-1].Window != auditCap+9 {
		t.Fatalf("newest entry window %d", trail[len(trail)-1].Window)
	}
	ResetAudit()
	if len(AuditTrail()) != 0 {
		t.Fatal("ResetAudit left entries")
	}
}

func TestTelemetryHTTPObservabilityEndpoints(t *testing.T) {
	EnableLatency()
	EnableFlight(64)
	defer DisableLatency()
	defer DisableFlight()
	ResetAudit()
	defer ResetAudit()

	r := NewRegistry()
	router := r.Register("sharded", "set", []string{"add"})
	router.ShardLocal()
	router.ShardCross()
	sh0 := r.Register("cascade", "set", []string{"add"})
	sh0.SetShard(1)
	sh0.IncInvocation()
	sh1 := r.Register("cascade", "set", []string{"add"})
	sh1.SetShard(2)
	sh1.IncInvocation()
	sh1.IncInvocation()
	sh1.IncInvocation()

	StageRecord(0, StageRendezvous, 500)
	rec := FlightRecord{Tx: 7, Det: router.ID(), Verdict: FlightAdmitted, Shards: 0b11}
	rec.Mark(StageRendezvous, 500)
	RecordFlight(0, &rec)
	RecordAudit(AuditEntry{Controller: "shard", Window: 512, ConflictRate: 0.001,
		CrossRate: 0.002, Lo: 0.01, Hi: 0.05, FromRung: 4, ToRung: 8, Moved: true, Reason: AuditClimb})

	h := Handler(r)
	get := func(path string) (int, string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}

	code, body := get("/debug/commlat/percentiles")
	if code != 200 {
		t.Fatalf("/percentiles: %d", code)
	}
	var lat LatencySnapshot
	if err := json.Unmarshal([]byte(body), &lat); err != nil {
		t.Fatalf("percentiles JSON: %v", err)
	}
	if !lat.Enabled || len(lat.Stages) == 0 {
		t.Fatalf("percentiles doc: %+v", lat)
	}

	code, body = get("/debug/commlat/flightrec")
	if code != 200 {
		t.Fatalf("/flightrec: %d", code)
	}
	var fd FlightDoc
	if err := json.Unmarshal([]byte(body), &fd); err != nil {
		t.Fatalf("flightrec JSON: %v", err)
	}
	if len(fd.Records) != 1 || fd.Records[0].Verdict != "admitted" {
		t.Fatalf("flight doc: %+v", fd)
	}
	if got := fd.Records[0].Shards; len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("shard list: %v", got)
	}
	if fd.Records[0].Detector != "sharded/set" {
		t.Fatalf("detector name: %q", fd.Records[0].Detector)
	}

	code, body = get("/debug/commlat/heatmap")
	if code != 200 {
		t.Fatalf("/heatmap: %d", code)
	}
	var hm HeatmapDoc
	if err := json.Unmarshal([]byte(body), &hm); err != nil {
		t.Fatalf("heatmap JSON: %v", err)
	}
	if len(hm.Routers) != 1 || len(hm.Shards) != 2 {
		t.Fatalf("heatmap doc: %+v", hm)
	}
	if hm.Shards[0].Share+hm.Shards[1].Share < 0.999 {
		t.Fatalf("shares do not cover the group: %+v", hm.Shards)
	}

	code, body = get("/debug/commlat/audit")
	if code != 200 {
		t.Fatalf("/audit: %d", code)
	}
	var ad AuditDoc
	if err := json.Unmarshal([]byte(body), &ad); err != nil {
		t.Fatalf("audit JSON: %v", err)
	}
	if len(ad.Entries) != 1 || ad.Entries[0].Reason != AuditClimb {
		t.Fatalf("audit doc: %+v", ad)
	}

	code, body = get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	for _, want := range []string{
		"commlat_stage_latency_ns_bucket{stage=\"rendezvous\"",
		"commlat_stage_latency_ns_count{stage=\"rendezvous\"} 1",
		"commlat_flight_epoch 0",
		"commlat_controller_rung{controller=\"shard\"} 8",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTelemetryConcurrentScrape races live recording against the HTTP
// exporters; run under -race it proves the lock-free merge reads and
// ring drains are sound against concurrent writers.
func TestTelemetryConcurrentScrape(t *testing.T) {
	EnableLatency()
	EnableFlight(64)
	defer DisableLatency()
	defer DisableFlight()
	ResetAudit()
	defer ResetAudit()

	r := NewRegistry()
	d := r.Register("cascade", "set", []string{"add"})
	d.SetShard(1)
	h := Handler(r)

	var writers, scrapers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				d.IncInvocation()
				t0 := LatClock()
				t1 := StageObserve(w, StageSigFilter, t0)
				StageObserve(w, StageCommit, t1)
				rec := FlightRecord{Tx: uint64(i), Verdict: FlightAdmitted}
				rec.Mark(StageSigFilter, 50)
				RecordFlight(w, &rec)
				if i%64 == 0 {
					AdvanceFlightEpoch()
					RecordAudit(AuditEntry{Controller: "batch", Window: 64, Reason: AuditHold})
				}
			}
		}(w)
	}
	paths := []string{
		"/metrics", "/debug/telemetry", "/debug/commlat/flightrec",
		"/debug/commlat/percentiles", "/debug/commlat/heatmap", "/debug/commlat/audit",
	}
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for i := 0; i < 15; i++ {
				for _, p := range paths {
					w := httptest.NewRecorder()
					h.ServeHTTP(w, httptest.NewRequest("GET", p, nil))
					if w.Code != 200 {
						t.Errorf("%s: %d", p, w.Code)
						return
					}
				}
			}
		}()
	}
	// Every scrape races live writers; only once the scrapers are done
	// are the writers released.
	scrapers.Wait()
	close(stop)
	writers.Wait()
}

func TestTelemetryLatencyObserveZeroAllocs(t *testing.T) {
	EnableLatency()
	defer DisableLatency()
	if n := testing.AllocsPerRun(100, func() {
		t0 := LatClock()
		StageObserve(1, StageSigFilter, t0)
	}); n != 0 {
		t.Fatalf("StageObserve allocates %v per op", n)
	}
}

func TestTelemetryFlightRecordZeroAllocs(t *testing.T) {
	EnableFlight(1 << 10)
	defer DisableFlight()
	if n := testing.AllocsPerRun(100, func() {
		rec := FlightRecord{Tx: 1, Verdict: FlightAdmitted}
		rec.Mark(StageSigFilter, 100)
		RecordFlight(1, &rec)
	}); n != 0 {
		t.Fatalf("RecordFlight allocates %v per op", n)
	}
}
