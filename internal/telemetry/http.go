package telemetry

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"
)

// Handler serves the registry over HTTP:
//
//	/metrics                   Prometheus text exposition (counters +
//	                           stage-latency histograms)
//	/debug/telemetry           JSON Snapshot
//	/debug/vars                expvar (includes the "commlat" var once
//	                           PublishExpvar has run; Handler calls it
//	                           for the Default registry)
//	/debug/commlat/flightrec   flight-recorder snapshot (JSON)
//	/debug/commlat/percentiles stage-latency percentile dump (JSON)
//	/debug/commlat/heatmap     shard-load heatmap (JSON)
//	/debug/commlat/audit       controller decision audit trail (JSON)
//
// cmd/commlat mounts this behind the global -listen flag.
func Handler(r *Registry) http.Handler {
	if r == Default {
		PublishExpvar()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/commlat/flightrec", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteFlightJSON(w)
	})
	mux.HandleFunc("/debug/commlat/percentiles", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WritePercentilesJSON(w)
	})
	mux.HandleFunc("/debug/commlat/heatmap", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteHeatmapJSON(w)
	})
	mux.HandleFunc("/debug/commlat/audit", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = WriteAuditJSON(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(`<html><body><h1>commlat telemetry</h1><ul>
<li><a href="/metrics">/metrics</a> (Prometheus text)</li>
<li><a href="/debug/telemetry">/debug/telemetry</a> (JSON snapshot)</li>
<li><a href="/debug/vars">/debug/vars</a> (expvar)</li>
<li><a href="/debug/commlat/flightrec">/debug/commlat/flightrec</a> (flight-recorder snapshot)</li>
<li><a href="/debug/commlat/percentiles">/debug/commlat/percentiles</a> (stage-latency percentiles)</li>
<li><a href="/debug/commlat/heatmap">/debug/commlat/heatmap</a> (shard-load heatmap)</li>
<li><a href="/debug/commlat/audit">/debug/commlat/audit</a> (controller audit trail)</li>
</ul></body></html>`))
	})
	return mux
}

var expvarOnce sync.Once

// PublishExpvar registers the Default registry's snapshot as the
// expvar "commlat". Safe to call more than once; expvar panics on
// duplicate names, hence the Once.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("commlat", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
