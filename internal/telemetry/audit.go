// Controller audit trail: a small always-on ring of adaptive-controller
// decisions, so a ladder move is explainable after the fact. Each entry
// records the window observation that triggered the evaluation (the
// conflict rate and, for the shard controller, the crossing rate), the
// hysteresis thresholds in force, which side of the dead band the rate
// landed on, and the rung chosen — including "hold" evaluations, since
// the absence of a move under a suspicious rate is exactly what an
// operator wants to audit.
//
// Controllers decide at most once per observation window (hundreds of
// admissions), so the ring is always enabled: one mutex acquisition per
// window evaluation is noise, and entries reference only static strings
// (controller names, reasons), so recording never allocates.
package telemetry

import (
	"sync"
	"time"
)

// Audit reasons — which side of the hysteresis dead band the observed
// rate landed on, and what the controller did about it.
const (
	AuditClimb   = "climb"   // rate below lo: moved to a more aggressive rung
	AuditBackoff = "backoff" // rate above hi: retreated to a safer rung
	AuditHold    = "hold"    // rate inside the dead band: stayed put
	AuditPinned  = "pinned"  // would move but already at the ladder's end
)

// AuditEntry is one controller window evaluation. FromRung/ToRung are
// rung *values* (batch size, shard count, or ladder rung index) rather
// than positions, so the trail reads without the ladder at hand.
type AuditEntry struct {
	TS           int64   `json:"ts_ns"`
	Controller   string  `json:"controller"`
	Det          uint16  `json:"detector_id,omitempty"`
	Window       int     `json:"window"`
	ConflictRate float64 `json:"conflict_rate"`
	CrossRate    float64 `json:"crossing_rate,omitempty"`
	Lo           float64 `json:"lo"`
	Hi           float64 `json:"hi"`
	FromRung     int     `json:"from_rung"`
	ToRung       int     `json:"to_rung"`
	Moved        bool    `json:"moved"`
	Reason       string  `json:"reason"`
}

// auditCap bounds the trail. A controller evaluates once per window
// (256–512 admissions), so 1024 entries cover hundreds of thousands of
// admissions of history.
const auditCap = 1024

var (
	auditMu  sync.Mutex
	auditBuf [auditCap]AuditEntry
	auditPos uint64
)

// RecordAudit appends one evaluation to the trail, stamping its clock.
// The ring overwrites oldest-first; like the flight rings there is no
// per-entry reclamation.
func RecordAudit(e AuditEntry) {
	e.TS = int64(time.Since(latBase))
	auditMu.Lock()
	auditBuf[auditPos%auditCap] = e
	auditPos++
	auditMu.Unlock()
}

// AuditTrail returns a copy of the buffered evaluations, oldest first.
func AuditTrail() []AuditEntry {
	auditMu.Lock()
	defer auditMu.Unlock()
	n := auditPos
	lo := uint64(0)
	if n > auditCap {
		lo = n - auditCap
	}
	out := make([]AuditEntry, 0, n-lo)
	for p := lo; p < n; p++ {
		out = append(out, auditBuf[p%auditCap])
	}
	return out
}

// ResetAudit clears the trail (tests and fresh CLI runs).
func ResetAudit() {
	auditMu.Lock()
	auditPos = 0
	auditMu.Unlock()
}
