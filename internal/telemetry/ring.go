package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// EventKind classifies a traced event.
type EventKind uint8

// Event kinds. Begin/Commit/Abort are transaction lifecycle; Conflict is
// a detector rejecting an invocation; Decision is an adaptive-controller
// rung change.
const (
	EvBegin EventKind = iota + 1
	EvCommit
	EvAbort
	EvConflict
	EvDecision
)

// String returns the JSONL spelling of the kind.
func (k EventKind) String() string {
	switch k {
	case EvBegin:
		return "begin"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvConflict:
		return "conflict"
	case EvDecision:
		return "decision"
	default:
		return "unknown"
	}
}

// Event is one fixed-size trace record. M1/M2 are label IDs in the
// detector Det's vocabulary (method pair for gatekeepers, mode pair for
// lock managers, rung transition for the adaptive controller); Det 0 is
// the engine.
type Event struct {
	TS     int64 // nanoseconds since the trace was enabled
	Tx     uint64
	Item   int64
	Det    uint16
	M1, M2 uint16
	Worker uint16
	Kind   EventKind
}

// traceShards is the number of per-worker ring shards. Worker IDs are
// masked into this range, so any worker count works; 64 keeps shards on
// distinct cache lines without bloating idle processes.
const traceShards = 64

type traceShard struct {
	mu  sync.Mutex
	buf []Event
	pos uint64 // events ever written to this shard (head = pos % len)
	_   [40]byte
}

// tracer is the process-wide event trace. Off by default: Emit is one
// atomic load. When enabled, events land in per-worker rings sized at
// EnableTrace time; a full ring overwrites its oldest events, so a
// trace is always the most recent window.
type tracer struct {
	enabled atomic.Bool
	sample  atomic.Uint64
	startNS atomic.Int64
	shards  [traceShards]traceShard
}

var tr tracer

// EnableTrace turns event tracing on with the given per-worker ring
// capacity (rounded up to a power of two; <=0 means 1<<14 events) and
// sampling rate: sample N keeps roughly one in N transactions (their
// begin/commit/abort/conflict events as a unit, so traces stay
// pairable); N <= 1 keeps everything. Decision events are never
// sampled out. Enabling resets any previous trace.
func EnableTrace(perShard, sample int) {
	if perShard <= 0 {
		perShard = 1 << 14
	}
	n := 1
	for n < perShard {
		n <<= 1
	}
	if sample < 1 {
		sample = 1
	}
	tr.enabled.Store(false)
	for i := range tr.shards {
		s := &tr.shards[i]
		s.mu.Lock()
		s.buf = make([]Event, n)
		s.pos = 0
		s.mu.Unlock()
	}
	tr.sample.Store(uint64(sample))
	tr.startNS.Store(time.Now().UnixNano())
	tr.enabled.Store(true)
}

// DisableTrace turns event tracing off and releases the ring buffers.
// Buffered events are discarded; call TraceEvents first to keep them.
func DisableTrace() {
	tr.enabled.Store(false)
	for i := range tr.shards {
		s := &tr.shards[i]
		s.mu.Lock()
		s.buf = nil
		s.pos = 0
		s.mu.Unlock()
	}
}

// TraceEnabled reports whether event tracing is on.
//
//commvet:gate
func TraceEnabled() bool { return tr.enabled.Load() }

// Emit records one event into the worker's ring. With tracing disabled
// this is a single atomic load; enabled, it allocates nothing. The
// transaction-ID sampling filter keeps a transaction's events together.
//
//commvet:observation
func Emit(worker int, kind EventKind, tx uint64, item int64, det, m1, m2 uint16) {
	if !tr.enabled.Load() {
		return
	}
	if s := tr.sample.Load(); s > 1 && kind != EvDecision && tx%s != 0 {
		return
	}
	ts := time.Now().UnixNano() - tr.startNS.Load()
	sh := &tr.shards[worker&(traceShards-1)]
	sh.mu.Lock()
	if sh.buf != nil {
		sh.buf[sh.pos&uint64(len(sh.buf)-1)] = Event{
			TS: ts, Tx: tx, Item: item, Det: det, M1: m1, M2: m2,
			Worker: uint16(worker & (traceShards - 1)), Kind: kind,
		}
		sh.pos++
	}
	sh.mu.Unlock()
}

// EmitConflict records a detector conflict event.
//
//commvet:observation
func EmitConflict(worker int, tx uint64, item int64, det, m1, m2 uint16) {
	Emit(worker, EvConflict, tx, item, det, m1, m2)
}

// EmitDecision records an adaptive rung change (from, to).
//
//commvet:observation
func EmitDecision(det uint16, epoch int64, from, to uint16) {
	Emit(0, EvDecision, 0, epoch, det, from, to)
}

// TraceEvents drains a copy of the buffered events, oldest first,
// merged across shards in timestamp order. The trace keeps running;
// call DisableTrace to stop it.
func TraceEvents() []Event {
	var out []Event
	for i := range tr.shards {
		s := &tr.shards[i]
		s.mu.Lock()
		if s.buf != nil {
			n := uint64(len(s.buf))
			lo := uint64(0)
			if s.pos > n {
				lo = s.pos - n
			}
			for p := lo; p < s.pos; p++ {
				out = append(out, s.buf[p&(n-1)])
			}
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// TraceDropped reports how many events have been overwritten by ring
// wraparound since EnableTrace.
func TraceDropped() uint64 {
	var dropped uint64
	for i := range tr.shards {
		s := &tr.shards[i]
		s.mu.Lock()
		if s.buf != nil && s.pos > uint64(len(s.buf)) {
			dropped += s.pos - uint64(len(s.buf))
		}
		s.mu.Unlock()
	}
	return dropped
}
