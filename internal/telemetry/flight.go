// Flight recorder: a continuously-running fixed ring of the most recent
// admission records, cheap enough to leave on in production. Where the
// event tracer answers "what happened, in order", the flight recorder
// answers "what did the last N admissions cost and why": each record
// carries the verdict, the set of stages the admission traversed with
// per-stage tick counts, the shard set it touched, and how many times
// it was retried.
//
// Reclamation realizes the ROADMAP's epoch-based log-reclamation item
// for the telemetry rings: records are never released individually.
// A global epoch counter advances at group-commit boundaries
// (engine.CommitBatch calls AdvanceFlightEpoch — one atomic add, the
// "pointer bump"), every record is stamped with the epoch it was
// written under, and slots are reclaimed wholesale by ring wraparound:
// by the time the ring laps itself the overwritten records are at
// least one full ring of admissions — many epochs — old. Snapshots
// report the current epoch and the wraparound drop count so a consumer
// can tell a quiet ring from a lapped one.
package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// FlightVerdict classifies how an admission (or admission batch) ended.
type FlightVerdict uint8

// Flight verdicts. The first two classify single admissions; the
// Batch* verdicts classify one InvokeBatch group record by how much of
// the batch was admitted as a group.
const (
	FlightAdmitted    FlightVerdict = iota + 1 // invocation admitted
	FlightConflict                             // invocation rejected (commutativity conflict)
	FlightBatchWhole                           // batch admitted whole
	FlightBatchSplit                           // batch prefix admitted, rest serialized
	FlightBatchSerial                          // batch fully serialized
)

// String returns the export spelling of the verdict.
func (v FlightVerdict) String() string {
	switch v {
	case FlightAdmitted:
		return "admitted"
	case FlightConflict:
		return "conflict"
	case FlightBatchWhole:
		return "batch_whole"
	case FlightBatchSplit:
		return "batch_split"
	case FlightBatchSerial:
		return "batch_serial"
	default:
		return "unknown"
	}
}

// FlightRecord is one fixed-size admission record. StageNS holds the
// per-stage tick counts (nanoseconds, saturating at ~4.29s per stage)
// for the stages whose bit is set in Stages; both are filled from the
// same LatClock marks the histograms use, so they are only non-zero
// while latency recording is on. Shards is a bitmask of the shard IDs
// (mod 64) the admission touched; 0 for unsharded detectors. N is the
// batch length for Batch* verdicts, 0 for single admissions.
type FlightRecord struct {
	TS      int64 // ns on the latency clock
	Tx      uint64
	Epoch   uint64
	StageNS [NumStages]uint32
	Shards  uint64
	Det     uint16
	Method  uint16
	Worker  uint16
	Retries uint16
	N       uint16
	Verdict FlightVerdict
	Stages  uint8 // bitmask: bit i set = Stage(i) traversed
}

// Mark sets a stage's traversed bit and tick count (saturating).
func (r *FlightRecord) Mark(st Stage, ns int64) {
	r.Stages |= 1 << st
	if ns < 0 {
		ns = 0
	}
	if ns > 1<<32-1 {
		ns = 1<<32 - 1
	}
	r.StageNS[st] = uint32(ns)
}

// flightShards mirrors the tracer's sharding: worker IDs masked into
// per-worker rings that stay on distinct cache lines.
const flightShards = 64

type flightShard struct {
	mu  sync.Mutex
	buf []FlightRecord
	pos uint64 // records ever written (head = pos % len)
	_   [40]byte
}

// flightRec is the process-wide recorder. Off by default: RecordFlight
// behind FlightEnabled is one atomic load.
type flightRec struct {
	enabled atomic.Bool
	epoch   atomic.Uint64
	shards  [flightShards]flightShard
}

var fr flightRec

// EnableFlight starts the flight recorder with the given per-worker
// ring capacity (rounded up to a power of two; <=0 means 1<<10
// records). Enabling resets any previous recording and restarts the
// epoch counter.
func EnableFlight(perShard int) {
	if perShard <= 0 {
		perShard = 1 << 10
	}
	n := 1
	for n < perShard {
		n <<= 1
	}
	fr.enabled.Store(false)
	for i := range fr.shards {
		s := &fr.shards[i]
		s.mu.Lock()
		s.buf = make([]FlightRecord, n)
		s.pos = 0
		s.mu.Unlock()
	}
	fr.epoch.Store(0)
	fr.enabled.Store(true)
}

// DisableFlight stops the recorder and releases its rings. Buffered
// records are discarded; call FlightRecords first to keep them.
func DisableFlight() {
	fr.enabled.Store(false)
	for i := range fr.shards {
		s := &fr.shards[i]
		s.mu.Lock()
		s.buf = nil
		s.pos = 0
		s.mu.Unlock()
	}
}

// FlightEnabled reports whether the flight recorder is on. Hot paths
// gate record construction on it, so the disabled cost is this one
// atomic load.
//
//commvet:gate
func FlightEnabled() bool { return fr.enabled.Load() }

// AdvanceFlightEpoch bumps the reclamation epoch — called by the engine
// at each group-commit boundary. Disabled, it is one atomic load.
func AdvanceFlightEpoch() {
	if fr.enabled.Load() {
		fr.epoch.Add(1)
	}
}

// FlightEpoch returns the current group-commit epoch.
func FlightEpoch() uint64 { return fr.epoch.Load() }

// RecordFlight stamps the record with the clock and current epoch and
// appends it to the worker's ring, overwriting the oldest slot when
// full (wholesale reclamation — no per-record release). Callers gate on
// FlightEnabled before building the record.
//
//commvet:observation
func RecordFlight(worker int, rec *FlightRecord) {
	if !fr.enabled.Load() {
		return
	}
	rec.TS = int64(time.Since(latBase))
	rec.Epoch = fr.epoch.Load()
	rec.Worker = uint16(worker & (flightShards - 1))
	sh := &fr.shards[worker&(flightShards-1)]
	sh.mu.Lock()
	if sh.buf != nil {
		sh.buf[sh.pos&uint64(len(sh.buf)-1)] = *rec
		sh.pos++
	}
	sh.mu.Unlock()
}

// FlightRecords drains a copy of the buffered records, oldest first,
// merged across worker rings in timestamp order. The recorder keeps
// running.
func FlightRecords() []FlightRecord {
	var out []FlightRecord
	for i := range fr.shards {
		s := &fr.shards[i]
		s.mu.Lock()
		if s.buf != nil {
			n := uint64(len(s.buf))
			lo := uint64(0)
			if s.pos > n {
				lo = s.pos - n
			}
			for p := lo; p < s.pos; p++ {
				out = append(out, s.buf[p&(n-1)])
			}
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS < out[j].TS
		}
		return out[i].Worker < out[j].Worker
	})
	return out
}

// FlightDropped reports how many records ring wraparound has reclaimed
// since EnableFlight.
func FlightDropped() uint64 {
	var dropped uint64
	for i := range fr.shards {
		s := &fr.shards[i]
		s.mu.Lock()
		if s.buf != nil && s.pos > uint64(len(s.buf)) {
			dropped += s.pos - uint64(len(s.buf))
		}
		s.mu.Unlock()
	}
	return dropped
}
