// Exporters for the latency/flight/audit layer: JSON documents for the
// /debug/commlat/ endpoints and the flightrec subcommand (validated by
// scripts/tracecheck), human-readable tables for the CLI, and the
// Prometheus-native histogram section of /metrics.
package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// --- Flight-recorder JSON -------------------------------------------------

// FlightStagesJSON is a flight record's per-stage tick counts,
// nanoseconds, one fixed field per pipeline stage (zero ticks omitted).
type FlightStagesJSON struct {
	SigFilterNS    uint32 `json:"sig_filter_ns,omitempty"`
	OptIndexNS     uint32 `json:"opt_index_ns,omitempty"`
	PreciseNS      uint32 `json:"precise_ns,omitempty"`
	RendezvousNS   uint32 `json:"rendezvous_ns,omitempty"`
	BatchPublishNS uint32 `json:"batch_publish_ns,omitempty"`
	BatchProbeNS   uint32 `json:"batch_probe_ns,omitempty"`
	CommitNS       uint32 `json:"commit_release_ns,omitempty"`
}

// FlightRecordJSON is one admission record with detector and method IDs
// resolved to names.
type FlightRecordJSON struct {
	TS       int64            `json:"ts_ns"`
	Tx       uint64           `json:"tx,omitempty"`
	Epoch    uint64           `json:"epoch"`
	Worker   int              `json:"worker"`
	Detector string           `json:"detector,omitempty"`
	Method   string           `json:"method,omitempty"`
	Verdict  string           `json:"verdict"`
	Retries  int              `json:"retries,omitempty"`
	N        int              `json:"n,omitempty"`
	Shards   []int            `json:"shards,omitempty"`
	Stages   []string         `json:"stages,omitempty"`
	StageNS  FlightStagesJSON `json:"stage_ns"`
}

// FlightDoc is the flight-recorder snapshot document: the current
// group-commit epoch, how many records wraparound reclaimed, and the
// buffered records oldest-first.
type FlightDoc struct {
	Epoch   uint64             `json:"epoch"`
	Dropped uint64             `json:"dropped"`
	Records []FlightRecordJSON `json:"records"`
}

// FlightSnapshot drains the flight rings into an export document,
// resolving IDs through the registry.
func (r *Registry) FlightSnapshot() FlightDoc {
	recs := FlightRecords()
	doc := FlightDoc{Epoch: FlightEpoch(), Dropped: FlightDropped(), Records: make([]FlightRecordJSON, 0, len(recs))}
	for i := range recs {
		doc.Records = append(doc.Records, r.flightJSON(&recs[i]))
	}
	return doc
}

func (r *Registry) flightJSON(rec *FlightRecord) FlightRecordJSON {
	j := FlightRecordJSON{
		TS: rec.TS, Tx: rec.Tx, Epoch: rec.Epoch, Worker: int(rec.Worker),
		Detector: r.detName(rec.Det), Method: r.label(rec.Det, rec.Method),
		Verdict: rec.Verdict.String(), Retries: int(rec.Retries), N: int(rec.N),
	}
	for sh := 0; sh < 64; sh++ {
		if rec.Shards&(1<<sh) != 0 {
			j.Shards = append(j.Shards, sh)
		}
	}
	for st := Stage(0); st < NumStages; st++ {
		if rec.Stages&(1<<st) != 0 {
			j.Stages = append(j.Stages, st.String())
		}
	}
	j.StageNS = FlightStagesJSON{
		SigFilterNS:    rec.StageNS[StageSigFilter],
		OptIndexNS:     rec.StageNS[StageOptIndex],
		PreciseNS:      rec.StageNS[StagePrecise],
		RendezvousNS:   rec.StageNS[StageRendezvous],
		BatchPublishNS: rec.StageNS[StageBatchPublish],
		BatchProbeNS:   rec.StageNS[StageBatchProbe],
		CommitNS:       rec.StageNS[StageCommit],
	}
	return j
}

// WriteFlightJSON writes the flight-recorder snapshot as indented JSON.
func (r *Registry) WriteFlightJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.FlightSnapshot())
}

// --- Percentile JSON ------------------------------------------------------

// WritePercentilesJSON writes the merged stage-latency snapshot
// (histograms + percentile table) as indented JSON.
func WritePercentilesJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(SnapshotLatency())
}

// --- Shard-load heatmap ---------------------------------------------------

// ShardLoad is one per-shard member detector's load row. Share is the
// shard's fraction of its router group's total invocations — the
// heatmap cell.
type ShardLoad struct {
	Detector    string  `json:"detector"`
	ID          uint16  `json:"id"`
	Shard       int64   `json:"shard"`
	Invocations uint64  `json:"invocations"`
	Conflicts   uint64  `json:"conflicts"`
	FastAdmits  uint64  `json:"fast_admits,omitempty"`
	Share       float64 `json:"share"`
}

// RouterLoad is one sharded router's local/crossing split.
type RouterLoad struct {
	Detector     string  `json:"detector"`
	ID           uint16  `json:"id"`
	Local        uint64  `json:"local"`
	Cross        uint64  `json:"cross"`
	CrossingRate float64 `json:"crossing_rate"`
}

// HeatmapDoc is the shard-load heatmap document: per-shard invocation
// shares grouped by detector, plus each router's crossing split.
type HeatmapDoc struct {
	Routers []RouterLoad `json:"routers"`
	Shards  []ShardLoad  `json:"shards"`
}

// Heatmap builds the shard-load heatmap from the registry's counters:
// every detector marked as a shard member (SetShard) becomes a cell,
// normalized within its kind/adt group; every detector that routed
// admissions (local or crossing counts) becomes a router row.
func (r *Registry) Heatmap() HeatmapDoc {
	s := r.Snapshot()
	doc := HeatmapDoc{}
	groupTotal := map[string]uint64{}
	for _, d := range s.Detectors {
		if d.Shard > 0 {
			groupTotal[d.Kind+"/"+d.ADT] += d.Invocations
		}
	}
	for _, d := range s.Detectors {
		if d.ShardLocal > 0 || d.ShardCross > 0 {
			t := d.ShardLocal + d.ShardCross
			doc.Routers = append(doc.Routers, RouterLoad{
				Detector: d.Kind + "/" + d.ADT, ID: d.ID,
				Local: d.ShardLocal, Cross: d.ShardCross,
				CrossingRate: float64(d.ShardCross) / float64(t),
			})
		}
		if d.Shard > 0 {
			name := d.Kind + "/" + d.ADT
			share := 0.0
			if t := groupTotal[name]; t > 0 {
				share = float64(d.Invocations) / float64(t)
			}
			doc.Shards = append(doc.Shards, ShardLoad{
				Detector: name, ID: d.ID, Shard: d.Shard,
				Invocations: d.Invocations, Conflicts: d.Conflicts,
				FastAdmits: d.FastAdmits, Share: share,
			})
		}
	}
	return doc
}

// WriteHeatmapJSON writes the shard-load heatmap as indented JSON.
func (r *Registry) WriteHeatmapJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Heatmap())
}

// --- Controller audit JSON ------------------------------------------------

// AuditDoc is the controller decision-trail document.
type AuditDoc struct {
	Entries []AuditEntry `json:"entries"`
}

// WriteAuditJSON writes the controller audit trail as indented JSON.
func WriteAuditJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(AuditDoc{Entries: AuditTrail()})
}

// --- Human-readable tables ------------------------------------------------

// FormatLatencyTable renders the percentile table the flightrec
// subcommand prints.
func FormatLatencyTable(s LatencySnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s %12s %12s\n",
		"stage", "count", "p50 ns", "p90 ns", "p99 ns", "p99.9 ns", "mean ns")
	for _, st := range s.Stages {
		mean := 0.0
		if st.Count > 0 {
			mean = float64(st.SumNS) / float64(st.Count)
		}
		fmt.Fprintf(&b, "%-16s %12d %12.0f %12.0f %12.0f %12.0f %12.1f\n",
			st.Stage, st.Count, st.P50NS, st.P90NS, st.P99NS, st.P999NS, mean)
	}
	if len(s.Stages) == 0 {
		b.WriteString("(no stage observations recorded)\n")
	}
	return b.String()
}

// FormatFlightTable renders the most recent flight records (up to max;
// <=0 means all), newest last.
func FormatFlightTable(doc FlightDoc, max int) string {
	var b strings.Builder
	recs := doc.Records
	if max > 0 && len(recs) > max {
		recs = recs[len(recs)-max:]
	}
	fmt.Fprintf(&b, "flight: epoch %d, %d records buffered, %d reclaimed by wraparound\n",
		doc.Epoch, len(doc.Records), doc.Dropped)
	fmt.Fprintf(&b, "%-12s %-6s %-24s %-12s %-13s %7s %-s\n",
		"ts ns", "worker", "detector/method", "verdict", "epoch", "retries", "stages")
	for _, rec := range recs {
		dm := rec.Detector
		if rec.Method != "" {
			dm += "." + rec.Method
		}
		fmt.Fprintf(&b, "%-12d %-6d %-24s %-12s %-13d %7d %s\n",
			rec.TS, rec.Worker, dm, rec.Verdict, rec.Epoch, rec.Retries, strings.Join(rec.Stages, ","))
	}
	return b.String()
}

// FormatAuditTable renders the controller decision trail.
func FormatAuditTable(entries []AuditEntry) string {
	var b strings.Builder
	if len(entries) == 0 {
		return "(no controller decisions recorded)\n"
	}
	fmt.Fprintf(&b, "%-12s %-16s %8s %10s %10s %6s %6s %-8s\n",
		"ts ns", "controller", "window", "conflict", "crossing", "from", "to", "reason")
	for _, e := range entries {
		fmt.Fprintf(&b, "%-12d %-16s %8d %9.4f%% %9.4f%% %6d %6d %-8s\n",
			e.TS, e.Controller, e.Window, 100*e.ConflictRate, 100*e.CrossRate,
			e.FromRung, e.ToRung, e.Reason)
	}
	return b.String()
}

// --- Prometheus histogram section -----------------------------------------

// promLatency appends the stage histograms to the /metrics payload as a
// Prometheus-native histogram: cumulative le buckets (powers of two of
// nanoseconds, empty octaves elided) plus _sum and _count per stage.
func promLatency(bw *bufio.Writer) {
	p := func(format string, args ...any) { fmt.Fprintf(bw, format, args...) }
	p("# HELP commlat_stage_latency_ns Admission latency by cascade stage, nanoseconds.\n")
	p("# TYPE commlat_stage_latency_ns histogram\n")
	for st := Stage(0); st < NumStages; st++ {
		buckets, count, sum := mergeStage(st)
		if count == 0 {
			continue
		}
		cum := uint64(0)
		for b := 0; b < latBuckets; b++ {
			if buckets[b] == 0 {
				continue
			}
			cum += buckets[b]
			le := uint64(1)<<uint(b) - 1
			p("commlat_stage_latency_ns_bucket{stage=%q,le=\"%d\"} %d\n", st.String(), le, cum)
		}
		p("commlat_stage_latency_ns_bucket{stage=%q,le=\"+Inf\"} %d\n", st.String(), count)
		p("commlat_stage_latency_ns_sum{stage=%q} %d\n", st.String(), sum)
		p("commlat_stage_latency_ns_count{stage=%q} %d\n", st.String(), count)
	}
	p("# HELP commlat_flight_epoch Current flight-recorder group-commit epoch.\n# TYPE commlat_flight_epoch gauge\n")
	p("commlat_flight_epoch %d\n", FlightEpoch())
	if d := FlightDropped(); d > 0 {
		p("# HELP commlat_flight_reclaimed_total Flight records reclaimed by ring wraparound.\n# TYPE commlat_flight_reclaimed_total counter\n")
		p("commlat_flight_reclaimed_total %d\n", d)
	}
	// Last-known rung per controller, from the audit trail.
	last := map[string]AuditEntry{}
	var names []string
	for _, e := range AuditTrail() {
		if _, ok := last[e.Controller]; !ok {
			names = append(names, e.Controller)
		}
		last[e.Controller] = e
	}
	if len(names) > 0 {
		p("# HELP commlat_controller_rung Current rung value per adaptive controller.\n# TYPE commlat_controller_rung gauge\n")
		for _, name := range names {
			p("commlat_controller_rung{controller=%q} %d\n", name, last[name].ToRung)
		}
	}
}
