package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestDetectorCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	d := r.Register("forward", "set", []string{"add", "remove", "contains"})
	if d.ID() != 1 {
		t.Fatalf("ID = %d, want 1", d.ID())
	}
	d.IncInvocation()
	d.IncInvocation()
	d.IncLogEntry()
	d.IncProbe()
	d.IncCollision()
	d.IncFallbackScan()
	d.IncRollback()
	d.Check(0, 1)
	d.Check(0, 1)
	d.Conflict(0, 1)
	d.Check(1, 2)
	d.ObserveActive(7)
	d.ObserveActive(3) // must not lower the mark
	d.ObserveJournal(11)

	s := d.Snapshot()
	if s.Invocations != 2 || s.Checks != 3 || s.Conflicts != 1 || s.Rollbacks != 1 {
		t.Fatalf("counters = %+v", s)
	}
	if s.Probes != 1 || s.Collisions != 1 || s.FallbackScans != 1 || s.LogEntries != 1 {
		t.Fatalf("index counters = %+v", s)
	}
	if s.ActiveHighWater != 7 || s.JournalHighWater != 11 {
		t.Fatalf("high-water = %d/%d", s.ActiveHighWater, s.JournalHighWater)
	}
	if len(s.Pairs) != 2 {
		t.Fatalf("pairs = %+v", s.Pairs)
	}
	if p := s.Pairs[0]; p.M1 != "add" || p.M2 != "remove" || p.Checks != 2 || p.Conflicts != 1 {
		t.Fatalf("pair[0] = %+v", p)
	}
	if label, share, ok := s.TopPair(); !ok || label != "add/remove" || share != 100 {
		t.Fatalf("TopPair = %q %v %v", label, share, ok)
	}

	m := r.Register("abslock", "accum", []string{"I", "D", "W"})
	m.ModeAcquire(2)
	m.ModeAcquire(2)
	m.ModeWait(2)
	m.Conflict(2, 2)
	ms := m.Snapshot()
	if len(ms.Modes) != 1 || ms.Modes[0].Mode != "W" || ms.Modes[0].Acquired != 2 || ms.Modes[0].Waits != 1 {
		t.Fatalf("modes = %+v", ms.Modes)
	}

	snap := r.Snapshot()
	if len(snap.Detectors) != 2 {
		t.Fatalf("snapshot lists %d detectors", len(snap.Detectors))
	}
	if got := r.label(1, 1); got != "remove" {
		t.Fatalf("label(1,1) = %q", got)
	}
	if got := r.detName(2); got != "abslock/accum" {
		t.Fatalf("detName(2) = %q", got)
	}
	if got := r.detName(0); got != "" {
		t.Fatalf("detName(0) = %q", got)
	}
}

func TestFormatAttribution(t *testing.T) {
	r := NewRegistry()
	d := r.Register("forward", "set", []string{"add", "remove"})
	d.IncInvocation()
	d.Check(0, 1)
	d.Conflict(0, 1)
	d.Check(1, 1)
	out := FormatAttribution(r.Snapshot())
	for _, want := range []string{"forward/set", "add/remove", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("attribution missing %q:\n%s", want, out)
		}
	}
	// Idle detectors are skipped.
	r2 := NewRegistry()
	r2.Register("forward", "idle", []string{"a"})
	if out := FormatAttribution(r2.Snapshot()); strings.Contains(out, "idle") {
		t.Fatalf("idle detector listed:\n%s", out)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	d := r.Register("general", "set", []string{"add", "remove"})
	d.IncInvocation()
	d.Check(0, 1)
	d.Conflict(0, 1)
	m := r.Register("abslock", "accum", []string{"I", "W"})
	m.ModeAcquire(1)
	m.ModeWait(1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`commlat_tx_total{outcome="begun"} 0`,
		`commlat_detector_conflicts_total{detector="general/set",id="1"} 1`,
		`commlat_pair_conflicts_total{detector="general/set",id="1",m1="add",m2="remove"} 1`,
		`commlat_mode_acquired_total{detector="abslock/accum",id="2",mode="W"} 1`,
		`commlat_mode_waits_total{detector="abslock/accum",id="2",mode="W"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Every non-comment line must be name{labels} value.
	sc := bufio.NewScanner(&buf)
	_ = sc
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		if !strings.Contains(line, " ") {
			t.Fatalf("malformed line %q", line)
		}
	}
}

func TestRingTraceBasics(t *testing.T) {
	EnableTrace(8, 1)
	defer DisableTrace()
	Emit(1, EvBegin, 10, 42, 0, 0, 0)
	Emit(1, EvCommit, 10, 42, 0, 0, 0)
	Emit(2, EvAbort, 11, 43, 0, 0, 0)
	EmitConflict(2, 11, 43, 1, 0, 1)
	EmitDecision(3, 5, 1, 2)
	evs := TraceEvents()
	if len(evs) != 5 {
		t.Fatalf("got %d events, want 5", len(evs))
	}
	kinds := map[EventKind]int{}
	for i, e := range evs {
		kinds[e.Kind]++
		if i > 0 && e.TS < evs[i-1].TS {
			t.Fatalf("events not time-ordered")
		}
	}
	if kinds[EvBegin] != 1 || kinds[EvCommit] != 1 || kinds[EvAbort] != 1 || kinds[EvConflict] != 1 || kinds[EvDecision] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
	if TraceDropped() != 0 {
		t.Fatalf("dropped = %d", TraceDropped())
	}
}

func TestRingOverwriteAndSampling(t *testing.T) {
	EnableTrace(4, 1)
	for i := 0; i < 10; i++ {
		Emit(0, EvCommit, uint64(i), 0, 0, 0, 0)
	}
	evs := TraceEvents()
	if len(evs) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(evs))
	}
	if evs[0].Tx != 6 || evs[3].Tx != 9 {
		t.Fatalf("ring kept wrong window: %+v", evs)
	}
	if TraceDropped() != 6 {
		t.Fatalf("dropped = %d, want 6", TraceDropped())
	}

	// Sampling keeps a transaction's events together (tx % sample == 0)
	// and never drops decisions.
	EnableTrace(64, 4)
	for tx := uint64(0); tx < 8; tx++ {
		Emit(0, EvBegin, tx, 0, 0, 0, 0)
		Emit(0, EvCommit, tx, 0, 0, 0, 0)
	}
	EmitDecision(1, 1, 0, 1)
	evs = TraceEvents()
	DisableTrace()
	var lifecycle, decisions int
	for _, e := range evs {
		if e.Kind == EvDecision {
			decisions++
			continue
		}
		lifecycle++
		if e.Tx%4 != 0 {
			t.Fatalf("sampled-in tx %d not on sample boundary", e.Tx)
		}
	}
	if lifecycle != 4 || decisions != 1 {
		t.Fatalf("lifecycle = %d, decisions = %d", lifecycle, decisions)
	}

	// Disabled: Emit is a no-op, TraceEvents is empty.
	Emit(0, EvCommit, 0, 0, 0, 0, 0)
	if got := TraceEvents(); len(got) != 0 {
		t.Fatalf("disabled trace returned %d events", len(got))
	}
}

// TestConcurrentCountersAndRing hammers counters and the ring from many
// goroutines while snapshotting; run under -race this is the data-race
// proof for the whole hot path.
func TestConcurrentCountersAndRing(t *testing.T) {
	r := NewRegistry()
	d := r.Register("forward", "set", []string{"add", "remove"})
	EnableTrace(1024, 2)
	defer DisableTrace()

	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				d.IncInvocation()
				d.Check(0, 1)
				if i%10 == 0 {
					d.Conflict(0, 1)
					EmitConflict(w, uint64(i), int64(i), 1, 0, 1)
				}
				d.ObserveActive(i % 100)
				Emit(w, EvBegin, uint64(i), int64(i), 0, 0, 0)
				Emit(w, EvCommit, uint64(i), int64(i), 0, 0, 0)
			}
		}(w)
	}
	// Concurrent readers.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = r.Snapshot()
				_ = TraceEvents()
				_ = TraceDropped()
			}
		}
	}()
	wg.Wait()
	close(done)

	s := d.Snapshot()
	if s.Invocations != workers*iters {
		t.Fatalf("invocations = %d, want %d", s.Invocations, workers*iters)
	}
	if s.Conflicts != workers*iters/10 {
		t.Fatalf("conflicts = %d, want %d", s.Conflicts, workers*iters/10)
	}
	if len(s.Pairs) != 1 || s.Pairs[0].Checks != workers*iters {
		t.Fatalf("pairs = %+v", s.Pairs)
	}
}

// fixedEvents builds a deterministic event slice for exporter tests.
func fixedEvents() []Event {
	return []Event{
		{TS: 1000, Tx: 1, Item: 7, Worker: 0, Kind: EvBegin},
		{TS: 1500, Tx: 2, Item: 8, Worker: 1, Kind: EvBegin},
		{TS: 2000, Tx: 2, Item: 8, Worker: 1, Kind: EvConflict, Det: 1, M1: 0, M2: 1},
		{TS: 2500, Tx: 2, Item: 8, Worker: 1, Kind: EvAbort},
		{TS: 3000, Tx: 1, Item: 7, Worker: 0, Kind: EvCommit},
		{TS: 3500, Tx: 9, Item: 3, Worker: 2, Kind: EvCommit}, // no matching begin
		{TS: 4000, Tx: 0, Item: 2, Worker: 0, Kind: EvDecision, Det: 2, M1: 0, M2: 1},
		{TS: 4500, Tx: 4, Item: 1, Worker: 3, Kind: EvBegin}, // still open at cut
	}
}

func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Register("forward", "set", []string{"add", "remove"})
	r.Register("adaptive", "ladder", []string{"global", "exclusive"})
	return r
}

func TestWriteChromeTraceGolden(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf, fixedEvents()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome trace differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// And it must be valid JSON with the expected top-level shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
}

func TestWriteJSONL(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf, fixedEvents()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(fixedEvents()) {
		t.Fatalf("got %d lines, want %d", len(lines), len(fixedEvents()))
	}
	var conflicts, decisions int
	for _, line := range lines {
		var je map[string]any
		if err := json.Unmarshal([]byte(line), &je); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch je["kind"] {
		case "conflict":
			conflicts++
			if je["detector"] != "forward/set" || je["m1"] != "add" || je["m2"] != "remove" {
				t.Fatalf("conflict line %q lacks attribution", line)
			}
		case "decision":
			decisions++
			if je["detector"] != "adaptive/ladder" || je["m1"] != "global" || je["m2"] != "exclusive" {
				t.Fatalf("decision line %q lacks attribution", line)
			}
		}
	}
	if conflicts != 1 || decisions != 1 {
		t.Fatalf("conflicts = %d, decisions = %d", conflicts, decisions)
	}
}

func TestEmitDisabledZeroAllocs(t *testing.T) {
	DisableTrace()
	if n := testing.AllocsPerRun(1000, func() {
		Emit(1, EvCommit, 1, 1, 0, 0, 0)
	}); n != 0 {
		t.Fatalf("disabled Emit allocates %v/op", n)
	}
	r := NewRegistry()
	d := r.Register("forward", "set", []string{"add", "remove"})
	if n := testing.AllocsPerRun(1000, func() {
		d.IncInvocation()
		d.Check(0, 1)
		d.Conflict(0, 1)
		d.ObserveActive(3)
		d.ModeAcquire(0)
		d.ModeWait(1)
	}); n != 0 {
		t.Fatalf("counter path allocates %v/op", n)
	}
}

func TestEmitEnabledZeroAllocs(t *testing.T) {
	EnableTrace(1<<10, 1)
	defer DisableTrace()
	if n := testing.AllocsPerRun(1000, func() {
		Emit(1, EvBegin, 2, 3, 0, 0, 0)
		Emit(1, EvCommit, 2, 3, 0, 0, 0)
	}); n != 0 {
		t.Fatalf("enabled Emit allocates %v/op", n)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	d := r.Register("forward", "set", []string{"add", "remove"})
	d.IncInvocation()
	h := Handler(r)
	get := func(path string) (int, string) {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w.Code, w.Body.String()
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "commlat_detector_invocations_total") {
		t.Fatalf("/metrics: %d %q", code, body)
	}
	if code, body := get("/debug/telemetry"); code != 200 || !strings.Contains(body, `"kind": "forward"`) {
		t.Fatalf("/debug/telemetry: %d %q", code, body)
	}
	if code, _ := get("/nope"); code != 404 {
		t.Fatalf("/nope: %d", code)
	}
	if code, body := get("/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("/: %d %q", code, body)
	}
}
