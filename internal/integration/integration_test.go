// Package integration exercises transactions that span multiple guarded
// structures with different conflict-detection schemes — the situation
// Borůvka's iterations create (union-find general gatekeeper + abstract-
// locked component lists) and the general shape of Galois applications:
// one transaction, many boosted objects, one undo log.
package integration

import (
	"math/rand"
	"sync"
	"testing"

	"commlat/internal/adt/accum"
	"commlat/internal/adt/intset"
	"commlat/internal/adt/unionfind"
	"commlat/internal/engine"
)

// TestCrossStructureRollback: a transaction mutates a gatekept set, an
// abstract-locked accumulator and a general-gatekept union-find, then
// aborts; every structure must roll back.
func TestCrossStructureRollback(t *testing.T) {
	set := intset.NewGatekept(intset.NewHashRep())
	acc := accum.New()
	uf := unionfind.NewGK(8)

	tx := engine.NewTx()
	if _, err := set.Add(tx, 1); err != nil {
		t.Fatal(err)
	}
	if err := acc.Inc(tx, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := uf.Union(tx, 1, 2); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	if len(set.Snapshot()) != 0 {
		t.Errorf("set kept %v", set.Snapshot())
	}
	if acc.Total() != 0 {
		t.Errorf("accumulator kept %d", acc.Total())
	}
	if uf.Forest().Same(1, 2) {
		t.Error("union survived the abort")
	}
}

// TestCrossStructureConflictMidway: a conflict on the THIRD structure
// aborts the transaction, and the first two structures' effects must
// unwind even though their own detectors saw no conflict.
func TestCrossStructureConflictMidway(t *testing.T) {
	set := intset.NewGatekept(intset.NewHashRep())
	acc := accum.New()
	uf := unionfind.NewGK(8)

	// tx1 holds a union that tx2 will collide with.
	tx1 := engine.NewTx()
	if _, err := uf.Union(tx1, 1, 2); err != nil { // loser 1
		t.Fatal(err)
	}

	tx2 := engine.NewTx()
	if _, err := set.Add(tx2, 42); err != nil {
		t.Fatal(err)
	}
	if err := acc.Inc(tx2, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := uf.Find(tx2, 1); !engine.IsConflict(err) {
		t.Fatalf("find(1) should conflict with the live union, got %v", err)
	}
	tx2.Abort()
	tx1.Commit()

	if len(set.Snapshot()) != 0 {
		t.Errorf("set kept %v after cross-structure abort", set.Snapshot())
	}
	if acc.Total() != 0 {
		t.Errorf("accumulator kept %d after cross-structure abort", acc.Total())
	}
	if !uf.Forest().Same(1, 2) {
		t.Error("committed union lost")
	}
}

// TestCrossStructureSpeculativeWorkload drives transactions touching all
// three structures concurrently through the executor and validates the
// combined final state.
func TestCrossStructureSpeculativeWorkload(t *testing.T) {
	const n = 64
	set := intset.NewGatekept(intset.NewHashRep())
	acc := accum.New()
	uf := unionfind.NewGK(n)

	type op struct {
		x    int64
		a, b int64
	}
	r := rand.New(rand.NewSource(5))
	var items []op
	for i := 0; i < 200; i++ {
		items = append(items, op{x: int64(i), a: int64(r.Intn(n)), b: int64(r.Intn(n))})
	}
	var mu sync.Mutex
	var committedUnions [][2]int64
	stats, err := engine.RunItems(items, engine.Options{Workers: 8}, func(tx *engine.Tx, o op, _ *engine.Worklist[op]) error {
		if _, err := set.Add(tx, o.x); err != nil {
			return err
		}
		if err := acc.Inc(tx, 1); err != nil {
			return err
		}
		if _, err := uf.Union(tx, o.a, o.b); err != nil {
			return err
		}
		mu.Lock()
		committedUnions = append(committedUnions, [2]int64{o.a, o.b})
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Committed != 200 {
		t.Fatalf("committed %d, want 200", stats.Committed)
	}
	if got := len(set.Snapshot()); got != 200 {
		t.Errorf("set has %d elements, want 200", got)
	}
	if acc.Total() != 200 {
		t.Errorf("accumulator = %d, want 200", acc.Total())
	}
	ref := unionfind.NewForest(n)
	for _, u := range committedUnions {
		ref.Union(u[0], u[1])
	}
	for i := int64(0); i < n; i++ {
		for j := i + 1; j < n; j++ {
			if uf.Forest().Same(i, j) != ref.Same(i, j) {
				t.Fatalf("partition mismatch at (%d,%d)", i, j)
			}
		}
	}
}
