package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GateCheck enforces the telemetry double gate: every call site of an
// observation function (//commvet:observation — ring emits, latency
// records, flight-recorder appends) must be dominated by a check of an
// enabled gate, so the disabled cost of instrumentation stays at the
// gate's one or two atomic loads and the call's arguments are never even
// evaluated on the fast path. Accepted dominators:
//
//   - an enclosing if whose condition calls a gate function
//     (//commvet:gate) or compares something against zero with != —
//     the `if t1 != 0 { StageRecord(...) }` timestamp idiom, where a
//     zero timestamp proves the gate was off when it was taken;
//   - an earlier guard-return in an enclosing block: `if start == 0 {
//     return }` or `if !Enabled() { return }`.
//
// Calls made from inside another observation function are exempt — the
// wrapper inherits the obligation outward to its own callers.
// Benchmarks that measure the enabled path on purpose carry a
// //commvet:ignore with the reason.
var GateCheck = &Analyzer{
	Name: "gatecheck",
	Doc:  "telemetry observation calls must be dominated by an enabled-gate check",
	Run:  runGateCheck,
}

func runGateCheck(pass *Pass) {
	if len(pass.Facts.Observations) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if callee == nil || !pass.Facts.Observations[callee] {
				return true
			}
			if enclosedByObservation(pass, stack) {
				return true
			}
			if dominatedByGate(pass, call, stack) {
				return true
			}
			pass.Reportf(call.Pos(),
				"call to observation %s is not dominated by an enabled-gate check; its arguments are evaluated even when telemetry is off",
				callee.Name())
			return true
		})
	}
}

// enclosedByObservation reports whether the call site lives inside a
// function that is itself marked as an observation.
func enclosedByObservation(pass *Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		if obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func); obj != nil && pass.Facts.Observations[obj] {
			return true
		}
	}
	return false
}

// dominatedByGate walks the ancestor chain looking for a gating
// dominator of the call.
func dominatedByGate(pass *Pass, call *ast.CallExpr, stack []ast.Node) bool {
	child := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.IfStmt:
			// Gating condition with the call inside the then-branch.
			if parent.Body == child || containsNode(parent.Body, call) {
				if gatingCond(pass, parent.Cond) {
					return true
				}
			}
		case *ast.BlockStmt:
			// A guard-return earlier in this block.
			for _, stmt := range parent.List {
				if stmt.Pos() >= call.Pos() {
					break
				}
				if guardReturn(pass, stmt) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false // don't escape the enclosing function
		}
		child = stack[i]
	}
	return false
}

// gatingCond reports whether cond checks an enabled gate: it mentions a
// call to a gate function, or compares against zero with != (the
// timestamp idiom: a nonzero timestamp proves the gate was on).
func gatingCond(pass *Pass, cond ast.Expr) bool {
	gating := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.Pkg.Info, x); fn != nil && pass.Facts.Gates[fn] {
				gating = true
			}
		case *ast.BinaryExpr:
			if x.Op == token.NEQ && (isZero(x.X) || isZero(x.Y)) {
				gating = true
			}
		}
		return true
	})
	return gating
}

// guardReturn reports whether stmt is `if <off-condition> { return/continue/break }`
// with an off-condition of the form `x == 0`, `x == nil` or `!Gate()`.
func guardReturn(pass *Pass, stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Else != nil || len(ifs.Body.List) == 0 {
		return false
	}
	switch ifs.Body.List[len(ifs.Body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
	default:
		return false
	}
	off := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.EQL && (isZero(x.X) || isZero(x.Y) || isNil(x.X) || isNil(x.Y)) {
				off = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				if call, ok := unparen(x.X).(*ast.CallExpr); ok {
					if fn := calleeFunc(pass.Pkg.Info, call); fn != nil && pass.Facts.Gates[fn] {
						off = true
					}
				}
			}
		}
		return true
	})
	return off
}

func isZero(e ast.Expr) bool {
	lit, ok := unparen(e).(*ast.BasicLit)
	return ok && lit.Value == "0"
}

func isNil(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// containsNode reports whether root's subtree contains target.
func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
