package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package bundles everything the analyzers need about one type-checked
// package: retained syntax trees plus the go/types results.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks the packages of one module using only the standard
// library: go/parser for syntax, go/types for checking, and the source
// importer for dependencies outside the module. Module-internal imports
// are resolved by the loader itself (recursively, memoized) so that each
// package is checked exactly once and its syntax trees are retained for
// the analyzers; the source importer would type-check them too but
// discards the ASTs.
type Loader struct {
	fset       *token.FileSet
	moduleRoot string
	modulePath string
	std        types.Importer
	pkgs       map[string]*Package
	loading    map[string]bool
}

// NewLoader builds a loader for the module rooted at moduleRoot.
func NewLoader(moduleRoot string) (*Loader, error) {
	modulePath, err := readModulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer consults build.Default; with cgo enabled it
	// would try to run cgo on packages like net. Every package this
	// module touches has a pure-Go fallback, so force it off.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		moduleRoot: moduleRoot,
		modulePath: modulePath,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}, nil
}

// Fset returns the file set shared by every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Sizes returns the size model of the target platform's gc compiler,
// which padcheck uses to compute struct strides.
func (l *Loader) Sizes() types.Sizes {
	if s := types.SizesFor("gc", build.Default.GOARCH); s != nil {
		return s
	}
	return types.SizesFor("gc", "amd64")
}

// Import implements types.Importer: module-internal paths are loaded by
// this loader, everything else is delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// Load resolves patterns ("./...", "./dir/...", "./dir") against the
// module and type-checks every matching package, returning them sorted
// by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.matchDirs(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.load(l.importPath(dir))
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir type-checks the single package in dir (which need not belong
// to the module — analyzer test fixtures live under testdata). Imports
// resolve against the module and the standard library.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.check("fixture/"+filepath.Base(abs), abs)
}

func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
	dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
	p, err := l.check(path, dir)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

func (l *Loader) check(path, dir string) (*Package, error) {
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, nil // test-only or empty directory
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: l, Sizes: l.Sizes()}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}, nil
}

// goFilesIn lists the non-test Go files of dir in sorted order. Build
// constraints are ignored: this module has none, and commvet wants to
// see every file it owns anyway.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// matchDirs expands patterns into module directories containing Go files.
func (l *Loader) matchDirs(patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		switch {
		case pat == "...":
			walked, err := l.walk(l.moduleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.moduleRoot, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			walked, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			add(filepath.Join(l.moduleRoot, filepath.FromSlash(pat)))
		}
	}
	return dirs, nil
}

// walk finds every directory under root holding non-test Go files,
// skipping hidden directories and testdata.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func (l *Loader) importPath(dir string) string {
	rel, err := filepath.Rel(l.moduleRoot, dir)
	if err != nil || rel == "." {
		return l.modulePath
	}
	return l.modulePath + "/" + filepath.ToSlash(rel)
}

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}
