package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Seqlock enforces the optimistic-concurrency discipline around version
// words annotated `//commvet:seqlock protects=f1,f2,...`:
//
//   - readers: a function that loads the version word into a local and
//     then reads protected fields must re-load the word and compare it
//     against that local (directly, or by passing the local to a helper
//     whose name says it revalidates: slotStable, recheck, ...);
//     otherwise a concurrent writer can tear the protected data under
//     the reader without detection.
//   - writers: a function that mutates a protected field must advance
//     the version word (Store/CompareAndSwap/Add on it) in the same
//     function, so readers can observe the slot changed. Teardown
//     helpers that deliberately leave the advance to their caller carry
//     a function-scoped //commvet:ignore with the reason.
//
// The even/odd encoding of "write in progress" lives in the version
// constants themselves; what rots under refactoring is the pairing —
// loads without re-checks, writes without advances — and that is what
// this analyzer pins.
var Seqlock = &Analyzer{
	Name: "seqlock",
	Doc:  "seqlock readers must revalidate the version word; writers must advance it",
	Run:  runSeqlock,
}

var revalidateName = regexp.MustCompile(`(?i)stable|revalid|recheck|validate`)

func runSeqlock(pass *Pass) {
	if len(pass.Facts.Seqlocks) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				checkSeqlockFunc(pass, fd)
			}
		}
	}
}

type seqlockUse struct {
	fact *SeqlockFact

	verLoads   []token.Pos    // version .Load() sites
	loadLocals []types.Object // locals holding a loaded version
	verWrites  int            // Store/CompareAndSwap/Add on the version
	revalid    bool           // re-load+compare (or revalidation helper) seen

	protReads  map[*types.Var]token.Pos
	protWrites map[*types.Var]token.Pos
}

func checkSeqlockFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.Pkg.Info
	uses := map[*types.Var]*seqlockUse{} // keyed by version field

	useFor := func(fact *SeqlockFact) *seqlockUse {
		u := uses[fact.Version]
		if u == nil {
			u = &seqlockUse{
				fact:       fact,
				protReads:  map[*types.Var]token.Pos{},
				protWrites: map[*types.Var]token.Pos{},
			}
			uses[fact.Version] = u
		}
		return u
	}
	factOfProtected := func(v *types.Var) *SeqlockFact {
		for _, fact := range pass.Facts.Seqlocks {
			if fact.Protected[v] {
				return fact
			}
		}
		return nil
	}

	// First sweep: method calls on version/protected fields, protected
	// field selections, and assignments.
	writtenSelectors := map[*ast.SelectorExpr]bool{}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				sel := selectorIn(lhs)
				if sel == nil {
					continue
				}
				v := fieldOf(info, sel)
				if v == nil {
					continue
				}
				if fact := factOfProtected(v); fact != nil {
					// Assigning the field itself (c.txs = make(...))
					// replaces the whole array: construction or
					// reshaping outside the per-slot protocol, not a
					// slot mutation a reader could revalidate against.
					// Only element writes count for slice-typed fields.
					if wholeSliceAssign(lhs, sel, v) {
						writtenSelectors[sel] = true
						continue
					}
					writtenSelectors[sel] = true
					u := useFor(fact)
					if _, ok := u.protWrites[v]; !ok {
						u.protWrites[v] = lhs.Pos()
					}
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv := fieldOf(info, sel.X)
			if recv == nil {
				return true
			}
			name := sel.Sel.Name
			if fact, ok := pass.Facts.Seqlocks[recv]; ok {
				u := useFor(fact)
				switch name {
				case "Load":
					u.verLoads = append(u.verLoads, x.Pos())
				case "Store", "CompareAndSwap", "Add", "Swap":
					u.verWrites++
				}
			} else if fact := factOfProtected(recv); fact != nil {
				// Atomic mutation of a protected atomic-typed field.
				switch name {
				case "Store", "CompareAndSwap", "Add", "Swap":
					u := useFor(fact)
					if _, ok := u.protWrites[recv]; !ok {
						u.protWrites[recv] = x.Pos()
					}
					if inner, ok := sel.X.(*ast.IndexExpr); ok {
						if s, ok := unparen(inner.X).(*ast.SelectorExpr); ok {
							writtenSelectors[s] = true
						}
					} else if s, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
						writtenSelectors[s] = true
					}
				}
			}
		}
		return true
	})

	// Second sweep: remaining selections of protected fields are reads.
	ast.Inspect(fd, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || writtenSelectors[sel] {
			return true
		}
		v := fieldOf(info, sel)
		if v == nil {
			return true
		}
		if fact := factOfProtected(v); fact != nil {
			u := useFor(fact)
			if _, ok := u.protReads[v]; !ok {
				u.protReads[v] = sel.Pos()
			}
		}
		return true
	})

	// Third sweep: locals bound from version loads, then revalidation.
	for _, u := range uses {
		if len(u.verLoads) == 0 {
			continue
		}
		collectVersionLocals(pass, fd, u)
	}

	for _, u := range uses {
		reader := len(u.protReads) > 0 && len(u.verLoads) > 0 && u.verWrites == 0
		if reader && !u.revalid {
			pass.Reportf(u.verLoads[0],
				"optimistic read of %s-protected fields (%s) never re-loads and compares the version word; a concurrent writer can tear the data unnoticed",
				u.fact.Version.Name(), fieldNames(u.protReads))
		}
		if len(u.protWrites) > 0 && u.verWrites == 0 {
			pass.Reportf(firstPos(u.protWrites),
				"writes %s-protected fields (%s) without advancing the version word in this function; readers cannot detect the mutation",
				u.fact.Version.Name(), fieldNames(u.protWrites))
		}
	}
}

// collectVersionLocals finds `v := field.Load()` bindings for u's version
// word and then looks for a revalidation of any such local: a comparison
// against a fresh .Load() of the same word, or the local passed to a
// helper whose name matches the revalidation pattern.
func collectVersionLocals(pass *Pass, fd *ast.FuncDecl, u *seqlockUse) {
	info := pass.Pkg.Info
	isVerLoad := func(e ast.Expr) bool {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Load" {
			return false
		}
		return fieldOf(info, sel.X) == u.fact.Version
	}

	ast.Inspect(fd, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isVerLoad(rhs) {
				continue
			}
			if obj := identObj(info, as.Lhs[i]); obj != nil {
				u.loadLocals = append(u.loadLocals, obj)
			}
		}
		return true
	})
	if len(u.loadLocals) == 0 {
		// The load is used inline (e.g. directly in a comparison); treat
		// an inline compare against anything as revalidation-by-shape.
		ast.Inspect(fd, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			if isVerLoad(b.X) || isVerLoad(b.Y) {
				u.revalid = true
			}
			return true
		})
		return
	}
	mentionsLocal := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			o := info.Uses[id]
			for _, l := range u.loadLocals {
				if o == l {
					found = true
				}
			}
			return true
		})
		return found
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			if x.Op != token.EQL && x.Op != token.NEQ {
				return true
			}
			if (isVerLoad(x.X) && mentionsLocal(x.Y)) || (isVerLoad(x.Y) && mentionsLocal(x.X)) {
				u.revalid = true
			}
		case *ast.CallExpr:
			name := calleeName(x)
			if !revalidateName.MatchString(name) {
				return true
			}
			for _, arg := range x.Args {
				if mentionsLocal(arg) {
					u.revalid = true
				}
			}
		}
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// wholeSliceAssign reports whether lhs assigns the slice- or array-typed
// field v itself (not an element of it): the target, unparenthesized, is
// the bare selector.
func wholeSliceAssign(lhs ast.Expr, sel *ast.SelectorExpr, v *types.Var) bool {
	if unparen(lhs) != ast.Expr(sel) {
		return false
	}
	switch v.Type().Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	}
	return false
}

// selectorIn digs the field selector out of an assignment target,
// stripping index and star expressions: c.txs[i], *p.f, x.f.
func selectorIn(e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := unparen(e).(type) {
		case *ast.SelectorExpr:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func fieldNames(m map[*types.Var]token.Pos) string {
	var names []string
	for v := range m {
		names = append(names, v.Name())
	}
	// Deterministic order for diagnostics.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, ", ")
}

func firstPos(m map[*types.Var]token.Pos) token.Pos {
	first := token.Pos(0)
	for _, p := range m {
		if first == 0 || p < first {
			first = p
		}
	}
	return first
}
