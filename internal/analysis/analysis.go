// Package analysis implements commvet, a stdlib-only static-analysis
// suite for the hand-maintained concurrency disciplines of this module:
// atomic-only field access, seqlock version pairing, zero-on-release
// pooling, cache-line padding and the telemetry double gate, plus static
// verification of commutativity specifications (specvet). The dynamic
// checks — race-detector stress sweeps and brute-force model enumeration
// — stay as the backstop; the analyzers here are the first line of
// defense, cheap enough to run on every build.
//
// Analyzers communicate through source directives:
//
//	//commvet:ignore <reason>        suppress findings on this line and the next
//	                                 (or, on a function's doc comment, in the
//	                                 whole function); the reason is mandatory
//	//commvet:observation            marks a function whose call sites must be
//	                                 dominated by an enabled gate (gatecheck)
//	//commvet:gate                   marks a function whose result counts as
//	                                 that gate
//	//commvet:seqlock protects=a,b   on a version-word field: the named sibling
//	                                 fields may only be read under a re-checked
//	                                 load of this word, and writers must
//	                                 advance it (seqlock)
//	//commvet:padded                 marks a struct that must be ≥ one cache
//	                                 line even without a blank pad field
//	                                 (padcheck)
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string `json:"analyzer"`
	Pos      string `json:"pos"` // file:line:col
	Message  string `json:"message"`
}

// An Analyzer checks one invariant over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Suite is the full analyzer suite in a stable order.
var Suite = []*Analyzer{AtomicField, Seqlock, PoolZero, PadCheck, GateCheck}

// Pass is one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Sizes    types.Sizes
	Facts    *Facts
	report   func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos).String(),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes every analyzer in Suite over the given packages, shares
// one directive fact base across all of them, and filters the result
// through the //commvet:ignore suppressions. Findings come back sorted
// by position.
func Run(pkgs []*Package, sizes types.Sizes) []Finding {
	facts := CollectFacts(pkgs)
	var findings []Finding
	for _, pkg := range pkgs {
		sup := newSuppressor(pkg)
		var local []Finding
		report := func(f Finding) {
			local = append(local, f)
		}
		// Bare ignores are themselves findings: an escape hatch with no
		// recorded reason defeats the point of the audit trail.
		for _, pos := range sup.bare {
			local = append(local, Finding{
				Analyzer: "ignore",
				Pos:      pkg.Fset.Position(pos).String(),
				Message:  "commvet:ignore without a reason; say why the invariant holds anyway",
			})
		}
		for _, a := range Suite {
			pass := &Pass{Analyzer: a, Pkg: pkg, Sizes: sizes, Facts: facts, report: report}
			a.Run(pass)
		}
		findings = append(findings, sup.filter(local)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].Pos != findings[j].Pos {
			return findings[i].Pos < findings[j].Pos
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings
}

// directiveArg extracts the argument text of a //commvet:<name> directive
// from a comment group. ok reports whether the directive is present at
// all; the string is the trimmed text after the directive word.
func directiveArg(cg *ast.CommentGroup, name string) (string, bool) {
	if cg == nil {
		return "", false
	}
	prefix := "//commvet:" + name
	for _, c := range cg.List {
		if c.Text == prefix {
			return "", true
		}
		if rest, ok := strings.CutPrefix(c.Text, prefix+" "); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// suppressor indexes the //commvet:ignore directives of one package:
// line-scoped ignores (same line or the line immediately below the
// comment) and function-scoped ignores (directive in the function's doc
// comment covers its whole body).
type suppressor struct {
	pkg   *Package
	lines map[string]map[int]bool // file -> ignored lines
	spans []span                  // function-scoped ranges
	bare  []token.Pos             // ignores with no reason
}

type span struct {
	file     string
	from, to int
}

func newSuppressor(pkg *Package) *suppressor {
	s := &suppressor{pkg: pkg, lines: map[string]map[int]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//commvet:ignore")
				if !ok {
					continue
				}
				if strings.TrimSpace(rest) == "" {
					s.bare = append(s.bare, c.Pos())
				}
				p := pkg.Fset.Position(c.Pos())
				if s.lines[p.Filename] == nil {
					s.lines[p.Filename] = map[int]bool{}
				}
				s.lines[p.Filename][p.Line] = true
				s.lines[p.Filename][p.Line+1] = true
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := directiveArg(fd.Doc, "ignore"); ok {
				from := pkg.Fset.Position(fd.Pos())
				to := pkg.Fset.Position(fd.End())
				s.spans = append(s.spans, span{file: from.Filename, from: from.Line, to: to.Line})
			}
		}
	}
	return s
}

func (s *suppressor) suppressed(pos string) bool {
	// pos is "file:line:col".
	i := strings.LastIndex(pos, ":")
	if i < 0 {
		return false
	}
	j := strings.LastIndex(pos[:i], ":")
	if j < 0 {
		return false
	}
	file := pos[:j]
	var line int
	fmt.Sscanf(pos[j+1:i], "%d", &line)
	if s.lines[file][line] {
		return true
	}
	for _, sp := range s.spans {
		if sp.file == file && sp.from <= line && line <= sp.to {
			return true
		}
	}
	return false
}

func (s *suppressor) filter(fs []Finding) []Finding {
	out := fs[:0]
	for _, f := range fs {
		if f.Analyzer != "ignore" && s.suppressed(f.Pos) {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Facts is the module-wide directive registry, collected from every
// analyzed package before any analyzer runs so that cross-package
// obligations (telemetry observations called from gatekeeper code)
// resolve.
type Facts struct {
	Observations map[*types.Func]bool
	Gates        map[*types.Func]bool
	Seqlocks     map[*types.Var]*SeqlockFact
	Padded       map[*types.TypeName]bool
}

// SeqlockFact describes one version-word field and the sibling fields
// its //commvet:seqlock directive protects.
type SeqlockFact struct {
	Version   *types.Var
	Protected map[*types.Var]bool
	Names     []string // declared protects= names, for diagnostics
}

// CollectFacts scans every package's directives into one fact base.
func CollectFacts(pkgs []*Package) *Facts {
	facts := &Facts{
		Observations: map[*types.Func]bool{},
		Gates:        map[*types.Func]bool{},
		Seqlocks:     map[*types.Var]*SeqlockFact{},
		Padded:       map[*types.TypeName]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch decl := d.(type) {
				case *ast.FuncDecl:
					obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
					if obj == nil {
						continue
					}
					if _, ok := directiveArg(decl.Doc, "observation"); ok {
						facts.Observations[obj] = true
					}
					if _, ok := directiveArg(decl.Doc, "gate"); ok {
						facts.Gates[obj] = true
					}
				case *ast.GenDecl:
					for _, spec := range decl.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						_, inDoc := directiveArg(ts.Doc, "padded")
						_, inDecl := directiveArg(decl.Doc, "padded")
						if inDoc || inDecl {
							if tn, _ := pkg.Info.Defs[ts.Name].(*types.TypeName); tn != nil {
								facts.Padded[tn] = true
							}
						}
						st, ok := ts.Type.(*ast.StructType)
						if !ok {
							continue
						}
						collectSeqlockFacts(pkg, st, facts)
					}
				}
			}
		}
	}
	return facts
}

func collectSeqlockFacts(pkg *Package, st *ast.StructType, facts *Facts) {
	byName := map[string]*types.Var{}
	for _, fld := range st.Fields.List {
		for _, name := range fld.Names {
			if v, _ := pkg.Info.Defs[name].(*types.Var); v != nil {
				byName[name.Name] = v
			}
		}
	}
	for _, fld := range st.Fields.List {
		arg, ok := directiveArg(fld.Doc, "seqlock")
		if !ok {
			arg, ok = directiveArg(fld.Comment, "seqlock")
		}
		if !ok || len(fld.Names) == 0 {
			continue
		}
		ver := byName[fld.Names[0].Name]
		if ver == nil {
			continue
		}
		fact := &SeqlockFact{Version: ver, Protected: map[*types.Var]bool{}}
		rest, _ := strings.CutPrefix(arg, "protects=")
		for _, name := range strings.Split(rest, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			fact.Names = append(fact.Names, name)
			if v := byName[name]; v != nil {
				fact.Protected[v] = true
			}
		}
		facts.Seqlocks[ver] = fact
	}
}

// --- shared AST helpers ---

// unparen strips parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// fieldOf resolves e (after stripping parens and one level of indexing,
// so both x.f and x.f[i] land on f) to the struct field it selects, or
// nil if it is not a field selection.
func fieldOf(info *types.Info, e ast.Expr) *types.Var {
	e = unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = unparen(ix.X)
	}
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// calleeFunc resolves the called function or method of a call expression.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// inspectWithStack walks the file keeping the ancestor chain. fn is
// called in preorder; returning false skips the subtree.
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		keep := fn(n, stack)
		if keep {
			stack = append(stack, n)
		}
		return keep
	})
}

// identObj resolves an identifier expression to its object.
func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
