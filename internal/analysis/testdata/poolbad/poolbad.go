// Bad fixture: objects reach the pool (and the free stack) with their
// reference-carrying fields still set, pinning whatever they point to
// for as long as the object sits pooled. buf is a []byte — a slice of
// plain scalars is deliberately not a spill field.
package poolbad

import "sync"

type entry struct {
	key  uint64
	name string
	next *entry
	buf  []byte
}

var pool = sync.Pool{New: func() any { return new(entry) }}

func putEntry(e *entry) {
	e.key = 0
	pool.Put(e) // name and next still set
}

type cache struct {
	free []*entry
}

func (c *cache) release(e *entry) {
	c.free = append(c.free, e) // free-stack push, nothing cleared
}
