// Good fixture: a reasoned //commvet:ignore suppresses the finding and
// is not itself reported.
package ignoregood

import "sync/atomic"

type counter struct {
	hits uint64
}

func (c *counter) Hit() { atomic.AddUint64(&c.hits, 1) }

//commvet:ignore Report runs after the writer goroutines are joined, so the plain read cannot race
func (c *counter) Report() uint64 {
	return c.hits
}
