// Good fixture: the pad brings the struct to a full cache line.
package padgood

type shard struct {
	count uint64
	_     [56]byte
}

var shards [8]shard

func bump(i int) { shards[i].count++ }
