// Good fixture: every access to hits goes through sync/atomic.
package atomicgood

import "sync/atomic"

type counter struct {
	hits uint64
}

func (c *counter) Hit()           { atomic.AddUint64(&c.hits, 1) }
func (c *counter) Report() uint64 { return atomic.LoadUint64(&c.hits) }
