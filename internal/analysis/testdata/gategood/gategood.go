// Good fixture: every observation call site is dominated by a gate —
// an enclosing if on the gate, an early guard return, or an enclosing
// function that is itself an observation (wrapper exemption).
package gategood

import "sync/atomic"

var on atomic.Bool

// Enabled reports whether emission is on.
//
//commvet:gate
func Enabled() bool { return on.Load() }

// Emit records one event when enabled.
//
//commvet:observation
func Emit(kind uint8, tx uint64) {
	if !on.Load() {
		return
	}
	_ = kind
	_ = tx
}

func commit(tx uint64) {
	if Enabled() {
		Emit(1, tx)
	}
}

func abort(tx uint64) {
	if !Enabled() {
		return
	}
	Emit(2, tx)
}

// EmitPair is an observation wrapper: calls inside it are exempt.
//
//commvet:observation
func EmitPair(tx uint64) {
	Emit(3, tx)
	Emit(4, tx)
}
