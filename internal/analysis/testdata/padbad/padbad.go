// Bad fixture: the trailing pad documents cache-line isolation, but the
// struct is smaller than one 64-byte line, so array neighbours still
// false-share.
package padbad

type shard struct {
	count uint64
	_     [16]byte
}

var shards [8]shard

func bump(i int) { shards[i].count++ }
