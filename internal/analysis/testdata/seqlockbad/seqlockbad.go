// Bad fixture: the cascade's slot-of-arrays layout distilled. The
// reader loads a slot's version word and then reads protected columns
// without ever re-loading and comparing it; the writer mutates a slot
// without advancing the version. Both break the optimistic protocol.
package seqlockbad

import "sync/atomic"

type table struct {
	//commvet:seqlock protects=txids,vals
	ver   []atomic.Uint64
	txids []atomic.Uint64
	vals  []string
}

// grow replaces the whole arrays: construction, not slot mutation, and
// must not be reported.
func (t *table) grow(n int) {
	t.ver = make([]atomic.Uint64, n)
	t.txids = make([]atomic.Uint64, n)
	t.vals = make([]string, n)
}

func (t *table) scan(h uint64) (string, bool) {
	for i := range t.ver {
		v := t.ver[i].Load()
		if v&1 != 0 {
			continue
		}
		if t.txids[i].Load() == h {
			return t.vals[i], true // never revalidates v
		}
	}
	return "", false
}

func (t *table) publish(i int, tx uint64, s string) {
	t.txids[i].Store(tx)
	t.vals[i] = s
	// missing: a version-word advance readers could observe
}
