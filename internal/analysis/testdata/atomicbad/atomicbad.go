// Bad fixture: hits is written through sync/atomic but read plain, so
// the read can race with (and tear under) the atomic writers.
package atomicbad

import "sync/atomic"

type counter struct {
	hits uint64
	name string
}

func (c *counter) Hit() {
	atomic.AddUint64(&c.hits, 1)
}

func (c *counter) Report() uint64 {
	return c.hits // plain read of an atomically-written field
}

func (c *counter) Name() string { return c.name }
