// Bad fixture: the telemetry double-gate distilled. Emit self-gates on
// the atomic flag, but its call site does not, so every caller pays the
// call and its argument evaluation even with telemetry off.
package gatebad

import "sync/atomic"

var on atomic.Bool

// Enabled reports whether emission is on.
//
//commvet:gate
func Enabled() bool { return on.Load() }

// Emit records one event when enabled.
//
//commvet:observation
func Emit(kind uint8, tx uint64) {
	if !on.Load() {
		return
	}
	_ = kind
	_ = tx
}

func commit(tx uint64) {
	Emit(1, tx) // ungated call site
}
