// Good fixture: the reader revalidates through a helper whose name says
// so, and the writer brackets its mutations with version advances.
package seqlockgood

import "sync/atomic"

type table struct {
	//commvet:seqlock protects=txids,vals
	ver   []atomic.Uint64
	txids []atomic.Uint64
	vals  []string
}

func (t *table) slotStable(i int, v uint64) bool {
	return t.ver[i].Load() == v
}

func (t *table) scan(h uint64) (string, bool) {
	for i := range t.ver {
		v := t.ver[i].Load()
		if v&1 != 0 {
			continue
		}
		if t.txids[i].Load() == h {
			s := t.vals[i]
			if t.slotStable(i, v) {
				return s, true
			}
		}
	}
	return "", false
}

func (t *table) publish(i int, tx uint64, s string) {
	v := t.ver[i].Load()
	t.ver[i].Store(v + 1) // odd: write in progress
	t.txids[i].Store(tx)
	t.vals[i] = s
	t.ver[i].Store(v + 2) // even: published
}
