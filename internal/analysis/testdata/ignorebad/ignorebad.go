// Bad fixture: a bare //commvet:ignore. It suppresses the underlying
// atomicfield finding but is itself reported — suppressions must say
// why the invariant holds anyway.
package ignorebad

import "sync/atomic"

type counter struct {
	hits uint64
}

func (c *counter) Hit() { atomic.AddUint64(&c.hits, 1) }

//commvet:ignore
func (c *counter) Report() uint64 {
	return c.hits
}
