// Good fixture: reference-carrying fields are cleared before release,
// either inline or through a sanitizer method on the object.
package poolgood

import "sync"

type entry struct {
	key  uint64
	name string
	next *entry
}

var pool = sync.Pool{New: func() any { return new(entry) }}

func putEntry(e *entry) {
	e.name = ""
	e.next = nil
	pool.Put(e)
}

func (e *entry) reset() {
	e.name = ""
	e.next = nil
}

func recycle(e *entry) {
	e.reset()
	pool.Put(e)
}
