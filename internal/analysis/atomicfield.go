package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField flags struct fields that are accessed through the
// sync/atomic functions somewhere and through plain loads or stores
// somewhere else in the same package. Mixed access is a latent data
// race: the plain access is invisible to the atomic one, and the race
// detector only catches it when a stress test happens to interleave the
// two. (Fields of the method-based types atomic.Uint64 & co. are immune
// by construction and are not in scope; this analyzer guards the
// pointer-passing style, atomic.LoadUint64(&s.f).)
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must be accessed atomically everywhere",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	info := pass.Pkg.Info
	atomicUse := map[*types.Var]token.Pos{} // field -> first atomic access
	accounted := map[*ast.SelectorExpr]bool{}

	// Pass 1: find fields whose address is taken for a sync/atomic call.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isSyncAtomicCall(info, call) {
				return true
			}
			for _, arg := range call.Args {
				u, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || u.Op != token.AND {
					continue
				}
				inner := unparen(u.X)
				if ix, ok := inner.(*ast.IndexExpr); ok {
					inner = unparen(ix.X)
				}
				sel, ok := inner.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if v := fieldOf(info, sel); v != nil {
					if _, seen := atomicUse[v]; !seen {
						atomicUse[v] = sel.Pos()
					}
					accounted[sel] = true
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return
	}

	// Pass 2: every other selection of those fields is a plain access.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || accounted[sel] {
				return true
			}
			v := fieldOf(info, sel)
			if v == nil {
				return true
			}
			if first, ok := atomicUse[v]; ok {
				pass.Reportf(sel.Pos(),
					"field %s is accessed with sync/atomic (first at %s) but plainly here; mixed access is a data race",
					v.Name(), pass.Pkg.Fset.Position(first))
			}
			return true
		})
	}
}

// isSyncAtomicCall reports whether call invokes a function of package
// sync/atomic (the pointer-taking functions, not the method types).
func isSyncAtomicCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == "sync/atomic"
}
