package analysis

import (
	"path/filepath"
	"strings"
	"testing"

	"commlat/internal/core"
	"commlat/internal/spectext"
)

func fixtureFindings(t *testing.T, dir string) []Finding {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", dir))
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("LoadDir(%s): empty package", dir)
	}
	return Run([]*Package{pkg}, loader.Sizes())
}

// TestAnalyzersOnFixtures drives the whole suite over each seeded
// fixture: every bad fixture must produce exactly the expected findings
// (that is what makes scripts/commvet exit non-zero on it), and every
// good fixture must be silent.
func TestAnalyzersOnFixtures(t *testing.T) {
	cases := []struct {
		dir  string
		want map[string]int // analyzer name -> finding count
	}{
		{"atomicbad", map[string]int{"atomicfield": 1}},
		{"atomicgood", nil},
		{"seqlockbad", map[string]int{"seqlock": 2}},
		{"seqlockgood", nil},
		{"poolbad", map[string]int{"poolzero": 2}},
		{"poolgood", nil},
		{"padbad", map[string]int{"padcheck": 1}},
		{"padgood", nil},
		{"gatebad", map[string]int{"gatecheck": 1}},
		{"gategood", nil},
		{"ignorebad", map[string]int{"ignore": 1}},
		{"ignoregood", nil},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			fs := fixtureFindings(t, tc.dir)
			got := map[string]int{}
			for _, f := range fs {
				got[f.Analyzer]++
			}
			for name, n := range tc.want {
				if got[name] != n {
					t.Errorf("analyzer %s: got %d finding(s), want %d\nall: %v", name, got[name], n, fs)
				}
			}
			for name, n := range got {
				if tc.want[name] == 0 {
					t.Errorf("unexpected %s finding(s) (%d): %v", name, n, fs)
				}
			}
		})
	}
}

// TestSeqlockBadMessages pins the two failure modes the cascade
// distillation seeds: a reader that never revalidates and a writer that
// never advances the version word.
func TestSeqlockBadMessages(t *testing.T) {
	fs := fixtureFindings(t, "seqlockbad")
	var reader, writer bool
	for _, f := range fs {
		if strings.Contains(f.Message, "never re-loads") {
			reader = true
		}
		if strings.Contains(f.Message, "without advancing the version word") {
			writer = true
		}
	}
	if !reader || !writer {
		t.Fatalf("want one reader and one writer finding, got %v", fs)
	}
}

func TestVetSpecSymmetry(t *testing.T) {
	asym := `adt pair
method a(x)
method b(x)

a ~ a: v1.x < v2.x
a ~ b: true
b ~ b: true
`
	spec, err := spectext.Parse(asym)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fs := VetSpec("pair", spec)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "not provably symmetric") {
		t.Fatalf("want one symmetry finding, got %v", fs)
	}

	// The same spec with the pair declared oriented is accepted.
	oriented := strings.Replace(asym, "method b(x)\n", "method b(x)\noriented a ~ a\n", 1)
	spec, err = spectext.Parse(oriented)
	if err != nil {
		t.Fatalf("Parse oriented: %v", err)
	}
	if fs := VetSpec("pair", spec); len(fs) != 0 {
		t.Fatalf("oriented spec: want no findings, got %v", fs)
	}
}

func TestVetSpecMirror(t *testing.T) {
	// Stored mirror that is NOT the side swap of its counterpart.
	src := `adt pair
method a(x)
method b(x)

a ~ a: true
a ~ b: v1.x < v2.x
b ~ a: v1.x < v2.x
b ~ b: true
`
	spec, err := spectext.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	fs := VetSpec("pair", spec)
	if len(fs) != 1 || !strings.Contains(fs[0].Message, "stored mirror") {
		t.Fatalf("want one mirror finding, got %v", fs)
	}

	// A true syntactic mirror proves and passes.
	good := strings.Replace(src, "b ~ a: v1.x < v2.x\n", "b ~ a: v2.x < v1.x\n", 1)
	spec, err = spectext.Parse(good)
	if err != nil {
		t.Fatalf("Parse mirror: %v", err)
	}
	if fs := VetSpec("pair", spec); len(fs) != 0 {
		t.Fatalf("mirrored spec: want no findings, got %v", fs)
	}
}

func TestVetSpecWellFormedness(t *testing.T) {
	sig := &core.ADTSig{Name: "t", Methods: []core.MethodSig{
		{Name: "a", Params: []string{"x"}},
		{Name: "b", Params: []string{"x"}, HasRet: true},
	}}
	spec := core.NewSpec(sig)
	// a has one parameter and no return: both terms are ill-formed.
	spec.Set("a", "a", core.Eq(core.Arg1(3), core.Ret2()))
	fs := VetSpec("t", spec)
	var idx, ret int
	for _, f := range fs {
		if strings.Contains(f.Message, "ill-formed") {
			if strings.Contains(f.Message, "argument") {
				idx++
			}
			if strings.Contains(f.Message, "returns nothing") {
				ret++
			}
		}
	}
	if idx != 1 || ret != 1 {
		t.Fatalf("want one index and one return ill-formedness finding, got %v", fs)
	}
}

// TestVetSpecExamplesClean is the acceptance check: every shipped spec
// is statically verified by the symbolic prover, no enumeration
// fallback.
func TestVetSpecExamplesClean(t *testing.T) {
	fs, err := VetSpecDir("../../examples/specs")
	if err != nil {
		t.Fatalf("VetSpecDir: %v", err)
	}
	if len(fs) != 0 {
		t.Fatalf("examples/specs must vet clean, got %v", fs)
	}
}
