package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// PoolZero enforces zero-on-release for pooled objects: an object handed
// to sync.Pool.Put (or pushed onto a free stack, the TxCache idiom) must
// first have its reference-carrying fields cleared — pointers,
// interfaces, maps, funcs, strings, and slices whose elements carry
// references. A pooled object retains everything its fields point to for
// as long as it sits in the pool, which is exactly the leak class the
// MemStats retention tests catch dynamically; this pins it statically.
//
// A field counts as sanitized when, earlier in the same function, it is
// assigned (x.f = ..., including x.f = x.f[:0]), an element is assigned
// in a loop (x.f[i] = ...), a method is called on it (x.f.Release()), or
// a sanitizer method is called on the whole object (x.reset(), x.clear(),
// ...). Pools whose invariant is maintained elsewhere (hooks cleared by
// Commit/Abort before PutTx) carry a //commvet:ignore with the reason.
var PoolZero = &Analyzer{
	Name: "poolzero",
	Doc:  "objects returned to pools must zero reference-carrying fields",
	Run:  runPoolZero,
}

var sanitizerName = regexp.MustCompile(`(?i)^(reset|clear|zero|release|recycle|sanitize)`)

func runPoolZero(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if isPoolPut(pass.Pkg.Info, x) && len(x.Args) == 1 {
					checkPoolRelease(pass, stack, x, x.Args[0])
				}
			case *ast.AssignStmt:
				// Free-stack push: x.free = append(x.free, obj).
				if obj, ok := freeStackPush(pass.Pkg.Info, x); ok {
					checkPoolRelease(pass, stack, x, obj)
				}
			}
			return true
		})
	}
}

func checkPoolRelease(pass *Pass, stack []ast.Node, site ast.Node, arg ast.Expr) {
	info := pass.Pkg.Info
	// Resolve the released object to a root variable; &x counts as x.
	root := unparen(arg)
	if u, ok := root.(*ast.UnaryExpr); ok {
		root = unparen(u.X)
	}
	obj := identObj(info, root)
	if obj == nil {
		return // not a simple variable; out of scope
	}
	tv, ok := info.Types[arg]
	if !ok {
		return
	}
	st := pointeeStruct(tv.Type)
	if st == nil {
		return
	}
	spill := spillFields(st)
	if len(spill) == 0 {
		return
	}

	body := enclosingBody(stack)
	if body == nil {
		return
	}
	missing := map[string]bool{}
	for _, f := range spill {
		missing[f.Name()] = true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		// Only sanitization that happens before the release site counts.
		if n.Pos() >= site.Pos() {
			return false
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				sel := selectorIn(lhs)
				if sel == nil || identObj(info, sel.X) != obj {
					continue
				}
				if v := fieldOf(info, sel); v != nil {
					delete(missing, v.Name())
				}
			}
		case *ast.CallExpr:
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			// Method on a spill field: x.f.Release().
			if fieldSel, ok := unparen(sel.X).(*ast.SelectorExpr); ok {
				if identObj(info, fieldSel.X) == obj {
					if v := fieldOf(info, fieldSel); v != nil {
						delete(missing, v.Name())
					}
				}
			}
			// Sanitizer on the whole object: x.reset().
			if identObj(info, sel.X) == obj && sanitizerName.MatchString(sel.Sel.Name) {
				for k := range missing {
					delete(missing, k)
				}
			}
		}
		return true
	})
	if len(missing) > 0 {
		names := make([]string, 0, len(missing))
		for k := range missing {
			names = append(names, k)
		}
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		pass.Reportf(site.Pos(),
			"pooled object released with reference-carrying fields not cleared: %s; the pool pins them until reuse",
			strings.Join(names, ", "))
	}
}

// isPoolPut reports whether call is sync.Pool.Put.
func isPoolPut(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Put" {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	named := namedOf(recv.Type())
	return named != nil && named.Obj().Name() == "Pool"
}

// freeStackPush matches `x.free... = append(x.free..., obj)` where the
// slice element type is a pointer to a spill-carrying struct, returning
// the pushed object. This is the TxCache free-stack idiom.
func freeStackPush(info *types.Info, as *ast.AssignStmt) (ast.Expr, bool) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, false
	}
	sel := selectorIn(as.Lhs[0])
	if sel == nil || !strings.Contains(strings.ToLower(sel.Sel.Name), "free") {
		return nil, false
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return nil, false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return nil, false
	}
	obj := call.Args[len(call.Args)-1]
	tv, ok := info.Types[obj]
	if !ok || pointeeStruct(tv.Type) == nil {
		return nil, false
	}
	return obj, true
}

// pointeeStruct unwraps *Named-struct types.
func pointeeStruct(t types.Type) *types.Struct {
	p, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return nil
	}
	s, _ := p.Elem().Underlying().(*types.Struct)
	return s
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// spillFields returns the fields of st whose types carry references.
func spillFields(st *types.Struct) []*types.Var {
	var out []*types.Var
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue
		}
		if carriesRefs(f.Type(), map[types.Type]bool{}) {
			out = append(out, f)
		}
	}
	return out
}

// carriesRefs reports whether a value of type t can keep other objects
// alive: pointers, interfaces, maps, chans, funcs, strings, and slices
// or arrays or structs containing any of those. A slice of plain scalars
// is deliberately NOT a spill field — recycling scalar backing arrays
// (keys[:0]) is the whole point of the pools here.
func carriesRefs(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Chan, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.String || u.Kind() == types.UnsafePointer
	case *types.Slice:
		return carriesRefs(u.Elem(), seen)
	case *types.Array:
		return carriesRefs(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesRefs(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// enclosingBody returns the innermost function body on the stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
