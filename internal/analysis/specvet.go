package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"commlat/internal/core"
	"commlat/internal/spectext"
)

// specvet statically verifies commutativity specifications, replacing
// brute-force model enumeration (core.CheckCondSound) as the first line
// of defense for spectext inputs. Three obligations, all discharged by
// the symbolic implication engine — no model, no enumeration:
//
//   - well-formedness: every term of every stored condition resolves
//     against the pair's method signatures (argument indices in range,
//     return values only on methods that have them, sides 1/2 only);
//   - symmetry: a condition stored for (m1, m2) answers queries for
//     (m2, m1) through SwapSides (the paper's footnote 5), so a stored
//     mirror — or a self-pair condition — must be provably equivalent
//     to the swap of its counterpart unless the pair is explicitly
//     declared `oriented m1 ~ m2`;
//   - lattice monotonicity: the SIMPLE strengthening of the spec must
//     be provably ≤ the spec itself, pair by pair (the construction
//     promises it; the prover re-derives it, so a regression in either
//     is caught at vet time).
//
// The prover is sound but incomplete, so specvet can report "not
// provable" for a condition that is in fact symmetric; the fix is to
// spell the two directions as syntactic mirrors or declare the pair
// oriented (and then the enumeration-based CheckCondSound remains as
// the dynamic backstop).

// VetSpec statically verifies one spec and returns its findings.
func VetSpec(name string, spec *core.Spec) []Finding {
	var out []Finding
	report := func(pair [2]string, format string, args ...any) {
		out = append(out, Finding{
			Analyzer: "specvet",
			Pos:      fmt.Sprintf("%s: %s ~ %s", name, pair[0], pair[1]),
			Message:  fmt.Sprintf(format, args...),
		})
	}

	stored := spec.StoredPairs()
	storedSet := map[[2]string]bool{}
	for _, p := range stored {
		storedSet[p] = true
	}

	// Well-formedness of every stored formula.
	for _, p := range stored {
		c, _ := spec.StoredCond(p[0], p[1])
		sig1, _ := spec.Sig.Method(p[0])
		sig2, _ := spec.Sig.Method(p[1])
		for _, msg := range illFormed(c, sig1, sig2) {
			report(p, "ill-formed condition: %s", msg)
		}
	}

	// Symmetry up to renaming (side swap).
	seen := map[[2]string]bool{}
	for _, p := range stored {
		m1, m2 := p[0], p[1]
		c12, _ := spec.StoredCond(m1, m2)
		if m1 == m2 {
			if !core.Equivalent(c12, core.SwapSides(c12)) && !spec.IsOriented(m1, m2) {
				report(p, "self-pair condition is not provably symmetric under side swap; if the orientation is intended, declare `oriented %s ~ %s`", m1, m2)
			}
			continue
		}
		key := [2]string{m1, m2}
		if m2 < m1 {
			key = [2]string{m2, m1}
		}
		if seen[key] {
			continue
		}
		seen[key] = true
		c21, ok := spec.StoredCond(m2, m1)
		if !ok {
			continue // single direction: mirror is swap-derived, symmetric by construction
		}
		if !core.Equivalent(core.SwapSides(c12), c21) && !spec.IsOriented(m1, m2) {
			report(p, "stored mirror for %s ~ %s is not provably the side swap of this condition; a directed override must be declared `oriented %s ~ %s`", m2, m1, m1, m2)
		}
	}

	// Lattice monotonicity of the SIMPLE strengthening.
	simple := core.StrengthenToSimple(spec)
	for _, p := range spec.OrderedPairs() {
		if !core.Implies(simple.Cond(p[0], p[1]), spec.Cond(p[0], p[1])) {
			report(p, "SIMPLE strengthening is not provably ≤ the original condition; the lattice order is broken")
		}
	}
	// ⊥ must sit below every spec; trivially provable, and a cheap guard
	// against regressions in the default-condition path.
	if !core.Bottom(spec.Sig).LE(spec) {
		report([2]string{"⊥", "spec"}, "bottom specification is not ≤ this spec")
	}
	return out
}

// VetSpecFile parses and vets one spectext file. Parse errors are
// reported as findings rather than hard errors so a broken spec fails
// commvet the same way a broken invariant does.
func VetSpecFile(path string) []Finding {
	data, err := os.ReadFile(path)
	if err != nil {
		return []Finding{{Analyzer: "specvet", Pos: path, Message: err.Error()}}
	}
	spec, err := spectext.Parse(string(data))
	if err != nil {
		return []Finding{{Analyzer: "specvet", Pos: path, Message: err.Error()}}
	}
	findings := VetSpec(filepath.Base(path), spec)
	for i := range findings {
		findings[i].Pos = filepath.Join(filepath.Dir(path), findings[i].Pos)
	}
	return findings
}

// VetSpecDir vets every .spec file under dir, sorted for determinism.
func VetSpecDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".spec") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	var out []Finding
	for _, name := range names {
		out = append(out, VetSpecFile(filepath.Join(dir, name))...)
	}
	return out, nil
}

// illFormed walks a condition's terms against the two method signatures.
func illFormed(c core.Cond, sig1, sig2 core.MethodSig) []string {
	var msgs []string
	var walkTerm func(t core.Term)
	sigFor := func(side core.Side) (core.MethodSig, bool) {
		switch side {
		case core.First:
			return sig1, true
		case core.Second:
			return sig2, true
		}
		return core.MethodSig{}, false
	}
	walkTerm = func(t core.Term) {
		switch x := t.(type) {
		case core.ArgTerm:
			sig, ok := sigFor(x.Side)
			if !ok {
				msgs = append(msgs, fmt.Sprintf("term %s references invalid side %d", x, x.Side))
				return
			}
			if x.Index < 0 || x.Index >= len(sig.Params) {
				msgs = append(msgs, fmt.Sprintf("term %s: method %s has %d argument(s)", x, sig.Name, len(sig.Params)))
			}
		case core.RetTerm:
			sig, ok := sigFor(x.Side)
			if !ok {
				msgs = append(msgs, fmt.Sprintf("term %s references invalid side %d", x, x.Side))
				return
			}
			if !sig.HasRet {
				msgs = append(msgs, fmt.Sprintf("term %s: method %s returns nothing", x, sig.Name))
			}
		case core.ConstTerm:
		case core.FnTerm:
			if _, ok := sigFor(x.State); !ok {
				msgs = append(msgs, fmt.Sprintf("term %s evaluates against invalid state s%d", x, x.State))
			}
			for _, a := range x.Args {
				walkTerm(a)
			}
		case core.ArithTerm:
			walkTerm(x.L)
			walkTerm(x.R)
		}
	}
	var walkCond func(c core.Cond)
	walkCond = func(c core.Cond) {
		switch x := c.(type) {
		case core.TrueCond, core.FalseCond:
		case core.NotCond:
			walkCond(x.C)
		case core.AndCond:
			walkCond(x.L)
			walkCond(x.R)
		case core.OrCond:
			walkCond(x.L)
			walkCond(x.R)
		case core.CmpCond:
			walkTerm(x.L)
			walkTerm(x.R)
		}
	}
	walkCond(c)
	return msgs
}
