package analysis

import (
	"go/ast"
	"go/types"
)

// PadCheck verifies that structs documented as pad-separated really are:
// any struct declaring a blank cache-line pad field (`_ [N]byte`, N ≥ 8)
// or carrying a //commvet:padded directive must have a size of at least
// 64 bytes, so that adjacent elements of an array of them never share a
// whole cache line. A pad that shrinks below the line under refactoring
// (a field removed, a [56]byte pad left behind a now-smaller prefix)
// silently reintroduces the false sharing the pad was bought to prevent;
// the telemetry latency shards and the sharded gatekeeper's tickets both
// depend on this.
var PadCheck = &Analyzer{
	Name: "padcheck",
	Doc:  "pad-documented structs must be at least one cache line (64 bytes)",
	Run:  runPadCheck,
}

const cacheLine = 64

func runPadCheck(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				tn, _ := info.Defs[ts.Name].(*types.TypeName)
				if tn == nil {
					continue
				}
				padded := pass.Facts.Padded[tn] || hasPadField(info, st)
				if !padded {
					continue
				}
				size := pass.Sizes.Sizeof(tn.Type().Underlying())
				if size < cacheLine {
					pass.Reportf(ts.Pos(),
						"struct %s declares a cache-line pad but is only %d bytes; adjacent array elements will share a line (want ≥ %d)",
						ts.Name.Name, size, cacheLine)
				}
			}
		}
	}
}

// hasPadField reports whether the struct declares a blank byte-array pad
// of at least 8 bytes — the `_ [56]byte` idiom.
func hasPadField(info *types.Info, st *ast.StructType) bool {
	for _, fld := range st.Fields.List {
		blank := false
		for _, name := range fld.Names {
			if name.Name == "_" {
				blank = true
			}
		}
		if !blank {
			continue
		}
		tv, ok := info.Types[fld.Type]
		if !ok {
			continue
		}
		arr, ok := tv.Type.Underlying().(*types.Array)
		if !ok {
			continue
		}
		elem, ok := arr.Elem().Underlying().(*types.Basic)
		if ok && (elem.Kind() == types.Byte || elem.Kind() == types.Uint8) && arr.Len() >= 8 {
			return true
		}
	}
	return false
}
