// Package sigfilter implements the conflict-signature prefilter of the
// lattice cascade: a fixed-size table of atomic reference counters
// indexed by key hash. Active invocations (and lock holds) publish the
// 64-bit hashes of their conflict keys by incrementing cells; an
// incoming operation probes the cells of its own keys, and a probe that
// finds only its own contribution proves no concurrent operation has
// published a possibly-equal key. The filter is the weakest, cheapest
// point of the commutativity lattice: it only ever over-approximates
// conflicts (distinct keys may share a cell, but equal keys never map
// to different cells), so a miss is a sound zero-lock admission and a
// hit merely falls through to a more precise detector.
//
// Soundness under concurrency relies on a publish-then-probe protocol:
// every participant increments its own cells before reading anyone
// else's. Go guarantees sequential consistency for the atomic
// operations involved, so of two racing operations with colliding keys
// at least one observes the other's publication — they cannot both be
// admitted by the filter.
package sigfilter

import "sync/atomic"

// DefaultBits sizes filters at 1<<16 cells (256 KiB of counters),
// keeping the per-probe false-hit probability under ~2% with a
// thousand keys published.
const DefaultBits = 16

// Filter is the counting signature table. The zero value is unusable;
// use New.
type Filter struct {
	mask  uint64
	cells []atomic.Int32
}

// New creates a filter with 1<<bits cells. Bits are clamped to [6, 24].
func New(bits int) *Filter {
	if bits < 6 {
		bits = 6
	}
	if bits > 24 {
		bits = 24
	}
	return &Filter{
		mask:  uint64(1)<<bits - 1,
		cells: make([]atomic.Int32, 1<<bits),
	}
}

// Add publishes one key hash.
func (f *Filter) Add(h uint64) { f.cells[h&f.mask].Add(1) }

// Remove retracts one published key hash.
func (f *Filter) Remove(h uint64) { f.cells[h&f.mask].Add(-1) }

// Count returns the number of publications currently in h's cell — the
// probe. A prober that has itself published must subtract its own
// contribution to the cell before interpreting the count.
func (f *Filter) Count(h uint64) int32 { return f.cells[h&f.mask].Load() }

// SameCell reports whether two hashes land in the same cell: the
// granularity at which the filter confuses distinct keys, and the
// predicate a prober uses to count its own contribution.
func (f *Filter) SameCell(a, b uint64) bool { return a&f.mask == b&f.mask }

// Cell returns the index of h's cell — the exact identity SameCell
// compares. Batch probes precompute cells once per published key and
// compare indices instead of re-masking pairs of hashes.
func (f *Filter) Cell(h uint64) uint32 { return uint32(h & f.mask) }

// Batch probing (SWAR). A batch admission publishes many keys at once
// and then probes each of its conflict cells against the whole batch:
// for every probe it needs its own batch's total contribution to the
// probed cell, so that a filter count exceeding it proves an external
// publication. Comparing the probe cell against every batch key cell
// pairwise is O(batch · keys) masked compares per probe; instead the
// batch packs the low 16 bits of each published key's cell index four
// to a 64-bit word ("the combined conflict signature") and screens four
// published tags per word operation with the classic zero-halfword
// trick.
//
// Word-level detection is exact in one direction: MatchTag4 returning
// false proves no lane holds the probe tag, so the word's four keys are
// provably in other cells. A true result only nominates the word —
// lane attribution is approximate (the subtraction borrows across
// lanes, and filters wider than 16 bits alias tags), so callers
// re-verify candidate lanes against the exact cell indices.
const (
	swarLows  uint64 = 0x0001000100010001
	swarHighs uint64 = 0x8000800080008000
)

// SpreadTag16 replicates a 16-bit cell tag into all four lanes of a
// 64-bit comparand for MatchTag4.
func SpreadTag16(tag uint16) uint64 { return uint64(tag) * swarLows }

// PackTag16 places tag into lane l (0–3) of a signature word; words
// start zeroed and fill lane by lane.
func PackTag16(w uint64, l int, tag uint16) uint64 {
	return w | uint64(tag)<<(uint(l)*16)
}

// MatchTag4 reports whether any 16-bit lane of w may equal the tag
// replicated in spread (built by SpreadTag16). False is conclusive;
// true requires exact per-lane verification by the caller.
func MatchTag4(w, spread uint64) bool {
	x := w ^ spread
	return (x-swarLows)&^x&swarHighs != 0
}

// Stack is a lock-free Treiber stack of slot indices, used by the
// cascade detectors to manage their fixed slot tables. The head word
// packs a 32-bit ABA tag with the top index; the stack threads through
// a caller-provided next-link array indexed by slot. Indices are
// stored +1 so the zero word means empty.
type Stack struct {
	head atomic.Uint64
	next []atomic.Uint32
}

// NewStack creates a stack able to hold slot indices [0, capacity),
// initially containing all of them in ascending pop order.
func NewStack(capacity int) *Stack {
	s := &Stack{next: make([]atomic.Uint32, capacity)}
	for i := capacity - 1; i >= 0; i-- {
		s.Push(uint32(i))
	}
	return s
}

// Push returns a slot index to the stack. The caller must own the slot
// (a slot may be in the stack at most once).
func (s *Stack) Push(idx uint32) {
	for {
		old := s.head.Load()
		s.next[idx].Store(uint32(old))
		neu := (old>>32+1)<<32 | uint64(idx+1)
		if s.head.CompareAndSwap(old, neu) {
			return
		}
	}
}

// Pop removes and returns a slot index, or ok=false when empty. A
// successful Pop transfers exclusive ownership of the slot to the
// caller; the tag in the head word prevents ABA against concurrent
// push/pop pairs.
func (s *Stack) Pop() (idx uint32, ok bool) {
	for {
		old := s.head.Load()
		top := uint32(old)
		if top == 0 {
			return 0, false
		}
		nxt := s.next[top-1].Load()
		neu := (old>>32+1)<<32 | uint64(nxt)
		if s.head.CompareAndSwap(old, neu) {
			return top - 1, true
		}
	}
}

// PopN removes up to len(buf) slot indices with a single successful CAS,
// walking the chain from the head and swinging the head past the run.
// It returns how many it took (0 when empty). The walk may read next
// links of nodes a concurrent pop is claiming, but any such
// interleaving changes the head's ABA tag and fails the CAS, so a
// successful PopN owns exactly the indices it returns.
func (s *Stack) PopN(buf []uint32) int {
retry:
	old := s.head.Load()
	link := uint32(old)
	if link == 0 {
		return 0
	}
	n := 0
	for link != 0 && n < len(buf) {
		buf[n] = link - 1
		n++
		link = s.next[link-1].Load()
	}
	neu := (old>>32+1)<<32 | uint64(link)
	if !s.head.CompareAndSwap(old, neu) {
		goto retry
	}
	return n
}

// PushN returns a run of owned slot indices with a single successful
// CAS: the run is pre-linked in order, then spliced onto the head.
func (s *Stack) PushN(idxs []uint32) {
	if len(idxs) == 0 {
		return
	}
	for i := 0; i < len(idxs)-1; i++ {
		s.next[idxs[i]].Store(idxs[i+1] + 1)
	}
	last := idxs[len(idxs)-1]
	for {
		old := s.head.Load()
		s.next[last].Store(uint32(old))
		neu := (old>>32+1)<<32 | uint64(idxs[0]+1)
		if s.head.CompareAndSwap(old, neu) {
			return
		}
	}
}
